// Package drift detects when a served cardinality model has gone stale.
//
// Two complementary detectors run over the live feedback that /v1/estimate
// already collects:
//
//   - QErrorDetector: a streaming Page-Hinkley test over log2(q-error). The
//     q-error of a fresh model is a roughly stationary signal; when the data
//     or workload shifts, its mean rises and stays risen. Page-Hinkley
//     accumulates deviations of the signal from its running mean and alarms
//     when the accumulated deviation exceeds a threshold — a classic
//     change-point test that reacts to sustained degradation, not to a
//     single catastrophically mis-estimated query.
//
//   - DomainDetector: compares the literals of incoming predicates against
//     the column domains the model was trained on. Queries probing values
//     outside every trained column's [min, max] are the earliest symptom of
//     data drift — they can arrive before any feedback label does — so the
//     detector alarms when the out-of-domain fraction over a sliding window
//     exceeds a threshold.
//
// Detectors emit typed Events. They never retrain or publish anything
// themselves: internal/trainer owns the response, and every model produced
// in response to drift still passes the serve.Lifecycle canary gate.
package drift

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// Kind labels which detector produced an Event.
type Kind string

const (
	// KindQError marks events from the Page-Hinkley q-error detector.
	KindQError Kind = "qerror"
	// KindDomain marks events from the column-domain detector.
	KindDomain Kind = "domain"
)

// Severity grades an Event by how far past its threshold the detector
// statistic landed.
type Severity string

const (
	// SeverityWarn is a drift alarm just past threshold.
	SeverityWarn Severity = "warn"
	// SeverityCritical is a drift alarm at twice threshold or beyond.
	SeverityCritical Severity = "critical"
)

// Event is one drift alarm.
type Event struct {
	Kind     Kind      `json:"kind"`
	Severity Severity  `json:"severity"`
	At       time.Time `json:"at"`
	// Stat is the detector statistic at alarm time (Page-Hinkley deviation
	// for q-error drift, out-of-domain fraction for domain drift).
	Stat float64 `json:"stat"`
	// Threshold is the effective threshold the statistic exceeded.
	Threshold float64 `json:"threshold"`
	// Samples is how many observations the detector had consumed.
	Samples int `json:"samples"`
	// Detail is a human-readable summary.
	Detail string `json:"detail"`
}

func severityFor(stat, threshold float64) Severity {
	if threshold > 0 && stat >= 2*threshold {
		return SeverityCritical
	}
	return SeverityWarn
}

// QErrorConfig tunes the Page-Hinkley detector.
type QErrorConfig struct {
	// Delta is the tolerated drift of the mean log2 q-error; deviations
	// smaller than Delta never accumulate.
	Delta float64
	// Lambda is the alarm threshold on the accumulated deviation.
	Lambda float64
	// MinSamples suppresses alarms until this many observations arrived.
	MinSamples int
	// MaxLogQ clamps each observation's log2 q-error, bounding the damage
	// any single pathological query can do to the statistic.
	MaxLogQ float64
}

// DefaultQErrorConfig is tuned for the reproduction's workloads: a model
// whose median q-error doubles for ~30 consecutive queries alarms.
func DefaultQErrorConfig() QErrorConfig {
	return QErrorConfig{Delta: 0.05, Lambda: 25, MinSamples: 50, MaxLogQ: 20}
}

func (c QErrorConfig) validate() error {
	switch {
	case c.Delta < 0:
		return fmt.Errorf("drift: Delta = %v, want >= 0", c.Delta)
	case c.Lambda <= 0:
		return fmt.Errorf("drift: Lambda = %v, want > 0", c.Lambda)
	case c.MinSamples < 1:
		return fmt.Errorf("drift: MinSamples = %d, want >= 1", c.MinSamples)
	case c.MaxLogQ <= 0:
		return fmt.Errorf("drift: MaxLogQ = %v, want > 0", c.MaxLogQ)
	}
	return nil
}

// QErrorDetector is a streaming Page-Hinkley change-point test over
// log2(q-error). Safe for concurrent use.
type QErrorDetector struct {
	cfg QErrorConfig

	mu    sync.Mutex
	n     int
	mean  float64 // running mean of the clamped log2 q-error
	mT    float64 // accumulated deviation
	minMT float64 // running minimum of mT
	widen float64 // threshold multiplier, raised by Rearm after failed canaries
}

// NewQErrorDetector validates cfg and returns an armed detector.
func NewQErrorDetector(cfg QErrorConfig) (*QErrorDetector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &QErrorDetector{cfg: cfg, widen: 1}, nil
}

// Observe feeds one q-error observation. It returns an Event and true when
// the observation triggers the alarm; the detector then resets itself and
// starts accumulating fresh (its widened threshold, if any, is kept until
// Reset).
func (d *QErrorDetector) Observe(qerr float64) (Event, bool) {
	x := math.Log2(qerr)
	if math.IsNaN(x) || x < 0 {
		x = 0 // q-error is defined >= 1; defend against bad callers
	}
	if x > d.cfg.MaxLogQ {
		x = d.cfg.MaxLogQ
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n++
	d.mean += (x - d.mean) / float64(d.n)
	d.mT += x - d.mean - d.cfg.Delta
	if d.mT < d.minMT {
		d.minMT = d.mT
	}
	ph := d.mT - d.minMT
	threshold := d.cfg.Lambda * d.widen
	if d.n < d.cfg.MinSamples || ph <= threshold {
		return Event{}, false
	}
	ev := Event{
		Kind:      KindQError,
		Severity:  severityFor(ph, threshold),
		At:        time.Now(),
		Stat:      ph,
		Threshold: threshold,
		Samples:   d.n,
		Detail: fmt.Sprintf("Page-Hinkley deviation %.2f exceeded %.2f after %d samples (mean log2 q-error %.2f)",
			ph, threshold, d.n, d.mean),
	}
	d.resetLocked()
	return ev, true
}

func (d *QErrorDetector) resetLocked() {
	d.n, d.mean, d.mT, d.minMT = 0, 0, 0, 0
}

// Reset clears the accumulated statistic and restores the original
// threshold; called after a retrained model passes the canary and publishes.
func (d *QErrorDetector) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.resetLocked()
	d.widen = 1
}

// Rearm resets the statistic but multiplies the effective threshold by
// factor (> 1). It is the response to a failed canary: the drift is real
// but retraining did not help, so alarming again at the same sensitivity
// would only burn retraining capacity. Successive Rearms compound.
func (d *QErrorDetector) Rearm(factor float64) {
	if factor < 1 {
		factor = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.resetLocked()
	d.widen *= factor
}

// State reports the detector's live statistic for status endpoints.
func (d *QErrorDetector) State() map[string]any {
	d.mu.Lock()
	defer d.mu.Unlock()
	return map[string]any{
		"samples":   d.n,
		"mean_logq": d.mean,
		"stat":      d.mT - d.minMT,
		"threshold": d.cfg.Lambda * d.widen,
		"widen":     d.widen,
	}
}

// DomainConfig tunes the column-domain detector.
type DomainConfig struct {
	// Window is the number of recent numeric predicate literals considered.
	Window int
	// MaxOODFraction alarms when the fraction of out-of-domain literals in
	// the window exceeds it.
	MaxOODFraction float64
	// MinSamples suppresses alarms until the window has this many literals.
	MinSamples int
}

// DefaultDomainConfig alarms when over a quarter of the last 200 literals
// fall outside the trained column domains.
func DefaultDomainConfig() DomainConfig {
	return DomainConfig{Window: 200, MaxOODFraction: 0.25, MinSamples: 50}
}

func (c DomainConfig) validate() error {
	switch {
	case c.Window < 1:
		return fmt.Errorf("drift: Window = %d, want >= 1", c.Window)
	case c.MaxOODFraction <= 0 || c.MaxOODFraction >= 1:
		return fmt.Errorf("drift: MaxOODFraction = %v, want in (0, 1)", c.MaxOODFraction)
	case c.MinSamples < 1 || c.MinSamples > c.Window:
		return fmt.Errorf("drift: MinSamples = %d, want in [1, Window=%d]", c.MinSamples, c.Window)
	}
	return nil
}

// colBounds is the trained [min, max] of one column.
type colBounds struct{ min, max int64 }

// DomainDetector compares live numeric predicate literals against the
// column domains captured at training time. Safe for concurrent use.
type DomainDetector struct {
	cfg    DomainConfig
	bounds map[string]colBounds // "table.column" → trained bounds

	mu   sync.Mutex
	ring []bool // true = out-of-domain
	pos  int
	n    int // literals seen, capped at len(ring)
	ood  int // out-of-domain literals currently in the window
}

// NewDomainDetector snapshots the column domains of db — the stats the
// currently served model was trained against — and returns an armed
// detector. Snapshotting (rather than reading db live) is deliberate: the
// detector must compare against what the model knows, not what the data
// has become.
func NewDomainDetector(db *table.DB, cfg DomainConfig) (*DomainDetector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if db == nil {
		return nil, fmt.Errorf("drift: nil database")
	}
	bounds := make(map[string]colBounds)
	for _, tn := range db.TableNames() {
		t := db.Table(tn)
		for _, cn := range t.ColumnNames() {
			col := t.Column(cn)
			bounds[tn+"."+cn] = colBounds{min: col.Min(), max: col.Max()}
		}
	}
	return &DomainDetector{cfg: cfg, bounds: bounds, ring: make([]bool, cfg.Window)}, nil
}

// ObserveQuery feeds every numeric selection literal of q into the window
// and reports whether the out-of-domain fraction crossed the threshold.
// String-valued predicates are skipped (dictionary-encoded literals are
// bound to in-domain codes or fail binding long before estimation).
func (d *DomainDetector) ObserveQuery(q *sqlparse.Query) (Event, bool) {
	if q == nil {
		return Event{}, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range sqlparse.CollectPreds(q.Where) {
		if p.Str != nil {
			continue
		}
		b, ok := d.lookupBounds(p.Attr, q.Tables)
		if !ok {
			continue
		}
		d.push(p.Val < b.min || p.Val > b.max)
	}
	if d.n < d.cfg.MinSamples {
		return Event{}, false
	}
	frac := float64(d.ood) / float64(d.n)
	if frac <= d.cfg.MaxOODFraction {
		return Event{}, false
	}
	ev := Event{
		Kind:      KindDomain,
		Severity:  severityFor(frac, d.cfg.MaxOODFraction),
		At:        time.Now(),
		Stat:      frac,
		Threshold: d.cfg.MaxOODFraction,
		Samples:   d.n,
		Detail: fmt.Sprintf("%.0f%% of the last %d predicate literals fall outside the trained column domains",
			frac*100, d.n),
	}
	d.resetLocked()
	return ev, true
}

// lookupBounds resolves an attribute reference — qualified or bare — to
// trained bounds. A bare column name is tried against each of the query's
// tables; the first match wins (the paper's workloads never reuse a column
// name across joined tables with different domains).
func (d *DomainDetector) lookupBounds(attr string, tables []string) (colBounds, bool) {
	if strings.Contains(attr, ".") {
		b, ok := d.bounds[attr]
		return b, ok
	}
	for _, tn := range tables {
		if b, ok := d.bounds[tn+"."+attr]; ok {
			return b, true
		}
	}
	return colBounds{}, false
}

func (d *DomainDetector) push(ood bool) {
	if d.n == len(d.ring) {
		if d.ring[d.pos] {
			d.ood--
		}
	} else {
		d.n++
	}
	d.ring[d.pos] = ood
	if ood {
		d.ood++
	}
	d.pos = (d.pos + 1) % len(d.ring)
}

func (d *DomainDetector) resetLocked() {
	for i := range d.ring {
		d.ring[i] = false
	}
	d.pos, d.n, d.ood = 0, 0, 0
}

// Reset clears the window.
func (d *DomainDetector) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.resetLocked()
}

// State reports the detector's live statistic for status endpoints.
func (d *DomainDetector) State() map[string]any {
	d.mu.Lock()
	defer d.mu.Unlock()
	frac := 0.0
	if d.n > 0 {
		frac = float64(d.ood) / float64(d.n)
	}
	return map[string]any{
		"samples":      d.n,
		"ood_fraction": frac,
		"threshold":    d.cfg.MaxOODFraction,
	}
}
