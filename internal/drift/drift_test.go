package drift

import (
	"testing"

	"qfe/internal/sqlparse"
	"qfe/internal/table"
	"qfe/internal/testutil"
)

func qerrCfg() QErrorConfig {
	return QErrorConfig{Delta: 0.05, Lambda: 5, MinSamples: 10, MaxLogQ: 20}
}

// feedUntilAlarm drives d with good-then-bad q-errors and returns how many
// bad observations it took to alarm (0 = never alarmed within budget).
func feedUntilAlarm(t *testing.T, d *QErrorDetector, good, maxBad int) (Event, int) {
	t.Helper()
	for i := 0; i < good; i++ {
		if ev, fired := d.Observe(1); fired {
			t.Fatalf("alarm after %d healthy observations: %+v", i+1, ev)
		}
	}
	for i := 1; i <= maxBad; i++ {
		if ev, fired := d.Observe(1024); fired {
			return ev, i
		}
	}
	return Event{}, 0
}

func TestQErrorDetectorAlarmsOnDrift(t *testing.T) {
	d, err := NewQErrorDetector(qerrCfg())
	if err != nil {
		t.Fatal(err)
	}
	ev, bad := feedUntilAlarm(t, d, 15, 50)
	if bad == 0 {
		t.Fatal("sustained 1024x q-errors never tripped the detector")
	}
	if ev.Kind != KindQError {
		t.Errorf("event kind = %q, want %q", ev.Kind, KindQError)
	}
	if ev.Samples < 10 {
		t.Errorf("alarm after %d samples, below MinSamples", ev.Samples)
	}
	if ev.Stat <= ev.Threshold {
		t.Errorf("alarm stat %v <= threshold %v", ev.Stat, ev.Threshold)
	}
	// Alarming auto-resets the statistic so one episode yields one event.
	if st := d.State(); st["samples"] != 0 {
		t.Errorf("post-alarm samples = %v, want 0 (auto-reset)", st["samples"])
	}
}

func TestQErrorDetectorRespectsMinSamples(t *testing.T) {
	cfg := qerrCfg()
	cfg.MinSamples = 50
	d, err := NewQErrorDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 49; i++ {
		if ev, fired := d.Observe(1e6); fired {
			t.Fatalf("alarm at observation %d, before MinSamples=50: %+v", i+1, ev)
		}
	}
}

func TestQErrorRearmWidensThreshold(t *testing.T) {
	fresh, err := NewQErrorDetector(qerrCfg())
	if err != nil {
		t.Fatal(err)
	}
	rearmed, err := NewQErrorDetector(qerrCfg())
	if err != nil {
		t.Fatal(err)
	}
	rearmed.Rearm(4)

	_, freshBad := feedUntilAlarm(t, fresh, 15, 50)
	_, rearmedBad := feedUntilAlarm(t, rearmed, 15, 50)
	if freshBad == 0 || rearmedBad == 0 {
		t.Fatalf("detectors never alarmed (fresh %d, rearmed %d)", freshBad, rearmedBad)
	}
	if rearmedBad <= freshBad {
		t.Errorf("rearmed detector alarmed after %d bad samples, fresh after %d; widening must slow the alarm", rearmedBad, freshBad)
	}

	// Reset restores full sensitivity.
	rearmed.Reset()
	_, resetBad := feedUntilAlarm(t, rearmed, 15, 50)
	if resetBad != freshBad {
		t.Errorf("reset detector alarmed after %d bad samples, fresh after %d; Reset must restore the original threshold", resetBad, freshBad)
	}
}

func testDB(t *testing.T) *table.DB {
	t.Helper()
	tbl := table.New("t")
	tbl.MustAddColumn(table.NewColumn("a", []int64{0, 2, 4, 6, 8, 9}))
	tbl.MustAddColumn(table.NewColumn("b", []int64{100, 120, 140, 160, 180, 200}))
	db := table.NewDB()
	db.MustAdd(tbl)
	return db
}

func parse(t *testing.T, sql string) *sqlparse.Query {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestDomainDetectorAlarmsOnOutOfDomainLiterals(t *testing.T) {
	d, err := NewDomainDetector(testDB(t), DomainConfig{Window: 10, MaxOODFraction: 0.5, MinSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	in := parse(t, "SELECT count(*) FROM t WHERE a >= 2 AND b <= 180")
	for i := 0; i < 20; i++ {
		if ev, fired := d.ObserveQuery(in); fired {
			t.Fatalf("in-domain literals tripped the detector: %+v", ev)
		}
	}
	out := parse(t, "SELECT count(*) FROM t WHERE a >= 50 AND b <= 9999")
	var ev Event
	fired := false
	for i := 0; i < 10 && !fired; i++ {
		ev, fired = d.ObserveQuery(out)
	}
	if !fired {
		t.Fatal("sustained out-of-domain literals never tripped the detector")
	}
	if ev.Kind != KindDomain {
		t.Errorf("event kind = %q, want %q", ev.Kind, KindDomain)
	}
	if ev.Stat <= 0.5 {
		t.Errorf("alarm fraction %v, want > 0.5", ev.Stat)
	}
}

func TestDomainDetectorSkipsUnknownColumns(t *testing.T) {
	d, err := NewDomainDetector(testDB(t), DomainConfig{Window: 10, MaxOODFraction: 0.5, MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := parse(t, "SELECT count(*) FROM t WHERE nosuch >= 99999")
	for i := 0; i < 20; i++ {
		if ev, fired := d.ObserveQuery(q); fired {
			t.Fatalf("unknown column literal tripped the detector: %+v", ev)
		}
	}
}

func TestMonitorForwardsAlarmsAndCounts(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	var events []Event
	mon, err := NewMonitor(testDB(t), MonitorConfig{
		QError:  QErrorConfig{Delta: 0.05, Lambda: 2, MinSamples: 5, MaxLogQ: 20},
		Domain:  DomainConfig{Window: 10, MaxOODFraction: 0.5, MinSamples: 5},
		OnEvent: func(ev Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	q := parse(t, "SELECT count(*) FROM t WHERE a >= 2")
	for i := 0; i < 6; i++ {
		mon.ObserveFeedback(q, 100, 100, true) // q-error 1: healthy
	}
	for i := 0; i < 10 && len(events) == 0; i++ {
		mon.ObserveFeedback(q, 1, 1e6, true) // q-error 1e6: drifted
	}
	if len(events) == 0 {
		t.Fatal("monitor never forwarded a q-error alarm")
	}
	if events[0].Kind != KindQError {
		t.Errorf("forwarded event kind = %q, want %q", events[0].Kind, KindQError)
	}

	c := mon.Counters()
	if c["drift_alarms_qerror"].(uint64) == 0 {
		t.Error("drift_alarms_qerror counter is 0 after an alarm")
	}
	if c["drift_feedback_observed"].(uint64) < 7 {
		t.Errorf("drift_feedback_observed = %v, want >= 7", c["drift_feedback_observed"])
	}

	st := mon.Status()
	if recent := st["recent"].([]Event); len(recent) == 0 {
		t.Error("Status reports no recent events after an alarm")
	}

	// Unlabeled feedback (actual <= 0) must not touch the q-error path.
	before := mon.Counters()["drift_alarms_qerror"].(uint64)
	for i := 0; i < 20; i++ {
		mon.ObserveFeedback(q, 1, 0, false)
	}
	if after := mon.Counters()["drift_alarms_qerror"].(uint64); after != before {
		t.Errorf("unlabeled feedback moved the q-error alarm counter %d -> %d", before, after)
	}

	mon.Rearm(2)
	mon.Reset()
}

// TestMonitorAlarmActive: the cache-bypass signal latches on the first
// alarm and clears on Reset/Rearm — the lifetime the serving layer's
// CacheBypass hook depends on.
func TestMonitorAlarmActive(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	mon, err := NewMonitor(testDB(t), MonitorConfig{
		QError: QErrorConfig{Delta: 0.05, Lambda: 2, MinSamples: 5, MaxLogQ: 20},
		Domain: DomainConfig{Window: 10, MaxOODFraction: 0.5, MinSamples: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mon.AlarmActive() {
		t.Fatal("fresh monitor reports an active alarm")
	}

	q := parse(t, "SELECT count(*) FROM t WHERE a >= 2")
	for i := 0; i < 6; i++ {
		mon.ObserveFeedback(q, 100, 100, true)
	}
	for i := 0; i < 10 && !mon.AlarmActive(); i++ {
		mon.ObserveFeedback(q, 1, 1e6, true)
	}
	if !mon.AlarmActive() {
		t.Fatal("sustained drift never raised AlarmActive")
	}
	if v := mon.Counters()["drift_alarm_active"]; v != true {
		t.Errorf("drift_alarm_active counter = %v, want true", v)
	}
	if v := mon.Status()["alarmActive"]; v != true {
		t.Errorf("Status alarmActive = %v, want true", v)
	}

	mon.Reset()
	if mon.AlarmActive() {
		t.Fatal("Reset did not clear the active alarm")
	}

	// Re-alarm, then Rearm (the rejected-retrain path) must clear it too.
	for i := 0; i < 6; i++ {
		mon.ObserveFeedback(q, 100, 100, true)
	}
	for i := 0; i < 10 && !mon.AlarmActive(); i++ {
		mon.ObserveFeedback(q, 1, 1e6, true)
	}
	if !mon.AlarmActive() {
		t.Fatal("monitor did not re-alarm after Reset")
	}
	mon.Rearm(2)
	if mon.AlarmActive() {
		t.Fatal("Rearm did not clear the active alarm")
	}
}
