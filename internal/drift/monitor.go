package drift

import (
	"sync"

	"qfe/internal/metrics"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// maxRecentEvents bounds the event history Status reports.
const maxRecentEvents = 32

// MonitorConfig configures a Monitor. Zero-value detector configs are
// replaced by their defaults.
type MonitorConfig struct {
	QError QErrorConfig
	Domain DomainConfig
	// OnEvent, when non-nil, receives every alarm synchronously from the
	// observing goroutine. Keep it fast and non-blocking: the trainer's
	// controller hands the event to a channel and returns.
	OnEvent func(Event)
}

// Monitor runs both detectors over the serving feedback stream, keeps the
// counters and recent-event history behind /v1/drift, and forwards alarms
// to the retraining controller. Safe for concurrent use.
type Monitor struct {
	qerr    *QErrorDetector
	dom     *DomainDetector
	onEvent func(Event)

	mu       sync.Mutex
	recent   []Event
	observed uint64
	alarms   map[Kind]uint64
	// alarmed is true from the first alarm until the detectors are restored
	// (Reset after a successful retrain publish, or Rearm after a rejected
	// one). The serving layer polls it to bypass its estimate cache while
	// drift is suspected — a stale cached estimate during drift is worse
	// than recomputation.
	alarmed bool
}

// NewMonitor builds a monitor whose domain detector is trained on db's
// current column statistics.
func NewMonitor(db *table.DB, cfg MonitorConfig) (*Monitor, error) {
	if cfg.QError == (QErrorConfig{}) {
		cfg.QError = DefaultQErrorConfig()
	}
	if cfg.Domain == (DomainConfig{}) {
		cfg.Domain = DefaultDomainConfig()
	}
	qd, err := NewQErrorDetector(cfg.QError)
	if err != nil {
		return nil, err
	}
	dd, err := NewDomainDetector(db, cfg.Domain)
	if err != nil {
		return nil, err
	}
	return &Monitor{
		qerr:    qd,
		dom:     dd,
		onEvent: cfg.OnEvent,
		alarms:  make(map[Kind]uint64),
	}, nil
}

// ObserveFeedback feeds one served estimate into both detectors. hasActual
// says whether actual is real ground truth — a genuine zero-row actual
// drives the q-error detector (QError clamps the truth to 1), while
// observations without feedback drive only the domain detector. The
// explicit bit exists because a bare actual==0 used to mean both "no
// feedback" and "empty result", and phantom zero actuals must never reach
// the detector.
func (m *Monitor) ObserveFeedback(q *sqlparse.Query, est, actual float64, hasActual bool) {
	m.mu.Lock()
	m.observed++
	m.mu.Unlock()
	if hasActual {
		if ev, fired := m.qerr.Observe(metrics.QError(actual, est)); fired {
			m.record(ev)
		}
	}
	if ev, fired := m.dom.ObserveQuery(q); fired {
		m.record(ev)
	}
}

func (m *Monitor) record(ev Event) {
	m.mu.Lock()
	m.alarms[ev.Kind]++
	m.alarmed = true
	m.recent = append(m.recent, ev)
	if len(m.recent) > maxRecentEvents {
		m.recent = m.recent[len(m.recent)-maxRecentEvents:]
	}
	cb := m.onEvent
	m.mu.Unlock()
	if cb != nil {
		cb(ev)
	}
}

// Reset restores both detectors to full sensitivity; called after a
// retrained model passes the canary and publishes.
func (m *Monitor) Reset() {
	m.qerr.Reset()
	m.dom.Reset()
	m.clearAlarm()
}

// Rearm resets both detectors but widens the q-error threshold by factor;
// the response to a retrain whose canary failed.
func (m *Monitor) Rearm(factor float64) {
	m.qerr.Rearm(factor)
	m.dom.Reset()
	m.clearAlarm()
}

func (m *Monitor) clearAlarm() {
	m.mu.Lock()
	m.alarmed = false
	m.mu.Unlock()
}

// AlarmActive reports whether any detector has alarmed since the last
// Reset/Rearm. Wire it into serve.Config.CacheBypass so the estimate cache
// steps aside while the live model is under suspicion.
func (m *Monitor) AlarmActive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alarmed
}

// Counters returns the monitor's cumulative counters in a flat, /metrics
// friendly form.
func (m *Monitor) Counters() map[string]any {
	m.mu.Lock()
	defer m.mu.Unlock()
	return map[string]any{
		"drift_feedback_observed": m.observed,
		"drift_alarms_qerror":     m.alarms[KindQError],
		"drift_alarms_domain":     m.alarms[KindDomain],
		"drift_alarm_active":      m.alarmed,
	}
}

// Status returns the full detector state plus recent events, the payload
// behind /v1/drift.
func (m *Monitor) Status() map[string]any {
	m.mu.Lock()
	recent := append([]Event(nil), m.recent...)
	observed := m.observed
	qAlarms, dAlarms := m.alarms[KindQError], m.alarms[KindDomain]
	alarmed := m.alarmed
	m.mu.Unlock()
	return map[string]any{
		"observed":    observed,
		"alarmActive": alarmed,
		"alarms": map[string]uint64{
			string(KindQError): qAlarms,
			string(KindDomain): dAlarms,
		},
		"qerror": m.qerr.State(),
		"domain": m.dom.State(),
		"recent": recent,
	}
}
