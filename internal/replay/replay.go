// Package replay scores estimators against the real traffic captured by
// the feedback journal, closing the loop the synthetic workloads cannot:
// estimator rankings flip between synthetic and production query
// distributions, so the journal's labeled records — not generated ones —
// are what publish gates and offline comparisons should run on.
//
// Three tools live here:
//
//   - Replay streams journaled records through any estimator and produces a
//     q-error report (median/p95/max, per-table breakdowns) from the
//     client-reported actuals;
//   - DeriveCanary turns recent labeled traffic into a workload.Set via a
//     deterministic reservoir sample, ready to drop into serve's canary
//     gate;
//   - ActualIndex is a bounded fingerprint → actual-cardinality map the
//     retrainer consults to label queries from journaled feedback before
//     paying for exact execution.
package replay

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"

	"qfe/internal/core"
	"qfe/internal/estimator"
	"qfe/internal/journal"
	"qfe/internal/metrics"
	"qfe/internal/sqlparse"
	"qfe/internal/workload"
)

// TableStats is the q-error breakdown for one table combination.
type TableStats struct {
	Queries int     `json:"queries"`
	Median  float64 `json:"median"`
	P95     float64 `json:"p95"`
	Max     float64 `json:"max"`
}

// Report is the outcome of replaying a record stream through one estimator.
type Report struct {
	Model string `json:"model"`
	// Records is how many journal records the replay saw.
	Records int `json:"records"`
	// Unlabeled records carry no actual and cannot be scored.
	Unlabeled int `json:"unlabeled"`
	// Unparsed records carry SQL that no longer parses (or empty SQL).
	Unparsed int `json:"unparsed"`
	// Failed estimates (errors, cancellations) score as +Inf q-error.
	Failed int `json:"failed"`
	// Scored is how many q-errors the summary aggregates.
	Scored int     `json:"scored"`
	Median float64 `json:"median"`
	P95    float64 `json:"p95"`
	Max    float64 `json:"max"`
	// PerTable breaks the q-errors down by the query's FROM list
	// (comma-joined, as rendered by sqlparse).
	PerTable map[string]TableStats `json:"perTable,omitempty"`
}

// Replay estimates every labeled record with est and aggregates q-errors
// against the journaled actuals. Replay order is the journal's (oldest
// first), so the report is deterministic for a fixed estimator and stream.
// A cancelled context fails the remaining records rather than aborting: the
// report always accounts for every record it was given.
func Replay(ctx context.Context, est estimator.Estimator, records []journal.Record) Report {
	rep := Report{Model: est.Name(), Records: len(records), PerTable: map[string]TableStats{}}
	var all []float64
	perTable := map[string][]float64{}
	for _, rec := range records {
		if !rec.HasActual {
			rep.Unlabeled++
			continue
		}
		q, err := sqlparse.Parse(rec.SQL)
		if err != nil {
			rep.Unparsed++
			continue
		}
		qerr := math.Inf(1)
		e, err := estimator.EstimateWithContext(ctx, est, q)
		if err != nil {
			rep.Failed++
		} else {
			qerr = metrics.QError(rec.Actual, e)
		}
		all = append(all, qerr)
		key := tableKey(q)
		perTable[key] = append(perTable[key], qerr)
	}
	rep.Scored = len(all)
	rep.Median, rep.P95, rep.Max = summarize(all)
	for key, errs := range perTable {
		med, p95, max := summarize(errs)
		rep.PerTable[key] = TableStats{Queries: len(errs), Median: med, P95: p95, Max: max}
	}
	return rep
}

func tableKey(q *sqlparse.Query) string {
	if len(q.Tables) == 0 {
		return "(none)"
	}
	if len(q.Tables) == 1 {
		return q.Tables[0]
	}
	tables := append([]string(nil), q.Tables...)
	sort.Strings(tables)
	key := tables[0]
	for _, t := range tables[1:] {
		key += "," + t
	}
	return key
}

func summarize(errs []float64) (median, p95, max float64) {
	if len(errs) == 0 {
		return 0, 0, 0
	}
	for _, e := range errs {
		if e > max || math.IsInf(e, 1) {
			max = e
		}
	}
	return metrics.Quantile(errs, 0.5), metrics.Quantile(errs, 0.95), max
}

// DeriveCanary reservoir-samples up to n labeled queries from records into
// a canary workload.Set. The sample is deterministic for a fixed record
// stream, n, and seed (Vitter's algorithm R over the eligible records, in
// journal order), so two recoveries of the same journal derive the same
// canary. Records are eligible when they carry an actual of at least one
// row (the q-error convention scores only non-empty results), parse, and
// are the first occurrence of their fingerprint — real traffic repeats
// queries, and a canary of thirty copies of one hot query gates nothing.
func DeriveCanary(records []journal.Record, n int, seed int64) workload.Set {
	if n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	reservoir := make(workload.Set, 0, n)
	eligible := 0
	for _, rec := range records {
		if !rec.HasActual || rec.Actual < 1 || rec.Actual != math.Trunc(rec.Actual) {
			continue
		}
		q, err := sqlparse.Parse(rec.SQL)
		if err != nil {
			continue
		}
		fp := rec.Fingerprint
		if fp == "" {
			fp = core.Fingerprint(q)
		}
		if seen[fp] {
			continue
		}
		seen[fp] = true
		labeled := workload.Labeled{Query: q, Card: int64(rec.Actual)}
		eligible++
		if len(reservoir) < n {
			reservoir = append(reservoir, labeled)
			continue
		}
		if k := rng.Intn(eligible); k < n {
			reservoir[k] = labeled
		}
	}
	return reservoir
}

// ActualIndex is a bounded fingerprint → actual-cardinality index over
// journaled feedback. The retrainer consults it to label queries for free
// before falling back to exact execution; the serving layer feeds it from
// live feedback events. When full, new fingerprints are dropped (the
// retrainer's fallback path still labels them) while known fingerprints
// keep updating to the freshest actual.
type ActualIndex struct {
	mu  sync.Mutex
	cap int
	m   map[string]int64
}

// NewActualIndex returns an index holding at most capacity fingerprints.
// capacity <= 0 means the default 65536.
func NewActualIndex(capacity int) *ActualIndex {
	if capacity <= 0 {
		capacity = 65536
	}
	return &ActualIndex{cap: capacity, m: make(map[string]int64)}
}

// Put records the actual cardinality for a fingerprint. Non-negative
// integral actuals only; anything else is ignored.
func (ix *ActualIndex) Put(fingerprint string, actual float64) {
	if fingerprint == "" || !(actual >= 0) || actual != math.Trunc(actual) || actual > math.MaxInt64 {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.m[fingerprint]; !ok && len(ix.m) >= ix.cap {
		return
	}
	ix.m[fingerprint] = int64(actual)
}

// PutRecords indexes every labeled record (e.g. a recovered journal).
func (ix *ActualIndex) PutRecords(records []journal.Record) {
	for _, rec := range records {
		if rec.HasActual {
			ix.Put(rec.Fingerprint, rec.Actual)
		}
	}
}

// Lookup returns the journaled actual for q, keyed by core.Fingerprint.
func (ix *ActualIndex) Lookup(q *sqlparse.Query) (int64, bool) {
	return ix.LookupFingerprint(core.Fingerprint(q))
}

// LookupFingerprint returns the journaled actual for a fingerprint.
func (ix *ActualIndex) LookupFingerprint(fp string) (int64, bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	v, ok := ix.m[fp]
	return v, ok
}

// Len returns how many fingerprints are indexed.
func (ix *ActualIndex) Len() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.m)
}
