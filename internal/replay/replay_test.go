package replay_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"qfe/internal/core"
	"qfe/internal/journal"
	"qfe/internal/replay"
	"qfe/internal/sqlparse"
	"qfe/internal/testutil"
)

// constEst answers every estimate with a fixed value.
type constEst float64

func (c constEst) Name() string                              { return "const" }
func (c constEst) Estimate(*sqlparse.Query) (float64, error) { return float64(c), nil }

// errEst fails every estimate.
type errEst struct{}

func (errEst) Name() string                              { return "err" }
func (errEst) Estimate(*sqlparse.Query) (float64, error) { return 0, errors.New("boom") }

func labeledRec(i int, actual float64) journal.Record {
	return journal.Record{
		UnixMicros: int64(i) + 1,
		SQL:        fmt.Sprintf("SELECT count(*) FROM t WHERE a >= %d", i),
		Actual:     actual,
		HasActual:  true,
	}
}

func TestReplayReport(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	records := []journal.Record{
		labeledRec(0, 10),   // q-error 1 against constEst(10)
		labeledRec(1, 10),   // q-error 1
		labeledRec(2, 1000), // q-error 100
		{UnixMicros: 4, SQL: "SELECT count(*) FROM t WHERE a >= 4", Estimate: 5}, // unlabeled
		{UnixMicros: 5, SQL: "this is not SQL", Actual: 3, HasActual: true},      // unparseable
	}
	rep := replay.Replay(context.Background(), constEst(10), records)
	if rep.Model != "const" {
		t.Errorf("Model = %q, want the estimator's name", rep.Model)
	}
	if rep.Records != 5 || rep.Scored != 3 || rep.Unlabeled != 1 || rep.Unparsed != 1 || rep.Failed != 0 {
		t.Fatalf("accounting = %+v, want 5 records / 3 scored / 1 unlabeled / 1 unparsed", rep)
	}
	if rep.Median != 1 || rep.Max != 100 {
		t.Errorf("median %v / max %v, want 1 / 100 over q-errors {1,1,100}", rep.Median, rep.Max)
	}
	ts, ok := rep.PerTable["t"]
	if !ok || ts.Queries != 3 || ts.Max != 100 {
		t.Errorf("PerTable[t] = %+v (ok=%v), want all 3 scored queries", ts, ok)
	}
}

func TestReplayDeterministic(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	records := make([]journal.Record, 40)
	for i := range records {
		records[i] = labeledRec(i, float64(i%7)+1)
	}
	a := replay.Replay(context.Background(), constEst(4), records)
	b := replay.Replay(context.Background(), constEst(4), records)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two replays of the same stream differ:\n%+v\n%+v", a, b)
	}
}

func TestReplayScoresFailuresAsInf(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	records := []journal.Record{labeledRec(0, 10), labeledRec(1, 10)}
	rep := replay.Replay(context.Background(), errEst{}, records)
	if rep.Failed != 2 || rep.Scored != 2 {
		t.Fatalf("accounting = %+v, want both records failed AND scored", rep)
	}
	if !math.IsInf(rep.Max, 1) {
		t.Errorf("Max = %v, want +Inf for failed estimates", rep.Max)
	}
}

func TestDeriveCanaryDeterministicAndDeduplicated(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	records := make([]journal.Record, 0, 60)
	for i := 0; i < 30; i++ {
		records = append(records, labeledRec(i, float64(i)+1))
		// Real traffic repeats: every query appears twice (same fingerprint).
		records = append(records, labeledRec(i, float64(i)+1))
	}
	a := replay.DeriveCanary(records, 10, 42)
	b := replay.DeriveCanary(records, 10, 42)
	if len(a) != 10 {
		t.Fatalf("canary holds %d queries, want 10", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("derivations differ in size: %d vs %d", len(a), len(b))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].Query.String() != b[i].Query.String() || a[i].Card != b[i].Card {
			t.Fatalf("derivation is not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
		fp := core.Fingerprint(a[i].Query)
		if seen[fp] {
			t.Fatalf("canary holds fingerprint %s twice", fp)
		}
		seen[fp] = true
	}
}

func TestDeriveCanaryEligibility(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	records := []journal.Record{
		labeledRec(0, 5), // the only eligible record
		{UnixMicros: 2, SQL: "SELECT count(*) FROM t WHERE a >= 90", Estimate: 5},                  // no actual
		{UnixMicros: 3, SQL: "SELECT count(*) FROM t WHERE a >= 91", Actual: 0, HasActual: true},   // empty result: q-error convention needs >= 1
		{UnixMicros: 4, SQL: "SELECT count(*) FROM t WHERE a >= 92", Actual: 2.5, HasActual: true}, // fractional actual
		{UnixMicros: 5, SQL: "not sql at all", Actual: 3, HasActual: true},                         // unparseable
	}
	ws := replay.DeriveCanary(records, 10, 1)
	if len(ws) != 1 || ws[0].Card != 5 {
		t.Fatalf("canary = %v, want exactly the one eligible record (card 5)", ws)
	}
	if got := replay.DeriveCanary(records, 0, 1); got != nil {
		t.Errorf("DeriveCanary(n=0) = %v, want nil", got)
	}
}

func TestActualIndexBoundedAndPicky(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ix := replay.NewActualIndex(2)
	ix.Put("a", 10)
	ix.Put("b", 20)
	ix.Put("c", 30) // over capacity: dropped
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want the 2-entry cap honored", ix.Len())
	}
	if _, ok := ix.LookupFingerprint("c"); ok {
		t.Error("over-cap fingerprint was admitted")
	}
	ix.Put("a", 11) // known fingerprints keep updating at capacity
	if v, ok := ix.LookupFingerprint("a"); !ok || v != 11 {
		t.Errorf("LookupFingerprint(a) = (%d, %v), want the refreshed 11", v, ok)
	}
	ix.Put("", 5)    // no fingerprint
	ix.Put("d", -1)  // negative
	ix.Put("d", 1.5) // fractional
	ix.Put("d", math.NaN())
	if ix.Len() != 2 {
		t.Fatalf("Len = %d after rejected puts, want 2", ix.Len())
	}

	// Lookup keys by core.Fingerprint of the parsed query, matching how the
	// serving layer fed the index.
	q, err := sqlparse.Parse("SELECT count(*) FROM t WHERE a >= 1")
	if err != nil {
		t.Fatal(err)
	}
	big := replay.NewActualIndex(0)
	big.PutRecords([]journal.Record{{
		SQL: "SELECT count(*) FROM t WHERE a >= 1", Fingerprint: core.Fingerprint(q),
		Actual: 77, HasActual: true,
	}})
	if v, ok := big.Lookup(q); !ok || v != 77 {
		t.Fatalf("Lookup = (%d, %v), want the journaled 77", v, ok)
	}
	// An explicit zero actual is legitimate feedback and indexable.
	big.Put("zero", 0)
	if v, ok := big.LookupFingerprint("zero"); !ok || v != 0 {
		t.Errorf("zero actual = (%d, %v), want (0, true)", v, ok)
	}
}
