package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			seen := make([]atomic.Int32, n)
			Do(n, workers, func(i int) { seen[i].Add(1) })
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestDoDeterministicPerIndexOutput(t *testing.T) {
	n := 500
	ref := make([]int, n)
	Do(n, 1, func(i int) { ref[i] = i * i })
	for _, workers := range []int{2, 3, 8} {
		out := make([]int, n)
		Do(n, workers, func(i int) { out[i] = i * i })
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], ref[i])
			}
		}
	}
}

func TestDoChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 5, 64, 101} {
			seen := make([]atomic.Int32, n)
			var calls atomic.Int32
			DoChunks(n, workers, func(lo, hi int) {
				calls.Add(1)
				if lo >= hi {
					t.Errorf("empty chunk [%d, %d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
			})
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, got)
				}
			}
			if n > 0 && calls.Load() > int32(workers) {
				t.Errorf("workers=%d n=%d: %d chunks, want <= %d", workers, n, calls.Load(), workers)
			}
		}
	}
}
