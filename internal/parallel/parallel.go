// Package parallel provides the small worker-pool primitives that drive the
// reproduction's hot paths — workload labeling (internal/exec), gradient-
// boosting split search (internal/ml/gb), and mini-batch neural training
// (internal/ml/nn) — across GOMAXPROCS cores.
//
// The package enforces one discipline everywhere it is used: parallel
// execution must be *observationally deterministic*. Work items write only
// to their own output slots (distinct slice indices), and any cross-item
// reduction happens after the pool drains, in a fixed order independent of
// worker count and scheduling. Under that discipline every caller produces
// bit-identical results for any worker count, including 1 — which is also
// what keeps `go test -race` clean.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values < 1 mean "one worker
// per logical CPU" (GOMAXPROCS at call time).
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Do runs fn(i) for every i in [0, n) using at most workers goroutines.
// Indices are handed out dynamically from an atomic counter, so uneven item
// costs balance automatically. With workers <= 1 (or n <= 1) fn runs inline
// on the calling goroutine with zero overhead.
//
// fn must confine its side effects to per-index state (e.g. out[i]); Do
// itself imposes no ordering between distinct indices.
func Do(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}

// DoChunks splits [0, n) into at most workers contiguous chunks of
// near-equal size and runs fn(lo, hi) for each, in parallel. Use it when
// per-item work is cheap enough that per-index dispatch would dominate, or
// when a worker wants to reuse scratch buffers across the items of its
// chunk. With workers <= 1 the single chunk [0, n) runs inline.
func DoChunks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
