package bench

import (
	"strings"
	"testing"

	"qfe/internal/metrics"
)

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "a title"}
	r.Printf("line %d", 1)
	r.Lines = append(r.Lines, summaryRow("label", metrics.Summary{Mean: 1.5, Median: 1.2, P99: 9, Max: 10}))
	out := r.String()
	if !strings.Contains(out, "=== x — a title ===") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "line 1") || !strings.Contains(out, "label") {
		t.Errorf("missing lines: %q", out)
	}
}

func TestSummaryRowAlignment(t *testing.T) {
	row := summaryRow("m", metrics.Summary{Mean: 3.14159, Median: 1, P99: 100, Max: 1000})
	for _, want := range []string{"mean=", "median=", "p99=", "max=", "3.14"} {
		if !strings.Contains(row, want) {
			t.Errorf("summaryRow %q lacks %q", row, want)
		}
	}
}

func TestBoxplotRowAlignment(t *testing.T) {
	row := boxplotRow("m", metrics.BoxplotStats{P01: 1, P25: 2, Median: 3, P75: 4, P99: 5})
	for _, want := range []string{"p01=", "p25=", "med=", "p75=", "p99="} {
		if !strings.Contains(row, want) {
			t.Errorf("boxplotRow %q lacks %q", row, want)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	got := sortedKeys(m)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("sortedKeys = %v", got)
	}
	if len(sortedKeys(map[int]int{})) != 0 {
		t.Error("empty map should give empty keys")
	}
}
