package bench

import (
	"fmt"
	"sync"

	"qfe/internal/catalog"
	"qfe/internal/core"
	"qfe/internal/dataset"
	"qfe/internal/estimator"
	"qfe/internal/ml/gb"
	"qfe/internal/ml/mscn"
	"qfe/internal/ml/nn"
	"qfe/internal/table"
	"qfe/internal/workload"
)

// Env lazily builds and caches the shared experiment artifacts — datasets
// and labeled workloads — so that running several experiments in one process
// (benchrunner, the benchmark suite) pays for generation and labeling once.
// The paper spends 3.5 days generating and labeling queries; caching the
// labeled workloads is this harness's equivalent of their query log.
type Env struct {
	Scale Scale

	// Workers bounds the training/labeling goroutines of the learned
	// models (gb/nn); < 1 means one per logical CPU. Results are
	// bit-identical for every value — only wall-clock changes.
	Workers int

	mu sync.Mutex

	forest   *table.Table
	forestDB *table.DB

	conjSet  workload.Set
	mixedSet workload.Set

	imdb     *table.DB
	schema   *catalog.Schema
	joinSet  workload.Set
	jobLight workload.Set
}

// NewEnv returns an empty environment at the given scale.
func NewEnv(scale Scale) *Env { return &Env{Scale: scale} }

// Forest returns the covertype-shaped table, building it on first use.
func (e *Env) Forest() (*table.Table, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.forestLocked()
}

func (e *Env) forestLocked() (*table.Table, error) {
	if e.forest == nil {
		t, err := dataset.Forest(dataset.ForestConfig{
			Rows:        e.Scale.ForestRows,
			QuantAttrs:  e.Scale.ForestQuant,
			BinaryAttrs: e.Scale.ForestBinary,
			Seed:        20230328,
		})
		if err != nil {
			return nil, err
		}
		e.forest = t
		e.forestDB = table.NewDB()
		e.forestDB.MustAdd(t)
	}
	return e.forest, nil
}

// ForestDB returns the forest table wrapped as a database.
func (e *Env) ForestDB() (*table.DB, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.forestLocked(); err != nil {
		return nil, err
	}
	return e.forestDB, nil
}

// ConjWorkload returns the labeled conjunctive workload split into train and
// test.
func (e *Env) ConjWorkload() (train, test workload.Set, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.conjSet == nil {
		t, err := e.forestLocked()
		if err != nil {
			return nil, nil, err
		}
		e.conjSet, err = workload.Conjunctive(t, workload.ConjConfig{
			Count:        e.Scale.ConjCount,
			MaxAttrs:     e.Scale.ForestMaxAttrs,
			MaxNotEquals: 5,
			Seed:         1,
		})
		if err != nil {
			return nil, nil, err
		}
	}
	tr, te := e.conjSet.Split(len(e.conjSet) - e.Scale.TestCount)
	return tr, te, nil
}

// MixedWorkload returns the labeled mixed workload split into train and
// test.
func (e *Env) MixedWorkload() (train, test workload.Set, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mixedSet == nil {
		t, err := e.forestLocked()
		if err != nil {
			return nil, nil, err
		}
		e.mixedSet, err = workload.Mixed(t, workload.MixedConfig{
			ConjConfig: workload.ConjConfig{
				Count:        e.Scale.MixedCount,
				MaxAttrs:     e.Scale.ForestMaxAttrs,
				MaxNotEquals: 5,
				Seed:         2,
			},
			MaxBranches: 3,
		})
		if err != nil {
			return nil, nil, err
		}
	}
	tr, te := e.mixedSet.Split(len(e.mixedSet) - e.Scale.TestCount)
	return tr, te, nil
}

// IMDB returns the star-schema database and its catalog schema.
func (e *Env) IMDB() (*table.DB, *catalog.Schema, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.imdbLocked()
}

func (e *Env) imdbLocked() (*table.DB, *catalog.Schema, error) {
	if e.imdb == nil {
		db, err := dataset.IMDB(dataset.IMDBConfig{Titles: e.Scale.IMDBTitles, Seed: 20190112})
		if err != nil {
			return nil, nil, err
		}
		e.imdb = db
		e.schema = dataset.IMDBSchema()
	}
	return e.imdb, e.schema, nil
}

// JoinTraining returns the stratified join training workload: JoinPerSub
// labeled queries for every connected sub-schema.
func (e *Env) JoinTraining() (workload.Set, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.joinSet == nil {
		db, schema, err := e.imdbLocked()
		if err != nil {
			return nil, err
		}
		e.joinSet, err = workload.StratifiedJoinTraining(db, schema, e.Scale.JoinPerSub, 0, 5, 231)
		if err != nil {
			return nil, err
		}
	}
	return e.joinSet, nil
}

// JOBLight returns the JOB-light-style test suite.
func (e *Env) JOBLight() (workload.Set, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.jobLight == nil {
		db, schema, err := e.imdbLocked()
		if err != nil {
			return nil, err
		}
		cfg := workload.DefaultJOBLightConfig()
		cfg.Count = e.Scale.JOBLightCount
		e.jobLight, err = workload.JOBLight(db, schema, cfg)
		if err != nil {
			return nil, err
		}
	}
	return e.jobLight, nil
}

// ForestSchema returns the one-table schema used to run MSCN as a global
// model over the forest workloads (Figure 1).
func (e *Env) ForestSchema() (*catalog.Schema, error) {
	t, err := e.Forest()
	if err != nil {
		return nil, err
	}
	return &catalog.Schema{Tables: []string{t.Name}}, nil
}

// Model configuration helpers tied to the scale profile.

func (e *Env) gbConfig() gb.Config {
	cfg := gb.DefaultConfig()
	cfg.NumTrees = e.Scale.GBTrees
	cfg.Seed = 7
	cfg.Workers = e.Workers
	return cfg
}

func (e *Env) nnConfig() nn.Config {
	cfg := nn.DefaultConfig()
	cfg.Hidden = append([]int(nil), e.Scale.NNHidden...)
	cfg.Epochs = e.Scale.NNEpochs
	cfg.Seed = 7
	cfg.Workers = e.Workers
	return cfg
}

func (e *Env) mscnConfig() mscn.Config {
	cfg := mscn.DefaultConfig()
	cfg.Epochs = e.Scale.MSCNEpochs
	cfg.Seed = 7
	return cfg
}

func (e *Env) coreOptions() core.Options {
	return core.Options{MaxEntriesPerAttr: e.Scale.Entries, AttrSel: true}
}

// trainLocal builds and trains a local estimator for the given QFT and
// model name over the forest table.
func (e *Env) trainLocal(qft, model string, opts core.Options, train workload.Set) (*estimator.Local, error) {
	db, err := e.ForestDB()
	if err != nil {
		return nil, err
	}
	factory, err := estimator.FactoryByName(model, e.gbConfig(), e.nnConfig())
	if err != nil {
		return nil, err
	}
	loc, err := estimator.NewLocal(db, estimator.LocalConfig{
		QFT:          qft,
		Opts:         opts,
		NewRegressor: factory,
	})
	if err != nil {
		return nil, err
	}
	if err := loc.Train(train); err != nil {
		return nil, err
	}
	return loc, nil
}

// trainJoinLocal builds and trains a local estimator over the IMDb schema.
func (e *Env) trainJoinLocal(qft, model string, opts core.Options, train workload.Set) (*estimator.Local, error) {
	db, _, err := e.IMDB()
	if err != nil {
		return nil, err
	}
	factory, err := estimator.FactoryByName(model, e.gbConfig(), e.nnConfig())
	if err != nil {
		return nil, err
	}
	loc, err := estimator.NewLocal(db, estimator.LocalConfig{
		QFT:          qft,
		Opts:         opts,
		NewRegressor: factory,
	})
	if err != nil {
		return nil, err
	}
	if err := loc.Train(train); err != nil {
		return nil, err
	}
	return loc, nil
}

func (e *Env) String() string {
	return fmt.Sprintf("bench.Env(scale=%s)", e.Scale.Name)
}
