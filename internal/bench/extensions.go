package bench

import (
	"fmt"

	"qfe/internal/core"
	"qfe/internal/estimator"
	"qfe/internal/ml/linreg"
)

// This file hosts the paper's sketched-but-unevaluated extensions, made
// runnable: the simpler-models exclusion of Section 2.2 and the
// attribute-specific partition budget of Section 3.2.

// ExtensionModelZoo reproduces the Section 2.2 exclusion: linear regression
// ("simpler models") against GB and NN under the same QFT. The paper
// reports the simpler models' "estimates are worse by a significant
// factor"; the report shows by how much here.
func ExtensionModelZoo(env *Env) (*Report, error) {
	r := &Report{ID: "ext1", Title: "Simpler models (Section 2.2 exclusion): LR vs NN vs GB"}
	train, test, err := env.ConjWorkload()
	if err != nil {
		return nil, err
	}
	db, err := env.ForestDB()
	if err != nil {
		return nil, err
	}
	factories := []struct {
		name    string
		factory estimator.RegressorFactory
	}{
		{"GB", estimator.NewGBFactory(env.gbConfig())},
		{"NN", estimator.NewNNFactory(env.nnConfig())},
		{"LR", estimator.NewLinRegFactory(linreg.DefaultConfig())},
	}
	for _, f := range factories {
		loc, err := estimator.NewLocal(db, estimator.LocalConfig{
			QFT:          "conjunctive",
			Opts:         env.coreOptions(),
			NewRegressor: f.factory,
		})
		if err != nil {
			return nil, err
		}
		if err := loc.Train(train); err != nil {
			return nil, fmt.Errorf("ext1 %s: %w", f.name, err)
		}
		sum, err := estimator.Summarize(loc, test)
		if err != nil {
			return nil, err
		}
		r.Lines = append(r.Lines, summaryRow(f.name+" + conjunctive", sum))
	}
	r.Printf("(the paper excluded the simpler models for exactly this gap)")
	return r, nil
}

// ExtensionAdaptiveEntries evaluates the Section 3.2 extension of an
// attribute-specific number of partitions: a log-distinct-weighted entry
// budget against the uniform per-attribute n, at equal total feature-vector
// size.
func ExtensionAdaptiveEntries(env *Env) (*Report, error) {
	r := &Report{ID: "ext2", Title: "Attribute-specific n (Section 3.2 extension) vs uniform n"}
	train, test, err := env.ConjWorkload()
	if err != nil {
		return nil, err
	}
	forest, err := env.Forest()
	if err != nil {
		return nil, err
	}
	opts := env.coreOptions()

	uniform := core.NewTableMeta(forest, opts.MaxEntriesPerAttr)
	budget := 0
	for _, a := range uniform.Attrs {
		budget += a.NEntries
	}
	adaptive := core.NewTableMetaAdaptive(forest, budget, 2)
	adaptiveEntries := 0
	for _, a := range adaptive.Attrs {
		adaptiveEntries += a.NEntries
	}
	r.Printf("entry budget: uniform=%d adaptive=%d (max n per attr: uniform=%d, adaptive=%d)",
		budget, adaptiveEntries, opts.MaxEntriesPerAttr, maxEntries(adaptive))

	for _, variant := range []struct {
		label string
		meta  *core.TableMeta
	}{
		{"uniform n", uniform},
		{"adaptive n (log-distinct)", adaptive},
	} {
		f := core.NewConjunctive(variant.meta, opts)
		sum, err := trainEvalCustom(f.Featurize, env.gbConfig(), train, test)
		if err != nil {
			return nil, err
		}
		r.Lines = append(r.Lines, summaryRow(variant.label, sum))
	}
	return r, nil
}

func maxEntries(m *core.TableMeta) int {
	out := 0
	for _, a := range m.Attrs {
		if a.NEntries > out {
			out = a.NEntries
		}
	}
	return out
}
