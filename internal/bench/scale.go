// Package bench is the experiment harness: one entry per table and figure
// of the paper's evaluation (Section 5), each regenerating the artifact's
// rows or series over this reproduction's synthetic substrates. DESIGN.md
// maps every experiment id (fig1..fig5, tab1..tab7, plus the ablations) to
// the modules involved; EXPERIMENTS.md records paper-vs-measured shapes.
//
// Experiments run at a Scale profile selected by the QFE_SCALE environment
// variable: "smoke" (seconds, used by the test suite), "default" (minutes,
// the benchmark default), or "full" (approaching paper sizes; hours).
package bench

import (
	"os"
)

// Scale bundles every size knob of the harness so the whole evaluation can
// be shrunk or grown coherently.
type Scale struct {
	Name string

	// Forest dataset (the covertype stand-in).
	ForestRows   int
	ForestQuant  int
	ForestBinary int

	// Forest workloads.
	ForestMaxAttrs int // k upper bound for query generation
	ConjCount      int // conjunctive workload size (train+test)
	MixedCount     int // mixed workload size (train+test)
	TestCount      int // test split size for both forest workloads

	// IMDb dataset and join workloads.
	IMDBTitles    int
	JoinPerSub    int // stratified training queries per sub-schema
	JOBLightCount int // test suite size (the paper uses 70)

	// Model sizes.
	Entries    int // per-attribute feature entries (paper default 64)
	GBTrees    int
	NNEpochs   int
	NNHidden   []int
	MSCNEpochs int

	// Table 5 sweep and Table 6 training-size ladder.
	VectorLengths    []int
	ConvergenceSizes []int
}

// CurrentScale reads QFE_SCALE ("smoke", "default", "full"; default
// "default") and returns the matching profile.
func CurrentScale() Scale {
	switch os.Getenv("QFE_SCALE") {
	case "smoke":
		return SmokeScale()
	case "full":
		return FullScale()
	default:
		return DefaultScale()
	}
}

// SmokeScale finishes in seconds; the package's own tests use it.
func SmokeScale() Scale {
	return Scale{
		Name:         "smoke",
		ForestRows:   3000,
		ForestQuant:  6,
		ForestBinary: 2,

		ForestMaxAttrs: 5,
		ConjCount:      700,
		MixedCount:     550,
		TestCount:      150,

		IMDBTitles:    500,
		JoinPerSub:    12,
		JOBLightCount: 15,

		Entries:    16,
		GBTrees:    40,
		NNEpochs:   6,
		NNHidden:   []int{24, 12},
		MSCNEpochs: 4,

		VectorLengths:    []int{8, 32},
		ConvergenceSizes: []int{150, 300, 500},
	}
}

// DefaultScale targets minutes for the full harness on a laptop.
func DefaultScale() Scale {
	return Scale{
		Name:         "default",
		ForestRows:   20_000,
		ForestQuant:  12,
		ForestBinary: 4,

		ForestMaxAttrs: 8,
		ConjCount:      5_000,
		MixedCount:     6_000,
		TestCount:      800,

		IMDBTitles:    5_000,
		JoinPerSub:    150,
		JOBLightCount: 70,

		Entries:    32,
		GBTrees:    120,
		NNEpochs:   16,
		NNHidden:   []int{32, 16},
		MSCNEpochs: 10,

		VectorLengths:    []int{8, 16, 32, 64, 128},
		ConvergenceSizes: []int{500, 1500, 3000, 5200},
	}
}

// FullScale approaches the paper's workload sizes (100k training queries);
// expect hours of CPU time.
func FullScale() Scale {
	return Scale{
		Name:         "full",
		ForestRows:   200_000,
		ForestQuant:  10,
		ForestBinary: 45,

		ForestMaxAttrs: 16,
		ConjCount:      60_000,
		MixedCount:     50_000,
		TestCount:      10_000,

		IMDBTitles:    50_000,
		JoinPerSub:    500,
		JOBLightCount: 70,

		Entries:    64,
		GBTrees:    200,
		NNEpochs:   40,
		NNHidden:   []int{128, 64},
		MSCNEpochs: 40,

		VectorLengths:    []int{8, 16, 32, 64, 256},
		ConvergenceSizes: []int{5_000, 10_000, 20_000, 30_000, 50_000},
	}
}
