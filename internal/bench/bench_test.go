package bench

import (
	"strings"
	"testing"
)

// The experiment harness runs end-to-end at smoke scale: every paper
// artifact must regenerate without error and produce output rows. Shape
// assertions on the scientific conclusions live in shape_test.go.

func smokeEnv() *Env { return NewEnv(SmokeScale()) }

func TestAllExperimentsRunAtSmokeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness skipped in -short mode")
	}
	env := smokeEnv()
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			rep, err := exp.Run(env)
			if err != nil {
				t.Fatalf("%s failed: %v", exp.ID, err)
			}
			if rep.ID != exp.ID {
				t.Errorf("report ID %q, want %q", rep.ID, exp.ID)
			}
			if len(rep.Lines) == 0 {
				t.Errorf("%s produced no output", exp.ID)
			}
			out := rep.String()
			if !strings.Contains(out, exp.ID) {
				t.Errorf("%s render lacks header", exp.ID)
			}
			t.Logf("\n%s", out)
		})
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if e.Run == nil {
			t.Errorf("experiment %s has no Run", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	// Every table and figure of the paper must be covered.
	for _, want := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "tab1", "tab2", "tab3", "tab4", "tab5", "tab6", "tab7"} {
		if !ids[want] {
			t.Errorf("experiment %s missing from registry", want)
		}
	}
	if _, ok := ExperimentByID("fig1"); !ok {
		t.Error("ExperimentByID(fig1) not found")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Error("ExperimentByID(nope) found")
	}
}

func TestScaleProfiles(t *testing.T) {
	for _, s := range []Scale{SmokeScale(), DefaultScale(), FullScale()} {
		if s.ForestRows <= 0 || s.ConjCount <= s.TestCount || s.IMDBTitles <= 0 {
			t.Errorf("scale %s has degenerate sizes: %+v", s.Name, s)
		}
		if len(s.VectorLengths) == 0 || len(s.ConvergenceSizes) == 0 {
			t.Errorf("scale %s lacks sweep points", s.Name)
		}
	}
	t.Setenv("QFE_SCALE", "smoke")
	if CurrentScale().Name != "smoke" {
		t.Error("QFE_SCALE=smoke not honored")
	}
	t.Setenv("QFE_SCALE", "full")
	if CurrentScale().Name != "full" {
		t.Error("QFE_SCALE=full not honored")
	}
	t.Setenv("QFE_SCALE", "")
	if CurrentScale().Name != "default" {
		t.Error("default scale not selected")
	}
}

func TestEnvCaching(t *testing.T) {
	env := smokeEnv()
	a, err := env.Forest()
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Forest()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Forest not cached")
	}
	tr1, te1, err := env.ConjWorkload()
	if err != nil {
		t.Fatal(err)
	}
	tr2, te2, err := env.ConjWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr1) != len(tr2) || len(te1) != len(te2) {
		t.Error("ConjWorkload split unstable")
	}
	if len(te1) != env.Scale.TestCount {
		t.Errorf("test split %d, want %d", len(te1), env.Scale.TestCount)
	}
}
