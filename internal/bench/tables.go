package bench

import (
	"fmt"
	"time"

	"qfe/internal/core"
	"qfe/internal/engine"
	"qfe/internal/estimator"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// Table1 regenerates Table 1: the JOB-light-style suite under local models,
// NN and GB × {simple, range, conjunctive}. "complex" is omitted exactly as
// in the paper: JOB-light contains no disjunctions, so its vectors equal
// Universal Conjunction Encoding's.
func Table1(env *Env) (*Report, error) {
	r := &Report{ID: "tab1", Title: "JOB-light join queries, local models"}
	train, err := env.JoinTraining()
	if err != nil {
		return nil, err
	}
	test, err := env.JOBLight()
	if err != nil {
		return nil, err
	}
	opts := env.coreOptions()
	for _, model := range []string{"NN", "GB"} {
		for _, qft := range []string{"simple", "range", "conjunctive"} {
			loc, err := env.trainJoinLocal(qft, model, opts, train)
			if err != nil {
				return nil, fmt.Errorf("tab1 %s+%s: %w", model, qft, err)
			}
			sum, err := estimator.Summarize(loc, test)
			if err != nil {
				return nil, err
			}
			r.Lines = append(r.Lines, summaryRow(model+" + "+qft, sum))
		}
	}
	return r, nil
}

// Table2 regenerates Table 2: local vs global models on the JOB-light
// suite — the unmodified MSCN, MSCN with the conjunctive QFT (Section 4.2),
// and the local NN + conjunctive for contrast.
func Table2(env *Env) (*Report, error) {
	r := &Report{ID: "tab2", Title: "JOB-light: local vs global models"}
	db, schema, err := env.IMDB()
	if err != nil {
		return nil, err
	}
	train, err := env.JoinTraining()
	if err != nil {
		return nil, err
	}
	test, err := env.JOBLight()
	if err != nil {
		return nil, err
	}
	opts := env.coreOptions()

	for _, mode := range []core.MSCNMode{core.MSCNOriginal, core.MSCNPerAttribute} {
		est, err := estimator.NewMSCN(db, schema, mode, opts, env.mscnConfig(), false)
		if err != nil {
			return nil, err
		}
		if err := est.Train(train); err != nil {
			return nil, fmt.Errorf("tab2 %s: %w", est.Name(), err)
		}
		sum, err := estimator.Summarize(est, test)
		if err != nil {
			return nil, err
		}
		r.Lines = append(r.Lines, summaryRow(est.Name(), sum))
	}

	loc, err := env.trainJoinLocal("conjunctive", "NN", opts, train)
	if err != nil {
		return nil, err
	}
	sum, err := estimator.Summarize(loc, test)
	if err != nil {
		return nil, err
	}
	r.Lines = append(r.Lines, summaryRow("NN + conj (local)", sum))
	return r, nil
}

// Table3 regenerates Table 3: the effect of appending per-attribute
// selectivity estimates (the gray lines of Algorithm 1) for GB/NN ×
// conjunctive/complex, with and without attrSel.
func Table3(env *Env) (*Report, error) {
	r := &Report{ID: "tab3", Title: "Effect of per-attribute selectivity estimates"}
	conjTrain, conjTest, err := env.ConjWorkload()
	if err != nil {
		return nil, err
	}
	mixTrain, mixTest, err := env.MixedWorkload()
	if err != nil {
		return nil, err
	}
	for _, model := range []string{"GB", "NN"} {
		for _, qft := range []string{"conjunctive", "complex"} {
			train, test := conjTrain, conjTest
			if qft == "complex" {
				train, test = mixTrain, mixTest
			}
			for _, attrSel := range []bool{true, false} {
				opts := env.coreOptions()
				opts.AttrSel = attrSel
				loc, err := env.trainLocal(qft, model, opts, train)
				if err != nil {
					return nil, fmt.Errorf("tab3 %s+%s attrSel=%v: %w", model, qft, attrSel, err)
				}
				sum, err := estimator.Summarize(loc, test)
				if err != nil {
					return nil, err
				}
				label := fmt.Sprintf("%s+%s ", model, shortQFT(qft))
				if attrSel {
					label += "w/ attrSel"
				} else {
					label += "w/o attrSel"
				}
				r.Lines = append(r.Lines, summaryRow(label, sum))
			}
		}
	}
	return r, nil
}

func shortQFT(qft string) string {
	switch qft {
	case "conjunctive":
		return "conj"
	case "complex":
		return "comp"
	}
	return qft
}

// Table4 regenerates Table 4: end-to-end run times of the JOB-light suite
// under three cardinality sources driving the join-order optimizer —
// the Postgres-style independence estimates, our learned estimator
// (GB + conjunctive as a global model), and true cardinalities.
func Table4(env *Env) (*Report, error) {
	r := &Report{ID: "tab4", Title: "End-to-end run times (optimizer + executor)"}
	db, schema, err := env.IMDB()
	if err != nil {
		return nil, err
	}
	train, err := env.JoinTraining()
	if err != nil {
		return nil, err
	}
	test, err := env.JOBLight()
	if err != nil {
		return nil, err
	}
	queries := test.Queries()

	ours, err := estimator.NewGlobal(db, schema, "conjunctive", env.coreOptions(), estimator.NewGBFactory(env.gbConfig()), false)
	if err != nil {
		return nil, err
	}
	if err := ours.Train(train); err != nil {
		return nil, err
	}
	ests := []estimator.Estimator{
		&estimator.Independence{DB: db},
		ours,
		&estimator.Oracle{DB: db},
	}
	for _, est := range ests {
		total, stats, err := runWorkloadFor(db, est, queries)
		if err != nil {
			return nil, fmt.Errorf("tab4 %s: %w", est.Name(), err)
		}
		var probes int64
		for _, st := range stats {
			probes += st.ProbeTuples
		}
		// Verify the executor's counts against the labels: all three plans
		// must agree on results, only timing differs.
		for i, st := range stats {
			if st.Count != test[i].Card {
				return nil, fmt.Errorf("tab4 %s: query %d count %d != true %d", est.Name(), i, st.Count, test[i].Card)
			}
		}
		r.Printf("%-28s total=%v  probe-tuples=%d", est.Name(), total.Round(time.Microsecond), probes)
	}
	r.Printf("(plan quality surfaces as probe-tuples; run times stay close — the paper's 1.7%% effect)")
	return r, nil
}

// Table5 regenerates Table 5: accuracy of GB + Universal Conjunction
// Encoding on the JOB-light suite for different per-attribute feature
// vector lengths, alongside the feature-vector memory footprint.
func Table5(env *Env) (*Report, error) {
	r := &Report{ID: "tab5", Title: "Accuracy for different feature vector lengths"}
	db, _, err := env.IMDB()
	if err != nil {
		return nil, err
	}
	train, err := env.JoinTraining()
	if err != nil {
		return nil, err
	}
	test, err := env.JOBLight()
	if err != nil {
		return nil, err
	}
	for _, n := range env.Scale.VectorLengths {
		opts := core.Options{MaxEntriesPerAttr: n, AttrSel: true}
		loc, err := env.trainJoinLocal("conjunctive", "GB", opts, train)
		if err != nil {
			return nil, fmt.Errorf("tab5 n=%d: %w", n, err)
		}
		sum, err := estimator.Summarize(loc, test)
		if err != nil {
			return nil, err
		}
		bytes := fullJoinVectorBytes(db, n)
		r.Lines = append(r.Lines, summaryRow(fmt.Sprintf("n=%-4d (%5d B/vec)", n, bytes), sum))
	}
	return r, nil
}

// fullJoinVectorBytes computes the feature-vector size (8 bytes per entry)
// of the widest sub-schema — the full join of all tables — at n entries per
// attribute plus one attrSel entry each, mirroring Table 5's "bytes feat.
// vec." column.
func fullJoinVectorBytes(db *table.DB, n int) int {
	entries := 0
	for _, tn := range db.TableNames() {
		meta := core.NewTableMeta(db.Table(tn), n)
		for _, a := range meta.Attrs {
			entries += a.NEntries + 1
		}
	}
	return entries * 8
}

// runWorkloadFor plans and executes the queries under est's estimates.
func runWorkloadFor(db *table.DB, est estimator.Estimator, queries []*sqlparse.Query) (time.Duration, []engine.ExecStats, error) {
	opt := &engine.Optimizer{DB: db, Est: est}
	return engine.RunWorkload(db, opt, queries)
}

// Table6 regenerates Table 6: average estimation error as a function of the
// number of training queries, for GB and NN × all four QFTs.
func Table6(env *Env) (*Report, error) {
	r := &Report{ID: "tab6", Title: "Training convergence (avg q-error vs #training queries)"}
	conjTrain, conjTest, err := env.ConjWorkload()
	if err != nil {
		return nil, err
	}
	mixTrain, mixTest, err := env.MixedWorkload()
	if err != nil {
		return nil, err
	}
	opts := env.coreOptions()
	for _, model := range []string{"GB", "NN"} {
		r.Printf("--- %s ---", model)
		for _, size := range env.Scale.ConvergenceSizes {
			line := fmt.Sprintf("%6d queries:", size)
			for _, qft := range []string{"conjunctive", "complex", "range", "simple"} {
				train, test := conjTrain, conjTest
				if qft == "complex" {
					train, test = mixTrain, mixTest
				}
				if size > len(train) {
					size = len(train)
				}
				loc, err := env.trainLocal(qft, model, opts, train[:size])
				if err != nil {
					return nil, fmt.Errorf("tab6 %s+%s@%d: %w", model, qft, size, err)
				}
				sum, err := estimator.Summarize(loc, test)
				if err != nil {
					return nil, err
				}
				line += fmt.Sprintf("  %s=%8.2f", shortQFT(qft), sum.Mean)
			}
			r.Lines = append(r.Lines, line)
		}
	}
	return r, nil
}

// Table7 regenerates Table 7 (featurization time per query) plus the
// Section 5.7 memory accounting of the estimators.
func Table7(env *Env) (*Report, error) {
	r := &Report{ID: "tab7", Title: "QFT time & estimator memory consumption"}
	forest, err := env.Forest()
	if err != nil {
		return nil, err
	}
	conjTrain, conjTest, err := env.ConjWorkload()
	if err != nil {
		return nil, err
	}
	_, mixTest, err := env.MixedWorkload()
	if err != nil {
		return nil, err
	}
	opts := env.coreOptions()
	meta := core.NewTableMeta(forest, opts.MaxEntriesPerAttr)

	for _, qft := range core.QFTNames() {
		f, err := core.New(qft, meta, opts)
		if err != nil {
			return nil, err
		}
		test := conjTest
		if qft == "complex" {
			test = mixTest
		}
		exprs := make([]sqlparse.Expr, len(test))
		for i, l := range test {
			exprs[i] = l.Query.Where
		}
		start := time.Now()
		reps := 0
		for time.Since(start) < 50*time.Millisecond {
			for _, e := range exprs {
				if _, err := f.Featurize(e); err != nil {
					return nil, err
				}
			}
			reps++
		}
		perQuery := time.Since(start) / time.Duration(reps*len(exprs))
		r.Printf("%-14s %8.1f µs per query", qft, float64(perQuery.Nanoseconds())/1e3)
	}

	// Memory accounting (Section 5.7).
	r.Printf("--- estimator memory ---")
	gbLoc, err := env.trainLocal("conjunctive", "GB", opts, conjTrain)
	if err != nil {
		return nil, err
	}
	r.Printf("%-28s %8.1f kB", "GB (local, conjunctive)", float64(gbLoc.MemoryBytes())/1024)
	nnLoc, err := env.trainLocal("conjunctive", "NN", opts, conjTrain)
	if err != nil {
		return nil, err
	}
	r.Printf("%-28s %8.1f kB", "NN (local, conjunctive)", float64(nnLoc.MemoryBytes())/1024)
	db, err := env.ForestDB()
	if err != nil {
		return nil, err
	}
	schema, err := env.ForestSchema()
	if err != nil {
		return nil, err
	}
	m, err := estimator.NewMSCN(db, schema, core.MSCNPerAttribute, opts, env.mscnConfig(), false)
	if err != nil {
		return nil, err
	}
	if err := m.Train(conjTrain[:min(len(conjTrain), 500)]); err != nil {
		return nil, err
	}
	r.Printf("%-28s %8.1f kB", "MSCN (global)", float64(m.MemoryBytes())/1024)
	sampleRows := int(float64(forest.NumRows()) * 0.001)
	r.Printf("%-28s %8.1f kB (0.1%% sample, %d rows x %d cols x 8B)",
		"Sampling", float64(sampleRows*forest.NumCols()*8)/1024, sampleRows, forest.NumCols())
	r.Printf("%-28s %8.1f kB (per-column histograms)", "Postgres", float64(forest.NumCols()*100*8)/1024)
	return r, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
