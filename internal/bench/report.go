package bench

import (
	"fmt"
	"sort"
	"strings"

	"qfe/internal/metrics"
)

// Report is one regenerated paper artifact: a titled block of text lines
// (table rows or figure series) ready to print or to paste into
// EXPERIMENTS.md.
type Report struct {
	ID    string // "fig1", "tab5", ...
	Title string
	Lines []string
}

// Printf appends a formatted line.
func (r *Report) Printf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report with a header rule.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// summaryRow renders the paper's "mean median 99% max" table row.
func summaryRow(label string, s metrics.Summary) string {
	return fmt.Sprintf("%-28s mean=%8.2f  median=%7.2f  p99=%9.2f  max=%10.2f", label, s.Mean, s.Median, s.P99, s.Max)
}

// boxplotRow renders the five boxplot statistics of the figure experiments.
func boxplotRow(label string, b metrics.BoxplotStats) string {
	return fmt.Sprintf("%-28s p01=%7.2f  p25=%7.2f  med=%7.2f  p75=%8.2f  p99=%10.2f",
		label, b.P01, b.P25, b.Median, b.P75, b.P99)
}

// sortedKeys returns the integer keys of a map in ascending order (used for
// by-attribute and by-predicate groupings).
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Experiment is a runnable regeneration of one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Env) (*Report, error)
}

// Experiments lists every artifact regeneration in paper order. The IDs are
// the ones DESIGN.md's per-experiment index uses.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "Error distribution by QFT × ML model (forest)", Figure1},
		{"fig2", "Estimation errors per QFT by number of attributes (GB)", Figure2},
		{"fig3", "Estimation errors per QFT by number of predicates (GB)", Figure3},
		{"fig4", "Best QFT × model vs established estimators (forest)", Figure4},
		{"fig5", "Query drift: train <= 2 attributes, test >= 3", Figure5},
		{"tab1", "JOB-light join queries, local models", Table1},
		{"tab2", "JOB-light: local vs global models", Table2},
		{"tab3", "Effect of per-attribute selectivity estimates", Table3},
		{"tab4", "End-to-end run times (optimizer + executor)", Table4},
		{"tab5", "Accuracy for different feature vector lengths", Table5},
		{"tab6", "Training convergence (avg q-error vs #training queries)", Table6},
		{"tab7", "QFT time & estimator memory consumption", Table7},
		{"abl1", "Ablation: GB histogram vs exact split search", AblationGBSplit},
		{"abl2", "Ablation: ½ entries vs binarized partitions", AblationHalfEntries},
		{"abl3", "Ablation: LDE entry-wise max vs sum-clamp merge", AblationLDEMerge},
		{"abl4", "Ablation: log2 vs raw label transform", AblationLabelTransform},
		{"ext1", "Extension: simpler models (LR) vs NN vs GB (Section 2.2)", ExtensionModelZoo},
		{"ext2", "Extension: attribute-specific n vs uniform n (Section 3.2)", ExtensionAdaptiveEntries},
		{"ext3", "Extension: histogram partitioning schemes for UCE (Section 3.2)", ExtensionPartitioning},
		{"ext4", "Extension: data drift, reconstruction costs and recovery (Section 5.5.2)", ExtensionDataDrift},
		{"ext5", "Extension: inclusion-exclusion vs LDE (Section 6)", ExtensionIEP},
		{"ext6", "Extension: filtered GROUP BY estimation (Section 6)", ExtensionGroupBy},
		{"ext7", "Extension: uniform vs frequency-weighted attrSel", ExtensionWeightedSel},
		{"ext8", "Extension: sub-schema pruning via System-R feedback (Section 2.1.2)", ExtensionPruning},
	}
}

// ExperimentByID finds one experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
