package bench

import (
	"fmt"

	"qfe/internal/core"
	"qfe/internal/estimator"
	"qfe/internal/metrics"
	"qfe/internal/workload"
)

// evalBox evaluates an estimator on a labeled set and reduces to the
// five-number boxplot summary of the figure experiments.
func evalBox(est estimator.Estimator, set workload.Set) (metrics.BoxplotStats, error) {
	qerrs, err := estimator.Evaluate(est, set)
	if err != nil {
		return metrics.BoxplotStats{}, err
	}
	return metrics.Boxplot(qerrs), nil
}

// Figure1 regenerates the paper's Figure 1: q-error boxplots for every
// QFT × ML model combination on the forest dataset. The conjunctive
// workload feeds "simple", "range", and "conjunctive"; the mixed workload
// feeds "complex" (separated by a vertical line in the paper; here by a
// marker row).
func Figure1(env *Env) (*Report, error) {
	r := &Report{ID: "fig1", Title: "Error distribution by QFT × ML model (forest)"}
	conjTrain, conjTest, err := env.ConjWorkload()
	if err != nil {
		return nil, err
	}
	mixTrain, mixTest, err := env.MixedWorkload()
	if err != nil {
		return nil, err
	}
	opts := env.coreOptions()

	// Local GB and NN for all four QFTs.
	for _, model := range []string{"GB", "NN"} {
		for _, qft := range core.QFTNames() {
			train, test := conjTrain, conjTest
			if qft == "complex" {
				train, test = mixTrain, mixTest
			}
			loc, err := env.trainLocal(qft, model, opts, train)
			if err != nil {
				return nil, fmt.Errorf("fig1 %s+%s: %w", model, qft, err)
			}
			box, err := evalBox(loc, test)
			if err != nil {
				return nil, err
			}
			r.Lines = append(r.Lines, boxplotRow(model+" + "+qft, box))
		}
	}

	// Global MSCN for the four predicate-set encodings.
	db, err := env.ForestDB()
	if err != nil {
		return nil, err
	}
	schema, err := env.ForestSchema()
	if err != nil {
		return nil, err
	}
	mscnModes := []struct {
		label string
		mode  core.MSCNMode
		mixed bool
	}{
		{"MSCN + simple", core.MSCNOriginal, false},
		{"MSCN + range", core.MSCNRange, false},
		{"MSCN + conjunctive", core.MSCNPerAttribute, false},
		{"MSCN + complex", core.MSCNPerAttribute, true},
	}
	for _, mc := range mscnModes {
		train, test := conjTrain, conjTest
		if mc.mixed {
			train, test = mixTrain, mixTest
		}
		est, err := estimator.NewMSCN(db, schema, mc.mode, opts, env.mscnConfig(), false)
		if err != nil {
			return nil, err
		}
		if err := est.Train(train); err != nil {
			return nil, fmt.Errorf("fig1 %s: %w", mc.label, err)
		}
		box, err := evalBox(est, test)
		if err != nil {
			return nil, err
		}
		r.Lines = append(r.Lines, boxplotRow(mc.label, box))
	}
	r.Printf("(complex rows use the mixed query workload; all others conjunctive)")
	return r, nil
}

// Figure2 regenerates Figure 2: GB estimation errors per QFT grouped by the
// number of attributes mentioned in the queries.
func Figure2(env *Env) (*Report, error) {
	return figureByGroup(env, "fig2",
		"Estimation errors per QFT by number of attributes (GB)",
		func(s workload.Set) map[int]workload.Set { return s.GroupByAttrs() }, "attrs")
}

// Figure3 regenerates Figure 3: GB estimation errors per QFT grouped by the
// number of predicates in the queries.
func Figure3(env *Env) (*Report, error) {
	return figureByGroup(env, "fig3",
		"Estimation errors per QFT by number of predicates (GB)",
		func(s workload.Set) map[int]workload.Set { return s.GroupByPreds() }, "preds")
}

func figureByGroup(env *Env, id, title string, group func(workload.Set) map[int]workload.Set, axis string) (*Report, error) {
	r := &Report{ID: id, Title: title}
	conjTrain, conjTest, err := env.ConjWorkload()
	if err != nil {
		return nil, err
	}
	mixTrain, mixTest, err := env.MixedWorkload()
	if err != nil {
		return nil, err
	}
	opts := env.coreOptions()
	for _, qft := range core.QFTNames() {
		train, test := conjTrain, conjTest
		if qft == "complex" {
			train, test = mixTrain, mixTest
		}
		loc, err := env.trainLocal(qft, "GB", opts, train)
		if err != nil {
			return nil, fmt.Errorf("%s GB+%s: %w", id, qft, err)
		}
		grouped := group(test)
		for _, k := range sortedKeys(grouped) {
			sub := grouped[k]
			if len(sub) < 5 {
				continue // too few queries for stable quantiles
			}
			box, err := evalBox(loc, sub)
			if err != nil {
				return nil, err
			}
			r.Lines = append(r.Lines, boxplotRow(fmt.Sprintf("%s %s=%d (n=%d)", qft, axis, k, len(sub)), box))
		}
	}
	return r, nil
}

// Figure4 regenerates Figure 4: the best QFT × model combinations
// (GB + conjunctive, GB + complex) against the established estimators
// (Postgres-style independence, Bernoulli sampling, MSCN), grouped by the
// number of attributes. MSCN appears only on the conjunctive side — its
// standard implementation does not support disjunctions, exactly as the
// paper notes.
func Figure4(env *Env) (*Report, error) {
	r := &Report{ID: "fig4", Title: "Best QFT × model combinations vs established estimators"}
	db, err := env.ForestDB()
	if err != nil {
		return nil, err
	}
	schema, err := env.ForestSchema()
	if err != nil {
		return nil, err
	}
	opts := env.coreOptions()

	run := func(section string, train, test workload.Set, qft string, withMSCN bool) error {
		r.Printf("--- %s queries ---", section)
		ours, err := env.trainLocal(qft, "GB", opts, train)
		if err != nil {
			return err
		}
		ests := []estimator.Estimator{
			ours,
			&estimator.Independence{DB: db},
			estimator.NewSampling(db, 0.001, 99),
		}
		if withMSCN {
			m, err := estimator.NewMSCN(db, schema, core.MSCNOriginal, opts, env.mscnConfig(), false)
			if err != nil {
				return err
			}
			if err := m.Train(train); err != nil {
				return err
			}
			ests = append(ests, m)
		}
		grouped := test.GroupByAttrs()
		for _, k := range sortedKeys(grouped) {
			sub := grouped[k]
			if len(sub) < 5 {
				continue
			}
			for _, est := range ests {
				box, err := evalBox(est, sub)
				if err != nil {
					return err
				}
				r.Lines = append(r.Lines, boxplotRow(fmt.Sprintf("%s attrs=%d", est.Name(), k), box))
			}
		}
		return nil
	}

	conjTrain, conjTest, err := env.ConjWorkload()
	if err != nil {
		return nil, err
	}
	if err := run("Conjunctive", conjTrain, conjTest, "conjunctive", true); err != nil {
		return nil, err
	}
	mixTrain, mixTest, err := env.MixedWorkload()
	if err != nil {
		return nil, err
	}
	if err := run("Mixed", mixTrain, mixTest, "complex", false); err != nil {
		return nil, err
	}
	return r, nil
}

// Figure5 regenerates Figure 5 (query drift, Section 5.5.1): models train
// on queries mentioning at most two distinct attributes and are tested on
// queries mentioning at least three. Rows with <= 2 attributes show the
// training regime for reference, exactly as in the paper.
func Figure5(env *Env) (*Report, error) {
	r := &Report{ID: "fig5", Title: "Query drift: train <= 2 attributes, test >= 3"}
	conjAll, conjTest, err := env.ConjWorkload()
	if err != nil {
		return nil, err
	}
	mixAll, mixTest, err := env.MixedWorkload()
	if err != nil {
		return nil, err
	}
	conjTrain, _ := conjAll.SplitByAttrs(2)
	mixTrain, _ := mixAll.SplitByAttrs(2)
	r.Printf("training mean cardinality: conj=%.0f mixed=%.0f", conjTrain.MeanCard(), mixTrain.MeanCard())
	conjHiTrain, conjHi := conjTest.SplitByAttrs(2)
	mixHiTrain, mixHi := mixTest.SplitByAttrs(2)
	r.Printf("test mean cardinality:     conj=%.0f mixed=%.0f", conjHi.MeanCard(), mixHi.MeanCard())

	opts := env.coreOptions()
	for _, model := range []string{"GB", "NN"} {
		for _, qft := range core.QFTNames() {
			train, testLo, testHi := conjTrain, conjHiTrain, conjHi
			if qft == "complex" {
				train, testLo, testHi = mixTrain, mixHiTrain, mixHi
			}
			loc, err := env.trainLocal(qft, model, opts, train)
			if err != nil {
				return nil, fmt.Errorf("fig5 %s+%s: %w", model, qft, err)
			}
			// Reference rows: the training regime (1-2 attributes).
			if len(testLo) >= 5 {
				box, err := evalBox(loc, testLo)
				if err != nil {
					return nil, err
				}
				r.Lines = append(r.Lines, boxplotRow(fmt.Sprintf("%s+%s attrs<=2 (train regime)", model, qft), box))
			}
			grouped := testHi.GroupByAttrs()
			for _, k := range sortedKeys(grouped) {
				sub := grouped[k]
				if len(sub) < 5 {
					continue
				}
				box, err := evalBox(loc, sub)
				if err != nil {
					return nil, err
				}
				r.Lines = append(r.Lines, boxplotRow(fmt.Sprintf("%s+%s attrs=%d (drift)", model, qft, k), box))
			}
		}
	}
	return r, nil
}
