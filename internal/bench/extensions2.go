package bench

import (
	"fmt"
	"math"
	"time"

	"qfe/internal/core"
	"qfe/internal/dataset"
	"qfe/internal/estimator"
	"qfe/internal/histogram"
	"qfe/internal/metrics"
	"qfe/internal/ml/gb"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
	"qfe/internal/workload"
)

// ExtensionPartitioning compares the partitioning schemes behind Universal
// Conjunction Encoding's buckets (Section 3.2's histogram pointer): uniform
// equi-width (Algorithm 1's default) against equi-depth and v-optimal
// boundaries from internal/histogram, at equal entry budget, under GB.
func ExtensionPartitioning(env *Env) (*Report, error) {
	r := &Report{ID: "ext3", Title: "Partitioning schemes for UCE buckets (Section 3.2 extension)"}
	train, test, err := env.ConjWorkload()
	if err != nil {
		return nil, err
	}
	forest, err := env.Forest()
	if err != nil {
		return nil, err
	}
	n := env.Scale.Entries
	opts := env.coreOptions()

	variants := []struct {
		label string
		build func() (*core.TableMeta, error)
	}{
		{"equi-width (Alg. 1)", func() (*core.TableMeta, error) { return core.NewTableMeta(forest, n), nil }},
		{"equi-depth", func() (*core.TableMeta, error) {
			return core.NewTableMetaPartitioned(forest, n, func(col *table.Column, nn int) ([]int64, error) {
				return histogram.EquiDepth(col.Vals, nn)
			})
		}},
		{"v-optimal", func() (*core.TableMeta, error) {
			return core.NewTableMetaPartitioned(forest, n, func(col *table.Column, nn int) ([]int64, error) {
				return histogram.VOptimal(col.Vals, nn, 128)
			})
		}},
	}
	for _, v := range variants {
		meta, err := v.build()
		if err != nil {
			return nil, fmt.Errorf("ext3 %s: %w", v.label, err)
		}
		f := core.NewConjunctive(meta, opts)
		sum, err := trainEvalCustom(f.Featurize, env.gbConfig(), train, test)
		if err != nil {
			return nil, err
		}
		r.Lines = append(r.Lines, summaryRow(v.label, sum))
	}
	return r, nil
}

// ExtensionDataDrift runs the Section 5.5.2 discussion as an experiment:
// measure featurization and per-model training cost (the quantities behind
// the paper's "reconstruct after drift" recommendation), then simulate data
// drift, show the stale model degrading, and show reconstruction restoring
// accuracy.
func ExtensionDataDrift(env *Env) (*Report, error) {
	r := &Report{ID: "ext4", Title: "Data drift: reconstruction costs and recovery (Section 5.5.2)"}

	// --- Part 1: setup costs per component. ---
	train, test, err := env.ConjWorkload()
	if err != nil {
		return nil, err
	}
	forest, err := env.Forest()
	if err != nil {
		return nil, err
	}
	opts := env.coreOptions()
	meta := core.NewTableMeta(forest, opts.MaxEntriesPerAttr)
	f := core.NewConjunctive(meta, opts)

	start := time.Now()
	X := make([][]float64, len(train))
	y := make([]float64, len(train))
	for i, l := range train {
		vec, err := f.Featurize(l.Query.Where)
		if err != nil {
			return nil, err
		}
		X[i] = vec
		y[i] = math.Log2(float64(l.Card) + 1)
	}
	featTime := time.Since(start)
	r.Printf("featurization: %v for %d queries", featTime.Round(time.Millisecond), len(train))

	start = time.Now()
	if _, err := gb.Train(X, y, env.gbConfig()); err != nil {
		return nil, err
	}
	r.Printf("GB training:   %v", time.Since(start).Round(time.Millisecond))

	db, err := env.ForestDB()
	if err != nil {
		return nil, err
	}
	start = time.Now()
	nnLoc, err := estimator.NewLocal(db, estimator.LocalConfig{
		QFT: "conjunctive", Opts: opts,
		NewRegressor: estimator.NewNNFactory(env.nnConfig()),
	})
	if err != nil {
		return nil, err
	}
	if err := nnLoc.Train(train); err != nil {
		return nil, err
	}
	r.Printf("NN training:   %v", time.Since(start).Round(time.Millisecond))
	r.Printf("(the paper reports 1.5 min featurization, 6 s GB, 21 min NN, 41 min MSCN at 100k queries)")

	// --- Part 2: drift, degradation, reconstruction. ---
	// Fresh data from a shifted generator stands in for the DBMS's content
	// changing "abruptly and drastically" (the key observation of 5.5.1).
	drifted, err := dataset.Forest(dataset.ForestConfig{
		Rows:        env.Scale.ForestRows / 2,
		QuantAttrs:  env.Scale.ForestQuant,
		BinaryAttrs: env.Scale.ForestBinary,
		Seed:        999, // different world
	})
	if err != nil {
		return nil, err
	}
	driftDB := table.NewDB()
	driftDB.MustAdd(drifted)
	freshCfg := workload.ConjConfig{
		Count:        len(test),
		MaxAttrs:     env.Scale.ForestMaxAttrs,
		MaxNotEquals: 5,
		Seed:         1000,
	}
	freshTest, err := workload.Conjunctive(drifted, freshCfg)
	if err != nil {
		return nil, err
	}
	freshTrainCfg := freshCfg
	freshTrainCfg.Count = len(train) / 2
	freshTrainCfg.Seed = 1001
	freshTrain, err := workload.Conjunctive(drifted, freshTrainCfg)
	if err != nil {
		return nil, err
	}

	stale, err := env.trainLocal("conjunctive", "GB", opts, train)
	if err != nil {
		return nil, err
	}
	staleSum, err := estimator.Summarize(stale, freshTest)
	if err != nil {
		return nil, err
	}
	r.Lines = append(r.Lines, summaryRow("stale GB on drifted data", staleSum))

	rebuilt, err := estimator.NewLocal(driftDB, estimator.LocalConfig{
		QFT: "conjunctive", Opts: opts,
		NewRegressor: estimator.NewGBFactory(env.gbConfig()),
	})
	if err != nil {
		return nil, err
	}
	start = time.Now()
	if err := rebuilt.Train(freshTrain); err != nil {
		return nil, err
	}
	rebuildTime := time.Since(start)
	rebuiltSum, err := estimator.Summarize(rebuilt, freshTest)
	if err != nil {
		return nil, err
	}
	r.Lines = append(r.Lines, summaryRow(fmt.Sprintf("rebuilt GB (%v)", rebuildTime.Round(time.Millisecond)), rebuiltSum))
	r.Printf("(reconstruction is cheap for GB — the paper's recommendation over incremental learning)")
	return r, nil
}

// maxIEPTerms bounds the DNF size for which the inclusion-exclusion
// estimator is even attempted: 2^n - 1 sub-estimates explode immediately,
// which is the Section 6 point.
const maxIEPTerms = 12

// ExtensionIEP quantifies the Section 6 argument against the
// inclusion-exclusion principle (IEP) for disjunctions: rewriting a
// disjunction of n conjunctions costs 2^n - 1 conjunctive estimates, each
// of which can err; Limited Disjunction Encoding answers with one forward
// pass. The experiment compares both on the mixed workload — accuracy,
// number of model invocations, and wall time.
func ExtensionIEP(env *Env) (*Report, error) {
	r := &Report{ID: "ext5", Title: "Inclusion-exclusion vs Limited Disjunction Encoding (Section 6)"}
	conjTrain, _, err := env.ConjWorkload()
	if err != nil {
		return nil, err
	}
	mixTrain, mixTest, err := env.MixedWorkload()
	if err != nil {
		return nil, err
	}
	forest, err := env.Forest()
	if err != nil {
		return nil, err
	}
	opts := env.coreOptions()
	meta := core.NewTableMeta(forest, opts.MaxEntriesPerAttr)

	// The IEP path uses a conjunctive estimator (trained on the
	// conjunctive workload, its native class).
	conjF := core.NewConjunctive(meta, opts)
	predictConj, err := trainGBPredictor(conjF.Featurize, env.gbConfig(), conjTrain)
	if err != nil {
		return nil, err
	}
	// The direct path uses GB + complex trained on mixed queries.
	compF := core.NewComplex(meta, opts)
	predictComp, err := trainGBPredictor(compF.Featurize, env.gbConfig(), mixTrain)
	if err != nil {
		return nil, err
	}

	var iepErrs, ldeErrs []float64
	var iepCalls, ldeCalls int
	var iepTime, ldeTime time.Duration
	skipped := 0
	for _, l := range mixTest {
		dnf, err := sqlparse.ToDNF(l.Query.Where)
		if err != nil || len(dnf) > maxIEPTerms {
			skipped++
			continue
		}
		start := time.Now()
		iepEst, calls := iepEstimate(dnf, predictConj)
		iepTime += time.Since(start)
		iepCalls += calls
		iepErrs = append(iepErrs, metrics.QError(float64(l.Card), iepEst))

		start = time.Now()
		direct, err := predictComp(l.Query.Where)
		if err != nil {
			return nil, err
		}
		ldeTime += time.Since(start)
		ldeCalls++
		ldeErrs = append(ldeErrs, metrics.QError(float64(l.Card), direct))
	}
	r.Printf("evaluated %d mixed queries (skipped %d with > %d DNF terms — IEP cost is 2^n - 1)",
		len(ldeErrs), skipped, maxIEPTerms)
	r.Lines = append(r.Lines, summaryRow("IEP over GB+conj", metrics.Summarize(iepErrs)))
	r.Lines = append(r.Lines, summaryRow("LDE (GB+complex)", metrics.Summarize(ldeErrs)))
	r.Printf("model invocations: IEP=%d  LDE=%d  (%.0fx)", iepCalls, ldeCalls, float64(iepCalls)/float64(ldeCalls))
	r.Printf("estimation time:   IEP=%v  LDE=%v", iepTime.Round(time.Millisecond), ldeTime.Round(time.Millisecond))
	return r, nil
}

// trainGBPredictor trains a GB model over a custom featurizer and returns a
// closure estimating cardinalities (log2 transform inverted, clamped >= 0).
func trainGBPredictor(featurize func(sqlparse.Expr) ([]float64, error), cfg gb.Config, train workload.Set) (func(sqlparse.Expr) (float64, error), error) {
	X := make([][]float64, len(train))
	y := make([]float64, len(train))
	for i, l := range train {
		vec, err := featurize(l.Query.Where)
		if err != nil {
			return nil, err
		}
		X[i] = vec
		y[i] = math.Log2(float64(l.Card) + 1)
	}
	model, err := gb.Train(X, y, cfg)
	if err != nil {
		return nil, err
	}
	return func(expr sqlparse.Expr) (float64, error) {
		vec, err := featurize(expr)
		if err != nil {
			return 0, err
		}
		pred := model.Predict(vec)
		if pred > 62 {
			pred = 62
		}
		card := math.Exp2(pred) - 1
		if card < 0 {
			card = 0
		}
		return card, nil
	}, nil
}

// iepEstimate applies the inclusion-exclusion principle over the DNF terms:
// |T1 ∨ ... ∨ Tn| = Σ over non-empty S of (-1)^(|S|+1) |AND of S's terms|,
// each conjunctive sub-query estimated by the model. Returns the estimate
// (clamped >= 1) and the number of model invocations (2^n - 1).
func iepEstimate(dnf [][]*sqlparse.Pred, predict func(sqlparse.Expr) (float64, error)) (float64, int) {
	n := len(dnf)
	total := 0.0
	calls := 0
	for mask := 1; mask < 1<<n; mask++ {
		var preds []sqlparse.Expr
		bits := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				bits++
				for _, p := range dnf[i] {
					preds = append(preds, p)
				}
			}
		}
		est, err := predict(sqlparse.NewAnd(preds...))
		if err != nil {
			est = 0
		}
		calls++
		if bits%2 == 1 {
			total += est
		} else {
			total -= est
		}
	}
	if total < 1 {
		total = 1
	}
	return total, calls
}

// ExtensionGroupBy evaluates the Section 6 GROUP BY featurization
// end-to-end on filtered group-by queries: GB regressing the number of
// groups from [QFT vector | grouping bit-vector] against the classic
// estimate min(prod of distinct counts, estimated qualifying rows) — the
// formula whose failure motivates learned approaches [11].
func ExtensionGroupBy(env *Env) (*Report, error) {
	r := &Report{ID: "ext6", Title: "Filtered GROUP BY estimation (Section 6 extension)"}
	forest, err := env.Forest()
	if err != nil {
		return nil, err
	}
	db, err := env.ForestDB()
	if err != nil {
		return nil, err
	}
	gcfg := workload.DefaultGroupByConfig()
	gcfg.Count = len(mustConj(env)) / 2
	gcfg.MaxAttrs = env.Scale.ForestMaxAttrs
	set, err := workload.GroupBy(forest, gcfg)
	if err != nil {
		return nil, err
	}
	train, test := set.Split(len(set) - len(set)/5)

	opts := env.coreOptions()
	meta := core.NewTableMeta(forest, opts.MaxEntriesPerAttr)
	wrapped := &core.WithGroupBy{Base: core.NewConjunctive(meta, opts), Meta: meta}

	// Learned estimator: featurize selection + grouping block, regress
	// log2(#groups).
	X := make([][]float64, len(train))
	y := make([]float64, len(train))
	for i, l := range train {
		vec, err := wrapped.FeaturizeQuery(l.Query.Where, l.Query.GroupBy)
		if err != nil {
			return nil, err
		}
		X[i] = vec
		y[i] = math.Log2(float64(l.Card) + 1)
	}
	model, err := gb.Train(X, y, env.gbConfig())
	if err != nil {
		return nil, err
	}

	ind := &estimator.Independence{DB: db}
	var learned, classic []float64
	for _, l := range test {
		vec, err := wrapped.FeaturizeQuery(l.Query.Where, l.Query.GroupBy)
		if err != nil {
			return nil, err
		}
		pred := model.Predict(vec)
		if pred > 62 {
			pred = 62
		}
		est := math.Exp2(pred) - 1
		if est < 1 {
			est = 1
		}
		learned = append(learned, metrics.QError(float64(l.Card), est))

		// Classic formula: groups <= prod of grouping-attr distinct counts,
		// and <= qualifying rows (estimated under independence).
		sel := l.Query.Clone()
		sel.GroupBy = nil
		rows, err := ind.Estimate(sel)
		if err != nil {
			return nil, err
		}
		prod := 1.0
		for _, g := range l.Query.GroupBy {
			prod *= float64(forest.Column(g).Distinct())
		}
		cl := math.Min(prod, rows)
		if cl < 1 {
			cl = 1
		}
		classic = append(classic, metrics.QError(float64(l.Card), cl))
	}
	r.Lines = append(r.Lines, summaryRow("GB + conj + group vector", metrics.Summarize(learned)))
	r.Lines = append(r.Lines, summaryRow("classic min(prod V, rows)", metrics.Summarize(classic)))
	r.Printf("(the Section 6 grouping bit-vector makes #groups learnable: the learned estimator wins the mean and tail; the classic bound overshoots on selective queries)")
	return r, nil
}

// mustConj returns the conjunctive training workload, for sizing only.
func mustConj(env *Env) workload.Set {
	train, _, err := env.ConjWorkload()
	if err != nil {
		return make(workload.Set, 1000)
	}
	return train
}

// ExtensionWeightedSel compares the paper's uniformity-based per-attribute
// selectivity appendix (gray lines of Algorithm 1) against a
// frequency-weighted variant that combines per-partition row shares with
// the partition qualification values (core.NewTableMetaWeighted) — a
// data-driven upgrade the uniformity assumption invites.
func ExtensionWeightedSel(env *Env) (*Report, error) {
	r := &Report{ID: "ext7", Title: "attrSel: uniformity assumption vs frequency-weighted"}
	conjTrain, conjTest, err := env.ConjWorkload()
	if err != nil {
		return nil, err
	}
	mixTrain, mixTest, err := env.MixedWorkload()
	if err != nil {
		return nil, err
	}
	forest, err := env.Forest()
	if err != nil {
		return nil, err
	}
	opts := env.coreOptions()
	plain := core.NewTableMeta(forest, opts.MaxEntriesPerAttr)
	weighted := core.NewTableMetaWeighted(forest, opts.MaxEntriesPerAttr)

	type variant struct {
		label       string
		featurizer  func() func(sqlparse.Expr) ([]float64, error)
		train, test workload.Set
	}
	variants := []variant{
		{"conj, uniform attrSel", func() func(sqlparse.Expr) ([]float64, error) {
			return core.NewConjunctive(plain, opts).Featurize
		}, conjTrain, conjTest},
		{"conj, weighted attrSel", func() func(sqlparse.Expr) ([]float64, error) {
			return core.NewConjunctive(weighted, opts).Featurize
		}, conjTrain, conjTest},
		{"comp, uniform attrSel", func() func(sqlparse.Expr) ([]float64, error) {
			return core.NewComplex(plain, opts).Featurize
		}, mixTrain, mixTest},
		{"comp, weighted attrSel", func() func(sqlparse.Expr) ([]float64, error) {
			return core.NewComplex(weighted, opts).Featurize
		}, mixTrain, mixTest},
	}
	for _, v := range variants {
		sum, err := trainEvalCustom(v.featurizer(), env.gbConfig(), v.train, v.test)
		if err != nil {
			return nil, err
		}
		r.Lines = append(r.Lines, summaryRow(v.label, sum))
	}
	r.Printf("(the weighted estimate is exact per attribute at full resolution — core's property tests; end-to-end it matters at small n or few training queries, and is neutral once the partition vector already carries the distribution)")
	return r, nil
}

// ExtensionPruning runs the Section 2.1.2 sub-schema pruning: local models
// are built only for sub-schemas where the System-R style fallback's
// q-error exceeds a bar; everything else routes to the fallback. The sweep
// shows the model-count / accuracy trade-off against the full local
// estimator on the JOB-light-style suite.
func ExtensionPruning(env *Env) (*Report, error) {
	r := &Report{ID: "ext8", Title: "Sub-schema pruning via System-R feedback (Section 2.1.2)"}
	db, _, err := env.IMDB()
	if err != nil {
		return nil, err
	}
	train, err := env.JoinTraining()
	if err != nil {
		return nil, err
	}
	test, err := env.JOBLight()
	if err != nil {
		return nil, err
	}
	localCfg := estimator.LocalConfig{
		QFT:          "conjunctive",
		Opts:         env.coreOptions(),
		NewRegressor: estimator.NewGBFactory(env.gbConfig()),
	}
	fallback := &estimator.Independence{DB: db}

	full, err := env.trainJoinLocal("conjunctive", "GB", env.coreOptions(), train)
	if err != nil {
		return nil, err
	}
	fullSum, err := estimator.Summarize(full, test)
	if err != nil {
		return nil, err
	}
	r.Printf("%-24s models=%3d  mem=%7.1f kB  %s", "full local", full.NumModels(),
		float64(full.MemoryBytes())/1024, fullSum)

	for _, bar := range []float64{1.5, 3, 10} {
		h, err := estimator.NewHybrid(db, estimator.HybridConfig{Local: localCfg, MaxQuantileError: bar}, fallback)
		if err != nil {
			return nil, err
		}
		kept, pruned, err := h.Train(train)
		if err != nil {
			return nil, err
		}
		sum, err := estimator.Summarize(h, test)
		if err != nil {
			return nil, err
		}
		r.Printf("%-24s models=%3d  mem=%7.1f kB  %s  (pruned %d)",
			fmt.Sprintf("pruned @ p90<=%.1f", bar), kept, float64(h.MemoryBytes())/1024, sum, pruned)
	}
	r.Printf("(models are built exactly where the System-R assumptions fail — the paper's deployment note)")
	return r, nil
}
