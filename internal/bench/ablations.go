package bench

import (
	"math"
	"time"

	"qfe/internal/core"
	"qfe/internal/estimator"
	"qfe/internal/metrics"
	"qfe/internal/ml/gb"
	"qfe/internal/sqlparse"
	"qfe/internal/workload"
)

// This file implements the design-choice ablations DESIGN.md calls out.
// They are not paper artifacts; they justify implementation decisions the
// paper leaves open.

// trainEvalCustom is the single-table harness for ablations that need a
// featurizer outside the core registry: featurize, fit GB on log2 labels,
// evaluate q-errors.
func trainEvalCustom(featurize func(sqlparse.Expr) ([]float64, error), cfg gb.Config, train, test workload.Set) (metrics.Summary, error) {
	X := make([][]float64, len(train))
	y := make([]float64, len(train))
	for i, l := range train {
		vec, err := featurize(l.Query.Where)
		if err != nil {
			return metrics.Summary{}, err
		}
		X[i] = vec
		y[i] = math.Log2(float64(l.Card) + 1)
	}
	model, err := gb.Train(X, y, cfg)
	if err != nil {
		return metrics.Summary{}, err
	}
	qerrs := make([]float64, len(test))
	for i, l := range test {
		vec, err := featurize(l.Query.Where)
		if err != nil {
			return metrics.Summary{}, err
		}
		pred := model.Predict(vec)
		if pred > 62 {
			pred = 62
		}
		card := math.Exp2(pred) - 1
		if card < 1 {
			card = 1
		}
		qerrs[i] = metrics.QError(float64(l.Card), card)
	}
	return metrics.Summarize(qerrs), nil
}

// AblationGBSplit compares histogram against exact split search in the
// gradient-boosting trees: accuracy and training time.
func AblationGBSplit(env *Env) (*Report, error) {
	r := &Report{ID: "abl1", Title: "Ablation: GB histogram vs exact split search"}
	train, test, err := env.ConjWorkload()
	if err != nil {
		return nil, err
	}
	// Exact split search is O(n log n) per feature per node; cap the
	// training set so the ablation stays tractable.
	if cap := 1200; len(train) > cap {
		train = train[:cap]
	}
	forest, err := env.Forest()
	if err != nil {
		return nil, err
	}
	meta := core.NewTableMeta(forest, env.Scale.Entries)
	f := core.NewConjunctive(meta, env.coreOptions())

	for _, exact := range []bool{false, true} {
		cfg := env.gbConfig()
		cfg.ExactSplits = exact
		start := time.Now()
		sum, err := trainEvalCustom(f.Featurize, cfg, train, test)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		label := "histogram"
		if exact {
			label = "exact"
		}
		r.Printf("%-12s train+eval=%8v  %s", label, elapsed.Round(time.Millisecond), sum)
	}
	r.Printf("(expect near-identical accuracy; histogram much faster — the LightGBM design point)")
	return r, nil
}

// AblationHalfEntries compares the paper's three-valued partition entries
// {0, ½, 1} against binarized variants that collapse ½ to 1 (optimistic) or
// 0 (pessimistic) — quantifying what the categorical middle value buys.
func AblationHalfEntries(env *Env) (*Report, error) {
	r := &Report{ID: "abl2", Title: "Ablation: ½ entries vs binarized partitions"}
	train, test, err := env.ConjWorkload()
	if err != nil {
		return nil, err
	}
	forest, err := env.Forest()
	if err != nil {
		return nil, err
	}
	meta := core.NewTableMeta(forest, env.Scale.Entries)
	f := core.NewConjunctive(meta, env.coreOptions())

	variants := []struct {
		label string
		remap func(float64) float64
	}{
		{"three-valued (paper)", func(v float64) float64 { return v }},
		{"binarized: half -> 1", func(v float64) float64 {
			if v == 0.5 {
				return 1
			}
			return v
		}},
		{"binarized: half -> 0", func(v float64) float64 {
			if v == 0.5 {
				return 0
			}
			return v
		}},
	}
	for _, variant := range variants {
		remap := variant.remap
		featurize := func(expr sqlparse.Expr) ([]float64, error) {
			vec, err := f.Featurize(expr)
			if err != nil {
				return nil, err
			}
			for i, v := range vec {
				vec[i] = remap(v)
			}
			return vec, nil
		}
		sum, err := trainEvalCustom(featurize, env.gbConfig(), train, test)
		if err != nil {
			return nil, err
		}
		r.Lines = append(r.Lines, summaryRow(variant.label, sum))
	}
	return r, nil
}

// AblationLDEMerge compares Algorithm 2's entry-wise max merge against a
// sum-clamp merge for the per-disjunct vectors of Limited Disjunction
// Encoding.
func AblationLDEMerge(env *Env) (*Report, error) {
	r := &Report{ID: "abl3", Title: "Ablation: LDE entry-wise max vs sum-clamp merge"}
	train, test, err := env.MixedWorkload()
	if err != nil {
		return nil, err
	}
	forest, err := env.Forest()
	if err != nil {
		return nil, err
	}
	opts := env.coreOptions()
	meta := core.NewTableMeta(forest, env.Scale.Entries)

	makeFeaturizer := func(sumClamp bool) func(sqlparse.Expr) ([]float64, error) {
		return func(expr sqlparse.Expr) ([]float64, error) {
			compounds, err := sqlparse.CompoundPredicates(expr)
			if err != nil {
				return nil, err
			}
			byAttr := make(map[string]sqlparse.Expr, len(compounds))
			for _, cp := range compounds {
				byAttr[cp.Attr] = cp.Expr
			}
			var vec []float64
			for _, a := range meta.Attrs {
				cpExpr, has := byAttr[a.Name]
				if !has {
					av := make([]float64, a.NEntries)
					for i := range av {
						av[i] = 1
					}
					vec = append(vec, av...)
					if opts.AttrSel {
						vec = append(vec, 1)
					}
					continue
				}
				dnf, err := sqlparse.ToDNF(cpExpr)
				if err != nil {
					return nil, err
				}
				merged := make([]float64, a.NEntries)
				var selSum float64
				for _, conj := range dnf {
					branch, sel, err := core.FeaturizeAttrConjunction(a, conj)
					if err != nil {
						return nil, err
					}
					for i, v := range branch {
						if sumClamp {
							merged[i] += v
							if merged[i] > 1 {
								merged[i] = 1
							}
						} else if v > merged[i] {
							merged[i] = v
						}
					}
					selSum += sel
				}
				if selSum > 1 {
					selSum = 1
				}
				vec = append(vec, merged...)
				if opts.AttrSel {
					vec = append(vec, selSum)
				}
			}
			return vec, nil
		}
	}

	for _, variant := range []struct {
		label    string
		sumClamp bool
	}{
		{"entry-wise max (Alg. 2)", false},
		{"sum-clamp", true},
	} {
		sum, err := trainEvalCustom(makeFeaturizer(variant.sumClamp), env.gbConfig(), train, test)
		if err != nil {
			return nil, err
		}
		r.Lines = append(r.Lines, summaryRow(variant.label, sum))
	}
	r.Printf("(sum-clamp loses the categorical reading: two half-covered branches sum to 'fully covered')")
	return r, nil
}

// AblationLabelTransform compares log2-transformed against raw cardinality
// labels for GB + conjunctive.
func AblationLabelTransform(env *Env) (*Report, error) {
	r := &Report{ID: "abl4", Title: "Ablation: log2 vs raw label transform"}
	train, test, err := env.ConjWorkload()
	if err != nil {
		return nil, err
	}
	db, err := env.ForestDB()
	if err != nil {
		return nil, err
	}
	for _, raw := range []bool{false, true} {
		loc, err := estimator.NewLocal(db, estimator.LocalConfig{
			QFT:          "conjunctive",
			Opts:         env.coreOptions(),
			NewRegressor: estimator.NewGBFactory(env.gbConfig()),
			RawLabels:    raw,
		})
		if err != nil {
			return nil, err
		}
		if err := loc.Train(train); err != nil {
			return nil, err
		}
		sum, err := estimator.Summarize(loc, test)
		if err != nil {
			return nil, err
		}
		label := "log2 labels (default)"
		if raw {
			label = "raw labels"
		}
		r.Lines = append(r.Lines, summaryRow(label, sum))
	}
	r.Printf("(squared error on raw labels optimizes absolute error, mismatching the q-error metric)")
	return r, nil
}
