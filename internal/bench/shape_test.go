package bench

import (
	"testing"

	"qfe/internal/core"
	"qfe/internal/estimator"
	"qfe/internal/metrics"
	"qfe/internal/workload"
)

// Shape tests: the paper's central qualitative conclusions, asserted at
// smoke scale. Absolute q-errors differ from the paper (synthetic data,
// tiny training sets); the *orderings* below are what the reproduction
// promises (see EXPERIMENTS.md).

// sharedShapeEnv caches the environment across shape tests.
var shapeEnv = NewEnv(SmokeScale())

func trainSummary(t *testing.T, qft, model string, train, test workload.Set) metrics.Summary {
	t.Helper()
	loc, err := shapeEnv.trainLocal(qft, model, shapeEnv.coreOptions(), train)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := estimator.Summarize(loc, test)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestShapeConjunctiveBeatsSimpleUnderGB: Figure 1's core finding — with
// multiple predicates per attribute, Universal Conjunction Encoding clearly
// outperforms Singular Predicate Encoding under the same model.
func TestShapeConjunctiveBeatsSimpleUnderGB(t *testing.T) {
	train, test, err := shapeEnv.ConjWorkload()
	if err != nil {
		t.Fatal(err)
	}
	conj := trainSummary(t, "conjunctive", "GB", train, test)
	simple := trainSummary(t, "simple", "GB", train, test)
	t.Logf("GB: conjunctive %v | simple %v", conj, simple)
	if conj.Median >= simple.Median {
		t.Errorf("conjunctive median %v should beat simple median %v", conj.Median, simple.Median)
	}
	if conj.Mean >= simple.Mean {
		t.Errorf("conjunctive mean %v should beat simple mean %v", conj.Mean, simple.Mean)
	}
}

// TestShapeGBBeatsNN: Section 5.1/5.6 — GB errors are consistently below
// NN errors at equal training data (NN needs far more queries to converge).
func TestShapeGBBeatsNN(t *testing.T) {
	train, test, err := shapeEnv.ConjWorkload()
	if err != nil {
		t.Fatal(err)
	}
	gbSum := trainSummary(t, "conjunctive", "GB", train, test)
	nnSum := trainSummary(t, "conjunctive", "NN", train, test)
	t.Logf("conjunctive: GB %v | NN %v", gbSum, nnSum)
	if gbSum.Mean >= nnSum.Mean {
		t.Errorf("GB mean %v should beat NN mean %v", gbSum.Mean, nnSum.Mean)
	}
}

// TestShapeComplexHandlesMixedQueries: Limited Disjunction Encoding keeps
// mixed-query errors in the same band as Universal Conjunction Encoding on
// conjunctive queries ("performs about as well", Section 5.1).
func TestShapeComplexHandlesMixedQueries(t *testing.T) {
	conjTrain, conjTest, err := shapeEnv.ConjWorkload()
	if err != nil {
		t.Fatal(err)
	}
	mixTrain, mixTest, err := shapeEnv.MixedWorkload()
	if err != nil {
		t.Fatal(err)
	}
	conj := trainSummary(t, "conjunctive", "GB", conjTrain, conjTest)
	comp := trainSummary(t, "complex", "GB", mixTrain, mixTest)
	t.Logf("GB: conjunctive-on-conj %v | complex-on-mixed %v", conj, comp)
	if comp.Median > 3*conj.Median {
		t.Errorf("complex median %v drifted far beyond conjunctive median %v", comp.Median, conj.Median)
	}
}

// TestShapeSamplingHasTailErrors: Figure 4 — the 0.1% sampling baseline
// works in easy cases but has catastrophic tail errors on selective
// queries.
func TestShapeSamplingHasTailErrors(t *testing.T) {
	_, test, err := shapeEnv.ConjWorkload()
	if err != nil {
		t.Fatal(err)
	}
	db, err := shapeEnv.ForestDB()
	if err != nil {
		t.Fatal(err)
	}
	qerrs, err := estimator.Evaluate(estimator.NewSampling(db, 0.001, 1), test)
	if err != nil {
		t.Fatal(err)
	}
	sum := metrics.Summarize(qerrs)
	t.Logf("sampling: %v", sum)
	if sum.P99 < 50 {
		t.Errorf("sampling p99 %v suspiciously good; the tail-error phenomenon is missing", sum.P99)
	}
}

// TestShapeIndependenceDegradesWithAttributes: Figures 2/4 — the
// independence baseline's error grows with the number of attributes, since
// every additional correlated attribute compounds the assumption's error.
func TestShapeIndependenceDegradesWithAttributes(t *testing.T) {
	_, test, err := shapeEnv.ConjWorkload()
	if err != nil {
		t.Fatal(err)
	}
	db, err := shapeEnv.ForestDB()
	if err != nil {
		t.Fatal(err)
	}
	ind := &estimator.Independence{DB: db}
	grouped := test.GroupByAttrs()
	lo, hi := grouped[1], grouped[shapeEnv.Scale.ForestMaxAttrs]
	if len(lo) < 5 || len(hi) < 5 {
		t.Skip("not enough queries per group at smoke scale")
	}
	loErr, err := estimator.Evaluate(ind, lo)
	if err != nil {
		t.Fatal(err)
	}
	hiErr, err := estimator.Evaluate(ind, hi)
	if err != nil {
		t.Fatal(err)
	}
	loMed, hiMed := metrics.Summarize(loErr).Median, metrics.Summarize(hiErr).Median
	t.Logf("independence median: 1 attr %v | %d attrs %v", loMed, shapeEnv.Scale.ForestMaxAttrs, hiMed)
	if hiMed <= loMed {
		t.Errorf("independence should degrade with attributes: 1-attr %v vs max-attr %v", loMed, hiMed)
	}
}

// TestShapeDriftHurtsNNSimpleMost: Figure 5 — under query drift the NN with
// the lossy simple encoding degrades far more than GB.
func TestShapeDriftHurtsNNSimpleMost(t *testing.T) {
	all, _, err := shapeEnv.ConjWorkload()
	if err != nil {
		t.Fatal(err)
	}
	train, test := all.SplitByAttrs(2)
	if len(train) < 50 || len(test) < 50 {
		t.Skip("drift split too small at smoke scale")
	}
	gbSum := trainSummary(t, "conjunctive", "GB", train, test)
	nnSum := trainSummary(t, "simple", "NN", train, test)
	t.Logf("drift: GB+conj %v | NN+simple %v", gbSum, nnSum)
	if gbSum.Median >= nnSum.Median {
		t.Errorf("GB+conj should survive drift better: %v vs %v", gbSum.Median, nnSum.Median)
	}
}

// TestShapeLinearRegressionTrailsGB: the Section 2.2 exclusion — the
// simpler linear model is worse by a significant factor.
func TestShapeLinearRegressionTrailsGB(t *testing.T) {
	train, test, err := shapeEnv.ConjWorkload()
	if err != nil {
		t.Fatal(err)
	}
	gbSum := trainSummary(t, "conjunctive", "GB", train, test)
	lrSum := trainSummary(t, "conjunctive", "LR", train, test)
	t.Logf("GB %v | LR %v", gbSum, lrSum)
	// At smoke scale the gap is a margin, not yet "a significant factor";
	// it widens with training data (GB keeps improving, the linear model
	// plateaus on interactions) — ext1 at default scale shows the paper's
	// gap. Here we assert the ordering only.
	if lrSum.Mean <= gbSum.Mean {
		t.Errorf("LR mean %v should trail GB mean %v", lrSum.Mean, gbSum.Mean)
	}
}

// TestShapeMSCNConjImprovesOnOriginal: Table 2 — replacing MSCN's original
// per-predicate featurization with the per-attribute conjunctive encoding
// must not hurt, and generally helps, on multi-predicate workloads.
func TestShapeMSCNConjImprovesOnOriginal(t *testing.T) {
	train, test, err := shapeEnv.ConjWorkload()
	if err != nil {
		t.Fatal(err)
	}
	db, err := shapeEnv.ForestDB()
	if err != nil {
		t.Fatal(err)
	}
	schema, err := shapeEnv.ForestSchema()
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode core.MSCNMode) metrics.Summary {
		est, err := estimator.NewMSCN(db, schema, mode, shapeEnv.coreOptions(), shapeEnv.mscnConfig(), false)
		if err != nil {
			t.Fatal(err)
		}
		if err := est.Train(train); err != nil {
			t.Fatal(err)
		}
		sum, err := estimator.Summarize(est, test)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	orig := run(core.MSCNOriginal)
	conj := run(core.MSCNPerAttribute)
	t.Logf("MSCN original %v | MSCN+conj %v", orig, conj)
	if conj.Median > 1.5*orig.Median {
		t.Errorf("MSCN+conj median %v should not be far worse than original %v", conj.Median, orig.Median)
	}
}

// TestShapeFeaturizationCostOrdering: Table 7 — featurization cost grows
// with QFT complexity: simple < conjunctive, conjunctive < complex-level
// budgets, all far below 1ms.
func TestShapeFeaturizationCostOrdering(t *testing.T) {
	env := shapeEnv
	rep, err := Table7(env)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	// The detailed ordering assertion lives in the report itself; here we
	// only require the report to exist with the four QFT rows.
	if len(rep.Lines) < 4 {
		t.Fatalf("Table 7 report too short: %v", rep.Lines)
	}
}
