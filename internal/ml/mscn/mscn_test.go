package mscn

import (
	"math"
	"math/rand"
	"testing"
)

// TestGradientsAgainstFiniteDifferences verifies the hand-written backprop
// through set pooling and both MLP stacks.
func TestGradientsAgainstFiniteDifferences(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rel, err := SanityCheckGradients(seed)
		if err != nil {
			t.Fatal(err)
		}
		if rel > 1e-4 {
			t.Errorf("seed %d: max relative gradient error %v", seed, rel)
		}
	}
}

// synthSample builds a random Sets sample whose target depends on all three
// sets, so learning requires every pathway.
func synthSample(rng *rand.Rand) (*Sets, float64) {
	nPreds := 1 + rng.Intn(3)
	s := &Sets{
		Tables: [][]float64{{0, 0, 0}},
		Joins:  [][]float64{{0, 0}},
	}
	ti := rng.Intn(3)
	s.Tables[0][ti] = 1
	ji := rng.Intn(2)
	s.Joins[0][ji] = 1
	target := 0.3*float64(ti) - 0.2*float64(ji)
	for p := 0; p < nPreds; p++ {
		v := rng.Float64()
		s.Preds = append(s.Preds, []float64{v, 1 - v})
		target += 0.5 * v / float64(nPreds)
	}
	return s, target
}

func TestLearnsSetFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var samples []*Sets
	var y []float64
	for i := 0; i < 3000; i++ {
		s, target := synthSample(rng)
		samples = append(samples, s)
		y = append(y, target)
	}
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.Epochs = 30
	m, err := Train(samples, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	n := 300
	for i := 0; i < n; i++ {
		sample, target := synthSample(rng)
		diff := m.Predict(sample) - target
		s += diff * diff
	}
	if got := s / float64(n); got > 0.01 {
		t.Errorf("test MSE = %v, want < 0.01", got)
	}
}

func TestVariableSetSizes(t *testing.T) {
	// The model must accept any number of elements per set at predict time.
	rng := rand.New(rand.NewSource(2))
	var samples []*Sets
	var y []float64
	for i := 0; i < 200; i++ {
		s, target := synthSample(rng)
		samples = append(samples, s)
		y = append(y, target)
	}
	cfg := DefaultConfig()
	cfg.Epochs = 2
	m, err := Train(samples, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	big := &Sets{
		Tables: [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
		Joins:  [][]float64{{1, 0}, {0, 1}},
		Preds:  [][]float64{{0.1, 0.9}, {0.5, 0.5}, {0.9, 0.1}, {0.3, 0.7}},
	}
	if p := m.Predict(big); math.IsNaN(p) || math.IsInf(p, 0) {
		t.Errorf("prediction on larger sets not finite: %v", p)
	}
}

func TestPoolingIsOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var samples []*Sets
	var y []float64
	for i := 0; i < 100; i++ {
		s, target := synthSample(rng)
		samples = append(samples, s)
		y = append(y, target)
	}
	cfg := DefaultConfig()
	cfg.Epochs = 2
	m, err := Train(samples, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := &Sets{
		Tables: [][]float64{{1, 0, 0}},
		Joins:  [][]float64{{1, 0}},
		Preds:  [][]float64{{0.2, 0.8}, {0.7, 0.3}},
	}
	b := &Sets{
		Tables: a.Tables,
		Joins:  a.Joins,
		Preds:  [][]float64{{0.7, 0.3}, {0.2, 0.8}},
	}
	if pa, pb := m.Predict(a), m.Predict(b); math.Abs(pa-pb) > 1e-12 {
		t.Errorf("set model is order sensitive: %v vs %v", pa, pb)
	}
}

func TestTrainValidation(t *testing.T) {
	good, target := synthSample(rand.New(rand.NewSource(4)))
	cfg := DefaultConfig()
	cfg.Epochs = 1
	if _, err := Train(nil, nil, cfg); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train([]*Sets{good}, nil, cfg); err == nil {
		t.Error("target length mismatch accepted")
	}
	bad := &Sets{Tables: [][]float64{{1}}, Joins: [][]float64{{1}}, Preds: nil}
	if _, err := Train([]*Sets{bad}, []float64{1}, cfg); err == nil {
		t.Error("empty pred set accepted (must be zero-padded)")
	}
	ragged := &Sets{
		Tables: good.Tables,
		Joins:  good.Joins,
		Preds:  [][]float64{{1, 2}, {1, 2, 3}},
	}
	if _, err := Train([]*Sets{good, ragged}, []float64{target, 1}, cfg); err == nil {
		t.Error("ragged pred vectors accepted")
	}
	badCfg := cfg
	badCfg.LearningRate = 0
	if _, err := Train([]*Sets{good}, []float64{target}, badCfg); err == nil {
		t.Error("bad config accepted")
	}
}

func TestDeterminismUnderSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var samples []*Sets
	var y []float64
	for i := 0; i < 100; i++ {
		s, target := synthSample(rng)
		samples = append(samples, s)
		y = append(y, target)
	}
	cfg := DefaultConfig()
	cfg.Epochs = 3
	cfg.Seed = 11
	m1, err := Train(samples, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(samples, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if m1.Predict(samples[i]) != m2.Predict(samples[i]) {
			t.Fatal("same seed must give identical models")
		}
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s, target := synthSample(rng)
	cfg := Config{HiddenSet: 4, HiddenOut: 8, LearningRate: 0.01, Epochs: 1, BatchSize: 1}
	m, err := Train([]*Sets{s}, []float64{target}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Per set module: (in*4+4) + (4*4+4); table in=3, join in=2, pred in=2.
	want := (3*4 + 4 + 20) + (2*4 + 4 + 20) + (2*4 + 4 + 20) +
		(12*8 + 8) + (8*1 + 1)
	if got := m.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
	if m.MemoryBytes() != want*8 {
		t.Errorf("MemoryBytes = %d, want %d", m.MemoryBytes(), want*8)
	}
	if len(m.PredictBatch([]*Sets{s, s})) != 2 {
		t.Error("PredictBatch length wrong")
	}
}
