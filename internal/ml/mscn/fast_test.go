package mscn

import (
	"math/rand"
	"testing"

	"qfe/internal/testutil"
)

func randSets(rng *rand.Rand, td, jd, pd int) *Sets {
	vec := func(d int) []float64 {
		v := make([]float64, d)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	set := func(d, maxLen int) [][]float64 {
		n := 1 + rng.Intn(maxLen)
		out := make([][]float64, n)
		for i := range out {
			out[i] = vec(d)
		}
		return out
	}
	return &Sets{Tables: set(td, 3), Joins: set(jd, 2), Preds: set(pd, 4)}
}

func trainSmallMSCN(t *testing.T, seed int64) (*Model, []*Sets) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const td, jd, pd = 3, 2, 5
	samples := make([]*Sets, 120)
	y := make([]float64, len(samples))
	for i := range samples {
		samples[i] = randSets(rng, td, jd, pd)
		y[i] = rng.Float64() * 10
	}
	cfg := Config{HiddenSet: 8, HiddenOut: 16, LearningRate: 1e-3, Epochs: 3, BatchSize: 16, Seed: seed}
	m, err := Train(samples, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, samples
}

// TestPooledPredictBitIdentical: the pooled scratch path must reproduce the
// allocating reference bit for bit across varying set sizes.
func TestPooledPredictBitIdentical(t *testing.T) {
	m, samples := trainSmallMSCN(t, 51)
	if m.pool == nil {
		t.Fatal("trained model has no scratch pool")
	}
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 500; trial++ {
		s := randSets(rng, 3, 2, 5)
		if got, want := m.Predict(s), m.PredictReference(s); got != want {
			t.Fatalf("trial %d: pooled %v != reference %v", trial, got, want)
		}
	}
	dst := make([]float64, len(samples))
	m.PredictInto(dst, samples)
	for i, s := range samples {
		if dst[i] != m.PredictReference(s) {
			t.Fatalf("row %d: PredictInto mismatch", i)
		}
	}
}

// TestHandBuiltModelFallsBack: models assembled without training (no pool)
// keep predicting through the reference path; the gradient sanity check
// depends on this.
func TestHandBuiltModelFallsBack(t *testing.T) {
	if rel, err := SanityCheckGradients(7); err != nil || rel > 1e-4 {
		t.Fatalf("gradient check after fast-path change: rel=%v err=%v", rel, err)
	}
}

// TestPredictZeroAllocs pins the pooled path's steady-state allocations.
func TestPredictZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation defeats sync.Pool; allocation counts are only meaningful in normal builds")
	}
	m, samples := trainSmallMSCN(t, 61)
	s := samples[0]
	if allocs := testing.AllocsPerRun(200, func() {
		m.Predict(s)
	}); allocs != 0 {
		t.Errorf("Predict allocs/op = %v, want 0", allocs)
	}
	dst := make([]float64, 32)
	batch := samples[:32]
	if allocs := testing.AllocsPerRun(100, func() {
		m.PredictInto(dst, batch)
	}); allocs != 0 {
		t.Errorf("PredictInto allocs/op = %v, want 0", allocs)
	}
}
