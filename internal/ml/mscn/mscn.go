// Package mscn implements the Multi-Set Convolutional Network of Kipf et
// al. [12] from scratch — the global-model architecture the paper extends
// with its QFTs (Sections 2.2.1, 4.2, and Table 2).
//
// The architecture follows the original: three input sets (tables, joins,
// predicates), each element passed through a per-set two-layer MLP (the
// learned "set convolution"), average-pooled within its set, the three
// pooled vectors concatenated, and a two-layer output MLP producing the
// estimate. Backpropagation through the average pooling distributes the
// pooled gradient uniformly over the set elements. Training uses mini-batch
// Adam on mean squared error.
package mscn

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"qfe/internal/ml/mlmath"
)

// ErrCanceled reports that training was aborted by its context; the
// returned error also wraps the context's own error.
var ErrCanceled = errors.New("mscn: training canceled")

// TrainOpts carries the optional checkpointing hooks of TrainCtx. The zero
// value (or a nil pointer) trains without checkpoints.
type TrainOpts struct {
	// CheckpointEvery emits a checkpoint after every this-many completed
	// epochs; 0 disables checkpointing.
	CheckpointEvery int
	// OnCheckpoint receives each serialized checkpoint; a non-nil return
	// aborts training with that error.
	OnCheckpoint func(payload []byte) error
	// Resume, when non-empty, is a payload previously passed to
	// OnCheckpoint; training continues from it bit-identically to a run
	// that was never interrupted (same Config, samples, and y required).
	Resume []byte
}

// checkpoint is the serialized mid-training state: the completed-epoch
// cursor plus the full state (weights and Adam moments) of the eight dense
// layers in denseLayers order.
type checkpoint struct {
	Cfg    Config              `json:"cfg"`
	TD     int                 `json:"td"`
	JD     int                 `json:"jd"`
	PD     int                 `json:"pd"`
	Epoch  int                 `json:"epoch"`
	Layers []mlmath.DenseState `json:"layers"`
}

// Sets is one featurized query: the three vector sets of Section 4.2. All
// vectors within a set must share that set's dimension. Empty sets must be
// represented by a single zero vector (the original implementation's
// padding convention, produced by core.MSCNFeaturizer).
type Sets struct {
	Tables [][]float64
	Joins  [][]float64
	Preds  [][]float64
}

// Config holds the network hyperparameters.
type Config struct {
	// HiddenSet is the width of the per-set MLPs.
	HiddenSet int
	// HiddenOut is the width of the output MLP's hidden layer.
	HiddenOut int
	// LearningRate is the Adam step size.
	LearningRate float64
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the mini-batch size.
	BatchSize int
	// Seed drives initialization and shuffling.
	Seed int64
}

// DefaultConfig mirrors a scaled-down version of the original MSCN sizing.
func DefaultConfig() Config {
	return Config{
		HiddenSet:    32,
		HiddenOut:    64,
		LearningRate: 1e-3,
		Epochs:       40,
		BatchSize:    64,
	}
}

func (c Config) validate() error {
	switch {
	case c.HiddenSet < 1 || c.HiddenOut < 1:
		return fmt.Errorf("mscn: hidden sizes must be >= 1")
	case c.LearningRate <= 0:
		return fmt.Errorf("mscn: LearningRate = %v, want > 0", c.LearningRate)
	case c.Epochs < 1:
		return fmt.Errorf("mscn: Epochs = %d, want >= 1", c.Epochs)
	case c.BatchSize < 1:
		return fmt.Errorf("mscn: BatchSize = %d, want >= 1", c.BatchSize)
	}
	return nil
}

// setModule is the per-set convolution: two dense layers with ReLU.
type setModule struct {
	l1, l2 *mlmath.Dense
}

func newSetModule(in, hidden int, rng *rand.Rand) *setModule {
	return &setModule{
		l1: mlmath.NewDense(in, hidden, rng),
		l2: mlmath.NewDense(hidden, hidden, rng),
	}
}

// forward returns the pooled output plus the per-element intermediates
// needed for backprop.
type setTrace struct {
	inputs [][]float64 // raw elements
	pre1   [][]float64
	act1   [][]float64
	pre2   [][]float64
	pooled []float64
}

func (s *setModule) forward(elems [][]float64) *setTrace {
	tr := &setTrace{inputs: elems}
	hidden := s.l2.Out
	tr.pooled = make([]float64, hidden)
	for _, e := range elems {
		pre1 := s.l1.Forward(e)
		act1 := mlmath.ReLU(append([]float64(nil), pre1...))
		pre2 := s.l2.Forward(act1)
		act2 := mlmath.ReLU(append([]float64(nil), pre2...))
		tr.pre1 = append(tr.pre1, pre1)
		tr.act1 = append(tr.act1, act1)
		tr.pre2 = append(tr.pre2, pre2)
		for i, v := range act2 {
			tr.pooled[i] += v
		}
	}
	inv := 1.0 / float64(len(elems))
	for i := range tr.pooled {
		tr.pooled[i] *= inv
	}
	return tr
}

// backward pushes dPooled through the pooling and the two layers,
// accumulating weight gradients.
func (s *setModule) backward(tr *setTrace, dPooled []float64) {
	inv := 1.0 / float64(len(tr.inputs))
	for ei := range tr.inputs {
		dAct2 := make([]float64, len(dPooled))
		for i, g := range dPooled {
			dAct2[i] = g * inv
		}
		mlmath.ReLUBackward(tr.pre2[ei], dAct2)
		dAct1 := s.l2.Backward(tr.act1[ei], dAct2)
		mlmath.ReLUBackward(tr.pre1[ei], dAct1)
		s.l1.Backward(tr.inputs[ei], dAct1)
	}
}

func (s *setModule) zeroGrad() { s.l1.ZeroGrad(); s.l2.ZeroGrad() }
func (s *setModule) step(lr float64, batch int) {
	s.l1.Step(lr, batch)
	s.l2.Step(lr, batch)
}
func (s *setModule) numParams() int { return s.l1.NumParams() + s.l2.NumParams() }

// Model is a trained multi-set convolutional network.
type Model struct {
	cfg                        Config
	tableMod, joinMod, predMod *setModule
	out1, out2                 *mlmath.Dense
	tableDim, joinDim, predDim int

	// pool hands out inference scratch for the fast path (see fast.go);
	// nil falls back to the allocating reference.
	pool *sync.Pool
}

// denseLayers lists every trainable layer in a fixed order; checkpoints
// serialize and restore layer state by position in this list.
func (m *Model) denseLayers() []*mlmath.Dense {
	return []*mlmath.Dense{
		m.tableMod.l1, m.tableMod.l2,
		m.joinMod.l1, m.joinMod.l2,
		m.predMod.l1, m.predMod.l2,
		m.out1, m.out2,
	}
}

// Train fits the network. All samples must agree on the three per-set
// vector dimensions.
func Train(samples []*Sets, y []float64, cfg Config) (*Model, error) {
	return TrainCtx(context.Background(), samples, y, cfg, nil)
}

// TrainCtx is Train with cancellation (checked every mini-batch) and
// optional epoch-granularity checkpointing. Resuming restores the full
// per-layer state and replays the per-epoch shuffles the completed epochs
// consumed, so the finished network is bit-identical to an uninterrupted
// run with the same inputs.
func TrainCtx(ctx context.Context, samples []*Sets, y []float64, cfg Config, opts *TrainOpts) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("mscn: no training samples")
	}
	if len(y) != len(samples) {
		return nil, fmt.Errorf("mscn: %d samples but %d targets", len(samples), len(y))
	}
	td, jd, pd, err := dims(samples[0])
	if err != nil {
		return nil, err
	}
	for i, s := range samples {
		if err := checkDims(s, td, jd, pd); err != nil {
			return nil, fmt.Errorf("mscn: sample %d: %w", i, err)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		cfg:      cfg,
		tableMod: newSetModule(td, cfg.HiddenSet, rng),
		joinMod:  newSetModule(jd, cfg.HiddenSet, rng),
		predMod:  newSetModule(pd, cfg.HiddenSet, rng),
		out1:     mlmath.NewDense(3*cfg.HiddenSet, cfg.HiddenOut, rng),
		out2:     mlmath.NewDense(cfg.HiddenOut, 1, rng),
		tableDim: td, joinDim: jd, predDim: pd,
	}

	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}

	startEpoch := 0
	if opts != nil && len(opts.Resume) > 0 {
		var ck checkpoint
		if err := json.Unmarshal(opts.Resume, &ck); err != nil {
			return nil, fmt.Errorf("mscn: decode checkpoint: %w", err)
		}
		layers := m.denseLayers()
		switch {
		case ck.Cfg != cfg:
			return nil, fmt.Errorf("mscn: checkpoint config %+v does not match %+v", ck.Cfg, cfg)
		case ck.TD != td || ck.JD != jd || ck.PD != pd:
			return nil, fmt.Errorf("mscn: checkpoint dims (%d,%d,%d), training data has (%d,%d,%d)",
				ck.TD, ck.JD, ck.PD, td, jd, pd)
		case len(ck.Layers) != len(layers):
			return nil, fmt.Errorf("mscn: checkpoint has %d layers, model has %d", len(ck.Layers), len(layers))
		case ck.Epoch < 0 || ck.Epoch > cfg.Epochs:
			return nil, fmt.Errorf("mscn: checkpoint epoch %d out of range [0, %d]", ck.Epoch, cfg.Epochs)
		}
		for li, l := range layers {
			if err := l.SetState(ck.Layers[li]); err != nil {
				return nil, fmt.Errorf("mscn: checkpoint layer %d: %w", li, err)
			}
		}
		startEpoch = ck.Epoch
		// Replay the shuffles the completed epochs consumed so the remaining
		// epochs see the exact RNG stream they would have seen.
		for e := 0; e < startEpoch; e++ {
			mlmath.Shuffle(idx, rng)
		}
	}

	mods := []*setModule{m.tableMod, m.joinMod, m.predMod}
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		mlmath.Shuffle(idx, rng)
		for start := 0; start < len(idx); start += cfg.BatchSize {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("%w: %w", ErrCanceled, err)
			}
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			for _, mod := range mods {
				mod.zeroGrad()
			}
			m.out1.ZeroGrad()
			m.out2.ZeroGrad()
			for _, i := range batch {
				m.backprop(samples[i], y[i])
			}
			for _, mod := range mods {
				mod.step(cfg.LearningRate, len(batch))
			}
			m.out1.Step(cfg.LearningRate, len(batch))
			m.out2.Step(cfg.LearningRate, len(batch))
		}

		if opts != nil && opts.OnCheckpoint != nil && opts.CheckpointEvery > 0 &&
			(epoch+1)%opts.CheckpointEvery == 0 && epoch+1 < cfg.Epochs {
			ck := checkpoint{Cfg: cfg, TD: td, JD: jd, PD: pd, Epoch: epoch + 1}
			for _, l := range m.denseLayers() {
				ck.Layers = append(ck.Layers, l.State())
			}
			payload, err := json.Marshal(ck)
			if err != nil {
				return nil, fmt.Errorf("mscn: encode checkpoint: %w", err)
			}
			if err := opts.OnCheckpoint(payload); err != nil {
				return nil, fmt.Errorf("mscn: checkpoint after epoch %d: %w", epoch+1, err)
			}
		}
	}
	m.initFastPath()
	return m, nil
}

func dims(s *Sets) (td, jd, pd int, err error) {
	if len(s.Tables) == 0 || len(s.Joins) == 0 || len(s.Preds) == 0 {
		return 0, 0, 0, fmt.Errorf("mscn: empty set (pad empty sets with one zero vector)")
	}
	return len(s.Tables[0]), len(s.Joins[0]), len(s.Preds[0]), nil
}

func checkDims(s *Sets, td, jd, pd int) error {
	check := func(name string, set [][]float64, want int) error {
		if len(set) == 0 {
			return fmt.Errorf("%s set is empty", name)
		}
		for _, v := range set {
			if len(v) != want {
				return fmt.Errorf("%s vector has dim %d, want %d", name, len(v), want)
			}
		}
		return nil
	}
	if err := check("table", s.Tables, td); err != nil {
		return err
	}
	if err := check("join", s.Joins, jd); err != nil {
		return err
	}
	return check("pred", s.Preds, pd)
}

func (m *Model) backprop(s *Sets, target float64) {
	tt := m.tableMod.forward(s.Tables)
	jt := m.joinMod.forward(s.Joins)
	pt := m.predMod.forward(s.Preds)

	concat := make([]float64, 0, 3*m.cfg.HiddenSet)
	concat = append(concat, tt.pooled...)
	concat = append(concat, jt.pooled...)
	concat = append(concat, pt.pooled...)

	pre1 := m.out1.Forward(concat)
	act1 := mlmath.ReLU(append([]float64(nil), pre1...))
	out := m.out2.Forward(act1)

	_, grad := mlmath.MSEGrad(out[0], target)
	dAct1 := m.out2.Backward(act1, []float64{grad})
	mlmath.ReLUBackward(pre1, dAct1)
	dConcat := m.out1.Backward(concat, dAct1)

	h := m.cfg.HiddenSet
	m.tableMod.backward(tt, dConcat[0:h])
	m.joinMod.backward(jt, dConcat[h:2*h])
	m.predMod.backward(pt, dConcat[2*h:3*h])
}

// Predict returns the network output for one featurized query. Trained
// models evaluate through pooled scratch buffers (see fast.go),
// bit-identical to PredictReference without the per-element allocations.
func (m *Model) Predict(s *Sets) float64 {
	p := m.pool
	if p == nil {
		return m.PredictReference(s)
	}
	if err := checkDims(s, m.tableDim, m.joinDim, m.predDim); err != nil {
		panic("mscn: " + err.Error())
	}
	sc := p.Get().(*inferScratch)
	out := m.predictWith(sc, s)
	p.Put(sc)
	return out
}

// PredictBatch applies Predict to every sample.
func (m *Model) PredictBatch(samples []*Sets) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = m.Predict(s)
	}
	return out
}

// NumParams returns the trainable parameter count — the basis of the
// Section 5.7 lower bound on MSCN's memory footprint.
func (m *Model) NumParams() int {
	return m.tableMod.numParams() + m.joinMod.numParams() + m.predMod.numParams() +
		m.out1.NumParams() + m.out2.NumParams()
}

// MemoryBytes estimates the resident model size (8 bytes per parameter).
func (m *Model) MemoryBytes() int { return m.NumParams() * 8 }

// SanityCheckGradients verifies the hand-written backprop against central
// finite differences on a tiny instance; exported for the test suite.
func SanityCheckGradients(seed int64) (maxRelErr float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	sample := &Sets{
		Tables: [][]float64{{1, 0}, {0, 1}},
		Joins:  [][]float64{{1}},
		Preds:  [][]float64{{0.2, 0.8, 0.5}, {0.9, 0.1, 0.3}},
	}
	target := 0.7
	cfg := Config{HiddenSet: 4, HiddenOut: 5, LearningRate: 1e-3, Epochs: 1, BatchSize: 1, Seed: seed}
	m := &Model{
		cfg:      cfg,
		tableMod: newSetModule(2, cfg.HiddenSet, rng),
		joinMod:  newSetModule(1, cfg.HiddenSet, rng),
		predMod:  newSetModule(3, cfg.HiddenSet, rng),
		out1:     mlmath.NewDense(3*cfg.HiddenSet, cfg.HiddenOut, rng),
		out2:     mlmath.NewDense(cfg.HiddenOut, 1, rng),
		tableDim: 2, joinDim: 1, predDim: 3,
	}
	loss := func() float64 {
		diff := m.Predict(sample) - target
		return 0.5 * diff * diff
	}
	// Analytic gradients.
	mods := []*setModule{m.tableMod, m.joinMod, m.predMod}
	for _, mod := range mods {
		mod.zeroGrad()
	}
	m.out1.ZeroGrad()
	m.out2.ZeroGrad()
	m.backprop(sample, target)

	layers := []*mlmath.Dense{
		m.tableMod.l1, m.tableMod.l2, m.joinMod.l1, m.joinMod.l2,
		m.predMod.l1, m.predMod.l2, m.out1, m.out2,
	}
	const h = 1e-6
	for _, l := range layers {
		for i := range l.W {
			orig := l.W[i]
			l.W[i] = orig + h
			up := loss()
			l.W[i] = orig - h
			down := loss()
			l.W[i] = orig
			numeric := (up - down) / (2 * h)
			analytic := l.GradW(i)
			denom := math.Max(math.Abs(numeric), math.Abs(analytic))
			if denom < 1e-8 {
				continue
			}
			if rel := math.Abs(numeric-analytic) / denom; rel > maxRelErr {
				maxRelErr = rel
			}
		}
	}
	return maxRelErr, nil
}
