package mscn

import (
	"sync"

	"qfe/internal/ml/mlmath"
)

// The inference fast path: Predict on a trained model borrows one scratch —
// per-element hidden buffers, the pooled concatenation, and the output MLP
// activations — from a sync.Pool instead of allocating four slices per set
// element plus the concat and output activations on every call. Evaluation
// order matches the reference path exactly (per-element accumulate, then one
// scale by 1/len, then the output MLP), so outputs are bit-identical.

// inferScratch is one borrowed inference workspace.
type inferScratch struct {
	h1, h2 []float64 // per-element set-module activations (HiddenSet wide)
	pooled []float64 // concatenated pooled set outputs (3*HiddenSet)
	o1     []float64 // output-MLP hidden activation (HiddenOut)
	o2     []float64 // final output (1)
}

// initFastPath sizes the scratch pool from the trained layer widths. It runs
// at the end of training; hand-assembled models (e.g. the gradient sanity
// check) keep the allocating reference path.
func (m *Model) initFastPath() {
	h, ho := m.cfg.HiddenSet, m.cfg.HiddenOut
	m.pool = &sync.Pool{New: func() any {
		return &inferScratch{
			h1:     make([]float64, h),
			h2:     make([]float64, h),
			pooled: make([]float64, 3*h),
			o1:     make([]float64, ho),
			o2:     make([]float64, 1),
		}
	}}
}

// forwardInto average-pools the set convolution into dst (HiddenSet wide,
// fully overwritten), using h1/h2 as per-element ping-pong hidden buffers.
// Accumulation and the trailing 1/len scale mirror forward exactly.
func (s *setModule) forwardInto(elems [][]float64, dst, h1, h2 []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for _, e := range elems {
		s.l1.ForwardInto(e, h1)
		mlmath.ReLU(h1)
		s.l2.ForwardInto(h1, h2)
		mlmath.ReLU(h2)
		for i, v := range h2 {
			dst[i] += v
		}
	}
	inv := 1.0 / float64(len(elems))
	for i := range dst {
		dst[i] *= inv
	}
}

// predictWith evaluates the network using the given scratch.
func (m *Model) predictWith(sc *inferScratch, s *Sets) float64 {
	h := m.cfg.HiddenSet
	m.tableMod.forwardInto(s.Tables, sc.pooled[0:h], sc.h1, sc.h2)
	m.joinMod.forwardInto(s.Joins, sc.pooled[h:2*h], sc.h1, sc.h2)
	m.predMod.forwardInto(s.Preds, sc.pooled[2*h:3*h], sc.h1, sc.h2)
	m.out1.ForwardInto(sc.pooled, sc.o1)
	mlmath.ReLU(sc.o1)
	m.out2.ForwardInto(sc.o1, sc.o2)
	return sc.o2[0]
}

// PredictReference is the pre-pooling Predict implementation, kept as the
// ground truth for the differential tests and the inference benchmark.
func (m *Model) PredictReference(s *Sets) float64 {
	if err := checkDims(s, m.tableDim, m.joinDim, m.predDim); err != nil {
		panic("mscn: " + err.Error())
	}
	tt := m.tableMod.forward(s.Tables)
	jt := m.joinMod.forward(s.Joins)
	pt := m.predMod.forward(s.Preds)
	concat := make([]float64, 0, 3*m.cfg.HiddenSet)
	concat = append(concat, tt.pooled...)
	concat = append(concat, jt.pooled...)
	concat = append(concat, pt.pooled...)
	act1 := mlmath.ReLU(m.out1.Forward(concat))
	return m.out2.Forward(act1)[0]
}

// PredictInto writes the network output for every sample into dst (at least
// len(samples) long), borrowing one scratch for the whole batch.
func (m *Model) PredictInto(dst []float64, samples []*Sets) {
	_ = dst[:len(samples)]
	p := m.pool
	if p == nil {
		for i, s := range samples {
			dst[i] = m.PredictReference(s)
		}
		return
	}
	sc := p.Get().(*inferScratch)
	for i, s := range samples {
		if err := checkDims(s, m.tableDim, m.joinDim, m.predDim); err != nil {
			p.Put(sc)
			panic("mscn: " + err.Error())
		}
		dst[i] = m.predictWith(sc, s)
	}
	p.Put(sc)
}
