package mscn

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// TestCheckpointResumeBitIdentical: interrupt mid-training, resume, and the
// finished model must predict bit-identically to an uninterrupted run (all
// eight dense layers' weights and Adam moments ride the checkpoint; the
// per-epoch shuffles are replayed).
func TestCheckpointResumeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var samples []*Sets
	var y []float64
	for i := 0; i < 400; i++ {
		s, target := synthSample(rng)
		samples = append(samples, s)
		y = append(y, target)
	}
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.Epochs = 10

	baseline, err := Train(samples, y, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last []byte
	seen := 0
	_, err = TrainCtx(ctx, samples, y, cfg, &TrainOpts{
		CheckpointEvery: 3,
		OnCheckpoint: func(payload []byte) error {
			last = append([]byte(nil), payload...)
			if seen++; seen == 2 { // canceled after epoch 6
				cancel()
			}
			return nil
		},
	})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted TrainCtx error = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if last == nil {
		t.Fatal("no checkpoint was emitted before cancellation")
	}

	resumed, err := TrainCtx(context.Background(), samples, y, cfg, &TrainOpts{Resume: last})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		s, _ := synthSample(rng)
		if baseline.Predict(s) != resumed.Predict(s) {
			t.Fatalf("prediction %d diverged after resume", i)
		}
	}
}

func TestCheckpointResumeRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var samples []*Sets
	var y []float64
	for i := 0; i < 200; i++ {
		s, target := synthSample(rng)
		samples = append(samples, s)
		y = append(y, target)
	}
	cfg := DefaultConfig()
	cfg.Seed = 6
	cfg.Epochs = 6

	var last []byte
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := TrainCtx(ctx, samples, y, cfg, &TrainOpts{
		CheckpointEvery: 2,
		OnCheckpoint: func(payload []byte) error {
			last = append([]byte(nil), payload...)
			cancel()
			return nil
		},
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("TrainCtx error = %v, want ErrCanceled", err)
	}

	other := cfg
	other.LearningRate = cfg.LearningRate * 2
	if _, err := TrainCtx(context.Background(), samples, y, other, &TrainOpts{Resume: last}); err == nil {
		t.Error("resume with a different Config succeeded, want error")
	}
	if _, err := TrainCtx(context.Background(), samples, y, cfg, &TrainOpts{Resume: []byte("nope")}); err == nil {
		t.Error("resume from garbage succeeded, want error")
	}
}
