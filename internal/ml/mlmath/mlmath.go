// Package mlmath provides the small dense-linear-algebra and optimization
// kernel shared by the neural models of this reproduction (the feed-forward
// network of internal/ml/nn and the multi-set convolutional network of
// internal/ml/mscn): dense layers with manual backpropagation, ReLU, Adam,
// and deterministic weight initialization.
//
// Everything is float64 on flat slices — no external numeric libraries, per
// the reproduction's stdlib-only constraint.
package mlmath

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a fully connected layer y = W·x + b with W stored row-major as
// [out][in]. The layer owns its Adam state.
type Dense struct {
	In, Out int
	W       []float64 // len Out*In, row-major
	B       []float64 // len Out

	gradW []float64
	gradB []float64
	adamW *Adam
	adamB *Adam
}

// NewDenseFromParams restores a dense layer from serialized weights; used
// by model persistence. The optimizer state starts fresh.
func NewDenseFromParams(in, out int, w, b []float64) (*Dense, error) {
	if len(w) != in*out || len(b) != out {
		return nil, fmt.Errorf("mlmath: dense %dx%d needs %d weights and %d biases, got %d and %d",
			in, out, in*out, out, len(w), len(b))
	}
	d := &Dense{
		In: in, Out: out,
		W:     append([]float64(nil), w...),
		B:     append([]float64(nil), b...),
		gradW: make([]float64, in*out),
		gradB: make([]float64, out),
	}
	d.adamW = NewAdam(len(d.W))
	d.adamB = NewAdam(len(d.B))
	return d, nil
}

// NewDense returns a dense layer with He-uniform initialization (suited to
// the ReLU activations used throughout) drawn from rng.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:     make([]float64, out*in),
		B:     make([]float64, out),
		gradW: make([]float64, out*in),
		gradB: make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in))
	for i := range d.W {
		d.W[i] = (rng.Float64()*2 - 1) * limit
	}
	d.adamW = NewAdam(len(d.W))
	d.adamB = NewAdam(len(d.B))
	return d
}

// Forward computes W·x + b into a fresh slice.
func (d *Dense) Forward(x []float64) []float64 {
	y := make([]float64, d.Out)
	d.ForwardInto(x, y)
	return y
}

// ForwardInto computes W·x + b into dst (length Out). dst must not alias x.
// The per-output accumulation order is identical to Forward's, so the pooled
// inference path is bit-identical to the allocating one.
func (d *Dense) ForwardInto(x, dst []float64) {
	if len(x) != d.In {
		panic(fmt.Sprintf("mlmath: dense forward: input dim %d, want %d", len(x), d.In))
	}
	if len(dst) != d.Out {
		panic(fmt.Sprintf("mlmath: dense forward: output dim %d, want %d", len(dst), d.Out))
	}
	for o := 0; o < d.Out; o++ {
		row := d.W[o*d.In : (o+1)*d.In]
		sum := d.B[o]
		for i, w := range row {
			sum += w * x[i]
		}
		dst[o] = sum
	}
}

// Backward accumulates gradients for the weights given the layer input x and
// the gradient dy of the loss w.r.t. the layer output, and returns the
// gradient w.r.t. x. Call ZeroGrad before each mini-batch and Step after.
func (d *Dense) Backward(x, dy []float64) []float64 {
	return d.BackwardInto(x, dy, d.gradW, d.gradB)
}

// BackwardInto is Backward accumulating into caller-provided buffers
// instead of the layer's own. Parallel trainers give each worker shard its
// own buffers so sample gradients accumulate without sharing, then reduce
// the shards in a fixed order (see AddGrad).
func (d *Dense) BackwardInto(x, dy, gradW, gradB []float64) []float64 {
	dx := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := dy[o]
		if g == 0 {
			continue
		}
		row := d.W[o*d.In : (o+1)*d.In]
		grow := gradW[o*d.In : (o+1)*d.In]
		for i := range row {
			grow[i] += g * x[i]
			dx[i] += g * row[i]
		}
		gradB[o] += g
	}
	return dx
}

// AddGrad adds externally accumulated gradient buffers into the layer's
// own. Reducing worker shards with AddGrad in a fixed shard order makes the
// summation tree — and therefore the trained weights — independent of how
// many workers produced the shards.
func (d *Dense) AddGrad(gradW, gradB []float64) {
	for i, g := range gradW {
		d.gradW[i] += g
	}
	for i, g := range gradB {
		d.gradB[i] += g
	}
}

// ZeroGrad clears the accumulated gradients.
func (d *Dense) ZeroGrad() {
	for i := range d.gradW {
		d.gradW[i] = 0
	}
	for i := range d.gradB {
		d.gradB[i] = 0
	}
}

// Step applies one Adam update with the given learning rate, scaling the
// accumulated gradients by 1/batchSize.
func (d *Dense) Step(lr float64, batchSize int) {
	inv := 1.0 / float64(batchSize)
	for i := range d.gradW {
		d.gradW[i] *= inv
	}
	for i := range d.gradB {
		d.gradB[i] *= inv
	}
	d.adamW.Step(d.W, d.gradW, lr)
	d.adamB.Step(d.B, d.gradB, lr)
}

// NumParams returns the number of trainable parameters.
func (d *Dense) NumParams() int { return len(d.W) + len(d.B) }

// GradW returns the accumulated gradient of weight i; used by the numeric
// gradient checks in the test suites.
func (d *Dense) GradW(i int) float64 { return d.gradW[i] }

// GradB returns the accumulated gradient of bias i.
func (d *Dense) GradB(i int) float64 { return d.gradB[i] }

// ReLU applies max(0, x) in place and returns its argument.
func ReLU(x []float64) []float64 {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
	return x
}

// ReLUBackward zeroes the gradient entries where the pre-activation was
// non-positive, in place, and returns dy.
func ReLUBackward(pre, dy []float64) []float64 {
	for i, v := range pre {
		if v <= 0 {
			dy[i] = 0
		}
	}
	return dy
}

// Adam is the Adam optimizer state for one parameter slice
// (Kingma & Ba, 2015) with the standard defaults β1=0.9, β2=0.999, ε=1e-8.
type Adam struct {
	m, v []float64
	t    int
}

// NewAdam returns optimizer state for n parameters.
func NewAdam(n int) *Adam {
	return &Adam{m: make([]float64, n), v: make([]float64, n)}
}

// Step applies one Adam update to params given grads.
func (a *Adam) Step(params, grads []float64, lr float64) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	a.t++
	c1 := 1 - math.Pow(beta1, float64(a.t))
	c2 := 1 - math.Pow(beta2, float64(a.t))
	for i, g := range grads {
		a.m[i] = beta1*a.m[i] + (1-beta1)*g
		a.v[i] = beta2*a.v[i] + (1-beta2)*g*g
		mhat := a.m[i] / c1
		vhat := a.v[i] / c2
		params[i] -= lr * mhat / (math.Sqrt(vhat) + eps)
	}
}

// MSEGrad returns the squared-error loss 0.5*(pred-target)^2 and its
// gradient w.r.t. pred.
func MSEGrad(pred, target float64) (loss, grad float64) {
	diff := pred - target
	return 0.5 * diff * diff, diff
}

// Shuffle permutes idx in place using rng; the canonical mini-batch
// reshuffle between epochs.
func Shuffle(idx []int, rng *rand.Rand) {
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
