package mlmath

import "fmt"

// DenseState is the complete serializable training state of a Dense layer:
// the weights plus both Adam accumulators. Persisting it mid-training (the
// checkpoint path of internal/trainer) lets a resumed run continue
// bit-identically to one that never stopped — restoring only the weights
// would reset the optimizer's moment estimates and change every subsequent
// update.
type DenseState struct {
	In  int       `json:"in"`
	Out int       `json:"out"`
	W   []float64 `json:"w"`
	B   []float64 `json:"b"`

	WM []float64 `json:"wm"` // Adam first moment for W
	WV []float64 `json:"wv"` // Adam second moment for W
	WT int       `json:"wt"` // Adam step count for W
	BM []float64 `json:"bm"`
	BV []float64 `json:"bv"`
	BT int       `json:"bt"`
}

// State snapshots the layer's full training state. The returned slices are
// copies; mutating them does not affect the layer.
func (d *Dense) State() DenseState {
	cp := func(xs []float64) []float64 { return append([]float64(nil), xs...) }
	return DenseState{
		In: d.In, Out: d.Out,
		W:  cp(d.W),
		B:  cp(d.B),
		WM: cp(d.adamW.m), WV: cp(d.adamW.v), WT: d.adamW.t,
		BM: cp(d.adamB.m), BV: cp(d.adamB.v), BT: d.adamB.t,
	}
}

// SetState restores a state captured by State into a layer of the same
// shape. Gradient buffers are zeroed: a checkpoint is only ever taken at a
// step boundary, where accumulated gradients are dead state.
func (d *Dense) SetState(st DenseState) error {
	if st.In != d.In || st.Out != d.Out {
		return fmt.Errorf("mlmath: state shape %dx%d does not match layer %dx%d",
			st.In, st.Out, d.In, d.Out)
	}
	n, o := d.In*d.Out, d.Out
	for name, got := range map[string]int{
		"W": len(st.W), "WM": len(st.WM), "WV": len(st.WV),
	} {
		if got != n {
			return fmt.Errorf("mlmath: state %s has %d values, want %d", name, got, n)
		}
	}
	for name, got := range map[string]int{
		"B": len(st.B), "BM": len(st.BM), "BV": len(st.BV),
	} {
		if got != o {
			return fmt.Errorf("mlmath: state %s has %d values, want %d", name, got, o)
		}
	}
	copy(d.W, st.W)
	copy(d.B, st.B)
	copy(d.adamW.m, st.WM)
	copy(d.adamW.v, st.WV)
	d.adamW.t = st.WT
	copy(d.adamB.m, st.BM)
	copy(d.adamB.v, st.BV)
	d.adamB.t = st.BT
	d.ZeroGrad()
	return nil
}
