package mlmath

import (
	"math"
	"math/rand"
	"testing"
)

func TestDenseForwardKnown(t *testing.T) {
	d := &Dense{In: 2, Out: 2,
		W:     []float64{1, 2, 3, 4}, // rows: [1 2], [3 4]
		B:     []float64{10, 20},
		gradW: make([]float64, 4), gradB: make([]float64, 2),
	}
	y := d.Forward([]float64{1, 1})
	if y[0] != 13 || y[1] != 27 {
		t.Errorf("Forward = %v, want [13 27]", y)
	}
}

func TestDenseForwardDimPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	NewDense(3, 2, rand.New(rand.NewSource(1))).Forward([]float64{1})
}

// TestDenseGradientNumeric checks Backward against central finite
// differences for both weights and the input gradient.
func TestDenseGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense(4, 3, rng)
	x := []float64{0.3, -0.7, 1.2, 0.1}
	target := []float64{0.5, -0.2, 0.9}

	loss := func() float64 {
		y := d.Forward(x)
		var s float64
		for i := range y {
			diff := y[i] - target[i]
			s += 0.5 * diff * diff
		}
		return s
	}

	// Analytic.
	d.ZeroGrad()
	y := d.Forward(x)
	dy := make([]float64, len(y))
	for i := range y {
		dy[i] = y[i] - target[i]
	}
	dx := d.Backward(x, dy)

	const h = 1e-6
	for i := range d.W {
		orig := d.W[i]
		d.W[i] = orig + h
		up := loss()
		d.W[i] = orig - h
		down := loss()
		d.W[i] = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-d.GradW(i)) > 1e-5 {
			t.Fatalf("weight %d: numeric %v vs analytic %v", i, numeric, d.GradW(i))
		}
	}
	for i := range d.B {
		orig := d.B[i]
		d.B[i] = orig + h
		up := loss()
		d.B[i] = orig - h
		down := loss()
		d.B[i] = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-d.GradB(i)) > 1e-5 {
			t.Fatalf("bias %d: numeric %v vs analytic %v", i, numeric, d.GradB(i))
		}
	}
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		up := loss()
		x[i] = orig - h
		down := loss()
		x[i] = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-dx[i]) > 1e-5 {
			t.Fatalf("input %d: numeric %v vs analytic %v", i, numeric, dx[i])
		}
	}
}

func TestReLU(t *testing.T) {
	x := []float64{-1, 0, 2}
	ReLU(x)
	if x[0] != 0 || x[1] != 0 || x[2] != 2 {
		t.Errorf("ReLU = %v", x)
	}
	pre := []float64{-1, 0.5, 0}
	dy := []float64{1, 1, 1}
	ReLUBackward(pre, dy)
	if dy[0] != 0 || dy[1] != 1 || dy[2] != 0 {
		t.Errorf("ReLUBackward = %v", dy)
	}
}

// TestAdamConvergesOnQuadratic: Adam must drive a quadratic bowl to its
// minimum.
func TestAdamConvergesOnQuadratic(t *testing.T) {
	params := []float64{5, -3}
	target := []float64{1, 2}
	a := NewAdam(2)
	grads := make([]float64, 2)
	for step := 0; step < 3000; step++ {
		for i := range params {
			grads[i] = params[i] - target[i]
		}
		a.Step(params, grads, 0.01)
	}
	for i := range params {
		if math.Abs(params[i]-target[i]) > 1e-2 {
			t.Errorf("param %d = %v, want %v", i, params[i], target[i])
		}
	}
}

// TestDenseLearnsLinearMap: a single dense layer trained with Adam must
// recover a linear function.
func TestDenseLearnsLinearMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDense(3, 1, rng)
	trueW := []float64{2, -1, 0.5}
	const bias = 0.3
	for step := 0; step < 4000; step++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		target := bias
		for i := range x {
			target += trueW[i] * x[i]
		}
		d.ZeroGrad()
		y := d.Forward(x)
		d.Backward(x, []float64{y[0] - target})
		d.Step(0.01, 1)
	}
	// Check on fresh points.
	var worst float64
	for trial := 0; trial < 50; trial++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		target := bias
		for i := range x {
			target += trueW[i] * x[i]
		}
		if e := math.Abs(d.Forward(x)[0] - target); e > worst {
			worst = e
		}
	}
	if worst > 0.05 {
		t.Errorf("worst-case error %v after training, want < 0.05", worst)
	}
}

func TestMSEGrad(t *testing.T) {
	loss, grad := MSEGrad(3, 1)
	if loss != 2 || grad != 2 {
		t.Errorf("MSEGrad = (%v, %v), want (2, 2)", loss, grad)
	}
}

func TestShuffleDeterministic(t *testing.T) {
	a := []int{0, 1, 2, 3, 4, 5}
	b := []int{0, 1, 2, 3, 4, 5}
	Shuffle(a, rand.New(rand.NewSource(9)))
	Shuffle(b, rand.New(rand.NewSource(9)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Shuffle not deterministic under same seed")
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
}

func TestStepAveragesBatchGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d1 := NewDense(2, 1, rng)
	// Clone d1's weights into d2 with fresh optimizer state.
	d2 := NewDense(2, 1, rand.New(rand.NewSource(3)))
	copy(d2.W, d1.W)
	copy(d2.B, d1.B)

	// d1: two identical samples in one batch. d2: the same sample once.
	x := []float64{1, 2}
	backOnce := func(d *Dense) {
		y := d.Forward(x)
		d.Backward(x, []float64{y[0] - 1})
	}
	d1.ZeroGrad()
	backOnce(d1)
	backOnce(d1)
	d1.Step(0.1, 2)

	d2.ZeroGrad()
	backOnce(d2)
	d2.Step(0.1, 1)

	for i := range d1.W {
		if math.Abs(d1.W[i]-d2.W[i]) > 1e-12 {
			t.Fatalf("batch averaging differs: %v vs %v", d1.W[i], d2.W[i])
		}
	}
}
