package nn

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func makeData(rng *rand.Rand, n int, f func([]float64) float64) (X [][]float64, y []float64) {
	X = make([][]float64, n)
	y = make([]float64, n)
	for i := 0; i < n; i++ {
		row := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		X[i] = row
		y[i] = f(row)
	}
	return X, y
}

func mse(m *Model, X [][]float64, y []float64) float64 {
	var s float64
	for i := range X {
		diff := m.Predict(X[i]) - y[i]
		s += diff * diff
	}
	return s / float64(len(X))
}

func TestLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(x []float64) float64 { return 2*x[0] - x[1] + 0.5*x[2] + 0.3 }
	X, y := makeData(rng, 2000, f)
	cfg := DefaultConfig()
	cfg.Seed = 1
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	Xt, yt := makeData(rng, 400, f)
	if got := mse(m, Xt, yt); got > 0.01 {
		t.Errorf("linear test MSE = %v, want < 0.01", got)
	}
}

func TestLearnsNonlinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(x []float64) float64 {
		v := x[0] * x[1]
		if x[2] > 0.5 {
			v += 1
		}
		return v
	}
	X, y := makeData(rng, 4000, f)
	cfg := DefaultConfig()
	cfg.Seed = 2
	cfg.Epochs = 60
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	Xt, yt := makeData(rng, 400, f)
	if got := mse(m, Xt, yt); got > 0.05 {
		t.Errorf("nonlinear test MSE = %v, want < 0.05", got)
	}
}

func TestDeterminismUnderSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := makeData(rng, 300, func(x []float64) float64 { return x[0] })
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Epochs = 5
	m1, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if m1.Predict(X[i]) != m2.Predict(X[i]) {
			t.Fatal("same seed must give identical models")
		}
	}
}

func TestEarlyStoppingKeepsBestWeights(t *testing.T) {
	// Train far too long on tiny data: early stopping must engage and the
	// returned model must be finite and sane.
	rng := rand.New(rand.NewSource(4))
	X, y := makeData(rng, 120, func(x []float64) float64 { return x[0] + x[1] })
	cfg := DefaultConfig()
	cfg.Seed = 4
	cfg.Epochs = 500
	cfg.Patience = 3
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if p := m.Predict(X[i]); math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("prediction %v not finite", p)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	X := [][]float64{{1}}
	y := []float64{1}
	bad := []Config{
		{Hidden: nil, LearningRate: 0.1, Epochs: 1, BatchSize: 1},
		{Hidden: []int{4}, LearningRate: 0, Epochs: 1, BatchSize: 1},
		{Hidden: []int{4}, LearningRate: 0.1, Epochs: 0, BatchSize: 1},
		{Hidden: []int{4}, LearningRate: 0.1, Epochs: 1, BatchSize: 0},
		{Hidden: []int{0}, LearningRate: 0.1, Epochs: 1, BatchSize: 1},
		{Hidden: []int{4}, LearningRate: 0.1, Epochs: 1, BatchSize: 1, ValFraction: 1},
	}
	for i, cfg := range bad {
		if _, err := Train(X, y, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	good := Config{Hidden: []int{4}, LearningRate: 0.1, Epochs: 1, BatchSize: 1}
	if _, err := Train(nil, nil, good); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train([][]float64{{1}, {2}}, []float64{1}, good); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Train([][]float64{{1, 2}, {3}}, []float64{1, 2}, good); err == nil {
		t.Error("ragged features accepted")
	}
	if _, err := Train([][]float64{{}}, []float64{1}, good); err == nil {
		t.Error("zero-dim features accepted")
	}
}

func TestPredictDimPanic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 1
	cfg.Patience = 0
	cfg.ValFraction = 0
	m, err := Train([][]float64{{1, 2}, {2, 1}}, []float64{1, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input dim")
		}
	}()
	m.Predict([]float64{1})
}

func TestNumParamsAndMemory(t *testing.T) {
	cfg := Config{Hidden: []int{8, 4}, LearningRate: 0.01, Epochs: 1, BatchSize: 4}
	m, err := Train([][]float64{{1, 2, 3}, {4, 5, 6}}, []float64{1, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// (3*8 + 8) + (8*4 + 4) + (4*1 + 1) = 32 + 36 + 5 = 73.
	if got := m.NumParams(); got != 73 {
		t.Errorf("NumParams = %d, want 73", got)
	}
	if m.MemoryBytes() != 73*8 {
		t.Errorf("MemoryBytes = %d, want %d", m.MemoryBytes(), 73*8)
	}
}

func TestPredictBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := makeData(rng, 100, func(x []float64) float64 { return x[0] })
	cfg := DefaultConfig()
	cfg.Epochs = 3
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := m.PredictBatch(X[:5])
	for i := range batch {
		if batch[i] != m.Predict(X[i]) {
			t.Fatal("PredictBatch differs from Predict")
		}
	}
}

func TestPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X, y := makeData(rng, 200, func(x []float64) float64 { return x[0] + 2*x[1] })
	cfg := DefaultConfig()
	cfg.Epochs = 5
	cfg.Seed = 9
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if got, want := back.Predict(X[i]), m.Predict(X[i]); got != want {
			t.Fatalf("restored model predicts %v, original %v", got, want)
		}
	}
	if back.NumParams() != m.NumParams() {
		t.Errorf("param count changed: %d vs %d", back.NumParams(), m.NumParams())
	}
}

func TestPersistRejectsCorrupt(t *testing.T) {
	cases := []string{
		`not json`,
		`{"cfg":{},"dim":3,"layers":[]}`, // no layers
		`{"cfg":{},"dim":3,"layers":[{"in":2,"out":1,"w":[1,2],"b":[0]}]}`,                                            // dim mismatch
		`{"cfg":{},"dim":2,"layers":[{"in":2,"out":2,"w":[1,2,3,4],"b":[0,0]}]}`,                                      // final width != 1
		`{"cfg":{},"dim":2,"layers":[{"in":2,"out":1,"w":[1],"b":[0]}]}`,                                              // wrong weight count
		`{"cfg":{},"dim":2,"layers":[{"in":2,"out":2,"w":[1,2,3,4],"b":[0,0]},{"in":3,"out":1,"w":[1,2,3],"b":[0]}]}`, // broken chain
	}
	for i, src := range cases {
		var m Model
		if err := json.Unmarshal([]byte(src), &m); err == nil {
			t.Errorf("case %d: corrupt model accepted", i)
		}
	}
}
