package nn

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
)

func synthXY(rng *rand.Rand, n, d int) (X [][]float64, y []float64) {
	X = make([][]float64, n)
	y = make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		y[i] = 2*row[0] - row[1] + 0.5*row[0]*row[1]
	}
	return X, y
}

// TestCheckpointResumeBitIdentical: interrupt mid-training, resume from the
// last checkpoint, and the finished network — weights, Adam moments, and
// therefore every later update — must match an uninterrupted run exactly.
// Early stopping is exercised too: the checkpoint carries the best-snapshot
// state so a resumed run restores the same validation bookkeeping.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	X, y := synthXY(rng, 400, 5)
	cfg := Config{
		Hidden:       []int{16, 8},
		LearningRate: 1e-3,
		Epochs:       12,
		BatchSize:    32,
		ValFraction:  0.2,
		Patience:     12,
		Seed:         4,
	}

	baseline, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last []byte
	seen := 0
	_, err = TrainCtx(ctx, X, y, cfg, &TrainOpts{
		CheckpointEvery: 3,
		OnCheckpoint: func(payload []byte) error {
			last = append([]byte(nil), payload...)
			if seen++; seen == 2 { // canceled after epoch 6
				cancel()
			}
			return nil
		},
	})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted TrainCtx error = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if last == nil {
		t.Fatal("no checkpoint was emitted before cancellation")
	}

	resumed, err := TrainCtx(context.Background(), X, y, cfg, &TrainOpts{Resume: last})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(baseline)
	got, _ := json.Marshal(resumed)
	if string(want) != string(got) {
		t.Fatal("resumed network differs from the uninterrupted one")
	}
	Xt, _ := synthXY(rng, 50, 5)
	for i := range Xt {
		if baseline.Predict(Xt[i]) != resumed.Predict(Xt[i]) {
			t.Fatalf("prediction %d diverged after resume", i)
		}
	}
}

func TestCheckpointResumeRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	X, y := synthXY(rng, 200, 4)
	cfg := Config{Hidden: []int{8}, LearningRate: 1e-3, Epochs: 8, BatchSize: 32, Seed: 2}

	var last []byte
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := TrainCtx(ctx, X, y, cfg, &TrainOpts{
		CheckpointEvery: 2,
		OnCheckpoint: func(payload []byte) error {
			last = append([]byte(nil), payload...)
			cancel()
			return nil
		},
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("TrainCtx error = %v, want ErrCanceled", err)
	}

	other := cfg
	other.Hidden = []int{8, 8}
	if _, err := TrainCtx(context.Background(), X, y, other, &TrainOpts{Resume: last}); err == nil {
		t.Error("resume with a different Config succeeded, want error")
	}
	if _, err := TrainCtx(context.Background(), X, y, cfg, &TrainOpts{Resume: []byte("{")}); err == nil {
		t.Error("resume from garbage succeeded, want error")
	}
}
