package nn

import (
	"math/rand"
	"testing"
)

// weightsOf flattens every layer's parameters for exact comparison.
func weightsOf(m *Model) []float64 {
	var out []float64
	for _, l := range m.layers {
		out = append(out, l.W...)
		out = append(out, l.B...)
	}
	return out
}

// TestTrainDeterministicAcrossWorkers: the tentpole guarantee for nn —
// trained weights are bit-identical for every Workers value, because
// per-sample gradients accumulate within fixed 8-sample shards and the
// shards reduce in index order regardless of scheduling.
func TestTrainDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(x []float64) float64 { return x[0]*x[1] - 0.5*x[2] }
	X, y := makeData(rng, 1500, f)

	cfg := DefaultConfig()
	cfg.Seed = 21
	cfg.Epochs = 8
	cfg.Workers = 1
	seq, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := weightsOf(seq)

	for _, workers := range []int{0, 2, 4, 8} {
		cfg.Workers = workers
		par, err := Train(X, y, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := weightsOf(par)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d params, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: weight %d = %v, sequential %v — gradient reduction depends on scheduling",
					workers, i, got[i], want[i])
			}
		}
	}
}

// TestPredictBatchMatchesPredict: parallel batch inference returns exactly
// the per-row Predict values.
func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func(x []float64) float64 { return 2*x[0] + x[2] }
	X, y := makeData(rng, 600, f)
	cfg := DefaultConfig()
	cfg.Seed = 22
	cfg.Epochs = 5
	cfg.Workers = 4
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := m.PredictBatch(X)
	for i := range X {
		if batch[i] != m.Predict(X[i]) {
			t.Fatalf("row %d: PredictBatch %v, Predict %v", i, batch[i], m.Predict(X[i]))
		}
	}
}
