package nn

import (
	"encoding/json"
	"fmt"

	"qfe/internal/ml/mlmath"
)

// savedModel is the serialized form of a trained network: configuration,
// input dimension, and per-layer weights.
type savedModel struct {
	Cfg    Config       `json:"cfg"`
	Dim    int          `json:"dim"`
	Layers []savedLayer `json:"layers"`
}

type savedLayer struct {
	In  int       `json:"in"`
	Out int       `json:"out"`
	W   []float64 `json:"w"`
	B   []float64 `json:"b"`
}

// MarshalJSON serializes the trained network (weights included) so local
// estimators can be shipped without retraining.
func (m *Model) MarshalJSON() ([]byte, error) {
	s := savedModel{Cfg: m.cfg, Dim: m.dim}
	for _, l := range m.layers {
		s.Layers = append(s.Layers, savedLayer{
			In: l.In, Out: l.Out,
			W: append([]float64(nil), l.W...),
			B: append([]float64(nil), l.B...),
		})
	}
	return json.Marshal(s)
}

// UnmarshalJSON restores a serialized network. The restored model predicts
// identically to the original; optimizer state is not preserved (resume
// training from scratch if needed).
func (m *Model) UnmarshalJSON(data []byte) error {
	var s savedModel
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if len(s.Layers) == 0 {
		return fmt.Errorf("nn: serialized model has no layers")
	}
	if s.Layers[0].In != s.Dim {
		return fmt.Errorf("nn: first layer input %d != model dim %d", s.Layers[0].In, s.Dim)
	}
	layers := make([]*mlmath.Dense, len(s.Layers))
	prev := s.Dim
	for i, sl := range s.Layers {
		if sl.In != prev {
			return fmt.Errorf("nn: layer %d input %d does not chain from %d", i, sl.In, prev)
		}
		d, err := mlmath.NewDenseFromParams(sl.In, sl.Out, sl.W, sl.B)
		if err != nil {
			return fmt.Errorf("nn: layer %d: %w", i, err)
		}
		layers[i] = d
		prev = sl.Out
	}
	if prev != 1 {
		return fmt.Errorf("nn: final layer width %d, want 1", prev)
	}
	m.cfg = s.Cfg
	m.dim = s.Dim
	m.layers = layers
	m.initFastPath()
	return nil
}
