package nn

import (
	"encoding/json"
	"math/rand"
	"testing"

	"qfe/internal/testutil"
)

func trainSmallNet(t *testing.T, seed int64, hidden []int) (*Model, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range X {
		row := make([]float64, 6)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		y[i] = row[0]*2 - row[3] + 0.1*rng.NormFloat64()
	}
	cfg := Config{Hidden: hidden, LearningRate: 1e-3, Epochs: 5, BatchSize: 32, ValFraction: 0.1, Patience: 3, Seed: seed}
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, X
}

// TestPooledPredictBitIdentical: the pooled ping-pong path must reproduce
// the allocating reference bit for bit, across layer shapes (including a
// network whose widest layer is an inner one).
func TestPooledPredictBitIdentical(t *testing.T) {
	for _, hidden := range [][]int{{8}, {16, 8}, {4, 32, 4}} {
		m, X := trainSmallNet(t, 21, hidden)
		if m.pool == nil {
			t.Fatal("trained model has no scratch pool")
		}
		rng := rand.New(rand.NewSource(22))
		for trial := 0; trial < 1000; trial++ {
			x := make([]float64, 6)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			if got, want := m.Predict(x), m.PredictReference(x); got != want {
				t.Fatalf("hidden %v trial %d: pooled %v != reference %v", hidden, trial, got, want)
			}
		}
		dst := make([]float64, len(X))
		m.PredictInto(dst, X)
		for i, x := range X {
			if dst[i] != m.PredictReference(x) {
				t.Fatalf("hidden %v row %d: PredictInto mismatch", hidden, i)
			}
		}
	}
}

// TestPooledPredictSurvivesRoundTrip: decoding a persisted network must
// rebuild the fast path.
func TestPooledPredictSurvivesRoundTrip(t *testing.T) {
	m, X := trainSmallNet(t, 31, []int{16, 8})
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.pool == nil {
		t.Fatal("decoded model has no scratch pool")
	}
	for _, x := range X[:50] {
		if back.Predict(x) != m.Predict(x) {
			t.Fatal("round-tripped prediction differs")
		}
	}
}

// TestPredictZeroAllocs pins the pooled path's steady-state allocations.
func TestPredictZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation defeats sync.Pool; allocation counts are only meaningful in normal builds")
	}
	m, X := trainSmallNet(t, 41, []int{16, 8})
	x := X[0]
	if allocs := testing.AllocsPerRun(200, func() {
		m.Predict(x)
	}); allocs != 0 {
		t.Errorf("Predict allocs/op = %v, want 0", allocs)
	}
	dst := make([]float64, 64)
	batch := X[:64]
	if allocs := testing.AllocsPerRun(100, func() {
		m.PredictInto(dst, batch)
	}); allocs != 0 {
		t.Errorf("PredictInto allocs/op = %v, want 0", allocs)
	}
}
