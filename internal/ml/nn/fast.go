package nn

import (
	"sync"

	"qfe/internal/ml/mlmath"
)

// The inference fast path: instead of allocating one activation slice per
// layer per call, Predict borrows a per-goroutine scratch — two ping-pong
// buffers sized to the widest layer — from a sync.Pool and forwards each
// layer into the buffer the previous layer didn't write. Layer evaluation
// order, per-output accumulation order, and the in-place ReLU are identical
// to the allocating reference path, so the outputs are bit-identical.

// predictScratch is one borrowed activation workspace.
type predictScratch struct {
	a, b []float64
}

// initFastPath sizes the scratch pool to the network's widest layer. It runs
// once the layer stack exists — at the top of training (so validation-loop
// predictions use it too) and after decoding a persisted model. Models
// assembled without it (zero value) fall back to PredictReference.
func (m *Model) initFastPath() {
	maxW := 0
	for _, l := range m.layers {
		if l.Out > maxW {
			maxW = l.Out
		}
	}
	if maxW == 0 {
		return
	}
	m.pool = &sync.Pool{New: func() any {
		return &predictScratch{a: make([]float64, maxW), b: make([]float64, maxW)}
	}}
}

// predictWith evaluates the network using the given scratch. Ping-pong
// indexing keeps every layer's destination disjoint from its input.
func (m *Model) predictWith(sc *predictScratch, x []float64) float64 {
	bufs := [2][]float64{sc.a, sc.b}
	act := x
	for li, l := range m.layers {
		dst := bufs[li&1][:l.Out]
		l.ForwardInto(act, dst)
		if li < len(m.layers)-1 {
			mlmath.ReLU(dst)
		}
		act = dst
	}
	return act[0]
}

// PredictReference is the pre-pooling Predict implementation — one fresh
// activation slice per layer — kept as the ground truth for the differential
// tests and the before/after inference benchmark.
func (m *Model) PredictReference(x []float64) float64 {
	if len(x) != m.dim {
		panic(predictDimPanic(len(x), m.dim))
	}
	act := x
	for li, l := range m.layers {
		act = l.Forward(act)
		if li < len(m.layers)-1 {
			mlmath.ReLU(act)
		}
	}
	return act[0]
}

// PredictInto writes the network output for every row of X into dst (at
// least len(X) long), borrowing one scratch for the whole batch. Rows
// evaluate sequentially, bit-identical to per-row Predict calls.
func (m *Model) PredictInto(dst []float64, X [][]float64) {
	_ = dst[:len(X)]
	p := m.pool
	if p == nil {
		for i, x := range X {
			dst[i] = m.PredictReference(x)
		}
		return
	}
	sc := p.Get().(*predictScratch)
	for i, x := range X {
		if len(x) != m.dim {
			p.Put(sc)
			panic(predictDimPanic(len(x), m.dim))
		}
		dst[i] = m.predictWith(sc, x)
	}
	p.Put(sc)
}
