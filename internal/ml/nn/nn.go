// Package nn implements the feed-forward (multi-layer perceptron) regressor
// used as the "NN" model throughout the paper's evaluation, after Woltmann
// et al. [32]: dense layers with ReLU activations trained by mini-batch
// Adam on a mean-squared-error loss.
//
// The network is input-agnostic (Section 2.2): for a fixed input length it
// consumes any numeric vector, which is what lets the QFTs vary while the
// architecture stays put. The paper's Keras/TensorFlow stack is replaced by
// a from-scratch float64 implementation (see DESIGN.md, substitutions).
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"qfe/internal/ml/mlmath"
)

// Config holds the network hyperparameters.
type Config struct {
	// Hidden lists the hidden-layer widths, e.g. {128, 64}.
	Hidden []int
	// LearningRate is the Adam step size.
	LearningRate float64
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the mini-batch size.
	BatchSize int
	// ValFraction holds out this fraction of the training set to monitor
	// validation loss for early stopping; 0 disables the hold-out.
	ValFraction float64
	// Patience stops training after this many epochs without validation
	// improvement; 0 disables early stopping.
	Patience int
	// Seed drives initialization and shuffling; training is deterministic
	// given a seed.
	Seed int64
}

// DefaultConfig mirrors the modest two-hidden-layer setup of the local-model
// paper [32], sized for this reproduction's workloads.
func DefaultConfig() Config {
	return Config{
		Hidden:       []int{64, 32},
		LearningRate: 1e-3,
		Epochs:       40,
		BatchSize:    64,
		ValFraction:  0.1,
		Patience:     8,
	}
}

func (c Config) validate() error {
	switch {
	case len(c.Hidden) == 0:
		return fmt.Errorf("nn: no hidden layers configured")
	case c.LearningRate <= 0:
		return fmt.Errorf("nn: LearningRate = %v, want > 0", c.LearningRate)
	case c.Epochs < 1:
		return fmt.Errorf("nn: Epochs = %d, want >= 1", c.Epochs)
	case c.BatchSize < 1:
		return fmt.Errorf("nn: BatchSize = %d, want >= 1", c.BatchSize)
	case c.ValFraction < 0 || c.ValFraction >= 1:
		return fmt.Errorf("nn: ValFraction = %v, want in [0, 1)", c.ValFraction)
	}
	for _, h := range c.Hidden {
		if h < 1 {
			return fmt.Errorf("nn: hidden width %d, want >= 1", h)
		}
	}
	return nil
}

// Model is a trained feed-forward regressor.
type Model struct {
	cfg    Config
	layers []*mlmath.Dense
	dim    int
}

// Train fits the network on X (row-major samples) and targets y.
func Train(X [][]float64, y []float64, cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(X)
	if n == 0 {
		return nil, fmt.Errorf("nn: no training samples")
	}
	if len(y) != n {
		return nil, fmt.Errorf("nn: %d samples but %d targets", n, len(y))
	}
	d := len(X[0])
	if d == 0 {
		return nil, fmt.Errorf("nn: zero-dimensional features")
	}
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("nn: sample %d has %d features, want %d", i, len(row), d)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{cfg: cfg, dim: d}
	prev := d
	for _, h := range cfg.Hidden {
		m.layers = append(m.layers, mlmath.NewDense(prev, h, rng))
		prev = h
	}
	m.layers = append(m.layers, mlmath.NewDense(prev, 1, rng))

	// Train/validation split for early stopping.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	mlmath.Shuffle(idx, rng)
	nVal := int(cfg.ValFraction * float64(n))
	if cfg.Patience == 0 {
		nVal = 0
	}
	valIdx, trainIdx := idx[:nVal], idx[nVal:]
	if len(trainIdx) == 0 {
		return nil, fmt.Errorf("nn: validation split leaves no training samples")
	}

	bestVal := math.Inf(1)
	sinceBest := 0
	var bestSnapshot [][]float64

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		mlmath.Shuffle(trainIdx, rng)
		for start := 0; start < len(trainIdx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(trainIdx) {
				end = len(trainIdx)
			}
			batch := trainIdx[start:end]
			for _, l := range m.layers {
				l.ZeroGrad()
			}
			for _, i := range batch {
				m.backprop(X[i], y[i])
			}
			for _, l := range m.layers {
				l.Step(cfg.LearningRate, len(batch))
			}
		}

		if nVal > 0 {
			var valLoss float64
			for _, i := range valIdx {
				diff := m.Predict(X[i]) - y[i]
				valLoss += diff * diff
			}
			valLoss /= float64(nVal)
			if valLoss < bestVal-1e-9 {
				bestVal = valLoss
				sinceBest = 0
				bestSnapshot = m.snapshot()
			} else {
				sinceBest++
				if sinceBest >= cfg.Patience {
					break
				}
			}
		}
	}
	if bestSnapshot != nil {
		m.restore(bestSnapshot)
	}
	return m, nil
}

// backprop runs one forward/backward pass and accumulates gradients.
func (m *Model) backprop(x []float64, target float64) {
	// Forward, keeping pre-activations and inputs per layer.
	inputs := make([][]float64, len(m.layers))
	pres := make([][]float64, len(m.layers))
	act := x
	for li, l := range m.layers {
		inputs[li] = act
		pre := l.Forward(act)
		pres[li] = pre
		if li < len(m.layers)-1 {
			act = mlmath.ReLU(append([]float64(nil), pre...))
		} else {
			act = pre
		}
	}
	_, grad := mlmath.MSEGrad(act[0], target)
	dy := []float64{grad}
	for li := len(m.layers) - 1; li >= 0; li-- {
		dx := m.layers[li].Backward(inputs[li], dy)
		if li > 0 {
			dy = mlmath.ReLUBackward(pres[li-1], dx)
		}
	}
}

// Predict returns the network output for one feature vector.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != m.dim {
		panic(fmt.Sprintf("nn: input dim %d, model dim %d", len(x), m.dim))
	}
	act := x
	for li, l := range m.layers {
		act = l.Forward(act)
		if li < len(m.layers)-1 {
			mlmath.ReLU(act)
		}
	}
	return act[0]
}

// PredictBatch applies Predict to every row.
func (m *Model) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

// NumParams returns the trainable parameter count.
func (m *Model) NumParams() int {
	total := 0
	for _, l := range m.layers {
		total += l.NumParams()
	}
	return total
}

// MemoryBytes estimates the model's resident size (8 bytes per parameter),
// the Section 5.7 accounting under which the NN is the largest estimator.
func (m *Model) MemoryBytes() int { return m.NumParams() * 8 }

// snapshot copies all weights; restore writes them back. Used to keep the
// best-validation-epoch weights under early stopping.
func (m *Model) snapshot() [][]float64 {
	var out [][]float64
	for _, l := range m.layers {
		out = append(out, append([]float64(nil), l.W...), append([]float64(nil), l.B...))
	}
	return out
}

func (m *Model) restore(snap [][]float64) {
	for i, l := range m.layers {
		copy(l.W, snap[2*i])
		copy(l.B, snap[2*i+1])
	}
}
