// Package nn implements the feed-forward (multi-layer perceptron) regressor
// used as the "NN" model throughout the paper's evaluation, after Woltmann
// et al. [32]: dense layers with ReLU activations trained by mini-batch
// Adam on a mean-squared-error loss.
//
// The network is input-agnostic (Section 2.2): for a fixed input length it
// consumes any numeric vector, which is what lets the QFTs vary while the
// architecture stays put. The paper's Keras/TensorFlow stack is replaced by
// a from-scratch float64 implementation (see DESIGN.md, substitutions).
package nn

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sync"

	"qfe/internal/ml/mlmath"
	"qfe/internal/parallel"
)

// ErrCanceled reports that training was aborted by its context; the
// returned error also wraps the context's own error.
var ErrCanceled = errors.New("nn: training canceled")

// TrainOpts carries the optional checkpointing hooks of TrainCtx. The zero
// value (or a nil pointer) trains without checkpoints.
type TrainOpts struct {
	// CheckpointEvery emits a checkpoint after every this-many completed
	// epochs; 0 disables checkpointing.
	CheckpointEvery int
	// OnCheckpoint receives each serialized checkpoint; a non-nil return
	// aborts training with that error.
	OnCheckpoint func(payload []byte) error
	// Resume, when non-empty, is a payload previously passed to
	// OnCheckpoint; training continues from it bit-identically to a run
	// that was never interrupted (same Config, X, and y required).
	Resume []byte
}

// checkpoint is the serialized mid-training state: completed-epoch cursor,
// full layer state (weights + Adam moments), and the early-stopping
// bookkeeping. BestVal is a pointer because its in-memory "no best yet"
// value is +Inf, which JSON cannot carry.
type checkpoint struct {
	Cfg       Config              `json:"cfg"`
	Dim       int                 `json:"dim"`
	Epoch     int                 `json:"epoch"` // completed epochs
	Layers    []mlmath.DenseState `json:"layers"`
	BestVal   *float64            `json:"bestVal,omitempty"`
	SinceBest int                 `json:"sinceBest"`
	BestSnap  [][]float64         `json:"bestSnap,omitempty"`
}

func cfgEqual(a, b Config) bool {
	return slices.Equal(a.Hidden, b.Hidden) &&
		a.LearningRate == b.LearningRate &&
		a.Epochs == b.Epochs &&
		a.BatchSize == b.BatchSize &&
		a.ValFraction == b.ValFraction &&
		a.Patience == b.Patience &&
		a.Seed == b.Seed &&
		a.Workers == b.Workers
}

// Config holds the network hyperparameters.
type Config struct {
	// Hidden lists the hidden-layer widths, e.g. {128, 64}.
	Hidden []int
	// LearningRate is the Adam step size.
	LearningRate float64
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the mini-batch size.
	BatchSize int
	// ValFraction holds out this fraction of the training set to monitor
	// validation loss for early stopping; 0 disables the hold-out.
	ValFraction float64
	// Patience stops training after this many epochs without validation
	// improvement; 0 disables early stopping.
	Patience int
	// Seed drives initialization and shuffling; training is deterministic
	// given a seed.
	Seed int64
	// Workers bounds the goroutines that fan mini-batch forward/backward
	// passes and batch prediction across samples; < 1 means one per
	// logical CPU. Trained weights are bit-identical for every Workers
	// value: per-sample gradients accumulate within fixed 8-sample shards
	// (see gradShardSize) and shards reduce in index order after the pool
	// drains, so the floating-point summation tree never depends on
	// scheduling.
	Workers int
}

// DefaultConfig mirrors the modest two-hidden-layer setup of the local-model
// paper [32], sized for this reproduction's workloads.
func DefaultConfig() Config {
	return Config{
		Hidden:       []int{64, 32},
		LearningRate: 1e-3,
		Epochs:       40,
		BatchSize:    64,
		ValFraction:  0.1,
		Patience:     8,
	}
}

func (c Config) validate() error {
	switch {
	case len(c.Hidden) == 0:
		return fmt.Errorf("nn: no hidden layers configured")
	case c.LearningRate <= 0:
		return fmt.Errorf("nn: LearningRate = %v, want > 0", c.LearningRate)
	case c.Epochs < 1:
		return fmt.Errorf("nn: Epochs = %d, want >= 1", c.Epochs)
	case c.BatchSize < 1:
		return fmt.Errorf("nn: BatchSize = %d, want >= 1", c.BatchSize)
	case c.ValFraction < 0 || c.ValFraction >= 1:
		return fmt.Errorf("nn: ValFraction = %v, want in [0, 1)", c.ValFraction)
	}
	for _, h := range c.Hidden {
		if h < 1 {
			return fmt.Errorf("nn: hidden width %d, want >= 1", h)
		}
	}
	return nil
}

// Model is a trained feed-forward regressor.
type Model struct {
	cfg    Config
	layers []*mlmath.Dense
	dim    int

	// pool hands out per-goroutine activation scratch for the inference
	// fast path (see fast.go); nil falls back to the allocating reference.
	pool *sync.Pool
}

// Train fits the network on X (row-major samples) and targets y.
func Train(X [][]float64, y []float64, cfg Config) (*Model, error) {
	return TrainCtx(context.Background(), X, y, cfg, nil)
}

// TrainCtx is Train with cancellation (checked every mini-batch) and
// optional epoch-granularity checkpointing. Resuming restores the full
// layer state — weights and Adam moments — and replays the per-epoch
// shuffles the completed epochs consumed, so the finished network is
// bit-identical to an uninterrupted run with the same inputs.
func TrainCtx(ctx context.Context, X [][]float64, y []float64, cfg Config, opts *TrainOpts) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(X)
	if n == 0 {
		return nil, fmt.Errorf("nn: no training samples")
	}
	if len(y) != n {
		return nil, fmt.Errorf("nn: %d samples but %d targets", n, len(y))
	}
	d := len(X[0])
	if d == 0 {
		return nil, fmt.Errorf("nn: zero-dimensional features")
	}
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("nn: sample %d has %d features, want %d", i, len(row), d)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{cfg: cfg, dim: d}
	prev := d
	for _, h := range cfg.Hidden {
		m.layers = append(m.layers, mlmath.NewDense(prev, h, rng))
		prev = h
	}
	m.layers = append(m.layers, mlmath.NewDense(prev, 1, rng))
	m.initFastPath()

	// Train/validation split for early stopping.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	mlmath.Shuffle(idx, rng)
	nVal := int(cfg.ValFraction * float64(n))
	if cfg.Patience == 0 {
		nVal = 0
	}
	valIdx, trainIdx := idx[:nVal], idx[nVal:]
	if len(trainIdx) == 0 {
		return nil, fmt.Errorf("nn: validation split leaves no training samples")
	}

	bestVal := math.Inf(1)
	sinceBest := 0
	var bestSnapshot [][]float64

	startEpoch := 0
	if opts != nil && len(opts.Resume) > 0 {
		var ck checkpoint
		if err := json.Unmarshal(opts.Resume, &ck); err != nil {
			return nil, fmt.Errorf("nn: decode checkpoint: %w", err)
		}
		switch {
		case !cfgEqual(ck.Cfg, cfg):
			return nil, fmt.Errorf("nn: checkpoint config %+v does not match %+v", ck.Cfg, cfg)
		case ck.Dim != d:
			return nil, fmt.Errorf("nn: checkpoint dim %d, training data has %d", ck.Dim, d)
		case len(ck.Layers) != len(m.layers):
			return nil, fmt.Errorf("nn: checkpoint has %d layers, model has %d", len(ck.Layers), len(m.layers))
		case ck.Epoch < 0 || ck.Epoch > cfg.Epochs:
			return nil, fmt.Errorf("nn: checkpoint epoch %d out of range [0, %d]", ck.Epoch, cfg.Epochs)
		}
		for li, l := range m.layers {
			if err := l.SetState(ck.Layers[li]); err != nil {
				return nil, fmt.Errorf("nn: checkpoint layer %d: %w", li, err)
			}
		}
		startEpoch = ck.Epoch
		sinceBest = ck.SinceBest
		if ck.BestVal != nil {
			bestVal = *ck.BestVal
			bestSnapshot = ck.BestSnap
		}
		// Replay the shuffles the completed epochs consumed so the remaining
		// epochs see the exact RNG stream they would have seen.
		for e := 0; e < startEpoch; e++ {
			mlmath.Shuffle(trainIdx, rng)
		}
	}

	workers := parallel.Workers(cfg.Workers)
	maxShards := (cfg.BatchSize + gradShardSize - 1) / gradShardSize
	shards := make([]*shardGrads, maxShards)
	for i := range shards {
		shards[i] = newShardGrads(m.layers)
	}
	valPred := make([]float64, nVal)

	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		mlmath.Shuffle(trainIdx, rng)
		for start := 0; start < len(trainIdx); start += cfg.BatchSize {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("%w: %w", ErrCanceled, err)
			}
			end := start + cfg.BatchSize
			if end > len(trainIdx) {
				end = len(trainIdx)
			}
			batch := trainIdx[start:end]
			// Forward/backward fans out across fixed-size sample shards;
			// each shard accumulates into private buffers. The shard
			// partition depends only on BatchSize, never on workers, so
			// the gradient sum below is reproducible for any parallelism.
			numShards := (len(batch) + gradShardSize - 1) / gradShardSize
			parallel.Do(numShards, workers, func(si int) {
				sg := shards[si]
				sg.zero()
				lo := si * gradShardSize
				hi := lo + gradShardSize
				if hi > len(batch) {
					hi = len(batch)
				}
				for _, i := range batch[lo:hi] {
					m.backpropInto(X[i], y[i], sg)
				}
			})
			for _, l := range m.layers {
				l.ZeroGrad()
			}
			// Deterministic reduction: shards fold in index order.
			for si := 0; si < numShards; si++ {
				for li, l := range m.layers {
					l.AddGrad(shards[si].w[li], shards[si].b[li])
				}
			}
			for _, l := range m.layers {
				l.Step(cfg.LearningRate, len(batch))
			}
		}

		if nVal > 0 {
			// Validation predictions are independent per sample (each
			// writes its own slot); the loss sums sequentially in hold-out
			// order, bit-identical to a serial pass.
			parallel.DoChunks(nVal, workers, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					valPred[j] = m.Predict(X[valIdx[j]])
				}
			})
			var valLoss float64
			for j, i := range valIdx {
				diff := valPred[j] - y[i]
				valLoss += diff * diff
			}
			valLoss /= float64(nVal)
			if valLoss < bestVal-1e-9 {
				bestVal = valLoss
				sinceBest = 0
				bestSnapshot = m.snapshot()
			} else {
				sinceBest++
				if sinceBest >= cfg.Patience {
					break
				}
			}
		}

		if opts != nil && opts.OnCheckpoint != nil && opts.CheckpointEvery > 0 &&
			(epoch+1)%opts.CheckpointEvery == 0 && epoch+1 < cfg.Epochs {
			ck := checkpoint{Cfg: cfg, Dim: d, Epoch: epoch + 1, SinceBest: sinceBest}
			for _, l := range m.layers {
				ck.Layers = append(ck.Layers, l.State())
			}
			if bestSnapshot != nil {
				bv := bestVal
				ck.BestVal = &bv
				ck.BestSnap = bestSnapshot
			}
			payload, err := json.Marshal(ck)
			if err != nil {
				return nil, fmt.Errorf("nn: encode checkpoint: %w", err)
			}
			if err := opts.OnCheckpoint(payload); err != nil {
				return nil, fmt.Errorf("nn: checkpoint after epoch %d: %w", epoch+1, err)
			}
		}
	}
	if bestSnapshot != nil {
		m.restore(bestSnapshot)
	}
	return m, nil
}

// gradShardSize is the number of consecutive mini-batch samples whose
// gradients accumulate into one private shard before the ordered
// cross-shard reduction. It is a fixed constant — NOT derived from the
// worker count — which is what makes trained weights bit-identical for
// every Workers setting: the floating-point summation tree is a function
// of the batch alone.
const gradShardSize = 8

// shardGrads holds one shard's private per-layer gradient buffers.
type shardGrads struct {
	w [][]float64
	b [][]float64
}

func newShardGrads(layers []*mlmath.Dense) *shardGrads {
	sg := &shardGrads{}
	for _, l := range layers {
		sg.w = append(sg.w, make([]float64, l.In*l.Out))
		sg.b = append(sg.b, make([]float64, l.Out))
	}
	return sg
}

func (sg *shardGrads) zero() {
	for _, w := range sg.w {
		for i := range w {
			w[i] = 0
		}
	}
	for _, b := range sg.b {
		for i := range b {
			b[i] = 0
		}
	}
}

// backpropInto runs one forward/backward pass, accumulating gradients into
// the given shard's private buffers so concurrent samples never share
// accumulation state.
func (m *Model) backpropInto(x []float64, target float64, sg *shardGrads) {
	// Forward, keeping pre-activations and inputs per layer.
	inputs := make([][]float64, len(m.layers))
	pres := make([][]float64, len(m.layers))
	act := x
	for li, l := range m.layers {
		inputs[li] = act
		pre := l.Forward(act)
		pres[li] = pre
		if li < len(m.layers)-1 {
			act = mlmath.ReLU(append([]float64(nil), pre...))
		} else {
			act = pre
		}
	}
	_, grad := mlmath.MSEGrad(act[0], target)
	dy := []float64{grad}
	for li := len(m.layers) - 1; li >= 0; li-- {
		dx := m.layers[li].BackwardInto(inputs[li], dy, sg.w[li], sg.b[li])
		if li > 0 {
			dy = mlmath.ReLUBackward(pres[li-1], dx)
		}
	}
}

func predictDimPanic(got, want int) string {
	return fmt.Sprintf("nn: input dim %d, model dim %d", got, want)
}

// Predict returns the network output for one feature vector. Trained or
// deserialized models evaluate through pooled ping-pong activation buffers
// (see fast.go), bit-identical to PredictReference without the per-layer
// allocations.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != m.dim {
		panic(predictDimPanic(len(x), m.dim))
	}
	p := m.pool
	if p == nil {
		return m.PredictReference(x)
	}
	sc := p.Get().(*predictScratch)
	out := m.predictWith(sc, x)
	p.Put(sc)
	return out
}

// PredictBatch applies Predict to every row, fanning the rows out across
// the configured workers (each row writes only its own output slot).
func (m *Model) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	parallel.DoChunks(len(X), parallel.Workers(m.cfg.Workers), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.Predict(X[i])
		}
	})
	return out
}

// NumParams returns the trainable parameter count.
func (m *Model) NumParams() int {
	total := 0
	for _, l := range m.layers {
		total += l.NumParams()
	}
	return total
}

// MemoryBytes estimates the model's resident size (8 bytes per parameter),
// the Section 5.7 accounting under which the NN is the largest estimator.
func (m *Model) MemoryBytes() int { return m.NumParams() * 8 }

// snapshot copies all weights; restore writes them back. Used to keep the
// best-validation-epoch weights under early stopping.
func (m *Model) snapshot() [][]float64 {
	var out [][]float64
	for _, l := range m.layers {
		out = append(out, append([]float64(nil), l.W...), append([]float64(nil), l.B...))
	}
	return out
}

func (m *Model) restore(snap [][]float64) {
	for i, l := range m.layers {
		copy(l.W, snap[2*i])
		copy(l.B, snap[2*i+1])
	}
}
