package nn

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchData(n, d int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		y[i] = 3*row[0] - 2*row[1] + row[d-1]
	}
	return X, y
}

// BenchmarkTrainWorkers compares sequential (Workers=1) against parallel
// mini-batch training. Gradients reduce over fixed 8-sample shards in index
// order, so weights are bit-identical across worker counts; only wall-clock
// should differ on multi-core hardware.
func BenchmarkTrainWorkers(b *testing.B) {
	X, y := benchData(2_000, 100)
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Epochs = 5
			cfg.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Train(X, y, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredictBatch measures parallel batch inference.
func BenchmarkPredictBatch(b *testing.B) {
	X, y := benchData(4_000, 100)
	cfg := DefaultConfig()
	cfg.Epochs = 2
	m, err := Train(X, y, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatch(X)
	}
}
