package gb

import (
	"math"
	"sort"

	"qfe/internal/parallel"
)

// builder holds the per-training-run state shared by all trees: the binned
// feature matrix for histogram split search and the resolved worker count.
type builder struct {
	X       [][]float64
	cfg     Config
	n, d    int
	codes   []uint8     // n*d bin codes, row-major
	edges   [][]float64 // per feature: upper edge of each bin except the last
	allCols []int
	workers int
}

// splitResult is one feature's best split, computed independently so the
// per-feature search can fan out across workers. The cross-feature winner
// is chosen afterwards in feature order, which keeps the parallel search
// bit-identical to the sequential scan.
type splitResult struct {
	thr  float64
	gain float64
	ok   bool
}

// newBuilder bins every feature once; bins are reused by every tree of the
// boosting run (the histogram trick). Binning is embarrassingly parallel
// across features: feature f writes only edges[f] and the codes[i*d+f]
// column, so the parallel sweep is race-free and order-independent.
func newBuilder(X [][]float64, cfg Config) *builder {
	n, d := len(X), len(X[0])
	b := &builder{X: X, cfg: cfg, n: n, d: d, workers: parallel.Workers(cfg.Workers)}
	b.allCols = make([]int, d)
	for i := range b.allCols {
		b.allCols[i] = i
	}
	b.codes = make([]uint8, n*d)
	b.edges = make([][]float64, d)
	parallel.DoChunks(d, b.workers, func(flo, fhi int) {
		for f := flo; f < fhi; f++ {
			mn, mx := X[0][f], X[0][f]
			for i := 1; i < n; i++ {
				v := X[i][f]
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			bins := cfg.MaxBins
			if mx == mn {
				bins = 1
			}
			// Uniform bin edges over [mn, mx]: edges[k] is the inclusive
			// upper bound of bin k; the last bin is unbounded above.
			edges := make([]float64, bins-1)
			width := (mx - mn) / float64(bins)
			for k := 0; k < bins-1; k++ {
				edges[k] = mn + width*float64(k+1)
			}
			b.edges[f] = edges
			for i := 0; i < n; i++ {
				b.codes[i*d+f] = binCode(X[i][f], mn, width, bins)
			}
		}
	})
	return b
}

func binCode(v, mn, width float64, bins int) uint8 {
	if bins == 1 || width == 0 {
		return 0
	}
	k := int((v - mn) / width)
	if k < 0 {
		k = 0
	}
	if k >= bins {
		k = bins - 1
	}
	return uint8(k)
}

// build grows one regression tree on the residuals, over the given row and
// column subsets.
func (b *builder) build(rows, cols []int, resid []float64) *tree {
	t := &tree{}
	b.grow(t, rows, cols, resid, 1)
	return t
}

// grow appends the subtree for rows to t and returns its root index.
func (b *builder) grow(t *tree, rows, cols []int, resid []float64, depth int) int32 {
	idx := int32(len(t.Nodes))
	t.Nodes = append(t.Nodes, node{})

	var sum float64
	for _, r := range rows {
		sum += resid[r]
	}
	mean := sum / float64(len(rows))

	if depth >= b.cfg.MaxDepth || len(rows) < 2*b.cfg.MinSamplesLeaf {
		t.Nodes[idx] = node{Leaf: true, Value: mean}
		return idx
	}

	feat, thr, gain, ok := b.bestSplit(rows, cols, resid, sum)
	if !ok || gain <= 1e-12 {
		t.Nodes[idx] = node{Leaf: true, Value: mean}
		return idx
	}

	left := make([]int, 0, len(rows)/2)
	right := make([]int, 0, len(rows)/2)
	for _, r := range rows {
		if b.X[r][feat] <= thr {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < b.cfg.MinSamplesLeaf || len(right) < b.cfg.MinSamplesLeaf {
		t.Nodes[idx] = node{Leaf: true, Value: mean}
		return idx
	}

	l := b.grow(t, left, cols, resid, depth+1)
	r := b.grow(t, right, cols, resid, depth+1)
	t.Nodes[idx] = node{Feature: feat, Threshold: thr, Left: l, Right: r}
	return idx
}

// splitWorkers decides the fan-out for one node's split search: near the
// leaves the per-feature work is too small to amortize goroutine dispatch.
func (b *builder) splitWorkers(rows, cols []int) int {
	if len(rows)*len(cols) < 8192 {
		return 1
	}
	return b.workers
}

// bestSplit searches every candidate feature for the variance-reduction-
// maximizing split, fanning the per-feature searches (histogram build or
// exact threshold scan — each touching only its own hist buffers and
// results[ci] slot) across workers. The winner is then reduced in cols
// order with the same strictly-greater comparison the sequential scan
// used, so ties break toward the earlier feature and the chosen split is
// bit-identical for every worker count.
func (b *builder) bestSplit(rows, cols []int, resid []float64, sumTotal float64) (feat int, thr, gain float64, ok bool) {
	cnt := len(rows)
	parentScore := sumTotal * sumTotal / float64(cnt)
	results := make([]splitResult, len(cols))

	workers := b.splitWorkers(rows, cols)
	if b.cfg.ExactSplits {
		parallel.DoChunks(len(cols), workers, func(lo, hi int) {
			pairs := make([]splitPair, 0, cnt)
			for ci := lo; ci < hi; ci++ {
				results[ci] = b.exactFeatureSplit(rows, cols[ci], resid, sumTotal, parentScore, pairs)
			}
		})
	} else {
		parallel.DoChunks(len(cols), workers, func(lo, hi int) {
			histSum := make([]float64, b.cfg.MaxBins)
			histCnt := make([]int, b.cfg.MaxBins)
			for ci := lo; ci < hi; ci++ {
				results[ci] = b.histFeatureSplit(rows, cols[ci], resid, sumTotal, parentScore, histSum, histCnt)
			}
		})
	}

	for ci, res := range results {
		if res.ok && res.gain > gain {
			gain, feat, thr, ok = res.gain, cols[ci], res.thr, true
		}
	}
	return feat, thr, gain, ok
}

// histFeatureSplit finds feature f's best histogram split. The gain of a
// split is
//
//	sumL^2/cntL + sumR^2/cntR - sumTotal^2/cntTotal,
//
// the standard decomposition of squared-error reduction. The histogram
// accumulates rows in input order — the same order as the sequential code —
// so gains are bit-identical regardless of which worker runs the feature.
func (b *builder) histFeatureSplit(rows []int, f int, resid []float64, sumTotal, parentScore float64, histSum []float64, histCnt []int) splitResult {
	edges := b.edges[f]
	if len(edges) == 0 {
		return splitResult{} // constant feature
	}
	cnt := len(rows)
	nb := len(edges) + 1
	for k := 0; k < nb; k++ {
		histSum[k] = 0
		histCnt[k] = 0
	}
	for _, r := range rows {
		c := b.codes[r*b.d+f]
		histSum[c] += resid[r]
		histCnt[c]++
	}
	var best splitResult
	var accSum float64
	accCnt := 0
	for k := 0; k < nb-1; k++ {
		accSum += histSum[k]
		accCnt += histCnt[k]
		if accCnt < b.cfg.MinSamplesLeaf || cnt-accCnt < b.cfg.MinSamplesLeaf {
			continue
		}
		rSum := sumTotal - accSum
		score := accSum*accSum/float64(accCnt) + rSum*rSum/float64(cnt-accCnt)
		if g := score - parentScore; g > best.gain {
			best = splitResult{thr: edges[k], gain: g, ok: true}
		}
	}
	return best
}

// splitPair is one (value, residual) sample of the exact-split scan.
type splitPair struct {
	v, r float64
}

// exactFeatureSplit scans every distinct threshold of feature f — the slow
// reference implementation kept for the split-search ablation and for
// cross-checking the histogram path in tests. pairs is a reusable scratch
// buffer owned by the calling worker.
func (b *builder) exactFeatureSplit(rows []int, f int, resid []float64, sumTotal, parentScore float64, pairs []splitPair) splitResult {
	cnt := len(rows)
	pairs = pairs[:0]
	for _, r := range rows {
		pairs = append(pairs, splitPair{b.X[r][f], resid[r]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	var best splitResult
	var accSum float64
	for i := 0; i < cnt-1; i++ {
		accSum += pairs[i].r
		if pairs[i].v == pairs[i+1].v {
			continue // can only split between distinct values
		}
		accCnt := i + 1
		if accCnt < b.cfg.MinSamplesLeaf || cnt-accCnt < b.cfg.MinSamplesLeaf {
			continue
		}
		rSum := sumTotal - accSum
		score := accSum*accSum/float64(accCnt) + rSum*rSum/float64(cnt-accCnt)
		if g := score - parentScore; g > best.gain {
			// Split midway between the neighboring distinct values so
			// prediction-time comparisons are robust.
			mid := pairs[i].v + (pairs[i+1].v-pairs[i].v)/2
			if math.IsInf(mid, 0) {
				mid = pairs[i].v
			}
			best = splitResult{thr: mid, gain: g, ok: true}
		}
	}
	return best
}
