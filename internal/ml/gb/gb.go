// Package gb implements gradient-boosted regression trees from scratch: the
// lightweight model class the paper adopts from Dutt et al. [5] and
// identifies as its best-performing estimator ("GB" throughout Section 5).
//
// The estimator is the paper's Equation 5: a sum of P weak predictors — here
// depth-limited regression trees fit to the residuals of their predecessors
// — each shrunk by a learning rate, plus a constant. Split search uses
// feature histograms (the strategy of LightGBM, which the paper uses), with
// an exact-search mode retained for the ablation benchmark.
package gb

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"qfe/internal/parallel"
)

// Config holds the gradient-boosting hyperparameters. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// NumTrees is P, the number of boosting stages.
	NumTrees int
	// LearningRate shrinks each tree's contribution (λ in Equation 5).
	LearningRate float64
	// MaxDepth limits each regression tree's depth.
	MaxDepth int
	// MinSamplesLeaf is the minimum number of training samples per leaf.
	MinSamplesLeaf int
	// MaxBins is the number of histogram bins per feature for split search.
	MaxBins int
	// SubsampleRows is the fraction of rows sampled (without replacement)
	// per tree; 1 disables row subsampling.
	SubsampleRows float64
	// SubsampleCols is the fraction of features considered per tree;
	// 1 disables column subsampling.
	SubsampleCols float64
	// ExactSplits switches from histogram to exact threshold search — far
	// slower, kept for the DESIGN.md split-search ablation.
	ExactSplits bool
	// Seed drives subsampling; training is deterministic given a seed.
	Seed int64
	// Workers bounds the goroutines used for feature binning, per-feature
	// split search, and batch prediction; < 1 means one per logical CPU.
	// The trained model is bit-identical for every Workers value: each
	// feature's histogram accumulates in the same row order as the
	// sequential code, and the cross-feature winner is reduced in fixed
	// feature order after the pool drains.
	Workers int `json:",omitempty"`
}

// DefaultConfig mirrors a lightly tuned LightGBM-style configuration
// adequate for the paper's workloads.
func DefaultConfig() Config {
	return Config{
		NumTrees:       120,
		LearningRate:   0.12,
		MaxDepth:       7,
		MinSamplesLeaf: 10,
		MaxBins:        64,
		SubsampleRows:  0.9,
		SubsampleCols:  0.8,
	}
}

func (c Config) validate(n, d int) error {
	switch {
	case c.NumTrees < 1:
		return fmt.Errorf("gb: NumTrees = %d, want >= 1", c.NumTrees)
	case c.LearningRate <= 0 || c.LearningRate > 1:
		return fmt.Errorf("gb: LearningRate = %v, want in (0, 1]", c.LearningRate)
	case c.MaxDepth < 1:
		return fmt.Errorf("gb: MaxDepth = %d, want >= 1", c.MaxDepth)
	case c.MinSamplesLeaf < 1:
		return fmt.Errorf("gb: MinSamplesLeaf = %d, want >= 1", c.MinSamplesLeaf)
	case c.MaxBins < 2 || c.MaxBins > 256:
		return fmt.Errorf("gb: MaxBins = %d, want in [2, 256]", c.MaxBins)
	case c.SubsampleRows <= 0 || c.SubsampleRows > 1:
		return fmt.Errorf("gb: SubsampleRows = %v, want in (0, 1]", c.SubsampleRows)
	case c.SubsampleCols <= 0 || c.SubsampleCols > 1:
		return fmt.Errorf("gb: SubsampleCols = %v, want in (0, 1]", c.SubsampleCols)
	case n == 0:
		return fmt.Errorf("gb: no training samples")
	case d == 0:
		return fmt.Errorf("gb: zero-dimensional features")
	}
	return nil
}

// node is one regression-tree node. Leaves carry Value; internal nodes send
// x[Feature] <= Threshold left.
type node struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      int32   `json:"l"`
	Right     int32   `json:"r"`
	Leaf      bool    `json:"leaf"`
	Value     float64 `json:"v"`
}

// tree is a regression tree stored as a node arena rooted at index 0.
type tree struct {
	Nodes []node `json:"nodes"`
}

func (t *tree) predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Leaf {
			return n.Value
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Model is a trained gradient-boosting regressor.
type Model struct {
	Cfg   Config  `json:"cfg"`
	Base  float64 `json:"base"` // the constant c of Equation 5
	Trees []*tree `json:"trees"`
	Dim   int     `json:"dim"`
}

// Train fits a gradient-boosting model on X (row-major samples) and targets
// y. X must be rectangular and len(X) == len(y).
func Train(X [][]float64, y []float64, cfg Config) (*Model, error) {
	n := len(X)
	d := 0
	if n > 0 {
		d = len(X[0])
	}
	if err := cfg.validate(n, d); err != nil {
		return nil, err
	}
	if len(y) != n {
		return nil, fmt.Errorf("gb: %d samples but %d targets", n, len(y))
	}
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("gb: sample %d has %d features, want %d", i, len(row), d)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Cfg: cfg, Dim: d}

	// Base prediction: the target mean (the constant c of Equation 5).
	var sum float64
	for _, v := range y {
		sum += v
	}
	m.Base = sum / float64(n)

	b := newBuilder(X, cfg)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = m.Base
	}
	resid := make([]float64, n)
	allRows := make([]int, n)
	for i := range allRows {
		allRows[i] = i
	}

	for t := 0; t < cfg.NumTrees; t++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		rows := allRows
		if cfg.SubsampleRows < 1 {
			k := int(math.Ceil(cfg.SubsampleRows * float64(n)))
			rows = sampleInts(rng, n, k)
		}
		cols := b.allCols
		if cfg.SubsampleCols < 1 {
			k := int(math.Ceil(cfg.SubsampleCols * float64(d)))
			cols = sampleInts(rng, d, k)
		}
		tr := b.build(rows, cols, resid)
		m.Trees = append(m.Trees, tr)
		// Per-row prediction updates write disjoint slots, so the parallel
		// sweep is bit-identical to the sequential loop.
		parallel.DoChunks(n, b.workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				pred[i] += cfg.LearningRate * tr.predict(X[i])
			}
		})
	}
	return m, nil
}

// Predict returns the model output for one feature vector.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != m.Dim {
		panic(fmt.Sprintf("gb: input dim %d, model dim %d", len(x), m.Dim))
	}
	out := m.Base
	for _, t := range m.Trees {
		out += m.Cfg.LearningRate * t.predict(x)
	}
	return out
}

// PredictBatch applies Predict to every row, fanning the rows out across
// m.Cfg.Workers goroutines (each row writes only its own output slot).
func (m *Model) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	parallel.DoChunks(len(X), parallel.Workers(m.Cfg.Workers), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.Predict(X[i])
		}
	})
	return out
}

// NumNodes returns the total node count over all trees.
func (m *Model) NumNodes() int {
	total := 0
	for _, t := range m.Trees {
		total += len(t.Nodes)
	}
	return total
}

// MemoryBytes estimates the model's resident size — the Section 5.7
// accounting that finds GB the smallest estimator. Each node stores a
// feature id, a threshold, two child indices, a flag, and a value.
func (m *Model) MemoryBytes() int {
	const nodeBytes = 8 + 8 + 4 + 4 + 1 + 8
	return m.NumNodes()*nodeBytes + 16
}

// MarshalJSON / model persistence: models serialize to plain JSON so that
// trained estimators can be shipped next to the data they describe.
func (m *Model) MarshalJSON() ([]byte, error) {
	type alias Model
	return json.Marshal((*alias)(m))
}

// UnmarshalJSON restores a serialized model.
func (m *Model) UnmarshalJSON(data []byte) error {
	type alias Model
	return json.Unmarshal(data, (*alias)(m))
}

// Validate checks the structural invariants a deserialized model must hold
// before Predict may run on it. The builder appends children after their
// parent, so every child index must exceed its parent's — together with the
// in-range checks this guarantees Predict terminates and never indexes out
// of bounds, even on hand-edited or corrupted files.
func (m *Model) Validate() error {
	if m.Dim < 1 {
		return fmt.Errorf("gb: model dim %d, want >= 1", m.Dim)
	}
	if len(m.Trees) == 0 {
		return fmt.Errorf("gb: model has no trees")
	}
	if math.IsNaN(m.Base) || math.IsInf(m.Base, 0) {
		return fmt.Errorf("gb: base prediction %v is not finite", m.Base)
	}
	for ti, t := range m.Trees {
		if t == nil || len(t.Nodes) == 0 {
			return fmt.Errorf("gb: tree %d is empty", ti)
		}
		for ni, n := range t.Nodes {
			if n.Leaf {
				if math.IsNaN(n.Value) || math.IsInf(n.Value, 0) {
					return fmt.Errorf("gb: tree %d node %d: leaf value %v is not finite", ti, ni, n.Value)
				}
				continue
			}
			if n.Feature < 0 || n.Feature >= m.Dim {
				return fmt.Errorf("gb: tree %d node %d: feature %d out of range [0, %d)", ti, ni, n.Feature, m.Dim)
			}
			if math.IsNaN(n.Threshold) {
				return fmt.Errorf("gb: tree %d node %d: NaN threshold", ti, ni)
			}
			for _, child := range []int32{n.Left, n.Right} {
				if child <= int32(ni) || int(child) >= len(t.Nodes) {
					return fmt.Errorf("gb: tree %d node %d: child index %d out of range (%d, %d)", ti, ni, child, ni, len(t.Nodes))
				}
			}
		}
	}
	return nil
}

// sampleInts draws k distinct ints from [0, n) via partial Fisher-Yates,
// returned sorted-free (order is random but deterministic under the rng).
func sampleInts(rng *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := rng.Perm(n)
	return perm[:k]
}
