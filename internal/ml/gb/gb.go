// Package gb implements gradient-boosted regression trees from scratch: the
// lightweight model class the paper adopts from Dutt et al. [5] and
// identifies as its best-performing estimator ("GB" throughout Section 5).
//
// The estimator is the paper's Equation 5: a sum of P weak predictors — here
// depth-limited regression trees fit to the residuals of their predecessors
// — each shrunk by a learning rate, plus a constant. Split search uses
// feature histograms (the strategy of LightGBM, which the paper uses), with
// an exact-search mode retained for the ablation benchmark.
package gb

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"qfe/internal/parallel"
)

// ErrCanceled reports that training was aborted by its context. The
// returned error also wraps the context's own error, so callers may test
// either errors.Is(err, ErrCanceled) or errors.Is(err, context.Canceled).
var ErrCanceled = errors.New("gb: training canceled")

// TrainOpts carries the optional checkpointing hooks of TrainCtx. The zero
// value (or a nil pointer) trains without checkpoints.
type TrainOpts struct {
	// CheckpointEvery emits a checkpoint after every this-many completed
	// trees; 0 disables checkpointing.
	CheckpointEvery int
	// OnCheckpoint receives each serialized checkpoint. A non-nil return
	// aborts training with that error: a trainer that cannot persist its
	// progress must not pretend the run is resumable.
	OnCheckpoint func(payload []byte) error
	// Resume, when non-empty, is a payload previously passed to
	// OnCheckpoint; training continues from it bit-identically to a run
	// that was never interrupted (same Config, X, and y required).
	Resume []byte
}

// Config holds the gradient-boosting hyperparameters. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// NumTrees is P, the number of boosting stages.
	NumTrees int
	// LearningRate shrinks each tree's contribution (λ in Equation 5).
	LearningRate float64
	// MaxDepth limits each regression tree's depth.
	MaxDepth int
	// MinSamplesLeaf is the minimum number of training samples per leaf.
	MinSamplesLeaf int
	// MaxBins is the number of histogram bins per feature for split search.
	MaxBins int
	// SubsampleRows is the fraction of rows sampled (without replacement)
	// per tree; 1 disables row subsampling.
	SubsampleRows float64
	// SubsampleCols is the fraction of features considered per tree;
	// 1 disables column subsampling.
	SubsampleCols float64
	// ExactSplits switches from histogram to exact threshold search — far
	// slower, kept for the DESIGN.md split-search ablation.
	ExactSplits bool
	// Seed drives subsampling; training is deterministic given a seed.
	Seed int64
	// Workers bounds the goroutines used for feature binning, per-feature
	// split search, and batch prediction; < 1 means one per logical CPU.
	// The trained model is bit-identical for every Workers value: each
	// feature's histogram accumulates in the same row order as the
	// sequential code, and the cross-feature winner is reduced in fixed
	// feature order after the pool drains.
	Workers int `json:",omitempty"`
}

// DefaultConfig mirrors a lightly tuned LightGBM-style configuration
// adequate for the paper's workloads.
func DefaultConfig() Config {
	return Config{
		NumTrees:       120,
		LearningRate:   0.12,
		MaxDepth:       7,
		MinSamplesLeaf: 10,
		MaxBins:        64,
		SubsampleRows:  0.9,
		SubsampleCols:  0.8,
	}
}

func (c Config) validate(n, d int) error {
	switch {
	case c.NumTrees < 1:
		return fmt.Errorf("gb: NumTrees = %d, want >= 1", c.NumTrees)
	case c.LearningRate <= 0 || c.LearningRate > 1:
		return fmt.Errorf("gb: LearningRate = %v, want in (0, 1]", c.LearningRate)
	case c.MaxDepth < 1:
		return fmt.Errorf("gb: MaxDepth = %d, want >= 1", c.MaxDepth)
	case c.MinSamplesLeaf < 1:
		return fmt.Errorf("gb: MinSamplesLeaf = %d, want >= 1", c.MinSamplesLeaf)
	case c.MaxBins < 2 || c.MaxBins > 256:
		return fmt.Errorf("gb: MaxBins = %d, want in [2, 256]", c.MaxBins)
	case c.SubsampleRows <= 0 || c.SubsampleRows > 1:
		return fmt.Errorf("gb: SubsampleRows = %v, want in (0, 1]", c.SubsampleRows)
	case c.SubsampleCols <= 0 || c.SubsampleCols > 1:
		return fmt.Errorf("gb: SubsampleCols = %v, want in (0, 1]", c.SubsampleCols)
	case n == 0:
		return fmt.Errorf("gb: no training samples")
	case d == 0:
		return fmt.Errorf("gb: zero-dimensional features")
	}
	return nil
}

// node is one regression-tree node. Leaves carry Value; internal nodes send
// x[Feature] <= Threshold left.
type node struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      int32   `json:"l"`
	Right     int32   `json:"r"`
	Leaf      bool    `json:"leaf"`
	Value     float64 `json:"v"`
}

// tree is a regression tree stored as a node arena rooted at index 0.
type tree struct {
	Nodes []node `json:"nodes"`
}

func (t *tree) predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Leaf {
			return n.Value
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Model is a trained gradient-boosting regressor.
type Model struct {
	Cfg   Config  `json:"cfg"`
	Base  float64 `json:"base"` // the constant c of Equation 5
	Trees []*tree `json:"trees"`
	Dim   int     `json:"dim"`

	// flat is the compiled struct-of-arrays form of Trees (see flat.go),
	// derived at train/decode time and never serialized. nil falls back to
	// the reference per-tree walk.
	flat *flatForest
}

// Train fits a gradient-boosting model on X (row-major samples) and targets
// y. X must be rectangular and len(X) == len(y).
func Train(X [][]float64, y []float64, cfg Config) (*Model, error) {
	return TrainCtx(context.Background(), X, y, cfg, nil)
}

// TrainCtx is Train with cancellation (checked between boosting stages) and
// optional checkpointing. Resuming from a checkpoint replays the RNG draws
// of the completed trees, so the finished ensemble is bit-identical to an
// uninterrupted run with the same inputs.
func TrainCtx(ctx context.Context, X [][]float64, y []float64, cfg Config, opts *TrainOpts) (*Model, error) {
	n := len(X)
	d := 0
	if n > 0 {
		d = len(X[0])
	}
	if err := cfg.validate(n, d); err != nil {
		return nil, err
	}
	if len(y) != n {
		return nil, fmt.Errorf("gb: %d samples but %d targets", n, len(y))
	}
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("gb: sample %d has %d features, want %d", i, len(row), d)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Cfg: cfg, Dim: d}

	// Base prediction: the target mean (the constant c of Equation 5).
	var sum float64
	for _, v := range y {
		sum += v
	}
	m.Base = sum / float64(n)

	b := newBuilder(X, cfg)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = m.Base
	}
	resid := make([]float64, n)
	allRows := make([]int, n)
	for i := range allRows {
		allRows[i] = i
	}

	startTree := 0
	if opts != nil && len(opts.Resume) > 0 {
		var ck Model
		if err := json.Unmarshal(opts.Resume, &ck); err != nil {
			return nil, fmt.Errorf("gb: decode checkpoint: %w", err)
		}
		switch {
		case ck.Cfg != cfg:
			return nil, fmt.Errorf("gb: checkpoint config %+v does not match %+v", ck.Cfg, cfg)
		case ck.Dim != d:
			return nil, fmt.Errorf("gb: checkpoint dim %d, training data has %d", ck.Dim, d)
		case len(ck.Trees) > cfg.NumTrees:
			return nil, fmt.Errorf("gb: checkpoint has %d trees, config wants %d", len(ck.Trees), cfg.NumTrees)
		}
		m.Trees = ck.Trees
		startTree = len(ck.Trees)
		// Replay the subsampling draws the completed trees consumed, so the
		// remaining trees see the exact RNG stream they would have seen.
		for t := 0; t < startTree; t++ {
			if cfg.SubsampleRows < 1 {
				sampleInts(rng, n, int(math.Ceil(cfg.SubsampleRows*float64(n))))
			}
			if cfg.SubsampleCols < 1 {
				sampleInts(rng, d, int(math.Ceil(cfg.SubsampleCols*float64(d))))
			}
		}
		// Rebuild the running predictions from the restored ensemble.
		parallel.DoChunks(n, b.workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				p := m.Base
				for _, tr := range m.Trees {
					p += cfg.LearningRate * tr.predict(X[i])
				}
				pred[i] = p
			}
		})
	}

	for t := startTree; t < cfg.NumTrees; t++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCanceled, err)
		}
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		rows := allRows
		if cfg.SubsampleRows < 1 {
			k := int(math.Ceil(cfg.SubsampleRows * float64(n)))
			rows = sampleInts(rng, n, k)
		}
		cols := b.allCols
		if cfg.SubsampleCols < 1 {
			k := int(math.Ceil(cfg.SubsampleCols * float64(d)))
			cols = sampleInts(rng, d, k)
		}
		tr := b.build(rows, cols, resid)
		m.Trees = append(m.Trees, tr)
		// Per-row prediction updates write disjoint slots, so the parallel
		// sweep is bit-identical to the sequential loop.
		parallel.DoChunks(n, b.workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				pred[i] += cfg.LearningRate * tr.predict(X[i])
			}
		})
		if opts != nil && opts.OnCheckpoint != nil && opts.CheckpointEvery > 0 &&
			(t+1)%opts.CheckpointEvery == 0 && t+1 < cfg.NumTrees {
			payload, err := json.Marshal(m)
			if err != nil {
				return nil, fmt.Errorf("gb: encode checkpoint: %w", err)
			}
			if err := opts.OnCheckpoint(payload); err != nil {
				return nil, fmt.Errorf("gb: checkpoint after tree %d: %w", t+1, err)
			}
		}
	}
	m.compile()
	return m, nil
}

func predictDimPanic(got, want int) string {
	return fmt.Sprintf("gb: input dim %d, model dim %d", got, want)
}

// Predict returns the model output for one feature vector. Trained or
// deserialized models evaluate through the compiled flat layout — the same
// tree walks and the same accumulation order as PredictReference, so the
// result is bit-identical — without allocating.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != m.Dim {
		panic(predictDimPanic(len(x), m.Dim))
	}
	f := m.flat
	if f == nil {
		out := m.Base
		for _, t := range m.Trees {
			out += m.Cfg.LearningRate * t.predict(x)
		}
		return out
	}
	return f.predict(x, m.Base, m.Cfg.LearningRate)
}

// PredictBatch applies Predict to every row, fanning the rows out across
// m.Cfg.Workers goroutines (each row writes only its own output slot).
func (m *Model) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	parallel.DoChunks(len(X), parallel.Workers(m.Cfg.Workers), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.Predict(X[i])
		}
	})
	return out
}

// NumNodes returns the total node count over all trees.
func (m *Model) NumNodes() int {
	total := 0
	for _, t := range m.Trees {
		total += len(t.Nodes)
	}
	return total
}

// MemoryBytes reports the model's resident inference size — the Section 5.7
// accounting that finds GB the smallest estimator. It measures the compiled
// flat layout that Predict actually walks (per-node featID, threshold,
// children, leaf value, plus per-tree root offsets); an uncompiled model
// reports the equivalent cost its flattening would have.
func (m *Model) MemoryBytes() int {
	if m.flat != nil {
		return m.flat.memoryBytes() + 16
	}
	return m.NumNodes()*flatNodeBytes + 4*len(m.Trees) + 16
}

// MarshalJSON / model persistence: models serialize to plain JSON so that
// trained estimators can be shipped next to the data they describe.
func (m *Model) MarshalJSON() ([]byte, error) {
	type alias Model
	return json.Marshal((*alias)(m))
}

// UnmarshalJSON restores a serialized model and recompiles its inference
// fast path (the flat form is derived state, never part of the wire format).
func (m *Model) UnmarshalJSON(data []byte) error {
	type alias Model
	if err := json.Unmarshal(data, (*alias)(m)); err != nil {
		return err
	}
	m.compile()
	return nil
}

// Validate checks the structural invariants a deserialized model must hold
// before Predict may run on it. The builder appends children after their
// parent, so every child index must exceed its parent's — together with the
// in-range checks this guarantees Predict terminates and never indexes out
// of bounds, even on hand-edited or corrupted files.
func (m *Model) Validate() error {
	if m.Dim < 1 {
		return fmt.Errorf("gb: model dim %d, want >= 1", m.Dim)
	}
	if len(m.Trees) == 0 {
		return fmt.Errorf("gb: model has no trees")
	}
	if math.IsNaN(m.Base) || math.IsInf(m.Base, 0) {
		return fmt.Errorf("gb: base prediction %v is not finite", m.Base)
	}
	for ti, t := range m.Trees {
		if t == nil || len(t.Nodes) == 0 {
			return fmt.Errorf("gb: tree %d is empty", ti)
		}
		for ni, n := range t.Nodes {
			if n.Leaf {
				if math.IsNaN(n.Value) || math.IsInf(n.Value, 0) {
					return fmt.Errorf("gb: tree %d node %d: leaf value %v is not finite", ti, ni, n.Value)
				}
				continue
			}
			if n.Feature < 0 || n.Feature >= m.Dim {
				return fmt.Errorf("gb: tree %d node %d: feature %d out of range [0, %d)", ti, ni, n.Feature, m.Dim)
			}
			if math.IsNaN(n.Threshold) {
				return fmt.Errorf("gb: tree %d node %d: NaN threshold", ti, ni)
			}
			for _, child := range []int32{n.Left, n.Right} {
				if child <= int32(ni) || int(child) >= len(t.Nodes) {
					return fmt.Errorf("gb: tree %d node %d: child index %d out of range (%d, %d)", ti, ni, child, ni, len(t.Nodes))
				}
			}
		}
	}
	return nil
}

// sampleInts draws k distinct ints from [0, n) via partial Fisher-Yates,
// returned sorted-free (order is random but deterministic under the rng).
func sampleInts(rng *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := rng.Perm(n)
	return perm[:k]
}
