package gb

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// randRegression builds a synthetic regression problem with enough feature
// interaction to force non-trivial trees.
func randRegression(rng *rand.Rand, n, d int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64() * 10
		}
		X[i] = row
		y[i] = row[0]*3 + row[1%d]*row[2%d]*0.25 + rng.NormFloat64()
	}
	return X, y
}

// TestFlatPredictBitIdentical trains randomized forests across several
// configurations and demands the compiled flat walk reproduce the reference
// per-tree walk bit for bit, on in-distribution and far-out-of-distribution
// inputs alike.
func TestFlatPredictBitIdentical(t *testing.T) {
	cfgs := []Config{
		{NumTrees: 30, LearningRate: 0.2, MaxDepth: 5, MinSamplesLeaf: 2, MaxBins: 32, SubsampleRows: 0.8, SubsampleCols: 0.7, Seed: 1},
		{NumTrees: 7, LearningRate: 0.5, MaxDepth: 1, MinSamplesLeaf: 1, MaxBins: 8, SubsampleRows: 1, SubsampleCols: 1, Seed: 2},
		{NumTrees: 50, LearningRate: 0.07, MaxDepth: 9, MinSamplesLeaf: 5, MaxBins: 64, SubsampleRows: 0.6, SubsampleCols: 0.5, ExactSplits: true, Seed: 3},
	}
	for ci, cfg := range cfgs {
		rng := rand.New(rand.NewSource(int64(100 + ci)))
		X, y := randRegression(rng, 400, 6)
		m, err := Train(X, y, cfg)
		if err != nil {
			t.Fatalf("cfg %d: Train: %v", ci, err)
		}
		if m.flat == nil {
			t.Fatalf("cfg %d: trained model has no compiled forest", ci)
		}
		for trial := 0; trial < 2000; trial++ {
			x := make([]float64, 6)
			for j := range x {
				x[j] = rng.NormFloat64() * 50
			}
			got, want := m.Predict(x), m.PredictReference(x)
			if got != want {
				t.Fatalf("cfg %d trial %d: flat %v != reference %v", ci, trial, got, want)
			}
		}
	}
}

// TestFlatSurvivesRoundTrip checks a JSON round-trip recompiles the fast
// path and preserves bit-identity — the path every loaded snapshot takes.
func TestFlatSurvivesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := randRegression(rng, 200, 4)
	m, err := Train(X, y, Config{NumTrees: 20, LearningRate: 0.15, MaxDepth: 6, MinSamplesLeaf: 2, MaxBins: 32, SubsampleRows: 1, SubsampleCols: 1})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.flat == nil {
		t.Fatal("decoded model has no compiled forest")
	}
	for trial := 0; trial < 500; trial++ {
		x := make([]float64, 4)
		for j := range x {
			x[j] = rng.NormFloat64() * 30
		}
		if got, want := back.Predict(x), m.Predict(x); got != want {
			t.Fatalf("trial %d: decoded %v != original %v", trial, got, want)
		}
	}
}

// TestUncompiledFallback: a hand-assembled model (no compile step) must keep
// predicting through the reference walk.
func TestUncompiledFallback(t *testing.T) {
	m := &Model{
		Cfg:  Config{LearningRate: 0.5},
		Base: 1,
		Dim:  1,
		Trees: []*tree{{Nodes: []node{
			{Feature: 0, Threshold: 0, Left: 1, Right: 2},
			{Leaf: true, Value: -2},
			{Leaf: true, Value: 4},
		}}},
	}
	if got := m.Predict([]float64{-1}); got != 1+0.5*-2 {
		t.Errorf("left leaf: got %v", got)
	}
	if got := m.Predict([]float64{1}); got != 1+0.5*4 {
		t.Errorf("right leaf: got %v", got)
	}
	if got, want := m.MemoryBytes(), 3*flatNodeBytes+4+16; got != want {
		t.Errorf("uncompiled MemoryBytes = %d, want %d", got, want)
	}
	m.compile()
	if m.flat == nil {
		t.Fatal("compile failed on valid hand-built model")
	}
	if got, want := m.MemoryBytes(), 3*flatNodeBytes+4+16; got != want {
		t.Errorf("compiled MemoryBytes = %d, want %d", got, want)
	}
}

// TestCompileRejectsUnfit: structurally unfit forests must yield a nil flat
// form (reference fallback), not a bad compile.
func TestCompileRejectsUnfit(t *testing.T) {
	if f := compileForest(nil); f != nil {
		t.Error("nil trees compiled")
	}
	if f := compileForest([]*tree{nil}); f != nil {
		t.Error("nil tree compiled")
	}
	if f := compileForest([]*tree{{}}); f != nil {
		t.Error("empty tree compiled")
	}
}

// TestPredictIntoMatchesPredict: the batch form is row-for-row identical to
// single-row calls.
func TestPredictIntoMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	X, y := randRegression(rng, 300, 5)
	m, err := Train(X, y, Config{NumTrees: 15, LearningRate: 0.2, MaxDepth: 5, MinSamplesLeaf: 2, MaxBins: 32, SubsampleRows: 1, SubsampleCols: 1})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, len(X))
	m.PredictInto(dst, X)
	for i, x := range X {
		if dst[i] != m.Predict(x) {
			t.Fatalf("row %d: PredictInto %v != Predict %v", i, dst[i], m.Predict(x))
		}
	}
}

// TestPredictZeroAllocs pins the steady-state allocation count of the
// compiled single-row and batch paths at zero.
func TestPredictZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	X, y := randRegression(rng, 300, 5)
	m, err := Train(X, y, Config{NumTrees: 40, LearningRate: 0.1, MaxDepth: 7, MinSamplesLeaf: 2, MaxBins: 32, SubsampleRows: 0.9, SubsampleCols: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	x := X[0]
	if allocs := testing.AllocsPerRun(200, func() {
		m.Predict(x)
	}); allocs != 0 {
		t.Errorf("Predict allocs/op = %v, want 0", allocs)
	}
	dst := make([]float64, 64)
	batch := X[:64]
	if allocs := testing.AllocsPerRun(100, func() {
		m.PredictInto(dst, batch)
	}); allocs != 0 {
		t.Errorf("PredictInto allocs/op = %v, want 0", allocs)
	}
}
