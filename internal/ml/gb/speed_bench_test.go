package gb

import (
	"math/rand"
	"testing"
)

// The flat-vs-reference pair below measures single-query inference the way
// serving sees it: a different feature vector per call (X[i%len(X)], as in
// BenchmarkPredict), so each walk takes a different path through the forest
// and the layouts' cache behavior — not a warmed-up single path — is what's
// being compared. cmd/infbench reuses the same shape for BENCH_infer.json.

func predictBenchModel(b *testing.B) (*Model, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	X, y := randRegression(rng, 2000, 200)
	cfg := DefaultConfig()
	cfg.NumTrees = 100
	m, err := Train(X, y, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m, X
}

func BenchmarkPredictFlat(b *testing.B) {
	m, X := predictBenchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(X[i%len(X)])
	}
}

func BenchmarkPredictReference(b *testing.B) {
	m, X := predictBenchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictReference(X[i%len(X)])
	}
}
