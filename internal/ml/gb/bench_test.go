package gb

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchData(n, d int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		y[i] = 3*row[0] - row[1]*2 + row[d-1]
	}
	return X, y
}

// BenchmarkTrainHistogram measures histogram-split training on a
// feature-vector-sized problem (2000 samples x 200 dims).
func BenchmarkTrainHistogram(b *testing.B) {
	X, y := benchData(2_000, 200)
	cfg := DefaultConfig()
	cfg.NumTrees = 30
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(X, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainExact measures the exact-split ablation path at a reduced
// size (it is the slow reference).
func BenchmarkTrainExact(b *testing.B) {
	X, y := benchData(500, 50)
	cfg := DefaultConfig()
	cfg.NumTrees = 10
	cfg.ExactSplits = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(X, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict measures single-vector inference latency, the per-query
// cost a query optimizer would pay.
func BenchmarkPredict(b *testing.B) {
	X, y := benchData(2_000, 200)
	cfg := DefaultConfig()
	cfg.NumTrees = 100
	m, err := Train(X, y, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(X[i%len(X)])
	}
}

// BenchmarkTrainWorkers compares sequential (Workers=1) against parallel
// histogram training on the same problem. Results are bit-identical across
// worker counts; only wall-clock should differ on multi-core hardware.
func BenchmarkTrainWorkers(b *testing.B) {
	X, y := benchData(2_000, 200)
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.NumTrees = 30
			cfg.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Train(X, y, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
