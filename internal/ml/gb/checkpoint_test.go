package gb

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// trainInterrupted trains with checkpointing and cancels after the
// cancelAfter-th checkpoint, returning the last durable payload.
func trainInterrupted(t *testing.T, X [][]float64, y []float64, cfg Config, every, cancelAfter int) []byte {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last []byte
	seen := 0
	_, err := TrainCtx(ctx, X, y, cfg, &TrainOpts{
		CheckpointEvery: every,
		OnCheckpoint: func(payload []byte) error {
			last = append([]byte(nil), payload...)
			if seen++; seen == cancelAfter {
				cancel()
			}
			return nil
		},
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("interrupted TrainCtx error = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted TrainCtx error = %v, want to wrap context.Canceled", err)
	}
	if last == nil {
		t.Fatal("no checkpoint was emitted before cancellation")
	}
	return last
}

// TestCheckpointResumeBitIdentical is the per-model-kind round-trip of the
// resumable-training contract: save mid-training, cancel, resume from the
// payload, and the finished ensemble must match an uninterrupted run
// exactly (RNG replay makes the subsampling draws line up).
func TestCheckpointResumeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := makeRegression(rng, 600, 4)
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.NumTrees = 30

	baseline, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck := trainInterrupted(t, X, y, cfg, 5, 2) // canceled after tree 10
	resumed, err := TrainCtx(context.Background(), X, y, cfg, &TrainOpts{Resume: ck})
	if err != nil {
		t.Fatal(err)
	}

	want, _ := json.Marshal(baseline)
	got, _ := json.Marshal(resumed)
	if string(want) != string(got) {
		t.Fatal("resumed model differs from the uninterrupted ensemble")
	}
	Xt, yt := makeRegression(rng, 100, 4)
	_ = yt
	for i := range Xt {
		if baseline.Predict(Xt[i]) != resumed.Predict(Xt[i]) {
			t.Fatalf("prediction %d diverged after resume", i)
		}
	}
}

func TestCheckpointResumeRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	X, y := makeRegression(rng, 300, 3)
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.NumTrees = 12
	ck := trainInterrupted(t, X, y, cfg, 4, 1)

	other := cfg
	other.LearningRate = cfg.LearningRate / 2
	if _, err := TrainCtx(context.Background(), X, y, other, &TrainOpts{Resume: ck}); err == nil {
		t.Error("resume with a different Config succeeded, want error")
	}
	if _, err := TrainCtx(context.Background(), X, y, cfg, &TrainOpts{Resume: []byte("garbage")}); err == nil {
		t.Error("resume from garbage succeeded, want error")
	}
}

func TestOnCheckpointErrorAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X, y := makeRegression(rng, 300, 3)
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.NumTrees = 12
	boom := fmt.Errorf("disk on fire")
	_, err := TrainCtx(context.Background(), X, y, cfg, &TrainOpts{
		CheckpointEvery: 4,
		OnCheckpoint:    func([]byte) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("TrainCtx error = %v, want the OnCheckpoint error", err)
	}
}
