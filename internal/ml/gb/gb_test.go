package gb

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// makeRegression builds a noiseless synthetic regression problem with
// piecewise and interaction structure that trees capture well.
func makeRegression(rng *rand.Rand, n, d int) (X [][]float64, y []float64) {
	X = make([][]float64, n)
	y = make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		target := 3 * row[0]
		if row[1] > 0.5 {
			target += 2
		}
		if d > 2 && row[2] > 0.7 && row[0] < 0.3 {
			target -= 1.5
		}
		y[i] = target
	}
	return X, y
}

func mse(m *Model, X [][]float64, y []float64) float64 {
	var s float64
	for i := range X {
		diff := m.Predict(X[i]) - y[i]
		s += diff * diff
	}
	return s / float64(len(X))
}

func TestTrainFitsPiecewiseFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := makeRegression(rng, 2000, 5)
	cfg := DefaultConfig()
	cfg.Seed = 1
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	Xt, yt := makeRegression(rng, 500, 5)
	if got := mse(m, Xt, yt); got > 0.05 {
		t.Errorf("test MSE = %v, want < 0.05", got)
	}
}

func TestMoreTreesFitBetter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := makeRegression(rng, 1500, 4)
	cfg := DefaultConfig()
	cfg.Seed = 2
	cfg.SubsampleRows, cfg.SubsampleCols = 1, 1

	cfg.NumTrees = 5
	small, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NumTrees = 80
	big, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mse(big, X, y) >= mse(small, X, y) {
		t.Errorf("80 trees (mse %v) should beat 5 trees (mse %v) on train",
			mse(big, X, y), mse(small, X, y))
	}
}

func TestSingleLeafDegenerateCase(t *testing.T) {
	// With MinSamplesLeaf bigger than the data, every tree is one leaf and
	// the model predicts the target mean.
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{10, 20, 30, 40}
	cfg := DefaultConfig()
	cfg.MinSamplesLeaf = 100
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{99}); math.Abs(got-25) > 1e-9 {
		t.Errorf("degenerate model predicts %v, want 25", got)
	}
}

func TestConstantTarget(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	y := []float64{7, 7, 7, 7}
	cfg := DefaultConfig()
	cfg.Seed = 3
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0, 0}); math.Abs(got-7) > 1e-9 {
		t.Errorf("constant target predicted as %v", got)
	}
}

func TestConstantFeaturesNoSplit(t *testing.T) {
	// All-constant features must not crash split search; the model falls
	// back to the mean.
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []float64{1, 2, 3, 4}
	cfg := DefaultConfig()
	cfg.MinSamplesLeaf = 1
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{1, 1}); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("got %v, want 2.5", got)
	}
}

func TestExactSplitsMatchHistogramOnBinAligned(t *testing.T) {
	// When feature values land exactly on bin representatives, exact and
	// histogram split search must find equally good trees. We compare
	// training MSE rather than identical structure.
	rng := rand.New(rand.NewSource(4))
	n := 800
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(rng.Intn(16)) / 16 // 16 distinct values < 64 bins
		w := float64(rng.Intn(16)) / 16
		X[i] = []float64{v, w}
		y[i] = 2*v - w
	}
	cfg := DefaultConfig()
	cfg.Seed = 4
	cfg.SubsampleRows, cfg.SubsampleCols = 1, 1
	cfg.NumTrees = 40

	hist, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ExactSplits = true
	exact, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mh, me := mse(hist, X, y), mse(exact, X, y)
	if mh > 2*me+1e-6 && mh > 1e-4 {
		t.Errorf("histogram mse %v far worse than exact mse %v", mh, me)
	}
}

func TestDeterminismUnderSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := makeRegression(rng, 500, 4)
	cfg := DefaultConfig()
	cfg.Seed = 42
	m1, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := X[i]
		if m1.Predict(x) != m2.Predict(x) {
			t.Fatal("same seed must give identical models")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	X := [][]float64{{1}}
	y := []float64{1}
	bad := []Config{
		{NumTrees: 0, LearningRate: 0.1, MaxDepth: 3, MinSamplesLeaf: 1, MaxBins: 8, SubsampleRows: 1, SubsampleCols: 1},
		{NumTrees: 1, LearningRate: 0, MaxDepth: 3, MinSamplesLeaf: 1, MaxBins: 8, SubsampleRows: 1, SubsampleCols: 1},
		{NumTrees: 1, LearningRate: 0.1, MaxDepth: 0, MinSamplesLeaf: 1, MaxBins: 8, SubsampleRows: 1, SubsampleCols: 1},
		{NumTrees: 1, LearningRate: 0.1, MaxDepth: 3, MinSamplesLeaf: 0, MaxBins: 8, SubsampleRows: 1, SubsampleCols: 1},
		{NumTrees: 1, LearningRate: 0.1, MaxDepth: 3, MinSamplesLeaf: 1, MaxBins: 1, SubsampleRows: 1, SubsampleCols: 1},
		{NumTrees: 1, LearningRate: 0.1, MaxDepth: 3, MinSamplesLeaf: 1, MaxBins: 8, SubsampleRows: 0, SubsampleCols: 1},
		{NumTrees: 1, LearningRate: 0.1, MaxDepth: 3, MinSamplesLeaf: 1, MaxBins: 8, SubsampleRows: 1, SubsampleCols: 2},
	}
	for i, cfg := range bad {
		if _, err := Train(X, y, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Train(nil, nil, DefaultConfig()); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train([][]float64{{1}, {2}}, []float64{1}, DefaultConfig()); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Train([][]float64{{1, 2}, {3}}, []float64{1, 2}, DefaultConfig()); err == nil {
		t.Error("ragged features accepted")
	}
}

func TestPredictDimPanic(t *testing.T) {
	m, err := Train([][]float64{{1, 2}, {3, 4}}, []float64{1, 2}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input dim")
		}
	}()
	m.Predict([]float64{1})
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := makeRegression(rng, 300, 3)
	cfg := DefaultConfig()
	cfg.Seed = 6
	cfg.NumTrees = 10
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if got, want := back.Predict(X[i]), m.Predict(X[i]); got != want {
			t.Fatalf("restored model predicts %v, original %v", got, want)
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := makeRegression(rng, 300, 3)
	cfg := DefaultConfig()
	cfg.NumTrees = 10
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() == 0 {
		t.Error("trained model has no nodes")
	}
	if m.MemoryBytes() <= 0 {
		t.Error("MemoryBytes not positive")
	}
	// Section 5.7: GB stays small — single-digit kilobytes at modest tree
	// counts is the paper's observation; allow generous slack.
	if m.MemoryBytes() > 10<<20 {
		t.Errorf("GB model unexpectedly large: %d bytes", m.MemoryBytes())
	}
}

func TestPredictBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	X, y := makeRegression(rng, 100, 3)
	cfg := DefaultConfig()
	cfg.NumTrees = 5
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := m.PredictBatch(X[:10])
	for i, p := range batch {
		if p != m.Predict(X[i]) {
			t.Fatal("PredictBatch differs from Predict")
		}
	}
}

func TestSampleInts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	got := sampleInts(rng, 10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad sample %v", got)
		}
		seen[v] = true
	}
	if got := sampleInts(rng, 3, 10); len(got) != 3 {
		t.Errorf("oversized k should clamp to n; got %v", got)
	}
}

func TestValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := makeRegression(rng, 200, 3)
	cfg := DefaultConfig()
	cfg.NumTrees = 5
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("trained model fails validation: %v", err)
	}

	leaf := func(v float64) *tree { return &tree{Nodes: []node{{Leaf: true, Value: v}}} }
	bad := []struct {
		name string
		m    Model
	}{
		{"zero dim", Model{Dim: 0, Trees: []*tree{leaf(1)}}},
		{"no trees", Model{Dim: 1}},
		{"nil tree", Model{Dim: 1, Trees: []*tree{nil}}},
		{"empty tree", Model{Dim: 1, Trees: []*tree{{}}}},
		{"nan base", Model{Dim: 1, Base: math.NaN(), Trees: []*tree{leaf(1)}}},
		{"nan leaf", Model{Dim: 1, Trees: []*tree{leaf(math.NaN())}}},
		{"inf leaf", Model{Dim: 1, Trees: []*tree{leaf(math.Inf(1))}}},
		{"nan threshold", Model{Dim: 1, Trees: []*tree{{Nodes: []node{
			{Feature: 0, Threshold: math.NaN(), Left: 1, Right: 2}, {Leaf: true}, {Leaf: true}}}}}},
		{"feature out of range", Model{Dim: 1, Trees: []*tree{{Nodes: []node{
			{Feature: 3, Threshold: 0, Left: 1, Right: 2}, {Leaf: true}, {Leaf: true}}}}}},
		{"child before parent", Model{Dim: 1, Trees: []*tree{{Nodes: []node{
			{Leaf: true}, {Feature: 0, Left: 0, Right: 2}, {Leaf: true}}}}}},
		{"child out of range", Model{Dim: 1, Trees: []*tree{{Nodes: []node{
			{Feature: 0, Left: 1, Right: 5}, {Leaf: true}}}}}},
	}
	for _, b := range bad {
		if err := b.m.Validate(); err == nil {
			t.Errorf("%s: validated", b.name)
		}
	}
}

func TestValidateSurvivesJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X, y := makeRegression(rng, 150, 2)
	cfg := DefaultConfig()
	cfg.NumTrees = 3
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped model fails validation: %v", err)
	}
}
