package gb

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// marshalNormalized serializes a model with the Workers knob zeroed so that
// two models trained under different parallelism compare structurally.
func marshalNormalized(t *testing.T, m *Model) string {
	t.Helper()
	clone := *m
	clone.Cfg.Workers = 0
	data, err := json.Marshal(&clone)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestTrainDeterministicAcrossWorkers: the tentpole guarantee for gb —
// training is bit-identical (same trees, thresholds, leaf values, split
// choices) for every Workers value, on both the histogram and the exact
// split paths.
func TestTrainDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	X, y := makeRegression(rng, 1200, 6)

	for _, exact := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Seed = 11
		cfg.NumTrees = 12
		cfg.ExactSplits = exact
		cfg.SubsampleRows, cfg.SubsampleCols = 0.8, 0.8

		cfg.Workers = 1
		seq, err := Train(X, y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := marshalNormalized(t, seq)

		for _, workers := range []int{0, 2, 4, 8} {
			cfg.Workers = workers
			par, err := Train(X, y, cfg)
			if err != nil {
				t.Fatalf("exact=%v workers=%d: %v", exact, workers, err)
			}
			if got := marshalNormalized(t, par); got != want {
				t.Errorf("exact=%v workers=%d: trained model differs from sequential", exact, workers)
			}
		}
	}
}

// TestPredictBatchMatchesPredict: batch prediction fans rows across workers
// but must return exactly the per-row Predict values.
func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	X, y := makeRegression(rng, 800, 5)
	cfg := DefaultConfig()
	cfg.Seed = 12
	cfg.Workers = 4
	m, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := m.PredictBatch(X)
	for i := range X {
		if batch[i] != m.Predict(X[i]) {
			t.Fatalf("row %d: PredictBatch %v, Predict %v", i, batch[i], m.Predict(X[i]))
		}
	}
}
