package gb

import "math"

// This file implements the compiled inference fast path: the trained forest
// is flattened once — at the end of training or at decode time — into a
// single contiguous packed-node layout, and Predict walks that layout
// iteratively instead of pointer-chasing per-tree node slices. The
// serialization format is unchanged (Model.Trees remains the only persisted
// representation); the flat form is a derived, in-memory artifact.
//
// The compiled walk is bit-identical to the reference walk: node traversal
// takes the same comparisons against the same thresholds, and the ensemble
// accumulates in the same order with the same FMA-free expression
// (out += LearningRate * leaf, tree by tree), so serving caches, canaries,
// and replay reports see byte-for-byte identical estimates.

// flatNode is one packed node of the compiled layout. Internal nodes carry
// feat >= 0, the split threshold in thr, and their left child's absolute id
// in left; the right child always sits at left+1 (the compiler places child
// pairs adjacently). Leaves carry feat == -1 and their value in thr.
//
// Descent touches every field of exactly one node per step, so the layout is
// packed per node rather than per field: 16 bytes (vs 40 in the []*tree
// arena form), four nodes per cache line, one line per visited node. A
// struct-of-arrays split would spread each visit over four lines — worse,
// not better, for a pointer-free random walk.
type flatNode struct {
	thr  float64
	feat int32
	left int32
}

// flatNodeBytes is the per-node cost of the compiled layout: threshold or
// leaf value (8), feature id (4), left-child id (4).
const flatNodeBytes = 16

// flatForest is the compiled form of a trained ensemble: all trees share one
// node array; roots[t] is tree t's root id.
type flatForest struct {
	nodes []flatNode
	roots []int32
}

// compileForest flattens trees into a flatForest. Nodes are re-laid in
// breadth-first order with each internal node's children adjacent (right =
// left+1) — the id permutation changes nothing about which comparisons run,
// and BFS keeps every tree's top levels, the part every walk crosses, packed
// in its first few cache lines. It returns nil when the forest is empty or
// structurally unfit for compilation (nil/empty trees, feature ids outside
// int32) — callers then keep the reference path, and Validate still reports
// the corruption to loaders.
func compileForest(trees []*tree) *flatForest {
	total := 0
	for _, t := range trees {
		if t == nil || len(t.Nodes) == 0 {
			return nil
		}
		total += len(t.Nodes)
	}
	if total == 0 || total > math.MaxInt32 {
		return nil
	}
	f := &flatForest{
		nodes: make([]flatNode, total),
		roots: make([]int32, len(trees)),
	}
	next := int32(0)
	var queue []int32 // old ids, reused across trees
	for ti, t := range trees {
		f.roots[ti] = next
		limit := next + int32(len(t.Nodes))
		// slot[old] is the compiled id assigned to old, -1 until assigned.
		// The sentinel doubles as the structural check: compile runs on
		// decoded bytes before Validate, so a corrupt tree (child id out of
		// range, two parents claiming one child, an edge back to an assigned
		// node) must land in the reference fallback, never index out of
		// bounds or build a layout that walks differently than Trees.
		slot := make([]int32, len(t.Nodes))
		for i := range slot {
			slot[i] = -1
		}
		slot[0] = next
		next++
		queue = append(queue[:0], 0)
		for len(queue) > 0 {
			old := queue[0]
			queue = queue[1:]
			n := &t.Nodes[old]
			j := slot[old]
			if n.Leaf {
				f.nodes[j] = flatNode{thr: n.Value, feat: -1}
				continue
			}
			if n.Feature < 0 || n.Feature > math.MaxInt32 || next+2 > limit {
				return nil
			}
			l, r := n.Left, n.Right
			if l < 1 || int(l) >= len(t.Nodes) || r < 1 || int(r) >= len(t.Nodes) ||
				slot[l] != -1 || slot[r] != -1 || l == r {
				return nil
			}
			slot[l] = next
			slot[r] = next + 1
			f.nodes[j] = flatNode{thr: n.Threshold, feat: int32(n.Feature), left: next}
			next += 2
			queue = append(queue, l, r)
		}
		// Unreached trailing slots (nodes no edge points at) stay zeroed and
		// unreachable from the walk; account for them so the next tree's ids
		// start where this tree's block ends.
		next = limit
	}
	return f
}

// predictLanes is how many trees predict walks in lockstep. One tree's walk
// is a serial chain of dependent loads — the CPU cannot start fetching a
// child before the parent arrives — so a naive tree-by-tree loop is bound by
// memory latency, not bandwidth. Interleaving W trees keeps W independent
// chains in flight per pass, which is where the fast path's speedup actually
// comes from; the packed layout keeps each of those loads to one cache line.
const predictLanes = 8

// predict walks every tree of the flat layout and accumulates the ensemble
// in training order: out = base + Σ lr·leaf, the same FMA-free expression as
// the reference walk, so the result is bit-identical — lanes only reorder
// the loads, never the accumulation, because leaf ids are collected per lane
// and summed in tree index order after the group finishes. The node
// comparison matches tree.predict exactly: x[feat] <= threshold goes left,
// everything else (including NaN) goes right, with the right child as the
// default so the step compiles to a conditional move.
func (f *flatForest) predict(x []float64, base, lr float64) float64 {
	nodes := f.nodes
	roots := f.roots
	out := base
	var idx [predictLanes]int32
	for t := 0; t < len(roots); t += predictLanes {
		w := len(roots) - t
		if w > predictLanes {
			w = predictLanes
		}
		copy(idx[:w], roots[t:t+w])
		for active := w; active > 0; {
			active = 0
			for l := 0; l < w; l++ {
				n := nodes[idx[l]]
				if n.feat < 0 {
					continue
				}
				next := n.left + 1
				if x[n.feat] <= n.thr {
					next = n.left
				}
				idx[l] = next
				active++
			}
		}
		for l := 0; l < w; l++ {
			out += lr * nodes[idx[l]].thr
		}
	}
	return out
}

// memoryBytes is the compiled layout's resident size: the packed node array
// plus one root offset per tree.
func (f *flatForest) memoryBytes() int {
	return len(f.nodes)*flatNodeBytes + len(f.roots)*4
}

// compile (re)builds the model's flat forest from its serialized tree form.
// It runs at the end of training and after decoding, so any model obtained
// from Train/TrainCtx or UnmarshalJSON predicts through the fast path.
// Hand-assembled models without a compiled form fall back to the reference
// walk transparently.
func (m *Model) compile() {
	m.flat = compileForest(m.Trees)
}

// PredictReference evaluates the model through the serialization-format
// per-tree walk — the pre-flattening code path, kept as the ground truth for
// the differential tests and the before/after inference benchmark.
func (m *Model) PredictReference(x []float64) float64 {
	if len(x) != m.Dim {
		panic(predictDimPanic(len(x), m.Dim))
	}
	out := m.Base
	for _, t := range m.Trees {
		out += m.Cfg.LearningRate * t.predict(x)
	}
	return out
}

// PredictInto writes the model output for every row of X into dst, which
// must hold at least len(X) entries. It is the allocation-free batch form of
// Predict: rows evaluate sequentially through the compiled layout, so the
// outputs are bit-identical to per-row Predict calls (and to PredictBatch,
// which is its parallel, allocating cousin).
func (m *Model) PredictInto(dst []float64, X [][]float64) {
	_ = dst[:len(X)]
	for i, x := range X {
		dst[i] = m.Predict(x)
	}
}
