package linreg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRecoversLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trueW := []float64{2, -3, 0.5}
	const bias = 1.25
	n := 500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		X[i] = row
		y[i] = bias
		for j := range row {
			y[i] += trueW[j] * row[j]
		}
	}
	m, err := Train(X, y, Config{Lambda: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	for j := range trueW {
		if math.Abs(m.W[j]-trueW[j]) > 1e-6 {
			t.Errorf("W[%d] = %v, want %v", j, m.W[j], trueW[j])
		}
	}
	if math.Abs(m.Bias-bias) > 1e-6 {
		t.Errorf("Bias = %v, want %v", m.Bias, bias)
	}
}

func TestRidgeShrinksCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64()
		X[i] = []float64{v}
		y[i] = 5 * v
	}
	weak, err := Train(X, y, Config{Lambda: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := Train(X, y, Config{Lambda: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(strong.W[0]) >= math.Abs(weak.W[0]) {
		t.Errorf("ridge did not shrink: weak %v, strong %v", weak.W[0], strong.W[0])
	}
}

func TestDegenerateFeatures(t *testing.T) {
	// Perfectly collinear features would break OLS; the ridge keeps the
	// system solvable.
	X := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	y := []float64{2, 4, 6, 8}
	m, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{5, 5}); math.Abs(p-10) > 0.5 {
		t.Errorf("collinear prediction %v, want ~10", p)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Train(nil, nil, DefaultConfig()); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, DefaultConfig()); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Train([][]float64{{1, 2}, {3}}, []float64{1, 2}, DefaultConfig()); err == nil {
		t.Error("ragged features accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1}, Config{Lambda: 0}); err == nil {
		t.Error("zero lambda accepted")
	}
	if _, err := Train([][]float64{{}}, []float64{1}, DefaultConfig()); err == nil {
		t.Error("zero-dim features accepted")
	}
}

func TestPredictDimPanic(t *testing.T) {
	m, err := Train([][]float64{{1, 2}, {2, 1}}, []float64{1, 2}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input dim")
		}
	}()
	m.Predict([]float64{1})
}

func TestMemoryBytes(t *testing.T) {
	m, err := Train([][]float64{{1, 2, 3}, {3, 2, 1}}, []float64{1, 2}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.MemoryBytes() != 4*8 {
		t.Errorf("MemoryBytes = %d, want 32", m.MemoryBytes())
	}
}

// TestCholeskyAgainstBruteForce checks the solver on random SPD systems.
func TestCholeskyAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(5)
		// Build SPD A = M Mᵀ + I and a random solution w.
		M := make([]float64, k*k)
		for i := range M {
			M[i] = rng.NormFloat64()
		}
		A := make([]float64, k*k)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				var s float64
				for p := 0; p < k; p++ {
					s += M[i*k+p] * M[j*k+p]
				}
				A[i*k+j] = s
				if i == j {
					A[i*k+j] += 1
				}
			}
		}
		want := make([]float64, k)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, k)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				b[i] += A[i*k+j] * want[j]
			}
		}
		got, err := solveCholesky(A, b, k)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
