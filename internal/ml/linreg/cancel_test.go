package linreg

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// Ridge regression is closed-form — no checkpoint to round-trip — so its
// resumable-training contract is just clean cancellation plus determinism:
// an aborted fit reports ErrCanceled and a restarted fit reproduces the
// uninterrupted solution exactly.
func TestTrainCtxCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	X := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = 3*X[i][0] - X[i][1]
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := TrainCtx(ctx, X, y, DefaultConfig())
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainCtx error = %v, want ErrCanceled wrapping context.Canceled", err)
	}

	a, err := Train(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainCtx(context.Background(), X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Bias != b.Bias {
		t.Fatalf("restarted fit bias %v != %v", b.Bias, a.Bias)
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatalf("restarted fit weight %d: %v != %v", i, b.W[i], a.W[i])
		}
	}
}
