// Package linreg implements ridge-regularized linear regression — one of
// the "simpler models" the paper reports having tested and excluded because
// "their estimates are worse by a significant factor" (end of Section 2.2).
// It is included so that claim is reproducible: the harness's model-zoo
// comparison shows linear regression trailing GB and NN by a wide margin on
// every QFT.
//
// Fitting solves the ridge normal equations (XᵀX + λI)w = Xᵀy by Cholesky
// decomposition, all in float64 on the stdlib.
package linreg

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// ErrCanceled reports that fitting was aborted by its context; the returned
// error also wraps the context's own error.
var ErrCanceled = errors.New("linreg: training canceled")

// Config holds the ridge hyperparameters.
type Config struct {
	// Lambda is the L2 regularization strength. Must be > 0 (it also keeps
	// the normal equations well conditioned).
	Lambda float64
}

// DefaultConfig uses a mild ridge penalty.
func DefaultConfig() Config { return Config{Lambda: 1e-3} }

// Model is a fitted linear regressor y = w·x + b.
type Model struct {
	W    []float64
	Bias float64
}

// Train fits the model on row-major X and targets y.
func Train(X [][]float64, y []float64, cfg Config) (*Model, error) {
	return TrainCtx(context.Background(), X, y, cfg)
}

// TrainCtx is Train with cancellation, checked periodically during the
// normal-equation accumulation (the only loop whose cost grows with the
// sample count). The closed-form solve has no intermediate state worth
// checkpointing: an aborted fit simply restarts.
func TrainCtx(ctx context.Context, X [][]float64, y []float64, cfg Config) (*Model, error) {
	n := len(X)
	if n == 0 {
		return nil, fmt.Errorf("linreg: no training samples")
	}
	if len(y) != n {
		return nil, fmt.Errorf("linreg: %d samples but %d targets", n, len(y))
	}
	d := len(X[0])
	if d == 0 {
		return nil, fmt.Errorf("linreg: zero-dimensional features")
	}
	if cfg.Lambda <= 0 {
		return nil, fmt.Errorf("linreg: Lambda = %v, want > 0", cfg.Lambda)
	}
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("linreg: sample %d has %d features, want %d", i, len(row), d)
		}
	}

	// Augment with a bias column: solve over d+1 coefficients.
	k := d + 1
	// A = XᵀX + λI (bias unregularized), b = Xᵀy.
	A := make([]float64, k*k)
	bvec := make([]float64, k)
	row := make([]float64, k)
	for i := 0; i < n; i++ {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("%w: %w", ErrCanceled, err)
			}
		}
		copy(row, X[i])
		row[d] = 1 // bias term
		for a := 0; a < k; a++ {
			va := row[a]
			if va == 0 {
				continue
			}
			bvec[a] += va * y[i]
			for c := a; c < k; c++ {
				A[a*k+c] += va * row[c]
			}
		}
	}
	// Mirror the upper triangle and add the ridge.
	for a := 0; a < k; a++ {
		for c := 0; c < a; c++ {
			A[a*k+c] = A[c*k+a]
		}
	}
	for a := 0; a < d; a++ { // bias (index d) stays unregularized
		A[a*k+a] += cfg.Lambda * float64(n)
	}

	w, err := solveCholesky(A, bvec, k)
	if err != nil {
		return nil, err
	}
	return &Model{W: w[:d], Bias: w[d]}, nil
}

// Predict returns w·x + b.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != len(m.W) {
		panic(fmt.Sprintf("linreg: input dim %d, model dim %d", len(x), len(m.W)))
	}
	out := m.Bias
	for i, w := range m.W {
		out += w * x[i]
	}
	return out
}

// PredictInto writes w·x + b for every row of X into dst (at least len(X)
// long). Predict is already allocation-free; this is the batch form the
// pooled estimator path calls uniformly across model kinds.
func (m *Model) PredictInto(dst []float64, X [][]float64) {
	_ = dst[:len(X)]
	for i, x := range X {
		dst[i] = m.Predict(x)
	}
}

// MemoryBytes reports the model size (8 bytes per coefficient).
func (m *Model) MemoryBytes() int { return (len(m.W) + 1) * 8 }

// solveCholesky solves A w = b for symmetric positive-definite A (k x k,
// row-major) via in-place Cholesky factorization.
func solveCholesky(A, b []float64, k int) ([]float64, error) {
	// Factor A = L Lᵀ.
	L := make([]float64, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j <= i; j++ {
			sum := A[i*k+j]
			for p := 0; p < j; p++ {
				sum -= L[i*k+p] * L[j*k+p]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("linreg: matrix not positive definite (pivot %d = %v)", i, sum)
				}
				L[i*k+i] = math.Sqrt(sum)
			} else {
				L[i*k+j] = sum / L[j*k+j]
			}
		}
	}
	// Forward substitution: L z = b.
	z := make([]float64, k)
	for i := 0; i < k; i++ {
		sum := b[i]
		for p := 0; p < i; p++ {
			sum -= L[i*k+p] * z[p]
		}
		z[i] = sum / L[i*k+i]
	}
	// Back substitution: Lᵀ w = z.
	w := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		sum := z[i]
		for p := i + 1; p < k; p++ {
			sum -= L[p*k+i] * w[p]
		}
		w[i] = sum / L[i*k+i]
	}
	return w, nil
}
