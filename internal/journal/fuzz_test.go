package journal

import (
	"encoding/json"
	"testing"

	"qfe/internal/store"
)

// FuzzJournalRead throws arbitrary bytes at the segment scanner — the
// routine both crash recovery and the offline reader stand on — and checks
// the classification invariants: every input lands in exactly one of clean /
// truncated / corrupt, the valid prefix never exceeds the input, and
// re-scanning the valid prefix is clean and yields the same records (which
// is precisely what makes torn-tail truncation a safe repair).
func FuzzJournalRead(f *testing.F) {
	var clean []byte
	for i := 0; i < 3; i++ {
		payload, err := json.Marshal(Record{
			UnixMicros: int64(i) + 1,
			SQL:        "SELECT count(*) FROM t WHERE a >= 1",
			Estimate:   2,
			Actual:     1,
			HasActual:  true,
		})
		if err != nil {
			f.Fatal(err)
		}
		clean = store.AppendFrame(clean, store.PayloadJournal, payload)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-5]) // torn tail
	f.Add([]byte{})
	f.Add([]byte("QFES, but not really"))
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x40 // mid-file bit rot
	f.Add(flipped)
	// A checksummed frame of the right kind whose payload is not a Record.
	f.Add(store.AppendFrame(nil, store.PayloadJournal, []byte("[1,2,3]")))

	f.Fuzz(func(t *testing.T, data []byte) {
		scan := scanBytes(data)
		if scan.valid < 0 || scan.valid > scan.total || scan.total != int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", scan.valid, len(data))
		}
		if scan.truncated && scan.corrupt {
			t.Fatal("segment classified both truncated and corrupt")
		}
		if !scan.truncated && !scan.corrupt && scan.valid != scan.total {
			t.Fatalf("clean scan stopped at %d of %d bytes", scan.valid, scan.total)
		}
		if (scan.truncated || scan.corrupt) && scan.valid == scan.total {
			t.Fatal("damaged scan claims every byte is valid")
		}
		re := scanBytes(data[:scan.valid])
		if re.truncated || re.corrupt {
			t.Fatalf("valid prefix re-scans as damaged (truncated=%v corrupt=%v)", re.truncated, re.corrupt)
		}
		if len(re.records) != len(scan.records) {
			t.Fatalf("valid prefix yields %d records, original scan %d", len(re.records), len(scan.records))
		}
	})
}
