package journal_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"qfe/internal/journal"
	"qfe/internal/store"
	"qfe/internal/testutil"
)

// testOptions returns options that make the journal fully deterministic for
// tests: no timer-driven flushes (FlushEvery is an hour, FlushBatch larger
// than any test batch), so the only commits are the ones Sync forces, and
// the only rotations are the ones the options ask for.
func testOptions(mutate func(*journal.Options)) journal.Options {
	opts := journal.Options{
		SegmentBytes: 1 << 30,
		SegmentAge:   -1,
		Retain:       -1,
		Queue:        1024,
		FlushBatch:   4096,
		FlushEvery:   time.Hour,
	}
	if mutate != nil {
		mutate(&opts)
	}
	return opts
}

// testRec builds a fully-populated record keyed by i: UnixMicros is i+1, so
// i == 0 still round-trips (Append stamps only a zero timestamp).
func testRec(i int) journal.Record {
	return journal.Record{
		UnixMicros:    int64(i) + 1,
		SQL:           fmt.Sprintf("SELECT count(*) FROM t WHERE a >= %d", i),
		Fingerprint:   fmt.Sprintf("fp-%04d", i),
		Model:         "m",
		Generation:    7,
		Estimate:      float64(i) * 2,
		Actual:        float64(i),
		HasActual:     true,
		LatencyMicros: 5,
	}
}

func mustOpen(t *testing.T, dir string, opts journal.Options) *journal.Journal {
	t.Helper()
	jnl, err := journal.Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { jnl.Close() })
	return jnl
}

func appendAll(t *testing.T, jnl *journal.Journal, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		if !jnl.Append(testRec(i)) {
			t.Fatalf("Append(%d) shed unexpectedly", i)
		}
	}
}

// segBytes renders records as the exact frame stream the writer produces,
// for tests that build damaged segments by hand.
func segBytes(t *testing.T, recs ...journal.Record) []byte {
	t.Helper()
	var buf []byte
	for _, r := range recs {
		payload, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf = store.AppendFrame(buf, store.PayloadJournal, payload)
	}
	return buf
}

func TestAppendSyncReadBackRoundtrip(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	jnl := mustOpen(t, dir, testOptions(nil))
	appendAll(t, jnl, 0, 10)
	if err := jnl.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	s := jnl.Stats()
	if s.Appended != 10 || s.Persisted != 10 || s.Shed != 0 || s.FlushErrors != 0 {
		t.Fatalf("stats after sync = %+v, want 10 appended+persisted, none shed", s)
	}
	if s.ActiveRecords != 10 || s.ActiveBytes <= 0 {
		t.Fatalf("active segment = %d records / %d bytes, want 10 / >0", s.ActiveRecords, s.ActiveBytes)
	}
	if err := jnl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, rep, err := journal.Read(nil, dir)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if rep.Segments != 1 || rep.TornTails != 0 || rep.CorruptSegments != 0 {
		t.Fatalf("read report = %+v, want 1 clean segment", rep)
	}
	if len(recs) != 10 {
		t.Fatalf("read back %d records, want 10", len(recs))
	}
	for i, rec := range recs {
		if !reflect.DeepEqual(rec, testRec(i)) {
			t.Fatalf("record %d = %+v, want %+v", i, rec, testRec(i))
		}
	}
	// Record 0 has Actual 0 with HasActual set: a genuine empty result must
	// survive the omitempty JSON encoding distinguishable from "no feedback".
	if !recs[0].HasActual || recs[0].Actual != 0 {
		t.Fatalf("zero-actual record round-tripped as %+v; lost the has-actual bit", recs[0])
	}
}

func TestReopenSealsAndContinuesNumbering(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	jnl := mustOpen(t, dir, testOptions(nil))
	appendAll(t, jnl, 0, 3)
	if err := jnl.Sync(); err != nil {
		t.Fatal(err)
	}
	jnl.Close()

	jnl2 := mustOpen(t, dir, testOptions(nil))
	if s := jnl2.Stats(); s.SealedSegments != 1 {
		t.Fatalf("after reopen: %d sealed segments, want 1", s.SealedSegments)
	}
	sealed, err := jnl2.ReadSealed()
	if err != nil || len(sealed) != 3 {
		t.Fatalf("ReadSealed = %d records (err %v), want 3", len(sealed), err)
	}
	segs := jnl2.Segments()
	if len(segs) != 2 || segs[0].Number != 1 || !segs[0].Sealed || segs[1].Number != 2 || segs[1].Sealed {
		t.Fatalf("segments after reopen = %+v, want sealed #1 + active #2", segs)
	}
	appendAll(t, jnl2, 3, 5)
	if err := jnl2.Sync(); err != nil {
		t.Fatal(err)
	}
	jnl2.Close()

	recs, _, err := journal.Read(nil, dir)
	if err != nil || len(recs) != 5 {
		t.Fatalf("Read after reopen+append = %d records (err %v), want 5", len(recs), err)
	}
	for i, rec := range recs {
		if rec.UnixMicros != int64(i)+1 {
			t.Fatalf("record %d out of order: UnixMicros %d", i, rec.UnixMicros)
		}
	}
}

func TestRotationBySizeAndRetentionGC(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	var rotated []journal.SegmentInfo
	jnl := mustOpen(t, dir, testOptions(func(o *journal.Options) {
		o.SegmentBytes = 1 // every non-empty flush crosses the threshold
		o.Retain = 2
		o.OnRotate = func(seg journal.SegmentInfo) { rotated = append(rotated, seg) }
	}))
	for i := 0; i < 5; i++ {
		appendAll(t, jnl, i, i+1)
		if err := jnl.Sync(); err != nil {
			t.Fatalf("Sync %d: %v", i, err)
		}
	}
	s := jnl.Stats()
	if s.Rotations != 5 || s.GCRemoved != 3 || s.SealedSegments != 2 {
		t.Fatalf("stats = %+v, want 5 rotations, 3 GC removed, 2 sealed", s)
	}
	// OnRotate observed every sealed segment, in order, before GC took any.
	if len(rotated) != 5 {
		t.Fatalf("OnRotate fired %d times, want 5", len(rotated))
	}
	for i, seg := range rotated {
		if seg.Number != uint64(i)+1 || seg.Records != 1 || !seg.Sealed {
			t.Fatalf("rotation %d sealed %+v, want segment #%d with 1 record", i, seg, i+1)
		}
	}
	jnl.Close()

	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0].Name() != "seg-00000004.qfej" || names[1].Name() != "seg-00000005.qfej" {
		t.Fatalf("dir holds %v, want only segments 4 and 5", names)
	}
	recs, _, err := journal.Read(nil, dir)
	if err != nil || len(recs) != 2 {
		t.Fatalf("Read = %d records (err %v), want the 2 retained", len(recs), err)
	}
	if recs[0].UnixMicros != 4 || recs[1].UnixMicros != 5 {
		t.Fatalf("retained records are %d,%d, want the newest (4,5)", recs[0].UnixMicros, recs[1].UnixMicros)
	}
}

func TestRotationByAgeSparesEmptySegments(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	var nowMicros atomic.Int64
	nowMicros.Store(1_000_000)
	jnl := mustOpen(t, t.TempDir(), testOptions(func(o *journal.Options) {
		o.SegmentAge = time.Minute
		o.Now = func() time.Time { return time.UnixMicro(nowMicros.Load()) }
	}))
	appendAll(t, jnl, 0, 1)
	if err := jnl.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := jnl.Stats(); s.Rotations != 0 {
		t.Fatalf("rotated %d times before the age threshold", s.Rotations)
	}
	nowMicros.Add(2 * time.Minute.Microseconds())
	if err := jnl.Sync(); err != nil { // empty flush; rotation is age-driven
		t.Fatal(err)
	}
	if s := jnl.Stats(); s.Rotations != 1 || s.SealedSegments != 1 {
		t.Fatalf("stats after aging = %+v, want exactly 1 rotation", s)
	}
	// An aged-out EMPTY segment is not sealed — the age clock restarts.
	nowMicros.Add(2 * time.Minute.Microseconds())
	if err := jnl.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := jnl.Stats(); s.Rotations != 1 {
		t.Fatalf("empty active segment was sealed by age (rotations %d)", s.Rotations)
	}
}

// gateFS wedges every AppendFile until gate is closed, signalling entry on
// entered — the deterministic "disk hung" the shed-not-block contract is
// about.
type gateFS struct {
	store.FS
	entered chan struct{}
	gate    chan struct{}
}

func (g *gateFS) AppendFile(path string, data []byte) error {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.gate
	return g.FS.AppendFile(path, data)
}

func TestAppendShedsInsteadOfBlockingOnWedgedDisk(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	fsys := &gateFS{FS: store.OSFS(), entered: make(chan struct{}, 16), gate: make(chan struct{})}
	dir := t.TempDir()
	jnl := mustOpen(t, dir, testOptions(func(o *journal.Options) {
		o.Queue = 2
		o.FlushBatch = 1
		o.FS = fsys
	}))
	if !jnl.Append(testRec(0)) {
		t.Fatal("first append shed")
	}
	select { // the writer is now stuck inside AppendFile
	case <-fsys.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("writer never reached the wedged disk")
	}
	if !jnl.Append(testRec(1)) || !jnl.Append(testRec(2)) {
		t.Fatal("queue-filling appends shed early")
	}
	start := time.Now()
	ok := jnl.Append(testRec(3))
	elapsed := time.Since(start)
	if ok {
		t.Fatal("append into a full queue over a wedged disk was accepted")
	}
	if elapsed > time.Second {
		t.Fatalf("shedding append took %v; it must not wait on the disk", elapsed)
	}
	if s := jnl.Stats(); s.Shed < 1 {
		t.Fatalf("stats = %+v, want the blocked append counted as shed", s)
	}

	close(fsys.gate) // disk recovers; everything accepted must drain
	if err := jnl.Sync(); err != nil {
		t.Fatalf("Sync after recovery: %v", err)
	}
	jnl.Close()
	recs, _, err := journal.Read(nil, dir)
	if err != nil || len(recs) != 3 {
		t.Fatalf("recovered %d records (err %v), want the 3 accepted", len(recs), err)
	}
}

func TestCloseIsIdempotentAndAppendAfterCloseSheds(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	jnl := mustOpen(t, t.TempDir(), testOptions(nil))
	appendAll(t, jnl, 0, 1)
	if err := jnl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if jnl.Append(testRec(1)) {
		t.Fatal("Append after Close was accepted")
	}
	if err := jnl.Sync(); err == nil {
		t.Fatal("Sync after Close returned nil")
	}
	if s := jnl.Stats(); s.Shed != 1 || s.Persisted != 1 {
		t.Fatalf("stats = %+v, want the pre-close record persisted and the post-close one shed", s)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	jnl := mustOpen(t, dir, testOptions(nil))
	appendAll(t, jnl, 0, 3)
	if err := jnl.Sync(); err != nil {
		t.Fatal(err)
	}
	jnl.Close()
	seg := filepath.Join(dir, "seg-00000001.qfej")
	before, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// A power loss mid-append: half of one more frame lands behind the
	// committed records.
	torn := segBytes(t, testRec(99))
	if err := store.OSFS().AppendFile(seg, torn[:len(torn)-3]); err != nil {
		t.Fatal(err)
	}

	jnl2 := mustOpen(t, dir, testOptions(nil))
	s := jnl2.Stats()
	if s.TornTailsRepaired != 1 || s.SegmentsQuarantined != 0 {
		t.Fatalf("recovery stats = %+v, want exactly one torn tail repaired", s)
	}
	recs, err := jnl2.ReadSealed()
	if err != nil || len(recs) != 3 {
		t.Fatalf("ReadSealed = %d records (err %v), want the 3 committed", len(recs), err)
	}
	for i, rec := range recs {
		if !reflect.DeepEqual(rec, testRec(i)) {
			t.Fatalf("record %d corrupted by repair: %+v", i, rec)
		}
	}
	after, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("repaired segment is %d bytes, want the pre-tear %d", after.Size(), before.Size())
	}
}

func TestRecoveryQuarantinesMidFileCorruption(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	jnl := mustOpen(t, dir, testOptions(nil))
	appendAll(t, jnl, 0, 3)
	if err := jnl.Sync(); err != nil {
		t.Fatal(err)
	}
	jnl.Close()
	seg := filepath.Join(dir, "seg-00000001.qfej")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[30] ^= 0x40 // bit rot inside the first frame's payload, frames behind it
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	jnl2 := mustOpen(t, dir, testOptions(nil))
	s := jnl2.Stats()
	if s.SegmentsQuarantined != 1 || s.TornTailsRepaired != 0 {
		t.Fatalf("recovery stats = %+v, want the segment quarantined, not repaired", s)
	}
	if recs, _ := jnl2.ReadSealed(); len(recs) != 0 {
		t.Fatalf("ReadSealed returned %d records from a quarantined segment", len(recs))
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantined-seg-00000001.qfej")); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	// The burned number stays burned: new traffic lands in segment 2.
	appendAll(t, jnl2, 10, 11)
	if err := jnl2.Sync(); err != nil {
		t.Fatal(err)
	}
	jnl2.Close()
	recs, rep, err := journal.Read(nil, dir)
	if err != nil || len(recs) != 1 || recs[0].UnixMicros != 11 {
		t.Fatalf("Read = %v (report %+v, err %v), want only the post-quarantine record", recs, rep, err)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("read report %+v does not count the quarantined segment", rep)
	}
}

func TestRecoverySweepsRepairTemps(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	tmp := filepath.Join(dir, "tmp-seg-00000001.qfej")
	if err := os.WriteFile(tmp, []byte("half a repair"), 0o644); err != nil {
		t.Fatal(err)
	}
	jnl := mustOpen(t, dir, testOptions(nil))
	if s := jnl.Stats(); s.TempSwept != 1 {
		t.Fatalf("stats = %+v, want the leftover repair temp swept", s)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("repair temp still on disk (err %v)", err)
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	for _, name := range []string{"README.txt", "seg-garbage.qfej", "seg-00000000.qfej"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("not a segment"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	jnl := mustOpen(t, dir, testOptions(nil))
	if s := jnl.Stats(); s.SealedSegments != 0 || s.SegmentsQuarantined != 0 {
		t.Fatalf("foreign files were treated as segments: %+v", s)
	}
	jnl.Close()
	for _, name := range []string{"README.txt", "seg-garbage.qfej", "seg-00000000.qfej"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("foreign file %s was touched: %v", name, err)
		}
	}
}

// TestReadIsTolerantAndReadOnly drives the offline reader over a directory
// holding every damage class at once and proves it salvages what is safe,
// skips what is not, and mutates nothing — cmd/replay points this at live
// daemons' directories.
func TestReadIsTolerantAndReadOnly(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	clean := segBytes(t, testRec(0), testRec(1))
	tornTail := segBytes(t, testRec(2), testRec(3))
	torn := append(append([]byte(nil), tornTail...), segBytes(t, testRec(4))[:10]...)
	corrupt := segBytes(t, testRec(5), testRec(6))
	corrupt[30] ^= 0x40
	files := map[string][]byte{
		"seg-00000001.qfej":             clean,
		"seg-00000002.qfej":             torn,
		"seg-00000003.qfej":             corrupt,
		"quarantined-seg-00000004.qfej": segBytes(t, testRec(7)),
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	recs, rep, err := journal.Read(nil, dir)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	want := journal.ReadReport{Segments: 3, CorruptSegments: 1, TornTails: 1, Quarantined: 1, Records: 4}
	if rep != want {
		t.Fatalf("report = %+v, want %+v", rep, want)
	}
	if len(recs) != 4 {
		t.Fatalf("read %d records, want clean pair + torn segment's valid prefix", len(recs))
	}
	for i, rec := range recs {
		if !reflect.DeepEqual(rec, testRec(i)) {
			t.Fatalf("record %d = %+v, want %+v", i, rec, testRec(i))
		}
	}
	// Strictly read-only: every byte still exactly as laid down.
	for name, data := range files {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil || !reflect.DeepEqual(got, data) {
			t.Fatalf("Read mutated %s (err %v)", name, err)
		}
	}
	names, err := os.ReadDir(dir)
	if err != nil || len(names) != len(files) {
		t.Fatalf("Read created files: %d entries, want %d", len(names), len(files))
	}
}
