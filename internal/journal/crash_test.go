package journal_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"qfe/internal/journal"
	"qfe/internal/resilience/faultinject"
	"qfe/internal/store"
	"qfe/internal/testutil"
)

// The crash sweep drives the journal's whole write path — append, batch
// flush, rotation, retention GC, recovery — through every filesystem fault
// kind at every operation ordinal, and asserts the two invariants the
// journal promises:
//
//	acked ⊆ recovered ⊆ appended
//
// A record whose Sync returned nil is never lost (no matter where the fault
// fired), and recovery never resurrects anything that was not appended —
// torn frames are truncated away, bit-rotted segments quarantined, never
// decoded into phantom records.

// seedSweepWidth matches the store's crash-suite convention: QFE_SOAK widens
// the per-fault-point seed sweep, -short collapses it to one.
func seedSweepWidth(t *testing.T) int {
	t.Helper()
	if os.Getenv("QFE_SOAK") != "" {
		return 25
	}
	if testing.Short() {
		return 1
	}
	return 3
}

// sweepPlan shapes one deterministic journal workload.
type sweepPlan struct {
	name         string
	segmentBytes int64
	retain       int
}

var sweepPlans = []sweepPlan{
	// flat: everything lands in one segment; faults hit the batch appends.
	{name: "flat", segmentBytes: 1 << 30, retain: -1},
	// rotate: every batch seals a segment; faults hit appends interleaved
	// with rotation bookkeeping, nothing is ever GC'd.
	{name: "rotate", segmentBytes: 1, retain: -1},
	// gc: rotation plus a one-segment retention horizon; faults also hit the
	// RemoveAll calls of retention GC.
	{name: "gc", segmentBytes: 1, retain: 1},
}

// planOutcome records what the workload managed before/despite the fault.
type planOutcome struct {
	appended  map[int64]bool // accepted by Append, keyed by UnixMicros
	acked     map[int64]bool // covered by a nil Sync
	lastBatch []int64        // the most recent fully-acked batch, in order
}

// runSweepPlan drives 4 batches of 3 records through a journal on fsys. The
// writer is configured so the ONLY filesystem activity is what Sync forces,
// making the operation ordinals deterministic for the fault sweep. Open
// failing (fault at MkdirAll) is a legal outcome: nothing was accepted.
func runSweepPlan(t *testing.T, dir string, fsys store.FS, plan sweepPlan) planOutcome {
	t.Helper()
	out := planOutcome{appended: map[int64]bool{}, acked: map[int64]bool{}}
	jnl, err := journal.Open(dir, journal.Options{
		SegmentBytes: plan.segmentBytes,
		SegmentAge:   -1,
		Retain:       plan.retain,
		Queue:        64,
		FlushBatch:   4096,
		FlushEvery:   time.Hour,
		FS:           fsys,
	})
	if err != nil {
		return out
	}
	idx := 0
	for batch := 0; batch < 4; batch++ {
		var accepted []int64
		for k := 0; k < 3; k++ {
			rec := testRec(idx)
			if jnl.Append(rec) {
				out.appended[rec.UnixMicros] = true
				accepted = append(accepted, rec.UnixMicros)
			}
			idx++
		}
		if jnl.Sync() == nil {
			for _, u := range accepted {
				out.acked[u] = true
			}
			out.lastBatch = accepted
		}
	}
	jnl.Close()
	return out
}

// verifyRecovered reopens dir on a clean filesystem and checks the journal's
// recovery promises against what the faulted run achieved.
func verifyRecovered(t *testing.T, dir string, out planOutcome, plan sweepPlan, label string) {
	t.Helper()
	// The tolerant reader must cope with the crash state as-is, read-only.
	if _, _, err := journal.Read(nil, dir); err != nil && !os.IsNotExist(err) {
		t.Fatalf("%s: tolerant Read over crash state: %v", label, err)
	}
	jnl, err := journal.Open(dir, testOptions(nil))
	if err != nil {
		t.Fatalf("%s: recovery Open failed: %v", label, err)
	}
	defer jnl.Close()
	recs, err := jnl.ReadSealed()
	if err != nil {
		t.Fatalf("%s: ReadSealed after recovery: %v", label, err)
	}
	recovered := map[int64]bool{}
	last := int64(0)
	for _, rec := range recs {
		i := int(rec.UnixMicros) - 1
		if i < 0 || !out.appended[rec.UnixMicros] {
			t.Fatalf("%s: recovered record %+v was never appended", label, rec)
		}
		if rec != testRec(i) {
			t.Fatalf("%s: recovered record %+v does not match what was appended (%+v) — a torn or rotted frame was trusted", label, rec, testRec(i))
		}
		if rec.UnixMicros <= last {
			t.Fatalf("%s: recovered records out of order at %d after %d", label, rec.UnixMicros, last)
		}
		last = rec.UnixMicros
		recovered[rec.UnixMicros] = true
	}
	if plan.retain < 0 {
		// No GC: every acked record must survive any fault anywhere.
		for u := range out.acked {
			if !recovered[u] {
				t.Fatalf("%s: acked record %d lost (recovered %d of %d acked)", label, u, len(recovered), len(out.acked))
			}
		}
	} else {
		// Retention GC deletes old records by policy, but the newest acked
		// batch lives in the newest sealed segment and is never its victim.
		for _, u := range out.lastBatch {
			if !recovered[u] {
				t.Fatalf("%s: record %d of the final acked batch lost to recovery", label, u)
			}
		}
	}
}

func TestCrashSweepWritePath(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	width := seedSweepWidth(t)
	for _, plan := range sweepPlans {
		plan := plan
		t.Run(plan.name, func(t *testing.T) {
			// Clean pass first: count the mutating operations to sweep.
			counter := faultinject.NewFS(nil, faultinject.FSConfig{Kind: faultinject.FSNone})
			base := runSweepPlan(t, filepath.Join(t.TempDir(), "count"), counter, plan)
			ops := counter.MutatingOps()
			if ops < 5 { // MkdirAll + four batch appends at minimum
				t.Fatalf("clean pass performed only %d mutating ops", ops)
			}
			if len(base.acked) != 12 {
				t.Fatalf("clean pass acked %d records, want all 12", len(base.acked))
			}
			for _, kind := range []faultinject.FSFaultKind{faultinject.FSCrash, faultinject.FSTornWrite, faultinject.FSENOSPC} {
				for op := 1; op <= ops; op++ {
					for s := 0; s < width; s++ {
						label := fmt.Sprintf("%s/%s/op=%d/seed=%d", plan.name, kind, op, s)
						dir := filepath.Join(t.TempDir(), "run")
						fi := faultinject.NewFS(nil, faultinject.FSConfig{Seed: int64(op*101 + s), Kind: kind, Op: op})
						out := runSweepPlan(t, dir, fi, plan)
						verifyRecovered(t, dir, out, plan, label)
					}
				}
			}
		})
	}
}

// TestReadFaultSweep injects read-side faults (short reads, bit flips) into
// recovery itself: Open must never panic, never error out of a recoverable
// state, and never hand damaged bytes to a reader — a flipped bit fails the
// frame checksum (quarantine), a short read looks like a torn tail
// (truncate). Records CAN legitimately disappear here — a short read is
// indistinguishable from a torn tail and a flipped bit from real rot, and
// repairing accordingly is the correct response — so unlike the write-path
// sweep this one asserts integrity (everything served is intact and was
// appended), not acked-completeness.
func TestReadFaultSweep(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	width := seedSweepWidth(t)
	for _, kind := range []faultinject.FSFaultKind{faultinject.FSShortRead, faultinject.FSBitFlip} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for s := 0; s < width; s++ {
				dir := filepath.Join(t.TempDir(), "run")
				out := runSweepPlan(t, dir, store.OSFS(), sweepPlan{name: "flat", segmentBytes: 1, retain: -1})
				if len(out.acked) != 12 {
					t.Fatalf("seed %d: clean run acked %d records", s, len(out.acked))
				}
				// Recovery under a read fault: every segment scan is a
				// ReadFile, so sweep the fault across all of them.
				counter := faultinject.NewFS(nil, faultinject.FSConfig{Kind: faultinject.FSNone})
				jnl, err := journal.Open(dir, testOptions(func(o *journal.Options) { o.FS = counter }))
				if err != nil {
					t.Fatalf("seed %d: clean recovery: %v", s, err)
				}
				jnl.Close()
				reads := counter.Reads()
				if reads == 0 {
					t.Fatalf("seed %d: recovery performed no reads", s)
				}
				for op := 1; op <= reads; op++ {
					fi := faultinject.NewFS(nil, faultinject.FSConfig{Seed: int64(op*131 + s), Kind: kind, Op: op})
					faulted, err := journal.Open(dir, testOptions(func(o *journal.Options) { o.FS = fi }))
					if err != nil {
						t.Fatalf("seed %d %s op %d: recovery errored instead of repairing: %v", s, kind, op, err)
					}
					recs, _ := faulted.ReadSealed()
					for _, rec := range recs {
						i := int(rec.UnixMicros) - 1
						if i < 0 || i >= 12 || rec != testRec(i) {
							t.Fatalf("seed %d %s op %d: recovery served damaged record %+v", s, kind, op, rec)
						}
					}
					faulted.Close()
					// Re-recovery on clean disk still holds the subset and
					// integrity invariants (acked-completeness waived: the
					// faulted repair may have correctly discarded records it
					// could only see as damaged).
					sub := planOutcome{appended: out.appended, acked: map[int64]bool{}}
					verifyRecovered(t, dir, sub, sweepPlan{retain: -1}, fmt.Sprintf("%s/post-op%d/seed%d", kind, op, s))
				}
			}
		})
	}
}
