// Package journal is the durable query-feedback log of the serving stack: a
// segmented, append-only, CRC-framed record of every served estimate — SQL
// text, canonical fingerprint, estimate, client-reported actual cardinality
// (with an explicit has-actual bit, so a genuine zero-row actual is never
// confused with "no feedback"), latency, model generation, timestamp.
//
// The write path is built for a serving hot path that must never block on
// disk: Append enqueues onto a bounded channel and returns immediately —
// when the queue is full (the disk is slow, wedged, or gone) records are
// shed and counted, never waited on. A single writer goroutine drains the
// queue, encodes records into QFES frames (the same checksummed envelope
// the model store uses, payload kind PayloadJournal), and commits batches
// with one fsync per batch (Options.FlushBatch / Options.FlushEvery). The
// segment rotates on size or age; sealed segments beyond the retention
// horizon are garbage-collected.
//
// Crash recovery follows the store's discipline in miniature. A batch is
// committed iff its AppendFile (write + fsync) returned: a crash mid-append
// leaves a torn tail, which Open truncates away (valid prefix rewritten via
// tmp + rename + dir fsync, so the repair itself is crash-safe) — committed
// records are never lost, torn ones are never resurrected. A segment whose
// frames fail checksum mid-file (bit rot) is quarantined under a
// quarantined-seg- name instead of being deleted or — worse — partially
// trusted. Every filesystem touch goes through store.FS, so the
// fault-injection chaos suite drives append, rotate, and recover through
// crashes, torn writes, ENOSPC, and bit flips deterministically.
package journal

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"qfe/internal/store"
)

const (
	segPrefix        = "seg-"
	tmpSegPrefix     = "tmp-seg-"
	quarantinePrefix = "quarantined-seg-"
	segSuffix        = ".qfej"
)

// Record is one served estimate as journaled. The JSON keys are short
// because millions of these land on disk.
type Record struct {
	// UnixMicros is the serving timestamp. Append stamps it when zero.
	UnixMicros int64 `json:"t"`
	// SQL is the query text as served (re-parseable for replay).
	SQL string `json:"sql"`
	// Fingerprint is core.Fingerprint(query) — the featurization
	// equivalence class, usable as a dedup/label key without re-parsing.
	Fingerprint string `json:"fp,omitempty"`
	// Model and Generation identify which registry entry answered.
	Model      string `json:"model,omitempty"`
	Generation uint64 `json:"gen,omitempty"`
	// Estimate is the answer the client received.
	Estimate float64 `json:"est"`
	// Actual is the client-reported true cardinality; meaningful only when
	// HasActual. A journaled Actual of 0 with HasActual set is a genuine
	// empty result, not absent feedback.
	Actual    float64 `json:"actual,omitempty"`
	HasActual bool    `json:"hasActual,omitempty"`
	// LatencyMicros is the server-side estimation latency.
	LatencyMicros int64 `json:"latMicros,omitempty"`
}

// SegmentInfo describes one on-disk segment.
type SegmentInfo struct {
	Number          uint64 `json:"number"`
	Path            string `json:"path"`
	Bytes           int64  `json:"bytes"`
	Records         int    `json:"records"`
	FirstUnixMicros int64  `json:"firstUnixMicros,omitempty"`
	LastUnixMicros  int64  `json:"lastUnixMicros,omitempty"`
	Sealed          bool   `json:"sealed"`
}

// Stats are the journal's cumulative counters, served under /v1/journal and
// merged into /metrics as journal_*.
type Stats struct {
	Appended    uint64 `json:"appended"`  // accepted into the queue
	Shed        uint64 `json:"shed"`      // rejected without blocking (queue full / closed)
	Persisted   uint64 `json:"persisted"` // durably committed (their batch fsync returned)
	Dropped     uint64 `json:"dropped"`   // lost to a failed flush (ENOSPC, I/O error)
	Flushes     uint64 `json:"flushes"`
	FlushErrors uint64 `json:"flushErrors"`
	Rotations   uint64 `json:"rotations"`
	GCRemoved   int    `json:"gcRemoved"` // sealed segments removed by retention GC

	// Recovery counters, set by Open.
	TornTailsRepaired   int `json:"tornTailsRepaired"`
	SegmentsQuarantined int `json:"segmentsQuarantined"`
	TempSwept           int `json:"tempSwept"`

	SealedSegments int   `json:"sealedSegments"`
	ActiveRecords  int   `json:"activeRecords"`
	ActiveBytes    int64 `json:"activeBytes"`
}

// Options configures a Journal.
type Options struct {
	// SegmentBytes rotates the active segment once it reaches this size.
	// 0 means the default 4 MiB.
	SegmentBytes int64
	// SegmentAge rotates a non-empty active segment older than this.
	// 0 means the default 15 minutes; negative disables age rotation.
	SegmentAge time.Duration
	// Retain is how many sealed segments survive retention GC. 0 means the
	// default 8; negative keeps all.
	Retain int
	// Queue bounds records waiting for the writer; Append sheds past it.
	// 0 means the default 1024.
	Queue int
	// FlushBatch commits as soon as this many records are pending (one
	// fsync for the whole batch). 0 means the default 64; 1 means every
	// record pays its own fsync.
	FlushBatch int
	// FlushEvery bounds how long an accepted record may wait un-fsynced.
	// 0 means the default 50ms.
	FlushEvery time.Duration
	// OnRotate, when non-nil, observes every sealed segment from the writer
	// goroutine. Keep it cheap — hand heavy work (canary derivation) to
	// another goroutine.
	OnRotate func(sealed SegmentInfo)
	// FS overrides the filesystem (fault injection); nil means the real one.
	FS store.FS
	// Now overrides the clock; nil means time.Now.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SegmentAge == 0 {
		o.SegmentAge = 15 * time.Minute
	}
	if o.Retain == 0 {
		o.Retain = 8
	}
	if o.Queue <= 0 {
		o.Queue = 1024
	}
	if o.FlushBatch <= 0 {
		o.FlushBatch = 64
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 50 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = store.OSFS()
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Journal is an open feedback journal. Append is safe for concurrent use
// and never blocks on the disk; one background writer owns the active
// segment. Close flushes and stops the writer.
type Journal struct {
	dir  string
	fs   store.FS
	opts Options

	ch   chan Record
	sync chan chan error
	quit chan struct{}
	done chan struct{}
	once sync.Once

	mu          sync.Mutex
	stats       Stats
	sealed      []SegmentInfo // ascending by number
	active      SegmentInfo
	activeBorn  time.Time
	activeDirty bool // a failed flush may have left a torn tail
	nextSeg     uint64
}

// Open recovers dir (creating it if missing) and starts the writer. Torn
// tails are truncated, corrupt segments quarantined, leftover repair temps
// swept; appending always starts on a fresh segment so the recovered ones
// are immutable from here on.
func Open(dir string, opts Options) (*Journal, error) {
	opts = opts.withDefaults()
	j := &Journal{
		dir:  dir,
		fs:   opts.FS,
		opts: opts,
		ch:   make(chan Record, opts.Queue),
		sync: make(chan chan error),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	if err := j.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("journal: create %s: %w", dir, err)
	}
	if err := j.recover(); err != nil {
		return nil, err
	}
	j.activeBorn = opts.Now()
	j.active = SegmentInfo{Number: j.nextSeg, Path: j.segPath(j.nextSeg)}
	j.nextSeg++
	go j.writer()
	return j, nil
}

// recover scans dir, sweeps temps, truncates torn tails, quarantines
// corrupt segments, and leaves j.sealed holding every readable segment.
func (j *Journal) recover() error {
	names, err := j.fs.ReadDir(j.dir)
	if err != nil {
		return fmt.Errorf("journal: scan %s: %w", j.dir, err)
	}
	j.nextSeg = 1
	type cand struct {
		n    uint64
		name string
	}
	var cands []cand
	for _, name := range names {
		switch {
		case strings.HasPrefix(name, tmpSegPrefix):
			// A crash mid-repair left this; the original segment (torn tail
			// and all) is still under its seg- name and will be re-repaired.
			if err := j.fs.RemoveAll(filepath.Join(j.dir, name)); err != nil {
				return fmt.Errorf("journal: sweep %s: %w", name, err)
			}
			j.stats.TempSwept++
		case strings.HasPrefix(name, quarantinePrefix):
			j.stats.SegmentsQuarantined++
			if n, ok := parseSegNumber(name, quarantinePrefix); ok {
				j.bumpNext(n)
			}
		case strings.HasPrefix(name, segPrefix):
			n, ok := parseSegNumber(name, segPrefix)
			if !ok {
				continue
			}
			j.bumpNext(n)
			cands = append(cands, cand{n: n, name: name})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].n < cands[b].n })
	for _, c := range cands {
		path := filepath.Join(j.dir, c.name)
		scan, err := scanSegment(j.fs, path)
		if err != nil {
			return fmt.Errorf("journal: read %s: %w", c.name, err)
		}
		if scan.corrupt {
			// Mid-file corruption: nothing past the bad frame can be
			// trusted, and silently truncating there would discard records
			// that were committed. Keep the whole segment as evidence.
			to := filepath.Join(j.dir, fmt.Sprintf("%s%08d%s", quarantinePrefix, c.n, segSuffix))
			if err := j.fs.Rename(path, to); err != nil {
				return fmt.Errorf("journal: quarantine %s: %w", c.name, err)
			}
			j.fs.SyncDir(j.dir) //nolint:errcheck // rename is visible either way
			j.stats.SegmentsQuarantined++
			continue
		}
		if scan.truncated {
			if err := j.truncateTo(path, scan.validPrefix()); err != nil {
				return err
			}
			j.stats.TornTailsRepaired++
		}
		if len(scan.records) == 0 {
			// Nothing committed survived (e.g. the only batch tore at byte
			// zero): drop the empty shell, keep the number burned.
			if err := j.fs.RemoveAll(path); err != nil {
				return fmt.Errorf("journal: remove empty %s: %w", c.name, err)
			}
			continue
		}
		j.sealed = append(j.sealed, scan.info(c.n, path, true))
	}
	j.stats.SealedSegments = len(j.sealed)
	return nil
}

// truncateTo rewrites path to hold exactly prefix, crash-safely: the valid
// bytes land under a temp name, the rename is the commit point, and a crash
// anywhere re-runs the same repair on next Open.
func (j *Journal) truncateTo(path string, prefix []byte) error {
	tmp := filepath.Join(j.dir, tmpSegPrefix+filepath.Base(path))
	if err := j.fs.WriteFile(tmp, prefix); err != nil {
		return fmt.Errorf("journal: write repaired %s: %w", filepath.Base(path), err)
	}
	if err := j.fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("journal: commit repaired %s: %w", filepath.Base(path), err)
	}
	if err := j.fs.SyncDir(j.dir); err != nil {
		return fmt.Errorf("journal: sync after repairing %s: %w", filepath.Base(path), err)
	}
	return nil
}

// Dir returns the journal's root directory.
func (j *Journal) Dir() string { return j.dir }

// Append offers one record to the journal and returns whether it was
// accepted. It NEVER blocks: a full queue (slow or wedged disk) or a closed
// journal sheds the record and counts it. Acceptance means "queued", not
// "durable" — durability follows within FlushEvery if the disk cooperates.
func (j *Journal) Append(rec Record) bool {
	if rec.UnixMicros == 0 {
		rec.UnixMicros = j.opts.Now().UnixMicro()
	}
	select {
	case <-j.quit:
		j.addShed()
		return false
	default:
	}
	select {
	case j.ch <- rec:
		j.mu.Lock()
		j.stats.Appended++
		j.mu.Unlock()
		return true
	default:
		j.addShed()
		return false
	}
}

func (j *Journal) addShed() {
	j.mu.Lock()
	j.stats.Shed++
	j.mu.Unlock()
}

// Sync flushes everything queued at the moment of the call and returns the
// flush error, if any. Tests and shutdown paths use it; the hot path never
// does.
func (j *Journal) Sync() error {
	ack := make(chan error, 1)
	select {
	case j.sync <- ack:
		return <-ack
	case <-j.done:
		return fmt.Errorf("journal: closed")
	}
}

// Close flushes pending records, stops the writer, and returns. Idempotent;
// Append after Close sheds.
func (j *Journal) Close() error {
	j.once.Do(func() { close(j.quit) })
	<-j.done
	return nil
}

// Stats returns a snapshot of the counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.stats
	s.SealedSegments = len(j.sealed)
	s.ActiveRecords = j.active.Records
	s.ActiveBytes = j.active.Bytes
	return s
}

// Segments returns the sealed segments (ascending) plus the active one.
func (j *Journal) Segments() []SegmentInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]SegmentInfo, 0, len(j.sealed)+1)
	out = append(out, j.sealed...)
	active := j.active
	out = append(out, active)
	return out
}

// ReadSealed returns every record in the sealed segments, oldest first.
// Sealed segments are immutable (only retention GC unlinks them, and a
// segment GC'd mid-read is simply skipped), so this is safe concurrently
// with serving.
func (j *Journal) ReadSealed() ([]Record, error) {
	j.mu.Lock()
	sealed := append([]SegmentInfo(nil), j.sealed...)
	j.mu.Unlock()
	var out []Record
	for _, seg := range sealed {
		scan, err := scanSegment(j.fs, seg.Path)
		if err != nil {
			continue // GC won the race; the records are gone by policy
		}
		out = append(out, scan.records...)
	}
	return out, nil
}

// ---- writer goroutine ----

func (j *Journal) writer() {
	defer close(j.done)
	ticker := time.NewTicker(j.opts.FlushEvery)
	defer ticker.Stop()
	pending := make([]Record, 0, j.opts.FlushBatch)
	var buf []byte

	flush := func() {
		// Rotate FIRST when a failed flush dirtied the active segment:
		// appending frames behind a torn one would make the whole segment
		// scan as corrupt and cost the committed prefix its recovery.
		j.maybeRotate()
		if len(pending) > 0 {
			buf = buf[:0]
			for _, rec := range pending {
				payload, err := json.Marshal(rec)
				if err != nil {
					continue // unencodable records cannot exist; Record is plain data
				}
				buf = store.AppendFrame(buf, store.PayloadJournal, payload)
			}
			err := j.fs.AppendFile(j.activePath(), buf)
			j.noteFlush(pending, int64(len(buf)), err)
			pending = pending[:0]
		}
		j.maybeRotate()
	}
	drain := func() {
		for {
			select {
			case rec := <-j.ch:
				pending = append(pending, rec)
				if len(pending) >= j.opts.FlushBatch {
					flush()
				}
			default:
				return
			}
		}
	}

	for {
		select {
		case rec := <-j.ch:
			pending = append(pending, rec)
			drain()
			if len(pending) >= j.opts.FlushBatch {
				flush()
			}
		case <-ticker.C:
			flush()
		case ack := <-j.sync:
			drain()
			ack <- j.flushAcked(&pending, &buf)
		case <-j.quit:
			drain()
			flush()
			return
		}
	}
}

// flushAcked is the Sync path: like flush but the commit error is reported
// to the caller instead of only counted.
func (j *Journal) flushAcked(pending *[]Record, buf *[]byte) error {
	j.maybeRotate() // seal a dirty segment before appending behind its torn tail
	if len(*pending) == 0 {
		return nil
	}
	b := (*buf)[:0]
	for _, rec := range *pending {
		payload, err := json.Marshal(rec)
		if err != nil {
			continue
		}
		b = store.AppendFrame(b, store.PayloadJournal, payload)
	}
	*buf = b
	err := j.fs.AppendFile(j.activePath(), b)
	j.noteFlush(*pending, int64(len(b)), err)
	*pending = (*pending)[:0]
	j.maybeRotate()
	if err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	return nil
}

// noteFlush books one commit attempt. A failed append may have torn the
// active segment's tail, so the segment is marked dirty and the next
// maybeRotate seals it — appending more frames after a torn one would make
// the committed prefix unreadable.
func (j *Journal) noteFlush(batch []Record, bytes int64, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.stats.Flushes++
	if err != nil {
		j.stats.FlushErrors++
		j.stats.Dropped += uint64(len(batch))
		j.activeDirty = true
		return
	}
	j.stats.Persisted += uint64(len(batch))
	j.active.Records += len(batch)
	j.active.Bytes += bytes
	if j.active.FirstUnixMicros == 0 {
		j.active.FirstUnixMicros = batch[0].UnixMicros
	}
	j.active.LastUnixMicros = batch[len(batch)-1].UnixMicros
}

// maybeRotate seals the active segment when it crossed the size threshold,
// outlived the age threshold, or took a failed (possibly tearing) append.
// Called from the writer goroutine only.
func (j *Journal) maybeRotate() {
	j.mu.Lock()
	size := j.active.Bytes
	records := j.active.Records
	dirty := j.activeDirty
	age := j.opts.Now().Sub(j.activeBorn)
	j.mu.Unlock()

	ageUp := j.opts.SegmentAge > 0 && age >= j.opts.SegmentAge
	if !(dirty || size >= j.opts.SegmentBytes || (ageUp && records > 0)) {
		return
	}
	if records == 0 && !dirty {
		// Nothing on disk yet: restart the age clock instead of sealing air.
		j.mu.Lock()
		j.activeBorn = j.opts.Now()
		j.mu.Unlock()
		return
	}

	j.mu.Lock()
	sealedInfo := j.active
	sealedInfo.Sealed = true
	if records > 0 {
		j.sealed = append(j.sealed, sealedInfo)
	}
	j.stats.Rotations++
	j.active = SegmentInfo{Number: j.nextSeg, Path: j.segPath(j.nextSeg)}
	j.nextSeg++
	j.activeBorn = j.opts.Now()
	j.activeDirty = false
	cb := j.opts.OnRotate
	j.mu.Unlock()

	if records == 0 {
		// The segment holds nothing but the torn tail of a failed flush.
		// Delete the shell instead of tracking it: retention GC must never
		// count garbage against the horizon and evict a real segment for it.
		// Best-effort — recovery truncates and removes leftovers anyway.
		j.fs.RemoveAll(sealedInfo.Path) //nolint:errcheck
	}
	if cb != nil && records > 0 {
		cb(sealedInfo)
	}
	j.gc()
}

// gc removes sealed segments beyond the retention horizon, oldest first.
// Called from the writer goroutine only.
func (j *Journal) gc() {
	if j.opts.Retain < 0 {
		return
	}
	j.mu.Lock()
	excess := len(j.sealed) - j.opts.Retain
	var victims []SegmentInfo
	if excess > 0 {
		victims = append(victims, j.sealed[:excess]...)
	}
	j.mu.Unlock()
	removed := 0
	for _, v := range victims {
		if err := j.fs.RemoveAll(v.Path); err != nil {
			break // keep the prefix intact; retried on the next rotation
		}
		removed++
	}
	if removed > 0 {
		j.mu.Lock()
		j.sealed = append([]SegmentInfo(nil), j.sealed[removed:]...)
		j.stats.GCRemoved += removed
		j.mu.Unlock()
	}
}

func (j *Journal) activePath() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.active.Path
}

func (j *Journal) segPath(n uint64) string {
	return filepath.Join(j.dir, fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix))
}

func (j *Journal) bumpNext(n uint64) {
	if n >= j.nextSeg {
		j.nextSeg = n + 1
	}
}

// parseSegNumber extracts the segment number from "<prefix>NNNNNNNN.qfej".
func parseSegNumber(name, prefix string) (uint64, bool) {
	digits := strings.TrimPrefix(name, prefix)
	digits = strings.TrimSuffix(digits, segSuffix)
	if digits == "" {
		return 0, false
	}
	var n uint64
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
		if n > 1<<62 {
			return 0, false
		}
	}
	if n == 0 {
		return 0, false
	}
	return n, true
}
