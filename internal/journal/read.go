package journal

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"sort"
	"strings"

	"qfe/internal/store"
)

// This file is the read side of the journal: a frame-by-frame segment
// scanner shared by crash recovery (which repairs what it finds) and by
// offline tools (which must stay read-only — cmd/replay may be pointed at a
// live journal directory it has no business mutating).

// segScan is the outcome of scanning one segment file.
type segScan struct {
	records []Record
	// valid is how many bytes of the file form complete, checksummed,
	// decodable frames; the scan stopped at valid.
	valid int64
	total int64
	// truncated: the file ends mid-frame — the torn tail a crash leaves.
	// The valid prefix is trustworthy.
	truncated bool
	// corrupt: a frame failed its checksum / magic / kind / decode check
	// with more bytes behind it, or outright bit rot. Nothing at or past
	// the bad frame can be trusted, and the bytes BEFORE it committed, so
	// the segment must be quarantined, not truncated.
	corrupt bool
	// firstUnix/lastUnix bound the records' timestamps (0 when empty).
	firstUnix, lastUnix int64
	raw                 []byte
}

// validPrefix returns the trustworthy leading bytes of the scanned file.
func (s segScan) validPrefix() []byte { return s.raw[:s.valid] }

// info summarizes the scan as a SegmentInfo.
func (s segScan) info(n uint64, path string, sealed bool) SegmentInfo {
	return SegmentInfo{
		Number:          n,
		Path:            path,
		Bytes:           s.valid,
		Records:         len(s.records),
		FirstUnixMicros: s.firstUnix,
		LastUnixMicros:  s.lastUnix,
		Sealed:          sealed,
	}
}

// scanSegment reads path and walks its frames until the end, a torn tail,
// or corruption. The returned error is only an I/O error from ReadFile;
// frame-level damage is reported in the segScan instead.
func scanSegment(fsys store.FS, path string) (segScan, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return segScan{}, err
	}
	scan := scanBytes(data)
	return scan, nil
}

// scanBytes walks a segment image frame by frame and classifies what it
// finds. Fuzzed (FuzzJournalRead) so arbitrary mutations of segment bytes can
// be proven to land in exactly one of: clean, truncated-with-valid-prefix,
// or corrupt — never a panic, never trusting damaged bytes.
func scanBytes(data []byte) segScan {
	scan := segScan{total: int64(len(data)), raw: data}
	rest := data
	for len(rest) > 0 {
		payload, next, err := store.NextFrame(rest, store.PayloadJournal)
		if err != nil {
			if errors.Is(err, store.ErrTruncatedFrame) {
				scan.truncated = true
			} else {
				scan.corrupt = true
			}
			return scan
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// The checksum passed, so these bytes are as-written — a frame
			// that is not a journal record means the file is not (or is no
			// longer) a journal segment. Quarantine territory.
			scan.corrupt = true
			return scan
		}
		scan.records = append(scan.records, rec)
		if scan.firstUnix == 0 {
			scan.firstUnix = rec.UnixMicros
		}
		scan.lastUnix = rec.UnixMicros
		scan.valid = scan.total - int64(len(next))
		rest = next
	}
	return scan
}

// ReadReport accounts what a tolerant directory read encountered.
type ReadReport struct {
	Segments        int `json:"segments"`        // segment files seen
	CorruptSegments int `json:"corruptSegments"` // skipped wholesale
	TornTails       int `json:"tornTails"`       // valid prefix used, tail ignored
	Quarantined     int `json:"quarantined"`     // pre-existing quarantined-seg- files (not read)
	Records         int `json:"records"`
}

// Read returns every record under dir, oldest segment first, tolerating
// damage: torn tails contribute their valid prefix, corrupt segments are
// skipped and counted. It never mutates the directory — recovery-with-
// repair is Open's job. fsys nil means the real filesystem.
func Read(fsys store.FS, dir string) ([]Record, ReadReport, error) {
	if fsys == nil {
		fsys = store.OSFS()
	}
	var rep ReadReport
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, rep, err
	}
	type cand struct {
		n    uint64
		name string
	}
	var cands []cand
	for _, name := range names {
		if strings.HasPrefix(name, quarantinePrefix) {
			rep.Quarantined++
			continue
		}
		if !strings.HasPrefix(name, segPrefix) {
			continue
		}
		n, ok := parseSegNumber(name, segPrefix)
		if !ok {
			continue
		}
		cands = append(cands, cand{n: n, name: name})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].n < cands[b].n })
	var out []Record
	for _, c := range cands {
		scan, err := scanSegment(fsys, filepath.Join(dir, c.name))
		if err != nil {
			continue // unlinked mid-read (retention GC) or unreadable: skip
		}
		rep.Segments++
		if scan.corrupt {
			rep.CorruptSegments++
			continue
		}
		if scan.truncated {
			rep.TornTails++
		}
		out = append(out, scan.records...)
	}
	rep.Records = len(out)
	return out, rep, nil
}
