package trainer

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"qfe/internal/drift"
	"qfe/internal/serve"
)

// ControllerConfig assembles a Controller.
type ControllerConfig struct {
	// Supervisor runs the retraining jobs. Required.
	Supervisor *Supervisor
	// Retrainer is the pipeline a drift event triggers. Required.
	Retrainer *Retrainer
	// Monitor, when non-nil, is reset after a successful publish and rearmed
	// (threshold widened by RearmFactor) after a canary rejection, so a
	// workload the retrained model genuinely cannot fit stops ringing the
	// same alarm forever.
	Monitor *drift.Monitor
	// Cooldown suppresses new retrains for this long after one starts;
	// alarms often arrive in bursts. Default 1m.
	Cooldown time.Duration
	// RearmFactor widens the q-error drift threshold after a canary
	// rejection. Default 2.
	RearmFactor float64
	// JobName names the supervised job. Default "retrain".
	JobName string

	// Backoff, MaxBackoff, MaxFailures and Deadline pass through to the
	// JobSpec; zero values take the supervisor defaults.
	Backoff     time.Duration
	MaxBackoff  time.Duration
	MaxFailures int
	Deadline    time.Duration
}

func (c *ControllerConfig) withDefaults() error {
	switch {
	case c.Supervisor == nil:
		return fmt.Errorf("trainer: ControllerConfig.Supervisor is required")
	case c.Retrainer == nil:
		return fmt.Errorf("trainer: ControllerConfig.Retrainer is required")
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Minute
	}
	if c.RearmFactor <= 1 {
		c.RearmFactor = 2
	}
	if c.JobName == "" {
		c.JobName = "retrain"
	}
	return nil
}

// Controller is the glue between drift detection and retraining: its
// HandleEvent is the drift monitor's OnEvent callback. Each alarm, modulo a
// cooldown and the one-active-job-per-name rule, submits a supervised
// retraining run whose only road to traffic is the lifecycle canary gate.
type Controller struct {
	cfg ControllerConfig

	mu        sync.Mutex
	lastStart time.Time
	counters  controllerCounters
}

type controllerCounters struct {
	eventsSeen        uint64
	eventsSuppressed  uint64
	retrainsStarted   uint64
	retrainsSucceeded uint64
	canaryRejected    uint64
	retrainsFailed    uint64
}

// NewController validates cfg and returns a Controller.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// HandleEvent reacts to one drift alarm. It is fast and non-blocking — safe
// to call synchronously from the monitor's observing goroutine — and
// reports whether a retraining job was actually started.
func (c *Controller) HandleEvent(ev drift.Event) bool {
	c.mu.Lock()
	c.counters.eventsSeen++
	if !c.lastStart.IsZero() && time.Since(c.lastStart) < c.cfg.Cooldown {
		c.counters.eventsSuppressed++
		c.mu.Unlock()
		return false
	}
	c.mu.Unlock()

	err := c.cfg.Supervisor.Submit(JobSpec{
		Name:        c.cfg.JobName,
		Run:         c.runRetrain,
		Backoff:     c.cfg.Backoff,
		MaxBackoff:  c.cfg.MaxBackoff,
		MaxFailures: c.cfg.MaxFailures,
		Deadline:    c.cfg.Deadline,
	})

	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		// A still-active job already covers this alarm; anything else
		// (supervisor closed) there is no one left to tell.
		c.counters.eventsSuppressed++
		return false
	}
	c.counters.retrainsStarted++
	c.lastStart = time.Now()
	return true
}

// runRetrain is one supervised attempt: retrain, publish through the
// canary, and translate the outcome into restart semantics. A canary
// rejection is Permanent — retrying would deterministically rebuild the
// same rejected model — and rearms the drift monitor with a widened
// threshold instead.
func (c *Controller) runRetrain(ctx context.Context) error {
	_, err := c.cfg.Retrainer.Run(ctx)
	switch {
	case err == nil:
		c.mu.Lock()
		c.counters.retrainsSucceeded++
		c.mu.Unlock()
		if c.cfg.Monitor != nil {
			c.cfg.Monitor.Reset()
		}
		return nil
	case errors.Is(err, serve.ErrCanaryRejected):
		c.mu.Lock()
		c.counters.canaryRejected++
		c.mu.Unlock()
		if c.cfg.Monitor != nil {
			c.cfg.Monitor.Rearm(c.cfg.RearmFactor)
		}
		return Permanent(err)
	default:
		c.mu.Lock()
		c.counters.retrainsFailed++
		c.mu.Unlock()
		return err
	}
}

// Counters returns the controller's cumulative counters in a flat,
// /metrics friendly form.
func (c *Controller) Counters() map[string]any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return map[string]any{
		"retrain_events_seen":       c.counters.eventsSeen,
		"retrain_events_suppressed": c.counters.eventsSuppressed,
		"retrain_started":           c.counters.retrainsStarted,
		"retrain_succeeded":         c.counters.retrainsSucceeded,
		"retrain_canary_rejected":   c.counters.canaryRejected,
		"retrain_failed":            c.counters.retrainsFailed,
	}
}

// Status reports counters plus the supervisor's job table, the retraining
// half of the /v1/drift payload.
func (c *Controller) Status() map[string]any {
	return map[string]any{
		"counters": c.Counters(),
		"jobs":     c.cfg.Supervisor.Status(),
	}
}
