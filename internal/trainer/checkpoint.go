// Package trainer closes the self-healing loop around the serving stack:
// when internal/drift detects that the live model has gone stale, a
// supervised retraining job relabels the training workload against the
// current data, refits the estimator, and offers the result to the
// serve.Lifecycle canary gate. Nothing in this package publishes a model
// directly — a retrained model that cannot beat the canary never takes
// traffic, exactly like any other candidate.
//
// Retraining is crash-safe: the labeling loop and every model family's
// epoch/tree loop periodically persist CRC-framed checkpoints through
// internal/store's fsync+rename machinery, so a crashed or SIGTERM'd
// retrain resumes from its last durable checkpoint instead of restarting.
// Jobs run under a Supervisor with exponential-backoff restarts, a
// poison-pill counter that quarantines a job after repeated failures, and
// per-attempt deadlines.
package trainer

import (
	"qfe/internal/store"
)

// Checkpointer persists retraining progress durably. Save must be atomic:
// after a crash, Load returns either the previous payload or the new one,
// never a torn mix. Implementations must treat a failed Save as "nothing
// saved".
type Checkpointer interface {
	// Save durably replaces the checkpoint.
	Save(payload []byte) error
	// Load returns the last durably saved payload; ok is false when none
	// exists. A non-nil error with ok == false means a checkpoint was
	// present but unreadable — callers log it and start fresh.
	Load() (payload []byte, ok bool, err error)
	// Clear removes the checkpoint; clearing a missing checkpoint is not an
	// error.
	Clear() error
}

// storeCheckpointer adapts a named store checkpoint slot to Checkpointer.
// It inherits the store's crash-safety: payloads are CRC-framed with the
// PayloadCheckpoint kind, written to a temp file, fsync'd, renamed into
// place, and the directory synced; torn temps are swept at the next Open.
type storeCheckpointer struct {
	st   *store.Store
	name string
}

// NewStoreCheckpointer returns a Checkpointer backed by st's checkpoint
// namespace under the given name (subject to store checkpoint-name rules).
func NewStoreCheckpointer(st *store.Store, name string) Checkpointer {
	return &storeCheckpointer{st: st, name: name}
}

func (c *storeCheckpointer) Save(payload []byte) error {
	return c.st.PutCheckpoint(c.name, payload)
}

func (c *storeCheckpointer) Load() ([]byte, bool, error) {
	return c.st.ReadCheckpoint(c.name)
}

func (c *storeCheckpointer) Clear() error {
	return c.st.ClearCheckpoint(c.name)
}
