package trainer

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"qfe/internal/testutil"
)

// waitDone blocks until the named job is terminal (with a test deadline).
func waitDone(t *testing.T, s *Supervisor, name string) JobStatus {
	t.Helper()
	select {
	case <-s.Done(name):
	case <-time.After(10 * time.Second):
		t.Fatalf("job %q did not reach a terminal state", name)
	}
	st, ok := s.Job(name)
	if !ok {
		t.Fatalf("job %q vanished", name)
	}
	return st
}

func fastSpec(name string, run JobFunc) JobSpec {
	return JobSpec{Name: name, Run: run, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
}

func TestSupervisorRunsJobToDone(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := NewSupervisor()
	defer s.Close()

	var term atomic.Int32
	spec := fastSpec("ok", func(context.Context) error { return nil })
	spec.OnTerminal = func(state JobState, err error) {
		term.Add(1)
		if state != JobDone || err != nil {
			t.Errorf("OnTerminal(%v, %v), want (done, nil)", state, err)
		}
	}
	if err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, "ok")
	if st.State != JobDone || st.Attempts != 1 || st.Failures != 0 {
		t.Errorf("status = %+v, want done after 1 attempt", st)
	}
	if term.Load() != 1 {
		t.Errorf("OnTerminal ran %d times, want exactly once", term.Load())
	}
}

func TestSupervisorRetriesTransientFailures(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := NewSupervisor()
	defer s.Close()

	var attempts atomic.Int32
	if err := s.Submit(fastSpec("flaky", func(context.Context) error {
		if attempts.Add(1) < 3 {
			return fmt.Errorf("transient")
		}
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, "flaky")
	if st.State != JobDone {
		t.Fatalf("state = %v (%s), want done", st.State, st.LastError)
	}
	if st.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", st.Attempts)
	}
}

func TestSupervisorPermanentFailureStopsRetries(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := NewSupervisor()
	defer s.Close()

	var attempts atomic.Int32
	boom := errors.New("canary said no")
	if err := s.Submit(fastSpec("doomed", func(context.Context) error {
		attempts.Add(1)
		return Permanent(boom)
	})); err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, "doomed")
	if st.State != JobFailed {
		t.Fatalf("state = %v, want failed", st.State)
	}
	if attempts.Load() != 1 {
		t.Errorf("attempts = %d, want 1 (Permanent must not retry)", attempts.Load())
	}
}

func TestSupervisorQuarantinesPoisonPill(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := NewSupervisor()
	defer s.Close()

	var attempts atomic.Int32
	spec := fastSpec("poison", func(context.Context) error {
		attempts.Add(1)
		panic("boom") // panics count as failures, not process death
	})
	spec.MaxFailures = 3
	if err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, "poison")
	if st.State != JobQuarantined {
		t.Fatalf("state = %v, want quarantined", st.State)
	}
	if attempts.Load() != 3 {
		t.Errorf("attempts = %d, want 3 (MaxFailures)", attempts.Load())
	}
}

func TestSupervisorDeadlineBoundsAttempts(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := NewSupervisor()
	defer s.Close()

	spec := fastSpec("slow", func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	spec.Deadline = 5 * time.Millisecond
	spec.MaxFailures = 2
	if err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, "slow")
	if st.State != JobQuarantined {
		t.Fatalf("state = %v, want quarantined (deadline blowups are failures)", st.State)
	}
}

func TestSupervisorCloseCancelsRunningJobs(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := NewSupervisor()

	started := make(chan struct{})
	if err := s.Submit(fastSpec("longrun", func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})); err != nil {
		t.Fatal(err)
	}
	<-started
	s.Close()
	st, _ := s.Job("longrun")
	if st.State != JobCanceled {
		t.Errorf("state after Close = %v, want canceled", st.State)
	}
	if err := s.Submit(fastSpec("late", func(context.Context) error { return nil })); !errors.Is(err, ErrSupervisorClosed) {
		t.Errorf("Submit after Close = %v, want ErrSupervisorClosed", err)
	}
}

func TestSupervisorNameReuse(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := NewSupervisor()
	defer s.Close()

	block := make(chan struct{})
	if err := s.Submit(fastSpec("job", func(context.Context) error { <-block; return nil })); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(fastSpec("job", func(context.Context) error { return nil })); !errors.Is(err, ErrJobActive) {
		t.Fatalf("duplicate Submit = %v, want ErrJobActive", err)
	}
	close(block)
	waitDone(t, s, "job")
	if err := s.Submit(fastSpec("job", func(context.Context) error { return nil })); err != nil {
		t.Fatalf("Submit after terminal state = %v, want reuse to work", err)
	}
	waitDone(t, s, "job")

	if n := len(s.Status()); n != 1 {
		t.Errorf("Status lists %d jobs, want 1 (latest generation per name)", n)
	}
}

func TestPermanentWrapping(t *testing.T) {
	base := errors.New("base")
	if !IsPermanent(Permanent(base)) {
		t.Error("IsPermanent(Permanent(err)) = false")
	}
	if IsPermanent(base) {
		t.Error("IsPermanent(plain error) = true")
	}
	if !errors.Is(Permanent(base), base) {
		t.Error("Permanent must unwrap to the base error")
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
	if IsPermanent(fmt.Errorf("wrapped: %w", Permanent(base))) != true {
		t.Error("IsPermanent must see through wrapping")
	}
}
