package trainer

// The self-healing acceptance test: injected drift trips the monitor, the
// controller submits a supervised retraining job, the job's first two
// attempts die mid-training — a process crash and a torn write, both on
// the checkpoint path — and the third attempt resumes from the last
// durable checkpoint, clears the canary gate, and publishes a new store
// generation. No model reaches traffic except through the lifecycle, no
// valid generation is quarantined, and no goroutine outlives the test.

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"qfe/internal/core"
	"qfe/internal/dataset"
	"qfe/internal/drift"
	"qfe/internal/estimator"
	"qfe/internal/ml/gb"
	"qfe/internal/resilience/faultinject"
	"qfe/internal/serve"
	"qfe/internal/sqlparse"
	"qfe/internal/store"
	"qfe/internal/table"
	"qfe/internal/testutil"
	"qfe/internal/workload"
)

// chaosEnv is the shared fixture: a small forest database plus labeled
// train and canary workloads.
type chaosEnv struct {
	db    *table.DB
	train workload.Set
	test  workload.Set
}

func buildChaosEnv(t *testing.T) *chaosEnv {
	t.Helper()
	tbl, err := dataset.Forest(dataset.ForestConfig{Rows: 3000, QuantAttrs: 5, BinaryAttrs: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	db := table.NewDB()
	db.MustAdd(tbl)
	train, err := workload.Conjunctive(tbl, workload.ConjConfig{Count: 150, MaxAttrs: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	test, err := workload.Conjunctive(tbl, workload.ConjConfig{Count: 60, MaxAttrs: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return &chaosEnv{db: db, train: train, test: test}
}

func newLocalFactory(db *table.DB) func() (*estimator.Local, error) {
	cfg := gb.DefaultConfig()
	cfg.NumTrees = 40
	cfg.MaxDepth = 5
	cfg.Seed = 1
	return func() (*estimator.Local, error) {
		return estimator.NewLocal(db, estimator.LocalConfig{
			QFT:          "conjunctive",
			Opts:         core.Options{MaxEntriesPerAttr: 24, AttrSel: true},
			NewRegressor: estimator.NewGBFactory(cfg),
		})
	}
}

// loadRecord is what the chaos checkpointer saw at the start of one attempt.
type loadRecord struct {
	ok        bool
	phase     string
	tempSwept int
}

// chaosCheckpointer simulates process restarts: each Load (= the start of
// one retraining attempt) reopens the checkpoint store — sweeping torn
// temp files exactly like a reboot — under that attempt's scheduled
// filesystem fault. Attempts beyond the schedule run on a clean filesystem.
type chaosCheckpointer struct {
	t        *testing.T
	dir      string
	schedule []faultinject.FSConfig

	mu      sync.Mutex
	attempt int
	st      *store.Store
	loads   []loadRecord
}

func (c *chaosCheckpointer) Load() ([]byte, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cfg := faultinject.FSConfig{Kind: faultinject.FSNone}
	if c.attempt < len(c.schedule) {
		cfg = c.schedule[c.attempt]
	}
	c.attempt++
	st, err := store.Open(c.dir, store.Options{FS: faultinject.NewFS(nil, cfg)})
	if err != nil {
		c.loads = append(c.loads, loadRecord{})
		return nil, false, err
	}
	c.st = st
	payload, ok, err := st.ReadCheckpoint("retrain")
	rec := loadRecord{ok: ok, tempSwept: st.Recovery().TempSwept}
	if ok {
		var ck jobCheckpoint
		if json.Unmarshal(payload, &ck) == nil {
			rec.phase = ck.Phase
		}
	}
	c.loads = append(c.loads, rec)
	return payload, ok, err
}

func (c *chaosCheckpointer) Save(payload []byte) error {
	c.mu.Lock()
	st := c.st
	c.mu.Unlock()
	return st.PutCheckpoint("retrain", payload)
}

func (c *chaosCheckpointer) Clear() error {
	c.mu.Lock()
	st := c.st
	c.mu.Unlock()
	return st.ClearCheckpoint("retrain")
}

// openOps measures the mutating-operation cost of store.Open on a fresh
// directory, anchoring the crash ordinals below.
func openOps(t *testing.T) int {
	t.Helper()
	ffs := faultinject.NewFS(nil, faultinject.FSConfig{Kind: faultinject.FSNone})
	if _, err := store.Open(t.TempDir(), store.Options{FS: ffs}); err != nil {
		t.Fatal(err)
	}
	return ffs.MutatingOps()
}

func TestSelfHealingRetrainSurvivesChaos(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	env := buildChaosEnv(t)

	// The serving side: registry + crash-safe model store + canary gate.
	reg := serve.NewRegistry()
	modelStore, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lc, err := serve.NewLifecycle(serve.LifecycleConfig{
		Registry: reg,
		Store:    modelStore,
		DB:       env.db,
		Canary:   serve.CanaryConfig{Workload: env.test, MaxMedian: 100, MaxP95: 1e5},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Each checkpoint save is WriteFile + Rename + SyncDir (3 mutating
	// ops) after the Open overhead. Attempt 1 dies on its 3rd save's
	// WriteFile (a plain crash, two checkpoints durable); attempt 2
	// resumes and dies on its 2nd save's WriteFile with a torn partial
	// write (one more checkpoint durable, plus a torn temp for the next
	// reboot to sweep); attempt 3 runs clean.
	open := openOps(t)
	ck := &chaosCheckpointer{
		t:   t,
		dir: t.TempDir(),
		schedule: []faultinject.FSConfig{
			{Seed: 1, Kind: faultinject.FSCrash, Op: open + 7},
			{Seed: 2, Kind: faultinject.FSTornWrite, Op: open + 4},
		},
	}

	qs := make([]*sqlparse.Query, len(env.train))
	for i := range env.train {
		qs[i] = env.train[i].Query
	}
	ret, err := NewRetrainer(RetrainConfig{
		DB:              env.db,
		Queries:         qs,
		NewEstimator:    newLocalFactory(env.db),
		Lifecycle:       lc,
		Name:            "retrained",
		Checkpoint:      ck,
		CheckpointEvery: 5, // trees between checkpoints: several saves per attempt
	})
	if err != nil {
		t.Fatal(err)
	}

	sup := NewSupervisor()
	defer sup.Close()
	var ctrl *Controller
	mon, err := drift.NewMonitor(env.db, drift.MonitorConfig{
		QError:  drift.QErrorConfig{Delta: 0.05, Lambda: 2, MinSamples: 5, MaxLogQ: 20},
		Domain:  drift.DefaultDomainConfig(),
		OnEvent: func(ev drift.Event) { ctrl.HandleEvent(ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err = NewController(ControllerConfig{
		Supervisor: sup,
		Retrainer:  ret,
		Monitor:    mon,
		Backoff:    time.Millisecond,
		MaxBackoff: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Inject drift: healthy feedback to seed the baseline, then a burst of
	// three-orders-of-magnitude q-errors until the alarm fires.
	q := env.train[0].Query
	for i := 0; i < 6; i++ {
		mon.ObserveFeedback(q, 100, 100, true)
	}
	for i := 0; i < 20; i++ {
		mon.ObserveFeedback(q, 1, 1e6, true)
		if _, ok := sup.Job("retrain"); ok {
			break
		}
	}
	if _, ok := sup.Job("retrain"); !ok {
		t.Fatal("injected drift never started a retraining job")
	}

	select {
	case <-sup.Done("retrain"):
	case <-time.After(120 * time.Second):
		t.Fatal("retraining job did not finish")
	}
	st, _ := sup.Job("retrain")
	if st.State != JobDone {
		t.Fatalf("job state = %v (attempts %d, last error %q), want done", st.State, st.Attempts, st.LastError)
	}
	if st.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (crash, torn write, clean run)", st.Attempts)
	}

	// The crashed attempts must have resumed, not restarted: attempts 2
	// and 3 both loaded a durable train-phase checkpoint, and attempt 3's
	// reboot swept the torn temp file attempt 2 left behind.
	if len(ck.loads) != 3 {
		t.Fatalf("checkpointer saw %d attempts, want 3", len(ck.loads))
	}
	if ck.loads[0].ok {
		t.Errorf("attempt 1 load = %+v, want no checkpoint", ck.loads[0])
	}
	for i, rec := range ck.loads[1:] {
		if !rec.ok || rec.phase != phaseTrain {
			t.Errorf("attempt %d load = %+v, want a durable train-phase checkpoint", i+2, rec)
		}
	}
	if ck.loads[2].tempSwept != 1 {
		t.Errorf("attempt 3 swept %d torn temps, want 1 (the torn checkpoint write)", ck.loads[2].tempSwept)
	}

	// The retrained model reached traffic through the canary gate only:
	// it is the registry default, backed by a fresh valid generation, with
	// nothing quarantined and nothing rejected.
	models, def := reg.List()
	if def != "retrained" {
		t.Errorf("registry default = %q, want retrained", def)
	}
	found := false
	for _, m := range models {
		if m.Name == "retrained" {
			found = true
			if m.Source != "retrain" {
				t.Errorf("model source = %q, want retrain", m.Source)
			}
		}
	}
	if !found {
		t.Error("retrained model is not registered")
	}
	c := ctrl.Counters()
	if c["retrain_started"].(uint64) != 1 || c["retrain_succeeded"].(uint64) != 1 {
		t.Errorf("controller counters = %v, want exactly one started and one succeeded run", c)
	}
	if c["retrain_canary_rejected"].(uint64) != 0 {
		t.Errorf("canary rejections = %v, want 0", c["retrain_canary_rejected"])
	}
	if c["retrain_failed"].(uint64) != 2 {
		t.Errorf("transient failures = %v, want 2 (the two injected crashes)", c["retrain_failed"])
	}

	// A clean reboot of the model store sees exactly one valid generation.
	reopened, err := store.Open(modelStore.Dir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := reopened.Recovery()
	if rep.Valid != 1 || rep.Corrupt != 0 || rep.Quarantined != 0 {
		t.Errorf("model store after chaos: %+v, want exactly 1 valid generation", rep)
	}

	// Success resets the drift monitor to full sensitivity.
	if widen := mon.Status()["qerror"].(map[string]any)["widen"].(float64); widen != 1 {
		t.Errorf("post-success q-error widen = %v, want 1 (Reset)", widen)
	}

	// And the checkpoint is gone: nothing stale to resume into.
	final, err := store.Open(ck.dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := final.ReadCheckpoint("retrain"); ok {
		t.Error("checkpoint survived a successful publish")
	}
}
