package trainer

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// JobFunc is one attempt of a supervised job. It must honor ctx: the
// supervisor cancels it on Close and bounds it with the per-attempt
// deadline. Returning nil completes the job; returning an error schedules a
// backoff restart unless the error is Permanent or the supervisor is
// closing.
type JobFunc func(ctx context.Context) error

// Permanent wraps err so the supervisor treats it as terminal: the job
// moves to JobFailed without restarts. Use it for failures a retry cannot
// fix — a canary-rejected model, malformed configuration.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

type permanentError struct{ err error }

func (e *permanentError) Error() string { return "permanent: " + e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// IsPermanent reports whether err (or anything it wraps) came from
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// JobState is where a job sits in the supervisor's state machine:
//
//	Submit → running → done                      (attempt returned nil)
//	              ↘ → backoff → running → …      (transient failure)
//	              ↘ → failed                     (Permanent error)
//	              ↘ → quarantined                (MaxFailures consecutive failures)
//	              ↘ → canceled                   (supervisor closed)
type JobState string

const (
	// JobRunning means an attempt is executing.
	JobRunning JobState = "running"
	// JobBackoff means the last attempt failed and the next is scheduled.
	JobBackoff JobState = "backoff"
	// JobDone means an attempt returned nil; terminal.
	JobDone JobState = "done"
	// JobFailed means an attempt returned a Permanent error; terminal.
	JobFailed JobState = "failed"
	// JobQuarantined means MaxFailures consecutive attempts failed — the
	// poison-pill brake that stops a crashing job from looping forever;
	// terminal.
	JobQuarantined JobState = "quarantined"
	// JobCanceled means the supervisor closed mid-job; terminal.
	JobCanceled JobState = "canceled"
)

// terminal reports whether a state accepts no further transitions.
func (s JobState) terminal() bool {
	switch s {
	case JobDone, JobFailed, JobQuarantined, JobCanceled:
		return true
	}
	return false
}

// JobSpec configures one supervised job.
type JobSpec struct {
	// Name identifies the job; one active job per name.
	Name string
	// Run is one attempt. Required.
	Run JobFunc
	// Backoff is the delay before the first restart; it doubles per
	// consecutive failure. Default 500ms.
	Backoff time.Duration
	// MaxBackoff caps the doubling. Default 30s.
	MaxBackoff time.Duration
	// MaxFailures quarantines the job after this many consecutive failed
	// attempts. Default 5.
	MaxFailures int
	// Deadline bounds each attempt; 0 means no per-attempt deadline. A
	// timed-out attempt counts as a failure.
	Deadline time.Duration
	// OnTerminal, when non-nil, is called exactly once as the job reaches a
	// terminal state, with the final state and last error (nil for JobDone).
	OnTerminal func(state JobState, err error)
}

func (s *JobSpec) withDefaults() error {
	if s.Name == "" {
		return fmt.Errorf("trainer: job needs a name")
	}
	if s.Run == nil {
		return fmt.Errorf("trainer: job %q has no Run function", s.Name)
	}
	if s.Backoff <= 0 {
		s.Backoff = 500 * time.Millisecond
	}
	if s.MaxBackoff <= 0 {
		s.MaxBackoff = 30 * time.Second
	}
	if s.MaxBackoff < s.Backoff {
		s.MaxBackoff = s.Backoff
	}
	if s.MaxFailures <= 0 {
		s.MaxFailures = 5
	}
	return nil
}

// JobStatus is a point-in-time snapshot of one job.
type JobStatus struct {
	Name      string    `json:"name"`
	State     JobState  `json:"state"`
	Attempts  int       `json:"attempts"`
	Failures  int       `json:"failures"` // consecutive, reset by a nil attempt
	LastError string    `json:"lastError,omitempty"`
	UpdatedAt time.Time `json:"updatedAt"`
}

type job struct {
	spec   JobSpec
	doneCh chan struct{}

	mu     sync.Mutex
	status JobStatus
}

func (j *job) update(mut func(st *JobStatus)) {
	j.mu.Lock()
	mut(&j.status)
	j.status.UpdatedAt = time.Now()
	j.mu.Unlock()
}

func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// ErrJobActive rejects a Submit whose name already has a live job.
var ErrJobActive = errors.New("trainer: a job with this name is still active")

// ErrSupervisorClosed rejects Submits after Close.
var ErrSupervisorClosed = errors.New("trainer: supervisor is closed")

// Supervisor runs jobs with crash-style restart semantics: exponential
// backoff between attempts, quarantine after repeated failure, cancellation
// of everything on Close. Safe for concurrent use.
type Supervisor struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	closed bool
}

// NewSupervisor returns a running supervisor. Call Close to stop it and
// wait for its jobs.
func NewSupervisor() *Supervisor {
	ctx, cancel := context.WithCancel(context.Background())
	return &Supervisor{ctx: ctx, cancel: cancel, jobs: make(map[string]*job)}
}

// Submit starts spec under supervision. A name whose previous job reached a
// terminal state may be reused; an active name returns ErrJobActive.
func (s *Supervisor) Submit(spec JobSpec) error {
	if err := spec.withDefaults(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSupervisorClosed
	}
	if prev, ok := s.jobs[spec.Name]; ok && !prev.snapshot().State.terminal() {
		return fmt.Errorf("%w: %q", ErrJobActive, spec.Name)
	}
	j := &job{
		spec:   spec,
		doneCh: make(chan struct{}),
		status: JobStatus{Name: spec.Name, State: JobRunning, UpdatedAt: time.Now()},
	}
	s.jobs[spec.Name] = j
	s.wg.Add(1)
	go s.runJob(j)
	return nil
}

// runJob drives one job through the state machine until terminal.
func (s *Supervisor) runJob(j *job) {
	defer s.wg.Done()
	defer close(j.doneCh)

	finish := func(state JobState, err error) {
		j.update(func(st *JobStatus) {
			st.State = state
			if err != nil {
				st.LastError = err.Error()
			}
		})
		if j.spec.OnTerminal != nil {
			j.spec.OnTerminal(state, err)
		}
	}

	backoff := j.spec.Backoff
	for {
		j.update(func(st *JobStatus) { st.State = JobRunning; st.Attempts++ })
		err := s.attempt(j)
		switch {
		case err == nil:
			finish(JobDone, nil)
			return
		case s.ctx.Err() != nil:
			// The supervisor is closing; the attempt's error is cancellation
			// fallout, not a verdict on the job.
			finish(JobCanceled, err)
			return
		case IsPermanent(err):
			finish(JobFailed, err)
			return
		}

		failures := 0
		j.update(func(st *JobStatus) {
			st.Failures++
			st.State = JobBackoff
			st.LastError = err.Error()
			failures = st.Failures
		})
		if failures >= j.spec.MaxFailures {
			finish(JobQuarantined, err)
			return
		}

		t := time.NewTimer(backoff)
		select {
		case <-s.ctx.Done():
			t.Stop()
			finish(JobCanceled, err)
			return
		case <-t.C:
		}
		if backoff *= 2; backoff > j.spec.MaxBackoff {
			backoff = j.spec.MaxBackoff
		}
	}
}

// attempt runs one attempt under the per-attempt deadline, converting a
// panic into an error so a crashing job trips the poison-pill counter
// instead of killing the process.
func (s *Supervisor) attempt(j *job) (err error) {
	ctx := s.ctx
	if j.spec.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.spec.Deadline)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("trainer: job %q panicked: %v", j.spec.Name, r)
		}
	}()
	return j.spec.Run(ctx)
}

// Job returns the named job's status.
func (s *Supervisor) Job(name string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[name]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.snapshot(), true
}

// Done returns a channel closed when the named job reaches a terminal
// state; a nil channel (never ready) for unknown names.
func (s *Supervisor) Done(name string) <-chan struct{} {
	s.mu.Lock()
	j, ok := s.jobs[name]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	return j.doneCh
}

// Status snapshots every job, sorted by name.
func (s *Supervisor) Status() []JobStatus {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Close cancels every running job and waits for them to finish. Idempotent.
func (s *Supervisor) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}
