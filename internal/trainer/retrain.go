package trainer

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"

	"qfe/internal/estimator"
	"qfe/internal/exec"
	"qfe/internal/serve"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
	"qfe/internal/workload"
)

// RetrainConfig assembles a Retrainer.
type RetrainConfig struct {
	// DB is the live database; labels are recomputed against it, which is
	// the whole point of retraining under data drift.
	DB *table.DB
	// Queries is the bound training workload to relabel and refit on.
	Queries []*sqlparse.Query
	// NewEstimator builds a fresh, untrained local estimator per attempt.
	NewEstimator func() (*estimator.Local, error)
	// Lifecycle is the only path to traffic: the retrained model publishes
	// through its canary gate, MakeDefault on admission. Required.
	Lifecycle *serve.Lifecycle
	// Name is the registry name to publish under. Default "retrained".
	Name string
	// Checkpoint, when non-nil, makes the job resumable across crashes.
	Checkpoint Checkpointer
	// LabelChunk is how many queries are labeled between checkpoints.
	// Default 256.
	LabelChunk int
	// CheckpointEvery is the model-level checkpoint cadence (trees for GB,
	// epochs for NN). Default 10.
	CheckpointEvery int
	// Workers bounds labeling and training goroutines; 0 means one per CPU.
	Workers int
	// ActualLookup, when non-nil, is consulted per query before the exact
	// executor: a hit (a true cardinality journaled from live feedback)
	// labels the query for free. Misses fall back to CountManyResume as
	// before. The daemon wires the feedback journal's actual index here.
	ActualLookup func(q *sqlparse.Query) (int64, bool)
}

func (c *RetrainConfig) withDefaults() error {
	switch {
	case c.DB == nil:
		return fmt.Errorf("trainer: RetrainConfig.DB is required")
	case len(c.Queries) == 0:
		return fmt.Errorf("trainer: RetrainConfig.Queries is empty")
	case c.NewEstimator == nil:
		return fmt.Errorf("trainer: RetrainConfig.NewEstimator is required")
	case c.Lifecycle == nil:
		return fmt.Errorf("trainer: RetrainConfig.Lifecycle is required")
	}
	if c.Name == "" {
		c.Name = "retrained"
	}
	if c.LabelChunk <= 0 {
		c.LabelChunk = 256
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 10
	}
	return nil
}

// jobCheckpoint is the durable progress of one retraining job. Phase
// "label" carries the partial label vector (-1 = not yet labeled); phase
// "train" additionally carries the estimator's own opaque training-progress
// payload. Labels ride along in both phases so a train-phase resume never
// relabels.
type jobCheckpoint struct {
	Phase  string  `json:"phase"` // "label" or "train"
	Labels []int64 `json:"labels"`
	Train  []byte  `json:"train,omitempty"`
}

const (
	phaseLabel = "label"
	phaseTrain = "train"
)

// Retrainer is one resumable retraining pipeline: relabel → refit →
// canary-gated publish. Run is a JobFunc modulo the error wrapping the
// Controller adds; a Retrainer is stateless between runs except for its
// durable checkpoint.
type Retrainer struct {
	cfg RetrainConfig

	journalLabels atomic.Uint64
}

// noteJournalLabels accumulates how many labels came from journaled
// feedback instead of exact execution.
func (r *Retrainer) noteJournalLabels(n int) {
	if n > 0 {
		r.journalLabels.Add(uint64(n))
	}
}

// JournalLabels reports how many training labels, across all attempts, were
// satisfied from journaled feedback instead of exact COUNT(*) execution.
func (r *Retrainer) JournalLabels() uint64 { return r.journalLabels.Load() }

// NewRetrainer validates cfg and returns a Retrainer.
func NewRetrainer(cfg RetrainConfig) (*Retrainer, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	return &Retrainer{cfg: cfg}, nil
}

// Run executes one retraining attempt end to end and returns the
// publication of the admitted model. A canary rejection surfaces as an
// error wrapping serve.ErrCanaryRejected with nothing published. The
// checkpoint is cleared only after a successful publish: a rejected model's
// checkpoint would resume into the identical rejected model, so it is
// cleared on rejection too.
func (r *Retrainer) Run(ctx context.Context) (serve.Publication, error) {
	ck := r.loadCheckpoint()

	labels, err := r.label(ctx, ck)
	if err != nil {
		return serve.Publication{}, err
	}

	loc, err := r.train(ctx, ck, labels)
	if err != nil {
		return serve.Publication{}, err
	}

	var snap bytes.Buffer
	if err := loc.SaveJSON(&snap); err != nil {
		return serve.Publication{}, fmt.Errorf("trainer: serialize retrained model: %w", err)
	}
	pub, err := r.cfg.Lifecycle.Publish(ctx, serve.PublishSpec{
		Name:        r.cfg.Name,
		Est:         loc,
		Kind:        estimator.KindLocal,
		Source:      "retrain",
		Snapshot:    snap.Bytes(),
		MakeDefault: true,
	})
	if err != nil {
		if errors.Is(err, serve.ErrCanaryRejected) {
			// Resuming this checkpoint would deterministically rebuild the
			// same rejected model; drop it so the next attempt starts fresh.
			r.clearCheckpoint()
		}
		return pub, err
	}
	r.clearCheckpoint()
	return pub, nil
}

// label recomputes ground-truth cardinalities against the live database,
// resuming from — and periodically saving — the durable label vector.
func (r *Retrainer) label(ctx context.Context, ck *jobCheckpoint) ([]int64, error) {
	n := len(r.cfg.Queries)
	labels := ck.Labels
	if len(labels) != n {
		// No checkpoint, or one for a different workload: start over.
		labels = make([]int64, n)
		for i := range labels {
			labels[i] = -1
		}
		ck.Train = nil
		ck.Phase = phaseLabel
	}
	if ck.Phase == phaseTrain {
		return labels, nil // labeling finished in a previous attempt
	}

	if r.cfg.ActualLookup != nil {
		// Journaled feedback first: every hit is one exact COUNT(*) the
		// labeling pass no longer pays for. Only still-unlabeled slots are
		// consulted, so resumed checkpoints keep their earlier labels.
		hits := 0
		for i, q := range r.cfg.Queries {
			if labels[i] >= 0 {
				continue
			}
			if card, ok := r.cfg.ActualLookup(q); ok && card >= 0 {
				labels[i] = card
				hits++
			}
		}
		r.noteJournalLabels(hits)
	}

	cache := exec.NewPredCache(0)
	for lo := 0; lo < n; lo += r.cfg.LabelChunk {
		hi := lo + r.cfg.LabelChunk
		if hi > n {
			hi = n
		}
		done := true
		for _, v := range labels[lo:hi] {
			if v < 0 {
				done = false
				break
			}
		}
		if done {
			continue
		}
		sub, lerr := exec.CountManyResume(ctx, r.cfg.DB, r.cfg.Queries[lo:hi], labels[lo:hi], cache, r.cfg.Workers)
		copy(labels[lo:hi], sub)
		if lerr != nil {
			// Persist what did label before failing: the retry pays only for
			// the rest.
			r.saveCheckpoint(&jobCheckpoint{Phase: phaseLabel, Labels: labels})
			return nil, fmt.Errorf("trainer: label queries [%d,%d): %w", lo, hi, lerr)
		}
		if hi < n {
			if err := r.saveCheckpoint(&jobCheckpoint{Phase: phaseLabel, Labels: labels}); err != nil {
				return nil, err
			}
		}
	}
	return labels, nil
}

// train fits a fresh estimator over the labeled workload, checkpointing
// through the estimator's resumable-progress hook.
func (r *Retrainer) train(ctx context.Context, ck *jobCheckpoint, labels []int64) (*estimator.Local, error) {
	loc, err := r.cfg.NewEstimator()
	if err != nil {
		return nil, fmt.Errorf("trainer: build estimator: %w", err)
	}
	set := make(workload.Set, len(r.cfg.Queries))
	for i, q := range r.cfg.Queries {
		set[i] = workload.Labeled{Query: q, Card: labels[i]}
	}
	opts := &estimator.TrainOpts{CheckpointEvery: r.cfg.CheckpointEvery}
	if r.cfg.Checkpoint != nil {
		opts.OnCheckpoint = func(payload []byte) error {
			return r.saveCheckpoint(&jobCheckpoint{Phase: phaseTrain, Labels: labels, Train: payload})
		}
	}
	if ck.Phase == phaseTrain && len(ck.Train) > 0 {
		opts.Resume = ck.Train
	}
	if err := loc.TrainCtx(ctx, set, opts); err != nil {
		return nil, fmt.Errorf("trainer: fit: %w", err)
	}
	return loc, nil
}

// loadCheckpoint returns the durable progress, or empty progress when there
// is none (or it is unreadable — corruption means start fresh, never fail).
func (r *Retrainer) loadCheckpoint() *jobCheckpoint {
	ck := &jobCheckpoint{}
	if r.cfg.Checkpoint == nil {
		return ck
	}
	payload, ok, err := r.cfg.Checkpoint.Load()
	if err != nil || !ok {
		return ck
	}
	if json.Unmarshal(payload, ck) != nil {
		return &jobCheckpoint{}
	}
	return ck
}

func (r *Retrainer) saveCheckpoint(ck *jobCheckpoint) error {
	if r.cfg.Checkpoint == nil {
		return nil
	}
	payload, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("trainer: encode checkpoint: %w", err)
	}
	if err := r.cfg.Checkpoint.Save(payload); err != nil {
		return fmt.Errorf("trainer: save checkpoint: %w", err)
	}
	return nil
}

func (r *Retrainer) clearCheckpoint() {
	if r.cfg.Checkpoint != nil {
		r.cfg.Checkpoint.Clear() //nolint:errcheck // best-effort; a stale checkpoint only costs a resume
	}
}
