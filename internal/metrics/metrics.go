// Package metrics implements the error metrics and summary statistics used
// throughout the paper's evaluation (Section 5).
//
// The central metric is the q-error (Moerkotte et al. [19]),
//
//	qerr(x, e) = max(x/e, e/x),
//
// a relative, symmetric measure of the deviation between a true cardinality x
// and its estimate e. The paper reports q-error distributions as boxplots
// (1%, 25%, 50%, 75%, 99% quantiles) and as mean/median/99%/max tables; this
// package provides both summaries.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// QError returns the q-error max(truth/estimate, estimate/truth).
//
// Following the paper's convention, both inputs are clamped to be >= 1 before
// the ratio is taken: the evaluation considers only queries with non-empty
// results and forces all estimates to be at least one, so the q-error is
// always defined and >= 1. The clamp also absorbs degenerate inputs an
// unhealthy estimator can emit — NaN, zero, and negative values all clamp to
// 1 — so aggregates over a workload never poison on a single bad estimate. A
// +Inf input stays +Inf, yielding an infinite q-error: an unboundedly wrong
// estimate should dominate a summary, not vanish from it.
func QError(truth, estimate float64) float64 {
	// !(x >= 1) instead of x < 1: the negated form is true for NaN too.
	if !(truth >= 1) {
		truth = 1
	}
	if !(estimate >= 1) {
		estimate = 1
	}
	// Inf/Inf is NaN; with both inputs infinite there is no information
	// about the deviation, so report the worst case rather than poison.
	if math.IsInf(truth, 1) && math.IsInf(estimate, 1) {
		return math.Inf(1)
	}
	if truth > estimate {
		return truth / estimate
	}
	return estimate / truth
}

// QErrors applies QError pairwise. It panics if the slices differ in length,
// since that is always a programming error in the harness.
func QErrors(truths, estimates []float64) []float64 {
	if len(truths) != len(estimates) {
		panic(fmt.Sprintf("metrics: %d truths vs %d estimates", len(truths), len(estimates)))
	}
	out := make([]float64, len(truths))
	for i := range truths {
		out[i] = QError(truths[i], estimates[i])
	}
	return out
}

// RelativeError returns |e-x| / x. The paper discusses why this metric is
// insufficient for estimator comparison (it systematically prefers
// underestimation, [28]); it is provided for completeness and tests only.
func RelativeError(truth, estimate float64) float64 {
	if truth == 0 {
		return math.Inf(1)
	}
	return math.Abs(estimate-truth) / math.Abs(truth)
}

// Summary holds the aggregate statistics the paper reports in its tables:
// mean, median, the 99% quantile, and the maximum.
type Summary struct {
	Count  int
	Mean   float64
	Median float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary over vals. An empty input yields a zero
// Summary with Count == 0.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		Count:  len(sorted),
		Mean:   sum / float64(len(sorted)),
		Median: quantileSorted(sorted, 0.50),
		P99:    quantileSorted(sorted, 0.99),
		Max:    sorted[len(sorted)-1],
	}
}

// String renders the summary in the "mean median 99% max" column order used
// by Tables 1, 2, 3, and 5 of the paper.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.2f median=%.2f p99=%.2f max=%.2f (n=%d)",
		s.Mean, s.Median, s.P99, s.Max, s.Count)
}

// BoxplotStats holds the five statistics drawn in the paper's boxplot
// figures: the whiskers at the 1% and 99% quantiles, the box at the 25% and
// 75% quantiles, and the median band.
type BoxplotStats struct {
	P01    float64
	P25    float64
	Median float64
	P75    float64
	P99    float64
}

// Boxplot computes BoxplotStats over vals. An empty input yields zeros.
func Boxplot(vals []float64) BoxplotStats {
	if len(vals) == 0 {
		return BoxplotStats{}
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	return BoxplotStats{
		P01:    quantileSorted(sorted, 0.01),
		P25:    quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.50),
		P75:    quantileSorted(sorted, 0.75),
		P99:    quantileSorted(sorted, 0.99),
	}
}

// String renders the boxplot stats on one line, whiskers outermost.
func (b BoxplotStats) String() string {
	return fmt.Sprintf("p01=%.2f p25=%.2f median=%.2f p75=%.2f p99=%.2f",
		b.P01, b.P25, b.Median, b.P75, b.P99)
}

// Quantile returns the q-quantile (0 <= q <= 1) of vals using linear
// interpolation between closest ranks, matching numpy's default method so
// results line up with the paper's Python evaluation pipeline.
func Quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of vals, or 0 for empty input.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// GeometricMean returns the geometric mean of vals, a robust aggregate for
// heavy-tailed q-error distributions. Non-positive values are clamped to 1.
func GeometricMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		if v < 1 {
			v = 1
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}
