package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQErrorBasics(t *testing.T) {
	tests := []struct {
		name            string
		truth, estimate float64
		want            float64
	}{
		{"exact", 100, 100, 1},
		{"overestimate 2x", 100, 200, 2},
		{"underestimate 2x", 100, 50, 2},
		{"truth clamped to 1", 0, 10, 10},
		{"estimate clamped to 1", 10, 0, 10},
		{"both clamped", 0, 0, 1},
		{"large ratio", 1, 1e6, 1e6},
		{"negative truth clamped", -50, 10, 10},
		{"negative estimate clamped", 10, -50, 10},
		{"nan truth clamped", math.NaN(), 10, 10},
		{"nan estimate clamped", 10, math.NaN(), 10},
		{"both nan clamped", math.NaN(), math.NaN(), 1},
		{"inf estimate dominates", 10, math.Inf(1), math.Inf(1)},
		{"negative inf clamped", 10, math.Inf(-1), 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := QError(tt.truth, tt.estimate); got != tt.want {
				t.Errorf("QError(%v, %v) = %v, want %v", tt.truth, tt.estimate, got, tt.want)
			}
		})
	}
}

func TestQErrorSymmetric(t *testing.T) {
	// q-error is symmetric in truth and estimate: the paper chose it over
	// relative error precisely for this property.
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		return QError(a, b) == QError(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQErrorAtLeastOne(t *testing.T) {
	f := func(a, b float64) bool {
		return QError(math.Abs(a), math.Abs(b)) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQErrorsPairwise(t *testing.T) {
	got := QErrors([]float64{10, 20, 30}, []float64{10, 40, 10})
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("QErrors[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestQErrorsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QErrors did not panic on length mismatch")
		}
	}()
	QErrors([]float64{1}, []float64{1, 2})
}

func TestRelativeErrorAsymmetry(t *testing.T) {
	// Documents the insufficiency the paper cites: under relative error, an
	// underestimate by half scores better than an overestimate by double.
	under := RelativeError(100, 50)
	over := RelativeError(100, 200)
	if !(under < over) {
		t.Errorf("relative error should prefer underestimates: under=%v over=%v", under, over)
	}
	// The q-error treats them identically.
	if QError(100, 50) != QError(100, 200) {
		t.Error("q-error should treat 2x under and over identically")
	}
	if !math.IsInf(RelativeError(0, 5), 1) {
		t.Error("RelativeError(0, e) should be +Inf")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	if s.Mean != 22 {
		t.Errorf("Mean = %v, want 22", s.Mean)
	}
	if s.Median != 3 {
		t.Errorf("Median = %v, want 3", s.Median)
	}
	if s.Max != 100 {
		t.Errorf("Max = %v, want 100", s.Max)
	}
	if s.P99 <= 4 || s.P99 > 100 {
		t.Errorf("P99 = %v, want in (4, 100]", s.P99)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 || s.Max != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Summarize mutated its input: %v", in)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	vals := []float64{0, 10, 20, 30, 40}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 0},
		{0.25, 10},
		{0.5, 20},
		{0.75, 30},
		{1, 40},
		{0.125, 5}, // interpolates between 0 and 10
	}
	for _, tt := range tests {
		if got := Quantile(vals, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestQuantileSingleValue(t *testing.T) {
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("Quantile of singleton = %v, want 7", got)
	}
}

func TestBoxplotOrdering(t *testing.T) {
	// Boxplot statistics must be monotone: p01 <= p25 <= median <= p75 <= p99.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = math.Abs(v)
		}
		b := Boxplot(vals)
		return b.P01 <= b.P25 && b.P25 <= b.Median && b.Median <= b.P75 && b.P75 <= b.P99
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoxplotKnown(t *testing.T) {
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = float64(i)
	}
	b := Boxplot(vals)
	if b.Median != 50 {
		t.Errorf("Median = %v, want 50", b.Median)
	}
	if b.P25 != 25 || b.P75 != 75 {
		t.Errorf("quartiles = %v, %v, want 25, 75", b.P25, b.P75)
	}
	if b.P01 != 1 || b.P99 != 99 {
		t.Errorf("whiskers = %v, %v, want 1, 99", b.P01, b.P99)
	}
}

func TestMeanAndGeometricMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v, want 4", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := GeometricMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeometricMean = %v, want 2", got)
	}
	// Geometric mean is robust to one huge outlier relative to the mean.
	vals := []float64{1, 1, 1, 1, 1e9}
	if gm, m := GeometricMean(vals), Mean(vals); gm >= m {
		t.Errorf("geometric mean %v should be far below mean %v", gm, m)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2})
	if got := s.String(); got == "" {
		t.Error("Summary.String() is empty")
	}
	b := Boxplot([]float64{1, 2})
	if got := b.String(); got == "" {
		t.Error("BoxplotStats.String() is empty")
	}
}

func TestQErrorNeverNaN(t *testing.T) {
	// Whatever garbage an unhealthy estimator emits, the q-error must stay a
	// usable number (>= 1, possibly +Inf) so workload summaries never poison.
	f := func(a, b float64) bool {
		q := QError(a, b)
		return !math.IsNaN(q) && q >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -1} {
		for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -1, 10} {
			q := QError(v, w)
			if math.IsNaN(q) || q < 1 {
				t.Errorf("QError(%v, %v) = %v", v, w, q)
			}
		}
	}
}
