// Package catalog describes database schemas: which tables exist, how they
// are connected by key/foreign-key relationships, and which sub-schemas
// (connected table subsets) exist.
//
// Sub-schemas are the unit of the paper's local-model approach
// (Section 2.1.2): one estimator is built per base table or join result. The
// catalog enumerates the connected sub-schemas of the key/foreign-key graph
// and provides canonical keys so that queries can be routed to the local
// model responsible for their table set.
package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// ForeignKey is a many-to-one key/foreign-key edge: each row of FromTable
// references at most one row of ToTable via FromCol = ToCol.
type ForeignKey struct {
	FromTable, FromCol string
	ToTable, ToCol     string
}

// String renders the edge as "from.col -> to.col".
func (fk ForeignKey) String() string {
	return fmt.Sprintf("%s.%s -> %s.%s", fk.FromTable, fk.FromCol, fk.ToTable, fk.ToCol)
}

// Schema is a set of tables plus the key/foreign-key edges connecting them.
type Schema struct {
	Tables []string
	FKs    []ForeignKey
}

// HasTable reports whether name is one of the schema's tables.
func (s *Schema) HasTable(name string) bool {
	for _, t := range s.Tables {
		if t == name {
			return true
		}
	}
	return false
}

// Edge returns the foreign-key edge between tables a and b in either
// direction, and whether one exists.
func (s *Schema) Edge(a, b string) (ForeignKey, bool) {
	for _, fk := range s.FKs {
		if (fk.FromTable == a && fk.ToTable == b) || (fk.FromTable == b && fk.ToTable == a) {
			return fk, true
		}
	}
	return ForeignKey{}, false
}

// SubSchemaKey returns the canonical identifier for a table subset: the
// sorted table names joined by "+". Local models are registered under this
// key.
func SubSchemaKey(tables []string) string {
	sorted := append([]string(nil), tables...)
	sort.Strings(sorted)
	return strings.Join(sorted, "+")
}

// ConnectedSubSchemas enumerates all connected table subsets of the schema
// with between 1 and maxTables tables, in deterministic order (by size, then
// by key). For a schema of n tables there are at most 2^n - 1 subsets; the
// paper notes that real deployments prune this set via System-R style
// assumptions, which callers can apply on top.
func (s *Schema) ConnectedSubSchemas(maxTables int) [][]string {
	if maxTables <= 0 || maxTables > len(s.Tables) {
		maxTables = len(s.Tables)
	}
	n := len(s.Tables)
	index := make(map[string]int, n)
	for i, t := range s.Tables {
		index[t] = i
	}
	adj := make([][]int, n)
	for _, fk := range s.FKs {
		a, aok := index[fk.FromTable]
		b, bok := index[fk.ToTable]
		if aok && bok {
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
	}

	var out [][]string
	for mask := 1; mask < (1 << n); mask++ {
		size := 0
		for m := mask; m != 0; m &= m - 1 {
			size++
		}
		if size > maxTables {
			continue
		}
		if !connected(mask, adj, n) {
			continue
		}
		var subset []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				subset = append(subset, s.Tables[i])
			}
		}
		out = append(out, subset)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return SubSchemaKey(out[i]) < SubSchemaKey(out[j])
	})
	return out
}

// connected reports whether the tables selected by mask form a connected
// subgraph of the foreign-key graph.
func connected(mask int, adj [][]int, n int) bool {
	start := -1
	for i := 0; i < n; i++ {
		if mask&(1<<i) != 0 {
			start = i
			break
		}
	}
	if start < 0 {
		return false
	}
	seen := 1 << start
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if mask&(1<<w) != 0 && seen&(1<<w) == 0 {
				seen |= 1 << w
				stack = append(stack, w)
			}
		}
	}
	return seen == mask
}

// JoinEdges returns the foreign-key edges of the schema restricted to the
// given table subset. It returns an error when the subset is not connected
// by those edges (i.e. the tables cannot be joined along key/foreign-key
// relationships), mirroring the paper's assumption in Section 2.1.2.
func (s *Schema) JoinEdges(tables []string) ([]ForeignKey, error) {
	in := make(map[string]bool, len(tables))
	for _, t := range tables {
		if !s.HasTable(t) {
			return nil, fmt.Errorf("catalog: unknown table %q", t)
		}
		in[t] = true
	}
	var edges []ForeignKey
	for _, fk := range s.FKs {
		if in[fk.FromTable] && in[fk.ToTable] {
			edges = append(edges, fk)
		}
	}
	// Connectivity check via union-find over the subset.
	parent := make(map[string]string, len(tables))
	for _, t := range tables {
		parent[t] = t
	}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range edges {
		parent[find(e.FromTable)] = find(e.ToTable)
	}
	root := find(tables[0])
	for _, t := range tables[1:] {
		if find(t) != root {
			return nil, fmt.Errorf("catalog: tables %v are not connected by key/foreign-key edges", tables)
		}
	}
	return edges, nil
}

// TableBitvector encodes the table subset as the binary vector described in
// Section 2.1.2 for global models: entry i is 1 when the schema's i-th table
// participates in the query. The result has one entry per schema table.
func (s *Schema) TableBitvector(tables []string) []float64 {
	in := make(map[string]bool, len(tables))
	for _, t := range tables {
		in[t] = true
	}
	vec := make([]float64, len(s.Tables))
	for i, t := range s.Tables {
		if in[t] {
			vec[i] = 1
		}
	}
	return vec
}
