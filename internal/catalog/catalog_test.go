package catalog

import (
	"testing"
)

func chainSchema() *Schema {
	// a -> b -> c: a chain, plus isolated d.
	return &Schema{
		Tables: []string{"a", "b", "c", "d"},
		FKs: []ForeignKey{
			{FromTable: "a", FromCol: "b_id", ToTable: "b", ToCol: "id"},
			{FromTable: "b", FromCol: "c_id", ToTable: "c", ToCol: "id"},
		},
	}
}

func TestConnectedSubSchemasChain(t *testing.T) {
	s := chainSchema()
	subs := s.ConnectedSubSchemas(0)
	// Connected subsets: {a},{b},{c},{d},{a,b},{b,c},{a,b,c} = 7.
	if len(subs) != 7 {
		t.Fatalf("got %d sub-schemas, want 7: %v", len(subs), subs)
	}
	// {a, c} must not appear (disconnected without b).
	for _, sub := range subs {
		if SubSchemaKey(sub) == "a+c" {
			t.Error("disconnected subset {a,c} enumerated")
		}
	}
}

func TestConnectedSubSchemasMaxTables(t *testing.T) {
	s := chainSchema()
	subs := s.ConnectedSubSchemas(1)
	if len(subs) != 4 {
		t.Fatalf("maxTables=1: got %d, want 4 singles", len(subs))
	}
	subs = s.ConnectedSubSchemas(2)
	if len(subs) != 6 {
		t.Fatalf("maxTables=2: got %d, want 6", len(subs))
	}
}

func TestSubSchemaKeyCanonical(t *testing.T) {
	if SubSchemaKey([]string{"b", "a"}) != "a+b" {
		t.Error("key not sorted")
	}
	if SubSchemaKey([]string{"x"}) != "x" {
		t.Error("single key wrong")
	}
}

func TestJoinEdges(t *testing.T) {
	s := chainSchema()
	edges, err := s.JoinEdges([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 {
		t.Fatalf("got %d edges, want 2", len(edges))
	}
	if _, err := s.JoinEdges([]string{"a", "c"}); err == nil {
		t.Error("disconnected pair accepted")
	}
	if _, err := s.JoinEdges([]string{"a", "nope"}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := s.JoinEdges([]string{"a"}); err != nil {
		t.Errorf("singleton should be trivially connected: %v", err)
	}
}

func TestEdgeLookup(t *testing.T) {
	s := chainSchema()
	if _, ok := s.Edge("a", "b"); !ok {
		t.Error("edge a-b missing")
	}
	if _, ok := s.Edge("b", "a"); !ok {
		t.Error("edge lookup must be symmetric")
	}
	if _, ok := s.Edge("a", "c"); ok {
		t.Error("phantom edge a-c")
	}
}

func TestTableBitvector(t *testing.T) {
	s := chainSchema()
	v := s.TableBitvector([]string{"a", "c"})
	want := []float64{1, 0, 1, 0}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("bitvector = %v, want %v", v, want)
		}
	}
}

func TestHasTable(t *testing.T) {
	s := chainSchema()
	if !s.HasTable("a") || s.HasTable("zz") {
		t.Error("HasTable misbehaves")
	}
}

func TestForeignKeyString(t *testing.T) {
	fk := ForeignKey{FromTable: "x", FromCol: "y_id", ToTable: "y", ToCol: "id"}
	if fk.String() != "x.y_id -> y.id" {
		t.Errorf("String = %q", fk.String())
	}
}
