// Package workload generates and labels the query workloads of the paper's
// evaluation (Section 5, "Data sets & query workloads"):
//
//   - conjunctive workloads over the forest table: k distinct attributes
//     drawn at random, one closed range per attribute plus up to l
//     not-equal predicates excluding values from that range;
//   - mixed workloads (Definition 3.3): the per-attribute generation is
//     repeated up to m times and concatenated via OR;
//   - JOB-light-style join suites over the IMDb star schema: 2–5 joins,
//     conjunctive selections with at most one range per attribute;
//   - drift splits (Section 5.5.1): low-dimensional training queries versus
//     high-dimensional test queries.
//
// Every generated query is labeled with its true cardinality by the exact
// executor, and — matching the paper's setup — queries with empty results
// are discarded. Generation anchors predicates at values of randomly chosen
// data rows so that the non-empty rejection loop converges quickly.
package workload

import (
	"context"
	"fmt"
	"math/rand"

	"qfe/internal/exec"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// Labeled is a query together with its true result cardinality.
type Labeled struct {
	Query *sqlparse.Query
	Card  int64
}

// Set is an ordered collection of labeled queries.
type Set []Labeled

// Cards returns the true cardinalities as float64s, ready for q-error
// computation.
func (s Set) Cards() []float64 {
	out := make([]float64, len(s))
	for i, l := range s {
		out[i] = float64(l.Card)
	}
	return out
}

// Queries returns the bare queries.
func (s Set) Queries() []*sqlparse.Query {
	out := make([]*sqlparse.Query, len(s))
	for i, l := range s {
		out[i] = l.Query
	}
	return out
}

// Split partitions the set into a training prefix of n queries and the
// remaining test queries. It panics if n exceeds the set size; the caller
// controls sizes.
func (s Set) Split(n int) (train, test Set) {
	if n > len(s) {
		panic(fmt.Sprintf("workload: split %d of %d", n, len(s)))
	}
	return s[:n], s[n:]
}

// SplitByAttrs implements the query-drift split of Section 5.5.1: queries
// mentioning at most maxTrainAttrs distinct attributes go to the training
// side, queries mentioning more go to the test side.
func (s Set) SplitByAttrs(maxTrainAttrs int) (train, test Set) {
	for _, l := range s {
		if sqlparse.NumAttributes(l.Query) <= maxTrainAttrs {
			train = append(train, l)
		} else {
			test = append(test, l)
		}
	}
	return train, test
}

// GroupByAttrs buckets the set by the number of distinct attributes
// mentioned — the x-axis of Figures 2, 4, and 5.
func (s Set) GroupByAttrs() map[int]Set {
	out := make(map[int]Set)
	for _, l := range s {
		k := sqlparse.NumAttributes(l.Query)
		out[k] = append(out[k], l)
	}
	return out
}

// GroupByPreds buckets the set by the number of simple predicates — the
// x-axis of Figure 3.
func (s Set) GroupByPreds() map[int]Set {
	out := make(map[int]Set)
	for _, l := range s {
		k := sqlparse.NumPredicates(l.Query)
		out[k] = append(out[k], l)
	}
	return out
}

// MeanCard returns the average true cardinality (reported for the drift
// workloads in Section 5.5.1).
func (s Set) MeanCard() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, l := range s {
		sum += float64(l.Card)
	}
	return sum / float64(len(s))
}

// label counts q against db and appends it to dst when non-empty, returning
// the updated set and whether the query qualified. The per-run cache
// memoizes simple-predicate bitmaps across the generate-and-reject loop —
// counts are exact with or without it, so generated sets are identical.
func label(db *table.DB, q *sqlparse.Query, dst Set, cache *exec.PredCache) (Set, bool, error) {
	card, err := exec.CountCached(context.Background(), db, q, cache)
	if err != nil {
		return dst, false, err
	}
	if card == 0 {
		return dst, false, nil
	}
	return append(dst, Labeled{Query: q, Card: card}), true, nil
}

// LabelMany labels qs in parallel (one worker per logical CPU, shared
// predicate-bitmap cache) and returns the non-empty queries as a Set,
// preserving input order. Queries with empty results are discarded, matching
// the generators' rejection rule. Labels are bit-identical to sequential
// labeling; see exec.CountManyCtx.
func LabelMany(ctx context.Context, db *table.DB, qs []*sqlparse.Query) (Set, error) {
	cards, err := exec.CountManyCtx(ctx, db, qs)
	if err != nil {
		return nil, err
	}
	out := make(Set, 0, len(qs))
	for i, q := range qs {
		if cards[i] > 0 {
			out = append(out, Labeled{Query: q, Card: cards[i]})
		}
	}
	return out, nil
}

// singleDB wraps one table as a DB for the executor.
func singleDB(t *table.Table) *table.DB {
	db := table.NewDB()
	db.MustAdd(t)
	return db
}

// maxAttemptFactor bounds the generate-and-reject loop: generators give up
// after this many attempts per requested query, so impossible configurations
// fail with an error instead of spinning.
const maxAttemptFactor = 50

var errTooManyRejects = fmt.Errorf("workload: too many empty-result rejects; check generator configuration")

func pickDistinctAttrs(rng *rand.Rand, names []string, k int) []string {
	perm := rng.Perm(len(names))
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = names[perm[i]]
	}
	return out
}
