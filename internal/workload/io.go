package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"qfe/internal/sqlparse"
)

// cardMarker separates the SQL text from the label in the workload file
// format: one query per line, followed by "-- cardinality: N".
const cardMarker = "-- cardinality: "

// WriteSet writes the labeled set in the textual workload format (one
// query per line with its true cardinality as a trailing comment), the
// format cmd/datagen emits.
func WriteSet(w io.Writer, set Set) error {
	bw := bufio.NewWriter(w)
	for _, l := range set {
		if _, err := fmt.Fprintf(bw, "%s %s%d\n", l.Query, cardMarker, l.Card); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSet parses a labeled workload file written by WriteSet/cmd/datagen.
// Blank lines and lines starting with "--" are skipped.
func ReadSet(r io.Reader) (Set, error) {
	var out Set
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		idx := strings.LastIndex(line, cardMarker)
		if idx < 0 {
			return nil, fmt.Errorf("workload: line %d lacks the %q label", lineNo, strings.TrimSpace(cardMarker))
		}
		sqlText := strings.TrimSpace(line[:idx])
		cardText := strings.TrimSpace(line[idx+len(cardMarker):])
		card, err := strconv.ParseInt(cardText, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad cardinality %q: %w", lineNo, cardText, err)
		}
		q, err := sqlparse.Parse(sqlText)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
		}
		out = append(out, Labeled{Query: q, Card: card})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read: %w", err)
	}
	return out, nil
}
