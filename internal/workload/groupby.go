package workload

import (
	"fmt"
	"math/rand"

	"qfe/internal/exec"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// GroupByConfig configures the filtered-group-by workload of the Section 6
// extension: conjunctive selections plus 1..MaxGroupAttrs grouping
// attributes; the label is the number of groups, not the number of rows.
type GroupByConfig struct {
	// Count is the number of labeled queries to produce.
	Count int
	// MaxAttrs bounds the selection attributes (as in ConjConfig).
	MaxAttrs int
	// MaxGroupAttrs bounds the grouping attributes (>= 1).
	MaxGroupAttrs int
	// MaxNotEquals bounds the per-attribute not-equal predicates.
	MaxNotEquals int
	// Seed drives generation.
	Seed int64
}

// DefaultGroupByConfig is sized like the other forest workloads.
func DefaultGroupByConfig() GroupByConfig {
	return GroupByConfig{Count: 1000, MaxGroupAttrs: 2, MaxNotEquals: 3, Seed: 6}
}

// GroupBy generates filtered group-by queries over tbl, labeled with their
// true group counts. Selection generation matches the conjunctive workload
// (anchored closed ranges plus not-equals); grouping attributes are drawn
// from the remaining columns so selections and groupings never collide on
// an attribute.
func GroupBy(tbl *table.Table, cfg GroupByConfig) (Set, error) {
	if cfg.Count < 1 {
		return nil, fmt.Errorf("workload: Count = %d, want >= 1", cfg.Count)
	}
	if cfg.MaxGroupAttrs < 1 {
		return nil, fmt.Errorf("workload: MaxGroupAttrs = %d, want >= 1", cfg.MaxGroupAttrs)
	}
	if cfg.MaxAttrs <= 0 || cfg.MaxAttrs >= tbl.NumCols() {
		cfg.MaxAttrs = tbl.NumCols() - 1 // leave room for grouping attrs
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := singleDB(tbl)
	names := tbl.ColumnNames()

	var out Set
	for attempts := 0; len(out) < cfg.Count; attempts++ {
		if attempts > maxAttemptFactor*cfg.Count {
			return nil, errTooManyRejects
		}
		anchor := rng.Intn(tbl.NumRows())
		k := 1 + rng.Intn(cfg.MaxAttrs)
		g := 1 + rng.Intn(cfg.MaxGroupAttrs)
		perm := rng.Perm(len(names))
		if k+g > len(names) {
			k = len(names) - g
		}
		selAttrs := make([]string, 0, k)
		grpAttrs := make([]string, 0, g)
		for _, idx := range perm[:k] {
			selAttrs = append(selAttrs, names[idx])
		}
		for _, idx := range perm[k : k+g] {
			grpAttrs = append(grpAttrs, names[idx])
		}

		var conj []sqlparse.Expr
		for _, a := range selAttrs {
			conj = append(conj, attrPreds(rng, tbl, a, anchor, cfg.MaxNotEquals)...)
		}
		q := &sqlparse.Query{
			Tables:  []string{tbl.Name},
			Where:   sqlparse.NewAnd(conj...),
			GroupBy: grpAttrs,
		}
		groups, err := exec.CountGroups(db, q)
		if err != nil {
			return nil, err
		}
		if groups == 0 {
			continue
		}
		out = append(out, Labeled{Query: q, Card: groups})
	}
	return out, nil
}
