package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"qfe/internal/catalog"
	"qfe/internal/exec"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// attrKind tells the join generators how to predicate an attribute.
type attrKind int

const (
	kindCategorical attrKind = iota // equality predicates
	kindRange                       // range predicates
	kindKey                         // join key: never predicated
)

// imdbAttrKinds classifies the IMDb columns: keys are never predicated,
// small categoricals get equalities, ordered attributes get ranges —
// matching JOB-light's "at most one range per attribute" profile.
var imdbAttrKinds = map[string]attrKind{
	"title.id":                        kindKey,
	"title.kind_id":                   kindCategorical,
	"title.production_year":           kindRange,
	"title.episode_nr":                kindRange,
	"cast_info.movie_id":              kindKey,
	"cast_info.role_id":               kindCategorical,
	"cast_info.nr_order":              kindRange,
	"movie_info.movie_id":             kindKey,
	"movie_info.info_type_id":         kindCategorical,
	"movie_info_idx.movie_id":         kindKey,
	"movie_info_idx.info_type_id":     kindCategorical,
	"movie_companies.movie_id":        kindKey,
	"movie_companies.company_type_id": kindCategorical,
	"movie_companies.company_id":      kindCategorical,
	"movie_keyword.movie_id":          kindKey,
	"movie_keyword.keyword_id":        kindCategorical,
}

// JoinConfig configures the JOB-light-style suite generator.
type JoinConfig struct {
	// Count is the number of labeled, non-empty queries (JOB-light has 70).
	Count int
	// MinJoins and MaxJoins bound the number of join predicates; JOB-light
	// queries contain between 2 and 5 joins.
	MinJoins, MaxJoins int
	// MaxPreds bounds the number of selection predicates (JOB-light: 1-5).
	MaxPreds int
	// Seed drives generation.
	Seed int64
}

// DefaultJOBLightConfig mirrors the JOB-light profile: 70 queries with 2-5
// joins and 1-5 conjunctive predicates, at most one range per attribute.
func DefaultJOBLightConfig() JoinConfig {
	return JoinConfig{Count: 70, MinJoins: 2, MaxJoins: 5, MaxPreds: 5, Seed: 70}
}

// JOBLight generates the JOB-light-style test suite over the IMDb star
// schema: title joined with MinJoins..MaxJoins satellites, 1..MaxPreds
// selection predicates over 1..4 distinct attributes, and at most one range
// per attribute (ranges are closed or one-sided, mirroring the original
// suite's year predicates).
func JOBLight(db *table.DB, schema *catalog.Schema, cfg JoinConfig) (Set, error) {
	return generateJoins(db, schema, cfg, false)
}

// JoinTraining generates the training workload for the join experiments:
// queries over random connected sub-schemas (base tables included), with the
// same predicate profile as JOB-light. The paper trains on 231k generated
// queries; scale Count to taste.
func JoinTraining(db *table.DB, schema *catalog.Schema, cfg JoinConfig) (Set, error) {
	return generateJoins(db, schema, cfg, true)
}

func generateJoins(db *table.DB, schema *catalog.Schema, cfg JoinConfig, includeBase bool) (Set, error) {
	if cfg.Count < 1 {
		return nil, fmt.Errorf("workload: Count = %d, want >= 1", cfg.Count)
	}
	satellites := satelliteTables(schema)
	if cfg.MaxJoins <= 0 || cfg.MaxJoins > len(satellites) {
		cfg.MaxJoins = len(satellites)
	}
	if cfg.MinJoins < 1 {
		cfg.MinJoins = 1
	}
	if cfg.MinJoins > cfg.MaxJoins {
		return nil, fmt.Errorf("workload: MinJoins %d > MaxJoins %d", cfg.MinJoins, cfg.MaxJoins)
	}
	if cfg.MaxPreds < 1 {
		cfg.MaxPreds = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cache := exec.NewPredCache(0)

	var out Set
	for attempts := 0; len(out) < cfg.Count; attempts++ {
		if attempts > maxAttemptFactor*cfg.Count {
			return nil, errTooManyRejects
		}
		var tables []string
		if includeBase && rng.Intn(3) == 0 {
			// Base-table query: a single table, satellite or hub.
			all := schema.Tables
			tables = []string{all[rng.Intn(len(all))]}
		} else {
			nJoins := cfg.MinJoins + rng.Intn(cfg.MaxJoins-cfg.MinJoins+1)
			if includeBase {
				// Training covers all join widths down to a single join.
				nJoins = 1 + rng.Intn(cfg.MaxJoins)
			}
			perm := rng.Perm(len(satellites))
			tables = []string{hubTable(schema)}
			for i := 0; i < nJoins; i++ {
				tables = append(tables, satellites[perm[i]])
			}
		}

		q, err := buildJoinQuery(db, schema, rng, tables, cfg.MaxPreds)
		if err != nil {
			return nil, err
		}
		out, _, err = label(db, q, out, cache)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// buildJoinQuery assembles the query over the given table set: join
// predicates from the schema's foreign keys plus a random conjunctive
// selection with at most one range per attribute.
func buildJoinQuery(db *table.DB, schema *catalog.Schema, rng *rand.Rand, tables []string, maxPreds int) (*sqlparse.Query, error) {
	q := &sqlparse.Query{Tables: tables}
	if len(tables) > 1 {
		edges, err := schema.JoinEdges(tables)
		if err != nil {
			return nil, err
		}
		for _, e := range edges {
			q.Joins = append(q.Joins, sqlparse.JoinPred{
				LeftTable: e.FromTable, LeftCol: e.FromCol,
				RightTable: e.ToTable, RightCol: e.ToCol,
			})
		}
	}

	// Collect the predicable attributes of the participating tables.
	var candidates []string
	for _, tn := range tables {
		t := db.Table(tn)
		if t == nil {
			return nil, fmt.Errorf("workload: unknown table %q", tn)
		}
		for _, col := range t.Columns() {
			qn := tn + "." + col.Name
			if imdbAttrKinds[qn] != kindKey {
				candidates = append(candidates, qn)
			}
		}
	}
	sort.Strings(candidates)

	nAttrs := 1 + rng.Intn(min(4, len(candidates)))
	attrs := pickDistinctAttrs(rng, candidates, nAttrs)
	budget := 1 + rng.Intn(maxPreds)
	var preds []sqlparse.Expr
	for _, qn := range attrs {
		if budget <= 0 {
			break
		}
		tn, cn := splitQualified(qn)
		col := db.Table(tn).Column(cn)
		anchor := col.Vals[rng.Intn(col.Len())]
		switch imdbAttrKinds[qn] {
		case kindCategorical:
			preds = append(preds, &sqlparse.Pred{Attr: qn, Op: sqlparse.OpEq, Val: anchor})
			budget--
		case kindRange:
			mn, mx := col.Min(), col.Max()
			span := (mx - mn + 1) / 4
			if span < 1 {
				span = 1
			}
			lo := anchor - rng.Int63n(span+1)
			hi := anchor + rng.Int63n(span+1)
			if lo < mn {
				lo = mn
			}
			if hi > mx {
				hi = mx
			}
			switch {
			case budget >= 2 && rng.Intn(3) != 0: // closed range
				preds = append(preds,
					&sqlparse.Pred{Attr: qn, Op: sqlparse.OpGe, Val: lo},
					&sqlparse.Pred{Attr: qn, Op: sqlparse.OpLe, Val: hi})
				budget -= 2
			case rng.Intn(2) == 0: // one-sided lower
				preds = append(preds, &sqlparse.Pred{Attr: qn, Op: sqlparse.OpGe, Val: lo})
				budget--
			default: // one-sided upper
				preds = append(preds, &sqlparse.Pred{Attr: qn, Op: sqlparse.OpLe, Val: hi})
				budget--
			}
		}
	}
	q.Where = sqlparse.NewAnd(preds...)
	return q, nil
}

// JoinForTables generates count labeled, non-empty queries over exactly the
// given table set (which must be a connected sub-schema), with the JOB-light
// predicate profile. It is the stratified building block local-model
// training uses to guarantee every sub-schema has a model.
func JoinForTables(db *table.DB, schema *catalog.Schema, tables []string, count, maxPreds int, seed int64) (Set, error) {
	if count < 1 {
		return nil, fmt.Errorf("workload: count = %d, want >= 1", count)
	}
	if maxPreds < 1 {
		maxPreds = 5
	}
	if len(tables) > 1 {
		if _, err := schema.JoinEdges(tables); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(seed))
	cache := exec.NewPredCache(0)
	var out Set
	for attempts := 0; len(out) < count; attempts++ {
		if attempts > maxAttemptFactor*count {
			return nil, errTooManyRejects
		}
		q, err := buildJoinQuery(db, schema, rng, tables, maxPreds)
		if err != nil {
			return nil, err
		}
		var ok bool
		out, ok, err = label(db, q, out, cache)
		if err != nil {
			return nil, err
		}
		_ = ok
	}
	return out, nil
}

// StratifiedJoinTraining generates perSubSchema labeled queries for every
// connected sub-schema of the schema (up to maxTables tables), concatenated
// in deterministic sub-schema order. Local models trained on the result
// cover every routable query.
func StratifiedJoinTraining(db *table.DB, schema *catalog.Schema, perSubSchema, maxTables, maxPreds int, seed int64) (Set, error) {
	var out Set
	for i, tables := range schema.ConnectedSubSchemas(maxTables) {
		sub, err := JoinForTables(db, schema, tables, perSubSchema, maxPreds, seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("workload: sub-schema %v: %w", tables, err)
		}
		out = append(out, sub...)
	}
	return out, nil
}

// hubTable returns the table every foreign key points to (title in the
// IMDb schema).
func hubTable(schema *catalog.Schema) string {
	for _, fk := range schema.FKs {
		return fk.ToTable
	}
	return schema.Tables[0]
}

// satelliteTables returns the non-hub tables.
func satelliteTables(schema *catalog.Schema) []string {
	hub := hubTable(schema)
	var out []string
	for _, t := range schema.Tables {
		if t != hub {
			out = append(out, t)
		}
	}
	return out
}

func splitQualified(qn string) (tbl, col string) {
	for i := 0; i < len(qn); i++ {
		if qn[i] == '.' {
			return qn[:i], qn[i+1:]
		}
	}
	return "", qn
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
