package workload

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"qfe/internal/catalog"
	"qfe/internal/dataset"
	"qfe/internal/exec"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

func testForest(t *testing.T) *table.Table {
	t.Helper()
	tbl, err := dataset.Forest(dataset.ForestConfig{Rows: 3000, QuantAttrs: 6, BinaryAttrs: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestConjunctiveWorkload(t *testing.T) {
	tbl := testForest(t)
	cfg := ConjConfig{Count: 200, MaxAttrs: 5, MaxNotEquals: 3, Seed: 1}
	set, err := Conjunctive(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 200 {
		t.Fatalf("generated %d queries, want 200", len(set))
	}
	db := table.NewDB()
	db.MustAdd(tbl)
	for i, l := range set {
		if l.Card < 1 {
			t.Fatalf("query %d has empty result: %s", i, l.Query)
		}
		if !sqlparse.IsConjunctive(l.Query.Where) {
			t.Fatalf("query %d is not conjunctive: %s", i, l.Query)
		}
		if k := sqlparse.NumAttributes(l.Query); k < 1 || k > 5 {
			t.Fatalf("query %d mentions %d attributes, want 1..5", i, k)
		}
		// Spot-check labels against the executor.
		if i < 20 {
			got, err := exec.Count(db, l.Query)
			if err != nil {
				t.Fatal(err)
			}
			if got != l.Card {
				t.Fatalf("query %d label %d != true %d", i, l.Card, got)
			}
		}
	}
}

func TestConjunctiveDeterminism(t *testing.T) {
	tbl := testForest(t)
	cfg := ConjConfig{Count: 50, MaxAttrs: 4, MaxNotEquals: 2, Seed: 7}
	a, err := Conjunctive(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Conjunctive(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Query.String() != b[i].Query.String() || a[i].Card != b[i].Card {
			t.Fatal("workload generation not deterministic")
		}
	}
}

func TestMixedWorkload(t *testing.T) {
	tbl := testForest(t)
	cfg := DefaultMixedConfig()
	cfg.Count = 150
	cfg.MaxAttrs = 4
	cfg.Seed = 2
	set, err := Mixed(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 150 {
		t.Fatalf("generated %d queries, want 150", len(set))
	}
	sawDisjunction := false
	for i, l := range set {
		if l.Card < 1 {
			t.Fatalf("query %d has empty result", i)
		}
		// Every mixed query must satisfy Definition 3.3.
		if _, err := sqlparse.CompoundPredicates(l.Query.Where); err != nil {
			t.Fatalf("query %d is not a mixed query: %v\n%s", i, err, l.Query)
		}
		if !sqlparse.IsConjunctive(l.Query.Where) {
			sawDisjunction = true
		}
	}
	if !sawDisjunction {
		t.Error("mixed workload produced no disjunctions at all")
	}
}

func TestMixedQueriesRoundTripThroughParser(t *testing.T) {
	tbl := testForest(t)
	cfg := DefaultMixedConfig()
	cfg.Count = 30
	cfg.MaxAttrs = 3
	cfg.Seed = 3
	set, err := Mixed(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := table.NewDB()
	db.MustAdd(tbl)
	for _, l := range set {
		q2, err := sqlparse.Parse(l.Query.String())
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, l.Query)
		}
		card, err := exec.Count(db, q2)
		if err != nil {
			t.Fatal(err)
		}
		if card != l.Card {
			t.Fatalf("re-parsed query count %d != label %d for %s", card, l.Card, l.Query)
		}
	}
}

func TestSplitAndDriftSplit(t *testing.T) {
	tbl := testForest(t)
	set, err := Conjunctive(tbl, ConjConfig{Count: 100, MaxAttrs: 6, MaxNotEquals: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	train, test := set.Split(80)
	if len(train) != 80 || len(test) != 20 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	lo, hi := set.SplitByAttrs(2)
	for _, l := range lo {
		if sqlparse.NumAttributes(l.Query) > 2 {
			t.Fatal("drift train side has high-dimensional query")
		}
	}
	for _, l := range hi {
		if sqlparse.NumAttributes(l.Query) <= 2 {
			t.Fatal("drift test side has low-dimensional query")
		}
	}
	if len(lo)+len(hi) != len(set) {
		t.Fatal("drift split loses queries")
	}
}

func TestGrouping(t *testing.T) {
	tbl := testForest(t)
	set, err := Conjunctive(tbl, ConjConfig{Count: 100, MaxAttrs: 4, MaxNotEquals: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	byAttrs := set.GroupByAttrs()
	total := 0
	for k, sub := range byAttrs {
		total += len(sub)
		for _, l := range sub {
			if sqlparse.NumAttributes(l.Query) != k {
				t.Fatal("GroupByAttrs mislabeled a query")
			}
		}
	}
	if total != len(set) {
		t.Fatal("GroupByAttrs loses queries")
	}
	byPreds := set.GroupByPreds()
	total = 0
	for k, sub := range byPreds {
		total += len(sub)
		for _, l := range sub {
			if sqlparse.NumPredicates(l.Query) != k {
				t.Fatal("GroupByPreds mislabeled a query")
			}
		}
	}
	if total != len(set) {
		t.Fatal("GroupByPreds loses queries")
	}
}

func TestCardsAndMeanCard(t *testing.T) {
	s := Set{{Card: 10}, {Card: 30}}
	cards := s.Cards()
	if cards[0] != 10 || cards[1] != 30 {
		t.Fatal("Cards wrong")
	}
	if s.MeanCard() != 20 {
		t.Fatal("MeanCard wrong")
	}
	if (Set{}).MeanCard() != 0 {
		t.Fatal("empty MeanCard should be 0")
	}
}

func TestConfigValidation(t *testing.T) {
	tbl := testForest(t)
	if _, err := Conjunctive(tbl, ConjConfig{Count: 0}); err == nil {
		t.Error("Count=0 accepted")
	}
	if _, err := Conjunctive(tbl, ConjConfig{Count: 1, MinAttrs: 9, MaxAttrs: 3}); err == nil {
		t.Error("MinAttrs > MaxAttrs accepted")
	}
	if _, err := Mixed(tbl, MixedConfig{ConjConfig: ConjConfig{Count: 1}, MaxBranches: 0}); err == nil {
		t.Error("MaxBranches=0 accepted")
	}
}

func testIMDB(t *testing.T) (*table.DB, *dataset.IMDBConfig) {
	t.Helper()
	cfg := dataset.IMDBConfig{Titles: 400, Seed: 6}
	db, err := dataset.IMDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db, &cfg
}

func TestJOBLightSuite(t *testing.T) {
	db, _ := testIMDB(t)
	schema := dataset.IMDBSchema()
	cfg := DefaultJOBLightConfig()
	cfg.Count = 30
	set, err := JOBLight(db, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 30 {
		t.Fatalf("generated %d queries, want 30", len(set))
	}
	for i, l := range set {
		q := l.Query
		if l.Card < 1 {
			t.Fatalf("query %d empty", i)
		}
		if len(q.Joins) < 2 || len(q.Joins) > 5 {
			t.Fatalf("query %d has %d joins, want 2..5", i, len(q.Joins))
		}
		if len(q.Tables) != len(q.Joins)+1 {
			t.Fatalf("query %d: %d tables for %d joins", i, len(q.Tables), len(q.Joins))
		}
		if q.Tables[0] != "title" {
			t.Fatalf("query %d does not start at the hub", i)
		}
		np := sqlparse.NumPredicates(q)
		if np < 1 || np > 6 {
			t.Fatalf("query %d has %d predicates", i, np)
		}
		// At most one range (<= one Ge and one Le) per attribute; equality
		// attrs see exactly one predicate.
		perAttr := sqlparse.PredsPerAttr(q.Where)
		for attr, preds := range perAttr {
			ge, le, eq := 0, 0, 0
			for _, p := range preds {
				switch p.Op {
				case sqlparse.OpGe:
					ge++
				case sqlparse.OpLe:
					le++
				case sqlparse.OpEq:
					eq++
				default:
					t.Fatalf("query %d: unexpected operator %v on %s", i, p.Op, attr)
				}
			}
			if ge > 1 || le > 1 || eq > 1 || (eq > 0 && ge+le > 0) {
				t.Fatalf("query %d: attribute %s predicated %d times beyond one range", i, attr, len(preds))
			}
		}
		// Queries must round-trip through the parser.
		if _, err := sqlparse.Parse(q.String()); err != nil {
			t.Fatalf("query %d does not re-parse: %v\n%s", i, err, q)
		}
	}
}

func TestJoinTrainingCoversSubSchemas(t *testing.T) {
	db, _ := testIMDB(t)
	schema := dataset.IMDBSchema()
	cfg := DefaultJOBLightConfig()
	cfg.Count = 200
	cfg.Seed = 8
	set, err := JoinTraining(db, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawBase, sawJoin := false, false
	for _, l := range set {
		if len(l.Query.Tables) == 1 {
			sawBase = true
		} else {
			sawJoin = true
		}
	}
	if !sawBase || !sawJoin {
		t.Errorf("training workload should mix base-table and join queries (base=%v join=%v)", sawBase, sawJoin)
	}
}

func TestJoinConfigValidation(t *testing.T) {
	db, _ := testIMDB(t)
	schema := dataset.IMDBSchema()
	if _, err := JOBLight(db, schema, JoinConfig{Count: 0}); err == nil {
		t.Error("Count=0 accepted")
	}
	if _, err := JOBLight(db, schema, JoinConfig{Count: 1, MinJoins: 5, MaxJoins: 2}); err == nil {
		t.Error("MinJoins > MaxJoins accepted")
	}
}

func TestReadWriteSetRoundTrip(t *testing.T) {
	tbl := testForest(t)
	set, err := Conjunctive(tbl, ConjConfig{Count: 40, MaxAttrs: 4, MaxNotEquals: 2, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(set) {
		t.Fatalf("round trip length %d, want %d", len(back), len(set))
	}
	for i := range set {
		if back[i].Card != set[i].Card {
			t.Fatalf("query %d card %d, want %d", i, back[i].Card, set[i].Card)
		}
		if back[i].Query.String() != set[i].Query.String() {
			t.Fatalf("query %d changed:\n  %s\n  %s", i, set[i].Query, back[i].Query)
		}
	}
}

func TestReadSetSkipsCommentsAndBlanks(t *testing.T) {
	src := "-- a comment\n\nSELECT count(*) FROM t WHERE a = 1; -- cardinality: 42\n"
	set, err := ReadSet(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[0].Card != 42 {
		t.Fatalf("parsed %v", set)
	}
}

func TestReadSetErrors(t *testing.T) {
	cases := []string{
		"SELECT count(*) FROM t WHERE a = 1;\n",                     // no label
		"SELECT count(*) FROM t WHERE a = 1; -- cardinality: abc\n", // bad number
		"NOT SQL AT ALL -- cardinality: 5\n",                        // bad SQL
	}
	for _, src := range cases {
		if _, err := ReadSet(strings.NewReader(src)); err == nil {
			t.Errorf("ReadSet(%q) succeeded, want error", src)
		}
	}
}

func TestJoinForTables(t *testing.T) {
	db, _ := testIMDB(t)
	schema := dataset.IMDBSchema()
	tables := []string{"title", "cast_info"}
	set, err := JoinForTables(db, schema, tables, 15, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 15 {
		t.Fatalf("got %d queries, want 15", len(set))
	}
	for i, l := range set {
		if len(l.Query.Tables) != 2 {
			t.Fatalf("query %d spans %v", i, l.Query.Tables)
		}
		if l.Card < 1 {
			t.Fatalf("query %d empty", i)
		}
	}
	// Disconnected table sets must be rejected.
	if _, err := JoinForTables(db, schema, []string{"cast_info", "movie_keyword"}, 5, 4, 3); err == nil {
		t.Error("disconnected sub-schema accepted")
	}
	if _, err := JoinForTables(db, schema, tables, 0, 4, 3); err == nil {
		t.Error("count=0 accepted")
	}
}

func TestStratifiedJoinTrainingCoversAllSubSchemas(t *testing.T) {
	db, _ := testIMDB(t)
	schema := dataset.IMDBSchema()
	per := 3
	set, err := StratifiedJoinTraining(db, schema, per, 2, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	subs := schema.ConnectedSubSchemas(2)
	if len(set) != per*len(subs) {
		t.Fatalf("got %d queries, want %d", len(set), per*len(subs))
	}
	seen := map[string]int{}
	for _, l := range set {
		seen[catalog.SubSchemaKey(l.Query.Tables)]++
	}
	for _, sub := range subs {
		if seen[catalog.SubSchemaKey(sub)] != per {
			t.Errorf("sub-schema %v has %d queries, want %d", sub, seen[catalog.SubSchemaKey(sub)], per)
		}
	}
}

func TestGroupByWorkload(t *testing.T) {
	tbl := testForest(t)
	set, err := GroupBy(tbl, GroupByConfig{Count: 60, MaxAttrs: 3, MaxGroupAttrs: 2, MaxNotEquals: 2, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 60 {
		t.Fatalf("got %d queries, want 60", len(set))
	}
	db := table.NewDB()
	db.MustAdd(tbl)
	for i, l := range set {
		if len(l.Query.GroupBy) < 1 || len(l.Query.GroupBy) > 2 {
			t.Fatalf("query %d has %d grouping attrs", i, len(l.Query.GroupBy))
		}
		if l.Card < 1 {
			t.Fatalf("query %d has zero groups", i)
		}
		// Selection and grouping attributes must not overlap.
		sel := map[string]bool{}
		for _, p := range sqlparse.CollectPreds(l.Query.Where) {
			sel[p.Attr] = true
		}
		for _, g := range l.Query.GroupBy {
			if sel[g] {
				t.Fatalf("query %d groups by a selected attribute %q", i, g)
			}
		}
		// Spot-check labels.
		if i < 10 {
			got, err := exec.CountGroups(db, l.Query)
			if err != nil {
				t.Fatal(err)
			}
			if got != l.Card {
				t.Fatalf("query %d label %d != true %d", i, l.Card, got)
			}
		}
	}
}

func TestGroupByConfigValidation(t *testing.T) {
	tbl := testForest(t)
	if _, err := GroupBy(tbl, GroupByConfig{Count: 0, MaxGroupAttrs: 1}); err == nil {
		t.Error("Count=0 accepted")
	}
	if _, err := GroupBy(tbl, GroupByConfig{Count: 1, MaxGroupAttrs: 0}); err == nil {
		t.Error("MaxGroupAttrs=0 accepted")
	}
}

func TestLabelManyMatchesSequential(t *testing.T) {
	tbl := testForest(t)
	db := singleDB(tbl)

	// Reuse the conjunctive generator's queries so LabelMany sees a
	// realistic mix, then label them both ways.
	set, err := Conjunctive(tbl, ConjConfig{Count: 150, MaxAttrs: 4, MaxNotEquals: 2, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	qs := set.Queries()

	got, err := LabelMany(context.Background(), db, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(set) {
		t.Fatalf("LabelMany kept %d queries, generator labeled %d", len(got), len(set))
	}
	for i := range got {
		if got[i].Query != set[i].Query {
			t.Fatalf("query %d: order not preserved", i)
		}
		if got[i].Card != set[i].Card {
			t.Fatalf("query %d: LabelMany card %d, sequential %d", i, got[i].Card, set[i].Card)
		}
	}
}

func TestLabelManyDiscardsEmptyAndPropagatesErrors(t *testing.T) {
	tbl := testForest(t)
	db := singleDB(tbl)
	qs := []*sqlparse.Query{
		// An always-true range keeps every row; an impossible one is empty.
		sqlparse.MustParse("SELECT count(*) FROM forest WHERE A1 >= 0"),
		sqlparse.MustParse("SELECT count(*) FROM forest WHERE A1 < 0 AND A1 > 100000"),
	}
	got, err := LabelMany(context.Background(), db, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Query != qs[0] {
		t.Fatalf("LabelMany kept %d queries, want only the non-empty one", len(got))
	}

	bad := append(qs, &sqlparse.Query{Tables: []string{"nosuch"}})
	if _, err := LabelMany(context.Background(), db, bad); err == nil {
		t.Fatal("expected error for unknown table")
	}
}
