package workload

import (
	"fmt"
	"math/rand"

	"qfe/internal/exec"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// ConjConfig configures the conjunctive workload generator of Section 5:
// "We draw k, 1 <= k <= 55 distinct attributes uniformly at random and
// randomly generate a closed range predicate for each. Additionally, we
// generate l, 0 <= l <= 5 not-equal predicates, for each of the k chosen
// attributes, that exclude values from the aforementioned range."
type ConjConfig struct {
	// Count is the number of labeled, non-empty queries to produce.
	Count int
	// MaxAttrs bounds k; 0 means "all attributes of the table".
	MaxAttrs int
	// MinAttrs bounds k from below (default 1).
	MinAttrs int
	// MaxNotEquals bounds l (the paper uses 5).
	MaxNotEquals int
	// Seed drives generation.
	Seed int64
}

// DefaultConjConfig mirrors the paper's parameters at reduced count.
func DefaultConjConfig() ConjConfig {
	return ConjConfig{Count: 2000, MaxNotEquals: 5, Seed: 1}
}

func (c ConjConfig) normalized(numAttrs int) (ConjConfig, error) {
	if c.Count < 1 {
		return c, fmt.Errorf("workload: Count = %d, want >= 1", c.Count)
	}
	if c.MinAttrs < 1 {
		c.MinAttrs = 1
	}
	if c.MaxAttrs <= 0 || c.MaxAttrs > numAttrs {
		c.MaxAttrs = numAttrs
	}
	if c.MinAttrs > c.MaxAttrs {
		return c, fmt.Errorf("workload: MinAttrs %d > MaxAttrs %d", c.MinAttrs, c.MaxAttrs)
	}
	if c.MaxNotEquals < 0 {
		return c, fmt.Errorf("workload: MaxNotEquals = %d, want >= 0", c.MaxNotEquals)
	}
	return c, nil
}

// Conjunctive generates the conjunctive workload over tbl. Ranges are
// anchored at the attribute values of a randomly drawn data row, which keeps
// the non-empty rejection loop fast while still producing selectivities
// across the full spectrum.
func Conjunctive(tbl *table.Table, cfg ConjConfig) (Set, error) {
	cfg, err := cfg.normalized(tbl.NumCols())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := singleDB(tbl)
	names := tbl.ColumnNames()
	cache := exec.NewPredCache(0)

	var out Set
	for attempts := 0; len(out) < cfg.Count; attempts++ {
		if attempts > maxAttemptFactor*cfg.Count {
			return nil, errTooManyRejects
		}
		anchor := rng.Intn(tbl.NumRows())
		k := cfg.MinAttrs + rng.Intn(cfg.MaxAttrs-cfg.MinAttrs+1)
		attrs := pickDistinctAttrs(rng, names, k)
		var conj []sqlparse.Expr
		for _, a := range attrs {
			conj = append(conj, attrPreds(rng, tbl, a, anchor, cfg.MaxNotEquals)...)
		}
		q := &sqlparse.Query{Tables: []string{tbl.Name}, Where: sqlparse.NewAnd(conj...)}
		var ok bool
		out, ok, err = label(db, q, out, cache)
		if err != nil {
			return nil, err
		}
		_ = ok
	}
	return out, nil
}

// attrPreds generates the per-attribute predicate list: a closed range (or a
// single bound, or an equality for tiny domains) anchored at row anchor's
// value, plus up to maxNE not-equal predicates excluding non-anchor values
// inside the range.
func attrPreds(rng *rand.Rand, tbl *table.Table, attr string, anchor, maxNE int) []sqlparse.Expr {
	col := tbl.Column(attr)
	v := col.Vals[anchor]
	mn, mx := col.Min(), col.Max()
	domain := mx - mn + 1

	// Tiny domains (binary indicators): a range is meaningless, emit an
	// equality predicate.
	if domain <= 4 {
		return []sqlparse.Expr{&sqlparse.Pred{Attr: attr, Op: sqlparse.OpEq, Val: v}}
	}

	// Range width: exponentially distributed fraction of the domain, so
	// selectivities cover several orders of magnitude.
	width := func() int64 {
		f := rng.ExpFloat64() * 0.15
		if f > 1 {
			f = 1
		}
		w := int64(f * float64(domain))
		if w < 1 {
			w = 1
		}
		return w
	}
	lo := v - int64(rng.Int63n(width()+1))
	hi := v + int64(rng.Int63n(width()+1))
	if lo < mn {
		lo = mn
	}
	if hi > mx {
		hi = mx
	}

	var preds []sqlparse.Expr
	switch rng.Intn(10) {
	case 0: // one-sided lower bound
		preds = append(preds, &sqlparse.Pred{Attr: attr, Op: sqlparse.OpGe, Val: lo})
	case 1: // one-sided upper bound
		preds = append(preds, &sqlparse.Pred{Attr: attr, Op: sqlparse.OpLe, Val: hi})
	default: // closed range (the paper's standard shape)
		preds = append(preds,
			&sqlparse.Pred{Attr: attr, Op: sqlparse.OpGe, Val: lo},
			&sqlparse.Pred{Attr: attr, Op: sqlparse.OpLe, Val: hi},
		)
	}

	// Not-equal predicates excluding values from the range, never the
	// anchor value itself (so the anchor row keeps qualifying).
	if span := hi - lo + 1; span > 2 && maxNE > 0 {
		l := rng.Intn(maxNE + 1)
		used := map[int64]bool{v: true}
		for i := 0; i < l; i++ {
			ex := lo + rng.Int63n(span)
			if used[ex] {
				continue
			}
			used[ex] = true
			preds = append(preds, &sqlparse.Pred{Attr: attr, Op: sqlparse.OpNe, Val: ex})
		}
	}
	return preds
}

// MixedConfig configures the mixed workload generator: the per-attribute
// generation is repeated m times, 1 <= m <= MaxBranches, and concatenated
// via OR (Section 5; an example appears below Definition 3.3).
type MixedConfig struct {
	ConjConfig
	// MaxBranches bounds m, the number of OR-ed conjunctions per compound
	// predicate (the paper uses 3).
	MaxBranches int
}

// DefaultMixedConfig mirrors the paper's parameters at reduced count.
func DefaultMixedConfig() MixedConfig {
	return MixedConfig{ConjConfig: DefaultConjConfig(), MaxBranches: 3}
}

// Mixed generates the mixed workload over tbl: one compound predicate per
// chosen attribute, each a disjunction of 1..MaxBranches anchored
// conjunctions. The result is a valid mixed query per Definition 3.3.
func Mixed(tbl *table.Table, cfg MixedConfig) (Set, error) {
	base, err := cfg.ConjConfig.normalized(tbl.NumCols())
	if err != nil {
		return nil, err
	}
	if cfg.MaxBranches < 1 {
		return nil, fmt.Errorf("workload: MaxBranches = %d, want >= 1", cfg.MaxBranches)
	}
	rng := rand.New(rand.NewSource(base.Seed))
	db := singleDB(tbl)
	names := tbl.ColumnNames()
	cache := exec.NewPredCache(0)

	var out Set
	for attempts := 0; len(out) < base.Count; attempts++ {
		if attempts > maxAttemptFactor*base.Count {
			return nil, errTooManyRejects
		}
		anchor := rng.Intn(tbl.NumRows())
		k := base.MinAttrs + rng.Intn(base.MaxAttrs-base.MinAttrs+1)
		attrs := pickDistinctAttrs(rng, names, k)
		var compounds []sqlparse.Expr
		for _, a := range attrs {
			m := 1 + rng.Intn(cfg.MaxBranches)
			var branches []sqlparse.Expr
			// The first branch is anchored at the shared anchor row so the
			// whole conjunction of compounds stays satisfiable; further
			// branches anchor at independent rows.
			branches = append(branches, sqlparse.NewAnd(attrPreds(rng, tbl, a, anchor, base.MaxNotEquals)...))
			for b := 1; b < m; b++ {
				other := rng.Intn(tbl.NumRows())
				branches = append(branches, sqlparse.NewAnd(attrPreds(rng, tbl, a, other, base.MaxNotEquals)...))
			}
			compounds = append(compounds, sqlparse.NewOr(branches...))
		}
		q := &sqlparse.Query{Tables: []string{tbl.Name}, Where: sqlparse.NewAnd(compounds...)}
		out, _, err = label(db, q, out, cache)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
