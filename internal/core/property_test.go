package core

import (
	"fmt"
	"math/rand"
	"testing"

	"qfe/internal/exec"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// This file verifies the paper's formal claims as executable properties:
//
//   - Definition 3.1 (lossless query featurization): with one partition per
//     distinct value, decoding a Universal Conjunction Encoding vector and
//     counting the admitted rows reproduces the query's true cardinality.
//   - Lemma 3.2 (convergence): increasing n never widens the decoded
//     admission bounds, and beyond n = domain size the vector is stable.
//   - Conjunction monotonicity: adding a conjunct can only decrease entries.
//   - Disjunction monotonicity: adding a disjunct can only increase entries.

// randTable builds a random 3-attribute table with small domains so that
// exact partitioning is cheap.
func randTable(rng *rand.Rand, rows int) *table.Table {
	t := table.New("t")
	a := make([]int64, rows)
	b := make([]int64, rows)
	c := make([]int64, rows)
	for i := 0; i < rows; i++ {
		a[i] = int64(rng.Intn(40) - 10)
		b[i] = int64(rng.Intn(25))
		c[i] = int64(rng.Intn(4))
	}
	t.MustAddColumn(table.NewColumn("a", a))
	t.MustAddColumn(table.NewColumn("b", b))
	t.MustAddColumn(table.NewColumn("c", c))
	return t
}

// randConjunction builds a random conjunctive expression over tbl's columns
// with literals inside (and slightly beyond) each domain.
func randConjunction(rng *rand.Rand, meta *TableMeta, maxPreds int) sqlparse.Expr {
	ops := []sqlparse.CmpOp{sqlparse.OpEq, sqlparse.OpNe, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe}
	k := 1 + rng.Intn(maxPreds)
	kids := make([]sqlparse.Expr, 0, k)
	for i := 0; i < k; i++ {
		a := meta.Attrs[rng.Intn(len(meta.Attrs))]
		span := a.DomainSize() + 4
		val := a.Min - 2 + int64(rng.Int63n(span))
		kids = append(kids, &sqlparse.Pred{Attr: a.Name, Op: ops[rng.Intn(len(ops))], Val: val})
	}
	return sqlparse.NewAnd(kids...)
}

// randMixed builds a random mixed query (Definition 3.3): a conjunction of
// per-attribute compound predicates, each an OR of small conjunctions.
func randMixed(rng *rand.Rand, meta *TableMeta) sqlparse.Expr {
	var compounds []sqlparse.Expr
	for _, a := range meta.Attrs {
		if rng.Intn(2) == 0 {
			continue
		}
		branches := 1 + rng.Intn(3)
		var disj []sqlparse.Expr
		for b := 0; b < branches; b++ {
			sub := NewTableMetaFromAttrs("t", []AttrMeta{{Name: a.Name, Min: a.Min, Max: a.Max}}, a.NEntries)
			disj = append(disj, randConjunction(rng, sub, 3))
		}
		compounds = append(compounds, sqlparse.NewOr(disj...))
	}
	return sqlparse.NewAnd(compounds...)
}

// TestLosslessnessAtFullResolution is the executable form of Definition 3.1:
// with n >= domain size, featurize a random conjunctive query, decode the
// vector, and verify the decoded admission sets reproduce the true count.
func TestLosslessnessAtFullResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	tbl := randTable(rng, 400)
	meta := NewTableMeta(tbl, 1000) // every attribute gets one entry per value
	opts := Options{MaxEntriesPerAttr: 1000, AttrSel: false}
	f := NewConjunctive(meta, opts)

	for trial := 0; trial < 300; trial++ {
		expr := randConjunction(rng, meta, 6)
		vec, err := f.Featurize(expr)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodePartitioned(meta, opts, vec)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range decoded {
			if !d.Exact() {
				t.Fatalf("trial %d: partial bucket at full resolution for %s", trial, expr)
			}
		}
		got, exact, err := CountDecoded(tbl, decoded)
		if err != nil {
			t.Fatal(err)
		}
		if !exact {
			t.Fatalf("trial %d: decode not exact", trial)
		}
		bm, err := exec.EvalExpr(tbl, expr)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(bm.Count()); got != want {
			t.Fatalf("trial %d: decoded count %d != true count %d for %s", trial, got, want, expr)
		}
	}
}

// TestLosslessnessComplexAtFullResolution extends the Definition 3.1 check
// to mixed queries under Limited Disjunction Encoding, verifying the
// convergence claim at the end of Section 3.3.
func TestLosslessnessComplexAtFullResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	tbl := randTable(rng, 400)
	meta := NewTableMeta(tbl, 1000)
	opts := Options{MaxEntriesPerAttr: 1000, AttrSel: false}
	f := NewComplex(meta, opts)

	for trial := 0; trial < 200; trial++ {
		expr := randMixed(rng, meta)
		if expr == nil {
			continue
		}
		vec, err := f.Featurize(expr)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodePartitioned(meta, opts, vec)
		if err != nil {
			t.Fatal(err)
		}
		got, exact, err := CountDecoded(tbl, decoded)
		if err != nil {
			t.Fatal(err)
		}
		if !exact {
			t.Fatalf("trial %d: decode not exact at full resolution", trial)
		}
		bm, err := exec.EvalExpr(tbl, expr)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(bm.Count()); got != want {
			t.Fatalf("trial %d: decoded count %d != true count %d for %s", trial, got, want, expr)
		}
	}
}

// TestDecodedBoundsBracketTruth verifies that at *any* resolution the
// decoded lower/upper bounds bracket the true cardinality — the quantified
// form of "information loss only up to the partition size" (Section 3.2).
func TestDecodedBoundsBracketTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	tbl := randTable(rng, 300)
	for _, n := range []int{2, 4, 8, 16, 64} {
		meta := NewTableMeta(tbl, n)
		opts := Options{MaxEntriesPerAttr: n, AttrSel: false}
		f := NewConjunctive(meta, opts)
		for trial := 0; trial < 100; trial++ {
			expr := randConjunction(rng, meta, 5)
			vec, err := f.Featurize(expr)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodePartitioned(meta, opts, vec)
			if err != nil {
				t.Fatal(err)
			}
			lo, hi, err := CountDecodedBounds(tbl, decoded)
			if err != nil {
				t.Fatal(err)
			}
			bm, err := exec.EvalExpr(tbl, expr)
			if err != nil {
				t.Fatal(err)
			}
			truth := int64(bm.Count())
			if truth < lo || truth > hi {
				t.Fatalf("n=%d trial %d: truth %d outside decoded bounds [%d, %d] for %s",
					n, trial, truth, lo, hi, expr)
			}
		}
	}
}

// TestLemma32Convergence: beyond n = domain size, growing n further leaves
// the per-attribute vectors unchanged (they saturate at one entry per
// value), which is the "does not change anymore" reading of Lemma 3.2.
func TestLemma32Convergence(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	tbl := randTable(rng, 100)
	metaA := NewTableMeta(tbl, 64)  // 64 >= every domain size here
	metaB := NewTableMeta(tbl, 256) // even larger cap
	optsA := Options{MaxEntriesPerAttr: 64, AttrSel: false}
	optsB := Options{MaxEntriesPerAttr: 256, AttrSel: false}
	fa := NewConjunctive(metaA, optsA)
	fb := NewConjunctive(metaB, optsB)
	for trial := 0; trial < 100; trial++ {
		expr := randConjunction(rng, metaA, 5)
		va, err := fa.Featurize(expr)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := fb.Featurize(expr)
		if err != nil {
			t.Fatal(err)
		}
		if len(va) != len(vb) {
			t.Fatalf("saturated dims differ: %d vs %d", len(va), len(vb))
		}
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("trial %d: vector changed beyond saturation at entry %d", trial, i)
			}
		}
	}
}

// TestConjunctionMonotonicity: appending a conjunct never increases any
// partition entry (Algorithm 1's "can only be decreased" invariant).
func TestConjunctionMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	tbl := randTable(rng, 50)
	meta := NewTableMeta(tbl, 16)
	opts := Options{MaxEntriesPerAttr: 16, AttrSel: false}
	f := NewConjunctive(meta, opts)
	for trial := 0; trial < 300; trial++ {
		base := randConjunction(rng, meta, 4)
		extra := randConjunction(rng, meta, 1)
		vBase, err := f.Featurize(base)
		if err != nil {
			t.Fatal(err)
		}
		vMore, err := f.Featurize(sqlparse.NewAnd(base, extra))
		if err != nil {
			t.Fatal(err)
		}
		for i := range vBase {
			if vMore[i] > vBase[i] {
				t.Fatalf("trial %d: entry %d grew from %v to %v after adding conjunct %s",
					trial, i, vBase[i], vMore[i], extra)
			}
		}
	}
}

// TestDisjunctionMonotonicity: appending a disjunct to a compound predicate
// never decreases any partition entry (Algorithm 2's max-merge mirrors that
// disjunctions only make queries less selective).
func TestDisjunctionMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	tbl := randTable(rng, 50)
	meta := NewTableMeta(tbl, 16)
	a := meta.Attrs[0]
	sub := NewTableMetaFromAttrs("t", []AttrMeta{{Name: a.Name, Min: a.Min, Max: a.Max}}, 16)
	for trial := 0; trial < 300; trial++ {
		c1 := randConjunction(rng, sub, 3)
		c2 := randConjunction(rng, sub, 3)
		v1, _, err := FeaturizeAttrCompound(a, c1)
		if err != nil {
			t.Fatal(err)
		}
		v12, _, err := FeaturizeAttrCompound(a, sqlparse.NewOr(c1, c2))
		if err != nil {
			t.Fatal(err)
		}
		for i := range v1 {
			if v12[i] < v1[i] {
				t.Fatalf("trial %d: entry %d shrank from %v to %v after adding disjunct", trial, i, v1[i], v12[i])
			}
		}
	}
}

// TestPartitionSemanticsAgainstData cross-checks every partition entry's
// claim against the data: a 1-entry's bucket must have all its *present*
// values qualifying, a 0-entry none.
func TestPartitionSemanticsAgainstData(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	tbl := randTable(rng, 200)
	for _, n := range []int{3, 7, 16} {
		meta := NewTableMeta(tbl, n)
		opts := Options{MaxEntriesPerAttr: n, AttrSel: false}
		f := NewConjunctive(meta, opts)
		for trial := 0; trial < 100; trial++ {
			// Single-attribute conjunctions keep the check direct.
			a := meta.Attrs[rng.Intn(len(meta.Attrs))]
			sub := NewTableMetaFromAttrs("t", []AttrMeta{{Name: a.Name, Min: a.Min, Max: a.Max}}, n)
			expr := randConjunction(rng, sub, 4)
			vec, err := f.Featurize(expr)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodePartitioned(meta, opts, vec)
			if err != nil {
				t.Fatal(err)
			}
			var d DecodedAttr
			for _, cand := range decoded {
				if cand.Attr.Name == a.Name {
					d = cand
				}
			}
			preds := sqlparse.CollectPreds(expr)
			qualifies := func(v int64) bool {
				for _, p := range preds {
					if !predHolds(p, v) {
						return false
					}
				}
				return true
			}
			for v := a.Min; v <= a.Max; v++ {
				idx := a.BucketOf(v)
				switch d.States[idx] {
				case BucketFull:
					if !qualifies(v) {
						t.Fatalf("n=%d: bucket %d marked full but value %d fails %s", n, idx, v, expr)
					}
				case BucketEmpty:
					if qualifies(v) {
						t.Fatalf("n=%d: bucket %d marked empty but value %d qualifies %s", n, idx, v, expr)
					}
				}
			}
		}
	}
}

func predHolds(p *sqlparse.Pred, v int64) bool {
	switch p.Op {
	case sqlparse.OpEq:
		return v == p.Val
	case sqlparse.OpNe:
		return v != p.Val
	case sqlparse.OpLt:
		return v < p.Val
	case sqlparse.OpLe:
		return v <= p.Val
	case sqlparse.OpGt:
		return v > p.Val
	case sqlparse.OpGe:
		return v >= p.Val
	}
	return false
}

// TestAttrSelMatchesUniformTruth: on a table holding every domain value with
// equal frequency, the per-attribute selectivity estimate is exact.
func TestAttrSelMatchesUniformTruth(t *testing.T) {
	vals := make([]int64, 0, 100)
	for rep := 0; rep < 4; rep++ {
		for v := int64(0); v < 25; v++ {
			vals = append(vals, v)
		}
	}
	tbl := table.New("u")
	tbl.MustAddColumn(table.NewColumn("a", vals))
	meta := NewTableMeta(tbl, 8)
	a := meta.Attrs[0]
	rng := rand.New(rand.NewSource(808))

	for trial := 0; trial < 200; trial++ {
		expr := randConjunction(rng, meta, 3)
		preds := sqlparse.CollectPreds(expr)
		_, sel, err := FeaturizeAttrConjunction(a, preds)
		if err != nil {
			t.Fatal(err)
		}
		// True selectivity on the uniform table.
		bm, err := exec.EvalExpr(tbl, expr)
		if err != nil {
			t.Fatal(err)
		}
		truth := float64(bm.Count()) / float64(tbl.NumRows())
		// The estimate ignores <>-exclusions outside the surviving range
		// and counts each surviving <> exactly once, so on a uniform table
		// the only divergence source is repeated <> on the same value.
		if diff := sel - truth; diff > 0.05 || diff < -0.05 {
			t.Fatalf("trial %d: attrSel=%v truth=%v for %s", trial, sel, truth, expr)
		}
	}
}

// TestDecodeRejectsForeignVectors ensures the decoder validates shape and
// entry values.
func TestDecodeRejectsForeignVectors(t *testing.T) {
	meta := paperMeta()
	opts := Options{MaxEntriesPerAttr: 12, AttrSel: false}
	if _, err := DecodePartitioned(meta, opts, make([]float64, 5)); err == nil {
		t.Error("expected error for wrong-length vector")
	}
	bad := make([]float64, 26)
	for i := range bad {
		bad[i] = 1
	}
	bad[3] = 0.7 // non-categorical
	if _, err := DecodePartitioned(meta, opts, bad); err == nil {
		t.Error("expected error for non-categorical entry")
	}
}

// TestBucketStateString covers the stringer.
func TestBucketStateString(t *testing.T) {
	if BucketEmpty.String() != "0" || BucketPartial.String() != "1/2" || BucketFull.String() != "1" {
		t.Error("BucketState strings wrong")
	}
	if BucketState(9).String() == "" {
		t.Error("unknown state should still render")
	}
}

// TestFeaturizeManyAttrsStress featurizes against a wide table, ensuring
// per-attribute blocks stay aligned.
func TestFeaturizeManyAttrsStress(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	tbl := table.New("wide")
	for c := 0; c < 20; c++ {
		vals := make([]int64, 100)
		for i := range vals {
			vals[i] = int64(rng.Intn(30))
		}
		tbl.MustAddColumn(table.NewColumn(fmt.Sprintf("c%02d", c), vals))
	}
	meta := NewTableMeta(tbl, 8)
	opts := Options{MaxEntriesPerAttr: 8, AttrSel: true}
	f := NewConjunctive(meta, opts)
	expr := sqlparse.NewAnd(
		&sqlparse.Pred{Attr: "c07", Op: sqlparse.OpGe, Val: 10},
		&sqlparse.Pred{Attr: "c13", Op: sqlparse.OpLt, Val: 5},
	)
	vec, err := f.Featurize(expr)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != f.Dim() {
		t.Fatalf("dim mismatch: %d vs %d", len(vec), f.Dim())
	}
	decoded, err := DecodePartitioned(meta, opts, vec)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range decoded {
		name := d.Attr.Name
		constrainedAttr := name == "c07" || name == "c13"
		allOnes := true
		for _, s := range d.States {
			if s != BucketFull {
				allOnes = false
			}
		}
		if constrainedAttr && allOnes {
			t.Errorf("attribute %s (index %d) should be constrained", name, i)
		}
		if !constrainedAttr && !allOnes {
			t.Errorf("attribute %s (index %d) should be unconstrained", name, i)
		}
	}
}
