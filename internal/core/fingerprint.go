package core

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
	"sort"
	"strconv"
	"strings"

	"qfe/internal/sqlparse"
)

// This file defines the canonical query fingerprint: a collision-resistant
// key for the *featurization equivalence class* of a query. The QFTs in
// this package deliberately map many syntactically different predicate
// combinations onto the same feature vector — predicate order is
// irrelevant (Algorithm 1 intersects per-attribute qualifying sets),
// duplicate predicates are absorbed, and over the integer domains of
// Section 3 the open and closed comparison forms ("a > 5" vs. "a >= 6")
// qualify identical value sets. Two queries with the same fingerprint are
// therefore featurized identically by every QFT here and must receive the
// same estimate from the same model; the serving layer exploits exactly
// that to cache estimates across syntactic variants.
//
// Every rewrite applied below is an exact semantic equivalence, never a
// heuristic: sorting and deduplicating AND/OR children (commutativity,
// idempotence), normalizing strict integer comparisons to their closed
// forms, ordering the sides of an equi-join, and sorting table / GROUP BY
// lists. Distinct fingerprints may still denote equivalent queries (the
// relation is sound, not complete) — that costs a cache miss, never a
// wrong answer.

// Fingerprint returns a fixed-length, collision-resistant key for q's
// featurization equivalence class: the hex-encoded SHA-256 of
// CanonicalQuery(q). Queries that differ only in predicate order,
// duplicated conjuncts/disjuncts, strict-vs-closed integer comparisons,
// equi-join side order, or FROM / GROUP BY list order collide on purpose.
func Fingerprint(q *sqlparse.Query) string {
	sum := sha256.Sum256([]byte(CanonicalQuery(q)))
	return hex.EncodeToString(sum[:])
}

// CanonicalQuery renders q in a canonical textual form: two queries render
// identically iff Fingerprint treats them as equivalent. Exposed for tests
// and debugging; the serving cache keys on the hash.
func CanonicalQuery(q *sqlparse.Query) string {
	var b strings.Builder
	b.WriteString("T:")
	// Table order is irrelevant to COUNT(*) semantics and to the join
	// featurizations (table bit-vectors, sorted sub-schema keys), but
	// duplicates are self-joins and must survive — sort, don't dedupe.
	tables := append([]string(nil), q.Tables...)
	sort.Strings(tables)
	b.WriteString(strings.Join(tables, "\x01"))

	b.WriteString("|J:")
	joins := make([]string, 0, len(q.Joins))
	for _, j := range q.Joins {
		joins = append(joins, canonJoin(j))
	}
	sort.Strings(joins)
	b.WriteString(strings.Join(dedupeSorted(joins), "\x01"))

	b.WriteString("|W:")
	b.WriteString(canonExpr(q.Where))

	b.WriteString("|G:")
	groups := append([]string(nil), q.GroupBy...)
	sort.Strings(groups)
	b.WriteString(strings.Join(dedupeSorted(groups), "\x01"))
	return b.String()
}

// canonJoin renders an equi-join with its sides in lexicographic order:
// "a.x = b.y" and "b.y = a.x" are the same predicate.
func canonJoin(j sqlparse.JoinPred) string {
	l := j.LeftTable + "." + j.LeftCol
	r := j.RightTable + "." + j.RightCol
	if r < l {
		l, r = r, l
	}
	return l + "=" + r
}

// canonExpr renders a selection expression canonically: AND/OR children are
// flattened, individually canonicalized, sorted, and deduplicated
// (commutativity + idempotence); a single surviving child elides its
// wrapper. A nil expression renders empty.
func canonExpr(e sqlparse.Expr) string {
	switch n := e.(type) {
	case nil:
		return ""
	case *sqlparse.Pred:
		return canonPred(n)
	case *sqlparse.And:
		return canonNary("&", n.Kids, isAndNode)
	case *sqlparse.Or:
		return canonNary("|", n.Kids, isOrNode)
	}
	panic("core: unknown expression type in fingerprint")
}

func isAndNode(e sqlparse.Expr) []sqlparse.Expr {
	if a, ok := e.(*sqlparse.And); ok {
		return a.Kids
	}
	return nil
}

func isOrNode(e sqlparse.Expr) []sqlparse.Expr {
	if o, ok := e.(*sqlparse.Or); ok {
		return o.Kids
	}
	return nil
}

// canonNary canonicalizes one n-ary AND/OR level: same-operator children
// are flattened in (associativity), every child is rendered, and the
// rendered set is sorted and deduplicated.
func canonNary(op string, kids []sqlparse.Expr, sameOp func(sqlparse.Expr) []sqlparse.Expr) string {
	parts := make([]string, 0, len(kids))
	var add func(es []sqlparse.Expr)
	add = func(es []sqlparse.Expr) {
		for _, k := range es {
			if inner := sameOp(k); inner != nil {
				add(inner)
				continue
			}
			parts = append(parts, canonExpr(k))
		}
	}
	add(kids)
	sort.Strings(parts)
	parts = dedupeSorted(parts)
	if len(parts) == 1 {
		return parts[0]
	}
	return "(" + op + "\x01" + strings.Join(parts, "\x01") + ")"
}

// canonPred renders one simple predicate. Over the integer domains the
// paper's QFTs assume, the strict comparisons qualify the same value sets
// as their closed neighbors, so "a > v" normalizes to "a >= v+1" and
// "a < v" to "a <= v-1" (guarding int64 overflow, where the strict form is
// kept verbatim). String literals are quoted with full escaping so hostile
// literal bytes cannot forge the canonical form of a different predicate.
func canonPred(p *sqlparse.Pred) string {
	if p.Like {
		return p.Attr + "\x00like\x00" + strconv.Quote(*p.Str)
	}
	if p.Str != nil {
		return p.Attr + "\x00" + p.Op.String() + "\x00" + strconv.Quote(*p.Str)
	}
	op, val := p.Op, p.Val
	switch {
	case op == sqlparse.OpGt && val < math.MaxInt64:
		op, val = sqlparse.OpGe, val+1
	case op == sqlparse.OpLt && val > math.MinInt64:
		op, val = sqlparse.OpLe, val-1
	}
	return p.Attr + "\x00" + op.String() + "\x00" + strconv.FormatInt(val, 10)
}

// dedupeSorted removes adjacent duplicates from a sorted slice in place.
func dedupeSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
