package core

import (
	"fmt"

	"qfe/internal/table"
)

// This file implements the inverse direction of Definition 3.1 (lossless
// query featurization): decoding a partitioned feature vector (Universal
// Conjunction Encoding or Limited Disjunction Encoding) back into the set of
// attribute values it admits. The decoder is what makes the lossless
// property *testable*: a featurization is lossless for a query class iff the
// decoded admission sets reproduce the original query's result on every
// instance — which the property tests in this package verify, including the
// convergence statement of Lemma 3.2.

// BucketState is the categorical value of one partition entry.
type BucketState int8

// Bucket states, ordered by admitted share.
const (
	BucketEmpty   BucketState = iota // entry 0: no value in the partition qualifies
	BucketPartial                    // entry ½: some values qualify
	BucketFull                       // entry 1: all values qualify
)

// String returns "0", "1/2", or "1".
func (s BucketState) String() string {
	switch s {
	case BucketEmpty:
		return "0"
	case BucketPartial:
		return "1/2"
	case BucketFull:
		return "1"
	}
	return fmt.Sprintf("BucketState(%d)", int8(s))
}

// DecodedAttr is the decoded admission structure of one attribute: one
// BucketState per partition, plus the appended selectivity estimate when the
// vector was produced with AttrSel enabled.
type DecodedAttr struct {
	Attr   AttrMeta
	States []BucketState
	Sel    float64
	HasSel bool
}

// Admits classifies value val: true/false when the value's partition is
// full/empty, and exact=false when the partition is partial (the
// featurization lost whether val qualifies).
func (d *DecodedAttr) Admits(val int64) (admitted, exact bool) {
	idx := d.Attr.BucketOf(val)
	if idx < 0 || idx >= len(d.States) {
		return false, true // outside the attribute domain
	}
	switch d.States[idx] {
	case BucketFull:
		return true, true
	case BucketEmpty:
		return false, true
	default:
		return false, false
	}
}

// Exact reports whether the decoded attribute has no partial partitions,
// i.e. admission is fully determined.
func (d *DecodedAttr) Exact() bool {
	for _, s := range d.States {
		if s == BucketPartial {
			return false
		}
	}
	return true
}

// DecodePartitioned splits a feature vector produced by Universal
// Conjunction Encoding or Limited Disjunction Encoding (they share a layout)
// back into per-attribute admission structures. meta and opts must be the
// ones the vector was featurized with.
func DecodePartitioned(meta *TableMeta, opts Options, vec []float64) ([]DecodedAttr, error) {
	want := partitionedDim(meta, opts)
	if len(vec) != want {
		return nil, fmt.Errorf("core: vector has %d entries, meta expects %d", len(vec), want)
	}
	out := make([]DecodedAttr, 0, len(meta.Attrs))
	pos := 0
	for _, a := range meta.Attrs {
		d := DecodedAttr{Attr: a, States: make([]BucketState, a.NEntries)}
		for i := 0; i < a.NEntries; i++ {
			switch v := vec[pos+i]; {
			case v == 0:
				d.States[i] = BucketEmpty
			case v == 1:
				d.States[i] = BucketFull
			case v == 0.5:
				d.States[i] = BucketPartial
			default:
				return nil, fmt.Errorf("core: entry %d of attribute %q has non-categorical value %v", i, a.Name, v)
			}
		}
		pos += a.NEntries
		if opts.AttrSel {
			d.Sel, d.HasSel = vec[pos], true
			pos++
		}
		out = append(out, d)
	}
	return out, nil
}

// CountDecoded counts the rows of t admitted by the decoded per-attribute
// structures, resolving each attribute by name against t's columns. The
// second result reports whether the count is exact: it is as long as no row
// hit a partial partition. When exact is true and the featurization is
// lossless for the original query, the count equals the query's true
// cardinality — the checkable form of Definition 3.1.
func CountDecoded(t *table.Table, decoded []DecodedAttr) (count int64, exact bool, err error) {
	cols := make([][]int64, len(decoded))
	for i, d := range decoded {
		col := t.Column(d.Attr.Name)
		if col == nil {
			return 0, false, fmt.Errorf("core: table %q has no column %q", t.Name, d.Attr.Name)
		}
		cols[i] = col.Vals
	}
	exact = true
	for r := 0; r < t.NumRows(); r++ {
		rowAdmitted := true
		for i := range decoded {
			adm, ex := decoded[i].Admits(cols[i][r])
			if !ex {
				exact = false
				rowAdmitted = false
				break
			}
			if !adm {
				rowAdmitted = false
				break
			}
		}
		if rowAdmitted {
			count++
		}
	}
	return count, exact, nil
}

// CountDecodedBounds returns lower and upper bounds on the admitted row
// count: partial partitions count as rejected for the lower bound and
// admitted for the upper bound. For an exact decoding the bounds coincide.
func CountDecodedBounds(t *table.Table, decoded []DecodedAttr) (lo, hi int64, err error) {
	cols := make([][]int64, len(decoded))
	for i, d := range decoded {
		col := t.Column(d.Attr.Name)
		if col == nil {
			return 0, 0, fmt.Errorf("core: table %q has no column %q", t.Name, d.Attr.Name)
		}
		cols[i] = col.Vals
	}
	for r := 0; r < t.NumRows(); r++ {
		admLo, admHi := true, true
		for i := range decoded {
			adm, ex := decoded[i].Admits(cols[i][r])
			if ex {
				if !adm {
					admLo, admHi = false, false
					break
				}
			} else {
				admLo = false // pessimistic
			}
		}
		if admLo {
			lo++
		}
		if admHi {
			hi++
		}
	}
	return lo, hi, nil
}
