package core

import (
	"math/rand"
	"testing"

	"qfe/internal/exec"
	"qfe/internal/histogram"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// equiDepthPartitioner adapts histogram.EquiDepth to the core.Partitioner
// plug-in point.
func equiDepthPartitioner(col *table.Column, n int) ([]int64, error) {
	return histogram.EquiDepth(col.Vals, n)
}

func vOptimalPartitioner(col *table.Column, n int) ([]int64, error) {
	return histogram.VOptimal(col.Vals, n, 128)
}

// skewedTable builds a table whose value frequencies are heavily skewed, the
// case where data-driven partitions beat uniform ones.
func skewedTable(rng *rand.Rand, rows int) *table.Table {
	vals := make([]int64, rows)
	for i := range vals {
		v := int64(rng.ExpFloat64() * 150)
		if v > 1999 {
			v = 1999
		}
		vals[i] = v
	}
	t := table.New("t")
	t.MustAddColumn(table.NewColumn("a", vals))
	return t
}

func TestBucketOfWithBoundaries(t *testing.T) {
	a := AttrMeta{Name: "a", Min: 0, Max: 99, NEntries: 4, Boundaries: []int64{9, 19, 49}}
	cases := []struct {
		val  int64
		want int
	}{
		{0, 0}, {9, 0}, {10, 1}, {19, 1}, {20, 2}, {49, 2}, {50, 3}, {99, 3},
		{-1, -1}, {100, 4}, // out of domain
	}
	for _, tc := range cases {
		if got := a.BucketOf(tc.val); got != tc.want {
			t.Errorf("BucketOf(%d) = %d, want %d", tc.val, got, tc.want)
		}
	}
	// BucketRange is the inverse partition description.
	ranges := [][2]int64{{0, 9}, {10, 19}, {20, 49}, {50, 99}}
	for idx, want := range ranges {
		lo, hi := a.BucketRange(idx)
		if lo != want[0] || hi != want[1] {
			t.Errorf("BucketRange(%d) = [%d, %d], want %v", idx, lo, hi, want)
		}
	}
}

func TestBoundaryPartitionInvariants(t *testing.T) {
	// Buckets from boundaries must partition the whole domain with no gaps
	// or overlaps, the same invariant the uniform path guarantees.
	rng := rand.New(rand.NewSource(5))
	tbl := skewedTable(rng, 3000)
	for _, part := range []Partitioner{equiDepthPartitioner, vOptimalPartitioner} {
		meta, err := NewTableMetaPartitioned(tbl, 16, part)
		if err != nil {
			t.Fatal(err)
		}
		a := meta.Attrs[0]
		prevHi := a.Min - 1
		for idx := 0; idx < a.NEntries; idx++ {
			lo, hi := a.BucketRange(idx)
			if lo != prevHi+1 {
				t.Fatalf("bucket %d starts at %d, want %d", idx, lo, prevHi+1)
			}
			if hi < lo {
				t.Fatalf("bucket %d empty: [%d, %d]", idx, lo, hi)
			}
			prevHi = hi
		}
		if prevHi != a.Max {
			t.Fatalf("buckets end at %d, want %d", prevHi, a.Max)
		}
		for v := a.Min; v <= a.Max; v++ {
			idx := a.BucketOf(v)
			lo, hi := a.BucketRange(idx)
			if v < lo || v > hi {
				t.Fatalf("value %d not inside its bucket %d = [%d, %d]", v, idx, lo, hi)
			}
		}
	}
}

// TestPartitionedDecodedBoundsBracketTruth extends the Lemma 3.2 bracketing
// property to data-driven partitions: whatever the boundaries, the decoded
// lower/upper bounds must bracket the true count.
func TestPartitionedDecodedBoundsBracketTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tbl := skewedTable(rng, 2000)
	meta, err := NewTableMetaPartitioned(tbl, 12, equiDepthPartitioner)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MaxEntriesPerAttr: 12, AttrSel: false}
	f := NewConjunctive(meta, opts)
	for trial := 0; trial < 150; trial++ {
		expr := randConjunction(rng, meta, 4)
		vec, err := f.Featurize(expr)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodePartitioned(meta, opts, vec)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi, err := CountDecodedBounds(tbl, decoded)
		if err != nil {
			t.Fatal(err)
		}
		bm, err := exec.EvalExpr(tbl, expr)
		if err != nil {
			t.Fatal(err)
		}
		truth := int64(bm.Count())
		if truth < lo || truth > hi {
			t.Fatalf("trial %d: truth %d outside decoded bounds [%d, %d] for %s", trial, truth, lo, hi, expr)
		}
	}
}

// TestEquiDepthTightensBoundsOnSkew: on skewed data, equi-depth partitions
// concentrate resolution where the rows are, so the decoded count bounds
// are tighter (in expectation over anchored range queries) than uniform
// partitions at equal entry budget.
func TestEquiDepthTightensBoundsOnSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := skewedTable(rng, 4000)
	n := 12
	uniform := NewTableMeta(tbl, n)
	depth, err := NewTableMetaPartitioned(tbl, n, equiDepthPartitioner)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MaxEntriesPerAttr: n, AttrSel: false}
	col := tbl.Column("a")
	// Literals anchored at data values, like the paper's workloads: the
	// advantage of data-driven partitions materializes when queries touch
	// the data where it actually lives.
	anchoredRange := func(qrng *rand.Rand) sqlparse.Expr {
		v := col.Vals[qrng.Intn(col.Len())]
		w := int64(qrng.ExpFloat64() * 60)
		return sqlparse.NewAnd(
			&sqlparse.Pred{Attr: "a", Op: sqlparse.OpGe, Val: v - w},
			&sqlparse.Pred{Attr: "a", Op: sqlparse.OpLe, Val: v + w},
		)
	}
	width := func(meta *TableMeta) int64 {
		f := NewConjunctive(meta, opts)
		var total int64
		qrng := rand.New(rand.NewSource(8))
		for trial := 0; trial < 200; trial++ {
			expr := anchoredRange(qrng)
			vec, err := f.Featurize(expr)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodePartitioned(meta, opts, vec)
			if err != nil {
				t.Fatal(err)
			}
			lo, hi, err := CountDecodedBounds(tbl, decoded)
			if err != nil {
				t.Fatal(err)
			}
			total += hi - lo
		}
		return total
	}
	wu, wd := width(uniform), width(depth)
	t.Logf("total decoded bound width: uniform=%d equi-depth=%d", wu, wd)
	if wd >= wu {
		t.Errorf("equi-depth bound width %d should beat uniform %d on skewed data", wd, wu)
	}
}

func TestNewTableMetaPartitionedRejectsBadBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tbl := skewedTable(rng, 100)
	bad := func(*table.Column, int) ([]int64, error) {
		return []int64{50, 40}, nil // not ascending
	}
	if _, err := NewTableMetaPartitioned(tbl, 8, bad); err == nil {
		t.Error("descending boundaries accepted")
	}
	outOfRange := func(col *table.Column, int2 int) ([]int64, error) {
		return []int64{col.Max() + 10}, nil
	}
	if _, err := NewTableMetaPartitioned(tbl, 8, outOfRange); err == nil {
		t.Error("out-of-range boundary accepted")
	}
}

func TestPartitionedSmallDomainStaysExact(t *testing.T) {
	tbl := table.New("t")
	tbl.MustAddColumn(table.NewColumn("bin", []int64{0, 1, 0, 1, 1}))
	meta, err := NewTableMetaPartitioned(tbl, 16, equiDepthPartitioner)
	if err != nil {
		t.Fatal(err)
	}
	a := meta.Attrs[0]
	if !a.Exact() || a.NEntries != 2 || a.Boundaries != nil {
		t.Errorf("small domain should keep the exact uniform partitioning: %+v", a)
	}
}
