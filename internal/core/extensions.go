package core

import (
	"fmt"
	"sort"
	"strings"

	"qfe/internal/sqlparse"
)

// This file implements the Section 6 extensions: GROUP BY featurization and
// string-prefix predicates via dictionary order.

// GroupByVector encodes a GROUP BY clause as the binary vector of Section 6:
// one entry per attribute of the table, set to 1 for each grouping
// attribute. The vector is appended to any QFT's feature vector to make the
// featurization grouping-aware.
func GroupByVector(meta *TableMeta, groupBy []string) ([]float64, error) {
	vec := make([]float64, meta.NumAttrs())
	for _, g := range groupBy {
		i := meta.AttrIndex(g)
		if i < 0 {
			return nil, fmt.Errorf("core: unknown grouping attribute %q", g)
		}
		vec[i] = 1
	}
	return vec, nil
}

// PrefixPreds rewrites a string-prefix predicate (SQL "attr LIKE 'p%'") into
// the equivalent pair of range predicates over the attribute's sorted
// dictionary codes. Section 6 observes that, unlike pure dictionary-equality
// schemes, the partition-based QFTs naturally featurize such predicates:
// because the dictionary is sorted, all strings with prefix p occupy the
// contiguous code range [first(p), last(p)].
//
// The result is the conjunction attr >= lo AND attr <= hi, or an
// unsatisfiable predicate when no dictionary entry has the prefix.
func PrefixPreds(attr, prefix string, dict []string) sqlparse.Expr {
	lo := sort.SearchStrings(dict, prefix)
	hi := sort.Search(len(dict), func(i int) bool {
		return !strings.HasPrefix(dict[i], prefix) && dict[i] > prefix
	})
	if lo >= hi || lo >= len(dict) || !strings.HasPrefix(dict[lo], prefix) {
		// No string carries the prefix: an unsatisfiable code equality.
		return &sqlparse.Pred{Attr: attr, Op: sqlparse.OpEq, Val: int64(len(dict))}
	}
	return sqlparse.NewAnd(
		&sqlparse.Pred{Attr: attr, Op: sqlparse.OpGe, Val: int64(lo)},
		&sqlparse.Pred{Attr: attr, Op: sqlparse.OpLe, Val: int64(hi - 1)},
	)
}

// WithGroupBy wraps a Featurizer so that its vectors carry the GROUP BY
// block of Section 6 appended after the base encoding.
type WithGroupBy struct {
	Base Featurizer
	Meta *TableMeta
}

// Name implements Featurizer.
func (w *WithGroupBy) Name() string { return w.Base.Name() + "+groupby" }

// Dim implements Featurizer.
func (w *WithGroupBy) Dim() int { return w.Base.Dim() + w.Meta.NumAttrs() }

// Featurize implements Featurizer for the selection part only; use
// FeaturizeQuery to include the grouping attributes.
func (w *WithGroupBy) Featurize(expr sqlparse.Expr) ([]float64, error) {
	return w.FeaturizeQuery(expr, nil)
}

// FeaturizeInto implements Featurizer: the base encoding at offset 0, the
// (here empty) GROUP BY block zeroed after it.
func (w *WithGroupBy) FeaturizeInto(dst []float64, expr sqlparse.Expr) error {
	if err := checkDst("groupby", dst, w.Dim()); err != nil {
		return err
	}
	base := w.Base.Dim()
	if err := w.Base.FeaturizeInto(dst[:base], expr); err != nil {
		return err
	}
	for i := base; i < len(dst); i++ {
		dst[i] = 0
	}
	return nil
}

// FeaturizeQuery encodes the selection expression and the grouping
// attributes into one vector.
func (w *WithGroupBy) FeaturizeQuery(expr sqlparse.Expr, groupBy []string) ([]float64, error) {
	base, err := w.Base.Featurize(expr)
	if err != nil {
		return nil, err
	}
	gb, err := GroupByVector(w.Meta, groupBy)
	if err != nil {
		return nil, err
	}
	return append(base, gb...), nil
}
