package core

import (
	"fmt"

	"qfe/internal/sqlparse"
)

// Conjunctive is Universal Conjunction Encoding (Section 3.2, Algorithm 1).
// The domain of each attribute A is discretized into
// n_A = min(n, max(A)-min(A)+1) partitions of consecutive values; each
// partition owns one feature-vector entry whose categorical value states
// whether the partition satisfies the query's predicates on A: 1 (all
// values qualify), ½ (some qualify), 0 (none qualify). Each additional
// conjunct can only decrease entries, mirroring that conjuncts only make a
// query more selective.
//
// When Options.AttrSel is set, each per-attribute vector is followed by the
// per-attribute selectivity estimate under the uniformity assumption (the
// gray lines of Algorithm 1): the fraction of A's domain qualifying the
// predicates on A.
//
// The encoding supports arbitrarily many simple predicates per attribute,
// but only conjunctions. By Lemma 3.2 it converges to a lossless
// featurization (Definition 3.1) as n grows; once every partition holds a
// single distinct value the encoding is exactly lossless, and the
// implementation then emits only 0/1 entries (the small-domain refinement
// noted at the end of Section 3.2). More generally, literals that align
// with partition boundaries are resolved to 0/1 instead of ½.
type Conjunctive struct {
	meta *TableMeta
	opts Options
	// offsets[ai] is attribute ai's block start in the feature vector;
	// offsets[NumAttrs] is the total dim. Precomputed so FeaturizeInto can
	// write each attribute at its fixed offset.
	offsets []int
}

// NewConjunctive returns Universal Conjunction Encoding over meta.
func NewConjunctive(meta *TableMeta, opts Options) *Conjunctive {
	return &Conjunctive{meta: meta, opts: opts, offsets: attrOffsets(meta, opts)}
}

// attrOffsets precomputes the per-attribute block offsets of the
// partition-based layout shared by Universal Conjunction Encoding and
// Limited Disjunction Encoding.
func attrOffsets(meta *TableMeta, opts Options) []int {
	offsets := make([]int, meta.NumAttrs()+1)
	for i, a := range meta.Attrs {
		stride := a.NEntries
		if opts.AttrSel {
			stride++
		}
		offsets[i+1] = offsets[i] + stride
	}
	return offsets
}

// Name implements Featurizer.
func (c *Conjunctive) Name() string { return "conjunctive" }

// Dim implements Featurizer: sum of per-attribute entry counts, plus one
// selectivity entry per attribute when AttrSel is enabled.
func (c *Conjunctive) Dim() int { return partitionedDim(c.meta, c.opts) }

func partitionedDim(meta *TableMeta, opts Options) int {
	dim := 0
	for _, a := range meta.Attrs {
		dim += a.NEntries
		if opts.AttrSel {
			dim++
		}
	}
	return dim
}

// Featurize implements Featurizer (Algorithm 1). expr must be conjunctive.
func (c *Conjunctive) Featurize(expr sqlparse.Expr) ([]float64, error) {
	if !sqlparse.IsConjunctive(expr) {
		return nil, fmt.Errorf("core/conjunctive: disjunctions require Limited Disjunction Encoding")
	}
	perAttr := sqlparse.PredsPerAttr(expr)
	if err := checkKnownAttrs(c.meta, perAttr); err != nil {
		return nil, fmt.Errorf("core/conjunctive: %w", err)
	}
	vec := make([]float64, 0, c.Dim())
	for _, a := range c.meta.Attrs {
		av, sel, err := FeaturizeAttrConjunction(a, predsFor(perAttr, c.meta, a))
		if err != nil {
			return nil, err
		}
		vec = append(vec, av...)
		if c.opts.AttrSel {
			vec = append(vec, sel)
		}
	}
	return vec, nil
}

// FeaturizeInto implements Featurizer: Algorithm 1 writing each attribute's
// partition block (and optional selectivity entry) at its precomputed offset.
func (c *Conjunctive) FeaturizeInto(dst []float64, expr sqlparse.Expr) error {
	if err := checkDst("conjunctive", dst, c.Dim()); err != nil {
		return err
	}
	if !sqlparse.IsConjunctive(expr) {
		return fmt.Errorf("core/conjunctive: disjunctions require Limited Disjunction Encoding")
	}
	perAttr := sqlparse.PredsPerAttr(expr)
	if err := checkKnownAttrs(c.meta, perAttr); err != nil {
		return fmt.Errorf("core/conjunctive: %w", err)
	}
	for ai, a := range c.meta.Attrs {
		off := c.offsets[ai]
		sel, err := FeaturizeAttrConjunctionInto(a, predsFor(perAttr, c.meta, a), dst[off:off+a.NEntries])
		if err != nil {
			return err
		}
		if c.opts.AttrSel {
			dst[off+a.NEntries] = sel
		}
	}
	return nil
}

// predsFor collects the predicates of attribute a from the per-attribute
// grouping, matching both bare and table-qualified spellings. The qualified
// match scans the (small) grouping instead of building "table.attr", keeping
// the per-query hot path free of string garbage.
func predsFor(perAttr map[string][]*sqlparse.Pred, meta *TableMeta, a AttrMeta) []*sqlparse.Pred {
	if ps, ok := perAttr[a.Name]; ok {
		return ps
	}
	nt, na := len(meta.Name), len(a.Name)
	for name, ps := range perAttr {
		if len(name) == nt+1+na && name[nt] == '.' && name[:nt] == meta.Name && name[nt+1:] == a.Name {
			return ps
		}
	}
	return nil
}

// checkKnownAttrs verifies every referenced attribute resolves in meta.
func checkKnownAttrs(meta *TableMeta, perAttr map[string][]*sqlparse.Pred) error {
	for name, ps := range perAttr {
		if meta.AttrIndex(name) < 0 {
			return fmt.Errorf("unknown attribute %q", name)
		}
		for _, p := range ps {
			if p.Str != nil {
				return fmt.Errorf("unbound string predicate %s", p)
			}
		}
	}
	return nil
}

// FeaturizeAttrConjunction runs Algorithm 1 for a single attribute: it
// returns the n_A-entry partition vector for the conjunction of preds on
// attribute a, together with the per-attribute selectivity estimate
// r_A / (max(A)-min(A)+1) of the gray lines.
//
// The boundary refinement generalizes the paper's small-domain note: a
// partition is marked ½ only when the literal genuinely splits it; literals
// aligned with a partition edge resolve the partition to 0 or 1. With
// n_A == domain size every partition is a single value, so the vector is
// purely 0/1.
func FeaturizeAttrConjunction(a AttrMeta, preds []*sqlparse.Pred) ([]float64, float64, error) {
	vec := make([]float64, a.NEntries)
	sel, err := FeaturizeAttrConjunctionInto(a, preds, vec)
	if err != nil {
		return nil, 0, err
	}
	return vec, sel, nil
}

// FeaturizeAttrConjunctionInto is FeaturizeAttrConjunction writing the
// partition vector into vec, which must have length a.NEntries and is fully
// overwritten. It is the allocation-free core both featurization paths share.
func FeaturizeAttrConjunctionInto(a AttrMeta, preds []*sqlparse.Pred, vec []float64) (float64, error) {
	if len(vec) != a.NEntries {
		return 0, fmt.Errorf("core: attribute %q: destination length %d, want %d", a.Name, len(vec), a.NEntries)
	}
	for i := range vec {
		vec[i] = 1
	}
	// Running bounds for the selectivity estimate; equality predicates also
	// narrow them (a refinement over the paper's pseudocode, which tracks
	// bounds only for range operators).
	minA, maxA := a.Min, a.Max
	var nots map[int64]struct{}

	// markSplit lowers entry idx to ½ unless a previous predicate already
	// zeroed it: entries only ever decrease (Algorithm 1, line 5).
	markSplit := func(idx int) {
		if vec[idx] == 1 {
			vec[idx] = 0.5
		}
	}
	zero := func(from, to int) { // [from, to)
		if from < 0 {
			from = 0
		}
		if to > len(vec) {
			to = len(vec)
		}
		for i := from; i < to; i++ {
			vec[i] = 0
		}
	}

	for _, p := range preds {
		if p.Str != nil {
			return 0, fmt.Errorf("core: unbound string predicate %s", p)
		}
		val := p.Val
		idx := a.BucketOf(val)
		inRange := idx >= 0 && idx < a.NEntries
		var lo, hi int64
		if inRange {
			lo, hi = a.BucketRange(idx)
		}
		switch p.Op {
		case sqlparse.OpEq:
			if !inRange {
				zero(0, a.NEntries) // impossible predicate
				minA, maxA = 1, 0   // empty bounds
				continue
			}
			zero(0, idx)
			zero(idx+1, a.NEntries)
			if lo != hi {
				markSplit(idx)
			}
			if val > minA {
				minA = val
			}
			if val < maxA {
				maxA = val
			}
		case sqlparse.OpNe:
			if inRange {
				if lo == hi {
					vec[idx] = 0
				} else {
					markSplit(idx)
				}
			}
			if nots == nil {
				nots = make(map[int64]struct{})
			}
			nots[val] = struct{}{}
		case sqlparse.OpGt, sqlparse.OpGe:
			bound := val // smallest qualifying value
			if p.Op == sqlparse.OpGt {
				bound = val + 1
			}
			switch {
			case bound <= a.Min:
				// Everything qualifies; nothing to do.
			case bound > a.Max:
				zero(0, a.NEntries)
			default:
				bIdx := a.BucketOf(bound)
				bLo, _ := a.BucketRange(bIdx)
				zero(0, bIdx)
				if bound != bLo {
					markSplit(bIdx)
				}
			}
			if bound > minA {
				minA = bound
			}
		case sqlparse.OpLt, sqlparse.OpLe:
			bound := val // largest qualifying value
			if p.Op == sqlparse.OpLt {
				bound = val - 1
			}
			switch {
			case bound >= a.Max:
				// Everything qualifies; nothing to do.
			case bound < a.Min:
				zero(0, a.NEntries)
			default:
				bIdx := a.BucketOf(bound)
				_, bHi := a.BucketRange(bIdx)
				zero(bIdx+1, a.NEntries)
				if bound != bHi {
					markSplit(bIdx)
				}
			}
			if bound < maxA {
				maxA = bound
			}
		default:
			return 0, fmt.Errorf("core: unknown operator in %s", p)
		}
	}

	// Per-attribute selectivity estimate. With frequency weights attached
	// (NewTableMetaWeighted), the estimate is the weighted coverage
	// Σ_b Weights[b]·entry_b; otherwise the paper's uniformity assumption
	// (gray lines): the qualifying share of the domain, with not-equal
	// exclusions inside the surviving range counted out.
	var sel float64
	switch {
	case a.Weights != nil:
		sel = weightedSel(a.Weights, vec)
	case maxA >= minA:
		excluded := int64(0)
		for v := range nots {
			if v >= minA && v <= maxA {
				excluded++
			}
		}
		r := maxA - minA + 1 - excluded
		if r < 0 {
			r = 0
		}
		sel = float64(r) / float64(a.DomainSize())
	}
	return sel, nil
}

// weightedSel combines per-partition frequency shares with partition
// qualification values: full partitions contribute their whole mass,
// ½-partitions half of it.
func weightedSel(weights, vec []float64) float64 {
	var sel float64
	for b, v := range vec {
		sel += weights[b] * v
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}
