package core

import (
	"fmt"
	"sort"

	"qfe/internal/catalog"
	"qfe/internal/sqlparse"
)

// This file implements the join adapters of Sections 2.1.2 and 4.2: the
// global-model encoding (per-table featurizations concatenated with the
// table bit-vector) and the MSCN three-set encoding with pluggable
// per-attribute QFTs.

// GlobalFeaturizer encodes multi-table queries for a single global model
// (Section 2.1.2): the per-table featurizations of the query's selection
// predicates are concatenated in schema order, followed by the binary
// table vector (entry i set when table i participates in the join).
//
// Tables that are part of the query but carry no predicates contribute
// their QFT's no-predicate encoding; tables absent from the query
// contribute all-zero blocks, which together with the table vector keeps
// distinct queries distinct.
type GlobalFeaturizer struct {
	Schema *catalog.Schema
	// QFTs maps each schema table to its per-table featurizer. All tables
	// must use the same QFT family for the encoding to be meaningful.
	QFTs map[string]Featurizer
}

// NewGlobalFeaturizer builds per-table featurizers of the named QFT over the
// given metas, one per schema table.
func NewGlobalFeaturizer(schema *catalog.Schema, metas map[string]*TableMeta, qft string, opts Options) (*GlobalFeaturizer, error) {
	g := &GlobalFeaturizer{Schema: schema, QFTs: make(map[string]Featurizer, len(schema.Tables))}
	for _, t := range schema.Tables {
		meta, ok := metas[t]
		if !ok {
			return nil, fmt.Errorf("core: no TableMeta for table %q", t)
		}
		f, err := New(qft, meta, opts)
		if err != nil {
			return nil, err
		}
		g.QFTs[t] = f
	}
	return g, nil
}

// Dim returns the global feature-vector length: the per-table dims plus one
// table-vector entry per schema table.
func (g *GlobalFeaturizer) Dim() int {
	dim := len(g.Schema.Tables)
	for _, t := range g.Schema.Tables {
		dim += g.QFTs[t].Dim()
	}
	return dim
}

// Featurize encodes the query. Selection conjuncts are routed to their
// table's featurizer; the trailing block is the table bit-vector.
func (g *GlobalFeaturizer) Featurize(q *sqlparse.Query) ([]float64, error) {
	perTable, err := SplitWhereByTable(q)
	if err != nil {
		return nil, err
	}
	inQuery := make(map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		inQuery[t] = true
	}
	vec := make([]float64, 0, g.Dim())
	for _, t := range g.Schema.Tables {
		f := g.QFTs[t]
		if !inQuery[t] {
			vec = append(vec, make([]float64, f.Dim())...)
			continue
		}
		sub, err := f.Featurize(perTable[t])
		if err != nil {
			return nil, fmt.Errorf("core: table %q: %w", t, err)
		}
		vec = append(vec, sub...)
	}
	vec = append(vec, g.Schema.TableBitvector(q.Tables)...)
	return vec, nil
}

// FeaturizeInto is Featurize writing into dst (length Dim(), fully
// overwritten): each table's block sits at its fixed schema-order offset,
// absent tables zero theirs, and the table bit-vector is written in place
// instead of materialized.
func (g *GlobalFeaturizer) FeaturizeInto(dst []float64, q *sqlparse.Query) error {
	if err := checkDst("global", dst, g.Dim()); err != nil {
		return err
	}
	perTable, err := SplitWhereByTable(q)
	if err != nil {
		return err
	}
	inQuery := make(map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		inQuery[t] = true
	}
	off := 0
	for _, t := range g.Schema.Tables {
		f := g.QFTs[t]
		d := f.Dim()
		block := dst[off : off+d]
		if !inQuery[t] {
			for i := range block {
				block[i] = 0
			}
		} else if err := f.FeaturizeInto(block, perTable[t]); err != nil {
			return fmt.Errorf("core: table %q: %w", t, err)
		}
		off += d
	}
	for i, t := range g.Schema.Tables {
		if inQuery[t] {
			dst[off+i] = 1
		} else {
			dst[off+i] = 0
		}
	}
	return nil
}

// SplitWhereByTable splits the top-level conjunction of a multi-table
// query's WHERE into per-table selection expressions, keyed by table name.
// Every conjunct must reference exactly one table. For a single-table query
// unqualified attributes are allowed and map to that table.
func SplitWhereByTable(q *sqlparse.Query) (map[string]sqlparse.Expr, error) {
	byTable := make(map[string][]sqlparse.Expr)
	single := ""
	if len(q.Tables) == 1 {
		single = q.Tables[0]
	}
	for _, kid := range sqlparse.Conjuncts(q.Where) {
		tbl := ""
		for _, p := range sqlparse.CollectPreds(kid) {
			pt := tableOf(p.Attr, single)
			if pt == "" {
				return nil, fmt.Errorf("core: unqualified attribute %q in multi-table query", p.Attr)
			}
			if tbl == "" {
				tbl = pt
			} else if tbl != pt {
				return nil, fmt.Errorf("core: conjunct %q spans tables %q and %q", kid, tbl, pt)
			}
		}
		if tbl == "" {
			continue
		}
		byTable[tbl] = append(byTable[tbl], kid)
	}
	out := make(map[string]sqlparse.Expr, len(byTable))
	for t, kids := range byTable {
		out[t] = sqlparse.NewAnd(kids...)
	}
	return out, nil
}

func tableOf(attr, single string) string {
	for i := 0; i < len(attr); i++ {
		if attr[i] == '.' {
			return attr[:i]
		}
	}
	return single
}

// MSCNSets is the three-part featurization consumed by the MSCN model
// (Section 4.2): a set of table vectors, a set of join vectors, and a set of
// predicate vectors. Each inner vector within one set has the same length.
type MSCNSets struct {
	Tables [][]float64
	Joins  [][]float64
	Preds  [][]float64
}

// MSCNMode selects the predicate-set encoding.
type MSCNMode int

const (
	// MSCNOriginal reproduces the unmodified MSCN featurization [12]: one
	// vector per simple predicate, [attr one-hot | op bits | normalized
	// literal]. This is "MSCN w/o mods" in Table 2.
	MSCNOriginal MSCNMode = iota
	// MSCNPerAttribute is the paper's modification (Section 4.2): all
	// predicates referencing the same attribute are featurized into one
	// per-attribute vector with Universal Conjunction Encoding (or Limited
	// Disjunction Encoding for mixed queries), labeled by the attribute's
	// one-hot id. This is "MSCN + conj" in Table 2.
	MSCNPerAttribute
	// MSCNRange labels each attribute's one-hot id with the Range Predicate
	// Encoding pair [lo, hi] — the "MSCN x range" cell of Figure 1.
	MSCNRange
)

// MSCNFeaturizer encodes queries into MSCNSets over a fixed schema.
type MSCNFeaturizer struct {
	Schema *catalog.Schema
	Metas  map[string]*TableMeta
	Mode   MSCNMode
	Opts   Options

	attrIDs   map[string]int // "table.column" -> global attribute id
	attrList  []string
	attrMetas []AttrMeta
	maxN      int // widest per-attribute partition vector
	joinIDs   map[string]int
}

// NewMSCNFeaturizer builds the featurizer. Attribute and join ids are
// assigned deterministically (sorted), so featurizations are stable across
// process runs.
func NewMSCNFeaturizer(schema *catalog.Schema, metas map[string]*TableMeta, mode MSCNMode, opts Options) (*MSCNFeaturizer, error) {
	m := &MSCNFeaturizer{
		Schema:  schema,
		Metas:   metas,
		Mode:    mode,
		Opts:    opts,
		attrIDs: make(map[string]int),
		joinIDs: make(map[string]int),
	}
	var qualified []string
	byName := make(map[string]AttrMeta)
	for _, t := range schema.Tables {
		meta, ok := metas[t]
		if !ok {
			return nil, fmt.Errorf("core: no TableMeta for table %q", t)
		}
		for _, a := range meta.Attrs {
			qn := t + "." + a.Name
			qualified = append(qualified, qn)
			byName[qn] = a
			if a.NEntries > m.maxN {
				m.maxN = a.NEntries
			}
		}
	}
	sort.Strings(qualified)
	m.attrList = qualified
	m.attrMetas = make([]AttrMeta, len(qualified))
	for i, qn := range qualified {
		m.attrIDs[qn] = i
		m.attrMetas[i] = byName[qn]
	}
	var joinKeys []string
	for _, fk := range schema.FKs {
		joinKeys = append(joinKeys, fk.String())
	}
	sort.Strings(joinKeys)
	for i, k := range joinKeys {
		m.joinIDs[k] = i
	}
	return m, nil
}

// TableDim returns the length of each table-set vector (one-hot over schema
// tables).
func (m *MSCNFeaturizer) TableDim() int { return len(m.Schema.Tables) }

// JoinDim returns the length of each join-set vector (one-hot over schema
// foreign-key edges).
func (m *MSCNFeaturizer) JoinDim() int {
	if len(m.joinIDs) == 0 {
		return 1
	}
	return len(m.joinIDs)
}

// PredDim returns the length of each predicate-set vector.
func (m *MSCNFeaturizer) PredDim() int {
	switch m.Mode {
	case MSCNOriginal:
		return len(m.attrIDs) + 3 + 1 // attr one-hot | {=,>,<} | literal
	case MSCNRange:
		return len(m.attrIDs) + 2 // attr one-hot | lo | hi
	}
	d := len(m.attrIDs) + m.maxN
	if m.Opts.AttrSel {
		d++
	}
	return d
}

// Featurize encodes q into the three MSCN sets. Empty sets are represented
// by a single zero vector, matching the original implementation's padding.
func (m *MSCNFeaturizer) Featurize(q *sqlparse.Query) (*MSCNSets, error) {
	sets := &MSCNSets{}

	for _, t := range q.Tables {
		found := false
		vec := make([]float64, m.TableDim())
		for i, st := range m.Schema.Tables {
			if st == t {
				vec[i] = 1
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: query table %q not in schema", t)
		}
		sets.Tables = append(sets.Tables, vec)
	}

	for _, j := range q.Joins {
		vec := make([]float64, m.JoinDim())
		id, ok := m.joinIDs[catalog.ForeignKey{FromTable: j.LeftTable, FromCol: j.LeftCol, ToTable: j.RightTable, ToCol: j.RightCol}.String()]
		if !ok {
			// Try the reversed orientation; join predicates are symmetric.
			id, ok = m.joinIDs[catalog.ForeignKey{FromTable: j.RightTable, FromCol: j.RightCol, ToTable: j.LeftTable, ToCol: j.LeftCol}.String()]
		}
		if !ok {
			return nil, fmt.Errorf("core: join %s is not a schema foreign-key edge", j)
		}
		vec[id] = 1
		sets.Joins = append(sets.Joins, vec)
	}
	if len(sets.Joins) == 0 {
		sets.Joins = [][]float64{make([]float64, m.JoinDim())}
	}

	preds, err := m.featurizePreds(q)
	if err != nil {
		return nil, err
	}
	sets.Preds = preds
	if len(sets.Preds) == 0 {
		sets.Preds = [][]float64{make([]float64, m.PredDim())}
	}
	return sets, nil
}

func (m *MSCNFeaturizer) featurizePreds(q *sqlparse.Query) ([][]float64, error) {
	single := ""
	if len(q.Tables) == 1 {
		single = q.Tables[0]
	}
	qualify := func(attr string) (string, error) {
		if tableOf(attr, "") != "" {
			return attr, nil
		}
		if single == "" {
			return "", fmt.Errorf("core: unqualified attribute %q in multi-table query", attr)
		}
		return single + "." + attr, nil
	}

	if m.Mode == MSCNOriginal {
		if !sqlparse.IsConjunctive(q.Where) {
			return nil, fmt.Errorf("core: original MSCN featurization does not support disjunctions")
		}
		var out [][]float64
		for _, p := range sqlparse.CollectPreds(q.Where) {
			qn, err := qualify(p.Attr)
			if err != nil {
				return nil, err
			}
			id, ok := m.attrIDs[qn]
			if !ok {
				return nil, fmt.Errorf("core: unknown attribute %q", qn)
			}
			vec := make([]float64, m.PredDim())
			vec[id] = 1
			eq, gt, lt := opBits(p.Op)
			base := len(m.attrIDs)
			vec[base], vec[base+1], vec[base+2] = eq, gt, lt
			vec[base+3] = m.attrMetas[id].Normalize(p.Val)
			out = append(out, vec)
		}
		return out, nil
	}

	// Per-attribute modes: group all predicates on one attribute into one
	// compound expression and featurize it with Algorithm 1/2 (or Range
	// Predicate Encoding for MSCNRange).
	compounds, err := sqlparse.CompoundPredicates(q.Where)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var out [][]float64
	for _, cp := range compounds {
		qn, err := qualify(cp.Attr)
		if err != nil {
			return nil, err
		}
		id, ok := m.attrIDs[qn]
		if !ok {
			return nil, fmt.Errorf("core: unknown attribute %q", qn)
		}
		a := m.attrMetas[id]
		vec := make([]float64, m.PredDim())
		vec[id] = 1
		if m.Mode == MSCNRange {
			if !sqlparse.IsConjunctive(cp.Expr) {
				return nil, fmt.Errorf("core: MSCN range mode does not support disjunctions")
			}
			lo, hi := FeaturizeAttrRange(a, sqlparse.CollectPreds(cp.Expr))
			vec[len(m.attrIDs)] = lo
			vec[len(m.attrIDs)+1] = hi
			out = append(out, vec)
			continue
		}
		av, sel, err := FeaturizeAttrCompound(a, cp.Expr)
		if err != nil {
			return nil, err
		}
		copy(vec[len(m.attrIDs):], av) // right-padded with zeros up to maxN
		if m.Opts.AttrSel {
			vec[len(vec)-1] = sel
		}
		out = append(out, vec)
	}
	return out, nil
}
