package core

import (
	"math"
	"testing"

	"qfe/internal/sqlparse"
)

func mustParseQ(t *testing.T, sql string) *sqlparse.Query {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return q
}

// TestFingerprintEquivalences: every pair here is semantically identical
// and featurized identically by the paper's QFTs, so the fingerprints must
// collide — that collision is the estimate cache's whole value.
func TestFingerprintEquivalences(t *testing.T) {
	pairs := [][2]string{
		// Conjunct order is irrelevant.
		{"SELECT count(*) FROM t WHERE A >= 3 AND B = 1", "SELECT count(*) FROM t WHERE B = 1 AND A >= 3"},
		// Strict integer comparisons normalize to their closed forms.
		{"SELECT count(*) FROM t WHERE A > 5", "SELECT count(*) FROM t WHERE A >= 6"},
		{"SELECT count(*) FROM t WHERE A < 5", "SELECT count(*) FROM t WHERE A <= 4"},
		// != parses to <> already; both spellings collide.
		{"SELECT count(*) FROM t WHERE A != 2", "SELECT count(*) FROM t WHERE A <> 2"},
		// Duplicate conjuncts/disjuncts are absorbed (idempotence).
		{"SELECT count(*) FROM t WHERE A = 1 AND A = 1", "SELECT count(*) FROM t WHERE A = 1"},
		{"SELECT count(*) FROM t WHERE A = 1 OR A = 1", "SELECT count(*) FROM t WHERE A = 1"},
		// Disjunct order is irrelevant, also inside compound predicates.
		{"SELECT count(*) FROM t WHERE (A = 1 OR A = 2) AND B > 0", "SELECT count(*) FROM t WHERE B >= 1 AND (A = 2 OR A = 1)"},
		// FROM order and equi-join side order are irrelevant.
		{"SELECT count(*) FROM a, b WHERE a.id = b.a_id AND a.x > 0", "SELECT count(*) FROM b, a WHERE b.a_id = a.id AND a.x >= 1"},
		// GROUP BY attribute order is irrelevant (per-attribute indicator).
		{"SELECT count(*) FROM t WHERE A = 1 GROUP BY B, C", "SELECT count(*) FROM t WHERE A = 1 GROUP BY C, B"},
		// Nested same-operator nodes flatten.
		{"SELECT count(*) FROM t WHERE (A = 1 AND B = 2) AND C = 3", "SELECT count(*) FROM t WHERE C = 3 AND B = 2 AND A = 1"},
	}
	for _, p := range pairs {
		qa, qb := mustParseQ(t, p[0]), mustParseQ(t, p[1])
		if Fingerprint(qa) != Fingerprint(qb) {
			t.Errorf("fingerprints differ:\n  %s -> %s\n  %s -> %s",
				p[0], CanonicalQuery(qa), p[1], CanonicalQuery(qb))
		}
	}
}

// TestFingerprintInequivalences: none of these pairs may collide — a
// collision here would serve one query's estimate for a different query.
func TestFingerprintInequivalences(t *testing.T) {
	pairs := [][2]string{
		{"SELECT count(*) FROM t WHERE A = 1", "SELECT count(*) FROM t WHERE A = 2"},
		{"SELECT count(*) FROM t WHERE A = 1", "SELECT count(*) FROM t WHERE B = 1"},
		{"SELECT count(*) FROM t WHERE A = 1", "SELECT count(*) FROM t WHERE A <> 1"},
		{"SELECT count(*) FROM t WHERE A >= 1", "SELECT count(*) FROM t WHERE A > 1"},
		{"SELECT count(*) FROM t WHERE A = 1 AND B = 2", "SELECT count(*) FROM t WHERE A = 1 OR B = 2"},
		{"SELECT count(*) FROM t WHERE A = 1", "SELECT count(*) FROM t WHERE A = '1'"},
		{"SELECT count(*) FROM t WHERE A = 'x'", "SELECT count(*) FROM t WHERE A LIKE 'x%'"},
		{"SELECT count(*) FROM t", "SELECT count(*) FROM t, t"},
		{"SELECT count(*) FROM t WHERE A = 1", "SELECT count(*) FROM t WHERE A = 1 GROUP BY B"},
		{"SELECT count(*) FROM a, b WHERE a.id = b.a_id", "SELECT count(*) FROM a, b WHERE a.id = b.b_id"},
		// Hostile string literals must not forge canonical structure.
		{"SELECT count(*) FROM t WHERE A = 'x' AND B = 'y'", "SELECT count(*) FROM t WHERE A = 'x\x01B\x00=\x00\"y\"'"},
	}
	for _, p := range pairs {
		qa, qb := mustParseQ(t, p[0]), mustParseQ(t, p[1])
		if Fingerprint(qa) == Fingerprint(qb) {
			t.Errorf("inequivalent queries collide:\n  %s\n  %s\n  canon: %s",
				p[0], p[1], CanonicalQuery(qa))
		}
	}
}

// TestFingerprintOverflowGuards: at the int64 domain edges the strict
// forms cannot normalize without wrapping; they must stay distinct from
// their closed neighbors and must not panic.
func TestFingerprintOverflowGuards(t *testing.T) {
	max := &sqlparse.Pred{Attr: "A", Op: sqlparse.OpGt, Val: math.MaxInt64}
	min := &sqlparse.Pred{Attr: "A", Op: sqlparse.OpLt, Val: math.MinInt64}
	qMax := &sqlparse.Query{Tables: []string{"t"}, Where: max}
	qMin := &sqlparse.Query{Tables: []string{"t"}, Where: min}
	if Fingerprint(qMax) == Fingerprint(qMin) {
		t.Fatal("distinct overflow-edge predicates collide")
	}
	ge := &sqlparse.Query{Tables: []string{"t"}, Where: &sqlparse.Pred{Attr: "A", Op: sqlparse.OpGe, Val: math.MaxInt64}}
	if Fingerprint(qMax) == Fingerprint(ge) {
		t.Fatal("A > MaxInt64 must not normalize onto A >= MaxInt64")
	}
}

// TestFingerprintMatchesFeaturization is the semantic contract the serving
// cache relies on: queries with equal fingerprints produce bit-identical
// feature vectors under Universal Conjunction Encoding and Limited
// Disjunction Encoding, hence identical model estimates.
func TestFingerprintMatchesFeaturization(t *testing.T) {
	meta := paperMeta()
	opts := Options{MaxEntriesPerAttr: 12}
	conj := NewConjunctive(meta, opts)
	complx := NewComplex(meta, opts)

	pairs := [][2]string{
		{"A >= 3 AND B = 1", "B = 1 AND A >= 3"},
		{"A > 5 AND B <= 10", "A >= 6 AND B < 11"},
		{"A = 1 AND A = 1 AND B > 0", "B >= 1 AND A = 1"},
		{"(A = 1 OR A = 2) AND C = 1", "C = 1 AND (A = 2 OR A = 1)"},
	}
	for _, p := range pairs {
		qa := mustParseQ(t, "SELECT count(*) FROM t WHERE "+p[0])
		qb := mustParseQ(t, "SELECT count(*) FROM t WHERE "+p[1])
		if Fingerprint(qa) != Fingerprint(qb) {
			t.Fatalf("pair %q / %q should share a fingerprint", p[0], p[1])
		}
		featurizers := map[string]func(sqlparse.Expr) ([]float64, error){
			"complex": complx.Featurize,
		}
		if sqlparse.IsConjunctive(qa.Where) {
			featurizers["conjunctive"] = conj.Featurize
		}
		for name, featurize := range featurizers {
			va, errA := featurize(qa.Where)
			vb, errB := featurize(qb.Where)
			if errA != nil || errB != nil {
				t.Fatalf("%s featurize %q/%q: %v / %v", name, p[0], p[1], errA, errB)
			}
			vecEq(t, va, vb, name+" vectors for fingerprint-equal queries")
		}
	}
}

func TestFingerprintCloneStable(t *testing.T) {
	q := mustParseQ(t, "SELECT count(*) FROM a, b WHERE a.id = b.a_id AND (a.x = 1 OR a.x = 2) AND b.s = 'it''s'")
	if Fingerprint(q) != Fingerprint(q.Clone()) {
		t.Fatal("fingerprint not stable under Clone")
	}
	// Fingerprinting must not mutate the query (it is shared with the
	// batcher and the feedback path).
	before := q.String()
	_ = Fingerprint(q)
	if q.String() != before {
		t.Fatalf("Fingerprint mutated the query: %q -> %q", before, q.String())
	}
}
