package core

import (
	"math/rand"
	"testing"

	"qfe/internal/table"
)

// adaptiveTestTable builds a table with one wide, one medium, and one binary
// attribute so the budget split is observable.
func adaptiveTestTable() *table.Table {
	rng := rand.New(rand.NewSource(1))
	n := 2000
	wide := make([]int64, n)
	medium := make([]int64, n)
	binary := make([]int64, n)
	for i := 0; i < n; i++ {
		wide[i] = int64(rng.Intn(5000))
		medium[i] = int64(rng.Intn(40))
		binary[i] = int64(rng.Intn(2))
	}
	t := table.New("t")
	t.MustAddColumn(table.NewColumn("wide", wide))
	t.MustAddColumn(table.NewColumn("medium", medium))
	t.MustAddColumn(table.NewColumn("bin", binary))
	return t
}

func TestAdaptiveMetaAllocatesByDistinct(t *testing.T) {
	tbl := adaptiveTestTable()
	m := NewTableMetaAdaptive(tbl, 96, 2)
	wide, _ := m.Attr("wide")
	medium, _ := m.Attr("medium")
	bin, _ := m.Attr("bin")

	if wide.NEntries <= medium.NEntries {
		t.Errorf("wide (%d entries) should get more than medium (%d)", wide.NEntries, medium.NEntries)
	}
	// Binary attributes are capped at their domain size.
	if bin.NEntries != 2 {
		t.Errorf("bin.NEntries = %d, want 2", bin.NEntries)
	}
	// Every attribute respects the minimum and its domain cap.
	for _, a := range m.Attrs {
		if a.NEntries < 2 && a.DomainSize() >= 2 {
			t.Errorf("%s got %d entries, below the minimum", a.Name, a.NEntries)
		}
		if int64(a.NEntries) > a.DomainSize() {
			t.Errorf("%s got %d entries for domain %d", a.Name, a.NEntries, a.DomainSize())
		}
	}
}

func TestAdaptiveMetaUsableByFeaturizers(t *testing.T) {
	tbl := adaptiveTestTable()
	m := NewTableMetaAdaptive(tbl, 64, 2)
	opts := Options{MaxEntriesPerAttr: 64, AttrSel: true}
	f := NewConjunctive(m, opts)
	vec, err := f.Featurize(wherePart(t, "wide >= 100 AND wide <= 2000 AND bin = 1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != f.Dim() {
		t.Fatalf("vector length %d != Dim %d", len(vec), f.Dim())
	}
	// The decoded structure must still bracket the truth.
	decoded, err := DecodePartitioned(m, opts, vec)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := CountDecodedBounds(tbl, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if lo > hi {
		t.Fatalf("bounds inverted: [%d, %d]", lo, hi)
	}
}

func TestAdaptiveMetaMinimumFloor(t *testing.T) {
	tbl := adaptiveTestTable()
	// A budget far below the per-attribute minimum must still floor at
	// minEntries (clamped by domain size).
	m := NewTableMetaAdaptive(tbl, 3, 4)
	for _, a := range m.Attrs {
		want := int64(4)
		if d := a.DomainSize(); d < want {
			want = d
		}
		if int64(a.NEntries) != want {
			t.Errorf("%s got %d entries, want %d", a.Name, a.NEntries, want)
		}
	}
}
