package core

import (
	"math"
	"math/rand"
	"testing"

	"qfe/internal/sqlparse"
)

// Differential coverage for the FeaturizeInto fast path: for every QFT, on
// randomized expressions and dirty reused buffers, the fixed-offset writer
// must reproduce the append-based Featurize byte for byte — the bit-identity
// contract the pooled estimator buffers rely on.

// poison fills dst with NaN so any entry FeaturizeInto fails to overwrite is
// caught by the comparison.
func poison(dst []float64) {
	for i := range dst {
		dst[i] = math.NaN()
	}
}

func sameVec(t *testing.T, trial int, name string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s trial %d: length %d vs %d", name, trial, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s trial %d: entry %d = %v, want %v", name, trial, i, got[i], want[i])
		}
	}
}

// TestFeaturizeIntoMatchesFeaturize runs every QFT (with and without the
// selectivity entries, with and without frequency weights) over randomized
// conjunctions, comparing both paths bit for bit on a single reused buffer.
func TestFeaturizeIntoMatchesFeaturize(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	tbl := randTable(rng, 300)
	for _, attrSel := range []bool{false, true} {
		for _, weighted := range []bool{false, true} {
			var meta *TableMeta
			if weighted {
				meta = NewTableMetaWeighted(tbl, 16)
			} else {
				meta = NewTableMeta(tbl, 16)
			}
			opts := Options{MaxEntriesPerAttr: 16, AttrSel: attrSel}
			for _, name := range QFTNames() {
				f, err := New(name, meta, opts)
				if err != nil {
					t.Fatal(err)
				}
				dst := make([]float64, f.Dim())
				for trial := 0; trial < 400; trial++ {
					expr := randConjunction(rng, meta, 5)
					want, err := f.Featurize(expr)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					poison(dst)
					if err := f.FeaturizeInto(dst, expr); err != nil {
						t.Fatalf("%s: FeaturizeInto: %v", name, err)
					}
					sameVec(t, trial, name, want, dst)
				}
				// The no-predicate encoding must match too.
				want, err := f.Featurize(nil)
				if err != nil {
					t.Fatalf("%s: nil expr: %v", name, err)
				}
				poison(dst)
				if err := f.FeaturizeInto(dst, nil); err != nil {
					t.Fatalf("%s: FeaturizeInto nil expr: %v", name, err)
				}
				sameVec(t, -1, name+"/nil", want, dst)
			}
		}
	}
}

// TestFeaturizeIntoMatchesFeaturizeMixed exercises Limited Disjunction
// Encoding on mixed queries (Definition 3.3), where the shared scratch
// buffer crosses disjuncts and attributes.
func TestFeaturizeIntoMatchesFeaturizeMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(5353))
	tbl := randTable(rng, 300)
	for _, attrSel := range []bool{false, true} {
		meta := NewTableMeta(tbl, 16)
		f := NewComplex(meta, Options{MaxEntriesPerAttr: 16, AttrSel: attrSel})
		dst := make([]float64, f.Dim())
		for trial := 0; trial < 400; trial++ {
			expr := randMixed(rng, meta)
			want, err := f.Featurize(expr)
			if err != nil {
				t.Fatal(err)
			}
			poison(dst)
			if err := f.FeaturizeInto(dst, expr); err != nil {
				t.Fatal(err)
			}
			sameVec(t, trial, "complex/mixed", want, dst)
		}
	}
}

// TestFeaturizeIntoRepeatedAttrsSimple pins the map-free dedupe of the
// Simple fast path against the map-based reference on expressions that
// repeat attributes (first predicate wins).
func TestFeaturizeIntoRepeatedAttrsSimple(t *testing.T) {
	rng := rand.New(rand.NewSource(6464))
	tbl := randTable(rng, 100)
	meta := NewTableMeta(tbl, 16)
	f := NewSimple(meta)
	dst := make([]float64, f.Dim())
	for trial := 0; trial < 500; trial++ {
		// High predicate count over 3 attributes guarantees repeats.
		expr := randConjunction(rng, meta, 8)
		want, err := f.Featurize(expr)
		if err != nil {
			t.Fatal(err)
		}
		poison(dst)
		if err := f.FeaturizeInto(dst, expr); err != nil {
			t.Fatal(err)
		}
		sameVec(t, trial, "simple/repeat", want, dst)
	}
}

// TestFeaturizeIntoGroupByWrapper checks the WithGroupBy adapter: base block
// plus zeroed GROUP BY tail.
func TestFeaturizeIntoGroupByWrapper(t *testing.T) {
	rng := rand.New(rand.NewSource(7575))
	tbl := randTable(rng, 100)
	meta := NewTableMeta(tbl, 8)
	w := &WithGroupBy{Base: NewConjunctive(meta, Options{MaxEntriesPerAttr: 8, AttrSel: true}), Meta: meta}
	dst := make([]float64, w.Dim())
	for trial := 0; trial < 200; trial++ {
		expr := randConjunction(rng, meta, 4)
		want, err := w.Featurize(expr)
		if err != nil {
			t.Fatal(err)
		}
		poison(dst)
		if err := w.FeaturizeInto(dst, expr); err != nil {
			t.Fatal(err)
		}
		sameVec(t, trial, "groupby", want, dst)
	}
}

// TestFeaturizeIntoGlobal checks the multi-table adapter: per-table blocks
// at schema-order offsets, absent tables zeroed, bit-vector tail in place.
func TestFeaturizeIntoGlobal(t *testing.T) {
	schema, metas := twoTableSchema()
	for _, qft := range QFTNames() {
		g, err := NewGlobalFeaturizer(schema, metas, qft, Options{MaxEntriesPerAttr: 8, AttrSel: true})
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, g.Dim())
		for _, sql := range []string{
			"SELECT count(*) FROM title, cast_info WHERE title.id = cast_info.movie_id AND title.year >= 2000 AND cast_info.role_id = 1",
			"SELECT count(*) FROM title, cast_info WHERE title.id = cast_info.movie_id AND title.year >= 2000",
			"SELECT count(*) FROM title WHERE year < 1950",
			"SELECT count(*) FROM cast_info WHERE role_id = 3 AND movie_id > 40",
		} {
			q := sqlparse.MustParse(sql)
			want, err := g.Featurize(q)
			if err != nil {
				t.Fatalf("%s: %v", qft, err)
			}
			poison(dst)
			if err := g.FeaturizeInto(dst, q); err != nil {
				t.Fatalf("%s: %v", qft, err)
			}
			sameVec(t, 0, qft+"/global:"+sql, want, dst)
		}
	}
}

// TestFeaturizeIntoErrors: both paths must agree on rejection, and a
// wrong-length destination is refused outright.
func TestFeaturizeIntoErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8686))
	tbl := randTable(rng, 50)
	meta := NewTableMeta(tbl, 8)
	opts := Options{MaxEntriesPerAttr: 8, AttrSel: true}
	disj := sqlparse.NewOr(
		&sqlparse.Pred{Attr: "a", Op: sqlparse.OpEq, Val: 1},
		&sqlparse.Pred{Attr: "b", Op: sqlparse.OpEq, Val: 2},
	)
	unknown := &sqlparse.Pred{Attr: "nope", Op: sqlparse.OpEq, Val: 1}
	for _, name := range QFTNames() {
		f, err := New(name, meta, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.FeaturizeInto(make([]float64, f.Dim()+1), nil); err == nil {
			t.Errorf("%s: oversized destination accepted", name)
		}
		for _, bad := range []sqlparse.Expr{disj, unknown} {
			_, refErr := f.Featurize(bad)
			intoErr := f.FeaturizeInto(make([]float64, f.Dim()), bad)
			if (refErr == nil) != (intoErr == nil) {
				t.Errorf("%s: Featurize err %v but FeaturizeInto err %v", name, refErr, intoErr)
			}
		}
	}
}
