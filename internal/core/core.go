// Package core implements the paper's primary contribution: query
// featurization techniques (QFTs) that encode the selection predicates of a
// COUNT(*) query into a fixed-length numerical feature vector for ML-based
// cardinality estimation.
//
// Four QFTs are provided, under the paper's abbreviations (Section 5):
//
//   - Singular Predicate Encoding ("simple", Section 2.1.1) — the
//     established baseline: 4 entries per attribute (operator one-hot plus
//     normalized literal); at most one predicate per attribute survives.
//   - Range Predicate Encoding ("range", Section 3.1) — every point or range
//     predicate is rewritten to a closed, normalized range [lo, hi]; one
//     range per attribute.
//   - Universal Conjunction Encoding ("conjunctive", Section 3.2,
//     Algorithm 1) — the attribute domain is partitioned into up to n
//     buckets; each bucket entry is 1 (all values qualify), ½ (some
//     qualify), or 0 (none qualify). Handles arbitrarily many conjunctive
//     predicates per attribute and converges to a lossless featurization as
//     n grows (Lemma 3.2).
//   - Limited Disjunction Encoding ("complex", Section 3.3, Algorithm 2) —
//     generalizes Universal Conjunction Encoding to mixed queries
//     (Definition 3.3): each per-attribute compound predicate is split into
//     its disjuncts, each disjunct featurized with Algorithm 1, and the
//     per-disjunct vectors merged by entry-wise max.
//
// All QFTs are model-independent: they emit plain []float64 vectors consumed
// unchanged by the gradient-boosting, feed-forward, and MSCN models in
// internal/ml. The package also provides the join adapters of
// Sections 2.1.2 and 4.2 (global-model table bit-vectors and MSCN predicate
// sets), the lossless-featurization decoder used to verify Definition 3.1
// and Lemma 3.2 in tests, and the Section 6 extensions (GROUP BY vectors,
// string-prefix featurization via dictionary order).
package core

import (
	"fmt"
	"math"
	"strings"

	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// AttrMeta is the per-attribute metadata a QFT needs: the attribute's name
// and integer domain bounds. NEntries is the number of feature-vector
// entries assigned to the attribute by the partition-based QFTs
// (n_A = min(n, max(A)-min(A)+1), Section 3.2).
type AttrMeta struct {
	Name     string
	Min, Max int64
	// NEntries is n_A; fixed when the TableMeta is built.
	NEntries int
	// Boundaries, when non-nil, defines data-driven partitions instead of
	// Algorithm 1's uniform ones (the Section 3.2 histogram extension):
	// entry k is the inclusive upper value bound of partition k, the last
	// partition's bound (Max) being implied, so len(Boundaries) ==
	// NEntries-1. Boundaries are strictly ascending and lie in [Min, Max).
	Boundaries []int64
	// Weights, when non-nil (len == NEntries), holds each partition's
	// fraction of the table's rows. It upgrades the appended per-attribute
	// selectivity estimate from the paper's uniformity assumption (gray
	// lines of Algorithm 1) to a frequency-weighted estimate:
	// sel = Σ_b Weights[b] · entry_b. Populated by NewTableMetaWeighted.
	Weights []float64
}

// DomainSize returns max-min+1, the number of distinct representable values.
func (a AttrMeta) DomainSize() int64 { return a.Max - a.Min + 1 }

// Exact reports whether each feature-vector entry corresponds to exactly one
// distinct value, the small-domain case in which Algorithm 1 emits only 0/1
// entries (end of Section 3.2).
func (a AttrMeta) Exact() bool { return int64(a.NEntries) == a.DomainSize() }

// BucketOf returns the zero-based feature-vector index of value val. For
// uniform partitions this is floor((val-min) / (max-min+1) * n_A), the
// index formula of Algorithm 1, line 4; with explicit Boundaries the index
// is found by binary search. Values outside the domain yield out-of-range
// indices (negative or >= NEntries); callers handle clamping per operator
// semantics.
func (a AttrMeta) BucketOf(val int64) int {
	if a.Boundaries == nil {
		return int((val - a.Min) * int64(a.NEntries) / a.DomainSize())
	}
	if val < a.Min {
		return -1
	}
	if val > a.Max {
		return a.NEntries
	}
	// First partition whose inclusive upper bound admits val.
	lo, hi := 0, len(a.Boundaries)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.Boundaries[mid] >= val {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// BucketRange returns the closed value interval [lo, hi] that bucket idx
// represents. It is the inverse of BucketOf and drives the lossless decoder.
func (a AttrMeta) BucketRange(idx int) (lo, hi int64) {
	if a.Boundaries != nil {
		lo = a.Min
		if idx > 0 {
			lo = a.Boundaries[idx-1] + 1
		}
		hi = a.Max
		if idx < len(a.Boundaries) {
			hi = a.Boundaries[idx]
		}
		return lo, hi
	}
	d := a.DomainSize()
	n := int64(a.NEntries)
	lo = a.Min + ceilDiv(int64(idx)*d, n)
	hi = a.Min + ceilDiv(int64(idx+1)*d, n) - 1
	if hi > a.Max {
		hi = a.Max
	}
	return lo, hi
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 {
		q++
	}
	return q
}

// Normalize maps val into [0, 1] relative to the attribute domain, the
// literal encoding used by Singular Predicate Encoding and Range Predicate
// Encoding (Section 2.1.1). Out-of-domain values are clamped.
func (a AttrMeta) Normalize(val int64) float64 {
	if a.Max == a.Min {
		return 0
	}
	x := float64(val-a.Min) / float64(a.Max-a.Min)
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// TableMeta holds the featurization metadata for one table (or one
// sub-schema side, when attribute names are qualified). It is the immutable
// context shared by all QFTs.
type TableMeta struct {
	Name  string
	Attrs []AttrMeta
	index map[string]int
}

// Options configures QFT construction.
type Options struct {
	// MaxEntriesPerAttr is n, the maximum number of partitions per
	// attribute for Universal Conjunction Encoding and Limited Disjunction
	// Encoding (Section 3.2). The paper evaluates n in {8, 16, 32, 64, 256}
	// and finds 32 a reasonable heuristic; 64 is the evaluation default.
	MaxEntriesPerAttr int
	// AttrSel appends the per-attribute selectivity estimate (the gray
	// lines of Algorithm 1) to each per-attribute vector. Table 3 studies
	// its effect.
	AttrSel bool
}

// DefaultOptions mirrors the paper's evaluation defaults: 64 per-attribute
// entries with per-attribute selectivity estimates appended.
func DefaultOptions() Options {
	return Options{MaxEntriesPerAttr: 64, AttrSel: true}
}

// Normalized fills unset fields with the paper's defaults: a zero
// MaxEntriesPerAttr means 64, not one partition per attribute. Estimator
// constructors call this so the zero value of Options is usable.
func (o Options) Normalized() Options {
	if o.MaxEntriesPerAttr <= 0 {
		o.MaxEntriesPerAttr = 64
	}
	return o
}

// NewTableMeta derives featurization metadata from a materialized table,
// reading each column's min/max statistics. n is the maximum number of
// per-attribute entries (Options.MaxEntriesPerAttr).
func NewTableMeta(t *table.Table, n int) *TableMeta {
	if n < 1 {
		n = 1
	}
	m := &TableMeta{Name: t.Name, index: make(map[string]int, t.NumCols())}
	for _, col := range t.Columns() {
		a := AttrMeta{Name: col.Name, Min: col.Min(), Max: col.Max()}
		a.NEntries = entriesFor(a, n)
		m.index[a.Name] = len(m.Attrs)
		m.Attrs = append(m.Attrs, a)
	}
	return m
}

// NewTableMetaWeighted derives featurization metadata like NewTableMeta and
// additionally records each partition's row-frequency share, upgrading the
// appended selectivity estimate from the uniformity assumption to a
// frequency-weighted one (see AttrMeta.Weights). The partitions themselves
// stay uniform (Algorithm 1); combine with NewTableMetaPartitioned by
// setting Weights on its result via AttachWeights.
func NewTableMetaWeighted(t *table.Table, n int) *TableMeta {
	m := NewTableMeta(t, n)
	AttachWeights(m, t)
	return m
}

// AttachWeights computes and stores per-partition row-frequency shares on
// every attribute of meta from the table's data. The meta's attribute names
// must match t's columns.
func AttachWeights(meta *TableMeta, t *table.Table) {
	rows := float64(t.NumRows())
	for i := range meta.Attrs {
		a := &meta.Attrs[i]
		col := t.Column(a.Name)
		if col == nil || rows == 0 {
			continue
		}
		w := make([]float64, a.NEntries)
		for _, v := range col.Vals {
			idx := a.BucketOf(v)
			if idx >= 0 && idx < a.NEntries {
				w[idx]++
			}
		}
		for b := range w {
			w[b] /= rows
		}
		a.Weights = w
	}
}

// Partitioner produces the inclusive upper boundaries (all but the last)
// for partitioning one column's domain into at most n parts. It is the
// plug-in point for the histogram-based partitioning schemes of
// internal/histogram (the Section 3.2 extension); returning fewer than n-1
// boundaries simply yields fewer partitions.
type Partitioner func(col *table.Column, n int) ([]int64, error)

// NewTableMetaPartitioned derives featurization metadata whose partitions
// come from the given Partitioner instead of Algorithm 1's uniform split —
// e.g. equi-depth or v-optimal boundaries from internal/histogram. The
// small-domain case (domain size <= n) keeps the exact one-value-per-entry
// partitioning regardless of the partitioner.
func NewTableMetaPartitioned(t *table.Table, n int, part Partitioner) (*TableMeta, error) {
	if n < 1 {
		n = 1
	}
	m := &TableMeta{Name: t.Name, index: make(map[string]int, t.NumCols())}
	for _, col := range t.Columns() {
		a := AttrMeta{Name: col.Name, Min: col.Min(), Max: col.Max()}
		if d := a.DomainSize(); d <= int64(n) {
			a.NEntries = int(d)
		} else {
			bounds, err := part(col, n)
			if err != nil {
				return nil, fmt.Errorf("core: partition column %q: %w", col.Name, err)
			}
			if err := validBoundaries(a, bounds); err != nil {
				return nil, fmt.Errorf("core: column %q: %w", col.Name, err)
			}
			a.Boundaries = bounds
			a.NEntries = len(bounds) + 1
		}
		m.index[a.Name] = len(m.Attrs)
		m.Attrs = append(m.Attrs, a)
	}
	return m, nil
}

// validBoundaries checks the Boundaries contract: strictly ascending values
// in [Min, Max).
func validBoundaries(a AttrMeta, bounds []int64) error {
	prev := a.Min - 1
	for i, b := range bounds {
		if b <= prev {
			return fmt.Errorf("boundary %d (%d) not ascending", i, b)
		}
		if b < a.Min || b >= a.Max {
			return fmt.Errorf("boundary %d (%d) outside [%d, %d)", i, b, a.Min, a.Max)
		}
		prev = b
	}
	return nil
}

// NewTableMetaAdaptive derives featurization metadata with an
// attribute-specific number of partitions — the extension Section 3.2
// sketches ("it is easy to extend our approach to choose an
// attribute-specific n"). A total per-table entry budget is distributed over
// the attributes proportionally to the logarithm of their distinct counts:
// attributes with more distinct values (where uniform partitions lose more
// information) receive more entries, while binary indicators get exactly
// their domain size. Every attribute receives at least minEntries (clamped
// to its domain size).
func NewTableMetaAdaptive(t *table.Table, budget, minEntries int) *TableMeta {
	if minEntries < 1 {
		minEntries = 1
	}
	cols := t.Columns()
	weights := make([]float64, len(cols))
	var totalWeight float64
	for i, col := range cols {
		// log2(distinct)+1 grows slowly, so wide attributes gain entries
		// without starving the rest.
		w := math.Log2(float64(col.Distinct())) + 1
		if w < 1 {
			w = 1
		}
		weights[i] = w
		totalWeight += w
	}
	m := &TableMeta{Name: t.Name, index: make(map[string]int, len(cols))}
	for i, col := range cols {
		a := AttrMeta{Name: col.Name, Min: col.Min(), Max: col.Max()}
		share := int(float64(budget) * weights[i] / totalWeight)
		if share < minEntries {
			share = minEntries
		}
		a.NEntries = entriesFor(a, share)
		m.index[a.Name] = len(m.Attrs)
		m.Attrs = append(m.Attrs, a)
	}
	return m
}

// NewTableMetaFromAttrs builds metadata from explicit attribute bounds; used
// when the raw data is not materialized (e.g. metadata shipped with a
// trained model).
func NewTableMetaFromAttrs(name string, attrs []AttrMeta, n int) *TableMeta {
	if n < 1 {
		n = 1
	}
	m := &TableMeta{Name: name, index: make(map[string]int, len(attrs))}
	for _, a := range attrs {
		a.NEntries = entriesFor(a, n)
		m.index[a.Name] = len(m.Attrs)
		m.Attrs = append(m.Attrs, a)
	}
	return m
}

func entriesFor(a AttrMeta, n int) int {
	if d := a.DomainSize(); d < int64(n) {
		return int(d)
	}
	return n
}

// MetaSpec is the serializable form of a TableMeta: everything a featurizer
// needs, shippable next to a trained model (the data itself is not
// required at estimation time).
type MetaSpec struct {
	Name  string     `json:"name"`
	Attrs []AttrMeta `json:"attrs"`
}

// Spec exports the meta for serialization.
func (m *TableMeta) Spec() MetaSpec {
	return MetaSpec{Name: m.Name, Attrs: append([]AttrMeta(nil), m.Attrs...)}
}

// NewTableMetaFromSpec restores a TableMeta from its serialized form; the
// per-attribute entry counts and boundaries are trusted as stored.
func NewTableMetaFromSpec(spec MetaSpec) (*TableMeta, error) {
	m := &TableMeta{Name: spec.Name, index: make(map[string]int, len(spec.Attrs))}
	for _, a := range spec.Attrs {
		if a.NEntries < 1 {
			return nil, fmt.Errorf("core: attribute %q has %d entries", a.Name, a.NEntries)
		}
		if a.Boundaries != nil {
			if len(a.Boundaries) != a.NEntries-1 {
				return nil, fmt.Errorf("core: attribute %q has %d boundaries for %d entries", a.Name, len(a.Boundaries), a.NEntries)
			}
			if err := validBoundaries(a, a.Boundaries); err != nil {
				return nil, fmt.Errorf("core: attribute %q: %w", a.Name, err)
			}
		}
		if a.Weights != nil && len(a.Weights) != a.NEntries {
			return nil, fmt.Errorf("core: attribute %q has %d weights for %d entries", a.Name, len(a.Weights), a.NEntries)
		}
		if _, dup := m.index[a.Name]; dup {
			return nil, fmt.Errorf("core: duplicate attribute %q", a.Name)
		}
		m.index[a.Name] = len(m.Attrs)
		m.Attrs = append(m.Attrs, a)
	}
	return m, nil
}

// Attr returns the metadata for the named attribute. Qualified names
// ("table.column") match either exactly or, when the qualifier equals the
// meta's table name, by their column part.
func (m *TableMeta) Attr(name string) (AttrMeta, bool) {
	if i, ok := m.index[name]; ok {
		return m.Attrs[i], true
	}
	if dot := strings.IndexByte(name, '.'); dot >= 0 && name[:dot] == m.Name {
		if i, ok := m.index[name[dot+1:]]; ok {
			return m.Attrs[i], true
		}
	}
	return AttrMeta{}, false
}

// AttrIndex returns the position of the named attribute in the meta's
// attribute order, or -1.
func (m *TableMeta) AttrIndex(name string) int {
	if i, ok := m.index[name]; ok {
		return i
	}
	if dot := strings.IndexByte(name, '.'); dot >= 0 && name[:dot] == m.Name {
		if i, ok := m.index[name[dot+1:]]; ok {
			return i
		}
	}
	return -1
}

// NumAttrs returns the number of attributes covered by the meta.
func (m *TableMeta) NumAttrs() int { return len(m.Attrs) }

// Featurizer encodes the selection expression of a query over one table (or
// sub-schema) into a fixed-length feature vector. Implementations are
// stateless and safe for concurrent use.
type Featurizer interface {
	// Name returns the paper's abbreviation for the QFT ("simple", "range",
	// "conjunctive", "complex").
	Name() string
	// Dim returns the feature-vector length. Every Featurize call returns a
	// vector of exactly this length.
	Dim() int
	// Featurize encodes expr. A nil expr (no selection predicates) encodes
	// the match-everything query. Implementations return an error when expr
	// is outside the QFT's supported query class (e.g. disjunctions under
	// Universal Conjunction Encoding).
	Featurize(expr sqlparse.Expr) ([]float64, error)
	// FeaturizeInto encodes expr into dst, which must have length Dim(); dst
	// is fully overwritten (no caller-side zeroing needed). The written
	// vector is bit-identical to Featurize's — implementations write each
	// attribute's block at its fixed offset instead of concatenating appends,
	// which lets callers reuse one buffer across queries. On error dst's
	// contents are unspecified.
	FeaturizeInto(dst []float64, expr sqlparse.Expr) error
}

// checkDst verifies the FeaturizeInto contract on the destination length.
func checkDst(qft string, dst []float64, dim int) error {
	if len(dst) != dim {
		return fmt.Errorf("core/%s: destination length %d, want %d", qft, len(dst), dim)
	}
	return nil
}

// New constructs the named QFT over meta. Valid names are the paper's
// abbreviations: "simple", "range", "conjunctive", "complex".
func New(name string, meta *TableMeta, opts Options) (Featurizer, error) {
	switch name {
	case "simple":
		return NewSimple(meta), nil
	case "range":
		return NewRange(meta), nil
	case "conjunctive":
		return NewConjunctive(meta, opts), nil
	case "complex":
		return NewComplex(meta, opts), nil
	}
	return nil, fmt.Errorf("core: unknown QFT %q (want simple, range, conjunctive, or complex)", name)
}

// QFTNames lists the QFT names accepted by New, in the paper's order.
func QFTNames() []string { return []string{"simple", "range", "conjunctive", "complex"} }
