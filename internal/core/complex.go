package core

import (
	"fmt"

	"qfe/internal/sqlparse"
)

// Complex is Limited Disjunction Encoding (Section 3.3, Algorithm 2) — to
// the paper's knowledge the first QFT designed for queries containing both
// conjunctions and disjunctions. It supports the mixed-query class of
// Definition 3.3: a conjunction of per-attribute compound predicates, where
// each compound predicate is an arbitrary AND/OR combination of simple
// predicates over a single attribute.
//
// Each compound predicate is normalized into a disjunction of conjunctions
// (DNF); every conjunction is featurized with Universal Conjunction
// Encoding's per-attribute routine (Algorithm 1), and the per-conjunction
// vectors are merged by entry-wise max — additional disjuncts can only make
// a query less selective. Since the per-conjunction vectors converge to
// lossless featurizations (Lemma 3.2) and the max-merge mirrors OR
// semantics, Limited Disjunction Encoding converges to a lossless
// featurization of mixed queries.
//
// On purely conjunctive input the encoding degenerates to Universal
// Conjunction Encoding and produces the identical vector (the reason
// Table 1 omits the "complex" rows for JOB-light).
type Complex struct {
	meta *TableMeta
	opts Options
	// offsets mirrors Conjunctive's fixed per-attribute layout; maxN is the
	// widest per-attribute partition vector, sizing FeaturizeInto's scratch.
	offsets []int
	maxN    int
}

// NewComplex returns Limited Disjunction Encoding over meta.
func NewComplex(meta *TableMeta, opts Options) *Complex {
	c := &Complex{meta: meta, opts: opts, offsets: attrOffsets(meta, opts)}
	for _, a := range meta.Attrs {
		if a.NEntries > c.maxN {
			c.maxN = a.NEntries
		}
	}
	return c
}

// Name implements Featurizer.
func (c *Complex) Name() string { return "complex" }

// Dim implements Featurizer; the layout matches Universal Conjunction
// Encoding exactly.
func (c *Complex) Dim() int { return partitionedDim(c.meta, c.opts) }

// Featurize implements Featurizer (Algorithm 2). expr must be a mixed query
// per Definition 3.3; anything wider (a disjunction spanning attributes)
// returns an error.
func (c *Complex) Featurize(expr sqlparse.Expr) ([]float64, error) {
	compounds, err := sqlparse.CompoundPredicates(expr)
	if err != nil {
		return nil, fmt.Errorf("core/complex: %w", err)
	}
	byAttr := make(map[int]sqlparse.Expr, len(compounds))
	for _, cp := range compounds {
		ai := c.meta.AttrIndex(cp.Attr)
		if ai < 0 {
			return nil, fmt.Errorf("core/complex: unknown attribute %q", cp.Attr)
		}
		byAttr[ai] = cp.Expr
	}

	vec := make([]float64, 0, c.Dim())
	for ai, a := range c.meta.Attrs {
		cpExpr, has := byAttr[ai]
		if !has {
			// No compound predicate on this attribute: the all-one vector,
			// full selectivity.
			av := make([]float64, a.NEntries)
			for i := range av {
				av[i] = 1
			}
			vec = append(vec, av...)
			if c.opts.AttrSel {
				vec = append(vec, 1)
			}
			continue
		}
		av, sel, err := FeaturizeAttrCompound(a, cpExpr)
		if err != nil {
			return nil, err
		}
		vec = append(vec, av...)
		if c.opts.AttrSel {
			vec = append(vec, sel)
		}
	}
	return vec, nil
}

// FeaturizeInto implements Featurizer (Algorithm 2) at fixed per-attribute
// offsets. One scratch vector is shared by every disjunct of every compound
// predicate (each disjunct featurization fully overwrites it), so the only
// per-call garbage left is the DNF normalization itself.
func (c *Complex) FeaturizeInto(dst []float64, expr sqlparse.Expr) error {
	if err := checkDst("complex", dst, c.Dim()); err != nil {
		return err
	}
	compounds, err := sqlparse.CompoundPredicates(expr)
	if err != nil {
		return fmt.Errorf("core/complex: %w", err)
	}
	byAttr := make(map[int]sqlparse.Expr, len(compounds))
	for _, cp := range compounds {
		ai := c.meta.AttrIndex(cp.Attr)
		if ai < 0 {
			return fmt.Errorf("core/complex: unknown attribute %q", cp.Attr)
		}
		byAttr[ai] = cp.Expr
	}

	var scratch []float64
	for ai, a := range c.meta.Attrs {
		off := c.offsets[ai]
		block := dst[off : off+a.NEntries]
		cpExpr, has := byAttr[ai]
		if !has {
			for i := range block {
				block[i] = 1
			}
			if c.opts.AttrSel {
				dst[off+a.NEntries] = 1
			}
			continue
		}
		if scratch == nil {
			scratch = make([]float64, c.maxN)
		}
		sel, err := FeaturizeAttrCompoundInto(a, cpExpr, block, scratch[:a.NEntries])
		if err != nil {
			return err
		}
		if c.opts.AttrSel {
			dst[off+a.NEntries] = sel
		}
	}
	return nil
}

// FeaturizeAttrCompound runs Algorithm 2 for one attribute: the compound
// predicate expr (all of whose simple predicates must reference attribute a)
// is converted to DNF, each disjunct is featurized with Algorithm 1, and the
// per-disjunct vectors are merged entry-wise by max.
//
// The merged selectivity estimate is the sum of the per-disjunct estimates
// clamped to 1 — an upper bound that is exact when the disjuncts cover
// disjoint value ranges, as they do in the paper's mixed workload.
func FeaturizeAttrCompound(a AttrMeta, expr sqlparse.Expr) ([]float64, float64, error) {
	merged := make([]float64, a.NEntries)
	sel, err := FeaturizeAttrCompoundInto(a, expr, merged, make([]float64, a.NEntries))
	if err != nil {
		return nil, 0, err
	}
	return merged, sel, nil
}

// FeaturizeAttrCompoundInto is FeaturizeAttrCompound merging into dst
// (length a.NEntries, fully overwritten). scratch (same length) holds each
// disjunct's Algorithm 1 vector before the max-merge; it may be reused
// across calls since every disjunct featurization fully overwrites it.
func FeaturizeAttrCompoundInto(a AttrMeta, expr sqlparse.Expr, dst, scratch []float64) (float64, error) {
	if len(dst) != a.NEntries || len(scratch) != a.NEntries {
		return 0, fmt.Errorf("core/complex: attribute %q: destination/scratch length %d/%d, want %d", a.Name, len(dst), len(scratch), a.NEntries)
	}
	dnf, err := sqlparse.ToDNF(expr)
	if err != nil {
		return 0, fmt.Errorf("core/complex: attribute %q: %w", a.Name, err)
	}
	for i := range dst {
		dst[i] = 0 // all-zero (Algorithm 2, line 3)
	}
	var mergedSel float64
	for _, conj := range dnf {
		for _, p := range conj {
			if got := p.Attr; got != a.Name && !qualifiedMatch(got, a.Name) {
				return 0, fmt.Errorf("core/complex: compound predicate mixes attributes %q and %q", a.Name, got)
			}
		}
		sel, err := FeaturizeAttrConjunctionInto(a, conj, scratch)
		if err != nil {
			return 0, err
		}
		for i, v := range scratch {
			if v > dst[i] {
				dst[i] = v
			}
		}
		mergedSel += sel
	}
	if mergedSel > 1 {
		mergedSel = 1
	}
	// With frequency weights attached, the merged vector itself gives a
	// sharper disjunction estimate than the clamped per-branch sum.
	if a.Weights != nil {
		mergedSel = weightedSel(a.Weights, dst)
	}
	return mergedSel, nil
}

// qualifiedMatch reports whether name is a table-qualified spelling whose
// column part equals attr.
func qualifiedMatch(name, attr string) bool {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:] == attr
		}
	}
	return false
}
