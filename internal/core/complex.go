package core

import (
	"fmt"

	"qfe/internal/sqlparse"
)

// Complex is Limited Disjunction Encoding (Section 3.3, Algorithm 2) — to
// the paper's knowledge the first QFT designed for queries containing both
// conjunctions and disjunctions. It supports the mixed-query class of
// Definition 3.3: a conjunction of per-attribute compound predicates, where
// each compound predicate is an arbitrary AND/OR combination of simple
// predicates over a single attribute.
//
// Each compound predicate is normalized into a disjunction of conjunctions
// (DNF); every conjunction is featurized with Universal Conjunction
// Encoding's per-attribute routine (Algorithm 1), and the per-conjunction
// vectors are merged by entry-wise max — additional disjuncts can only make
// a query less selective. Since the per-conjunction vectors converge to
// lossless featurizations (Lemma 3.2) and the max-merge mirrors OR
// semantics, Limited Disjunction Encoding converges to a lossless
// featurization of mixed queries.
//
// On purely conjunctive input the encoding degenerates to Universal
// Conjunction Encoding and produces the identical vector (the reason
// Table 1 omits the "complex" rows for JOB-light).
type Complex struct {
	meta *TableMeta
	opts Options
}

// NewComplex returns Limited Disjunction Encoding over meta.
func NewComplex(meta *TableMeta, opts Options) *Complex {
	return &Complex{meta: meta, opts: opts}
}

// Name implements Featurizer.
func (c *Complex) Name() string { return "complex" }

// Dim implements Featurizer; the layout matches Universal Conjunction
// Encoding exactly.
func (c *Complex) Dim() int { return partitionedDim(c.meta, c.opts) }

// Featurize implements Featurizer (Algorithm 2). expr must be a mixed query
// per Definition 3.3; anything wider (a disjunction spanning attributes)
// returns an error.
func (c *Complex) Featurize(expr sqlparse.Expr) ([]float64, error) {
	compounds, err := sqlparse.CompoundPredicates(expr)
	if err != nil {
		return nil, fmt.Errorf("core/complex: %w", err)
	}
	byAttr := make(map[int]sqlparse.Expr, len(compounds))
	for _, cp := range compounds {
		ai := c.meta.AttrIndex(cp.Attr)
		if ai < 0 {
			return nil, fmt.Errorf("core/complex: unknown attribute %q", cp.Attr)
		}
		byAttr[ai] = cp.Expr
	}

	vec := make([]float64, 0, c.Dim())
	for ai, a := range c.meta.Attrs {
		cpExpr, has := byAttr[ai]
		if !has {
			// No compound predicate on this attribute: the all-one vector,
			// full selectivity.
			av := make([]float64, a.NEntries)
			for i := range av {
				av[i] = 1
			}
			vec = append(vec, av...)
			if c.opts.AttrSel {
				vec = append(vec, 1)
			}
			continue
		}
		av, sel, err := FeaturizeAttrCompound(a, cpExpr)
		if err != nil {
			return nil, err
		}
		vec = append(vec, av...)
		if c.opts.AttrSel {
			vec = append(vec, sel)
		}
	}
	return vec, nil
}

// FeaturizeAttrCompound runs Algorithm 2 for one attribute: the compound
// predicate expr (all of whose simple predicates must reference attribute a)
// is converted to DNF, each disjunct is featurized with Algorithm 1, and the
// per-disjunct vectors are merged entry-wise by max.
//
// The merged selectivity estimate is the sum of the per-disjunct estimates
// clamped to 1 — an upper bound that is exact when the disjuncts cover
// disjoint value ranges, as they do in the paper's mixed workload.
func FeaturizeAttrCompound(a AttrMeta, expr sqlparse.Expr) ([]float64, float64, error) {
	dnf, err := sqlparse.ToDNF(expr)
	if err != nil {
		return nil, 0, fmt.Errorf("core/complex: attribute %q: %w", a.Name, err)
	}
	merged := make([]float64, a.NEntries) // all-zero (Algorithm 2, line 3)
	var mergedSel float64
	for _, conj := range dnf {
		for _, p := range conj {
			if got := p.Attr; got != a.Name && !qualifiedMatch(got, a.Name) {
				return nil, 0, fmt.Errorf("core/complex: compound predicate mixes attributes %q and %q", a.Name, got)
			}
		}
		f, sel, err := FeaturizeAttrConjunction(a, conj)
		if err != nil {
			return nil, 0, err
		}
		for i, v := range f {
			if v > merged[i] {
				merged[i] = v
			}
		}
		mergedSel += sel
	}
	if mergedSel > 1 {
		mergedSel = 1
	}
	// With frequency weights attached, the merged vector itself gives a
	// sharper disjunction estimate than the clamped per-branch sum.
	if a.Weights != nil {
		mergedSel = weightedSel(a.Weights, merged)
	}
	return merged, mergedSel, nil
}

// qualifiedMatch reports whether name is a table-qualified spelling whose
// column part equals attr.
func qualifiedMatch(name, attr string) bool {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:] == attr
		}
	}
	return false
}
