package core

import (
	"fmt"

	"qfe/internal/sqlparse"
)

// Range is Range Predicate Encoding (Section 3.1). It builds on the
// observation that every point or range predicate can be rewritten into a
// closed range: A = 5 becomes [5, 5], A <= 5 becomes [min(A), 5], and for
// integer attributes the strict A < 5 becomes [min(A), 4]. Each attribute
// contributes two entries, the [0,1]-normalized lower and upper bound of its
// range; an attribute without predicates contributes the full range [0, 1].
//
// The encoding is lossless for queries with up to one equality, open-range,
// or closed-range predicate per attribute. Several range predicates on one
// attribute still intersect to one representable closed range, but
// not-equal predicates cannot be represented and are dropped — the
// information loss behind the 99%-quantile spike at three predicates in
// Figure 3. Disjunctions are not supported.
type Range struct {
	meta *TableMeta
}

// NewRange returns Range Predicate Encoding over meta.
func NewRange(meta *TableMeta) *Range { return &Range{meta: meta} }

// Name implements Featurizer.
func (r *Range) Name() string { return "range" }

// Dim implements Featurizer: 2 entries (normalized lo, hi) per attribute.
func (r *Range) Dim() int { return 2 * r.meta.NumAttrs() }

// Featurize implements Featurizer. expr must be conjunctive.
func (r *Range) Featurize(expr sqlparse.Expr) ([]float64, error) {
	if !sqlparse.IsConjunctive(expr) {
		return nil, fmt.Errorf("core/range: disjunctions are not supported by Range Predicate Encoding")
	}
	perAttr := sqlparse.PredsPerAttr(expr)
	if err := checkKnownAttrs(r.meta, perAttr); err != nil {
		return nil, fmt.Errorf("core/range: %w", err)
	}
	vec := make([]float64, 0, r.Dim())
	for _, a := range r.meta.Attrs {
		lo, hi := FeaturizeAttrRange(a, predsFor(perAttr, r.meta, a))
		vec = append(vec, lo, hi)
	}
	return vec, nil
}

// FeaturizeInto implements Featurizer: attribute i owns dst[2*i : 2*i+2].
func (r *Range) FeaturizeInto(dst []float64, expr sqlparse.Expr) error {
	if err := checkDst("range", dst, r.Dim()); err != nil {
		return err
	}
	if !sqlparse.IsConjunctive(expr) {
		return fmt.Errorf("core/range: disjunctions are not supported by Range Predicate Encoding")
	}
	perAttr := sqlparse.PredsPerAttr(expr)
	if err := checkKnownAttrs(r.meta, perAttr); err != nil {
		return fmt.Errorf("core/range: %w", err)
	}
	for i, a := range r.meta.Attrs {
		lo, hi := FeaturizeAttrRange(a, predsFor(perAttr, r.meta, a))
		dst[2*i] = lo
		dst[2*i+1] = hi
	}
	return nil
}

// FeaturizeAttrRange intersects the conjunction of preds on attribute a into
// one closed range and returns its [0,1]-normalized bounds. Attributes
// without predicates yield the full range [0, 1]; an unsatisfiable
// intersection yields the inverted marker [1, 0] so the model can
// distinguish it from a point query. Not-equal predicates are dropped — the
// encoding's documented information loss.
func FeaturizeAttrRange(a AttrMeta, preds []*sqlparse.Pred) (lo, hi float64) {
	cl, ch := a.Min, a.Max
	for _, p := range preds {
		l, h, ok := closedRange(p.Op, p.Val)
		if !ok {
			continue // <>: not representable as a closed range — dropped
		}
		// Intersect with the range accumulated so far: further conjuncts
		// can only narrow the query.
		if l > cl {
			cl = l
		}
		if h < ch {
			ch = h
		}
	}
	if cl > ch {
		return 1, 0
	}
	return a.Normalize(cl), a.Normalize(ch)
}

// closedRange rewrites "op val" into the closed interval [lo, hi] of
// qualifying values, using integer-domain semantics for strict operators
// (Section 3.1). The third result is false for operators that have no
// closed-range equivalent (<>).
func closedRange(op sqlparse.CmpOp, val int64) (lo, hi int64, ok bool) {
	const (
		negInf = int64(-1) << 62
		posInf = int64(1) << 62
	)
	switch op {
	case sqlparse.OpEq:
		return val, val, true
	case sqlparse.OpLt:
		return negInf, val - 1, true
	case sqlparse.OpLe:
		return negInf, val, true
	case sqlparse.OpGt:
		return val + 1, posInf, true
	case sqlparse.OpGe:
		return val, posInf, true
	case sqlparse.OpNe:
		return 0, 0, false
	}
	return 0, 0, false
}
