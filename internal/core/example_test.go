package core_test

import (
	"fmt"

	"qfe/internal/core"
	"qfe/internal/sqlparse"
)

// ExampleConjunctive reproduces the paper's Section 3.2 featurization
// example: A < 7 AND 30 <= B <= 100 AND B <> 66 over attributes
// A in [-9, 50], B in [0, 115], C in {1, 2}, with n = 12.
func ExampleConjunctive() {
	meta := core.NewTableMetaFromAttrs("t", []core.AttrMeta{
		{Name: "A", Min: -9, Max: 50},
		{Name: "B", Min: 0, Max: 115},
		{Name: "C", Min: 1, Max: 2},
	}, 12)
	f := core.NewConjunctive(meta, core.Options{MaxEntriesPerAttr: 12, AttrSel: false})

	q := sqlparse.MustParse(
		"SELECT count(*) FROM t WHERE A < 7 AND B >= 30 AND B <= 100 AND B <> 66")
	vec, err := f.Featurize(q.Where)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("A:", vec[0:12])
	fmt.Println("B:", vec[12:24])
	fmt.Println("C:", vec[24:26])
	// Output:
	// A: [1 1 1 0.5 0 0 0 0 0 0 0 0]
	// B: [0 0 0 0.5 1 1 0.5 1 1 1 0.5 0]
	// C: [1 1]
}

// ExampleComplex featurizes a mixed query (Definition 3.3) with Limited
// Disjunction Encoding: each disjunct is featurized with Algorithm 1 and
// the per-attribute vectors merge by entry-wise max.
func ExampleComplex() {
	meta := core.NewTableMetaFromAttrs("t", []core.AttrMeta{
		{Name: "A", Min: -9, Max: 50},
	}, 12)
	f := core.NewComplex(meta, core.Options{MaxEntriesPerAttr: 12, AttrSel: false})

	q := sqlparse.MustParse(
		"SELECT count(*) FROM t WHERE A > -2 AND A <= 30 AND A <> 7 OR A >= 42")
	vec, err := f.Featurize(q.Where)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(vec)
	// Output:
	// [0 0.5 1 0.5 1 1 1 1 0 0 0.5 1]
}

// ExampleGroupByVector shows the Section 6 GROUP BY encoding: one bit per
// attribute, set for each grouping attribute.
func ExampleGroupByVector() {
	meta := core.NewTableMetaFromAttrs("t", []core.AttrMeta{
		{Name: "A1", Min: 0, Max: 9}, {Name: "A2", Min: 0, Max: 9},
		{Name: "A3", Min: 0, Max: 9}, {Name: "A4", Min: 0, Max: 9},
		{Name: "A5", Min: 0, Max: 9},
	}, 4)
	vec, _ := core.GroupByVector(meta, []string{"A2", "A4"})
	fmt.Println(vec)
	// Output:
	// [0 1 0 1 0]
}
