package core

import (
	"testing"

	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// paperMeta reproduces the running example of Sections 3.2 and 3.3: numeric
// attributes A, B, C with min(A)=-9, max(A)=50, min(B)=0, max(B)=115, and C
// containing only values in {1, 2}; n=12 maximum per-attribute entries.
func paperMeta() *TableMeta {
	return NewTableMetaFromAttrs("t", []AttrMeta{
		{Name: "A", Min: -9, Max: 50},
		{Name: "B", Min: 0, Max: 115},
		{Name: "C", Min: 1, Max: 2},
	}, 12)
}

func wherePart(t *testing.T, src string) sqlparse.Expr {
	t.Helper()
	q, err := sqlparse.Parse("SELECT count(*) FROM t WHERE " + src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q.Where
}

func vecEq(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d\n got  %v\n want %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d = %v, want %v\n got  %v\n want %v", label, i, got[i], want[i], got, want)
		}
	}
}

const h = 0.5 // ½ entry

func TestAttrMetaBuckets(t *testing.T) {
	a := AttrMeta{Name: "A", Min: -9, Max: 50, NEntries: 12}
	// The paper's example: 7 maps to the fourth entry (index 3), since
	// floor((7-(-9)) / (50-(-9)+1) * 12) = 3.
	if got := a.BucketOf(7); got != 3 {
		t.Errorf("BucketOf(7) = %d, want 3", got)
	}
	if got := a.BucketOf(-9); got != 0 {
		t.Errorf("BucketOf(min) = %d, want 0", got)
	}
	if got := a.BucketOf(50); got != 11 {
		t.Errorf("BucketOf(max) = %d, want 11", got)
	}
	// BucketRange is the inverse: every value's bucket must contain it.
	for v := a.Min; v <= a.Max; v++ {
		idx := a.BucketOf(v)
		lo, hi := a.BucketRange(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d not in BucketRange(%d) = [%d, %d]", v, idx, lo, hi)
		}
	}
	// Buckets must partition the domain: consecutive, no gaps or overlaps.
	prevHi := a.Min - 1
	for i := 0; i < a.NEntries; i++ {
		lo, hi := a.BucketRange(i)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d starts at %d, want %d", i, lo, prevHi+1)
		}
		if hi < lo {
			t.Fatalf("bucket %d is empty: [%d, %d]", i, lo, hi)
		}
		prevHi = hi
	}
	if prevHi != a.Max {
		t.Fatalf("buckets end at %d, want %d", prevHi, a.Max)
	}
}

func TestAttrMetaExactMode(t *testing.T) {
	c := AttrMeta{Name: "C", Min: 1, Max: 2, NEntries: 2}
	if !c.Exact() {
		t.Error("two-value domain with two entries must be exact")
	}
	a := AttrMeta{Name: "A", Min: -9, Max: 50, NEntries: 12}
	if a.Exact() {
		t.Error("60-value domain with 12 entries must not be exact")
	}
}

func TestNewTableMetaCapsEntries(t *testing.T) {
	tbl := table.New("t")
	tbl.MustAddColumn(table.NewColumn("big", []int64{0, 1000, 7}))
	tbl.MustAddColumn(table.NewColumn("small", []int64{1, 2, 1}))
	m := NewTableMeta(tbl, 64)
	big, _ := m.Attr("big")
	small, _ := m.Attr("small")
	if big.NEntries != 64 {
		t.Errorf("big.NEntries = %d, want 64", big.NEntries)
	}
	// n_A = min(n, max-min+1): the small domain gets one entry per value.
	if small.NEntries != 2 {
		t.Errorf("small.NEntries = %d, want 2", small.NEntries)
	}
}

func TestQualifiedAttrLookup(t *testing.T) {
	m := paperMeta()
	if _, ok := m.Attr("t.A"); !ok {
		t.Error("qualified lookup t.A failed")
	}
	if _, ok := m.Attr("other.A"); ok {
		t.Error("lookup with wrong qualifier should fail")
	}
	if i := m.AttrIndex("t.B"); i != 1 {
		t.Errorf("AttrIndex(t.B) = %d, want 1", i)
	}
}

// TestConjunctivePaperExample reproduces the worked example of Section 3.2:
// A < 7 AND B >= 30 AND B <= 100 AND B <> 66 over the paper's table with
// n=12. Expected partition entries (selectivity estimates checked
// separately, since the paper's gray numbers follow a different rounding):
//
//	A: 1 1 1 ½ 0 0 0 0 0 0 0 0
//	B: 0 0 0 ½ 1 1 ½ 1 1 1 ½ 0
//	C: 1 1   (no predicate, two-value domain)
func TestConjunctivePaperExample(t *testing.T) {
	meta := paperMeta()
	f := NewConjunctive(meta, Options{MaxEntriesPerAttr: 12, AttrSel: false})
	expr := wherePart(t, "A < 7 AND B >= 30 AND B <= 100 AND B <> 66")
	got, err := f.Featurize(expr)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{
		1, 1, 1, h, 0, 0, 0, 0, 0, 0, 0, 0, // A < 7
		0, 0, 0, h, 1, 1, h, 1, 1, 1, h, 0, // 30 <= B <= 100 AND B <> 66
		1, 1, // C: no predicate
	}
	vecEq(t, got, want, "Section 3.2 example")
}

func TestConjunctiveAttrSelAppended(t *testing.T) {
	meta := paperMeta()
	f := NewConjunctive(meta, Options{MaxEntriesPerAttr: 12, AttrSel: true})
	expr := wherePart(t, "A < 7 AND B >= 30 AND B <= 100 AND B <> 66")
	got, err := f.Featurize(expr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 12+1+12+1+2+1 {
		t.Fatalf("dim with attrSel = %d, want 29", len(got))
	}
	// A < 7: qualifying domain is [-9, 6], 16 of 60 values.
	if selA := got[12]; selA != 16.0/60.0 {
		t.Errorf("attrSel(A) = %v, want %v", selA, 16.0/60.0)
	}
	// B in [30, 100] minus one excluded value: 70 of 116 values.
	if selB := got[25]; selB != 70.0/116.0 {
		t.Errorf("attrSel(B) = %v, want %v", selB, 70.0/116.0)
	}
	// C unconstrained.
	if selC := got[28]; selC != 1 {
		t.Errorf("attrSel(C) = %v, want 1", selC)
	}
}

// TestComplexPaperExample reproduces the worked example of Section 3.3:
// (A > -2 AND A <= 30 AND A != 7 OR A >= 42) AND B >= 39 with n=12.
//
// One deliberate deviation from the paper's figures: this implementation
// resolves partition entries whose boundary aligns with a literal to 0/1
// instead of ½ (the paper applies that refinement only to small domains).
// A <= 30 ends exactly at bucket 7's upper edge, so entry 7 is 1 here where
// the paper prints ½.
func TestComplexPaperExample(t *testing.T) {
	meta := paperMeta()
	f := NewComplex(meta, Options{MaxEntriesPerAttr: 12, AttrSel: false})
	expr := wherePart(t, "(A > -2 AND A <= 30 AND A <> 7 OR A >= 42) AND B >= 40")
	got, err := f.Featurize(expr)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{
		0, h, 1, h, 1, 1, 1, 1, 0, 0, h, 1, // compound on A (entry 7: see doc)
		0, 0, 0, 0, h, 1, 1, 1, 1, 1, 1, 1, // B >= 39
		1, 1, // C: no predicate
	}
	vecEq(t, got, want, "Section 3.3 example")
}

// TestComplexBranchVectors checks the per-disjunct vectors of the
// Section 3.3 example before merging.
func TestComplexBranchVectors(t *testing.T) {
	meta := paperMeta()
	a, _ := meta.Attr("A")

	branch1 := sqlparse.CollectPreds(wherePart(t, "A > -2 AND A <= 30 AND A <> 7"))
	v1, _, err := FeaturizeAttrConjunction(a, branch1)
	if err != nil {
		t.Fatal(err)
	}
	vecEq(t, v1, []float64{0, h, 1, h, 1, 1, 1, 1, 0, 0, 0, 0}, "branch -2 < A <= 30, A <> 7")

	branch2 := sqlparse.CollectPreds(wherePart(t, "A >= 42"))
	v2, _, err := FeaturizeAttrConjunction(a, branch2)
	if err != nil {
		t.Fatal(err)
	}
	vecEq(t, v2, []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, h, 1}, "branch A >= 42")
}

func TestComplexEqualsConjunctiveOnConjunctiveInput(t *testing.T) {
	// On purely conjunctive queries, Limited Disjunction Encoding must
	// produce the identical vector to Universal Conjunction Encoding — the
	// paper relies on this for JOB-light (Table 1).
	meta := paperMeta()
	opts := Options{MaxEntriesPerAttr: 12, AttrSel: true}
	conj := NewConjunctive(meta, opts)
	comp := NewComplex(meta, opts)
	for _, src := range []string{
		"A < 7 AND B >= 30 AND B <= 100 AND B <> 66",
		"A = 5",
		"C = 2 AND A >= 0",
		"B > 10 AND B < 90 AND B <> 50 AND B <> 51",
	} {
		expr := wherePart(t, src)
		v1, err := conj.Featurize(expr)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := comp.Featurize(expr)
		if err != nil {
			t.Fatal(err)
		}
		vecEq(t, v2, v1, src)
	}
}

func TestConjunctiveNoPredicatesIsAllOnes(t *testing.T) {
	meta := paperMeta()
	f := NewConjunctive(meta, Options{MaxEntriesPerAttr: 12, AttrSel: true})
	got, err := f.Featurize(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 1 {
			t.Fatalf("entry %d = %v, want 1 (no-predicate encoding)", i, v)
		}
	}
}

func TestConjunctiveSmallDomainBinaryOnly(t *testing.T) {
	// For C with domain {1, 2} and exact partitioning, entries must be 0/1
	// only — the small-domain refinement at the end of Section 3.2.
	meta := paperMeta()
	f := NewConjunctive(meta, Options{MaxEntriesPerAttr: 12, AttrSel: false})
	for _, tc := range []struct {
		src   string
		wantC []float64
	}{
		{"C = 1", []float64{1, 0}},
		{"C = 2", []float64{0, 1}},
		{"C <> 1", []float64{0, 1}},
		{"C <= 1", []float64{1, 0}},
		{"C > 1", []float64{0, 1}},
	} {
		got, err := f.Featurize(wherePart(t, tc.src))
		if err != nil {
			t.Fatal(err)
		}
		vecEq(t, got[24:26], tc.wantC, tc.src)
	}
}

func TestConjunctiveEqualityCoarse(t *testing.T) {
	// A = 7 in a coarse partition: only bucket 3 survives, as ½ (7 does not
	// fill its bucket [6, 10]).
	meta := paperMeta()
	f := NewConjunctive(meta, Options{MaxEntriesPerAttr: 12, AttrSel: true})
	got, err := f.Featurize(wherePart(t, "A = 7"))
	if err != nil {
		t.Fatal(err)
	}
	vecEq(t, got[0:12], []float64{0, 0, 0, h, 0, 0, 0, 0, 0, 0, 0, 0}, "A = 7 partitions")
	if sel := got[12]; sel != 1.0/60.0 {
		t.Errorf("attrSel(A = 7) = %v, want %v", sel, 1.0/60.0)
	}
}

func TestConjunctiveContradiction(t *testing.T) {
	// A contradictory conjunction zeroes the attribute vector and its
	// selectivity.
	meta := paperMeta()
	f := NewConjunctive(meta, Options{MaxEntriesPerAttr: 12, AttrSel: true})
	got, err := f.Featurize(wherePart(t, "A < 0 AND A > 10"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if got[i] != 0 {
			t.Fatalf("entry %d = %v, want 0 for contradiction", i, got[i])
		}
	}
	if got[12] != 0 {
		t.Errorf("attrSel = %v, want 0 for contradiction", got[12])
	}
}

func TestConjunctiveOutOfDomainLiterals(t *testing.T) {
	meta := paperMeta()
	f := NewConjunctive(meta, Options{MaxEntriesPerAttr: 12, AttrSel: true})

	// A > 100 (beyond max): nothing qualifies.
	got, err := f.Featurize(wherePart(t, "A > 100"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		if got[i] != 0 {
			t.Fatalf("A > 100: entry %d = %v, want 0", i, got[i])
		}
	}

	// A < -100 (below min): nothing qualifies.
	got, err = f.Featurize(wherePart(t, "A < -100"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if got[i] != 0 {
			t.Fatalf("A < -100: entry %d = %v, want 0", i, got[i])
		}
	}

	// A > -100 (below min): everything qualifies.
	got, err = f.Featurize(wherePart(t, "A > -100"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		if got[i] != 1 {
			t.Fatalf("A > -100: entry %d = %v, want 1", i, got[i])
		}
	}

	// A = 1000 (outside domain): impossible.
	got, err = f.Featurize(wherePart(t, "A = 1000"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		if got[i] != 0 {
			t.Fatalf("A = 1000: entry %d = %v, want 0", i, got[i])
		}
	}

	// A <> 1000 (outside domain): no effect.
	got, err = f.Featurize(wherePart(t, "A <> 1000"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if got[i] != 1 {
			t.Fatalf("A <> 1000: entry %d = %v, want 1", i, got[i])
		}
	}
}

func TestConjunctiveRejectsDisjunction(t *testing.T) {
	f := NewConjunctive(paperMeta(), DefaultOptions())
	if _, err := f.Featurize(wherePart(t, "A = 1 OR A = 2")); err == nil {
		t.Error("Universal Conjunction Encoding must reject disjunctions")
	}
}

func TestComplexRejectsCrossAttributeOr(t *testing.T) {
	f := NewComplex(paperMeta(), DefaultOptions())
	if _, err := f.Featurize(wherePart(t, "A = 1 OR B = 2")); err == nil {
		t.Error("Limited Disjunction Encoding must reject non-mixed queries")
	}
}

func TestUnknownAttributeErrors(t *testing.T) {
	meta := paperMeta()
	opts := DefaultOptions()
	for _, name := range QFTNames() {
		f, err := New(name, meta, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Featurize(wherePart(t, "nosuch = 1")); err == nil {
			t.Errorf("%s: expected error for unknown attribute", name)
		}
	}
}

func TestNewUnknownQFT(t *testing.T) {
	if _, err := New("bogus", paperMeta(), DefaultOptions()); err == nil {
		t.Error("expected error for unknown QFT name")
	}
}

func TestSimpleEncodingLayout(t *testing.T) {
	meta := paperMeta()
	f := NewSimple(meta)
	if f.Dim() != 12 {
		t.Fatalf("Dim = %d, want 12", f.Dim())
	}
	// A > 5 AND B = 7 from Section 2.1.1 (adapted to this table's domains).
	got, err := f.Featurize(wherePart(t, "A > 5 AND B = 7"))
	if err != nil {
		t.Fatal(err)
	}
	// A block: [eq gt lt lit] = [0 1 0 (5+9)/59].
	vecEq(t, got[0:3], []float64{0, 1, 0}, "A op bits")
	if got[3] != 14.0/59.0 {
		t.Errorf("A literal = %v, want %v", got[3], 14.0/59.0)
	}
	vecEq(t, got[4:7], []float64{1, 0, 0}, "B op bits")
	if got[7] != 7.0/115.0 {
		t.Errorf("B literal = %v, want %v", got[7], 7.0/115.0)
	}
	// C block all zero: no predicate.
	vecEq(t, got[8:12], []float64{0, 0, 0, 0}, "C block")
}

func TestSimpleOpProjections(t *testing.T) {
	f := NewSimple(paperMeta())
	cases := []struct {
		src  string
		want []float64 // eq, gt, lt
	}{
		{"A >= 5", []float64{1, 1, 0}},
		{"A <= 5", []float64{1, 0, 1}},
		{"A <> 5", []float64{0, 1, 1}},
	}
	for _, tc := range cases {
		got, err := f.Featurize(wherePart(t, tc.src))
		if err != nil {
			t.Fatal(err)
		}
		vecEq(t, got[0:3], tc.want, tc.src)
	}
}

// TestSimpleInformationLoss documents the failure mode of Section 3: with
// two predicates on one attribute, Singular Predicate Encoding keeps only
// the first — two very different queries collide onto one vector.
func TestSimpleInformationLoss(t *testing.T) {
	f := NewSimple(paperMeta())
	wide, err := f.Featurize(wherePart(t, "A > 5"))
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := f.Featurize(wherePart(t, "A > 5 AND A < 8"))
	if err != nil {
		t.Fatal(err)
	}
	vecEq(t, narrow, wide, "collision of one- and two-predicate queries")
}

func TestSimpleRejectsDisjunction(t *testing.T) {
	f := NewSimple(paperMeta())
	if _, err := f.Featurize(wherePart(t, "A = 1 OR A = 2")); err == nil {
		t.Error("Singular Predicate Encoding must reject disjunctions")
	}
}

func TestRangeEncoding(t *testing.T) {
	meta := paperMeta()
	f := NewRange(meta)
	if f.Dim() != 6 {
		t.Fatalf("Dim = %d, want 6", f.Dim())
	}
	got, err := f.Featurize(wherePart(t, "A >= 0 AND A < 10 AND B = 50"))
	if err != nil {
		t.Fatal(err)
	}
	// A: [0, 9] normalized over [-9, 50].
	if got[0] != 9.0/59.0 || got[1] != 18.0/59.0 {
		t.Errorf("A range = [%v, %v], want [%v, %v]", got[0], got[1], 9.0/59.0, 18.0/59.0)
	}
	// B: point [50, 50].
	if got[2] != got[3] || got[2] != 50.0/115.0 {
		t.Errorf("B range = [%v, %v], want equal at %v", got[2], got[3], 50.0/115.0)
	}
	// C: untouched, full range.
	if got[4] != 0 || got[5] != 1 {
		t.Errorf("C range = [%v, %v], want [0, 1]", got[4], got[5])
	}
}

func TestRangeIntersectsMultiplePredicates(t *testing.T) {
	// Several range predicates on one attribute intersect losslessly.
	f := NewRange(paperMeta())
	a, err := f.Featurize(wherePart(t, "A >= 0 AND A <= 20 AND A >= 5"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Featurize(wherePart(t, "A >= 5 AND A <= 20"))
	if err != nil {
		t.Fatal(err)
	}
	vecEq(t, a, b, "range intersection")
}

// TestRangeDropsNotEqual documents Range Predicate Encoding's information
// loss: <> predicates vanish (the Figure 3 spike at three predicates).
func TestRangeDropsNotEqual(t *testing.T) {
	f := NewRange(paperMeta())
	with, err := f.Featurize(wherePart(t, "A >= 0 AND A <= 20 AND A <> 10"))
	if err != nil {
		t.Fatal(err)
	}
	without, err := f.Featurize(wherePart(t, "A >= 0 AND A <= 20"))
	if err != nil {
		t.Fatal(err)
	}
	vecEq(t, with, without, "<> dropped")
}

func TestRangeEmptyRangeEncoding(t *testing.T) {
	f := NewRange(paperMeta())
	got, err := f.Featurize(wherePart(t, "A > 10 AND A < 5"))
	if err != nil {
		t.Fatal(err)
	}
	// Inverted marker [1, 0]: distinguishable from any satisfiable range.
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("empty range encoded as [%v, %v], want [1, 0]", got[0], got[1])
	}
}

func TestFeaturizersAreDeterministic(t *testing.T) {
	meta := paperMeta()
	expr := wherePart(t, "(A > -2 AND A <= 30 AND A <> 7 OR A >= 42) AND B >= 40")
	conjExpr := wherePart(t, "A < 7 AND B >= 30 AND B <= 100 AND B <> 66")
	for _, name := range QFTNames() {
		f, err := New(name, meta, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		e := conjExpr
		if name == "complex" {
			e = expr
		}
		v1, err := f.Featurize(e)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := f.Featurize(e)
		if err != nil {
			t.Fatal(err)
		}
		vecEq(t, v2, v1, name+" determinism")
		if len(v1) != f.Dim() {
			t.Errorf("%s: len(vec) = %d, Dim() = %d", name, len(v1), f.Dim())
		}
	}
}
