package core

import (
	"math"
	"math/rand"
	"testing"

	"qfe/internal/exec"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

func TestAttachWeightsSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tbl := randTable(rng, 500)
	meta := NewTableMetaWeighted(tbl, 8)
	for _, a := range meta.Attrs {
		if a.Weights == nil {
			t.Fatalf("attribute %q has no weights", a.Name)
		}
		if len(a.Weights) != a.NEntries {
			t.Fatalf("attribute %q: %d weights for %d entries", a.Name, len(a.Weights), a.NEntries)
		}
		var sum float64
		for _, w := range a.Weights {
			if w < 0 {
				t.Fatalf("attribute %q: negative weight %v", a.Name, w)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("attribute %q: weights sum to %v", a.Name, sum)
		}
	}
}

// TestWeightedSelExactAtFullResolution: with one partition per value and
// frequency weights, the appended selectivity equals the *true* selectivity
// for any conjunctive predicate set — strictly sharper than the uniformity
// assumption the paper uses.
func TestWeightedSelExactAtFullResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tbl := randTable(rng, 400)
	meta := NewTableMetaWeighted(tbl, 1000) // exact partitions
	for trial := 0; trial < 200; trial++ {
		a := meta.Attrs[rng.Intn(len(meta.Attrs))]
		sub := NewTableMetaFromAttrs("t", []AttrMeta{{Name: a.Name, Min: a.Min, Max: a.Max}}, a.NEntries)
		expr := randConjunction(rng, sub, 4)
		_, sel, err := FeaturizeAttrConjunction(a, sqlparse.CollectPreds(expr))
		if err != nil {
			t.Fatal(err)
		}
		truth, err := exec.Selectivity(tbl, expr)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sel-truth) > 1e-9 {
			t.Fatalf("trial %d: weighted sel %v != true selectivity %v for %s", trial, sel, truth, expr)
		}
	}
}

// TestWeightedSelBeatsUniformOnSkew: on a heavily skewed column, the
// frequency-weighted estimate is closer to the truth than the uniformity
// estimate for range predicates over the dense region.
func TestWeightedSelBeatsUniformOnSkew(t *testing.T) {
	// 90% of rows in [0, 9], 10% spread over [10, 999].
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 5000)
	for i := range vals {
		if rng.Float64() < 0.9 {
			vals[i] = int64(rng.Intn(10))
		} else {
			vals[i] = int64(10 + rng.Intn(990))
		}
	}
	tbl := table.New("t")
	tbl.MustAddColumn(table.NewColumn("a", vals))
	plain := NewTableMeta(tbl, 16)
	weighted := NewTableMetaWeighted(tbl, 16)

	expr := sqlparse.NewAnd(
		&sqlparse.Pred{Attr: "a", Op: sqlparse.OpGe, Val: 0},
		&sqlparse.Pred{Attr: "a", Op: sqlparse.OpLe, Val: 62}, // dense head + a bit
	)
	truth, err := exec.Selectivity(tbl, expr)
	if err != nil {
		t.Fatal(err)
	}
	_, selU, err := FeaturizeAttrConjunction(plain.Attrs[0], sqlparse.CollectPreds(expr))
	if err != nil {
		t.Fatal(err)
	}
	_, selW, err := FeaturizeAttrConjunction(weighted.Attrs[0], sqlparse.CollectPreds(expr))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("truth=%.3f uniform=%.3f weighted=%.3f", truth, selU, selW)
	if math.Abs(selW-truth) >= math.Abs(selU-truth) {
		t.Errorf("weighted estimate %v not closer to truth %v than uniform %v", selW, truth, selU)
	}
}

func TestWeightedSelOnCompound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tbl := randTable(rng, 300)
	meta := NewTableMetaWeighted(tbl, 1000)
	a := meta.Attrs[0]
	expr := sqlparse.NewOr(
		sqlparse.NewAnd(
			&sqlparse.Pred{Attr: a.Name, Op: sqlparse.OpGe, Val: a.Min},
			&sqlparse.Pred{Attr: a.Name, Op: sqlparse.OpLe, Val: a.Min + 5},
		),
		&sqlparse.Pred{Attr: a.Name, Op: sqlparse.OpGe, Val: a.Max - 3},
	)
	_, sel, err := FeaturizeAttrCompound(a, expr)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := exec.Selectivity(tbl, expr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel-truth) > 1e-9 {
		t.Fatalf("compound weighted sel %v != truth %v", sel, truth)
	}
}

func TestSpecRejectsBadWeights(t *testing.T) {
	spec := MetaSpec{Name: "t", Attrs: []AttrMeta{
		{Name: "a", Min: 0, Max: 9, NEntries: 4, Weights: []float64{0.5, 0.5}},
	}}
	if _, err := NewTableMetaFromSpec(spec); err == nil {
		t.Error("mismatched weights length accepted")
	}
}
