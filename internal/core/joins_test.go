package core

import (
	"testing"

	"qfe/internal/catalog"
	"qfe/internal/sqlparse"
)

// twoTableSchema builds a hub+satellite schema for the join-adapter tests.
func twoTableSchema() (*catalog.Schema, map[string]*TableMeta) {
	schema := &catalog.Schema{
		Tables: []string{"title", "cast_info"},
		FKs: []catalog.ForeignKey{
			{FromTable: "cast_info", FromCol: "movie_id", ToTable: "title", ToCol: "id"},
		},
	}
	metas := map[string]*TableMeta{
		"title": NewTableMetaFromAttrs("title", []AttrMeta{
			{Name: "id", Min: 0, Max: 99},
			{Name: "year", Min: 1900, Max: 2020},
		}, 8),
		"cast_info": NewTableMetaFromAttrs("cast_info", []AttrMeta{
			{Name: "movie_id", Min: 0, Max: 99},
			{Name: "role_id", Min: 1, Max: 11},
		}, 8),
	}
	return schema, metas
}

func TestGlobalFeaturizerLayout(t *testing.T) {
	schema, metas := twoTableSchema()
	g, err := NewGlobalFeaturizer(schema, metas, "conjunctive", Options{MaxEntriesPerAttr: 8, AttrSel: true})
	if err != nil {
		t.Fatal(err)
	}
	// Per-table dims: title = (8+1)+(8+1) = 18, cast_info = 18; plus 2
	// table-vector entries.
	if g.Dim() != 18+18+2 {
		t.Fatalf("Dim = %d, want 38", g.Dim())
	}
	q := sqlparse.MustParse("SELECT count(*) FROM title, cast_info WHERE title.id = cast_info.movie_id AND title.year >= 2000 AND cast_info.role_id = 1")
	vec, err := g.Featurize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != g.Dim() {
		t.Fatalf("vector length %d, want %d", len(vec), g.Dim())
	}
	// Table bit-vector trailing block: both tables participate.
	if vec[36] != 1 || vec[37] != 1 {
		t.Errorf("table vector = %v, want [1 1]", vec[36:38])
	}

	// Single-table query: absent table contributes an all-zero block, and
	// its table bit is 0.
	q2 := sqlparse.MustParse("SELECT count(*) FROM title WHERE year >= 2000")
	vec2, err := g.Featurize(q2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 18; i < 36; i++ {
		if vec2[i] != 0 {
			t.Fatalf("absent table block entry %d = %v, want 0", i, vec2[i])
		}
	}
	if vec2[36] != 1 || vec2[37] != 0 {
		t.Errorf("table vector = %v, want [1 0]", vec2[36:38])
	}
}

func TestGlobalFeaturizerDistinguishesPresenceFromNoPredicate(t *testing.T) {
	schema, metas := twoTableSchema()
	g, err := NewGlobalFeaturizer(schema, metas, "conjunctive", Options{MaxEntriesPerAttr: 8, AttrSel: false})
	if err != nil {
		t.Fatal(err)
	}
	// cast_info participates but carries no predicates: its block must be
	// the no-predicate (all-one) encoding, not the absent (all-zero) one.
	q := sqlparse.MustParse("SELECT count(*) FROM title, cast_info WHERE title.id = cast_info.movie_id AND title.year >= 2000")
	vec, err := g.Featurize(q)
	if err != nil {
		t.Fatal(err)
	}
	ciBlock := vec[16:32] // title block is 16 wide without attrSel
	for i, v := range ciBlock {
		if v != 1 {
			t.Fatalf("participating no-predicate block entry %d = %v, want 1", i, v)
		}
	}
}

func TestMSCNFeaturizerOriginal(t *testing.T) {
	schema, metas := twoTableSchema()
	m, err := NewMSCNFeaturizer(schema, metas, MSCNOriginal, Options{MaxEntriesPerAttr: 8, AttrSel: true})
	if err != nil {
		t.Fatal(err)
	}
	// 4 attributes across the schema; PredDim = 4 + 3 + 1.
	if m.PredDim() != 8 {
		t.Fatalf("PredDim = %d, want 8", m.PredDim())
	}
	if m.TableDim() != 2 || m.JoinDim() != 1 {
		t.Fatalf("TableDim=%d JoinDim=%d", m.TableDim(), m.JoinDim())
	}
	q := sqlparse.MustParse("SELECT count(*) FROM title, cast_info WHERE title.id = cast_info.movie_id AND title.year > 2000 AND title.year < 2010")
	sets, err := m.Featurize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets.Tables) != 2 {
		t.Errorf("tables set size %d, want 2", len(sets.Tables))
	}
	if len(sets.Joins) != 1 {
		t.Errorf("joins set size %d, want 1", len(sets.Joins))
	}
	// Original mode: one vector per simple predicate.
	if len(sets.Preds) != 2 {
		t.Errorf("preds set size %d, want 2 (per-predicate)", len(sets.Preds))
	}
}

func TestMSCNFeaturizerPerAttribute(t *testing.T) {
	schema, metas := twoTableSchema()
	m, err := NewMSCNFeaturizer(schema, metas, MSCNPerAttribute, Options{MaxEntriesPerAttr: 8, AttrSel: true})
	if err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParse("SELECT count(*) FROM title, cast_info WHERE title.id = cast_info.movie_id AND title.year > 2000 AND title.year < 2010")
	sets, err := m.Featurize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Per-attribute mode: both predicates on year collapse to one vector.
	if len(sets.Preds) != 1 {
		t.Fatalf("preds set size %d, want 1 (per-attribute)", len(sets.Preds))
	}
	if len(sets.Preds[0]) != m.PredDim() {
		t.Fatalf("pred vector dim %d, want %d", len(sets.Preds[0]), m.PredDim())
	}
	// The per-attribute mode supports disjunctions; the original must not.
	qOr := sqlparse.MustParse("SELECT count(*) FROM title WHERE (year = 2000 OR year = 2010)")
	if _, err := m.Featurize(qOr); err != nil {
		t.Errorf("per-attribute mode rejected mixed query: %v", err)
	}
	orig, err := NewMSCNFeaturizer(schema, metas, MSCNOriginal, Options{MaxEntriesPerAttr: 8, AttrSel: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orig.Featurize(qOr); err == nil {
		t.Error("original mode accepted a disjunction")
	}
}

func TestMSCNFeaturizerRangeMode(t *testing.T) {
	schema, metas := twoTableSchema()
	m, err := NewMSCNFeaturizer(schema, metas, MSCNRange, Options{MaxEntriesPerAttr: 8, AttrSel: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.PredDim() != 4+2 {
		t.Fatalf("PredDim = %d, want 6", m.PredDim())
	}
	q := sqlparse.MustParse("SELECT count(*) FROM title WHERE year >= 1960 AND year <= 2020")
	sets, err := m.Featurize(q)
	if err != nil {
		t.Fatal(err)
	}
	vec := sets.Preds[0]
	lo, hi := vec[4], vec[5]
	if lo != 0.5 || hi != 1 {
		t.Errorf("range block = [%v, %v], want [0.5, 1]", lo, hi)
	}
	if _, err := m.Featurize(sqlparse.MustParse("SELECT count(*) FROM title WHERE (year = 2000 OR year = 2010)")); err == nil {
		t.Error("range mode accepted a disjunction")
	}
}

func TestMSCNFeaturizerPadding(t *testing.T) {
	schema, metas := twoTableSchema()
	m, err := NewMSCNFeaturizer(schema, metas, MSCNOriginal, Options{MaxEntriesPerAttr: 8, AttrSel: true})
	if err != nil {
		t.Fatal(err)
	}
	// No joins, no predicates: both sets must be padded with one zero
	// vector each (the original implementation's convention).
	q := sqlparse.MustParse("SELECT count(*) FROM title")
	sets, err := m.Featurize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets.Joins) != 1 || len(sets.Preds) != 1 {
		t.Fatalf("padding missing: joins=%d preds=%d", len(sets.Joins), len(sets.Preds))
	}
	for _, v := range sets.Joins[0] {
		if v != 0 {
			t.Error("join padding not zero")
		}
	}
	for _, v := range sets.Preds[0] {
		if v != 0 {
			t.Error("pred padding not zero")
		}
	}
}

func TestMSCNFeaturizerErrors(t *testing.T) {
	schema, metas := twoTableSchema()
	m, err := NewMSCNFeaturizer(schema, metas, MSCNOriginal, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Featurize(sqlparse.MustParse("SELECT count(*) FROM nope")); err == nil {
		t.Error("unknown table accepted")
	}
	// A join that is not a schema foreign-key edge.
	q := &sqlparse.Query{
		Tables: []string{"title", "cast_info"},
		Joins:  []sqlparse.JoinPred{{LeftTable: "title", LeftCol: "year", RightTable: "cast_info", RightCol: "role_id"}},
	}
	if _, err := m.Featurize(q); err == nil {
		t.Error("non-FK join accepted")
	}
	if _, err := NewMSCNFeaturizer(schema, map[string]*TableMeta{}, MSCNOriginal, DefaultOptions()); err == nil {
		t.Error("missing metas accepted")
	}
}

func TestMSCNJoinOrientationSymmetric(t *testing.T) {
	schema, metas := twoTableSchema()
	m, err := NewMSCNFeaturizer(schema, metas, MSCNOriginal, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The FK is declared cast_info -> title; a query writing the join as
	// title.id = cast_info.movie_id must still resolve.
	q := sqlparse.MustParse("SELECT count(*) FROM title, cast_info WHERE title.id = cast_info.movie_id")
	sets, err := m.Featurize(q)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range sets.Joins[0] {
		sum += v
	}
	if sum != 1 {
		t.Errorf("join one-hot sums to %v, want 1", sum)
	}
}

func TestSplitWhereByTable(t *testing.T) {
	q := sqlparse.MustParse("SELECT count(*) FROM title, cast_info WHERE title.id = cast_info.movie_id AND title.year > 2000 AND cast_info.role_id = 1 AND title.year < 2015")
	per, err := SplitWhereByTable(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sqlparse.CollectPreds(per["title"])) != 2 {
		t.Errorf("title conjuncts = %v", per["title"])
	}
	if len(sqlparse.CollectPreds(per["cast_info"])) != 1 {
		t.Errorf("cast_info conjuncts = %v", per["cast_info"])
	}
	// Single-table queries allow unqualified attributes.
	q2 := sqlparse.MustParse("SELECT count(*) FROM title WHERE year > 2000")
	per2, err := SplitWhereByTable(q2)
	if err != nil {
		t.Fatal(err)
	}
	if per2["title"] == nil {
		t.Error("unqualified attribute not routed to the single table")
	}
}
