package core

import (
	"fmt"

	"qfe/internal/sqlparse"
)

// Simple is Singular Predicate Encoding (Section 2.1.1), the established
// baseline QFT of [7, 32]. The feature vector has 4·m entries for a table
// with m attributes: per attribute, a 3-entry binary operator vector over
// {=, >, <} followed by the [0,1]-normalized literal. Entries of attributes
// without predicates are all zero.
//
// The encoding is lossless only for queries with at most one predicate per
// attribute (Section 3 shows the failure mode for k > 1): when a query
// carries several predicates on the same attribute, only the first is
// represented and the rest are silently dropped — exactly the information
// loss the paper measures. Disjunctions are not supported at all.
type Simple struct {
	meta *TableMeta
}

// NewSimple returns Singular Predicate Encoding over meta.
func NewSimple(meta *TableMeta) *Simple { return &Simple{meta: meta} }

// Name implements Featurizer.
func (s *Simple) Name() string { return "simple" }

// Dim implements Featurizer: 4 entries per attribute.
func (s *Simple) Dim() int { return 4 * s.meta.NumAttrs() }

// Featurize implements Featurizer. expr must be conjunctive; the first
// predicate per attribute wins, later ones are dropped (the paper's
// described information loss, not an error). Non-strict and negated
// operators are projected onto the 3-entry {=, >, <} vector: >= sets both =
// and >, <= sets both = and <, <> sets > and < ("at most two entries can be
// meaningfully set").
func (s *Simple) Featurize(expr sqlparse.Expr) ([]float64, error) {
	if !sqlparse.IsConjunctive(expr) {
		return nil, fmt.Errorf("core/simple: disjunctions are not supported by Singular Predicate Encoding")
	}
	vec := make([]float64, s.Dim())
	seen := make(map[int]bool)
	for _, p := range sqlparse.CollectPreds(expr) {
		if p.Str != nil {
			return nil, fmt.Errorf("core/simple: unbound string predicate %s", p)
		}
		ai := s.meta.AttrIndex(p.Attr)
		if ai < 0 {
			return nil, fmt.Errorf("core/simple: unknown attribute %q", p.Attr)
		}
		if seen[ai] {
			continue // information loss: only one predicate per attribute fits
		}
		seen[ai] = true
		base := 4 * ai
		eq, gt, lt := opBits(p.Op)
		vec[base+0] = eq
		vec[base+1] = gt
		vec[base+2] = lt
		vec[base+3] = s.meta.Attrs[ai].Normalize(p.Val)
	}
	return vec, nil
}

// FeaturizeInto implements Featurizer. It is the fixed-offset twin of
// Featurize (attribute ai owns dst[4*ai : 4*ai+4]) and dedupes repeated
// attributes without a map: an attribute has been featurized exactly when one
// of its three operator bits is set (every supported operator sets at least
// one).
func (s *Simple) FeaturizeInto(dst []float64, expr sqlparse.Expr) error {
	if err := checkDst("simple", dst, s.Dim()); err != nil {
		return err
	}
	if !sqlparse.IsConjunctive(expr) {
		return fmt.Errorf("core/simple: disjunctions are not supported by Singular Predicate Encoding")
	}
	for i := range dst {
		dst[i] = 0
	}
	for _, p := range sqlparse.CollectPreds(expr) {
		if p.Str != nil {
			return fmt.Errorf("core/simple: unbound string predicate %s", p)
		}
		ai := s.meta.AttrIndex(p.Attr)
		if ai < 0 {
			return fmt.Errorf("core/simple: unknown attribute %q", p.Attr)
		}
		base := 4 * ai
		if dst[base] != 0 || dst[base+1] != 0 || dst[base+2] != 0 {
			continue // information loss: only one predicate per attribute fits
		}
		eq, gt, lt := opBits(p.Op)
		dst[base+0] = eq
		dst[base+1] = gt
		dst[base+2] = lt
		dst[base+3] = s.meta.Attrs[ai].Normalize(p.Val)
	}
	return nil
}

// opBits projects a comparison operator onto the {=, >, <} indicator bits.
func opBits(op sqlparse.CmpOp) (eq, gt, lt float64) {
	switch op {
	case sqlparse.OpEq:
		return 1, 0, 0
	case sqlparse.OpGt:
		return 0, 1, 0
	case sqlparse.OpLt:
		return 0, 0, 1
	case sqlparse.OpGe:
		return 1, 1, 0
	case sqlparse.OpLe:
		return 1, 0, 1
	case sqlparse.OpNe:
		return 0, 1, 1
	}
	return 0, 0, 0
}
