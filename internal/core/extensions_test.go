package core

import (
	"testing"

	"qfe/internal/exec"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

func TestGroupByVector(t *testing.T) {
	meta := paperMeta()
	vec, err := GroupByVector(meta, []string{"B"})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 0}
	for i := range want {
		if vec[i] != want[i] {
			t.Fatalf("GroupByVector = %v, want %v", vec, want)
		}
	}
	// The Section 6 example: GROUP BY A2, A4 over five attributes -> 01010.
	meta5 := NewTableMetaFromAttrs("t", []AttrMeta{
		{Name: "A1", Min: 0, Max: 9}, {Name: "A2", Min: 0, Max: 9},
		{Name: "A3", Min: 0, Max: 9}, {Name: "A4", Min: 0, Max: 9},
		{Name: "A5", Min: 0, Max: 9},
	}, 4)
	vec5, err := GroupByVector(meta5, []string{"A2", "A4"})
	if err != nil {
		t.Fatal(err)
	}
	want5 := []float64{0, 1, 0, 1, 0}
	for i := range want5 {
		if vec5[i] != want5[i] {
			t.Fatalf("GroupByVector = %v, want %v (paper Section 6)", vec5, want5)
		}
	}
	if _, err := GroupByVector(meta, []string{"nosuch"}); err == nil {
		t.Error("unknown grouping attribute accepted")
	}
}

func TestWithGroupBy(t *testing.T) {
	meta := paperMeta()
	base := NewConjunctive(meta, Options{MaxEntriesPerAttr: 12, AttrSel: false})
	w := &WithGroupBy{Base: base, Meta: meta}
	if w.Dim() != base.Dim()+3 {
		t.Fatalf("Dim = %d, want %d", w.Dim(), base.Dim()+3)
	}
	if w.Name() != "conjunctive+groupby" {
		t.Errorf("Name = %q", w.Name())
	}
	expr := wherePart(t, "A < 7")
	vec, err := w.FeaturizeQuery(expr, []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != w.Dim() {
		t.Fatalf("vector length %d, want %d", len(vec), w.Dim())
	}
	// Grouping block is the trailing three entries.
	gb := vec[len(vec)-3:]
	if gb[0] != 0 || gb[1] != 0 || gb[2] != 1 {
		t.Errorf("grouping block = %v, want [0 0 1]", gb)
	}
	// Featurize (no grouping) must leave the block zero.
	vec2, err := w.Featurize(expr)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vec2[len(vec2)-3:] {
		if v != 0 {
			t.Error("grouping block not zero without GROUP BY")
		}
	}
}

func TestPrefixPreds(t *testing.T) {
	// Dictionary-order prefix predicates (Section 6, string predicates):
	// attr LIKE 'ap%' must select exactly the code range of apple..apricot.
	col := table.NewStringColumn("s", []string{
		"apple", "apricot", "banana", "cherry", "apex", "apple",
	})
	tbl := table.New("t")
	tbl.MustAddColumn(col)

	count := func(expr sqlparse.Expr) int64 {
		bm, err := exec.EvalExpr(tbl, expr)
		if err != nil {
			t.Fatal(err)
		}
		return int64(bm.Count())
	}

	// 'ap%' matches apex, apple (x2), apricot = 4 rows.
	if got := count(PrefixPreds("s", "ap", col.Dict)); got != 4 {
		t.Errorf("LIKE 'ap%%' matched %d rows, want 4", got)
	}
	// 'appl%' matches the two apples.
	if got := count(PrefixPreds("s", "appl", col.Dict)); got != 2 {
		t.Errorf("LIKE 'appl%%' matched %d rows, want 2", got)
	}
	// 'z%' matches nothing and must be an unsatisfiable predicate.
	if got := count(PrefixPreds("s", "z", col.Dict)); got != 0 {
		t.Errorf("LIKE 'z%%' matched %d rows, want 0", got)
	}
	// The empty prefix matches everything.
	if got := count(PrefixPreds("s", "", col.Dict)); got != 6 {
		t.Errorf("LIKE '%%' matched %d rows, want 6", got)
	}
}

// TestPrefixPredsFeaturizable: the rewritten prefix predicates flow through
// Universal Conjunction Encoding naturally — the Section 6 claim.
func TestPrefixPredsFeaturizable(t *testing.T) {
	col := table.NewStringColumn("s", []string{"apple", "apricot", "banana", "cherry"})
	tbl := table.New("t")
	tbl.MustAddColumn(col)
	meta := NewTableMeta(tbl, 26)
	f := NewConjunctive(meta, Options{MaxEntriesPerAttr: 26, AttrSel: true})
	expr := PrefixPreds("s", "ap", col.Dict)
	vec, err := f.Featurize(expr)
	if err != nil {
		t.Fatal(err)
	}
	// Domain is 4 codes; apple(0), apricot(1) qualify; banana(2), cherry(3)
	// do not.
	want := []float64{1, 1, 0, 0}
	for i := range want {
		if vec[i] != want[i] {
			t.Fatalf("prefix featurization = %v, want %v...", vec[:4], want)
		}
	}
	if sel := vec[4]; sel != 0.5 {
		t.Errorf("prefix attrSel = %v, want 0.5", sel)
	}
}
