package dataset

import (
	"fmt"
	"math"
	"testing"

	"qfe/internal/catalog"
)

func TestForestShapeAndDeterminism(t *testing.T) {
	cfg := ForestConfig{Rows: 2000, QuantAttrs: 8, BinaryAttrs: 4, Seed: 1}
	a, err := Forest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 2000 || a.NumCols() != 12 {
		t.Fatalf("shape = (%d, %d), want (2000, 12)", a.NumRows(), a.NumCols())
	}
	for i := 1; i <= 12; i++ {
		if a.Column(fmt.Sprintf("A%d", i)) == nil {
			t.Fatalf("missing column A%d", i)
		}
	}
	b, err := Forest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < a.NumCols(); c++ {
		for r := 0; r < 100; r++ {
			if a.Columns()[c].Vals[r] != b.Columns()[c].Vals[r] {
				t.Fatal("generation not deterministic under same seed")
			}
		}
	}
}

func TestForestDomains(t *testing.T) {
	tbl, err := Forest(ForestConfig{Rows: 5000, QuantAttrs: 10, BinaryAttrs: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Elevation-like A1 in [1200, 3900].
	a1 := tbl.Column("A1")
	if a1.Min() < 1200 || a1.Max() > 3900 {
		t.Errorf("A1 domain [%d, %d] outside [1200, 3900]", a1.Min(), a1.Max())
	}
	// Aspect-like A2 in [0, 359].
	a2 := tbl.Column("A2")
	if a2.Min() < 0 || a2.Max() > 359 {
		t.Errorf("A2 domain [%d, %d] outside [0, 359]", a2.Min(), a2.Max())
	}
	// Binary attributes really are binary.
	for i := 11; i <= 16; i++ {
		col := tbl.Column(fmt.Sprintf("A%d", i))
		if col.Min() < 0 || col.Max() > 1 {
			t.Errorf("A%d not binary: [%d, %d]", i, col.Min(), col.Max())
		}
	}
}

// TestForestCorrelation: A3 (slope) must be positively correlated with A1
// (elevation); the correlation is what defeats the independence baseline.
func TestForestCorrelation(t *testing.T) {
	tbl, err := Forest(ForestConfig{Rows: 10000, QuantAttrs: 6, BinaryAttrs: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r := pearson(tbl.Column("A1").Vals, tbl.Column("A3").Vals); r < 0.2 {
		t.Errorf("corr(A1, A3) = %v, want > 0.2", r)
	}
}

func pearson(a, b []int64) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += float64(a[i])
		sb += float64(b[i])
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da, db := float64(a[i])-ma, float64(b[i])-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	return cov / math.Sqrt(va*vb)
}

func TestForestConfigValidation(t *testing.T) {
	if _, err := Forest(ForestConfig{Rows: 0, QuantAttrs: 5}); err == nil {
		t.Error("Rows=0 accepted")
	}
	if _, err := Forest(ForestConfig{Rows: 10, QuantAttrs: 1}); err == nil {
		t.Error("QuantAttrs=1 accepted")
	}
	if _, err := Forest(ForestConfig{Rows: 10, QuantAttrs: 5, BinaryAttrs: -1}); err == nil {
		t.Error("negative BinaryAttrs accepted")
	}
}

func TestIMDBSchemaShape(t *testing.T) {
	s := IMDBSchema()
	if len(s.Tables) != 6 {
		t.Fatalf("schema has %d tables, want 6", len(s.Tables))
	}
	if len(s.FKs) != 5 {
		t.Fatalf("schema has %d FKs, want 5", len(s.FKs))
	}
	for _, fk := range s.FKs {
		if fk.ToTable != "title" || fk.ToCol != "id" || fk.FromCol != "movie_id" {
			t.Errorf("unexpected FK %s", fk)
		}
	}
	// All 2^6-1 = 63 subsets minus the disconnected ones; the star means a
	// connected subset either is a single table or contains title.
	subs := s.ConnectedSubSchemas(0)
	// In a star, a connected subset is either a single table or contains
	// the hub plus a nonempty satellite subset: 6 + (2^5 - 1) = 37.
	want := 6 + (1<<5 - 1)
	if len(subs) != want {
		t.Errorf("connected sub-schemas = %d, want %d", len(subs), want)
	}
}

func TestIMDBGeneration(t *testing.T) {
	db, err := IMDB(IMDBConfig{Titles: 500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	title := db.Table("title")
	if title == nil || title.NumRows() != 500 {
		t.Fatal("title table wrong")
	}
	// Keys are dense 0..n-1.
	if title.Column("id").Min() != 0 || title.Column("id").Max() != 499 {
		t.Error("title.id not dense")
	}
	// Production years in [1880, 2015], recent-skewed: median above 1950.
	py := title.Column("production_year")
	if py.Min() < 1880 || py.Max() > 2015 {
		t.Errorf("production_year domain [%d, %d]", py.Min(), py.Max())
	}
	var above int
	for _, y := range py.Vals {
		if y > 1950 {
			above++
		}
	}
	if above < 250 {
		t.Errorf("only %d/500 years after 1950; want recent skew", above)
	}
	// Satellites reference valid titles and have roughly the configured
	// fan-out.
	ci := db.Table("cast_info")
	if ci.NumRows() != 3000 {
		t.Errorf("cast_info rows = %d, want 3000", ci.NumRows())
	}
	for _, mid := range ci.Column("movie_id").Vals[:200] {
		if mid < 0 || mid >= 500 {
			t.Fatalf("cast_info.movie_id %d out of range", mid)
		}
	}
	// Zipf skew: the most popular title should attract far more cast rows
	// than the median title.
	counts := map[int64]int{}
	for _, mid := range ci.Column("movie_id").Vals {
		counts[mid]++
	}
	maxCnt := 0
	for _, c := range counts {
		if c > maxCnt {
			maxCnt = c
		}
	}
	if maxCnt < 20 {
		t.Errorf("max fan-out %d; want heavy Zipf skew", maxCnt)
	}
}

func TestIMDBConfigValidation(t *testing.T) {
	if _, err := IMDB(IMDBConfig{Titles: 5}); err == nil {
		t.Error("tiny Titles accepted")
	}
}

func TestIMDBJoinEdgesResolvable(t *testing.T) {
	s := IMDBSchema()
	edges, err := s.JoinEdges([]string{"title", "cast_info", "movie_keyword"})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 {
		t.Errorf("got %d edges, want 2", len(edges))
	}
	if _, err := s.JoinEdges([]string{"cast_info", "movie_keyword"}); err == nil {
		t.Error("satellite-only pair should be disconnected")
	}
	var _ = catalog.SubSchemaKey([]string{"b", "a"})
}

func TestTPCHOrders(t *testing.T) {
	tbl, err := TPCHOrders(TPCHConfig{Rows: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 5000 || tbl.Name != "orders" {
		t.Fatalf("shape: %d rows, name %q", tbl.NumRows(), tbl.Name)
	}
	// Dates are valid yyyymmdd encodings within the TPC-H window.
	dates := tbl.Column("o_orderdate")
	for _, d := range dates.Vals {
		y, m, dd := d/10_000, (d/100)%100, d%100
		if y < 1992 || y > 1998 || m < 1 || m > 12 || dd < 1 || dd > 31 {
			t.Fatalf("invalid date encoding %d", d)
		}
	}
	// Status dictionary is {F, O, P} and statuses correlate with age:
	// pre-1996 orders are overwhelmingly finished.
	status := tbl.Column("o_orderstatus")
	if len(status.Dict) != 3 {
		t.Fatalf("status dictionary %v", status.Dict)
	}
	fCode := int64(-1)
	for i, s := range status.Dict {
		if s == "F" {
			fCode = int64(i)
		}
	}
	oldF, oldAll := 0, 0
	for r := 0; r < tbl.NumRows(); r++ {
		if dates.Vals[r] < EncodeDate(1996, 1, 1) {
			oldAll++
			if status.Vals[r] == fCode {
				oldF++
			}
		}
	}
	if oldAll == 0 || float64(oldF)/float64(oldAll) < 0.9 {
		t.Errorf("old orders finished ratio %d/%d, want > 0.9", oldF, oldAll)
	}
	// Prices long-tailed but bounded.
	price := tbl.Column("o_totalprice")
	if price.Min() < 900 || price.Max() > 60_000 {
		t.Errorf("price domain [%d, %d]", price.Min(), price.Max())
	}
	if _, err := TPCHOrders(TPCHConfig{Rows: 0}); err == nil {
		t.Error("Rows=0 accepted")
	}
}

func TestEncodeDateOrderPreserving(t *testing.T) {
	if EncodeDate(1994, 7, 4) != 19940704 {
		t.Fatalf("EncodeDate = %d", EncodeDate(1994, 7, 4))
	}
	if !(EncodeDate(1994, 12, 31) < EncodeDate(1995, 1, 1)) {
		t.Error("encoding not order preserving across years")
	}
}
