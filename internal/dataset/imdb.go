package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"qfe/internal/catalog"
	"qfe/internal/table"
)

// IMDBConfig configures the IMDb-shaped star-schema generator used for the
// JOB-light experiments (Tables 1, 2, 4, 5).
type IMDBConfig struct {
	// Titles is the number of rows in the hub table `title`. The satellite
	// tables scale with it (cast_info ~ 6x, movie_info ~ 5x, ...), roughly
	// matching the real IMDb proportions used by JOB-light.
	Titles int
	// Seed drives generation.
	Seed int64
}

// DefaultIMDBConfig is sized for laptop-scale experiments.
func DefaultIMDBConfig() IMDBConfig {
	return IMDBConfig{Titles: 8_000, Seed: 20190112}
}

// IMDBSchema returns the JOB-light sub-schema of IMDb: the hub table
// `title` plus five satellite tables, each referencing title.id via
// movie_id. This is exactly the key/foreign-key star that JOB-light queries
// join along.
func IMDBSchema() *catalog.Schema {
	sats := []string{"cast_info", "movie_info", "movie_info_idx", "movie_companies", "movie_keyword"}
	s := &catalog.Schema{Tables: append([]string{"title"}, sats...)}
	for _, sat := range sats {
		s.FKs = append(s.FKs, catalog.ForeignKey{
			FromTable: sat, FromCol: "movie_id", ToTable: "title", ToCol: "id",
		})
	}
	return s
}

// IMDB generates the star schema's tables. Distributions mirror the
// properties the JOB-light experiments need:
//
//   - title.production_year is skewed toward recent years (1880..2015),
//   - title.kind_id is a small categorical domain (7 kinds, skewed),
//   - satellite fan-out follows a Zipf law over titles, so popular movies
//     dominate join sizes (the reason independence-style estimators
//     misjudge join cardinalities),
//   - satellite category attributes (role_id, info_type_id, company_type_id,
//     keyword_id) are skewed categoricals of varying domain sizes.
func IMDB(cfg IMDBConfig) (*table.DB, error) {
	if cfg.Titles < 10 {
		return nil, fmt.Errorf("dataset: Titles = %d, want >= 10", cfg.Titles)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := table.NewDB()
	n := cfg.Titles

	// --- title ---
	ids := make([]int64, n)
	kind := make([]int64, n)
	year := make([]int64, n)
	episodes := make([]int64, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		kind[i] = skewedCategory(rng, 7)
		// Production year: recent-heavy. Map a square-rooted uniform onto
		// the range so late years are dense.
		u := rng.Float64()
		year[i] = 1880 + int64(math.Sqrt(u)*135+rng.Float64()*8)
		if year[i] > 2015 {
			year[i] = 2015
		}
		if kind[i] >= 5 { // series-like kinds carry episode counts
			episodes[i] = int64(rng.ExpFloat64() * 20)
		}
	}
	title := table.New("title")
	title.MustAddColumn(table.NewColumn("id", ids))
	title.MustAddColumn(table.NewColumn("kind_id", kind))
	title.MustAddColumn(table.NewColumn("production_year", year))
	title.MustAddColumn(table.NewColumn("episode_nr", episodes))
	db.MustAdd(title)

	// Zipf popularity over titles: popular titles attract most satellite
	// rows. Each satellite gets its own popularity ranking (a rotation of
	// the title ids): per-table fan-outs stay heavily skewed, but the same
	// title is not the head of *every* satellite, which keeps full-join
	// cardinalities in a realistic range instead of multiplying one title's
	// fan-outs across five tables.
	zipf := rand.NewZipf(rng, 1.7, 12, uint64(n-1))
	satIndex := 0

	addSatellite := func(name string, factor float64, cats []satCat) {
		offset := uint64(satIndex) * uint64(n) / 7
		satIndex++
		rows := int(float64(n) * factor)
		movieID := make([]int64, rows)
		for i := range movieID {
			movieID[i] = int64((zipf.Uint64() + offset) % uint64(n))
		}
		t := table.New(name)
		t.MustAddColumn(table.NewColumn("movie_id", movieID))
		for _, c := range cats {
			vals := make([]int64, rows)
			for i := range vals {
				vals[i] = skewedCategory(rng, c.domain)
			}
			t.MustAddColumn(table.NewColumn(c.name, vals))
		}
		db.MustAdd(t)
	}

	addSatellite("cast_info", 6, []satCat{{"role_id", 11}, {"nr_order", 50}})
	addSatellite("movie_info", 5, []satCat{{"info_type_id", 110}})
	addSatellite("movie_info_idx", 1.5, []satCat{{"info_type_id", 110}})
	addSatellite("movie_companies", 2.5, []satCat{{"company_type_id", 4}, {"company_id", 200}})
	addSatellite("movie_keyword", 4, []satCat{{"keyword_id", 300}})
	return db, nil
}

type satCat struct {
	name   string
	domain int
}

// skewedCategory draws a category in [1, domain] with geometric-style skew:
// low ids are far more frequent, as in the real IMDb type tables.
func skewedCategory(rng *rand.Rand, domain int) int64 {
	for {
		v := int64(rng.ExpFloat64()*float64(domain)/4) + 1
		if v <= int64(domain) {
			return v
		}
	}
}
