// Package dataset provides the deterministic synthetic data generators that
// stand in for the paper's evaluation datasets (see DESIGN.md,
// substitutions): a forest-covertype-shaped single table and an IMDb-shaped
// star schema for JOB-light-style join queries.
//
// Both generators are seeded and fully reproducible. They are built to
// preserve the *statistical properties the experiments depend on* — many
// attributes, mixed domain sizes, skew, and cross-attribute correlation (so
// that independence-assumption estimators err) — rather than the paper
// datasets' literal values.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"qfe/internal/table"
)

// ForestConfig configures the covertype-shaped generator.
type ForestConfig struct {
	// Rows is the table size. The real dataset has 581k rows; benches
	// default to a laptop-friendly size via bench.Scale.
	Rows int
	// QuantAttrs is the number of quantitative attributes (the real
	// dataset has 10: elevation, aspect, slope, distances, hillshades...).
	QuantAttrs int
	// BinaryAttrs is the number of binary one-hot attributes (the real
	// dataset has 44 wilderness/soil indicators and one small class label).
	BinaryAttrs int
	// Seed drives generation.
	Seed int64
}

// DefaultForestConfig mirrors the covertype shape at reduced width: enough
// attributes for queries mentioning up to 8+ distinct attributes (the
// paper's Figures 2 and 5) while keeping feature vectors laptop-sized.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{Rows: 40_000, QuantAttrs: 10, BinaryAttrs: 6, Seed: 20230328}
}

// Forest generates the covertype-shaped table. Attributes are named A1, A2,
// ... (quantitative first, binary last), matching the paper's example query
// style ("A7 >= 160 AND A8 <= 237").
//
// The quantitative attributes are generated with deliberate structure:
//
//   - A1 ("elevation"): mixture of three normal modes — multimodal skew.
//   - A2 ("aspect"): uniform circular 0..359.
//   - A3 ("slope"): right-skewed, positively correlated with A1.
//   - A4, A5 ("distances"): exponential-ish long tails.
//   - A6..: hillshade-like, bounded 0..254, correlated with A2 and with
//     each other.
//
// The correlations are what make the independence baseline err in the
// Figure 4 comparison.
func Forest(cfg ForestConfig) (*table.Table, error) {
	if cfg.Rows < 1 {
		return nil, fmt.Errorf("dataset: Rows = %d, want >= 1", cfg.Rows)
	}
	if cfg.QuantAttrs < 3 {
		return nil, fmt.Errorf("dataset: QuantAttrs = %d, want >= 3", cfg.QuantAttrs)
	}
	if cfg.BinaryAttrs < 0 {
		return nil, fmt.Errorf("dataset: BinaryAttrs = %d, want >= 0", cfg.BinaryAttrs)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Rows

	cols := make([][]int64, cfg.QuantAttrs)
	for i := range cols {
		cols[i] = make([]int64, n)
	}

	for r := 0; r < n; r++ {
		// Two latent terrain factors shared by every quantitative
		// attribute. The shared factors are what give the dataset its
		// strong cross-attribute correlations — the property that makes
		// independence-assumption estimators err (Figure 4).
		z1 := rng.NormFloat64() // "terrain" factor
		z2 := rng.NormFloat64() // "orientation" factor

		// A1: elevation, three modes around 2100/2800/3300 m selected by
		// the terrain factor (multimodal skew).
		var elev float64
		switch {
		case z1 < -0.2:
			elev = 2100 + z1*150 + rng.NormFloat64()*25
		case z1 < 1.0:
			elev = 2800 + z1*180 + rng.NormFloat64()*30
		default:
			elev = 3300 + (z1-1)*120 + rng.NormFloat64()*20
		}
		elev = clamp(elev, 1200, 3900)
		cols[0][r] = int64(elev)

		// A2: aspect, driven by the orientation factor (wrapped).
		aspect := math.Mod(180+z2*80+rng.NormFloat64()*10+360, 360)
		cols[1][r] = int64(aspect)

		// A3: slope, right-skewed, strongly tied to the terrain factor.
		slope := 18 + z1*9 + math.Abs(rng.NormFloat64())*2
		cols[2][r] = int64(clamp(slope, 0, 60))

		// Remaining quantitative attributes: alternate between long-tail
		// distances (terrain-driven) and hillshades (orientation-driven),
		// all sharing the two latent factors.
		for q := 3; q < cfg.QuantAttrs; q++ {
			if q%2 == 1 {
				// Distance-like: long tail whose scale follows the terrain
				// factor, so distances co-vary with elevation and slope.
				d := math.Exp(5.2-0.7*z1+0.22*rng.NormFloat64()) - 60
				cols[q][r] = int64(clamp(d, 0, 3000))
			} else {
				// Hillshade-like: bounded, driven by the orientation factor
				// with per-attribute phase, plus a slope dimming term.
				phase := float64(q) * 0.9
				shade := 180 + 60*math.Cos(z2+phase) - slope + rng.NormFloat64()*3
				cols[q][r] = int64(clamp(shade, 0, 254))
			}
		}
	}

	t := table.New("forest")
	for q := 0; q < cfg.QuantAttrs; q++ {
		t.MustAddColumn(table.NewColumn(fmt.Sprintf("A%d", q+1), cols[q]))
	}

	// Binary indicator blocks (wilderness/soil style): each indicator fires
	// for an elevation band plus noise, so binaries correlate with A1.
	for b := 0; b < cfg.BinaryAttrs; b++ {
		vals := make([]int64, n)
		lo := 1200 + float64(b)*(2700/float64(cfg.BinaryAttrs+1))
		hi := lo + 900
		for r := 0; r < n; r++ {
			e := float64(cols[0][r])
			if (e >= lo && e <= hi) != (rng.Float64() < 0.03) {
				vals[r] = 1
			}
		}
		t.MustAddColumn(table.NewColumn(fmt.Sprintf("A%d", cfg.QuantAttrs+b+1), vals))
	}
	return t, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
