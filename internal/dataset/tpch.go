package dataset

import (
	"fmt"
	"math/rand"

	"qfe/internal/table"
)

// TPCHConfig configures the TPC-H-shaped Orders generator — the table of
// the paper's running mixed-query example below Definition 3.3 ("orders
// from either 1994 or 1996, ... either in progress or finished, with a
// price range").
type TPCHConfig struct {
	// Rows is the Orders row count (TPC-H SF1 has 1.5M).
	Rows int
	// Seed drives generation.
	Seed int64
}

// DefaultTPCHConfig is sized for examples and tests.
func DefaultTPCHConfig() TPCHConfig { return TPCHConfig{Rows: 50_000, Seed: 19940704} }

// EncodeDate packs a calendar date into the integer yyyymmdd encoding the
// generated o_orderdate column uses, so the paper's date predicates
// ("o_orderdate >= '1994-01'") translate directly to integer literals
// (19940101). The encoding is order-preserving; its impossible gaps
// (month 13..99 etc.) are exactly the kind of skew the equi-depth
// partitioner of internal/histogram absorbs.
func EncodeDate(year, month, day int) int64 {
	return int64(year)*10_000 + int64(month)*100 + int64(day)
}

// TPCHOrders generates the Orders table with the columns the paper's
// example queries touch:
//
//   - o_orderdate: integer yyyymmdd over 1992-01-01 .. 1998-12-31, denser
//     in later years;
//   - o_orderstatus: dictionary-encoded {'F', 'O', 'P'} with TPC-H-like
//     proportions (F≈49%, O≈49%, P≈2%) — and correlated with the date:
//     old orders are almost always finished;
//   - o_totalprice: long-tailed integer prices (units of 1);
//   - o_orderpriority: small categorical 1..5.
func TPCHOrders(cfg TPCHConfig) (*table.Table, error) {
	if cfg.Rows < 1 {
		return nil, fmt.Errorf("dataset: Rows = %d, want >= 1", cfg.Rows)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Rows

	dates := make([]int64, n)
	status := make([]string, n)
	price := make([]int64, n)
	prio := make([]int64, n)

	daysIn := func(month int) int {
		switch month {
		case 2:
			return 28
		case 4, 6, 9, 11:
			return 30
		}
		return 31
	}

	for i := 0; i < n; i++ {
		// Later years denser: year index from a square-rooted uniform.
		yr := 1992 + int(rng.Float64()*rng.Float64()*7)
		if yr > 1998 {
			yr = 1998
		}
		// Bias toward later years by mirroring: sqrt-law on the offset.
		yr = 1998 - (yr - 1992)
		mo := 1 + rng.Intn(12)
		dy := 1 + rng.Intn(daysIn(mo))
		dates[i] = EncodeDate(yr, mo, dy)

		// Status correlated with age: pre-1996 orders are finished with
		// high probability; recent ones split between open and finished,
		// with a small in-progress share.
		r := rng.Float64()
		switch {
		case yr < 1996:
			if r < 0.96 {
				status[i] = "F"
			} else if r < 0.98 {
				status[i] = "O"
			} else {
				status[i] = "P"
			}
		default:
			if r < 0.25 {
				status[i] = "F"
			} else if r < 0.97 {
				status[i] = "O"
			} else {
				status[i] = "P"
			}
		}

		// Price: log-normal-ish long tail around a few thousand.
		p := int64(900 + rng.ExpFloat64()*3_000)
		if p > 60_000 {
			p = 60_000
		}
		price[i] = p
		prio[i] = int64(1 + rng.Intn(5))
	}

	t := table.New("orders")
	t.MustAddColumn(table.NewColumn("o_orderdate", dates))
	t.MustAddColumn(table.NewStringColumn("o_orderstatus", status))
	t.MustAddColumn(table.NewColumn("o_totalprice", price))
	t.MustAddColumn(table.NewColumn("o_orderpriority", prio))
	return t, nil
}
