//go:build !race

package testutil

// RaceEnabled reports whether the race detector is compiled in; see race.go.
const RaceEnabled = false
