//go:build race

package testutil

// RaceEnabled reports whether the race detector is compiled in. Strict
// allocation-count tests skip under it: race instrumentation defeats
// sync.Pool's per-P caches, so pooled paths that are allocation-free in
// normal builds report spurious allocations.
const RaceEnabled = true
