package testutil

import (
	"strings"
	"testing"
	"time"
)

// recorder satisfies VerifyNoLeaks's constraint while capturing failures,
// so the checker can be tested for both verdicts without failing this test.
type recorder struct {
	name     string
	cleanups []func()
	failures []string
}

func (r *recorder) Name() string     { return r.name }
func (r *recorder) Helper()          {}
func (r *recorder) Cleanup(f func()) { r.cleanups = append(r.cleanups, f) }
func (r *recorder) Errorf(format string, args ...any) {
	r.failures = append(r.failures, format)
}
func (r *recorder) runCleanups() {
	for i := len(r.cleanups) - 1; i >= 0; i-- {
		r.cleanups[i]()
	}
}

func TestVerifyNoLeaksClean(t *testing.T) {
	rec := &recorder{name: "clean"}
	VerifyNoLeaks(rec)
	done := make(chan struct{})
	go func() { close(done) }() // transient goroutine: finishes before the check
	<-done
	rec.runCleanups()
	if len(rec.failures) != 0 {
		t.Fatalf("clean run flagged as leaking: %v", rec.failures)
	}
}

func TestVerifyNoLeaksDetectsLeak(t *testing.T) {
	rec := &recorder{name: "leaky"}
	VerifyNoLeaks(rec)
	stop := make(chan struct{})
	defer close(stop)
	started := make(chan struct{})
	go leakyWorker(started, stop)
	<-started
	start := time.Now()
	rec.runCleanups()
	if len(rec.failures) != 1 {
		t.Fatalf("leak not detected (failures: %v)", rec.failures)
	}
	if !strings.Contains(rec.failures[0], "leaked") {
		t.Fatalf("failure message %q does not mention a leak", rec.failures[0])
	}
	// The retry window must have been exhausted before declaring the leak.
	if time.Since(start) < 2*time.Second {
		t.Errorf("leak declared after %v, want the full retry window", time.Since(start))
	}
}

// leakyWorker is a module-code goroutine that outlives the test body.
func leakyWorker(started chan<- struct{}, stop <-chan struct{}) {
	close(started)
	<-stop
}
