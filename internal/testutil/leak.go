// Package testutil holds small helpers shared by this repository's tests.
package testutil

import (
	"runtime"
	"strings"
	"sync"
	"time"
)

// VerifyNoLeaks registers a cleanup that fails the test if goroutines
// running this module's code outlive it. Call it FIRST in a test (before
// starting servers, batchers, or supervisors): testing cleanups run LIFO,
// so the leak check executes after every later-registered cleanup has shut
// its component down — exactly the moment all qfe goroutines should be
// gone.
//
// The check is a filtered stack-dump diff, not a bare count: only
// goroutines with a qfe/ frame are considered, so runtime, testing, and
// net/http internals (which keep pool goroutines alive across tests) never
// false-positive. Shutdown is asynchronous — a Close may return before its
// goroutine's final return instruction retires — so the check polls briefly
// before declaring a leak.
func VerifyNoLeaks(t interface {
	Name() string
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}) {
	t.Helper()
	// One check per test: helpers may each call VerifyNoLeaks, but only the
	// first registration counts — it is the outermost cleanup, so it runs
	// after every helper's own shutdown cleanup.
	if _, dup := activeChecks.LoadOrStore(t.Name(), true); dup {
		return
	}
	t.Cleanup(func() {
		defer activeChecks.Delete(t.Name())
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = moduleGoroutines()
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leaked %d goroutine(s) running module code:\n%s",
			len(leaked), strings.Join(leaked, "\n---\n"))
	})
}

// modulePrefix identifies this module's frames in stack traces.
const modulePrefix = "qfe/"

// activeChecks tracks tests that already registered a leak check.
var activeChecks sync.Map

// moduleGoroutines returns the stacks of goroutines (other than the caller's)
// that have a frame inside this module.
func moduleGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for i, st := range strings.Split(string(buf), "\n\n") {
		if i == 0 {
			continue // the first stack is this goroutine, running the check
		}
		if !strings.Contains(st, modulePrefix) {
			continue
		}
		out = append(out, st)
	}
	return out
}
