// Package table implements the in-memory column store that underlies the
// reproduction: typed columns, per-attribute statistics (min, max, distinct
// count), bitmap selection vectors, and CSV import/export.
//
// The paper's QFTs are defined over attributes with known min/max domains
// (Sections 2.1.1 and 3.2); the statistics kept here are exactly the
// metadata a QFT needs. All attribute values are stored as int64: the
// paper's formulas use integer-domain semantics (domain size
// max(A)-min(A)+1), decimal attributes are handled by fixed-point scaling at
// load time, and string attributes by dictionary encoding (Section 6
// discusses the string extension implemented in internal/core).
package table

import (
	"fmt"
	"sort"
	"sync"
)

// Column is a typed, fully materialized attribute of a table.
type Column struct {
	Name string
	// Vals holds the attribute value of every row.
	Vals []int64

	// Dict, when non-nil, marks the column as dictionary-encoded: Vals[i]
	// indexes into Dict. The dictionary is sorted so that code order equals
	// lexicographic order, which keeps range predicates meaningful
	// (Section 6, "String predicates").
	Dict []string

	// statsMu guards the lazily computed statistics below, making the
	// stats accessors safe under concurrent readers (parallel labeling and
	// training read Min/Max/Distinct from many goroutines). Mutating Vals
	// or calling InvalidateStats concurrently with readers remains the
	// caller's responsibility to serialize.
	statsMu    sync.Mutex
	statsValid bool
	min, max   int64
	distinct   int
}

// NewColumn returns a column with the given name and values.
func NewColumn(name string, vals []int64) *Column {
	return &Column{Name: name, Vals: vals}
}

// NewStringColumn dictionary-encodes vals into a column. The dictionary is
// sorted lexicographically, so the resulting integer codes preserve string
// order.
func NewStringColumn(name string, vals []string) *Column {
	uniq := make(map[string]struct{}, len(vals))
	for _, v := range vals {
		uniq[v] = struct{}{}
	}
	dict := make([]string, 0, len(uniq))
	for v := range uniq {
		dict = append(dict, v)
	}
	sort.Strings(dict)
	code := make(map[string]int64, len(dict))
	for i, v := range dict {
		code[v] = int64(i)
	}
	enc := make([]int64, len(vals))
	for i, v := range vals {
		enc[i] = code[v]
	}
	return &Column{Name: name, Vals: enc, Dict: dict}
}

// Len returns the number of rows.
func (c *Column) Len() int { return len(c.Vals) }

// Min returns the minimum value in the column. It panics on empty columns.
func (c *Column) Min() int64 { c.ensureStats(); return c.min }

// Max returns the maximum value in the column. It panics on empty columns.
func (c *Column) Max() int64 { c.ensureStats(); return c.max }

// DomainSize returns max-min+1, the integer domain size the QFT formulas
// divide by (Algorithm 1, line 4).
func (c *Column) DomainSize() int64 { c.ensureStats(); return c.max - c.min + 1 }

// Distinct returns the number of distinct values in the column.
func (c *Column) Distinct() int { c.ensureStats(); return c.distinct }

// Decode returns the string for a dictionary code; for plain integer columns
// it formats the value.
func (c *Column) Decode(v int64) string {
	if c.Dict != nil && v >= 0 && int(v) < len(c.Dict) {
		return c.Dict[int(v)]
	}
	return fmt.Sprintf("%d", v)
}

// InvalidateStats forces statistics to be recomputed on next access. Call it
// after mutating Vals (e.g. when simulating data drift).
func (c *Column) InvalidateStats() {
	c.statsMu.Lock()
	c.statsValid = false
	c.statsMu.Unlock()
}

func (c *Column) ensureStats() {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	if c.statsValid {
		return
	}
	if len(c.Vals) == 0 {
		panic(fmt.Sprintf("table: column %q is empty", c.Name))
	}
	mn, mx := c.Vals[0], c.Vals[0]
	seen := make(map[int64]struct{}, 64)
	for _, v := range c.Vals {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		seen[v] = struct{}{}
	}
	c.min, c.max, c.distinct = mn, mx, len(seen)
	c.statsValid = true
}

// Table is a named collection of equal-length columns.
type Table struct {
	Name string
	cols []*Column
	idx  map[string]int
}

// New returns an empty table with the given name.
func New(name string) *Table {
	return &Table{Name: name, idx: make(map[string]int)}
}

// AddColumn appends col to the table. It returns an error when a column of
// the same name exists or when the column length disagrees with the table.
func (t *Table) AddColumn(col *Column) error {
	if _, dup := t.idx[col.Name]; dup {
		return fmt.Errorf("table %s: duplicate column %q", t.Name, col.Name)
	}
	if len(t.cols) > 0 && col.Len() != t.NumRows() {
		return fmt.Errorf("table %s: column %q has %d rows, want %d",
			t.Name, col.Name, col.Len(), t.NumRows())
	}
	t.idx[col.Name] = len(t.cols)
	t.cols = append(t.cols, col)
	return nil
}

// MustAddColumn is AddColumn but panics on error; intended for generators
// and tests where the schema is static.
func (t *Table) MustAddColumn(col *Column) {
	if err := t.AddColumn(col); err != nil {
		panic(err)
	}
}

// Column returns the column with the given name, or nil when absent.
func (t *Table) Column(name string) *Column {
	if i, ok := t.idx[name]; ok {
		return t.cols[i]
	}
	return nil
}

// Columns returns the table's columns in definition order. The returned
// slice must not be mutated.
func (t *Table) Columns() []*Column { return t.cols }

// ColumnNames returns the column names in definition order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.Name
	}
	return names
}

// NumRows returns the number of rows; 0 for a table without columns.
func (t *Table) NumRows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// DB is a named collection of tables — the "data" component of the paper's
// Equation 1 that the estimators are trained against.
type DB struct {
	tables map[string]*Table
	order  []string
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// Add registers t. It returns an error on duplicate table names.
func (db *DB) Add(t *Table) error {
	if _, dup := db.tables[t.Name]; dup {
		return fmt.Errorf("db: duplicate table %q", t.Name)
	}
	db.tables[t.Name] = t
	db.order = append(db.order, t.Name)
	return nil
}

// MustAdd is Add but panics on error.
func (db *DB) MustAdd(t *Table) {
	if err := db.Add(t); err != nil {
		panic(err)
	}
}

// Table returns the table with the given name, or nil when absent.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// TableNames returns the table names in registration order.
func (db *DB) TableNames() []string { return append([]string(nil), db.order...) }
