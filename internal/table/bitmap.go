package table

import "math/bits"

// Bitmap is a fixed-length selection vector over the rows of a table. Bit i
// is set when row i qualifies. Bitmaps are the unit of predicate evaluation
// in the executor: each simple predicate produces a bitmap, and AND/OR
// combinations reduce to word-wise intersection/union.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an all-zero bitmap over n rows.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// NewFullBitmap returns an all-one bitmap over n rows.
func NewFullBitmap(n int) *Bitmap {
	b := NewBitmap(n)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.clearTail()
	return b
}

// Len returns the number of rows the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

// Set marks row i as qualifying.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear marks row i as not qualifying.
func (b *Bitmap) Clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Get reports whether row i qualifies.
func (b *Bitmap) Get(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// Count returns the number of qualifying rows.
func (b *Bitmap) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// And intersects b with other in place. Both bitmaps must cover the same
// number of rows.
func (b *Bitmap) And(other *Bitmap) {
	b.check(other)
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// Or unions b with other in place.
func (b *Bitmap) Or(other *Bitmap) {
	b.check(other)
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// AndNot removes other's rows from b in place.
func (b *Bitmap) AndNot(other *Bitmap) {
	b.check(other)
	for i := range b.words {
		b.words[i] &^= other.words[i]
	}
}

// Not complements b in place.
func (b *Bitmap) Not() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.clearTail()
}

// Clone returns an independent copy of b.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// Indices returns the qualifying row indices in ascending order.
func (b *Bitmap) Indices() []int {
	out := make([]int, 0, b.Count())
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			out = append(out, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for every qualifying row index in ascending order.
func (b *Bitmap) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

func (b *Bitmap) check(other *Bitmap) {
	if b.n != other.n {
		panic("table: bitmap length mismatch")
	}
}

// clearTail zeroes the unused bits of the last word so Count stays exact.
func (b *Bitmap) clearTail() {
	if rem := b.n & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}
