package table

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestColumnStats(t *testing.T) {
	c := NewColumn("a", []int64{5, -3, 7, 5, 0})
	if c.Min() != -3 {
		t.Errorf("Min = %d, want -3", c.Min())
	}
	if c.Max() != 7 {
		t.Errorf("Max = %d, want 7", c.Max())
	}
	if c.DomainSize() != 11 {
		t.Errorf("DomainSize = %d, want 11", c.DomainSize())
	}
	if c.Distinct() != 4 {
		t.Errorf("Distinct = %d, want 4", c.Distinct())
	}
}

func TestColumnStatsInvalidate(t *testing.T) {
	c := NewColumn("a", []int64{1, 2})
	if c.Max() != 2 {
		t.Fatalf("Max = %d, want 2", c.Max())
	}
	c.Vals[1] = 99
	if c.Max() != 2 {
		t.Fatal("stats should be cached until invalidated")
	}
	c.InvalidateStats()
	if c.Max() != 99 {
		t.Errorf("Max after invalidate = %d, want 99", c.Max())
	}
}

func TestEmptyColumnStatsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty column stats")
		}
	}()
	NewColumn("a", nil).Min()
}

func TestStringColumnPreservesOrder(t *testing.T) {
	c := NewStringColumn("s", []string{"banana", "apple", "cherry", "apple"})
	// Dictionary must be sorted so code order equals lexicographic order.
	for i := 1; i < len(c.Dict); i++ {
		if c.Dict[i-1] >= c.Dict[i] {
			t.Fatalf("dictionary not sorted: %v", c.Dict)
		}
	}
	// apple < banana < cherry must hold on the codes.
	apple, banana, cherry := c.Vals[1], c.Vals[0], c.Vals[2]
	if !(apple < banana && banana < cherry) {
		t.Errorf("codes do not preserve order: apple=%d banana=%d cherry=%d", apple, banana, cherry)
	}
	if c.Vals[1] != c.Vals[3] {
		t.Error("equal strings must share a code")
	}
	if c.Decode(apple) != "apple" {
		t.Errorf("Decode(apple code) = %q", c.Decode(apple))
	}
}

func TestTableColumnManagement(t *testing.T) {
	tbl := New("t")
	tbl.MustAddColumn(NewColumn("a", []int64{1, 2, 3}))
	if err := tbl.AddColumn(NewColumn("a", []int64{4, 5, 6})); err == nil {
		t.Error("expected error for duplicate column name")
	}
	if err := tbl.AddColumn(NewColumn("b", []int64{1})); err == nil {
		t.Error("expected error for row-count mismatch")
	}
	tbl.MustAddColumn(NewColumn("b", []int64{7, 8, 9}))
	if tbl.NumRows() != 3 || tbl.NumCols() != 2 {
		t.Errorf("shape = (%d, %d), want (3, 2)", tbl.NumRows(), tbl.NumCols())
	}
	if tbl.Column("b") == nil || tbl.Column("missing") != nil {
		t.Error("Column lookup misbehaves")
	}
	names := tbl.ColumnNames()
	if names[0] != "a" || names[1] != "b" {
		t.Errorf("ColumnNames = %v", names)
	}
}

func TestDBManagement(t *testing.T) {
	db := NewDB()
	db.MustAdd(New("x"))
	if err := db.Add(New("x")); err == nil {
		t.Error("expected error for duplicate table")
	}
	db.MustAdd(New("y"))
	if got := db.TableNames(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("TableNames = %v", got)
	}
	if db.Table("y") == nil || db.Table("z") != nil {
		t.Error("Table lookup misbehaves")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := New("t")
	tbl.MustAddColumn(NewColumn("id", []int64{1, 2, 3}))
	tbl.MustAddColumn(NewStringColumn("name", []string{"x", "y", "x"}))
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 3 || back.NumCols() != 2 {
		t.Fatalf("round-trip shape = (%d, %d)", back.NumRows(), back.NumCols())
	}
	for r, want := range []string{"x", "y", "x"} {
		if got := back.Column("name").Decode(back.Column("name").Vals[r]); got != want {
			t.Errorf("row %d name = %q, want %q", r, got, want)
		}
	}
	for r, want := range []int64{1, 2, 3} {
		if got := back.Column("id").Vals[r]; got != want {
			t.Errorf("row %d id = %d, want %d", r, got, want)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("")); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := ReadCSV("t", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("expected error for ragged row")
	}
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitmap: len=%d count=%d", b.Len(), b.Count())
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 {
		t.Errorf("Count = %d, want 3", b.Count())
	}
	if !b.Get(64) || b.Get(63) {
		t.Error("Get misbehaves across word boundary")
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Error("Clear misbehaves")
	}
	got := b.Indices()
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Errorf("Indices = %v", got)
	}
}

func TestFullBitmapTail(t *testing.T) {
	// The last partial word must not leak phantom rows into Count.
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129} {
		if got := NewFullBitmap(n).Count(); got != n {
			t.Errorf("NewFullBitmap(%d).Count() = %d", n, got)
		}
	}
}

func TestBitmapNotRespectsTail(t *testing.T) {
	b := NewBitmap(70)
	b.Not()
	if got := b.Count(); got != 70 {
		t.Errorf("Not on empty 70-bitmap: Count = %d, want 70", got)
	}
}

func TestBitmapLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	NewBitmap(10).And(NewBitmap(11))
}

// TestBitmapAgainstBoolSlice cross-checks all bitmap operations against a
// naive []bool model on random inputs.
func TestBitmapAgainstBoolSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a, b := NewBitmap(n), NewBitmap(n)
		ma, mb := make([]bool, n), make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
				ma[i] = true
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
				mb[i] = true
			}
		}
		check := func(op string, bm *Bitmap, model func(x, y bool) bool) {
			t.Helper()
			want := 0
			for i := 0; i < n; i++ {
				if model(ma[i], mb[i]) {
					want++
				}
				if bm.Get(i) != model(ma[i], mb[i]) {
					t.Fatalf("n=%d %s bit %d mismatch", n, op, i)
				}
			}
			if bm.Count() != want {
				t.Fatalf("n=%d %s Count=%d want %d", n, op, bm.Count(), want)
			}
		}
		and := a.Clone()
		and.And(b)
		check("and", and, func(x, y bool) bool { return x && y })
		or := a.Clone()
		or.Or(b)
		check("or", or, func(x, y bool) bool { return x || y })
		andNot := a.Clone()
		andNot.AndNot(b)
		check("andnot", andNot, func(x, y bool) bool { return x && !y })
		not := a.Clone()
		not.Not()
		check("not", not, func(x, _ bool) bool { return !x })
	}
}

func TestBitmapForEachMatchesIndices(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		b := NewBitmap(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		var visited []int
		b.ForEach(func(i int) { visited = append(visited, i) })
		want := b.Indices()
		if len(visited) != len(want) {
			return false
		}
		for i := range want {
			if visited[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
