package table

import (
	"math/rand"
	"testing"
)

// randomBitmap fills a bitmap of length n with random bits and returns the
// reference bool slice alongside it.
func randomBitmap(rng *rand.Rand, n int) (*Bitmap, []bool) {
	bm := NewBitmap(n)
	ref := make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			bm.Set(i)
			ref[i] = true
		}
	}
	return bm, ref
}

// lengths exercises the clearTail edge cases: empty, sub-word, exact word
// multiples, and one-off-from-multiple sizes.
var lengths = []int{0, 1, 3, 63, 64, 65, 127, 128, 129, 1000, 4096, 4097}

// TestBitmapNotProperty: Not must complement every valid bit and never leak
// set bits into the tail padding — Count(b) + Count(¬b) == n for every
// length, including non-multiples of 64.
func TestBitmapNotProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range lengths {
		for trial := 0; trial < 20; trial++ {
			bm, ref := randomBitmap(rng, n)
			before := bm.Count()
			bm.Not()
			if got, want := bm.Count(), n-before; got != want {
				t.Fatalf("n=%d: Count(¬b) = %d, want %d", n, got, want)
			}
			for i := 0; i < n; i++ {
				if bm.Get(i) == ref[i] {
					t.Fatalf("n=%d: bit %d not complemented", n, i)
				}
			}
			// Double complement restores the original exactly.
			bm.Not()
			for i := 0; i < n; i++ {
				if bm.Get(i) != ref[i] {
					t.Fatalf("n=%d: double Not broke bit %d", n, i)
				}
			}
		}
	}
}

// TestFullBitmapTailLengths: NewFullBitmap must count exactly n for tail
// lengths, and stay exact through Not round trips.
func TestFullBitmapTailLengths(t *testing.T) {
	for _, n := range lengths {
		full := NewFullBitmap(n)
		if got := full.Count(); got != n {
			t.Fatalf("n=%d: full count = %d", n, got)
		}
		full.Not()
		if got := full.Count(); got != 0 {
			t.Fatalf("n=%d: ¬full count = %d", n, got)
		}
	}
}

// TestBitmapCountMatchesIndices: Count, Indices, and ForEach must agree on
// every length, and Indices must ascend.
func TestBitmapCountMatchesIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range lengths {
		bm, ref := randomBitmap(rng, n)
		want := 0
		for _, b := range ref {
			if b {
				want++
			}
		}
		if got := bm.Count(); got != want {
			t.Fatalf("n=%d: Count = %d, want %d", n, got, want)
		}
		idx := bm.Indices()
		if len(idx) != want {
			t.Fatalf("n=%d: %d indices, want %d", n, len(idx), want)
		}
		for j := 1; j < len(idx); j++ {
			if idx[j] <= idx[j-1] {
				t.Fatalf("n=%d: indices not ascending at %d", n, j)
			}
		}
		visited := 0
		bm.ForEach(func(i int) {
			if !ref[i] {
				t.Fatalf("n=%d: ForEach visited clear bit %d", n, i)
			}
			visited++
		})
		if visited != want {
			t.Fatalf("n=%d: ForEach visited %d, want %d", n, visited, want)
		}
	}
}

// TestBitmapBooleanAlgebra: And/Or/AndNot against the reference bool-slice
// model on tail-heavy lengths.
func TestBitmapBooleanAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range lengths {
		a, refA := randomBitmap(rng, n)
		b, refB := randomBitmap(rng, n)

		and := a.Clone()
		and.And(b)
		or := a.Clone()
		or.Or(b)
		andNot := a.Clone()
		andNot.AndNot(b)
		for i := 0; i < n; i++ {
			if and.Get(i) != (refA[i] && refB[i]) {
				t.Fatalf("n=%d: And wrong at %d", n, i)
			}
			if or.Get(i) != (refA[i] || refB[i]) {
				t.Fatalf("n=%d: Or wrong at %d", n, i)
			}
			if andNot.Get(i) != (refA[i] && !refB[i]) {
				t.Fatalf("n=%d: AndNot wrong at %d", n, i)
			}
		}
		// De Morgan on the bitmap level: ¬(a ∧ b) == ¬a ∨ ¬b.
		left := a.Clone()
		left.And(b)
		left.Not()
		na, nb := a.Clone(), b.Clone()
		na.Not()
		nb.Not()
		na.Or(nb)
		for i := 0; i < n; i++ {
			if left.Get(i) != na.Get(i) {
				t.Fatalf("n=%d: De Morgan broken at %d", n, i)
			}
		}
		if left.Count() != na.Count() {
			t.Fatalf("n=%d: De Morgan counts differ", n)
		}
	}
}
