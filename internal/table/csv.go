package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the table as CSV with a header row. Dictionary-encoded
// columns are written as their decoded strings.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return fmt.Errorf("table %s: write header: %w", t.Name, err)
	}
	row := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for c, col := range t.cols {
			if col.Dict != nil {
				row[c] = col.Decode(col.Vals[r])
			} else {
				row[c] = strconv.FormatInt(col.Vals[r], 10)
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("table %s: write row %d: %w", t.Name, r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table from CSV. The first row is the header. Columns
// whose every value parses as an integer become plain integer columns;
// anything else is dictionary-encoded as strings.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table %s: read header: %w", name, err)
	}
	names := append([]string(nil), header...)
	raw := make([][]string, len(names))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table %s: read row: %w", name, err)
		}
		if len(rec) != len(names) {
			return nil, fmt.Errorf("table %s: row has %d fields, want %d", name, len(rec), len(names))
		}
		for c, v := range rec {
			raw[c] = append(raw[c], v)
		}
	}
	t := New(name)
	for c, colName := range names {
		if ints, ok := tryParseInts(raw[c]); ok {
			t.MustAddColumn(NewColumn(colName, ints))
		} else {
			t.MustAddColumn(NewStringColumn(colName, raw[c]))
		}
	}
	return t, nil
}

func tryParseInts(vals []string) ([]int64, bool) {
	out := make([]int64, len(vals))
	for i, v := range vals {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, false
		}
		out[i] = n
	}
	return out, true
}
