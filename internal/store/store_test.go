package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustPut(t *testing.T, s *Store, payload string) Generation {
	t.Helper()
	g, err := s.Put("m", "local", "test", []byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPutReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Latest(); ok {
		t.Fatal("empty store reports a latest generation")
	}

	g1 := mustPut(t, s, "payload-one")
	g2 := mustPut(t, s, "payload-two")
	if g1.Number != 1 || g2.Number != 2 {
		t.Fatalf("generation numbers %d, %d, want 1, 2", g1.Number, g2.Number)
	}
	latest, ok := s.Latest()
	if !ok || latest.Number != 2 {
		t.Fatalf("Latest = %+v, %v, want generation 2", latest, ok)
	}
	payload, man, err := s.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "payload-two" {
		t.Errorf("Read payload = %q", payload)
	}
	if man.Name != "m" || man.Kind != "local" || man.Note != "test" || man.PayloadBytes != len("payload-two") {
		t.Errorf("manifest = %+v", man)
	}

	// Reopen: both generations recover, newest wins.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := s2.Recovery(); rep.Valid != 2 || rep.Corrupt != 0 {
		t.Errorf("recovery report = %+v, want 2 valid", rep)
	}
	latest, ok = s2.Latest()
	if !ok || latest.Number != 2 {
		t.Fatalf("reopened Latest = %+v, %v", latest, ok)
	}
	if payload, _, err = s2.Read(1); err != nil || string(payload) != "payload-one" {
		t.Errorf("Read(1) = %q, %v", payload, err)
	}
}

func TestRejectsEmptyPayload(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("m", "local", "", nil); err == nil {
		t.Error("empty payload accepted")
	}
}

// TestAtRestCorruptionRejected flips bytes at every region of a published
// generation — envelope header, payload, manifest — and requires Open to
// reject that generation and fall back to the previous one.
func TestAtRestCorruptionRejected(t *testing.T) {
	for _, target := range []string{snapshotFile, manifestFile} {
		t.Run(target, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			mustPut(t, s, "good-generation")
			mustPut(t, s, "doomed-generation")

			path := filepath.Join(dir, genDirName(2), target)
			orig, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Step through the file so every region (magic, version, length,
			// CRC, payload / JSON fields) gets corrupted in some subtest run.
			step := len(orig)/7 + 1
			for off := 0; off < len(orig); off += step {
				mut := append([]byte(nil), orig...)
				mut[off] ^= 0x40
				if bytes.Equal(mut, orig) {
					continue
				}
				if err := os.WriteFile(path, mut, 0o644); err != nil {
					t.Fatal(err)
				}
				s2, err := Open(dir, Options{})
				if err != nil {
					t.Fatalf("offset %d: Open failed entirely: %v", off, err)
				}
				latest, ok := s2.Latest()
				if !ok || latest.Number != 1 {
					t.Fatalf("offset %d: Latest = %+v, %v, want generation 1", off, latest, ok)
				}
				if payload, _, err := s2.Read(1); err != nil || string(payload) != "good-generation" {
					t.Fatalf("offset %d: Read(1) = %q, %v", off, payload, err)
				}
				if rep := s2.Recovery(); rep.Corrupt != 1 {
					t.Errorf("offset %d: recovery report = %+v, want 1 corrupt", off, rep)
				}
			}
		})
	}
}

// TestTruncatedSnapshotRejected covers torn files shorter than the header.
func TestTruncatedSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "keeper")
	mustPut(t, s, "will-be-torn")
	path := filepath.Join(dir, genDirName(2), snapshotFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, headerSize - 1, headerSize, len(raw) - 1} {
		if err := os.WriteFile(path, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("truncate to %d: %v", n, err)
		}
		if latest, ok := s2.Latest(); !ok || latest.Number != 1 {
			t.Fatalf("truncate to %d: Latest = %+v, %v, want generation 1", n, latest, ok)
		}
	}
}

func TestRetentionGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		mustPut(t, s, fmt.Sprintf("payload-%d", i))
	}
	gens := s.Generations()
	if len(gens) != 2 || gens[0].Number != 4 || gens[1].Number != 5 {
		t.Fatalf("generations after GC = %+v, want [4 5]", gens)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range names {
		dirs = append(dirs, e.Name())
	}
	if len(dirs) != 2 {
		t.Errorf("on-disk dirs = %v, want exactly the 2 retained", dirs)
	}

	// Numbers keep climbing after GC and reopen: no reuse, ever.
	s2, err := Open(dir, Options{Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := mustPut(t, s2, "payload-6")
	if g.Number != 6 {
		t.Errorf("generation after reopen = %d, want 6", g.Number)
	}
}

func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "older")
	mustPut(t, s, "bad-model")

	if err := s.Quarantine(2); err != nil {
		t.Fatal(err)
	}
	if latest, ok := s.Latest(); !ok || latest.Number != 1 {
		t.Fatalf("Latest after quarantine = %+v, %v, want generation 1", latest, ok)
	}
	if _, _, err := s.Read(2); err == nil {
		t.Error("Read of quarantined generation succeeded")
	}
	if err := s.Quarantine(2); !errors.Is(err, ErrUnknownGeneration) {
		t.Errorf("double quarantine = %v, want ErrUnknownGeneration", err)
	}

	// Quarantine survives reopen, and the number is never reused.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := s2.Recovery(); rep.Quarantined != 1 || rep.Valid != 1 {
		t.Errorf("recovery report = %+v, want 1 quarantined / 1 valid", rep)
	}
	if g := mustPut(t, s2, "fresh"); g.Number != 3 {
		t.Errorf("post-quarantine generation = %d, want 3", g.Number)
	}
}

// failRootSyncFS delegates to the real filesystem but fails SyncDir on one
// directory while armed — the "fsync the root after rename" step of Put.
type failRootSyncFS struct {
	FS
	root string
	arm  bool
}

func (f *failRootSyncFS) SyncDir(dir string) error {
	if f.arm && dir == f.root {
		f.arm = false
		return errors.New("injected: root sync failed")
	}
	return f.FS.SyncDir(dir)
}

// TestRootSyncFailureBurnsNumber: when the rename lands but the root fsync
// fails, Put reports the error (the publish is not acked and stays out of
// the valid set) yet the generation number is burned, so a retry publishes
// under a fresh number instead of colliding forever with the directory the
// failed attempt left behind.
func TestRootSyncFailureBurnsNumber(t *testing.T) {
	dir := t.TempDir()
	fsys := &failRootSyncFS{FS: OSFS(), root: dir}
	s, err := Open(dir, Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	g1 := mustPut(t, s, "first")

	fsys.arm = true
	if _, err := s.Put("m", "local", "doomed", []byte("second")); err == nil {
		t.Fatal("Put with failing root sync succeeded")
	}
	// Not acked: the incumbent still leads the valid set.
	if latest, ok := s.Latest(); !ok || latest.Number != g1.Number {
		t.Fatalf("Latest after sync failure = %+v, %v, want generation %d", latest, ok, g1.Number)
	}

	// The retry must take a fresh number — gen-2 exists on disk already.
	g3, err := s.Put("m", "local", "retry", []byte("third"))
	if err != nil {
		t.Fatalf("retry after sync failure: %v", err)
	}
	if g3.Number != 3 {
		t.Fatalf("retry generation = %d, want 3 (number 2 burned by the failed attempt)", g3.Number)
	}
	if payload, _, err := s.Read(g3.Number); err != nil || string(payload) != "third" {
		t.Fatalf("Read(%d) = %q, %v", g3.Number, payload, err)
	}

	// Reopen: the unacked-but-renamed generation 2 is on disk and valid, and
	// the retry stays newest.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := s2.Recovery(); rep.Valid != 3 {
		t.Errorf("recovery report = %+v, want 3 valid", rep)
	}
	if latest, ok := s2.Latest(); !ok || latest.Number != 3 {
		t.Fatalf("reopened Latest = %+v, %v, want generation 3", latest, ok)
	}
}

func TestPrevValid(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "a")
	mustPut(t, s, "b")
	mustPut(t, s, "c")
	if g, ok := s.PrevValid(3); !ok || g.Number != 2 {
		t.Errorf("PrevValid(3) = %+v, %v, want generation 2", g, ok)
	}
	if g, ok := s.PrevValid(2); !ok || g.Number != 1 {
		t.Errorf("PrevValid(2) = %+v, %v, want generation 1", g, ok)
	}
	if _, ok := s.PrevValid(1); ok {
		t.Error("PrevValid(1) found a generation below the first")
	}
}

// TestSweepsTempDirs: a crash mid-Put leaves tmp-gen-N; Open removes it and
// never treats it as publishable.
func TestSweepsTempDirs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "real")
	torn := filepath.Join(dir, tmpPrefix+"00000002")
	if err := os.MkdirAll(torn, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(torn, snapshotFile), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := s2.Recovery(); rep.TempSwept != 1 || rep.Valid != 1 {
		t.Errorf("recovery report = %+v, want 1 swept / 1 valid", rep)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Errorf("temp dir still present after Open (stat err %v)", err)
	}
	// The torn number is burned, never reused: the next publish skips it.
	if g := mustPut(t, s2, "next"); g.Number != 3 {
		t.Errorf("generation after sweep = %d, want 3 (temp number burned)", g.Number)
	}
}

func TestIgnoresForeignDirEntries(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"gen-", "gen-abc", "gen-00", "notes.txt", "gen-7x"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := s.Recovery(); rep.Valid != 0 {
		t.Errorf("recovery report = %+v, want nothing valid", rep)
	}
	if g := mustPut(t, s, "first"); g.Number != 1 {
		t.Errorf("first generation = %d, want 1", g.Number)
	}
}

func TestUnframeErrors(t *testing.T) {
	good := frame([]byte("hello"))
	cases := map[string][]byte{
		"short":       good[:headerSize-2],
		"bad magic":   append([]byte("NOPE"), good[4:]...),
		"bad version": func() []byte { b := append([]byte(nil), good...); b[4] = 99; return b }(),
		"bad length":  func() []byte { b := append([]byte(nil), good...); b[8]++; return b }(),
		"bad crc":     func() []byte { b := append([]byte(nil), good...); b[16]++; return b }(),
		"bad payload": func() []byte { b := append([]byte(nil), good...); b[headerSize]++; return b }(),
	}
	for name, raw := range cases {
		if _, _, err := unframe(raw); err == nil {
			t.Errorf("%s: unframe accepted corrupt envelope", name)
		} else if !strings.Contains(err.Error(), "store:") {
			t.Errorf("%s: error %v lacks package prefix", name, err)
		}
	}
	if payload, _, err := unframe(good); err != nil || string(payload) != "hello" {
		t.Errorf("good envelope: %q, %v", payload, err)
	}
}
