package store

import (
	"os"
	"path/filepath"
)

// FS is the narrow filesystem surface the store writes through. Every
// mutation the store performs — directory creation, durable file writes,
// atomic renames, recursive removal, directory fsyncs — goes through this
// interface, which is what lets the fault-injection layer
// (internal/resilience/faultinject.FS) simulate crashes, torn writes,
// ENOSPC, short reads, and bit-flips deterministically: the store's
// behavior under any prefix of these operations is exactly its behavior
// under a real crash at that point.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// WriteFile creates (or truncates) path, writes data, fsyncs, and
	// closes. Durability of the byte content is this call's contract; the
	// directory entry itself is made durable by SyncDir.
	WriteFile(path string, data []byte) error
	// AppendFile opens (or creates) path for append, writes data at the
	// end, fsyncs, and closes. Success means every byte of data is durable
	// behind whatever the file already held — the feedback journal's batch
	// commit. A failure may leave a durable prefix of data appended (a torn
	// batch), which sequential readers detect by frame checks.
	AppendFile(path string, data []byte) error
	// ReadFile returns the full content of path.
	ReadFile(path string) ([]byte, error)
	// ReadDir returns the names (not paths) of dir's entries.
	ReadDir(dir string) ([]string, error)
	// Rename atomically moves oldPath to newPath (same filesystem).
	Rename(oldPath, newPath string) error
	// RemoveAll deletes path recursively; missing paths are not an error.
	RemoveAll(path string) error
	// SyncDir fsyncs the directory itself, making renames and new entries
	// durable.
	SyncDir(dir string) error
}

// osFS is the real filesystem. It is the default when Options.FS is nil.
type osFS struct{}

// OSFS returns the production filesystem implementation.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) WriteFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (osFS) AppendFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names, nil
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) RemoveAll(path string) error { return os.RemoveAll(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
