package store_test

// Checkpoint slots ride the same fsync+rename machinery as generations, so
// they get the same chaos treatment: crash and torn-write sweeps across
// every mutating operation of a save, plus read-side corruption. The
// invariant is weaker than a generation's (a checkpoint may simply be lost
// — callers restart from scratch) but strictly no torn payload may ever
// read back as valid.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"qfe/internal/resilience/faultinject"
	"qfe/internal/store"
)

func TestCheckpointRoundTrip(t *testing.T) {
	s, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.ReadCheckpoint("job"); ok || err != nil {
		t.Fatalf("ReadCheckpoint on empty store = (ok=%v, err=%v), want (false, nil)", ok, err)
	}
	if err := s.PutCheckpoint("job", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCheckpoint("job", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.ReadCheckpoint("job")
	if err != nil || !ok || !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("ReadCheckpoint = (%q, %v, %v), want (v2, true, nil)", got, ok, err)
	}

	// Checkpoints are invisible to the generation lifecycle.
	if _, ok := s.Latest(); ok {
		t.Fatal("a checkpoint save produced a generation")
	}
	names, err := s.Checkpoints()
	if err != nil || len(names) != 1 || names[0] != "job" {
		t.Fatalf("Checkpoints = (%v, %v), want ([job], nil)", names, err)
	}

	if err := s.ClearCheckpoint("job"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.ReadCheckpoint("job"); ok {
		t.Fatal("checkpoint survived Clear")
	}
	if err := s.ClearCheckpoint("job"); err != nil {
		t.Fatalf("clearing a missing checkpoint = %v, want nil", err)
	}
}

func TestCheckpointNameValidation(t *testing.T) {
	s, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", ".hidden", "a/b", "a b", strings.Repeat("x", 129)} {
		if err := s.PutCheckpoint(name, []byte("p")); !errors.Is(err, store.ErrBadCheckpointName) {
			t.Errorf("PutCheckpoint(%q) = %v, want ErrBadCheckpointName", name, err)
		}
	}
	for _, name := range []string{"job", "re-train.2", "A_9"} {
		if err := s.PutCheckpoint(name, []byte("p")); err != nil {
			t.Errorf("PutCheckpoint(%q) = %v, want nil", name, err)
		}
	}
}

// countCheckpointOps measures the mutating-op budget of Open + one save.
func countCheckpointOps(t *testing.T, dir string) int {
	t.Helper()
	ffs := faultinject.NewFS(nil, faultinject.FSConfig{Kind: faultinject.FSNone})
	s, err := store.Open(dir, store.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutCheckpoint("job", []byte("count")); err != nil {
		t.Fatal(err)
	}
	return ffs.MutatingOps()
}

// TestCheckpointCrashSweep crashes (plain and torn-write) at every mutating
// operation of a checkpoint save over an existing checkpoint. After each
// crash the durable state must be the old payload or the new one — a save
// either happened or it didn't.
func TestCheckpointCrashSweep(t *testing.T) {
	const oldPayload = "durable progress @ epoch 4"
	const newPayload = "durable progress @ epoch 8"

	seed := func() string {
		dir := t.TempDir()
		s, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutCheckpoint("job", []byte(oldPayload)); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	ops := countCheckpointOps(t, seed())
	if ops < 2 {
		t.Fatalf("checkpoint save uses %d mutating ops; the sweep needs at least a write and a rename", ops)
	}
	for _, kind := range []faultinject.FSFaultKind{faultinject.FSCrash, faultinject.FSTornWrite} {
		for op := 1; op <= ops; op++ {
			dir := seed()
			ffs := faultinject.NewFS(nil, faultinject.FSConfig{Seed: int64(op), Kind: kind, Op: op})
			s, err := store.Open(dir, store.Options{FS: ffs})
			acked := false
			if err == nil {
				acked = s.PutCheckpoint("job", []byte(newPayload)) == nil
			}

			// "Reboot": reopen with the real filesystem; torn temps are swept.
			rs, err := store.Open(dir, store.Options{})
			if err != nil {
				t.Fatalf("%v@%d: recovery Open failed: %v", kind, op, err)
			}
			got, ok, err := rs.ReadCheckpoint("job")
			if err != nil {
				t.Fatalf("%v@%d: checkpoint unreadable after crash: %v", kind, op, err)
			}
			if !ok {
				t.Fatalf("%v@%d: pre-existing checkpoint vanished", kind, op)
			}
			switch {
			case acked && string(got) != newPayload:
				t.Fatalf("%v@%d: acked save lost, read %q", kind, op, got)
			case string(got) != oldPayload && string(got) != newPayload:
				t.Fatalf("%v@%d: torn payload read back as valid: %q", kind, op, got)
			}
			// And saving must work again after recovery.
			if err := rs.PutCheckpoint("job", []byte("post-recovery")); err != nil {
				t.Fatalf("%v@%d: save after recovery: %v", kind, op, err)
			}
		}
	}
}

// TestCheckpointCorruptionDetected flips one bit in the framed payload on
// read; the CRC must refuse it rather than hand back corrupt progress.
func TestCheckpointCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutCheckpoint("job", []byte("precious training progress")); err != nil {
		t.Fatal(err)
	}

	for seed := int64(1); seed <= 5; seed++ {
		ffs := faultinject.NewFS(nil, faultinject.FSConfig{Seed: seed, Kind: faultinject.FSBitFlip, Op: 1})
		fs, err := store.Open(dir, store.Options{FS: ffs})
		if err != nil {
			// The flip may land in a generation scan; checkpoints are read
			// lazily so Open itself stays clean in this layout.
			t.Fatalf("seed %d: Open failed: %v", seed, err)
		}
		if _, ok, err := fs.ReadCheckpoint("job"); err == nil && ok {
			t.Fatalf("seed %d: bit-flipped checkpoint read back as valid", seed)
		}
	}
}
