// Package store is the crash-safe snapshot store for trained estimators: a
// generation-numbered directory layout in which a model snapshot becomes
// visible only through an atomic rename, is checksummed inside a versioned
// envelope, and is never modified after publication. The write protocol is
//
//	tmp-gen-N/snapshot.qfes   written + fsync'd   (CRC-framed envelope)
//	tmp-gen-N/MANIFEST.json   written + fsync'd   (CRC-framed metadata)
//	fsync(tmp-gen-N)
//	rename(tmp-gen-N → gen-N)                     (the commit point)
//	fsync(root)
//
// so a crash at any step leaves either the previous generations untouched
// (rename not reached) or a fully durable new generation (rename reached).
// Open recovers by scanning generations newest-first and returning a store
// whose Latest is the newest generation that parses, frames, and checksums
// correctly; torn temp directories are swept, corrupt generations are
// skipped (and counted), and generation numbers are never reused so a
// rolled-back or quarantined generation can never be confused with a fresh
// publish. All filesystem access goes through the FS interface, which the
// chaos suite replaces with a deterministic fault injector.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Envelope framing: a fixed header in front of the payload bytes.
//
//	magic   "QFES"            (4 bytes)
//	version uint32 LE         (envelopeVersion)
//	kind    uint32 LE         (payload kind; version >= 2 only)
//	length  uint64 LE         (payload byte count)
//	crc32c  uint32 LE         (Castagnoli CRC of the payload)
//	payload length bytes
//
// Version 1 envelopes (written before training checkpoints existed) carry
// no kind field and are read as PayloadSnapshot, so stores written by older
// builds keep recovering. The kind keeps the two durable artifact classes —
// published model snapshots and mid-training checkpoints — from ever being
// confused for each other, even if a file is renamed by hand: a checkpoint
// can never be promoted as a generation, and a snapshot can never resume a
// training run.
const (
	envelopeMagic   = "QFES"
	envelopeVersion = 2
	headerSize      = 4 + 4 + 4 + 8 + 4
	headerSizeV1    = 4 + 4 + 8 + 4
)

// Payload kinds carried in the version-2 envelope header.
const (
	// PayloadSnapshot frames a published model snapshot (or its manifest).
	PayloadSnapshot uint32 = 0
	// PayloadCheckpoint frames a resumable training checkpoint.
	PayloadCheckpoint uint32 = 1
	// PayloadJournal frames one feedback-journal record (internal/journal).
	// Journal segments are a concatenation of these frames, so a segment can
	// never be confused with a snapshot or checkpoint even if renamed.
	PayloadJournal uint32 = 2
)

const (
	snapshotFile = "snapshot.qfes"
	manifestFile = "MANIFEST.json"

	genPrefix        = "gen-"
	tmpPrefix        = "tmp-gen-"
	quarantinePrefix = "quarantined-gen-"
	ckptPrefix       = "ckpt-"
	tmpCkptPrefix    = "tmp-ckpt-"

	// manifestFormat guards MANIFEST.json compatibility.
	manifestFormat = 1

	// DefaultRetain is how many valid generations a Put keeps when
	// Options.Retain is zero.
	DefaultRetain = 5
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrUnknownGeneration reports an operation on a generation number that is
// not in the valid set — never published, already quarantined, or GC'd.
var ErrUnknownGeneration = errors.New("store: unknown generation")

// ErrTruncatedFrame reports a frame cut short by the end of its buffer: the
// header or payload extends past the available bytes. For a sequential
// reader (the feedback journal) this is the torn-tail signal — everything
// before the truncated frame is intact, the truncated frame itself was
// never committed — as opposed to the corruption errors (bad magic, CRC
// mismatch), after which nothing downstream can be trusted.
var ErrTruncatedFrame = errors.New("store: frame truncated")

// Manifest is the per-generation metadata, written last inside the temp
// directory so a generation directory always carries a complete manifest.
type Manifest struct {
	Format       int    `json:"format"`
	Generation   uint64 `json:"generation"`
	Name         string `json:"name"`           // model name the snapshot was published under
	Kind         string `json:"kind,omitempty"` // estimator snapshot kind ("local", ...)
	CreatedUnix  int64  `json:"createdUnix"`
	PayloadBytes int    `json:"payloadBytes"`
	CRC32        uint32 `json:"crc32"`
	Note         string `json:"note,omitempty"` // e.g. the canary verdict that admitted it
}

// Generation is one recoverable snapshot.
type Generation struct {
	Number   uint64
	Manifest Manifest
}

// RecoveryReport summarizes what Open found.
type RecoveryReport struct {
	Valid       int // generations that passed framing + checksum
	Corrupt     int // generation directories rejected (torn, mismatched, bit-rotted)
	Quarantined int // generations previously quarantined, skipped
	TempSwept   int // leftover tmp- directories removed
}

// Options configures a store.
type Options struct {
	// Retain is how many newest valid generations survive the GC that runs
	// after each successful Put. 0 means DefaultRetain; negative keeps all.
	Retain int
	// FS overrides the filesystem (fault injection); nil means the real one.
	FS FS
	// Now overrides the clock stamped into manifests; nil means time.Now.
	Now func() time.Time
}

// Store is a handle on one store directory. It is safe for concurrent use;
// writers serialize internally.
type Store struct {
	dir  string
	fs   FS
	opts Options

	mu     sync.Mutex
	gens   []Generation // valid generations, ascending by number
	next   uint64       // next generation number (max ever seen + 1)
	report RecoveryReport
}

// Open scans dir (creating it if missing), sweeps torn temp directories,
// validates every generation newest-first, and returns a store whose
// Latest is the newest valid generation. A directory full of corrupt
// generations still opens — with no valid generations — so a daemon can
// fall back to retraining instead of refusing to start.
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS()
	}
	if opts.Retain == 0 {
		opts.Retain = DefaultRetain
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	s := &Store{dir: dir, fs: fsys, opts: opts, next: 1}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	type candidate struct {
		n    uint64
		name string
	}
	var cands []candidate
	for _, name := range names {
		switch {
		case strings.HasPrefix(name, tmpCkptPrefix):
			// A crash mid-PutCheckpoint left this behind; the committed
			// checkpoint (if any) is untouched under its ckpt- name.
			if err := fsys.RemoveAll(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("store: sweep %s: %w", name, err)
			}
			s.report.TempSwept++
		case strings.HasPrefix(name, tmpPrefix):
			// A crash mid-Put left this behind; it never became visible.
			if err := fsys.RemoveAll(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("store: sweep %s: %w", name, err)
			}
			s.report.TempSwept++
			if n, ok := parseGenNumber(name, tmpPrefix); ok {
				s.bumpNext(n)
			}
		case strings.HasPrefix(name, quarantinePrefix):
			s.report.Quarantined++
			if n, ok := parseGenNumber(name, quarantinePrefix); ok {
				s.bumpNext(n)
			}
		case strings.HasPrefix(name, genPrefix):
			n, ok := parseGenNumber(name, genPrefix)
			if !ok {
				continue
			}
			s.bumpNext(n)
			cands = append(cands, candidate{n: n, name: name})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].n < cands[j].n })
	for _, c := range cands {
		man, err := s.validate(c.n, filepath.Join(dir, c.name))
		if err != nil {
			s.report.Corrupt++
			continue
		}
		s.gens = append(s.gens, Generation{Number: c.n, Manifest: man})
		s.report.Valid++
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Recovery returns what Open found.
func (s *Store) Recovery() RecoveryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// Latest returns the newest valid generation, if any.
func (s *Store) Latest() (Generation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.gens) == 0 {
		return Generation{}, false
	}
	return s.gens[len(s.gens)-1], true
}

// Generations returns the valid generations in ascending order.
func (s *Store) Generations() []Generation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Generation, len(s.gens))
	copy(out, s.gens)
	return out
}

// PrevValid returns the newest valid generation strictly older than number
// — the rollback target when generation number goes bad.
func (s *Store) PrevValid(number uint64) (Generation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.gens) - 1; i >= 0; i-- {
		if s.gens[i].Number < number {
			return s.gens[i], true
		}
	}
	return Generation{}, false
}

// Put durably publishes payload as a new generation and returns it. On any
// error nothing is published: the previous Latest is unchanged and the torn
// temp directory (if one survived) is swept by the next Open. After a
// successful publish, generations beyond the retention horizon are removed
// best-effort.
func (s *Store) Put(name, kind, note string, payload []byte) (Generation, error) {
	if len(payload) == 0 {
		return Generation{}, fmt.Errorf("store: refusing to publish an empty snapshot")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.next
	man := Manifest{
		Format:       manifestFormat,
		Generation:   n,
		Name:         name,
		Kind:         kind,
		CreatedUnix:  s.opts.Now().Unix(),
		PayloadBytes: len(payload),
		CRC32:        crc32.Checksum(payload, crcTable),
		Note:         note,
	}
	manBytes, err := json.Marshal(man)
	if err != nil {
		return Generation{}, fmt.Errorf("store: encode manifest: %w", err)
	}
	manBytes = frame(manBytes) // the manifest gets the same CRC envelope
	tmp := filepath.Join(s.dir, fmt.Sprintf("%s%08d", tmpPrefix, n))
	final := filepath.Join(s.dir, genDirName(n))
	// A leftover tmp dir with this number means a previous in-process Put
	// failed before Open could sweep; clear it so the rename lands clean.
	if err := s.fs.RemoveAll(tmp); err != nil {
		return Generation{}, fmt.Errorf("store: clear stale temp: %w", err)
	}
	if err := s.fs.MkdirAll(tmp); err != nil {
		return Generation{}, fmt.Errorf("store: temp dir: %w", err)
	}
	fail := func(step string, err error) (Generation, error) {
		// Best-effort cleanup; a crashed filesystem leaves the tmp dir for
		// the next Open to sweep.
		s.fs.RemoveAll(tmp) //nolint:errcheck
		return Generation{}, fmt.Errorf("store: %s generation %d: %w", step, n, err)
	}
	if err := s.fs.WriteFile(filepath.Join(tmp, snapshotFile), frame(payload)); err != nil {
		return fail("write snapshot for", err)
	}
	if err := s.fs.WriteFile(filepath.Join(tmp, manifestFile), manBytes); err != nil {
		return fail("write manifest for", err)
	}
	if err := s.fs.SyncDir(tmp); err != nil {
		return fail("sync temp dir for", err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return fail("publish", err)
	}
	// The rename reached the filesystem: gen-N exists on disk from here on,
	// so its number is burned whatever happens next — a retry must never
	// reuse it (the Rename onto the existing directory would fail forever).
	s.next = n + 1
	if err := s.fs.SyncDir(s.dir); err != nil {
		// The rename happened; whether it is durable is now up to the disk.
		// Report the error — callers must not ack an unsynced publish — but
		// do not remove the renamed directory: it may well survive, and
		// recovery validates it like any other. It stays out of the in-memory
		// valid set; a retry publishes under a fresh number.
		return Generation{}, fmt.Errorf("store: sync root after publishing generation %d: %w", n, err)
	}
	gen := Generation{Number: n, Manifest: man}
	s.gens = append(s.gens, gen)
	s.gc()
	return gen, nil
}

// Read returns the payload and manifest of generation number, re-verifying
// the envelope checksum so bit rot after Open is still caught at the last
// moment before a model built from the bytes could serve traffic.
func (s *Store) Read(number uint64) ([]byte, Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.gens {
		if g.Number != number {
			continue
		}
		payload, err := s.readVerified(filepath.Join(s.dir, genDirName(number)), g.Manifest)
		if err != nil {
			return nil, Manifest{}, err
		}
		return payload, g.Manifest, nil
	}
	return nil, Manifest{}, fmt.Errorf("%w: no valid generation %d to read", ErrUnknownGeneration, number)
}

// Quarantine renames generation number to a quarantined-gen directory so no
// future Open or rollback will ever select it again, and drops it from the
// valid set. Quarantining an unknown generation returns an error wrapping
// ErrUnknownGeneration.
func (s *Store) Quarantine(number uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := -1
	for i, g := range s.gens {
		if g.Number == number {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: no valid generation %d to quarantine", ErrUnknownGeneration, number)
	}
	from := filepath.Join(s.dir, genDirName(number))
	to := filepath.Join(s.dir, fmt.Sprintf("%s%08d", quarantinePrefix, number))
	if err := s.fs.Rename(from, to); err != nil {
		return fmt.Errorf("store: quarantine generation %d: %w", number, err)
	}
	s.fs.SyncDir(s.dir) //nolint:errcheck // rename is visible either way
	s.gens = append(s.gens[:idx], s.gens[idx+1:]...)
	return nil
}

// gc removes generations beyond the retention horizon (called with s.mu
// held, best-effort: a failed removal is retried implicitly next time).
func (s *Store) gc() {
	if s.opts.Retain < 0 || len(s.gens) <= s.opts.Retain {
		return
	}
	cut := len(s.gens) - s.opts.Retain
	for _, g := range s.gens[:cut] {
		if err := s.fs.RemoveAll(filepath.Join(s.dir, genDirName(g.Number))); err != nil {
			return // keep the suffix intact; retry on a later Put
		}
	}
	s.gens = append([]Generation(nil), s.gens[cut:]...)
}

// validate checks one generation directory end to end: manifest parse,
// number match, envelope framing, and payload checksum (against both the
// envelope and the manifest).
func (s *Store) validate(n uint64, dir string) (Manifest, error) {
	raw, err := s.fs.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("store: read manifest: %w", err)
	}
	manBytes, _, err := unframe(raw)
	if err != nil {
		return Manifest{}, fmt.Errorf("store: manifest envelope: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(manBytes, &man); err != nil {
		return Manifest{}, fmt.Errorf("store: parse manifest: %w", err)
	}
	if man.Format != manifestFormat {
		return Manifest{}, fmt.Errorf("store: manifest format %d (want %d)", man.Format, manifestFormat)
	}
	if man.Generation != n {
		return Manifest{}, fmt.Errorf("store: manifest generation %d in directory %d", man.Generation, n)
	}
	if _, err := s.readVerified(dir, man); err != nil {
		return Manifest{}, err
	}
	return man, nil
}

// readVerified loads dir's snapshot envelope and returns the payload iff
// framing and checksums hold.
func (s *Store) readVerified(dir string, man Manifest) ([]byte, error) {
	raw, err := s.fs.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	payload, crc, err := unframe(raw)
	if err != nil {
		return nil, err
	}
	if len(payload) != man.PayloadBytes {
		return nil, fmt.Errorf("store: snapshot is %d payload bytes, manifest says %d", len(payload), man.PayloadBytes)
	}
	if crc != man.CRC32 {
		return nil, fmt.Errorf("store: snapshot CRC %08x, manifest says %08x", crc, man.CRC32)
	}
	return payload, nil
}

// frame wraps payload in the checksummed snapshot envelope.
func frame(payload []byte) []byte { return frameKind(PayloadSnapshot, payload) }

// frameKind wraps payload in a version-2 envelope carrying the given kind.
func frameKind(kind uint32, payload []byte) []byte {
	return AppendFrame(make([]byte, 0, headerSize+len(payload)), kind, payload)
}

// AppendFrame appends one version-2 QFES envelope (header + payload) to dst
// and returns the extended slice. Frames written this way back-to-back form
// a valid sequential stream for NextFrame — the feedback journal's segment
// format.
func AppendFrame(dst []byte, kind uint32, payload []byte) []byte {
	var hdr [headerSize]byte
	copy(hdr[0:4], envelopeMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], envelopeVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], kind)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[20:24], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// NextFrame parses the first version-2 envelope in buf, requires its payload
// kind to be wantKind, and returns the payload together with the bytes that
// follow the frame. A frame cut short by the end of buf — header or payload
// — returns an error wrapping ErrTruncatedFrame so sequential readers can
// treat it as a torn tail; every other failure (bad magic, foreign version
// or kind, checksum mismatch, or an absurd declared length) means the bytes
// at the front of buf are not a frame prefix at all.
func NextFrame(buf []byte, wantKind uint32) (payload, rest []byte, err error) {
	if len(buf) >= 4 && string(buf[0:4]) != envelopeMagic {
		return nil, nil, fmt.Errorf("store: bad envelope magic %q", buf[0:4])
	}
	if len(buf) < headerSize {
		return nil, nil, fmt.Errorf("%w: %d header bytes of %d", ErrTruncatedFrame, len(buf), headerSize)
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != envelopeVersion {
		return nil, nil, fmt.Errorf("store: unsupported envelope version %d (want %d)", v, envelopeVersion)
	}
	if kind := binary.LittleEndian.Uint32(buf[8:12]); kind != wantKind {
		return nil, nil, fmt.Errorf("store: envelope carries payload kind %d, want %d", kind, wantKind)
	}
	length := binary.LittleEndian.Uint64(buf[12:20])
	if length > maxFramePayload {
		// A declared length this large is bit rot in the header, not a real
		// record: treating it as truncation would make a torn-tail truncator
		// discard arbitrarily much committed data behind it.
		return nil, nil, fmt.Errorf("store: envelope declares %d payload bytes (limit %d)", length, int(maxFramePayload))
	}
	if uint64(len(buf)-headerSize) < length {
		return nil, nil, fmt.Errorf("%w: %d payload bytes of %d", ErrTruncatedFrame, len(buf)-headerSize, length)
	}
	payload = buf[headerSize : headerSize+length]
	want := binary.LittleEndian.Uint32(buf[20:24])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, nil, fmt.Errorf("store: envelope checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	return payload, buf[headerSize+length:], nil
}

// maxFramePayload bounds a single sequential frame's declared payload (64
// MiB) — far above any journal record, far below anything that could make a
// corrupt length field look like truncation.
const maxFramePayload = 64 << 20

// unframe validates a snapshot envelope and returns the payload and its
// stored CRC.
func unframe(raw []byte) ([]byte, uint32, error) {
	return unframeKind(raw, PayloadSnapshot)
}

// unframeKind validates the envelope, requires its payload kind to be
// wantKind, and returns the payload and its stored CRC. Version-1 envelopes
// carry no kind field and are read as PayloadSnapshot.
func unframeKind(raw []byte, wantKind uint32) ([]byte, uint32, error) {
	if len(raw) < headerSizeV1 {
		return nil, 0, fmt.Errorf("store: envelope truncated at %d bytes (smallest header is %d)", len(raw), headerSizeV1)
	}
	if string(raw[0:4]) != envelopeMagic {
		return nil, 0, fmt.Errorf("store: bad envelope magic %q", raw[0:4])
	}
	var (
		kind    uint32
		length  uint64
		want    uint32
		payload []byte
	)
	switch v := binary.LittleEndian.Uint32(raw[4:8]); v {
	case 1:
		kind = PayloadSnapshot
		length = binary.LittleEndian.Uint64(raw[8:16])
		want = binary.LittleEndian.Uint32(raw[16:20])
		payload = raw[headerSizeV1:]
	case envelopeVersion:
		if len(raw) < headerSize {
			return nil, 0, fmt.Errorf("store: envelope truncated at %d bytes (v2 header is %d)", len(raw), headerSize)
		}
		kind = binary.LittleEndian.Uint32(raw[8:12])
		length = binary.LittleEndian.Uint64(raw[12:20])
		want = binary.LittleEndian.Uint32(raw[20:24])
		payload = raw[headerSize:]
	default:
		return nil, 0, fmt.Errorf("store: unsupported envelope version %d (want <= %d)", v, envelopeVersion)
	}
	if kind != wantKind {
		return nil, 0, fmt.Errorf("store: envelope carries payload kind %d, want %d", kind, wantKind)
	}
	if length != uint64(len(payload)) {
		return nil, 0, fmt.Errorf("store: envelope declares %d payload bytes, file carries %d", length, len(payload))
	}
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, 0, fmt.Errorf("store: envelope checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	return payload, want, nil
}

func (s *Store) bumpNext(n uint64) {
	if n >= s.next {
		s.next = n + 1
	}
}

func genDirName(n uint64) string { return fmt.Sprintf("%s%08d", genPrefix, n) }

// parseGenNumber extracts the generation number from a directory name with
// the given prefix; zero-padded and unpadded forms both parse.
func parseGenNumber(name, prefix string) (uint64, bool) {
	digits := strings.TrimPrefix(name, prefix)
	if digits == "" {
		return 0, false
	}
	var n uint64
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
		if n > 1<<62 {
			return 0, false
		}
	}
	if n == 0 {
		return 0, false
	}
	return n, true
}
