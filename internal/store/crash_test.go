package store_test

// The crash/chaos suite: every filesystem fault kind the fault layer can
// inject — process crash at any operation, torn write, ENOSPC, short read,
// bit-flip — is swept across every operation ordinal of a publish (or
// recovery), and after each injected fault the store must recover to a
// valid generation whose payload reads back bit-identical. The sweep is
// exhaustive over crash points, so the atomic-rename protocol is proved,
// not spot-checked. QFE_SOAK=1 (make soak) widens the sweep with more
// seeds; -short narrows it to one seed.

import (
	"errors"
	"os"
	"testing"

	"qfe/internal/resilience/faultinject"
	"qfe/internal/store"
)

const (
	payloadOld = "old-but-gold generation payload"
	payloadNew = "freshly trained generation payload"
)

// seedSweepWidth picks how many fault seeds each sweep runs.
func seedSweepWidth(t *testing.T) int64 {
	if os.Getenv("QFE_SOAK") != "" {
		return 25
	}
	if testing.Short() {
		return 1
	}
	return 3
}

// seededDir builds a store directory holding one valid generation.
func seededDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("m", "local", "seed", []byte(payloadOld)); err != nil {
		t.Fatal(err)
	}
	return dir
}

// countPublishOps measures the mutating-operation count of Open + one Put,
// which bounds the crash sweep.
func countPublishOps(t *testing.T) int {
	t.Helper()
	ffs := faultinject.NewFS(nil, faultinject.FSConfig{Kind: faultinject.FSNone})
	s, err := store.Open(seededDir(t), store.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("m", "local", "count", []byte(payloadNew)); err != nil {
		t.Fatal(err)
	}
	return ffs.MutatingOps()
}

// verifyRecovered reopens dir with the real filesystem and checks the core
// invariant: a valid generation exists, its payload reads back intact, and
// — when the interrupted publish was acked — the new generation survived.
func verifyRecovered(t *testing.T, dir string, acked bool, tag string) {
	t.Helper()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("%s: recovery Open failed: %v", tag, err)
	}
	latest, ok := s.Latest()
	if !ok {
		t.Fatalf("%s: no valid generation after recovery (report %+v)", tag, s.Recovery())
	}
	payload, _, err := s.Read(latest.Number)
	if err != nil {
		t.Fatalf("%s: Read(%d) after recovery: %v", tag, latest.Number, err)
	}
	switch {
	case acked && string(payload) != payloadNew:
		t.Fatalf("%s: acked publish lost — latest %d carries %q", tag, latest.Number, payload)
	case string(payload) != payloadOld && string(payload) != payloadNew:
		t.Fatalf("%s: latest %d carries corrupt payload %q", tag, latest.Number, payload)
	}
	// Recovery must also be able to publish again: the store self-heals.
	if _, err := s.Put("m", "local", "post-recovery", []byte("after the storm")); err != nil {
		t.Fatalf("%s: publish after recovery: %v", tag, err)
	}
}

// TestCrashSweep kills the filesystem at every mutating operation of a
// publish — with and without a torn partial write at the point of death —
// and requires full recovery every time.
func TestCrashSweep(t *testing.T) {
	ops := countPublishOps(t)
	if ops < 6 {
		t.Fatalf("publish performs only %d mutating ops; protocol shrank?", ops)
	}
	seeds := seedSweepWidth(t)
	for _, kind := range []faultinject.FSFaultKind{faultinject.FSCrash, faultinject.FSTornWrite} {
		t.Run(kind.String(), func(t *testing.T) {
			crashes := 0
			for seed := int64(1); seed <= seeds; seed++ {
				for op := 1; op <= ops; op++ {
					dir := seededDir(t)
					ffs := faultinject.NewFS(nil, faultinject.FSConfig{Seed: seed, Kind: kind, Op: op})
					tag := kind.String() + "@" + string(rune('0'+op))
					acked := false
					s, err := store.Open(dir, store.Options{FS: ffs})
					if err == nil {
						_, perr := s.Put("m", "local", "doomed?", []byte(payloadNew))
						acked = perr == nil
					}
					if ffs.Crashed() {
						crashes++
					}
					verifyRecovered(t, dir, acked, tag)
				}
			}
			if crashes == 0 {
				t.Error("sweep never reached a crash point; ordinals are off")
			}
		})
	}
}

// TestENOSPCSweep fires an out-of-space failure (with a partial write on
// writes) at every mutating operation ordinal, including metadata steps like
// the post-rename root fsync. Unlike a crash the process lives on: the
// failed publish must leave the previous generation serving, and a retry on
// the same open store must succeed — even when the failed attempt already
// renamed its generation into place and burned the number.
func TestENOSPCSweep(t *testing.T) {
	ops := countPublishOps(t)
	seeds := seedSweepWidth(t)
	fired := 0
	for seed := int64(1); seed <= seeds; seed++ {
		for op := 1; op <= ops; op++ {
			dir := seededDir(t)
			ffs := faultinject.NewFS(nil, faultinject.FSConfig{Seed: seed, Kind: faultinject.FSENOSPC, Op: op})
			s, err := store.Open(dir, store.Options{FS: ffs})
			if err != nil {
				// The fault hit Open's own MkdirAll: the store refuses to
				// open, and the directory must be intact for the next try.
				if !errors.Is(err, faultinject.ErrNoSpace) {
					t.Fatalf("op %d: Open = %v, want ErrNoSpace", op, err)
				}
				fired++
				verifyRecovered(t, dir, false, "enospc-open")
				continue
			}
			_, perr := s.Put("m", "local", "first try", []byte(payloadNew))
			if perr != nil {
				if !errors.Is(perr, faultinject.ErrNoSpace) {
					t.Fatalf("op %d: Put failed with %v, want ErrNoSpace", op, perr)
				}
				fired++
				// The incumbent is untouched, in memory and on disk.
				latest, ok := s.Latest()
				if !ok || latest.Number != 1 {
					t.Fatalf("op %d: Latest after ENOSPC = %+v, %v, want generation 1", op, latest, ok)
				}
				if payload, _, err := s.Read(1); err != nil || string(payload) != payloadOld {
					t.Fatalf("op %d: incumbent damaged after ENOSPC: %q, %v", op, payload, err)
				}
			}
			// Space freed (the fault fires once): the retry publishes. When
			// the failed attempt died after its rename (root-sync ENOSPC),
			// this also proves the retry takes a fresh generation number
			// instead of colliding with the directory left behind.
			g, err := s.Put("m", "local", "retry", []byte(payloadNew))
			if err != nil {
				t.Fatalf("op %d: retry after ENOSPC: %v", op, err)
			}
			if payload, _, err := s.Read(g.Number); err != nil || string(payload) != payloadNew {
				t.Fatalf("op %d: retried publish reads %q, %v", op, payload, err)
			}
			verifyRecovered(t, dir, true, "enospc-retry")
		}
	}
	if fired == 0 {
		t.Error("sweep never fired ENOSPC")
	}
}

// TestReadFaultSweep injects short reads and bit-flips into every file read
// a recovery scan performs over a two-generation store. The damaged
// generation must be rejected by the envelope checks and the other one
// must recover with its exact payload.
func TestReadFaultSweep(t *testing.T) {
	// Build a two-generation directory and count recovery reads.
	dir := seededDir(t)
	{
		s, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Put("m", "local", "second", []byte(payloadNew)); err != nil {
			t.Fatal(err)
		}
	}
	counter := faultinject.NewFS(nil, faultinject.FSConfig{Kind: faultinject.FSNone})
	if _, err := store.Open(dir, store.Options{FS: counter}); err != nil {
		t.Fatal(err)
	}
	reads := counter.Reads()
	if reads < 4 {
		t.Fatalf("recovery performed only %d reads over 2 generations", reads)
	}

	seeds := seedSweepWidth(t)
	for _, kind := range []faultinject.FSFaultKind{faultinject.FSShortRead, faultinject.FSBitFlip} {
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(1); seed <= seeds; seed++ {
				for op := 1; op <= reads; op++ {
					ffs := faultinject.NewFS(nil, faultinject.FSConfig{Seed: seed, Kind: kind, Op: op})
					s, err := store.Open(dir, store.Options{FS: ffs})
					if err != nil {
						t.Fatalf("%s op %d: Open: %v", kind, op, err)
					}
					if ffs.Injected() == 0 {
						t.Fatalf("%s op %d: fault never fired in %d reads", kind, op, reads)
					}
					rep := s.Recovery()
					if rep.Valid != 1 || rep.Corrupt != 1 {
						t.Fatalf("%s op %d: report %+v, want exactly 1 valid + 1 corrupt", kind, op, rep)
					}
					latest, ok := s.Latest()
					if !ok {
						t.Fatalf("%s op %d: no generation survived", kind, op)
					}
					want := payloadOld
					if latest.Number == 2 {
						want = payloadNew
					}
					payload, _, err := s.Read(latest.Number)
					if err != nil || string(payload) != want {
						t.Fatalf("%s op %d: surviving generation %d reads %q, %v", kind, op, latest.Number, payload, err)
					}
				}
			}
		})
	}
}
