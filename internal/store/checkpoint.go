package store

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Training checkpoints ride on the store's crash-safety machinery without
// entering the generation lifecycle: a checkpoint is a single CRC-framed
// file (PayloadCheckpoint kind) committed by write-fsync-rename, replaced
// atomically on every save, and invisible to Latest/Recover/Rollback. A
// crashed trainer therefore resumes from the last checkpoint whose rename
// landed; a torn write leaves only a tmp-ckpt- file the next Open sweeps.
//
// Layout:
//
//	tmp-ckpt-<name>   in-flight write (swept at Open)
//	ckpt-<name>       committed checkpoint (the rename target)

// ErrBadCheckpointName rejects checkpoint names that could escape the store
// directory or collide with the generation namespace.
var ErrBadCheckpointName = errors.New("store: bad checkpoint name")

// validateCheckpointName confines names to a single flat, portable token.
func validateCheckpointName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("%w: %q (want 1-128 characters)", ErrBadCheckpointName, name)
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return fmt.Errorf("%w: %q (want [A-Za-z0-9._-])", ErrBadCheckpointName, name)
		}
	}
	if strings.HasPrefix(name, ".") {
		return fmt.Errorf("%w: %q (must not start with a dot)", ErrBadCheckpointName, name)
	}
	return nil
}

// PutCheckpoint durably replaces the named training checkpoint. On any
// error nothing is replaced: the previous checkpoint (if one exists) is
// still the one ReadCheckpoint returns, and a torn temp file is swept by
// the next Open. An error from SyncDir is reported — the rename may not be
// durable — and callers must treat the save as failed.
func (s *Store) PutCheckpoint(name string, payload []byte) error {
	if err := validateCheckpointName(name); err != nil {
		return err
	}
	if len(payload) == 0 {
		return fmt.Errorf("store: refusing to write an empty checkpoint %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := filepath.Join(s.dir, tmpCkptPrefix+name)
	final := filepath.Join(s.dir, ckptPrefix+name)
	if err := s.fs.WriteFile(tmp, frameKind(PayloadCheckpoint, payload)); err != nil {
		s.fs.RemoveAll(tmp) //nolint:errcheck // best-effort; Open sweeps leftovers
		return fmt.Errorf("store: write checkpoint %q: %w", name, err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		s.fs.RemoveAll(tmp) //nolint:errcheck
		return fmt.Errorf("store: commit checkpoint %q: %w", name, err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("store: sync after checkpoint %q: %w", name, err)
	}
	return nil
}

// ReadCheckpoint returns the committed payload of the named checkpoint.
// ok is false when no usable checkpoint exists; err is additionally non-nil
// when a checkpoint file is present but corrupt (bad frame, checksum, or
// kind) — callers should log it and start the work from scratch.
func (s *Store) ReadCheckpoint(name string) (payload []byte, ok bool, err error) {
	if err := validateCheckpointName(name); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, err := s.fs.ReadFile(filepath.Join(s.dir, ckptPrefix+name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: read checkpoint %q: %w", name, err)
	}
	payload, _, err = unframeKind(raw, PayloadCheckpoint)
	if err != nil {
		return nil, false, fmt.Errorf("store: checkpoint %q: %w", name, err)
	}
	return payload, true, nil
}

// ClearCheckpoint removes the named checkpoint; clearing a checkpoint that
// does not exist is not an error (a completed job clears unconditionally).
func (s *Store) ClearCheckpoint(name string) error {
	if err := validateCheckpointName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.fs.RemoveAll(filepath.Join(s.dir, ckptPrefix+name)); err != nil {
		return fmt.Errorf("store: clear checkpoint %q: %w", name, err)
	}
	s.fs.SyncDir(s.dir) //nolint:errcheck // removal is visible either way
	return nil
}

// Checkpoints lists the names of committed checkpoints, sorted.
func (s *Store) Checkpoints() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", s.dir, err)
	}
	var out []string
	for _, n := range names {
		if strings.HasPrefix(n, ckptPrefix) {
			out = append(out, strings.TrimPrefix(n, ckptPrefix))
		}
	}
	sort.Strings(out)
	return out, nil
}
