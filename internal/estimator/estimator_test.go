package estimator

import (
	"math"
	"testing"

	"qfe/internal/catalog"
	"qfe/internal/core"
	"qfe/internal/dataset"
	"qfe/internal/metrics"
	"qfe/internal/ml/gb"
	"qfe/internal/ml/mscn"
	"qfe/internal/ml/nn"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
	"qfe/internal/workload"
)

// testEnv builds a small forest table plus conjunctive train/test workloads
// shared across the integration tests.
type testEnv struct {
	tbl   *table.Table
	db    *table.DB
	train workload.Set
	test  workload.Set
}

var envCache *testEnv

func env(t testing.TB) *testEnv {
	t.Helper()
	if envCache != nil {
		return envCache
	}
	tbl, err := dataset.Forest(dataset.ForestConfig{Rows: 4000, QuantAttrs: 5, BinaryAttrs: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	db := table.NewDB()
	db.MustAdd(tbl)
	set, err := workload.Conjunctive(tbl, workload.ConjConfig{Count: 2500, MaxAttrs: 5, MaxNotEquals: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	train, test := set.Split(2000)
	envCache = &testEnv{tbl: tbl, db: db, train: train, test: test}
	return envCache
}

func smallGB() gb.Config {
	cfg := gb.DefaultConfig()
	cfg.NumTrees = 60
	cfg.MaxDepth = 6
	cfg.Seed = 1
	return cfg
}

func smallNN() nn.Config {
	cfg := nn.DefaultConfig()
	cfg.Hidden = []int{32, 16}
	cfg.Epochs = 25
	cfg.Seed = 1
	return cfg
}

func TestOracleIsPerfect(t *testing.T) {
	e := env(t)
	o := &Oracle{DB: e.db}
	qerrs, err := Evaluate(o, e.test[:50])
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qerrs {
		if q != 1 {
			t.Fatalf("oracle q-error %v at query %d", q, i)
		}
	}
}

func TestIndependenceBaseline(t *testing.T) {
	e := env(t)
	ind := &Independence{DB: e.db}
	s, err := Summarize(ind, e.test)
	if err != nil {
		t.Fatal(err)
	}
	// The baseline must be sane (finite, >= 1) but visibly imperfect on
	// correlated data.
	if s.Median < 1 || math.IsInf(s.Mean, 0) || math.IsNaN(s.Mean) {
		t.Fatalf("degenerate summary: %v", s)
	}
	if s.Max <= 1.01 {
		t.Errorf("independence baseline suspiciously perfect (max q-error %v) on correlated data", s.Max)
	}
}

func TestIndependenceSingleAttrBetterThanMultiAttr(t *testing.T) {
	// Single-attribute queries carry no independence error — only the
	// histogram's discretization — so they must fare much better than
	// multi-attribute queries, where the independence assumption bites.
	e := env(t)
	ind := &Independence{DB: e.db}
	var single, multi []float64
	for _, l := range e.test {
		est, err := ind.Estimate(l.Query)
		if err != nil {
			t.Fatal(err)
		}
		qe := metrics.QError(float64(l.Card), est)
		if sqlparse.NumAttributes(l.Query) == 1 {
			single = append(single, qe)
		} else if sqlparse.NumAttributes(l.Query) >= 3 {
			multi = append(multi, qe)
		}
	}
	if len(single) == 0 || len(multi) == 0 {
		t.Skip("workload lacks one of the groups")
	}
	sm, mm := metrics.Summarize(single).Median, metrics.Summarize(multi).Median
	t.Logf("independence median q-error: 1 attr = %v, >=3 attrs = %v", sm, mm)
	if sm >= mm {
		t.Errorf("single-attr median %v should beat multi-attr median %v", sm, mm)
	}
}

func TestSamplingBaseline(t *testing.T) {
	e := env(t)
	// A generous 10% sample keeps the test stable.
	s := NewSampling(e.db, 0.10, 7)
	qerrs, err := Evaluate(s, e.test[:100])
	if err != nil {
		t.Fatal(err)
	}
	sum := metrics.Summarize(qerrs)
	if sum.Median > 5 {
		t.Errorf("10%% sampling median q-error %v, want modest", sum.Median)
	}
	// Joins unsupported.
	if _, err := s.Estimate(sqlparse.MustParse("SELECT count(*) FROM a, b WHERE a.x = b.y")); err == nil {
		t.Error("sampling baseline should reject join queries")
	}
}

func TestLocalGBConjunctiveBeatsIndependence(t *testing.T) {
	e := env(t)
	loc, err := NewLocal(e.db, LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 32, AttrSel: true},
		NewRegressor: NewGBFactory(smallGB()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.Train(e.train); err != nil {
		t.Fatal(err)
	}
	if loc.NumModels() != 1 {
		t.Fatalf("expected 1 local model, got %d", loc.NumModels())
	}
	// The Figure 4 effect: the independence assumption compounds with the
	// number of attributes, so the learned estimator must win on the
	// multi-attribute queries (>= 3 attrs at this miniature scale).
	var multi workload.Set
	for _, l := range e.test {
		if sqlparse.NumAttributes(l.Query) >= 3 {
			multi = append(multi, l)
		}
	}
	gbSum, err := Summarize(loc, multi)
	if err != nil {
		t.Fatal(err)
	}
	indSum, err := Summarize(&Independence{DB: e.db}, multi)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf(">=3 attrs: GB+conj: %v  |  independence: %v", gbSum, indSum)
	if gbSum.Median >= indSum.Median {
		t.Errorf("GB+conj median %v should beat independence median %v on multi-attribute queries", gbSum.Median, indSum.Median)
	}
	if gbSum.Median > 3 {
		t.Errorf("GB+conj median %v unexpectedly high", gbSum.Median)
	}
	if loc.MemoryBytes() <= 0 {
		t.Error("MemoryBytes not positive after training")
	}
}

func TestLocalConjunctiveBeatsSimple(t *testing.T) {
	// The paper's headline effect at miniature scale: with multiple
	// predicates per attribute, Universal Conjunction Encoding must beat
	// Singular Predicate Encoding under the same model.
	e := env(t)
	run := func(qft string) metrics.Summary {
		loc, err := NewLocal(e.db, LocalConfig{
			QFT:          qft,
			Opts:         core.Options{MaxEntriesPerAttr: 32, AttrSel: true},
			NewRegressor: NewGBFactory(smallGB()),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := loc.Train(e.train); err != nil {
			t.Fatal(err)
		}
		s, err := Summarize(loc, e.test)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	conj := run("conjunctive")
	simple := run("simple")
	t.Logf("conjunctive: %v  |  simple: %v", conj, simple)
	if conj.Mean >= simple.Mean {
		t.Errorf("conjunctive mean %v should beat simple mean %v", conj.Mean, simple.Mean)
	}
}

func TestLocalComplexOnMixedWorkload(t *testing.T) {
	e := env(t)
	mixed, err := workload.Mixed(e.tbl, workload.MixedConfig{
		ConjConfig:  workload.ConjConfig{Count: 600, MaxAttrs: 3, MaxNotEquals: 2, Seed: 9},
		MaxBranches: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test := mixed.Split(450)
	loc, err := NewLocal(e.db, LocalConfig{
		QFT:          "complex",
		Opts:         core.Options{MaxEntriesPerAttr: 32, AttrSel: true},
		NewRegressor: NewGBFactory(smallGB()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.Train(train); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(loc, test)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("GB+complex on mixed: %v", s)
	if s.Median > 4 {
		t.Errorf("GB+complex median %v on mixed workload, want < 4", s.Median)
	}
	// The conjunctive-only QFTs must refuse the mixed workload.
	conjLoc, err := NewLocal(e.db, LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 32, AttrSel: true},
		NewRegressor: NewGBFactory(smallGB()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := conjLoc.Train(train); err == nil {
		t.Error("conjunctive QFT should reject disjunctive training queries")
	}
}

func TestLocalNN(t *testing.T) {
	e := env(t)
	loc, err := NewLocal(e.db, LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 16, AttrSel: true},
		NewRegressor: NewNNFactory(smallNN()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.Train(e.train); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(loc, e.test)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("NN+conj: %v", s)
	if s.Median > 10 {
		t.Errorf("NN+conj median %v, want < 10", s.Median)
	}
}

func TestEstimateUnknownSubSchema(t *testing.T) {
	e := env(t)
	loc, err := NewLocal(e.db, LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 8, AttrSel: false},
		NewRegressor: NewGBFactory(smallGB()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.Train(e.train); err != nil {
		t.Fatal(err)
	}
	if _, err := loc.Estimate(sqlparse.MustParse("SELECT count(*) FROM unknown")); err == nil {
		t.Error("expected error for untrained sub-schema")
	}
}

func TestLocalJoinsAndGlobalAndMSCN(t *testing.T) {
	// One end-to-end pass over the join stack: IMDb star schema, training
	// workload, JOB-light-style suite; local GB, global GB, MSCN original
	// and modified. Tiny sizes — correctness of plumbing, not accuracy.
	db, err := dataset.IMDB(dataset.IMDBConfig{Titles: 600, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	schema := dataset.IMDBSchema()
	trainCfg := workload.DefaultJOBLightConfig()
	trainCfg.Count = 400
	trainCfg.Seed = 11
	train, err := workload.JoinTraining(db, schema, trainCfg)
	if err != nil {
		t.Fatal(err)
	}
	testCfg := workload.DefaultJOBLightConfig()
	testCfg.Count = 25
	testCfg.Seed = 12
	test, err := workload.JOBLight(db, schema, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Keep only test queries whose sub-schema also occurs in training, the
	// local-model contract.
	trained := map[string]bool{}
	for _, l := range train {
		trained[catalog.SubSchemaKey(l.Query.Tables)] = true
	}
	var routable workload.Set
	for _, l := range test {
		if trained[catalog.SubSchemaKey(l.Query.Tables)] {
			routable = append(routable, l)
		}
	}
	if len(routable) == 0 {
		t.Fatal("no routable test queries; training workload too small")
	}

	opts := core.Options{MaxEntriesPerAttr: 16, AttrSel: true}

	loc, err := NewLocal(db, LocalConfig{QFT: "conjunctive", Opts: opts, NewRegressor: NewGBFactory(smallGB())})
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.Train(train); err != nil {
		t.Fatal(err)
	}
	if loc.NumModels() < 2 {
		t.Errorf("expected several sub-schema models, got %d", loc.NumModels())
	}
	locSum, err := Summarize(loc, routable)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("local GB+conj on joins: %v (models: %d)", locSum, loc.NumModels())
	if math.IsNaN(locSum.Mean) || locSum.Median < 1 {
		t.Fatalf("degenerate local summary %v", locSum)
	}

	glob, err := NewGlobal(db, schema, "conjunctive", opts, NewGBFactory(smallGB()), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := glob.Train(train); err != nil {
		t.Fatal(err)
	}
	globSum, err := Summarize(glob, test)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("global GB+conj on joins: %v", globSum)

	mcfg := mscn.DefaultConfig()
	mcfg.Epochs = 10
	mcfg.HiddenSet = 16
	mcfg.HiddenOut = 32
	for _, mode := range []core.MSCNMode{core.MSCNOriginal, core.MSCNPerAttribute} {
		est, err := NewMSCN(db, schema, mode, opts, mcfg, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := est.Train(train); err != nil {
			t.Fatal(err)
		}
		sum, err := Summarize(est, test)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s on joins: %v", est.Name(), sum)
		if math.IsNaN(sum.Mean) || sum.Median < 1 {
			t.Fatalf("degenerate MSCN summary %v", sum)
		}
		if est.MemoryBytes() <= 0 {
			t.Error("MSCN MemoryBytes not positive")
		}
	}
}

func TestMSCNRejectsEstimateBeforeTrain(t *testing.T) {
	db, err := dataset.IMDB(dataset.IMDBConfig{Titles: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewMSCN(db, dataset.IMDBSchema(), core.MSCNOriginal, core.DefaultOptions(), mscn.DefaultConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Estimate(sqlparse.MustParse("SELECT count(*) FROM title")); err == nil {
		t.Error("expected error before Train")
	}
}

func TestLabelTransformRoundTrip(t *testing.T) {
	tr := labelTransform{}
	for _, card := range []float64{1, 2, 10, 1e6} {
		got := tr.inverse(tr.forward(card))
		if math.Abs(got-card)/card > 1e-9 {
			t.Errorf("round trip %v -> %v", card, got)
		}
	}
	if tr.inverse(-100) != 1 {
		t.Error("negative predictions must clamp to 1")
	}
	if tr.inverse(1e9) <= 0 || math.IsInf(tr.inverse(1e9), 0) {
		t.Error("huge predictions must stay finite")
	}
	raw := labelTransform{raw: true}
	if raw.forward(123) != 123 || raw.inverse(123) != 123 {
		t.Error("raw transform must be identity above 1")
	}
}

func TestFactoryByName(t *testing.T) {
	if _, err := FactoryByName("GB", gb.DefaultConfig(), nn.DefaultConfig()); err != nil {
		t.Error(err)
	}
	if _, err := FactoryByName("nn", gb.DefaultConfig(), nn.DefaultConfig()); err != nil {
		t.Error(err)
	}
	if _, err := FactoryByName("svm", gb.DefaultConfig(), nn.DefaultConfig()); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestNewLocalValidation(t *testing.T) {
	e := env(t)
	if _, err := NewLocal(e.db, LocalConfig{QFT: "conjunctive"}); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := NewLocal(e.db, LocalConfig{QFT: "nope", NewRegressor: NewGBFactory(smallGB())}); err == nil {
		t.Error("unknown QFT accepted")
	}
}

func TestZeroOptionsGetPaperDefaults(t *testing.T) {
	e := env(t)
	loc, err := NewLocal(e.db, LocalConfig{
		QFT:          "conjunctive",
		NewRegressor: NewGBFactory(smallGB()),
		// Opts left zero: MaxEntriesPerAttr must default to 64, not 1.
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.Train(e.train[:300]); err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(loc, e.test[:100])
	if err != nil {
		t.Fatal(err)
	}
	// With one partition per attribute the median would be far worse; 64
	// entries keep it in the usual band.
	if sum.Median > 4 {
		t.Errorf("zero-options median %v; defaults not applied?", sum.Median)
	}
}
