package estimator

import (
	"bytes"
	"strings"
	"testing"

	"qfe/internal/core"
	"qfe/internal/workload"
)

func TestSaveLoadLocalGB(t *testing.T) {
	e := env(t)
	loc, err := NewLocal(e.db, LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 16, AttrSel: true},
		NewRegressor: NewGBFactory(smallGB()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.Train(e.train[:500]); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := loc.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLocal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != loc.Name() {
		t.Errorf("restored Name = %q, want %q", back.Name(), loc.Name())
	}
	if back.NumModels() != loc.NumModels() {
		t.Errorf("restored NumModels = %d, want %d", back.NumModels(), loc.NumModels())
	}
	// Restored estimates must be bit-identical — no table access needed.
	for _, l := range e.test[:50] {
		want, err := loc.Estimate(l.Query)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Estimate(l.Query)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("restored estimate %v != original %v for %s", got, want, l.Query)
		}
	}
}

func TestSaveLoadLocalNN(t *testing.T) {
	e := env(t)
	loc, err := NewLocal(e.db, LocalConfig{
		QFT:          "range",
		Opts:         core.Options{MaxEntriesPerAttr: 16, AttrSel: false},
		NewRegressor: NewNNFactory(smallNN()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.Train(e.train[:400]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := loc.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLocal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range e.test[:30] {
		want, err := loc.Estimate(l.Query)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Estimate(l.Query)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("restored NN estimate %v != original %v", got, want)
		}
	}
}

func TestSaveUntrained(t *testing.T) {
	e := env(t)
	loc, err := NewLocal(e.db, LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 8, AttrSel: false},
		NewRegressor: NewGBFactory(smallGB()),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	// Saving an untrained estimator is fine (no models), and loading it
	// yields an estimator that errors on Estimate.
	if err := loc.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLocal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumModels() != 0 {
		t.Errorf("untrained round trip has %d models", back.NumModels())
	}
}

func TestLoadLocalErrors(t *testing.T) {
	if _, err := LoadLocal(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadLocal(strings.NewReader(`{"format":99}`)); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := LoadLocal(strings.NewReader(`{"format":1,"qft":"conjunctive","modelType":"SVM"}`)); err == nil {
		t.Error("unknown model type accepted")
	}
	if _, err := LoadLocal(strings.NewReader(`{"format":1,"qft":"bogus","modelType":"GB"}`)); err == nil {
		t.Error("unknown QFT accepted only at model build; must fail on use")
	}
}

// TestFileWorkloadJourney exercises the full downstream-user journey:
// generate + label a workload, write it to the textual workload format,
// read it back, train from the file-loaded queries, persist the trained
// estimator, reload it, and estimate — the offline-train / online-estimate
// deployment the package is built for.
func TestFileWorkloadJourney(t *testing.T) {
	e := env(t)

	var wl bytes.Buffer
	if err := workload.WriteSet(&wl, e.train[:400]); err != nil {
		t.Fatal(err)
	}
	loaded, err := workload.ReadSet(&wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 400 {
		t.Fatalf("loaded %d queries, want 400", len(loaded))
	}

	loc, err := NewLocal(e.db, LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 16, AttrSel: true},
		NewRegressor: NewGBFactory(smallGB()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.Train(loaded); err != nil {
		t.Fatal(err)
	}

	var model bytes.Buffer
	if err := loc.SaveJSON(&model); err != nil {
		t.Fatal(err)
	}
	shipped, err := LoadLocal(&model)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(shipped, e.test[:100])
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("shipped estimator on held-out queries: %v", sum)
	if sum.Median > 5 {
		t.Errorf("shipped estimator median %v, want < 5", sum.Median)
	}
}
