package estimator

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"qfe/internal/core"
	"qfe/internal/workload"
)

func TestSaveLoadLocalGB(t *testing.T) {
	e := env(t)
	loc, err := NewLocal(e.db, LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 16, AttrSel: true},
		NewRegressor: NewGBFactory(smallGB()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.Train(e.train[:500]); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := loc.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLocal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != loc.Name() {
		t.Errorf("restored Name = %q, want %q", back.Name(), loc.Name())
	}
	if back.NumModels() != loc.NumModels() {
		t.Errorf("restored NumModels = %d, want %d", back.NumModels(), loc.NumModels())
	}
	// Restored estimates must be bit-identical — no table access needed.
	for _, l := range e.test[:50] {
		want, err := loc.Estimate(l.Query)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Estimate(l.Query)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("restored estimate %v != original %v for %s", got, want, l.Query)
		}
	}
}

func TestSaveLoadLocalNN(t *testing.T) {
	e := env(t)
	loc, err := NewLocal(e.db, LocalConfig{
		QFT:          "range",
		Opts:         core.Options{MaxEntriesPerAttr: 16, AttrSel: false},
		NewRegressor: NewNNFactory(smallNN()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.Train(e.train[:400]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := loc.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLocal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range e.test[:30] {
		want, err := loc.Estimate(l.Query)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Estimate(l.Query)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("restored NN estimate %v != original %v", got, want)
		}
	}
}

func TestSaveUntrained(t *testing.T) {
	e := env(t)
	loc, err := NewLocal(e.db, LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 8, AttrSel: false},
		NewRegressor: NewGBFactory(smallGB()),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	// Saving an untrained estimator is fine (no models), and loading it
	// yields an estimator that errors on Estimate.
	if err := loc.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLocal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumModels() != 0 {
		t.Errorf("untrained round trip has %d models", back.NumModels())
	}
}

func TestLoadLocalErrors(t *testing.T) {
	if _, err := LoadLocal(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadLocal(strings.NewReader(`{"format":99}`)); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := LoadLocal(strings.NewReader(`{"format":1,"qft":"conjunctive","modelType":"SVM"}`)); err == nil {
		t.Error("unknown model type accepted")
	}
	if _, err := LoadLocal(strings.NewReader(`{"format":1,"qft":"bogus","modelType":"GB"}`)); err == nil {
		t.Error("unknown QFT accepted only at model build; must fail on use")
	}
}

// savedGB trains a small GB-backed local and returns its serialized bytes.
func savedGB(t *testing.T) []byte {
	t.Helper()
	e := env(t)
	loc, err := NewLocal(e.db, LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 16, AttrSel: true},
		NewRegressor: NewGBFactory(smallGB()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.Train(e.train[:400]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := loc.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadLocalRejectsTruncatedFile(t *testing.T) {
	data := savedGB(t)
	// A partial write (disk full, killed process) must fail loudly at every
	// cut point, never yield a silently partial estimator.
	for _, frac := range []float64{0.1, 0.5, 0.9, 0.99} {
		cut := data[:int(float64(len(data))*frac)]
		if _, err := LoadLocal(bytes.NewReader(cut)); err == nil {
			t.Errorf("truncation to %d/%d bytes accepted", len(cut), len(data))
		}
	}
}

func TestLoadLocalRejectsWrongKindPayload(t *testing.T) {
	// An NN weights file relabeled as GB unmarshals "successfully" into a
	// gb.Model with zero trees and zero dim; structural validation must
	// catch it.
	e := env(t)
	loc, err := NewLocal(e.db, LocalConfig{
		QFT:          "range",
		Opts:         core.Options{MaxEntriesPerAttr: 16, AttrSel: false},
		NewRegressor: NewNNFactory(smallNN()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.Train(e.train[:400]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := loc.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	relabeled := strings.Replace(buf.String(), `"modelType":"NN"`, `"modelType":"GB"`, 1)
	if relabeled == buf.String() {
		t.Fatal("relabeling did not apply — saved format changed?")
	}
	if _, err := LoadLocal(strings.NewReader(relabeled)); err == nil {
		t.Fatal("NN payload accepted as a GB model")
	}
}

func TestLoadLocalRejectsCorruptedTreePayload(t *testing.T) {
	data := savedGB(t)
	var s savedLocal
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if len(s.Models) == 0 {
		t.Fatal("saved estimator has no models")
	}
	corruptions := []struct {
		name    string
		payload string
	}{
		{"no trees", `{"cfg":{},"base":1,"trees":[],"dim":3}`},
		{"empty tree", `{"cfg":{},"base":1,"trees":[{"nodes":[]}],"dim":3}`},
		{"dangling child index", `{"cfg":{},"base":1,"dim":3,"trees":[{"nodes":[{"f":0,"t":0.5,"l":7,"r":9}]}]}`},
		{"self-loop child", `{"cfg":{},"base":1,"dim":3,"trees":[{"nodes":[{"f":0,"t":0.5,"l":0,"r":0}]}]}`},
		{"feature out of range", `{"cfg":{},"base":1,"dim":3,"trees":[{"nodes":[{"f":12,"t":0.5,"l":1,"r":2},{"leaf":true,"v":1},{"leaf":true,"v":2}]}]}`},
		{"zero dim", `{"cfg":{},"base":1,"dim":0,"trees":[{"nodes":[{"leaf":true,"v":1}]}]}`},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			damaged := s
			damaged.Models = append([]savedSubSchema(nil), s.Models...)
			damaged.Models[0] = savedSubSchema{Tables: s.Models[0].Tables, Payload: json.RawMessage(c.payload)}
			out, err := json.Marshal(damaged)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := LoadLocal(bytes.NewReader(out)); err == nil {
				t.Errorf("corrupted payload (%s) accepted", c.name)
			}
		})
	}
}

// TestFileWorkloadJourney exercises the full downstream-user journey:
// generate + label a workload, write it to the textual workload format,
// read it back, train from the file-loaded queries, persist the trained
// estimator, reload it, and estimate — the offline-train / online-estimate
// deployment the package is built for.
func TestFileWorkloadJourney(t *testing.T) {
	e := env(t)

	var wl bytes.Buffer
	if err := workload.WriteSet(&wl, e.train[:400]); err != nil {
		t.Fatal(err)
	}
	loaded, err := workload.ReadSet(&wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 400 {
		t.Fatalf("loaded %d queries, want 400", len(loaded))
	}

	loc, err := NewLocal(e.db, LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 16, AttrSel: true},
		NewRegressor: NewGBFactory(smallGB()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := loc.Train(loaded); err != nil {
		t.Fatal(err)
	}

	var model bytes.Buffer
	if err := loc.SaveJSON(&model); err != nil {
		t.Fatal(err)
	}
	shipped, err := LoadLocal(&model)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(shipped, e.test[:100])
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("shipped estimator on held-out queries: %v", sum)
	if sum.Median > 5 {
		t.Errorf("shipped estimator median %v, want < 5", sum.Median)
	}
}
