package estimator

import (
	"fmt"
	"sync"

	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// Independence is the Postgres-style baseline of Section 5.2 ("essentially
// independence assumption", after Selinger et al. [25]). It mirrors how
// PostgreSQL's clauselist_selectivity machinery combines per-clause
// statistics:
//
//   - range clauses use a per-column histogram CDF with linear
//     interpolation inside buckets (PostgreSQL's scalarineqsel);
//   - equality uses 1/n_distinct, inequality its complement (eqsel/neqsel
//     without MCV lists);
//   - a lower+upper bound pair on the same attribute is recognized as one
//     range (PostgreSQL's range-query clause pairing);
//   - everything else multiplies under independence for AND and combines as
//     s1 + s2 - s1*s2 for OR.
//
// Cross-attribute correlations are invisible by construction — the failure
// mode the paper's Figure 4 measures.
type Independence struct {
	DB *table.DB
	// Buckets is the histogram resolution; PostgreSQL's
	// default_statistics_target is 100. Zero means 100.
	Buckets int

	// mu guards the lazily-built stats cache so the estimator is safe for
	// concurrent use (e.g. behind a deadline-enforcing wrapper).
	mu    sync.Mutex
	stats map[string]*colStats
}

// Name implements Estimator.
func (ind *Independence) Name() string { return "Postgres" }

// colStats is the per-column statistics record: an equi-width histogram plus
// the distinct count, gathered once per column on first use (ANALYZE).
type colStats struct {
	min, max int64
	n        int
	distinct int
	counts   []int64 // equi-width buckets over [min, max]
}

func (ind *Independence) statsFor(t *table.Table, colName string) (*colStats, error) {
	key := t.Name + "." + colName
	if ind.stats == nil {
		ind.stats = make(map[string]*colStats)
	}
	if s, ok := ind.stats[key]; ok {
		return s, nil
	}
	col := t.Column(colName)
	if col == nil {
		return nil, fmt.Errorf("estimator: table %q has no column %q", t.Name, colName)
	}
	b := ind.Buckets
	if b <= 0 {
		b = 100
	}
	if d := col.DomainSize(); d < int64(b) {
		b = int(d)
	}
	s := &colStats{min: col.Min(), max: col.Max(), n: col.Len(), distinct: col.Distinct(), counts: make([]int64, b)}
	domain := s.max - s.min + 1
	for _, v := range col.Vals {
		idx := int((v - s.min) * int64(b) / domain)
		s.counts[idx]++
	}
	ind.stats[key] = s
	return s, nil
}

// cdfLE returns the estimated fraction of rows with value <= v, using linear
// interpolation within the containing bucket.
func (s *colStats) cdfLE(v int64) float64 {
	if v < s.min {
		return 0
	}
	if v >= s.max {
		return 1
	}
	b := int64(len(s.counts))
	domain := s.max - s.min + 1
	idx := (v - s.min) * b / domain
	var below int64
	for i := int64(0); i < idx; i++ {
		below += s.counts[i]
	}
	// Bucket idx covers values [lo, hi]; assume uniformity inside.
	lo := s.min + ceilDiv(idx*domain, b)
	hi := s.min + ceilDiv((idx+1)*domain, b) - 1
	frac := 1.0
	if hi > lo {
		frac = float64(v-lo+1) / float64(hi-lo+1)
	}
	return (float64(below) + frac*float64(s.counts[idx])) / float64(s.n)
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 {
		q++
	}
	return q
}

// selPred is the per-clause selectivity (eqsel/neqsel/scalarineqsel).
func (s *colStats) selPred(op sqlparse.CmpOp, val int64) float64 {
	switch op {
	case sqlparse.OpEq:
		if val < s.min || val > s.max {
			return 0
		}
		return 1 / float64(s.distinct)
	case sqlparse.OpNe:
		if val < s.min || val > s.max {
			return 1
		}
		return 1 - 1/float64(s.distinct)
	case sqlparse.OpLe:
		return s.cdfLE(val)
	case sqlparse.OpLt:
		return s.cdfLE(val - 1)
	case sqlparse.OpGe:
		return 1 - s.cdfLE(val-1)
	case sqlparse.OpGt:
		return 1 - s.cdfLE(val)
	}
	return 0.5
}

// selExpr estimates the selectivity of a single-attribute boolean expression
// the way PostgreSQL's clauselist machinery does: conjunctions pair one
// lower and one upper bound into a range and multiply the rest; disjunctions
// fold s1 + s2 - s1*s2.
func (s *colStats) selExpr(expr sqlparse.Expr) float64 {
	switch n := expr.(type) {
	case *sqlparse.Pred:
		return s.selPred(n.Op, n.Val)
	case *sqlparse.Or:
		sel := 0.0
		for _, k := range n.Kids {
			sk := s.selExpr(k)
			sel = sel + sk - sel*sk
		}
		return sel
	case *sqlparse.And:
		sel := 1.0
		var lower, upper *sqlparse.Pred
		for _, k := range n.Kids {
			p, isPred := k.(*sqlparse.Pred)
			if !isPred {
				sel *= s.selExpr(k)
				continue
			}
			switch p.Op {
			case sqlparse.OpGt, sqlparse.OpGe:
				if lower == nil {
					lower = p
					continue
				}
			case sqlparse.OpLt, sqlparse.OpLe:
				if upper == nil {
					upper = p
					continue
				}
			}
			sel *= s.selPred(p.Op, p.Val)
		}
		switch {
		case lower != nil && upper != nil:
			// Range pairing: sel(a <= hi) - sel(a < lo).
			hiSel := s.selPred(upper.Op, upper.Val)
			loBelow := 1 - s.selPred(lower.Op, lower.Val)
			r := hiSel - loBelow
			if r < defaultRangeSel {
				r = defaultRangeSel
			}
			sel *= r
		case lower != nil:
			sel *= s.selPred(lower.Op, lower.Val)
		case upper != nil:
			sel *= s.selPred(upper.Op, upper.Val)
		}
		return sel
	}
	return 0.5
}

// defaultRangeSel mirrors PostgreSQL's DEFAULT_RANGE_INEQ_SEL floor for
// degenerate ranges.
const defaultRangeSel = 0.005

// Estimate implements Estimator.
func (ind *Independence) Estimate(q *sqlparse.Query) (float64, error) {
	ind.mu.Lock()
	defer ind.mu.Unlock()
	perTable, err := splitConjunctsByTable(q)
	if err != nil {
		return 0, err
	}
	est := 1.0
	for _, tn := range q.Tables {
		t := ind.DB.Table(tn)
		if t == nil {
			return 0, fmt.Errorf("estimator: unknown table %q", tn)
		}
		est *= float64(t.NumRows())
		compounds, err := sqlparse.CompoundPredicates(perTable[tn])
		if err != nil {
			return 0, fmt.Errorf("estimator: independence baseline requires per-attribute compounds: %w", err)
		}
		for _, cp := range compounds {
			_, colName := splitTableAttr(cp.Attr, tn)
			stats, err := ind.statsFor(t, colName)
			if err != nil {
				return 0, err
			}
			est *= stats.selExpr(cp.Expr)
		}
	}
	// Join selectivities: 1/max(V(left), V(right)) per equi-join edge
	// (System R).
	for _, j := range q.Joins {
		lt, rt := ind.DB.Table(j.LeftTable), ind.DB.Table(j.RightTable)
		if lt == nil || rt == nil {
			return 0, fmt.Errorf("estimator: join %s references unknown table", j)
		}
		ls, err := ind.statsFor(lt, j.LeftCol)
		if err != nil {
			return 0, err
		}
		rs, err := ind.statsFor(rt, j.RightCol)
		if err != nil {
			return 0, err
		}
		v := ls.distinct
		if rs.distinct > v {
			v = rs.distinct
		}
		if v > 0 {
			est /= float64(v)
		}
	}
	if est < 1 {
		est = 1
	}
	return est, nil
}

func splitTableAttr(attr, deflt string) (tbl, col string) {
	for i := 0; i < len(attr); i++ {
		if attr[i] == '.' {
			return attr[:i], attr[i+1:]
		}
	}
	return deflt, attr
}
