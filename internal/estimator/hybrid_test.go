package estimator

import (
	"testing"

	"qfe/internal/catalog"
	"qfe/internal/core"
	"qfe/internal/dataset"
	"qfe/internal/metrics"
	"qfe/internal/workload"
)

func TestHybridPrunesAndRoutes(t *testing.T) {
	imdb, err := dataset.IMDB(dataset.IMDBConfig{Titles: 600, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	schema := dataset.IMDBSchema()
	train, err := workload.StratifiedJoinTraining(imdb, schema, 25, 3, 5, 77)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultJOBLightConfig()
	cfg.Count = 20
	cfg.MaxJoins = 2
	test, err := workload.JOBLight(imdb, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}

	fallback := &Independence{DB: imdb}
	localCfg := LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 16, AttrSel: true},
		NewRegressor: NewGBFactory(smallGB()),
	}

	// A loose bar prunes everything; a bar of 1 keeps everything.
	loose, err := NewHybrid(imdb, HybridConfig{Local: localCfg, MaxQuantileError: 1e12}, fallback)
	if err != nil {
		t.Fatal(err)
	}
	kept, pruned, err := loose.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 0 || pruned == 0 {
		t.Errorf("loose bar: kept=%d pruned=%d, want 0 kept", kept, pruned)
	}
	if loose.NumModels() != 0 {
		t.Errorf("loose bar trained %d models", loose.NumModels())
	}

	strict, err := NewHybrid(imdb, HybridConfig{Local: localCfg, MaxQuantileError: 1.0}, fallback)
	if err != nil {
		t.Fatal(err)
	}
	kept, pruned, err = strict.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if pruned != 0 || kept == 0 {
		t.Errorf("strict bar: kept=%d pruned=%d, want 0 pruned", kept, pruned)
	}

	// A bar between the best and worst per-sub-schema fallback quality must
	// keep some sub-schemas and prune others. Derive it from the data so
	// the test is robust to workload regeneration.
	perSub := map[string][]float64{}
	for _, l := range train {
		qe, err := Evaluate(fallback, workload.Set{l})
		if err != nil {
			t.Fatal(err)
		}
		key := catalog.SubSchemaKey(l.Query.Tables)
		perSub[key] = append(perSub[key], qe[0])
	}
	var p90s []float64
	for _, qerrs := range perSub {
		p90s = append(p90s, metrics.Quantile(qerrs, 0.9))
	}
	bar := metrics.Quantile(p90s, 0.5)
	if bar < 1 {
		bar = 1
	}

	mid, err := NewHybrid(imdb, HybridConfig{Local: localCfg, MaxQuantileError: bar}, fallback)
	if err != nil {
		t.Fatal(err)
	}
	kept, pruned, err = mid.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("bar=%.2f: kept=%d pruned=%d models=%d", bar, kept, pruned, mid.NumModels())
	if kept == 0 || pruned == 0 {
		t.Fatalf("median bar should split the sub-schemas (kept=%d pruned=%d)", kept, pruned)
	}
	sum, err := Summarize(mid, test)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hybrid on JOB-light-style: %v", sum)
	if sum.Median < 1 {
		t.Errorf("degenerate summary %v", sum)
	}
	// Routing: a pruned sub-schema's estimate must equal the fallback's.
	for _, l := range train {
		key := catalog.SubSchemaKey(l.Query.Tables)
		if mid.modeled[key] {
			continue
		}
		got, err := mid.Estimate(l.Query)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fallback.Estimate(l.Query)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("pruned sub-schema %s did not route to fallback", key)
		}
		break
	}
}

func TestHybridValidation(t *testing.T) {
	imdb, err := dataset.IMDB(dataset.IMDBConfig{Titles: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	localCfg := LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 8, AttrSel: false},
		NewRegressor: NewGBFactory(smallGB()),
	}
	if _, err := NewHybrid(imdb, HybridConfig{Local: localCfg, MaxQuantileError: 2}, nil); err == nil {
		t.Error("nil fallback accepted")
	}
	if _, err := NewHybrid(imdb, HybridConfig{Local: localCfg, MaxQuantileError: 0.5}, &Independence{DB: imdb}); err == nil {
		t.Error("bar below 1 accepted")
	}
	if _, err := NewHybrid(imdb, HybridConfig{Local: localCfg, MaxQuantileError: 2, Quantile: 1.5}, &Independence{DB: imdb}); err == nil {
		t.Error("quantile above 1 accepted")
	}
}
