package estimator

import (
	"context"
	"sync"

	"qfe/internal/sqlparse"
)

// The estimator half of the compiled inference fast path: Local and Global
// featurize into pooled buffers at fixed per-table offsets (FeaturizeInto)
// instead of concatenating appends, and batch estimation fills one reused
// flat matrix per sub-schema and hands it to the regressor's compiled batch
// predict. Outputs are bit-identical to the append-and-Predict path, which
// is kept (featurizeWith, Featurize) as the training encoder and the ground
// truth for the differential tests.

// BatchEstimator is an Estimator with a batch form that amortizes buffer
// reuse and model dispatch across many queries. Results are positional:
// ests[i]/errs[i] belong to qs[i], and exactly one of them is meaningful
// per query. The serve batcher routes coalesced flushes through this when
// the whole batch targets one BatchEstimator.
type BatchEstimator interface {
	Estimator
	EstimateBatch(ctx context.Context, qs []*sqlparse.Query) (ests []float64, errs []error)
}

// batchPredictor is the compiled batch form the built-in regressors gain
// from the flattened/pooled model layouts. Regressors without it fall back
// to per-row Predict inside EstimateBatch.
type batchPredictor interface {
	PredictInto(dst []float64, X [][]float64)
}

// newVecPool pools single-query featurization buffers of a fixed dimension.
func newVecPool(dim int) *sync.Pool {
	return &sync.Pool{New: func() any {
		b := make([]float64, dim)
		return &b
	}}
}

// batchScratch is one reusable batch workspace: a flat row-major matrix,
// row headers slicing into it, the prediction vector, and the mapping from
// matrix row back to the caller's query index (rows that fail featurization
// leave gaps).
type batchScratch struct {
	flat  []float64
	rows  [][]float64
	preds []float64
	idx   []int
}

// resize shapes the scratch for n rows of dim features, growing the backing
// arrays only when a larger batch arrives.
func (sc *batchScratch) resize(n, dim int) {
	if cap(sc.flat) < n*dim {
		sc.flat = make([]float64, n*dim)
	}
	sc.flat = sc.flat[:n*dim]
	if cap(sc.rows) < n {
		sc.rows = make([][]float64, n)
	}
	sc.rows = sc.rows[:n]
	for i := range sc.rows {
		sc.rows[i] = sc.flat[i*dim : (i+1)*dim]
	}
	if cap(sc.preds) < n {
		sc.preds = make([]float64, n)
		sc.idx = make([]int, n)
	}
	sc.preds = sc.preds[:n]
	sc.idx = sc.idx[:n]
}

func newBatchPool() *sync.Pool {
	return &sync.Pool{New: func() any { return new(batchScratch) }}
}

// predictBatch runs the regressor over the first n scratch rows, through the
// compiled batch path when the model has one.
func predictBatch(reg Regressor, sc *batchScratch, n int) {
	if bp, ok := reg.(batchPredictor); ok {
		bp.PredictInto(sc.preds[:n], sc.rows[:n])
		return
	}
	for r := 0; r < n; r++ {
		sc.preds[r] = reg.Predict(sc.rows[r])
	}
}
