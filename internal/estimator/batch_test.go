package estimator

import (
	"context"
	"testing"

	"qfe/internal/catalog"
	"qfe/internal/core"
	"qfe/internal/sqlparse"
)

func trainedLocalGB(t testing.TB) (*Local, *testEnv) {
	t.Helper()
	e := env(t)
	l, err := NewLocal(e.db, LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 16, AttrSel: true},
		NewRegressor: NewGBFactory(smallGB()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Train(e.train[:600]); err != nil {
		t.Fatal(err)
	}
	return l, e
}

// referenceEstimate reproduces the pre-pooling Estimate: append-based
// featurization (featurizeWith) through the same regressor and transform.
func referenceEstimate(t testing.TB, l *Local, q *sqlparse.Query) float64 {
	t.Helper()
	lm := l.models[catalog.SubSchemaKey(q.Tables)]
	if lm == nil {
		t.Fatalf("no model for %v", q.Tables)
	}
	vec, err := l.featurizeWith(lm, q)
	if err != nil {
		t.Fatal(err)
	}
	return l.transform.inverse(lm.reg.Predict(vec))
}

// TestPooledEstimateBitIdentical: the pooled featurize-into path must give
// exactly the estimate the append-based path gives, query for query.
func TestPooledEstimateBitIdentical(t *testing.T) {
	l, e := trainedLocalGB(t)
	for i, lq := range e.test[:200] {
		got, err := l.Estimate(lq.Query)
		if err != nil {
			t.Fatal(err)
		}
		if want := referenceEstimate(t, l, lq.Query); got != want {
			t.Fatalf("query %d: pooled %v != reference %v", i, got, want)
		}
	}
}

// TestLocalEstimateBatchMatchesEstimate: the grouped batch path must agree
// bit for bit with per-query Estimate, and per-query failures must not
// disturb neighbors.
func TestLocalEstimateBatchMatchesEstimate(t *testing.T) {
	l, e := trainedLocalGB(t)
	qs := make([]*sqlparse.Query, 0, 101)
	for _, lq := range e.test[:100] {
		qs = append(qs, lq.Query)
	}
	// An unroutable query in the middle: its slot errors, the rest succeed.
	unknown := sqlparse.MustParse("SELECT count(*) FROM nowhere WHERE x = 1")
	qs = append(qs[:50], append([]*sqlparse.Query{unknown}, qs[50:]...)...)

	ests, errs := l.EstimateBatch(context.Background(), qs)
	for i, q := range qs {
		if q == unknown {
			if errs[i] == nil {
				t.Fatal("unknown sub-schema did not error")
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		want, err := l.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		if ests[i] != want {
			t.Fatalf("query %d: batch %v != single %v", i, ests[i], want)
		}
	}

	// A dead context fails every slot without touching the models.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs = l.EstimateBatch(ctx, qs[:3])
	for i, err := range errs {
		if err == nil {
			t.Fatalf("slot %d survived canceled context", i)
		}
	}
}

// TestGlobalPooledAndBatch: same contract for the global estimator — pooled
// Estimate matches the append-based reference, and EstimateBatch matches
// Estimate.
func TestGlobalPooledAndBatch(t *testing.T) {
	e := env(t)
	schema := &catalog.Schema{Tables: []string{"forest"}}
	g, err := NewGlobal(e.db, schema, "conjunctive",
		core.Options{MaxEntriesPerAttr: 16, AttrSel: true}, NewGBFactory(smallGB()), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Train(e.train[:600]); err != nil {
		t.Fatal(err)
	}
	qs := make([]*sqlparse.Query, 0, 100)
	for _, lq := range e.test[:100] {
		qs = append(qs, lq.Query)
	}
	for i, q := range qs {
		vec, err := g.feat.Featurize(q)
		if err != nil {
			t.Fatal(err)
		}
		want := g.transform.inverse(g.reg.Predict(vec))
		got, err := g.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %d: pooled %v != reference %v", i, got, want)
		}
	}
	ests, errs := g.EstimateBatch(context.Background(), qs)
	for i, q := range qs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		want, err := g.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		if ests[i] != want {
			t.Fatalf("query %d: batch %v != single %v", i, ests[i], want)
		}
	}
}

// TestEstimateSteadyStateAllocs pins the pooled path's per-query allocation
// count so future changes can't silently reintroduce garbage. The remaining
// allocations are query analysis (sub-schema key, per-table predicate
// split), not featurization or inference buffers.
func TestEstimateSteadyStateAllocs(t *testing.T) {
	l, e := trainedLocalGB(t)
	q := e.test[0].Query
	if _, err := l.Estimate(q); err != nil { // warm the pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := l.Estimate(q); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("Local.Estimate allocs/op = %v", allocs)
	if allocs > 48 {
		t.Errorf("Local.Estimate allocs/op = %v, want <= 48 (pooled fast path regressed)", allocs)
	}

	// The batch path shares one matrix and one predict call per sub-schema,
	// so its per-query count must stay below the single-query path.
	qs := make([]*sqlparse.Query, 64)
	for i := range qs {
		qs[i] = e.test[i%100].Query
	}
	l.EstimateBatch(context.Background(), qs)
	allocs = testing.AllocsPerRun(50, func() {
		l.EstimateBatch(context.Background(), qs)
	})
	t.Logf("Local.EstimateBatch(64) allocs/op = %v (%.2f per query)", allocs, allocs/64)
	if allocs/64 > 40 {
		t.Errorf("EstimateBatch allocs per query = %v, want <= 40", allocs/64)
	}
}
