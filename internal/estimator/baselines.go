package estimator

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"qfe/internal/exec"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// Oracle returns the true result cardinality by executing the query — the
// "True cardinalities" column of Table 4 and the labeling reference.
type Oracle struct {
	DB *table.DB
}

// Name implements Estimator.
func (o *Oracle) Name() string { return "True cardinalities" }

// Estimate implements Estimator by exact execution.
func (o *Oracle) Estimate(q *sqlparse.Query) (float64, error) {
	return o.EstimateCtx(context.Background(), q)
}

// EstimateCtx implements ContextEstimator: exact execution is the most
// expensive "estimator" in the system, so it honors deadlines.
func (o *Oracle) EstimateCtx(ctx context.Context, q *sqlparse.Query) (float64, error) {
	c, err := exec.CountCtx(ctx, o.DB, q)
	if err != nil {
		return 0, err
	}
	if c < 1 {
		return 1, nil
	}
	return float64(c), nil
}

// splitConjunctsByTable groups the top-level conjuncts of q.Where by the
// table they reference (the single table for unqualified attributes).
func splitConjunctsByTable(q *sqlparse.Query) (map[string]sqlparse.Expr, error) {
	single := ""
	if len(q.Tables) == 1 {
		single = q.Tables[0]
	}
	byTable := make(map[string][]sqlparse.Expr)
	for _, kid := range sqlparse.Conjuncts(q.Where) {
		tbl := ""
		for _, p := range sqlparse.CollectPreds(kid) {
			pt := tableOfAttr(p.Attr, single)
			if pt == "" {
				return nil, fmt.Errorf("estimator: unqualified attribute %q in multi-table query", p.Attr)
			}
			if tbl == "" {
				tbl = pt
			} else if tbl != pt {
				return nil, fmt.Errorf("estimator: conjunct %q spans tables", kid)
			}
		}
		byTable[tbl] = append(byTable[tbl], kid)
	}
	out := make(map[string]sqlparse.Expr, len(byTable))
	for tn, kids := range byTable {
		out[tn] = sqlparse.NewAnd(kids...)
	}
	return out, nil
}

func tableOfAttr(attr, single string) string {
	for i := 0; i < len(attr); i++ {
		if attr[i] == '.' {
			return attr[:i]
		}
	}
	return single
}

// Sampling is the Bernoulli-sampling baseline of Section 5.2: a fresh
// p-fraction sample of the table is drawn per query, the predicates are
// evaluated exactly on the sample, and the count is scaled by 1/p. Small
// true cardinalities produce the baseline's characteristic tail errors
// (zero sample hits force the minimum estimate of 1).
//
// Only single-table queries are supported, matching the paper's use of the
// baseline on the forest workloads; join sampling would need correlated
// sampling [29], which is out of scope.
type Sampling struct {
	DB *table.DB
	// Fraction is p; the paper uses 0.001 (0.1%).
	Fraction float64
	// Seed makes the sampling deterministic: call i of the estimator draws
	// its sample from an RNG derived from (Seed, i), so a fixed seed still
	// yields a reproducible sequence of estimates. Deriving a fresh RNG per
	// call keeps the table scan lock-free — mu only guards the call
	// counter, so a slow or abandoned scan never blocks concurrent callers
	// and their deadlines stay enforceable.
	Seed int64

	mu    sync.Mutex
	calls int64
}

// NewSampling returns the baseline with the paper's 0.1% default.
func NewSampling(db *table.DB, fraction float64, seed int64) *Sampling {
	if fraction <= 0 || fraction > 1 {
		fraction = 0.001
	}
	return &Sampling{DB: db, Fraction: fraction, Seed: seed}
}

// Name implements Estimator.
func (s *Sampling) Name() string { return "Sampling" }

// Estimate implements Estimator.
func (s *Sampling) Estimate(q *sqlparse.Query) (float64, error) {
	return s.EstimateCtx(context.Background(), q)
}

// EstimateCtx implements ContextEstimator: the per-query table scan checks
// for cancellation every few thousand rows, and runs without holding any
// lock, so concurrent calls proceed independently even while one scan is
// slow or abandoned.
func (s *Sampling) EstimateCtx(ctx context.Context, q *sqlparse.Query) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	// A short critical section derives this call's RNG stream; the scan
	// itself is lock-free.
	s.mu.Lock()
	call := s.calls
	s.calls++
	s.mu.Unlock()
	// SplitMix64-style odd-constant mixing decorrelates adjacent call
	// streams under a shared seed.
	rng := rand.New(rand.NewSource(s.Seed ^ (call+1)*-7046029254386353131))
	if len(q.Tables) != 1 {
		return 0, fmt.Errorf("estimator: sampling baseline supports single-table queries only")
	}
	t := s.DB.Table(q.Tables[0])
	if t == nil {
		return 0, fmt.Errorf("estimator: unknown table %q", q.Tables[0])
	}
	n := t.NumRows()
	hits := 0
	sampled := 0
	for r := 0; r < n; r++ {
		if r%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		if rng.Float64() >= s.Fraction {
			continue
		}
		sampled++
		ok, err := rowQualifies(t, q.Where, r)
		if err != nil {
			return 0, err
		}
		if ok {
			hits++
		}
	}
	est := float64(hits) / s.Fraction
	if est < 1 {
		est = 1
	}
	return est, nil
}

// rowQualifies evaluates expr on a single row of t.
func rowQualifies(t *table.Table, expr sqlparse.Expr, r int) (bool, error) {
	switch n := expr.(type) {
	case nil:
		return true, nil
	case *sqlparse.Pred:
		if n.Str != nil {
			return false, fmt.Errorf("estimator: unbound string predicate %s", n)
		}
		name := n.Attr
		if i := indexByte(name, '.'); i >= 0 {
			name = name[i+1:]
		}
		col := t.Column(name)
		if col == nil {
			return false, fmt.Errorf("estimator: unknown column %q", n.Attr)
		}
		v := col.Vals[r]
		switch n.Op {
		case sqlparse.OpEq:
			return v == n.Val, nil
		case sqlparse.OpNe:
			return v != n.Val, nil
		case sqlparse.OpLt:
			return v < n.Val, nil
		case sqlparse.OpLe:
			return v <= n.Val, nil
		case sqlparse.OpGt:
			return v > n.Val, nil
		case sqlparse.OpGe:
			return v >= n.Val, nil
		}
		return false, fmt.Errorf("estimator: unknown operator in %s", n)
	case *sqlparse.And:
		for _, k := range n.Kids {
			ok, err := rowQualifies(t, k, r)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case *sqlparse.Or:
		for _, k := range n.Kids {
			ok, err := rowQualifies(t, k, r)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
	return false, fmt.Errorf("estimator: unknown expr %T", expr)
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
