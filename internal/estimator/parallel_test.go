package estimator

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"qfe/internal/exec"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// bigSamplingDB builds a table large enough that one Bernoulli scan takes
// measurable time.
func bigSamplingDB(rows int) *table.DB {
	rng := rand.New(rand.NewSource(1))
	a := make([]int64, rows)
	b := make([]int64, rows)
	for i := 0; i < rows; i++ {
		a[i] = int64(rng.Intn(1000))
		b[i] = int64(rng.Intn(50))
	}
	t := table.New("big")
	t.MustAddColumn(table.NewColumn("a", a))
	t.MustAddColumn(table.NewColumn("b", b))
	db := table.NewDB()
	db.MustAdd(t)
	return db
}

// TestSamplingExpiredContextNotBlockedByInflightScan: the satellite fix —
// a second call with an expired context must return promptly even while a
// first scan is in flight, because the scan no longer runs under the
// estimator's mutex.
func TestSamplingExpiredContextNotBlockedByInflightScan(t *testing.T) {
	db := bigSamplingDB(2_000_000)
	s := NewSampling(db, 0.5, 42)
	q := sqlparse.MustParse("SELECT count(*) FROM big WHERE a <= 500 AND b <= 25")

	started := make(chan struct{})
	firstDone := make(chan struct{})
	go func() {
		close(started)
		if _, err := s.Estimate(q); err != nil {
			t.Errorf("in-flight scan failed: %v", err)
		}
		close(firstDone)
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	begin := time.Now()
	_, err := s.EstimateCtx(ctx, q)
	elapsed := time.Since(begin)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("expired-context call took %v; it must not wait for the in-flight scan", elapsed)
	}
	<-firstDone
}

// TestSamplingDeterministicSequence: a fixed seed still yields a
// reproducible sequence of estimates (call i draws from an RNG derived
// from seed and i), and concurrent use is race-free.
func TestSamplingDeterministicSequence(t *testing.T) {
	db := bigSamplingDB(50_000)
	q := sqlparse.MustParse("SELECT count(*) FROM big WHERE a <= 500")

	runSeq := func() []float64 {
		s := NewSampling(db, 0.01, 7)
		out := make([]float64, 5)
		for i := range out {
			est, err := s.Estimate(q)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = est
		}
		return out
	}
	a, b := runSeq(), runSeq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: %v vs %v — sampling no longer deterministic under seed", i, a[i], b[i])
		}
	}

	// Concurrent calls must each produce one of the per-call streams'
	// results; with the race detector on, this also proves the scan is
	// lock-free and unshared.
	s := NewSampling(db, 0.01, 7)
	var wg sync.WaitGroup
	got := make([]float64, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			est, err := s.Estimate(q)
			if err != nil {
				t.Errorf("concurrent call: %v", err)
				return
			}
			got[i] = est
		}(i)
	}
	wg.Wait()
	for i, est := range got {
		if est < 1 {
			t.Errorf("concurrent call %d produced %v", i, est)
		}
	}
}

// TestDifferentialEvalExprVsRowQualifies: the executor's vectorized bitmap
// evaluator and the sampling baseline's per-row evaluator must agree on
// randomized expression trees over a seeded table — they are two
// implementations of the same predicate semantics.
func TestDifferentialEvalExprVsRowQualifies(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rows := 2000
	a := make([]int64, rows)
	b := make([]int64, rows)
	c := make([]int64, rows)
	for i := 0; i < rows; i++ {
		a[i] = int64(rng.Intn(100))
		b[i] = int64(rng.Intn(10))
		c[i] = int64(rng.Intn(3))
	}
	tbl := table.New("d")
	tbl.MustAddColumn(table.NewColumn("a", a))
	tbl.MustAddColumn(table.NewColumn("b", b))
	tbl.MustAddColumn(table.NewColumn("c", c))

	attrs := []string{"a", "b", "c"}
	domains := []int64{100, 10, 3}
	ops := []sqlparse.CmpOp{sqlparse.OpEq, sqlparse.OpNe, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe}

	var randExpr func(depth int) sqlparse.Expr
	randExpr = func(depth int) sqlparse.Expr {
		if depth <= 0 || rng.Intn(3) == 0 {
			ai := rng.Intn(len(attrs))
			return &sqlparse.Pred{
				Attr: attrs[ai],
				Op:   ops[rng.Intn(len(ops))],
				Val:  int64(rng.Intn(int(domains[ai]))),
			}
		}
		k := 2 + rng.Intn(2)
		kids := make([]sqlparse.Expr, k)
		for i := range kids {
			kids[i] = randExpr(depth - 1)
		}
		if rng.Intn(2) == 0 {
			return sqlparse.NewAnd(kids...)
		}
		return sqlparse.NewOr(kids...)
	}

	for trial := 0; trial < 300; trial++ {
		expr := randExpr(3)
		bm, err := exec.EvalExpr(tbl, expr)
		if err != nil {
			t.Fatalf("trial %d: EvalExpr: %v", trial, err)
		}
		slow := 0
		for r := 0; r < rows; r++ {
			ok, err := rowQualifies(tbl, expr, r)
			if err != nil {
				t.Fatalf("trial %d row %d: rowQualifies: %v", trial, r, err)
			}
			if ok != bm.Get(r) {
				t.Fatalf("trial %d row %d: rowQualifies=%v, bitmap=%v for %v", trial, r, ok, bm.Get(r), expr)
			}
			if ok {
				slow++
			}
		}
		if slow != bm.Count() {
			t.Fatalf("trial %d: row count %d, bitmap count %d", trial, slow, bm.Count())
		}
	}
}
