package estimator

import (
	"fmt"
	"sort"

	"qfe/internal/catalog"
	"qfe/internal/metrics"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
	"qfe/internal/workload"
)

// Hybrid implements the local-model pruning of Section 2.1.2: "in real
// applications, this number [of 2^n - 1 sub-schema models] is reduced by
// relying on System R formulas, where models are built exactly for those
// sub-schemata for which the assumptions from [25] do not hold."
//
// Training inspects each sub-schema's labeled queries: where the fallback
// estimator (typically the System-R style Independence baseline) already
// achieves the target q-error quantile, no model is built and queries for
// that sub-schema route to the fallback; everywhere else a local model is
// trained. The decision is query-feedback driven, following Larson et
// al. [15] whom the paper cites for when to (re)build.
type Hybrid struct {
	local    *Local
	fallback Estimator
	cfg      HybridConfig
	// modeled records which sub-schema keys carry a trained local model.
	modeled map[string]bool
}

// HybridConfig configures pruning.
type HybridConfig struct {
	// Local configures the models built for non-pruned sub-schemas.
	Local LocalConfig
	// MaxQuantileError is the pruning bar: a sub-schema is pruned when the
	// fallback's q-error at Quantile stays at or below this value on the
	// sub-schema's training queries.
	MaxQuantileError float64
	// Quantile is the inspected q-error quantile (default 0.9).
	Quantile float64
}

// NewHybrid builds the estimator skeleton. fallback must not be nil.
func NewHybrid(db *table.DB, cfg HybridConfig, fallback Estimator) (*Hybrid, error) {
	if fallback == nil {
		return nil, fmt.Errorf("estimator: Hybrid needs a fallback estimator")
	}
	if cfg.MaxQuantileError < 1 {
		return nil, fmt.Errorf("estimator: MaxQuantileError = %v, want >= 1", cfg.MaxQuantileError)
	}
	if cfg.Quantile == 0 {
		cfg.Quantile = 0.9
	}
	if cfg.Quantile < 0 || cfg.Quantile > 1 {
		return nil, fmt.Errorf("estimator: Quantile = %v, want in [0, 1]", cfg.Quantile)
	}
	loc, err := NewLocal(db, cfg.Local)
	if err != nil {
		return nil, err
	}
	return &Hybrid{local: loc, fallback: fallback, cfg: cfg, modeled: make(map[string]bool)}, nil
}

// Name implements Estimator.
func (h *Hybrid) Name() string {
	return fmt.Sprintf("%s pruned by %s", h.local.Name(), h.fallback.Name())
}

// Train prunes and fits. It returns how many sub-schemas kept a model and
// how many were pruned to the fallback.
func (h *Hybrid) Train(train workload.Set) (kept, pruned int, err error) {
	grouped := make(map[string]workload.Set)
	for _, lq := range train {
		grouped[catalog.SubSchemaKey(lq.Query.Tables)] = append(grouped[catalog.SubSchemaKey(lq.Query.Tables)], lq)
	}
	keys := make([]string, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var modeledSet workload.Set
	for _, key := range keys {
		set := grouped[key]
		qerrs, err := Evaluate(h.fallback, set)
		if err != nil {
			return 0, 0, fmt.Errorf("estimator: probe fallback on %s: %w", key, err)
		}
		if metrics.Quantile(qerrs, h.cfg.Quantile) <= h.cfg.MaxQuantileError {
			pruned++
			continue // the System-R assumptions hold here: no model
		}
		kept++
		h.modeled[key] = true
		modeledSet = append(modeledSet, set...)
	}
	if len(modeledSet) > 0 {
		if err := h.local.Train(modeledSet); err != nil {
			return 0, 0, err
		}
	}
	return kept, pruned, nil
}

// Estimate implements Estimator: modeled sub-schemas use their local model,
// pruned ones the fallback.
func (h *Hybrid) Estimate(q *sqlparse.Query) (float64, error) {
	if h.modeled[catalog.SubSchemaKey(q.Tables)] {
		return h.local.Estimate(q)
	}
	return h.fallback.Estimate(q)
}

// NumModels returns the number of trained local models (pruned sub-schemas
// carry none).
func (h *Hybrid) NumModels() int { return h.local.NumModels() }

// MemoryBytes sums the trained models' footprints — the quantity pruning
// reduces.
func (h *Hybrid) MemoryBytes() int { return h.local.MemoryBytes() }
