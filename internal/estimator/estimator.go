// Package estimator assembles cardinality estimators from the pieces of
// this reproduction: the QFTs of internal/core, the ML models of
// internal/ml, and the non-ML baselines the paper compares against in
// Section 5.2 (Postgres-style independence assumption, Bernoulli sampling,
// and the true-cardinality oracle).
//
// The package implements both deployment styles of Section 2.1.2:
//
//   - local models — one estimator per sub-schema (base table or join
//     result), routed by the query's table set;
//   - global models — a single estimator for all sub-schemas, either a
//     plain regressor over the concatenated per-table encoding plus table
//     bit-vector, or the MSCN set architecture.
//
// All learned estimators regress on log2-transformed cardinalities (the
// standard choice for q-error training; the raw-label ablation is available
// via Config.RawLabels).
package estimator

import (
	"context"
	"fmt"
	"math"

	"qfe/internal/metrics"
	"qfe/internal/sqlparse"
	"qfe/internal/workload"
)

// Estimator is anything that can estimate a COUNT(*) query's result
// cardinality. Estimates are always >= 1, matching the paper's evaluation
// protocol.
type Estimator interface {
	// Name identifies the estimator in reports (e.g. "GB + conjunctive").
	Name() string
	// Estimate returns the estimated result cardinality of q.
	Estimate(q *sqlparse.Query) (float64, error)
}

// ContextEstimator is an Estimator that additionally honors context
// cancellation and deadlines. Estimators whose per-call work is non-trivial
// (exact execution, row sampling, deep model inference) implement it so a
// serving layer can bound estimation latency; cheap estimators need not.
type ContextEstimator interface {
	Estimator
	// EstimateCtx is Estimate under a context: it returns ctx.Err() promptly
	// once the context is cancelled or its deadline passes.
	EstimateCtx(ctx context.Context, q *sqlparse.Query) (float64, error)
}

// EstimateWithContext estimates q with est under ctx: estimators that
// implement ContextEstimator get the context threaded through; for plain
// estimators the context is checked before the (uninterruptible) call. It is
// the single dispatch point the engine and serving layers use, so adding
// EstimateCtx to an estimator automatically makes it deadline-aware
// everywhere.
func EstimateWithContext(ctx context.Context, est Estimator, q *sqlparse.Query) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if ce, ok := est.(ContextEstimator); ok {
		return ce.EstimateCtx(ctx, q)
	}
	return est.Estimate(q)
}

// Evaluate runs the estimator over a labeled query set and returns the
// per-query q-errors in set order.
func Evaluate(est Estimator, set workload.Set) ([]float64, error) {
	out := make([]float64, len(set))
	for i, l := range set {
		e, err := est.Estimate(l.Query)
		if err != nil {
			return nil, fmt.Errorf("estimator %s: query %d (%s): %w", est.Name(), i, l.Query, err)
		}
		out[i] = metrics.QError(float64(l.Card), e)
	}
	return out, nil
}

// Summarize evaluates and reduces to the mean/median/99%/max summary used in
// the paper's tables.
func Summarize(est Estimator, set workload.Set) (metrics.Summary, error) {
	qerrs, err := Evaluate(est, set)
	if err != nil {
		return metrics.Summary{}, err
	}
	return metrics.Summarize(qerrs), nil
}

// labelTransform maps cardinalities to regression targets and back. The
// log2 transform compresses the heavy-tailed cardinality distribution so a
// squared-error loss approximates a q-error objective.
type labelTransform struct {
	raw bool
}

func (t labelTransform) forward(card float64) float64 {
	if t.raw {
		return card
	}
	return math.Log2(card + 1)
}

func (t labelTransform) inverse(pred float64) float64 {
	var card float64
	if t.raw {
		card = pred
	} else {
		// Guard against overflow on wild extrapolations.
		if pred > 62 {
			pred = 62
		}
		card = math.Exp2(pred) - 1
	}
	if card < 1 || math.IsNaN(card) {
		return 1
	}
	return card
}

// transformAll applies the forward transform to a label slice.
func (t labelTransform) transformAll(cards []float64) []float64 {
	out := make([]float64, len(cards))
	for i, c := range cards {
		out[i] = t.forward(c)
	}
	return out
}
