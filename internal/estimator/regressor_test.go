package estimator

import (
	"math"
	"math/rand"
	"testing"

	"qfe/internal/ml/gb"
	"qfe/internal/ml/linreg"
	"qfe/internal/ml/nn"
)

func regressionProblem(n int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(3))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := []float64{rng.Float64(), rng.Float64()}
		X[i] = row
		y[i] = 2*row[0] + row[1]
	}
	return X, y
}

func TestRegressorAdapters(t *testing.T) {
	X, y := regressionProblem(400)
	gbCfg := gb.DefaultConfig()
	gbCfg.NumTrees = 30
	nnCfg := nn.DefaultConfig()
	nnCfg.Epochs = 20

	factories := []struct {
		name    string
		factory RegressorFactory
		maxErr  float64
	}{
		{"GB", NewGBFactory(gbCfg), 0.2},
		{"NN", NewNNFactory(nnCfg), 0.2},
		{"LR", NewLinRegFactory(linreg.DefaultConfig()), 0.05},
	}
	for _, f := range factories {
		r := f.factory()
		if r.Name() != f.name {
			t.Errorf("factory %s produced Name %q", f.name, r.Name())
		}
		if r.MemoryBytes() != 0 {
			t.Errorf("%s: untrained MemoryBytes = %d, want 0", f.name, r.MemoryBytes())
		}
		if err := r.Fit(X, y); err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if r.MemoryBytes() <= 0 {
			t.Errorf("%s: trained MemoryBytes not positive", f.name)
		}
		var worst float64
		for i := 0; i < 50; i++ {
			if e := math.Abs(r.Predict(X[i]) - y[i]); e > worst {
				worst = e
			}
		}
		if worst > f.maxErr {
			t.Errorf("%s: worst error %v, want <= %v", f.name, worst, f.maxErr)
		}
	}
}

func TestRegressorPredictBeforeFitPanics(t *testing.T) {
	for _, factory := range []RegressorFactory{
		NewGBFactory(gb.DefaultConfig()),
		NewNNFactory(nn.DefaultConfig()),
		NewLinRegFactory(linreg.DefaultConfig()),
	} {
		r := factory()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Predict before Fit did not panic", r.Name())
				}
			}()
			r.Predict([]float64{1})
		}()
	}
}

func TestFactoriesProduceFreshInstances(t *testing.T) {
	// Local-model training relies on every factory call giving an
	// independent model.
	f := NewGBFactory(gb.DefaultConfig())
	a, b := f(), f()
	if a == b {
		t.Fatal("factory returned the same instance twice")
	}
	X, y := regressionProblem(50)
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if b.MemoryBytes() != 0 {
		t.Error("fitting one instance affected the other")
	}
}
