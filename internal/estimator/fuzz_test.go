package estimator

import (
	"bytes"
	"testing"

	"qfe/internal/core"
)

// snapshotSeeds serializes one trained estimator of every persistable kind.
// These are the fuzzer's starting corpus: mutations of real snapshots probe
// much deeper into the loaders than random bytes would.
func snapshotSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	e := env(tb)
	var seeds [][]byte

	loc, err := NewLocal(e.db, LocalConfig{
		QFT:          "conjunctive",
		Opts:         core.Options{MaxEntriesPerAttr: 16, AttrSel: true},
		NewRegressor: NewGBFactory(smallGB()),
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := loc.Train(e.train[:300]); err != nil {
		tb.Fatal(err)
	}
	var lb bytes.Buffer
	if err := loc.SaveJSON(&lb); err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, lb.Bytes())

	g, err := NewGlobal(e.db, forestSchema(), "conjunctive",
		core.Options{MaxEntriesPerAttr: 16, AttrSel: true}, NewGBFactory(smallGB()), false)
	if err != nil {
		tb.Fatal(err)
	}
	if err := g.Train(e.train[:300]); err != nil {
		tb.Fatal(err)
	}
	var gb bytes.Buffer
	if err := g.SaveJSON(&gb); err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, gb.Bytes())

	h, err := NewHybrid(e.db, HybridConfig{
		Local: LocalConfig{
			QFT:          "conjunctive",
			Opts:         core.Options{MaxEntriesPerAttr: 16, AttrSel: true},
			NewRegressor: NewGBFactory(smallGB()),
		},
		MaxQuantileError: 1e12, // prune everything: small, fast snapshot
	}, &Independence{DB: e.db})
	if err != nil {
		tb.Fatal(err)
	}
	if _, _, err := h.Train(e.train[:300]); err != nil {
		tb.Fatal(err)
	}
	var hb bytes.Buffer
	if err := h.SaveJSON(&hb); err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, hb.Bytes())

	return seeds
}

// FuzzLoadEstimator is the persistence layer's robustness contract: for ANY
// byte string — valid snapshots, mutated snapshots, garbage — LoadEstimator
// either returns a working estimator or an error. It never panics, and an
// estimator it accepts must answer Estimate without panicking (errors are
// fine: a snapshot can legitimately lack a model for the probe's
// sub-schema). This is what lets the crash-safe store and the serving
// registry load snapshot bytes that survived torn writes and bit rot
// without wrapping every load in a recover.
//
// Explore with `go test -fuzz=FuzzLoadEstimator ./internal/estimator`.
func FuzzLoadEstimator(f *testing.F) {
	for _, seed := range snapshotSeeds(f) {
		f.Add(seed)
		// Hand the fuzzer structured near-misses too, not just full
		// snapshots: truncations and envelope edits.
		f.Add(seed[:len(seed)/2])
		f.Add(bytes.Replace(seed, []byte(`"format":1`), []byte(`"format":9`), 1))
		f.Add(bytes.Replace(seed, []byte(`"kind":"`), []byte(`"kind":"x`), 1))
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format":1,"kind":"local"}`))
	f.Add([]byte(`{"format":1,"kind":"hybrid","fallback":"independence"}`))
	f.Add([]byte(`null`))
	f.Add([]byte{0x00, 0xff})

	db := env(f).db
	probe := env(f).test[0].Query
	f.Fuzz(func(t *testing.T, data []byte) {
		est, kind, err := LoadEstimator(bytes.NewReader(data), db)
		if err != nil {
			if est != nil {
				t.Fatalf("LoadEstimator returned both an estimator and error %v", err)
			}
			return
		}
		if est == nil || kind == "" {
			t.Fatalf("LoadEstimator returned nil estimator / kind %q without error", kind)
		}
		// An accepted snapshot must estimate without panicking.
		if v, err := est.Estimate(probe); err == nil && v < 0 {
			t.Fatalf("loaded %s estimator returned negative estimate %v", kind, v)
		}
	})
}

// TestLoadEstimatorMutationSweep is the deterministic slice of the fuzz
// contract that runs in plain `go test`: every seed snapshot is byte-flipped
// and truncated at a sweep of positions, and each mutant must either load
// into a working estimator or error — never panic, never produce an
// estimator that panics.
func TestLoadEstimatorMutationSweep(t *testing.T) {
	db := env(t).db
	probe := env(t).test[0].Query
	check := func(data []byte, tag string) {
		t.Helper()
		est, _, err := LoadEstimator(bytes.NewReader(data), db)
		if err != nil {
			return
		}
		// Mutants that still load (a flipped byte inside a float literal,
		// say) must still behave.
		_, _ = est.Estimate(probe)
	}
	for i, seed := range snapshotSeeds(t) {
		stride := len(seed)/64 + 1
		for pos := 0; pos < len(seed); pos += stride {
			mutant := append([]byte(nil), seed...)
			mutant[pos] ^= 0x5a
			check(mutant, "flip")
			check(seed[:pos], "truncate")
		}
		t.Logf("seed %d: %d bytes, %d mutation points survived", i, len(seed), (len(seed)+stride-1)/stride)
	}
}

// TestLoadEstimatorRejectsForeignFormat pins the dispatcher-level version
// check: a structurally valid snapshot from a different format version is
// refused with a version error before any kind-specific parsing.
func TestLoadEstimatorRejectsForeignFormat(t *testing.T) {
	seed := snapshotSeeds(t)[0]
	future := bytes.Replace(seed, []byte(`"format":1`), []byte(`"format":2`), 1)
	if bytes.Equal(future, seed) {
		t.Fatal("seed snapshot carries no format field to rewrite")
	}
	_, _, err := LoadEstimator(bytes.NewReader(future), env(t).db)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("format 2")) {
		t.Fatalf("future-format load: err = %v, want a format-version error", err)
	}
}
