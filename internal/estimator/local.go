package estimator

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"qfe/internal/catalog"
	"qfe/internal/core"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
	"qfe/internal/workload"
)

// LocalConfig configures a local-model estimator (Section 2.1.2): one
// (QFT, regressor) pair per sub-schema, routed by the query's table set.
type LocalConfig struct {
	// QFT is the featurization technique name ("simple", "range",
	// "conjunctive", "complex").
	QFT string
	// Opts are the QFT options (per-attribute entries, attrSel).
	Opts core.Options
	// NewRegressor builds a fresh model per sub-schema.
	NewRegressor RegressorFactory
	// RawLabels disables the log2 label transform (ablation).
	RawLabels bool
}

// Local is the local-model estimator: per sub-schema, the selection
// predicates are featurized with the configured QFT (per-table vectors
// concatenated in canonical order) and regressed by a dedicated model.
type Local struct {
	cfg       LocalConfig
	metas     map[string]*core.TableMeta
	models    map[string]*localModel
	transform labelTransform
	modelName string
}

type localModel struct {
	tables []string // sorted
	feats  []core.Featurizer
	reg    Regressor
	// offsets[i] is where feats[i]'s block starts in the concatenated
	// vector; offsets[len(tables)] is the total dimension. Fixed at
	// construction, so the pooled fast path writes each table's encoding
	// in place instead of appending.
	offsets   []int
	vecPool   *sync.Pool // *[]float64, single-query featurization buffers
	batchPool *sync.Pool // *batchScratch, batch matrices
}

func (lm *localModel) dim() int { return lm.offsets[len(lm.offsets)-1] }

// NewLocal builds the estimator skeleton over the database's tables. Models
// are created lazily per sub-schema during Train.
func NewLocal(db *table.DB, cfg LocalConfig) (*Local, error) {
	if cfg.NewRegressor == nil {
		return nil, fmt.Errorf("estimator: LocalConfig.NewRegressor is nil")
	}
	cfg.Opts = cfg.Opts.Normalized()
	if _, err := core.New(cfg.QFT, core.NewTableMetaFromAttrs("probe", []core.AttrMeta{{Name: "x", Min: 0, Max: 1}}, 2), cfg.Opts); err != nil {
		return nil, err
	}
	l := &Local{
		cfg:       cfg,
		metas:     make(map[string]*core.TableMeta),
		models:    make(map[string]*localModel),
		transform: labelTransform{raw: cfg.RawLabels},
		modelName: cfg.NewRegressor().Name(),
	}
	for _, tn := range db.TableNames() {
		l.metas[tn] = core.NewTableMeta(db.Table(tn), cfg.Opts.MaxEntriesPerAttr)
	}
	return l, nil
}

// Name implements Estimator, e.g. "GB + conjunctive (local)".
func (l *Local) Name() string {
	return fmt.Sprintf("%s + %s (local)", l.modelName, l.cfg.QFT)
}

// Train fits one model per sub-schema occurring in the training set. Each
// sub-schema needs enough queries for its regressor; sub-schemas without
// training queries simply have no model and fail at Estimate time.
func (l *Local) Train(train workload.Set) error {
	grouped := make(map[string]workload.Set)
	for _, lq := range train {
		key := catalog.SubSchemaKey(lq.Query.Tables)
		grouped[key] = append(grouped[key], lq)
	}
	// Deterministic training order.
	keys := make([]string, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, key := range keys {
		set := grouped[key]
		lm, err := l.modelFor(set[0].Query.Tables)
		if err != nil {
			return err
		}
		X := make([][]float64, len(set))
		for i, lq := range set {
			vec, err := l.featurizeWith(lm, lq.Query)
			if err != nil {
				return fmt.Errorf("estimator: featurize training query %d of %s: %w", i, key, err)
			}
			X[i] = vec
		}
		y := l.transform.transformAll(set.Cards())
		if err := lm.reg.Fit(X, y); err != nil {
			return fmt.Errorf("estimator: fit sub-schema %s: %w", key, err)
		}
		l.models[key] = lm
	}
	return nil
}

// modelFor creates the (untrained) local model for a table set.
func (l *Local) modelFor(tables []string) (*localModel, error) {
	sorted := append([]string(nil), tables...)
	sort.Strings(sorted)
	lm := &localModel{tables: sorted, reg: l.cfg.NewRegressor()}
	for _, tn := range sorted {
		meta, ok := l.metas[tn]
		if !ok {
			return nil, fmt.Errorf("estimator: unknown table %q", tn)
		}
		f, err := core.New(l.cfg.QFT, meta, l.cfg.Opts)
		if err != nil {
			return nil, err
		}
		lm.feats = append(lm.feats, f)
	}
	lm.offsets = make([]int, len(lm.feats)+1)
	for i, f := range lm.feats {
		lm.offsets[i+1] = lm.offsets[i] + f.Dim()
	}
	lm.vecPool = newVecPool(lm.dim())
	lm.batchPool = newBatchPool()
	return lm, nil
}

// featurizeWith encodes q's selection predicates: per-table featurizations
// concatenated in the sub-schema's canonical (sorted) table order.
func (l *Local) featurizeWith(lm *localModel, q *sqlparse.Query) ([]float64, error) {
	perTable, err := core.SplitWhereByTable(q)
	if err != nil {
		return nil, err
	}
	var vec []float64
	for i, tn := range lm.tables {
		sub, err := lm.feats[i].Featurize(perTable[tn])
		if err != nil {
			return nil, fmt.Errorf("table %q: %w", tn, err)
		}
		vec = append(vec, sub...)
	}
	return vec, nil
}

// featurizeInto is the pooled-buffer form of featurizeWith: each table's
// encoding is written in place at its precomputed offset. dst must be
// lm.dim() long. Output is bit-identical to featurizeWith.
func (l *Local) featurizeInto(lm *localModel, dst []float64, q *sqlparse.Query) error {
	perTable, err := core.SplitWhereByTable(q)
	if err != nil {
		return err
	}
	for i, tn := range lm.tables {
		if err := lm.feats[i].FeaturizeInto(dst[lm.offsets[i]:lm.offsets[i+1]], perTable[tn]); err != nil {
			return fmt.Errorf("table %q: %w", tn, err)
		}
	}
	return nil
}

// Estimate implements Estimator: route to the sub-schema's model, featurize
// into a pooled buffer, predict through the model's compiled layout, invert
// the label transform.
func (l *Local) Estimate(q *sqlparse.Query) (float64, error) {
	key := catalog.SubSchemaKey(q.Tables)
	lm, ok := l.models[key]
	if !ok {
		return 0, fmt.Errorf("estimator: no local model trained for sub-schema %q", key)
	}
	bufp := lm.vecPool.Get().(*[]float64)
	if err := l.featurizeInto(lm, *bufp, q); err != nil {
		lm.vecPool.Put(bufp)
		return 0, err
	}
	pred := lm.reg.Predict(*bufp)
	lm.vecPool.Put(bufp)
	return l.transform.inverse(pred), nil
}

// EstimateBatch implements BatchEstimator: queries are grouped by
// sub-schema, each group featurized into one reused flat matrix and pushed
// through the regressor's batch predict. Per-query failures (unknown
// sub-schema, featurization errors, cancellation) land in errs without
// aborting the rest of the batch.
func (l *Local) EstimateBatch(ctx context.Context, qs []*sqlparse.Query) ([]float64, []error) {
	ests := make([]float64, len(qs))
	errs := make([]error, len(qs))
	groups := make(map[string][]int)
	for i, q := range qs {
		key := catalog.SubSchemaKey(q.Tables)
		groups[key] = append(groups[key], i)
	}
	for key, idxs := range groups {
		lm, ok := l.models[key]
		if !ok {
			err := fmt.Errorf("estimator: no local model trained for sub-schema %q", key)
			for _, qi := range idxs {
				errs[qi] = err
			}
			continue
		}
		sc := lm.batchPool.Get().(*batchScratch)
		sc.resize(len(idxs), lm.dim())
		n := 0
		for _, qi := range idxs {
			if err := ctx.Err(); err != nil {
				errs[qi] = err
				continue
			}
			if err := l.featurizeInto(lm, sc.rows[n], qs[qi]); err != nil {
				errs[qi] = err
				continue
			}
			sc.idx[n] = qi
			n++
		}
		predictBatch(lm.reg, sc, n)
		for r := 0; r < n; r++ {
			ests[sc.idx[r]] = l.transform.inverse(sc.preds[r])
		}
		lm.batchPool.Put(sc)
	}
	return ests, errs
}

// ValidateSchema checks that the estimator's featurization metadata is
// compatible with db: every table the estimator knows must exist, and every
// featurized attribute must be a column of that table. A persisted estimator
// trained on a different schema fails here with a descriptive error at load
// time instead of failing (or panicking) deep inside estimation.
func (l *Local) ValidateSchema(db *table.DB) error {
	names := make([]string, 0, len(l.metas))
	for name := range l.metas {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := db.Table(name)
		if t == nil {
			return fmt.Errorf("estimator: schema mismatch: estimator was trained on table %q, which the database does not have (tables: %v)",
				name, db.TableNames())
		}
		for _, a := range l.metas[name].Attrs {
			if t.Column(a.Name) == nil {
				return fmt.Errorf("estimator: schema mismatch: table %q has no column %q the estimator was trained on (columns: %v)",
					name, a.Name, t.ColumnNames())
			}
		}
	}
	return nil
}

// NumModels returns the number of trained sub-schema models.
func (l *Local) NumModels() int { return len(l.models) }

// MemoryBytes sums the trained models' footprints (Section 5.7).
func (l *Local) MemoryBytes() int {
	total := 0
	for _, lm := range l.models {
		total += lm.reg.MemoryBytes()
	}
	return total
}
