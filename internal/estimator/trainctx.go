package estimator

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"qfe/internal/catalog"
	"qfe/internal/workload"
)

// TrainOpts carries the optional checkpointing hooks of Local.TrainCtx.
// The zero value (or a nil pointer) trains without checkpoints.
type TrainOpts struct {
	// CheckpointEvery is forwarded to each sub-schema regressor's FitCtx
	// (trees for GB, epochs for NN); 0 disables mid-fit checkpoints.
	// Progress checkpoints after each completed sub-schema are emitted
	// whenever OnCheckpoint is set, independent of this cadence.
	CheckpointEvery int
	// OnCheckpoint receives each serialized progress checkpoint; a non-nil
	// return aborts training with that error.
	OnCheckpoint func(payload []byte) error
	// Resume, when non-empty, is a payload previously passed to
	// OnCheckpoint; training continues from it: completed sub-schemas are
	// restored without retraining and a sub-schema interrupted mid-fit
	// resumes from its embedded model-level checkpoint.
	Resume []byte
}

// localProgress is the serialized resumable state of Local.TrainCtx: the
// regressors already fitted (keyed by sub-schema), plus at most one
// model-level checkpoint for the sub-schema that was mid-fit. QFT and
// ModelType pin the progress to a configuration; a resumed run with a
// different setup rejects the payload instead of mixing models.
type localProgress struct {
	QFT       string                     `json:"qft"`
	ModelType string                     `json:"modelType"`
	Done      map[string]json.RawMessage `json:"done"`
	Current   string                     `json:"current,omitempty"`
	CurrentCk []byte                     `json:"currentCk,omitempty"`
}

// TrainCtx is Train with cancellation (checked between sub-schemas and, via
// FitCtx, inside each fit) and resumable progress checkpoints. A resumed
// run restores every completed sub-schema verbatim and continues the
// interrupted one from its last model-level checkpoint, so total work lost
// to a crash is bounded by one checkpoint interval.
func (l *Local) TrainCtx(ctx context.Context, train workload.Set, opts *TrainOpts) error {
	grouped := make(map[string]workload.Set)
	for _, lq := range train {
		key := catalog.SubSchemaKey(lq.Query.Tables)
		grouped[key] = append(grouped[key], lq)
	}
	// Deterministic training order.
	keys := make([]string, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	progress := localProgress{
		QFT:       l.cfg.QFT,
		ModelType: l.modelName,
		Done:      make(map[string]json.RawMessage),
	}
	if opts != nil && len(opts.Resume) > 0 {
		var saved localProgress
		if err := json.Unmarshal(opts.Resume, &saved); err != nil {
			return fmt.Errorf("estimator: decode training progress: %w", err)
		}
		if saved.QFT != l.cfg.QFT || saved.ModelType != l.modelName {
			return fmt.Errorf("estimator: training progress is for %s/%s, estimator is %s/%s",
				saved.ModelType, saved.QFT, l.modelName, l.cfg.QFT)
		}
		for key, payload := range saved.Done {
			set, ok := grouped[key]
			if !ok {
				continue // sub-schema no longer in the training set
			}
			lm, err := l.modelFor(set[0].Query.Tables)
			if err != nil {
				return err
			}
			if err := unmarshalRegressor(lm.reg, payload); err != nil {
				return fmt.Errorf("estimator: restore sub-schema %q from progress: %w", key, err)
			}
			l.models[key] = lm
			progress.Done[key] = payload
		}
		progress.Current = saved.Current
		progress.CurrentCk = saved.CurrentCk
	}

	for _, key := range keys {
		if _, restored := progress.Done[key]; restored {
			continue
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("estimator: training canceled: %w", err)
		}
		set := grouped[key]
		lm, err := l.modelFor(set[0].Query.Tables)
		if err != nil {
			return err
		}
		X := make([][]float64, len(set))
		for i, lq := range set {
			vec, err := l.featurizeWith(lm, lq.Query)
			if err != nil {
				return fmt.Errorf("estimator: featurize training query %d of %s: %w", i, key, err)
			}
			X[i] = vec
		}
		y := l.transform.transformAll(set.Cards())

		if err := l.fitOne(ctx, lm, key, X, y, opts, &progress); err != nil {
			return fmt.Errorf("estimator: fit sub-schema %s: %w", key, err)
		}
		l.models[key] = lm

		if opts != nil && opts.OnCheckpoint != nil {
			// Record the finished regressor so a later crash never refits it.
			// Unserializable regressors (LR) are simply retrained on resume.
			if payload, err := marshalRegressor(lm.reg); err == nil {
				progress.Done[key] = payload
				progress.Current, progress.CurrentCk = "", nil
				if err := emitProgress(&progress, opts.OnCheckpoint); err != nil {
					return fmt.Errorf("estimator: checkpoint after sub-schema %s: %w", key, err)
				}
			}
		}
	}
	return nil
}

// fitOne fits a single sub-schema regressor, wiring model-level checkpoints
// (when the regressor supports them) into the progress payload.
func (l *Local) fitOne(ctx context.Context, lm *localModel, key string, X [][]float64, y []float64, opts *TrainOpts, progress *localProgress) error {
	creg, ok := lm.reg.(CtxRegressor)
	if !ok {
		return lm.reg.Fit(X, y)
	}
	fo := FitOpts{}
	if opts != nil {
		fo.CheckpointEvery = opts.CheckpointEvery
		if opts.OnCheckpoint != nil {
			fo.OnCheckpoint = func(payload []byte) error {
				progress.Current = key
				progress.CurrentCk = payload
				return emitProgress(progress, opts.OnCheckpoint)
			}
		}
		if progress.Current == key {
			fo.Resume = progress.CurrentCk
		}
	}
	return creg.FitCtx(ctx, X, y, fo)
}

func emitProgress(p *localProgress, emit func([]byte) error) error {
	payload, err := json.Marshal(p)
	if err != nil {
		return err
	}
	return emit(payload)
}
