package estimator

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"qfe/internal/catalog"
	"qfe/internal/core"
	"qfe/internal/ml/gb"
	"qfe/internal/ml/nn"
)

// This file implements persistence for local estimators: a trained Local
// (its QFT configuration, per-table featurization metadata, and every
// sub-schema model's weights) serializes to a single JSON document. The
// point is operational: training happens against the data (Section 5.5.2's
// expensive step is obtaining labeled queries), while estimation only needs
// the model file — no table access at all.

// savedLocal is the on-disk format.
type savedLocal struct {
	Format    int              `json:"format"`
	QFT       string           `json:"qft"`
	Opts      core.Options     `json:"opts"`
	RawLabels bool             `json:"rawLabels"`
	ModelType string           `json:"modelType"` // "GB" or "NN"
	Metas     []core.MetaSpec  `json:"metas"`
	Models    []savedSubSchema `json:"models"`
}

type savedSubSchema struct {
	Tables  []string        `json:"tables"`
	Payload json.RawMessage `json:"payload"`
}

// currentFormat guards against silently loading incompatible files.
const currentFormat = 1

// SaveJSON writes the trained estimator to w. Only GB- and NN-backed locals
// are serializable (MSCN-backed estimators are global models with their own
// lifecycle).
func (l *Local) SaveJSON(w io.Writer) error {
	s := savedLocal{
		Format:    currentFormat,
		QFT:       l.cfg.QFT,
		Opts:      l.cfg.Opts,
		RawLabels: l.cfg.RawLabels,
		ModelType: l.modelName,
	}
	tableNames := make([]string, 0, len(l.metas))
	for name := range l.metas {
		tableNames = append(tableNames, name)
	}
	sort.Strings(tableNames)
	for _, name := range tableNames {
		s.Metas = append(s.Metas, l.metas[name].Spec())
	}

	keys := make([]string, 0, len(l.models))
	for k := range l.models {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		lm := l.models[k]
		payload, err := marshalRegressor(lm.reg)
		if err != nil {
			return fmt.Errorf("estimator: serialize sub-schema %q: %w", k, err)
		}
		s.Models = append(s.Models, savedSubSchema{Tables: lm.tables, Payload: payload})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

func marshalRegressor(r Regressor) (json.RawMessage, error) {
	switch reg := r.(type) {
	case *GBRegressor:
		if reg.model == nil {
			return nil, fmt.Errorf("GB model not trained")
		}
		return json.Marshal(reg.model)
	case *NNRegressor:
		if reg.model == nil {
			return nil, fmt.Errorf("NN model not trained")
		}
		return json.Marshal(reg.model)
	}
	return nil, fmt.Errorf("regressor %T is not serializable", r)
}

// LoadLocal restores a trained estimator from r. The returned estimator
// answers Estimate immediately; Train may be called again to replace the
// models (e.g. after data drift).
func LoadLocal(r io.Reader) (*Local, error) {
	var s savedLocal
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("estimator: decode: %w", err)
	}
	if s.Format != currentFormat {
		return nil, fmt.Errorf("estimator: unsupported format %d (want %d)", s.Format, currentFormat)
	}

	// Validate the QFT name eagerly, mirroring NewLocal.
	probe := core.NewTableMetaFromAttrs("probe", []core.AttrMeta{{Name: "x", Min: 0, Max: 1}}, 2)
	if _, err := core.New(s.QFT, probe, s.Opts); err != nil {
		return nil, err
	}

	var factory RegressorFactory
	switch s.ModelType {
	case "GB":
		factory = NewGBFactory(gb.DefaultConfig())
	case "NN":
		factory = NewNNFactory(nn.DefaultConfig())
	default:
		return nil, fmt.Errorf("estimator: unknown model type %q", s.ModelType)
	}

	l := &Local{
		cfg: LocalConfig{
			QFT:          s.QFT,
			Opts:         s.Opts,
			NewRegressor: factory,
			RawLabels:    s.RawLabels,
		},
		metas:     make(map[string]*core.TableMeta, len(s.Metas)),
		models:    make(map[string]*localModel, len(s.Models)),
		transform: labelTransform{raw: s.RawLabels},
		modelName: s.ModelType,
	}
	for _, spec := range s.Metas {
		meta, err := core.NewTableMetaFromSpec(spec)
		if err != nil {
			return nil, err
		}
		l.metas[spec.Name] = meta
	}
	for _, sm := range s.Models {
		lm, err := l.modelFor(sm.Tables)
		if err != nil {
			return nil, err
		}
		if err := unmarshalRegressor(lm.reg, sm.Payload); err != nil {
			return nil, fmt.Errorf("estimator: restore sub-schema %v: %w", sm.Tables, err)
		}
		l.models[catalog.SubSchemaKey(lm.tables)] = lm
	}
	return l, nil
}

func unmarshalRegressor(r Regressor, payload json.RawMessage) error {
	switch reg := r.(type) {
	case *GBRegressor:
		var m gb.Model
		if err := json.Unmarshal(payload, &m); err != nil {
			return err
		}
		// A wrong-kind or hand-damaged payload can unmarshal "successfully"
		// into a structurally broken model (no trees, dangling child
		// indices); reject it here rather than panic at estimation time.
		if err := m.Validate(); err != nil {
			return err
		}
		reg.model = &m
		reg.Cfg = m.Cfg
		return nil
	case *NNRegressor:
		var m nn.Model
		if err := json.Unmarshal(payload, &m); err != nil {
			return err
		}
		reg.model = &m
		return nil
	}
	return fmt.Errorf("regressor %T is not restorable", r)
}
