package estimator

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"qfe/internal/catalog"
	"qfe/internal/core"
	"qfe/internal/ml/gb"
	"qfe/internal/ml/nn"
	"qfe/internal/table"
)

// This file implements persistence for trained estimators: a snapshot (QFT
// configuration, per-table featurization metadata, and model weights)
// serializes to a single JSON document. The point is operational: training
// happens against the data (Section 5.5.2's expensive step is obtaining
// labeled queries), while estimation only needs the model file — no table
// access at all. Local, Global, and Hybrid estimators all persist; the
// top-level "kind" field routes LoadEstimator to the right restorer, which
// is what lets a serving registry hot-load any snapshot kind from disk.

// Snapshot kinds, stored in the documents' "kind" field. Local documents
// written before the field existed carry no kind and load as KindLocal.
const (
	KindLocal  = "local"
	KindGlobal = "global"
	KindHybrid = "hybrid"
)

// savedLocal is the on-disk format.
type savedLocal struct {
	Format    int              `json:"format"`
	Kind      string           `json:"kind,omitempty"` // "" or "local"
	QFT       string           `json:"qft"`
	Opts      core.Options     `json:"opts"`
	RawLabels bool             `json:"rawLabels"`
	ModelType string           `json:"modelType"` // "GB" or "NN"
	Metas     []core.MetaSpec  `json:"metas"`
	Models    []savedSubSchema `json:"models"`
}

type savedSubSchema struct {
	Tables  []string        `json:"tables"`
	Payload json.RawMessage `json:"payload"`
}

// FormatVersion is the snapshot format this build writes and reads. Every
// SaveJSON output is self-identifying — the top-level envelope carries both
// "format" and "kind" — so any tool (or a future build with a different
// format) can classify a snapshot from its first bytes without kind-specific
// parsing. Loaders reject other versions loudly.
const FormatVersion = 1

// currentFormat guards against silently loading incompatible files.
const currentFormat = FormatVersion

// SaveJSON writes the trained estimator to w. Only GB- and NN-backed locals
// are serializable (MSCN-backed estimators are global models with their own
// lifecycle).
func (l *Local) SaveJSON(w io.Writer) error {
	s := savedLocal{
		Format:    currentFormat,
		Kind:      KindLocal,
		QFT:       l.cfg.QFT,
		Opts:      l.cfg.Opts,
		RawLabels: l.cfg.RawLabels,
		ModelType: l.modelName,
	}
	tableNames := make([]string, 0, len(l.metas))
	for name := range l.metas {
		tableNames = append(tableNames, name)
	}
	sort.Strings(tableNames)
	for _, name := range tableNames {
		s.Metas = append(s.Metas, l.metas[name].Spec())
	}

	keys := make([]string, 0, len(l.models))
	for k := range l.models {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		lm := l.models[k]
		payload, err := marshalRegressor(lm.reg)
		if err != nil {
			return fmt.Errorf("estimator: serialize sub-schema %q: %w", k, err)
		}
		s.Models = append(s.Models, savedSubSchema{Tables: lm.tables, Payload: payload})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

func marshalRegressor(r Regressor) (json.RawMessage, error) {
	switch reg := r.(type) {
	case *GBRegressor:
		if reg.model == nil {
			return nil, fmt.Errorf("GB model not trained")
		}
		return json.Marshal(reg.model)
	case *NNRegressor:
		if reg.model == nil {
			return nil, fmt.Errorf("NN model not trained")
		}
		return json.Marshal(reg.model)
	}
	return nil, fmt.Errorf("regressor %T is not serializable", r)
}

// LoadLocal restores a trained estimator from r. The returned estimator
// answers Estimate immediately; Train may be called again to replace the
// models (e.g. after data drift).
func LoadLocal(r io.Reader) (*Local, error) {
	var s savedLocal
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("estimator: decode: %w", err)
	}
	if s.Format != currentFormat {
		return nil, fmt.Errorf("estimator: unsupported format %d (want %d)", s.Format, currentFormat)
	}
	if s.Kind != "" && s.Kind != KindLocal {
		return nil, fmt.Errorf("estimator: snapshot kind %q is not a local estimator (use LoadEstimator)", s.Kind)
	}

	// Validate the QFT name eagerly, mirroring NewLocal.
	probe := core.NewTableMetaFromAttrs("probe", []core.AttrMeta{{Name: "x", Min: 0, Max: 1}}, 2)
	if _, err := core.New(s.QFT, probe, s.Opts); err != nil {
		return nil, err
	}

	var factory RegressorFactory
	switch s.ModelType {
	case "GB":
		factory = NewGBFactory(gb.DefaultConfig())
	case "NN":
		factory = NewNNFactory(nn.DefaultConfig())
	default:
		return nil, fmt.Errorf("estimator: unknown model type %q", s.ModelType)
	}

	l := &Local{
		cfg: LocalConfig{
			QFT:          s.QFT,
			Opts:         s.Opts,
			NewRegressor: factory,
			RawLabels:    s.RawLabels,
		},
		metas:     make(map[string]*core.TableMeta, len(s.Metas)),
		models:    make(map[string]*localModel, len(s.Models)),
		transform: labelTransform{raw: s.RawLabels},
		modelName: s.ModelType,
	}
	for _, spec := range s.Metas {
		meta, err := core.NewTableMetaFromSpec(spec)
		if err != nil {
			return nil, err
		}
		l.metas[spec.Name] = meta
	}
	for _, sm := range s.Models {
		lm, err := l.modelFor(sm.Tables)
		if err != nil {
			return nil, err
		}
		if err := unmarshalRegressor(lm.reg, sm.Payload); err != nil {
			return nil, fmt.Errorf("estimator: restore sub-schema %v: %w", sm.Tables, err)
		}
		l.models[catalog.SubSchemaKey(lm.tables)] = lm
	}
	return l, nil
}

// savedGlobal is the on-disk format for global estimators: the schema (its
// tables and foreign-key edges), every table's featurization metadata, and
// the single model's weights.
type savedGlobal struct {
	Format    int                  `json:"format"`
	Kind      string               `json:"kind"` // "global"
	QFT       string               `json:"qft"`
	Opts      core.Options         `json:"opts"`
	RawLabels bool                 `json:"rawLabels"`
	ModelType string               `json:"modelType"` // "GB" or "NN"
	Tables    []string             `json:"tables"`
	FKs       []catalog.ForeignKey `json:"fks,omitempty"`
	Metas     []core.MetaSpec      `json:"metas"`
	Payload   json.RawMessage      `json:"payload"`
}

// SaveJSON writes the trained global estimator to w. Only GB- and NN-backed
// globals are serializable (the MSCN set network has its own lifecycle).
func (g *Global) SaveJSON(w io.Writer) error {
	payload, err := marshalRegressor(g.reg)
	if err != nil {
		return fmt.Errorf("estimator: serialize global model: %w", err)
	}
	s := savedGlobal{
		Format:    currentFormat,
		Kind:      KindGlobal,
		QFT:       g.qft,
		Opts:      g.opts,
		RawLabels: g.transform.raw,
		ModelType: g.reg.Name(),
		Tables:    g.feat.Schema.Tables,
		FKs:       g.feat.Schema.FKs,
		Payload:   payload,
	}
	for _, tn := range g.feat.Schema.Tables {
		s.Metas = append(s.Metas, g.metas[tn].Spec())
	}
	return json.NewEncoder(w).Encode(s)
}

// LoadGlobal restores a trained global estimator from r. Like LoadLocal, the
// result answers Estimate immediately with no table access.
func LoadGlobal(r io.Reader) (*Global, error) {
	var s savedGlobal
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("estimator: decode: %w", err)
	}
	if s.Format != currentFormat {
		return nil, fmt.Errorf("estimator: unsupported format %d (want %d)", s.Format, currentFormat)
	}
	if s.Kind != KindGlobal {
		return nil, fmt.Errorf("estimator: snapshot kind %q is not a global estimator", s.Kind)
	}
	var factory RegressorFactory
	switch s.ModelType {
	case "GB":
		factory = NewGBFactory(gb.DefaultConfig())
	case "NN":
		factory = NewNNFactory(nn.DefaultConfig())
	default:
		return nil, fmt.Errorf("estimator: unknown model type %q", s.ModelType)
	}
	metas := make(map[string]*core.TableMeta, len(s.Metas))
	for _, spec := range s.Metas {
		meta, err := core.NewTableMetaFromSpec(spec)
		if err != nil {
			return nil, err
		}
		metas[spec.Name] = meta
	}
	schema := &catalog.Schema{Tables: s.Tables, FKs: s.FKs}
	gf, err := core.NewGlobalFeaturizer(schema, metas, s.QFT, s.Opts)
	if err != nil {
		return nil, err
	}
	g := &Global{
		feat:      gf,
		reg:       factory(),
		transform: labelTransform{raw: s.RawLabels},
		qft:       s.QFT,
		opts:      s.Opts,
		metas:     metas,
	}
	g.initPools()
	if err := unmarshalRegressor(g.reg, s.Payload); err != nil {
		return nil, fmt.Errorf("estimator: restore global model: %w", err)
	}
	// A structurally valid model trained for a different schema still has the
	// wrong input width; catch the mismatch at load time, not per estimate.
	if gbr, ok := g.reg.(*GBRegressor); ok && gbr.model.Dim != gf.Dim() {
		return nil, fmt.Errorf("estimator: global model expects dim %d but featurizer produces %d", gbr.model.Dim, gf.Dim())
	}
	return g, nil
}

// savedHybrid is the on-disk format for hybrid estimators: the embedded
// local snapshot, which sub-schemas kept a model, and the pruning
// configuration. The fallback is stored by kind and reconstructed against
// the serving database at load time (System-R style baselines read table
// statistics, not weights).
type savedHybrid struct {
	Format           int             `json:"format"`
	Kind             string          `json:"kind"`     // "hybrid"
	Fallback         string          `json:"fallback"` // "independence"
	MaxQuantileError float64         `json:"maxQuantileError"`
	Quantile         float64         `json:"quantile"`
	Modeled          []string        `json:"modeled"`
	Local            json.RawMessage `json:"local"`
}

// SaveJSON writes the trained hybrid estimator to w. Only the Independence
// fallback is serializable — it is the System-R baseline the pruning rule is
// defined against and carries no state beyond the database it reads.
func (h *Hybrid) SaveJSON(w io.Writer) error {
	if _, ok := h.fallback.(*Independence); !ok {
		return fmt.Errorf("estimator: hybrid fallback %T is not serializable (only *Independence)", h.fallback)
	}
	var lb bytes.Buffer
	if err := h.local.SaveJSON(&lb); err != nil {
		return err
	}
	modeled := make([]string, 0, len(h.modeled))
	for k, on := range h.modeled {
		if on {
			modeled = append(modeled, k)
		}
	}
	sort.Strings(modeled)
	s := savedHybrid{
		Format:           currentFormat,
		Kind:             KindHybrid,
		Fallback:         "independence",
		MaxQuantileError: h.cfg.MaxQuantileError,
		Quantile:         h.cfg.Quantile,
		Modeled:          modeled,
		Local:            json.RawMessage(bytes.TrimSpace(lb.Bytes())),
	}
	return json.NewEncoder(w).Encode(s)
}

// LoadHybrid restores a trained hybrid estimator from r. db is required: the
// pruned sub-schemas route to the Independence fallback, which estimates
// from db's table statistics. The embedded local snapshot is schema-checked
// against db.
func LoadHybrid(r io.Reader, db *table.DB) (*Hybrid, error) {
	var s savedHybrid
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("estimator: decode: %w", err)
	}
	if s.Format != currentFormat {
		return nil, fmt.Errorf("estimator: unsupported format %d (want %d)", s.Format, currentFormat)
	}
	if s.Kind != KindHybrid {
		return nil, fmt.Errorf("estimator: snapshot kind %q is not a hybrid estimator", s.Kind)
	}
	if s.Fallback != "independence" {
		return nil, fmt.Errorf("estimator: unknown hybrid fallback %q", s.Fallback)
	}
	if db == nil {
		return nil, fmt.Errorf("estimator: a hybrid snapshot needs a database for its fallback")
	}
	if s.MaxQuantileError < 1 {
		return nil, fmt.Errorf("estimator: hybrid MaxQuantileError = %v, want >= 1", s.MaxQuantileError)
	}
	if s.Quantile < 0 || s.Quantile > 1 {
		return nil, fmt.Errorf("estimator: hybrid Quantile = %v, want in [0, 1]", s.Quantile)
	}
	loc, err := LoadLocal(bytes.NewReader(s.Local))
	if err != nil {
		return nil, err
	}
	if err := loc.ValidateSchema(db); err != nil {
		return nil, err
	}
	modeled := make(map[string]bool, len(s.Modeled))
	for _, k := range s.Modeled {
		if _, ok := loc.models[k]; !ok {
			return nil, fmt.Errorf("estimator: hybrid marks sub-schema %q as modeled but the local snapshot has no model for it", k)
		}
		modeled[k] = true
	}
	cfg := HybridConfig{Local: loc.cfg, MaxQuantileError: s.MaxQuantileError, Quantile: s.Quantile}
	return &Hybrid{local: loc, fallback: &Independence{DB: db}, cfg: cfg, modeled: modeled}, nil
}

// LoadEstimator restores any persisted estimator snapshot, dispatching on
// the document's "kind" field ("" and "local" → Local, "global" → Global,
// "hybrid" → Hybrid). It returns the estimator and its kind. When db is
// non-nil the restored estimator is schema-validated against it — a serving
// registry should always pass its database so an incompatible snapshot is
// rejected at load time instead of failing per request; hybrids require db
// for their fallback regardless.
func LoadEstimator(r io.Reader, db *table.DB) (Estimator, string, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, "", fmt.Errorf("estimator: read snapshot: %w", err)
	}
	var probe struct {
		Format int    `json:"format"`
		Kind   string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, "", fmt.Errorf("estimator: decode: %w", err)
	}
	// Check the format before dispatching so a version mismatch reads as
	// exactly that, not as some kind-specific field error downstream.
	if probe.Format != FormatVersion {
		return nil, "", fmt.Errorf("estimator: snapshot format %d is not supported (this build reads format %d)", probe.Format, FormatVersion)
	}
	switch probe.Kind {
	case "", KindLocal:
		loc, err := LoadLocal(bytes.NewReader(data))
		if err != nil {
			return nil, "", err
		}
		if db != nil {
			if err := loc.ValidateSchema(db); err != nil {
				return nil, "", err
			}
		}
		return loc, KindLocal, nil
	case KindGlobal:
		g, err := LoadGlobal(bytes.NewReader(data))
		if err != nil {
			return nil, "", err
		}
		if db != nil {
			if err := g.ValidateSchema(db); err != nil {
				return nil, "", err
			}
		}
		return g, KindGlobal, nil
	case KindHybrid:
		h, err := LoadHybrid(bytes.NewReader(data), db)
		if err != nil {
			return nil, "", err
		}
		return h, KindHybrid, nil
	}
	return nil, "", fmt.Errorf("estimator: unknown snapshot kind %q", probe.Kind)
}

func unmarshalRegressor(r Regressor, payload json.RawMessage) error {
	switch reg := r.(type) {
	case *GBRegressor:
		var m gb.Model
		if err := json.Unmarshal(payload, &m); err != nil {
			return err
		}
		// A wrong-kind or hand-damaged payload can unmarshal "successfully"
		// into a structurally broken model (no trees, dangling child
		// indices); reject it here rather than panic at estimation time.
		if err := m.Validate(); err != nil {
			return err
		}
		reg.model = &m
		reg.Cfg = m.Cfg
		return nil
	case *NNRegressor:
		var m nn.Model
		if err := json.Unmarshal(payload, &m); err != nil {
			return err
		}
		reg.model = &m
		return nil
	}
	return fmt.Errorf("regressor %T is not restorable", r)
}
