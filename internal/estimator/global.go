package estimator

import (
	"context"
	"fmt"
	"sync"

	"qfe/internal/catalog"
	"qfe/internal/core"
	"qfe/internal/ml/mscn"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
	"qfe/internal/workload"
)

// Global is the global-model estimator of Section 2.1.2: a single regressor
// over the concatenated per-table featurizations plus the table bit-vector,
// serving every sub-schema of the schema.
type Global struct {
	feat      *core.GlobalFeaturizer
	reg       Regressor
	transform labelTransform
	qft       string
	// opts and metas are retained so a trained Global can be persisted
	// (SaveJSON) and later rebuilt without the data.
	opts  core.Options
	metas map[string]*core.TableMeta

	vecPool   *sync.Pool // *[]float64, single-query featurization buffers
	batchPool *sync.Pool // *batchScratch, batch matrices
}

// initPools sizes the featurization buffer pools from the featurizer's
// fixed dimension; called by both NewGlobal and LoadGlobal.
func (g *Global) initPools() {
	g.vecPool = newVecPool(g.feat.Dim())
	g.batchPool = newBatchPool()
}

// NewGlobal builds the estimator over the schema using the named QFT.
func NewGlobal(db *table.DB, schema *catalog.Schema, qft string, opts core.Options, factory RegressorFactory, rawLabels bool) (*Global, error) {
	opts = opts.Normalized()
	metas := make(map[string]*core.TableMeta, len(schema.Tables))
	for _, tn := range schema.Tables {
		t := db.Table(tn)
		if t == nil {
			return nil, fmt.Errorf("estimator: schema table %q not in database", tn)
		}
		metas[tn] = core.NewTableMeta(t, opts.MaxEntriesPerAttr)
	}
	gf, err := core.NewGlobalFeaturizer(schema, metas, qft, opts)
	if err != nil {
		return nil, err
	}
	g := &Global{feat: gf, reg: factory(), transform: labelTransform{raw: rawLabels}, qft: qft, opts: opts, metas: metas}
	g.initPools()
	return g, nil
}

// ValidateSchema checks that the estimator's featurization metadata is
// compatible with db, mirroring Local.ValidateSchema: every schema table
// must exist and carry every featurized attribute.
func (g *Global) ValidateSchema(db *table.DB) error {
	for _, name := range g.feat.Schema.Tables {
		t := db.Table(name)
		if t == nil {
			return fmt.Errorf("estimator: schema mismatch: estimator was trained on table %q, which the database does not have (tables: %v)",
				name, db.TableNames())
		}
		for _, a := range g.metas[name].Attrs {
			if t.Column(a.Name) == nil {
				return fmt.Errorf("estimator: schema mismatch: table %q has no column %q the estimator was trained on (columns: %v)",
					name, a.Name, t.ColumnNames())
			}
		}
	}
	return nil
}

// Name implements Estimator.
func (g *Global) Name() string {
	return fmt.Sprintf("%s + %s (global)", g.reg.Name(), g.qft)
}

// Train fits the single global model on the whole training set.
func (g *Global) Train(train workload.Set) error {
	X := make([][]float64, len(train))
	for i, lq := range train {
		vec, err := g.feat.Featurize(lq.Query)
		if err != nil {
			return fmt.Errorf("estimator: featurize training query %d: %w", i, err)
		}
		X[i] = vec
	}
	return g.reg.Fit(X, g.transform.transformAll(train.Cards()))
}

// Estimate implements Estimator: featurize into a pooled buffer, predict
// through the model's compiled layout, invert the label transform.
func (g *Global) Estimate(q *sqlparse.Query) (float64, error) {
	bufp := g.vecPool.Get().(*[]float64)
	if err := g.feat.FeaturizeInto(*bufp, q); err != nil {
		g.vecPool.Put(bufp)
		return 0, err
	}
	pred := g.reg.Predict(*bufp)
	g.vecPool.Put(bufp)
	return g.transform.inverse(pred), nil
}

// EstimateBatch implements BatchEstimator: the whole batch featurizes into
// one reused flat matrix and goes through the regressor's batch predict.
// Per-query failures land in errs without aborting the rest.
func (g *Global) EstimateBatch(ctx context.Context, qs []*sqlparse.Query) ([]float64, []error) {
	ests := make([]float64, len(qs))
	errs := make([]error, len(qs))
	sc := g.batchPool.Get().(*batchScratch)
	sc.resize(len(qs), g.feat.Dim())
	n := 0
	for qi, q := range qs {
		if err := ctx.Err(); err != nil {
			errs[qi] = err
			continue
		}
		if err := g.feat.FeaturizeInto(sc.rows[n], q); err != nil {
			errs[qi] = err
			continue
		}
		sc.idx[n] = qi
		n++
	}
	predictBatch(g.reg, sc, n)
	for r := 0; r < n; r++ {
		ests[sc.idx[r]] = g.transform.inverse(sc.preds[r])
	}
	g.batchPool.Put(sc)
	return ests, errs
}

// MemoryBytes reports the trained model's footprint.
func (g *Global) MemoryBytes() int { return g.reg.MemoryBytes() }

// MSCN is the multi-set convolutional estimator: the original MSCN
// featurization ("MSCN w/o mods", Table 2) or the paper's per-attribute QFT
// modification ("MSCN + conj", Section 4.2), over the mscn network.
type MSCN struct {
	feat      *core.MSCNFeaturizer
	cfg       mscn.Config
	model     *mscn.Model
	transform labelTransform
}

// NewMSCN builds the estimator. mode selects the predicate-set encoding.
func NewMSCN(db *table.DB, schema *catalog.Schema, mode core.MSCNMode, opts core.Options, cfg mscn.Config, rawLabels bool) (*MSCN, error) {
	opts = opts.Normalized()
	metas := make(map[string]*core.TableMeta, len(schema.Tables))
	for _, tn := range schema.Tables {
		t := db.Table(tn)
		if t == nil {
			return nil, fmt.Errorf("estimator: schema table %q not in database", tn)
		}
		metas[tn] = core.NewTableMeta(t, opts.MaxEntriesPerAttr)
	}
	mf, err := core.NewMSCNFeaturizer(schema, metas, mode, opts)
	if err != nil {
		return nil, err
	}
	return &MSCN{feat: mf, cfg: cfg, transform: labelTransform{raw: rawLabels}}, nil
}

// Name implements Estimator.
func (m *MSCN) Name() string {
	switch m.feat.Mode {
	case core.MSCNOriginal:
		return "MSCN w/o mods (global)"
	case core.MSCNRange:
		return "MSCN + range (global)"
	default:
		return "MSCN + conj (global)"
	}
}

// Train fits the set network on the whole training set.
func (m *MSCN) Train(train workload.Set) error {
	samples := make([]*mscn.Sets, len(train))
	for i, lq := range train {
		s, err := m.featurize(lq.Query)
		if err != nil {
			return fmt.Errorf("estimator: featurize training query %d: %w", i, err)
		}
		samples[i] = s
	}
	model, err := mscn.Train(samples, m.transform.transformAll(train.Cards()), m.cfg)
	if err != nil {
		return err
	}
	m.model = model
	return nil
}

func (m *MSCN) featurize(q *sqlparse.Query) (*mscn.Sets, error) {
	sets, err := m.feat.Featurize(q)
	if err != nil {
		return nil, err
	}
	return &mscn.Sets{Tables: sets.Tables, Joins: sets.Joins, Preds: sets.Preds}, nil
}

// Estimate implements Estimator.
func (m *MSCN) Estimate(q *sqlparse.Query) (float64, error) {
	if m.model == nil {
		return 0, fmt.Errorf("estimator: MSCN used before Train")
	}
	s, err := m.featurize(q)
	if err != nil {
		return 0, err
	}
	return m.transform.inverse(m.model.Predict(s)), nil
}

// MemoryBytes reports the trained network's footprint.
func (m *MSCN) MemoryBytes() int {
	if m.model == nil {
		return 0
	}
	return m.model.MemoryBytes()
}
