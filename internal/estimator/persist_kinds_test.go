package estimator

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"qfe/internal/catalog"
	"qfe/internal/core"
)

// These tests cover every snapshot kind the serving registry can hot-load
// via LoadEstimator — Local (covered more deeply in persist_test.go),
// Global, and Hybrid, each with GB- and NN-backed models where applicable —
// plus the corrupted-file rejections that let hot-reload trust a snapshot
// the moment it loads.

func forestSchema() *catalog.Schema {
	return &catalog.Schema{Tables: []string{"forest"}}
}

func trainGlobal(t *testing.T, factory RegressorFactory, qft string) *Global {
	t.Helper()
	e := env(t)
	g, err := NewGlobal(e.db, forestSchema(), qft, core.Options{MaxEntriesPerAttr: 16, AttrSel: true}, factory, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Train(e.train[:400]); err != nil {
		t.Fatal(err)
	}
	return g
}

func roundTripGlobal(t *testing.T, g *Global) *Global {
	t.Helper()
	var buf bytes.Buffer
	if err := g.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadGlobal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestSaveLoadGlobalGB(t *testing.T) {
	e := env(t)
	g := trainGlobal(t, NewGBFactory(smallGB()), "conjunctive")
	back := roundTripGlobal(t, g)
	if back.Name() != g.Name() {
		t.Errorf("restored Name = %q, want %q", back.Name(), g.Name())
	}
	for _, l := range e.test[:40] {
		want, err := g.Estimate(l.Query)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Estimate(l.Query)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("restored global estimate %v != original %v for %s", got, want, l.Query)
		}
	}
	if err := back.ValidateSchema(e.db); err != nil {
		t.Errorf("restored global fails schema validation against its own database: %v", err)
	}
}

func TestSaveLoadGlobalNN(t *testing.T) {
	e := env(t)
	g := trainGlobal(t, NewNNFactory(smallNN()), "range")
	back := roundTripGlobal(t, g)
	for _, l := range e.test[:25] {
		want, err := g.Estimate(l.Query)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Estimate(l.Query)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("restored NN global estimate %v != original %v", got, want)
		}
	}
}

func trainHybrid(t *testing.T, maxQErr float64) *Hybrid {
	t.Helper()
	e := env(t)
	h, err := NewHybrid(e.db, HybridConfig{
		Local: LocalConfig{
			QFT:          "conjunctive",
			Opts:         core.Options{MaxEntriesPerAttr: 16, AttrSel: true},
			NewRegressor: NewGBFactory(smallGB()),
		},
		MaxQuantileError: maxQErr,
	}, &Independence{DB: e.db})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.Train(e.train[:400]); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSaveLoadHybrid(t *testing.T) {
	e := env(t)
	for _, tc := range []struct {
		name    string
		maxQErr float64
	}{
		{"modeled", 1.05}, // the bar is strict: the sub-schema keeps its model
		{"pruned", 1e12},  // the bar is trivial: everything routes to the fallback
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := trainHybrid(t, tc.maxQErr)
			var buf bytes.Buffer
			if err := h.SaveJSON(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := LoadHybrid(bytes.NewReader(buf.Bytes()), e.db)
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range e.test[:40] {
				want, err := h.Estimate(l.Query)
				if err != nil {
					t.Fatal(err)
				}
				got, err := back.Estimate(l.Query)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("restored hybrid estimate %v != original %v for %s", got, want, l.Query)
				}
			}
			if _, err := LoadHybrid(bytes.NewReader(buf.Bytes()), nil); err == nil {
				t.Error("hybrid load without a database accepted; the fallback needs one")
			}
		})
	}
}

func TestHybridSaveRejectsForeignFallback(t *testing.T) {
	e := env(t)
	h, err := NewHybrid(e.db, HybridConfig{
		Local: LocalConfig{
			QFT:          "conjunctive",
			Opts:         core.Options{MaxEntriesPerAttr: 8},
			NewRegressor: NewGBFactory(smallGB()),
		},
		MaxQuantileError: 2,
	}, NewSampling(e.db, 0.01, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SaveJSON(&bytes.Buffer{}); err == nil {
		t.Error("hybrid with a Sampling fallback serialized; only Independence is restorable")
	}
}

func TestLoadEstimatorDispatch(t *testing.T) {
	e := env(t)

	// Local (both with and without the explicit kind field).
	localBytes := savedGB(t)
	est, kind, err := LoadEstimator(bytes.NewReader(localBytes), e.db)
	if err != nil || kind != KindLocal {
		t.Fatalf("local dispatch: kind=%q err=%v", kind, err)
	}
	if _, ok := est.(*Local); !ok {
		t.Fatalf("local dispatch returned %T", est)
	}
	legacy := strings.Replace(string(localBytes), `"kind":"local",`, "", 1)
	if legacy == string(localBytes) {
		t.Fatal("kind field not found in local snapshot — format changed?")
	}
	if _, kind, err = LoadEstimator(strings.NewReader(legacy), e.db); err != nil || kind != KindLocal {
		t.Fatalf("legacy (kind-less) local dispatch: kind=%q err=%v", kind, err)
	}

	// Global.
	var gb bytes.Buffer
	if err := trainGlobal(t, NewGBFactory(smallGB()), "conjunctive").SaveJSON(&gb); err != nil {
		t.Fatal(err)
	}
	if est, kind, err = LoadEstimator(bytes.NewReader(gb.Bytes()), e.db); err != nil || kind != KindGlobal {
		t.Fatalf("global dispatch: kind=%q err=%v", kind, err)
	}
	if _, ok := est.(*Global); !ok {
		t.Fatalf("global dispatch returned %T", est)
	}

	// Hybrid.
	var hb bytes.Buffer
	if err := trainHybrid(t, 1.05).SaveJSON(&hb); err != nil {
		t.Fatal(err)
	}
	if est, kind, err = LoadEstimator(bytes.NewReader(hb.Bytes()), e.db); err != nil || kind != KindHybrid {
		t.Fatalf("hybrid dispatch: kind=%q err=%v", kind, err)
	}
	if _, ok := est.(*Hybrid); !ok {
		t.Fatalf("hybrid dispatch returned %T", est)
	}

	// Rejections.
	if _, _, err := LoadEstimator(strings.NewReader("not json"), e.db); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := LoadEstimator(strings.NewReader(`{"format":1,"kind":"mscn"}`), e.db); err == nil {
		t.Error("unknown kind accepted")
	}
	// Kind/loader mismatches must fail loudly, not mis-restore.
	if _, err := LoadLocal(bytes.NewReader(gb.Bytes())); err == nil {
		t.Error("LoadLocal accepted a global snapshot")
	}
	if _, err := LoadGlobal(bytes.NewReader(localBytes)); err == nil {
		t.Error("LoadGlobal accepted a local snapshot")
	}
}

func TestLoadGlobalRejectsTruncatedFile(t *testing.T) {
	var buf bytes.Buffer
	if err := trainGlobal(t, NewGBFactory(smallGB()), "conjunctive").SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, frac := range []float64{0.1, 0.5, 0.9, 0.99} {
		cut := data[:int(float64(len(data))*frac)]
		if _, err := LoadGlobal(bytes.NewReader(cut)); err == nil {
			t.Errorf("truncation to %d/%d bytes accepted", len(cut), len(data))
		}
	}
}

func TestLoadGlobalRejectsCorruptedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := trainGlobal(t, NewGBFactory(smallGB()), "conjunctive").SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s savedGlobal
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name    string
		payload string
	}{
		{"no trees", `{"cfg":{},"base":1,"trees":[],"dim":3}`},
		{"dangling child index", `{"cfg":{},"base":1,"dim":3,"trees":[{"nodes":[{"f":0,"t":0.5,"l":7,"r":9}]}]}`},
		// Structurally valid but trained for a 3-wide input: the dim check
		// must refuse to pair it with this schema's featurizer.
		{"dim mismatch", `{"cfg":{},"base":1,"dim":3,"trees":[{"nodes":[{"f":0,"t":0.5,"l":1,"r":2},{"leaf":true,"v":1},{"leaf":true,"v":2}]}]}`},
	} {
		t.Run(c.name, func(t *testing.T) {
			damaged := s
			damaged.Payload = json.RawMessage(c.payload)
			out, err := json.Marshal(damaged)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := LoadGlobal(bytes.NewReader(out)); err == nil {
				t.Errorf("corrupted global payload (%s) accepted", c.name)
			}
		})
	}
}

func TestLoadHybridRejectsDanglingModeledKey(t *testing.T) {
	e := env(t)
	var buf bytes.Buffer
	if err := trainHybrid(t, 1.05).SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s savedHybrid
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	s.Modeled = append(s.Modeled, "no+such+subschema")
	out, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHybrid(bytes.NewReader(out), e.db); err == nil {
		t.Error("hybrid with a modeled key missing from the local snapshot accepted")
	}
}
