package estimator

import (
	"context"
	"fmt"

	"qfe/internal/ml/gb"
	"qfe/internal/ml/linreg"
	"qfe/internal/ml/nn"
)

// FitOpts carries the cancellation-era fitting options of CtxRegressor.
// Checkpoint payloads are opaque to this layer: each model family defines
// its own format, and the bytes round-trip through the caller unchanged.
type FitOpts struct {
	// CheckpointEvery emits a checkpoint every this-many model-specific
	// units of progress (trees for GB, epochs for NN); 0 disables.
	CheckpointEvery int
	// OnCheckpoint receives each serialized checkpoint; a non-nil return
	// aborts the fit.
	OnCheckpoint func(payload []byte) error
	// Resume, when non-empty, continues a fit from a payload previously
	// passed to OnCheckpoint.
	Resume []byte
}

// CtxRegressor extends Regressor with a cancelable, checkpointable fit.
// All built-in regressors implement it; models with nothing worth
// checkpointing (closed-form linear regression) honor cancellation and
// ignore the checkpoint options.
type CtxRegressor interface {
	Regressor
	FitCtx(ctx context.Context, X [][]float64, y []float64, opts FitOpts) error
}

// Regressor is the model-agnostic fitting interface the QFT layer plugs
// into — the paper's point that its featurizations are model-independent
// (Section 4) made concrete. Both the gradient-boosting and feed-forward
// models satisfy it; MSCN has its own path because its input is a set
// structure rather than a flat vector.
type Regressor interface {
	// Name is the paper's model abbreviation ("GB", "NN").
	Name() string
	// Fit trains on row-major features X and targets y.
	Fit(X [][]float64, y []float64) error
	// Predict returns the regression output for one feature vector.
	Predict(x []float64) float64
	// MemoryBytes reports the trained model's approximate resident size
	// (Section 5.7 accounting).
	MemoryBytes() int
}

// RegressorFactory builds a fresh, untrained Regressor. Local-model
// estimators call it once per sub-schema.
type RegressorFactory func() Regressor

// GBRegressor adapts gb.Model to the Regressor interface.
type GBRegressor struct {
	Cfg   gb.Config
	model *gb.Model
}

// NewGBFactory returns a factory producing gradient-boosting regressors
// with the given configuration.
func NewGBFactory(cfg gb.Config) RegressorFactory {
	return func() Regressor { return &GBRegressor{Cfg: cfg} }
}

// Name implements Regressor.
func (r *GBRegressor) Name() string { return "GB" }

// Fit implements Regressor.
func (r *GBRegressor) Fit(X [][]float64, y []float64) error {
	return r.FitCtx(context.Background(), X, y, FitOpts{})
}

// FitCtx implements CtxRegressor; checkpoints every CheckpointEvery trees.
func (r *GBRegressor) FitCtx(ctx context.Context, X [][]float64, y []float64, opts FitOpts) error {
	m, err := gb.TrainCtx(ctx, X, y, r.Cfg, &gb.TrainOpts{
		CheckpointEvery: opts.CheckpointEvery,
		OnCheckpoint:    opts.OnCheckpoint,
		Resume:          opts.Resume,
	})
	if err != nil {
		return err
	}
	r.model = m
	return nil
}

// Predict implements Regressor.
func (r *GBRegressor) Predict(x []float64) float64 {
	if r.model == nil {
		panic("estimator: GBRegressor used before Fit")
	}
	return r.model.Predict(x)
}

// PredictInto implements the batch fast path over the compiled forest.
func (r *GBRegressor) PredictInto(dst []float64, X [][]float64) {
	if r.model == nil {
		panic("estimator: GBRegressor used before Fit")
	}
	r.model.PredictInto(dst, X)
}

// MemoryBytes implements Regressor.
func (r *GBRegressor) MemoryBytes() int {
	if r.model == nil {
		return 0
	}
	return r.model.MemoryBytes()
}

// NNRegressor adapts nn.Model to the Regressor interface.
type NNRegressor struct {
	Cfg   nn.Config
	model *nn.Model
}

// NewNNFactory returns a factory producing feed-forward regressors with the
// given configuration.
func NewNNFactory(cfg nn.Config) RegressorFactory {
	return func() Regressor { return &NNRegressor{Cfg: cfg} }
}

// Name implements Regressor.
func (r *NNRegressor) Name() string { return "NN" }

// Fit implements Regressor.
func (r *NNRegressor) Fit(X [][]float64, y []float64) error {
	return r.FitCtx(context.Background(), X, y, FitOpts{})
}

// FitCtx implements CtxRegressor; checkpoints every CheckpointEvery epochs.
func (r *NNRegressor) FitCtx(ctx context.Context, X [][]float64, y []float64, opts FitOpts) error {
	m, err := nn.TrainCtx(ctx, X, y, r.Cfg, &nn.TrainOpts{
		CheckpointEvery: opts.CheckpointEvery,
		OnCheckpoint:    opts.OnCheckpoint,
		Resume:          opts.Resume,
	})
	if err != nil {
		return err
	}
	r.model = m
	return nil
}

// Predict implements Regressor.
func (r *NNRegressor) Predict(x []float64) float64 {
	if r.model == nil {
		panic("estimator: NNRegressor used before Fit")
	}
	return r.model.Predict(x)
}

// PredictInto implements the batch fast path over the pooled activations.
func (r *NNRegressor) PredictInto(dst []float64, X [][]float64) {
	if r.model == nil {
		panic("estimator: NNRegressor used before Fit")
	}
	r.model.PredictInto(dst, X)
}

// MemoryBytes implements Regressor.
func (r *NNRegressor) MemoryBytes() int {
	if r.model == nil {
		return 0
	}
	return r.model.MemoryBytes()
}

// LinRegRegressor adapts linreg.Model to the Regressor interface. Linear
// regression is the "simpler model" the paper tested and excluded because
// its estimates trail GB and NN by a significant factor (Section 2.2); it
// is kept so that exclusion is reproducible.
type LinRegRegressor struct {
	Cfg   linreg.Config
	model *linreg.Model
}

// NewLinRegFactory returns a factory producing ridge-regression regressors.
func NewLinRegFactory(cfg linreg.Config) RegressorFactory {
	return func() Regressor { return &LinRegRegressor{Cfg: cfg} }
}

// Name implements Regressor.
func (r *LinRegRegressor) Name() string { return "LR" }

// Fit implements Regressor.
func (r *LinRegRegressor) Fit(X [][]float64, y []float64) error {
	return r.FitCtx(context.Background(), X, y, FitOpts{})
}

// FitCtx implements CtxRegressor. The closed-form solve honors
// cancellation but has no resumable state; checkpoint options are ignored.
func (r *LinRegRegressor) FitCtx(ctx context.Context, X [][]float64, y []float64, _ FitOpts) error {
	m, err := linreg.TrainCtx(ctx, X, y, r.Cfg)
	if err != nil {
		return err
	}
	r.model = m
	return nil
}

// Predict implements Regressor.
func (r *LinRegRegressor) Predict(x []float64) float64 {
	if r.model == nil {
		panic("estimator: LinRegRegressor used before Fit")
	}
	return r.model.Predict(x)
}

// PredictInto implements the batch fast path (linear prediction is already
// allocation-free; this keeps batch dispatch uniform across model kinds).
func (r *LinRegRegressor) PredictInto(dst []float64, X [][]float64) {
	if r.model == nil {
		panic("estimator: LinRegRegressor used before Fit")
	}
	r.model.PredictInto(dst, X)
}

// MemoryBytes implements Regressor.
func (r *LinRegRegressor) MemoryBytes() int {
	if r.model == nil {
		return 0
	}
	return r.model.MemoryBytes()
}

// FactoryByName resolves the paper's model abbreviations to factories with
// the given configs; convenient for the experiment harness and CLIs.
func FactoryByName(name string, gbCfg gb.Config, nnCfg nn.Config) (RegressorFactory, error) {
	switch name {
	case "GB", "gb":
		return NewGBFactory(gbCfg), nil
	case "NN", "nn":
		return NewNNFactory(nnCfg), nil
	case "LR", "lr":
		return NewLinRegFactory(linreg.DefaultConfig()), nil
	}
	return nil, fmt.Errorf("estimator: unknown model %q (want GB, NN, or LR)", name)
}
