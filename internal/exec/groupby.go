package exec

import (
	"encoding/binary"
	"fmt"

	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// CountGroups returns the number of distinct grouping-key combinations
// among the rows qualifying q's selection — the result cardinality of a
// filtered GROUP BY query, the quantity Kipf et al. [11] call hard to
// estimate and that Section 6's GROUP BY featurization targets. Only
// single-table queries are supported (the scope of the Section 6 sketch).
func CountGroups(db *table.DB, q *sqlparse.Query) (int64, error) {
	if len(q.Tables) != 1 {
		return 0, fmt.Errorf("exec: group counting supports single-table queries, got %v", q.Tables)
	}
	if len(q.GroupBy) == 0 {
		// No grouping: the entire qualifying set is one group when
		// non-empty, zero groups otherwise.
		c, err := Count(db, q)
		if err != nil {
			return 0, err
		}
		if c > 0 {
			return 1, nil
		}
		return 0, nil
	}
	t := db.Table(q.Tables[0])
	if t == nil {
		return 0, fmt.Errorf("exec: unknown table %q", q.Tables[0])
	}
	cols := make([][]int64, len(q.GroupBy))
	for i, name := range q.GroupBy {
		col := t.Column(name)
		if col == nil {
			return 0, fmt.Errorf("exec: table %q has no grouping column %q", t.Name, name)
		}
		cols[i] = col.Vals
	}
	bm, err := EvalExpr(t, q.Where)
	if err != nil {
		return 0, err
	}

	// Single grouping attribute: hash the value directly.
	if len(cols) == 1 {
		seen := make(map[int64]struct{}, 256)
		bm.ForEach(func(r int) {
			seen[cols[0][r]] = struct{}{}
		})
		return int64(len(seen)), nil
	}

	// Multiple attributes: encode the combination into a byte key.
	seen := make(map[string]struct{}, 256)
	key := make([]byte, 8*len(cols))
	bm.ForEach(func(r int) {
		for i, col := range cols {
			binary.LittleEndian.PutUint64(key[8*i:], uint64(col[r]))
		}
		seen[string(key)] = struct{}{}
	})
	return int64(len(seen)), nil
}
