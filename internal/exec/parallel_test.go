package exec

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// genTable builds a randomized table large enough that parallel labeling
// does real work, with a skewed low-cardinality column so predicates repeat
// and the bitmap cache gets hits.
func genTable(seed int64, rows int) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	a := make([]int64, rows)
	b := make([]int64, rows)
	c := make([]int64, rows)
	for i := 0; i < rows; i++ {
		a[i] = int64(rng.Intn(1000))
		b[i] = int64(rng.Intn(10))
		c[i] = int64(rng.Intn(2))
	}
	t := table.New("g")
	t.MustAddColumn(table.NewColumn("a", a))
	t.MustAddColumn(table.NewColumn("b", b))
	t.MustAddColumn(table.NewColumn("c", c))
	return t
}

// genQueries produces count random conjunctive/disjunctive queries over
// genTable's schema, with heavy predicate reuse.
func genQueries(seed int64, count int) []*sqlparse.Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]*sqlparse.Query, count)
	for i := range qs {
		lo := int64(rng.Intn(900))
		hi := lo + int64(rng.Intn(100))
		kids := []sqlparse.Expr{
			&sqlparse.Pred{Attr: "a", Op: sqlparse.OpGe, Val: lo},
			&sqlparse.Pred{Attr: "a", Op: sqlparse.OpLe, Val: hi},
			&sqlparse.Pred{Attr: "b", Op: sqlparse.OpEq, Val: int64(rng.Intn(10))},
		}
		var where sqlparse.Expr = sqlparse.NewAnd(kids...)
		if rng.Intn(3) == 0 {
			where = sqlparse.NewOr(where, &sqlparse.Pred{Attr: "c", Op: sqlparse.OpEq, Val: int64(rng.Intn(2))})
		}
		qs[i] = &sqlparse.Query{Tables: []string{"g"}, Where: where}
	}
	return qs
}

// TestCountManyCtxMatchesSequential: the tentpole determinism guarantee —
// parallel labeling with a shared bitmap cache produces bit-identical
// labels to the sequential path, for several worker counts.
func TestCountManyCtxMatchesSequential(t *testing.T) {
	tbl := genTable(1, 20_000)
	db := singleDB(tbl)
	qs := genQueries(2, 300)

	want, err := CountMany(db, qs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 8} {
		got, err := CountManyWorkers(context.Background(), db, qs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: query %d labeled %d, sequential %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestCountManyCtxPartialResults: a failing query must not discard the
// labels already computed, and the reported error must carry the smallest
// failing index regardless of scheduling.
func TestCountManyCtxPartialResults(t *testing.T) {
	tbl := genTable(3, 1000)
	db := singleDB(tbl)
	qs := genQueries(4, 50)
	// Two bad queries; index 20 must win deterministically.
	qs[20] = &sqlparse.Query{Tables: []string{"nosuch"}}
	qs[40] = &sqlparse.Query{Tables: []string{"alsonot"}}

	for _, workers := range []int{1, 4} {
		got, err := CountManyWorkers(context.Background(), db, qs, workers)
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		var qe *QueryError
		if !errors.As(err, &qe) {
			t.Fatalf("workers=%d: error %T is not a *QueryError", workers, err)
		}
		if qe.Index != 20 {
			t.Errorf("workers=%d: first error index = %d, want 20", workers, qe.Index)
		}
		if len(got) != len(qs) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), len(qs))
		}
		for i, c := range got {
			switch i {
			case 20, 40:
				if c != -1 {
					t.Errorf("workers=%d: failed query %d has label %d, want -1", workers, i, c)
				}
			default:
				if c < 0 {
					t.Errorf("workers=%d: query %d label lost (%d)", workers, i, c)
				}
			}
		}
	}
}

// TestCountManyCtxCancellation: a canceled context stops the batch with a
// context error instead of running every query to completion.
func TestCountManyCtxCancellation(t *testing.T) {
	tbl := genTable(5, 1000)
	db := singleDB(tbl)
	qs := genQueries(6, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CountManyCtx(ctx, db, qs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCountManyOldWrapper: CountMany keeps its all-or-nothing contract.
func TestCountManyOldWrapper(t *testing.T) {
	tbl := genTable(7, 500)
	db := singleDB(tbl)
	qs := genQueries(8, 10)
	qs[3] = &sqlparse.Query{Tables: []string{"nosuch"}}
	out, err := CountMany(db, qs)
	if err == nil {
		t.Fatal("expected error")
	}
	if out != nil {
		t.Fatalf("CountMany must return nil results on error, got %v", out)
	}
}

// TestEvalExprCachedMatchesUncached: cached evaluation returns the same
// bitmaps as direct evaluation, and cached leaves survive in-place And/Or
// combination uncorrupted (the read-only discipline).
func TestEvalExprCachedMatchesUncached(t *testing.T) {
	tbl := genTable(9, 5000)
	qs := genQueries(10, 200)
	cache := NewPredCache(0)
	for pass := 0; pass < 2; pass++ { // second pass exercises hits
		for i, q := range qs {
			want, err := EvalExpr(tbl, q.Where)
			if err != nil {
				t.Fatal(err)
			}
			got, err := EvalExprCached(tbl, q.Where, cache)
			if err != nil {
				t.Fatal(err)
			}
			if got.Count() != want.Count() {
				t.Fatalf("pass %d query %d: cached count %d, uncached %d", pass, i, got.Count(), want.Count())
			}
		}
	}
	hits, misses, entries := cache.Stats()
	if hits == 0 {
		t.Error("cache registered no hits across repeated queries")
	}
	if misses == 0 || entries == 0 {
		t.Errorf("cache stats: %d misses, %d entries", misses, entries)
	}
}

// TestPredCacheEviction: the byte budget is enforced via FIFO eviction and
// results stay exact after eviction churn.
func TestPredCacheEviction(t *testing.T) {
	tbl := genTable(11, 4096) // 64 words = 512 bytes per bitmap
	// Budget for ~4 bitmaps; 50 distinct predicates force constant churn.
	cache := NewPredCache(4 * 512)
	for round := 0; round < 3; round++ {
		for v := int64(0); v < 50; v++ {
			p := &sqlparse.Pred{Attr: "a", Op: sqlparse.OpLe, Val: v * 20}
			want, err := EvalPred(tbl, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cache.eval(tbl, p)
			if err != nil {
				t.Fatal(err)
			}
			if got.Count() != want.Count() {
				t.Fatalf("v=%d: cached %d, direct %d", v, got.Count(), want.Count())
			}
		}
	}
	_, _, entries := cache.Stats()
	if entries > 4 {
		t.Errorf("cache holds %d entries, budget allows 4", entries)
	}
}

// TestBindDoesNotMutateSharedPred: the satellite regression — a *Pred node
// shared by two queries (workload templates) must survive the first Bind
// intact so the second query binds correctly, and concurrent evaluation of
// already-bound queries never observes a mutation.
func TestBindDoesNotMutateSharedPred(t *testing.T) {
	vals := []string{"ash", "beech", "cedar", "beech", "ash", "cedar", "beech"}
	tbl := table.New("trees")
	tbl.MustAddColumn(table.NewStringColumn("species", vals))
	db := singleDB(tbl)

	lit := "beech"
	shared := &sqlparse.Pred{Attr: "species", Op: sqlparse.OpEq, Str: &lit}
	q1 := &sqlparse.Query{Tables: []string{"trees"}, Where: shared}
	q2 := &sqlparse.Query{Tables: []string{"trees"}, Where: shared}

	if err := Bind(q1, db); err != nil {
		t.Fatal(err)
	}
	if shared.Str == nil || *shared.Str != "beech" {
		t.Fatal("Bind mutated the shared Pred node in place")
	}
	if err := Bind(q2, db); err != nil {
		t.Fatalf("binding the second query sharing the node: %v", err)
	}
	c1, err := Count(db, q1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Count(db, q2)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != 3 || c2 != 3 {
		t.Errorf("counts after shared-node binds: %d and %d, want 3 and 3", c1, c2)
	}
}
