package exec

import (
	"sync"

	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// DefaultPredCacheBytes is the bitmap budget of a PredCache built with
// NewPredCache(0): 16 MiB of bitmap words, enough for ~13k cached predicates
// over a 100k-row table.
const DefaultPredCacheBytes = 16 << 20

// predKey identifies one bound simple predicate over one table. Generated
// workloads reuse the same simple predicates on the same columns constantly
// (anchored ranges, tiny-domain equalities), so this key has high hit rates
// during batch labeling.
type predKey struct {
	tbl  string
	attr string
	op   sqlparse.CmpOp
	val  int64
}

// PredCache memoizes the qualifying-row bitmap of simple predicates, keyed
// by (table, attr, op, val). It turns the repeated column scans of batch
// labeling into word-wise AND/OR over cached bitmaps.
//
// Cached bitmaps are shared and MUST be treated as read-only by callers;
// EvalExprCached upholds this by cloning before any in-place combination.
// The cache is safe for concurrent use: lookups and inserts run under a
// short mutex, while bitmap construction itself runs outside the lock (two
// racing workers may both compute a missing entry; one insert wins and both
// results are identical, so determinism is unaffected).
//
// Eviction is FIFO over insertion order, triggered when the total size of
// cached bitmap words exceeds the byte budget: labeling sweeps a workload
// once, so recency tracking buys little over plain insertion order.
type PredCache struct {
	mu       sync.Mutex
	entries  map[predKey]*table.Bitmap
	fifo     []predKey
	curBytes int
	maxBytes int
	hits     int64
	misses   int64
}

// NewPredCache returns a cache bounded to maxBytes of bitmap payload;
// maxBytes <= 0 selects DefaultPredCacheBytes.
func NewPredCache(maxBytes int) *PredCache {
	if maxBytes <= 0 {
		maxBytes = DefaultPredCacheBytes
	}
	return &PredCache{entries: make(map[predKey]*table.Bitmap), maxBytes: maxBytes}
}

// Stats reports cumulative hit/miss counters and the current entry count.
func (c *PredCache) Stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

// eval returns the (shared, read-only) bitmap for p over t, computing and
// caching it on a miss.
func (c *PredCache) eval(t *table.Table, p *sqlparse.Pred) (*table.Bitmap, error) {
	if p.Str != nil {
		// Unbound predicates are an error; let EvalPred produce it.
		return EvalPred(t, p)
	}
	k := predKey{tbl: t.Name, attr: p.Attr, op: p.Op, val: p.Val}
	c.mu.Lock()
	if bm, ok := c.entries[k]; ok {
		c.hits++
		c.mu.Unlock()
		return bm, nil
	}
	c.misses++
	c.mu.Unlock()

	bm, err := EvalPred(t, p)
	if err != nil {
		return nil, err
	}
	size := 8 * ((bm.Len() + 63) / 64)

	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.entries[k]; ok {
		// A racing worker inserted first; serve its copy so all callers
		// share one bitmap.
		return prev, nil
	}
	for c.curBytes+size > c.maxBytes && len(c.fifo) > 0 {
		old := c.fifo[0]
		c.fifo = c.fifo[1:]
		if victim, ok := c.entries[old]; ok {
			c.curBytes -= 8 * ((victim.Len() + 63) / 64)
			delete(c.entries, old)
		}
	}
	if size <= c.maxBytes {
		c.entries[k] = bm
		c.fifo = append(c.fifo, k)
		c.curBytes += size
	}
	return bm, nil
}
