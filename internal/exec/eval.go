// Package exec is the query executor of the reproduction. It evaluates the
// paper's COUNT(*) query class exactly: vectorized simple-predicate
// evaluation over column bitmaps, AND/OR combination, and exact counting of
// acyclic key/foreign-key joins via multiplicity message passing.
//
// The executor serves three roles: it labels every generated training and
// test query with its true cardinality (the paper spends 3.5 days on this
// step; Section 5.5.2), it is the ground-truth oracle against which q-errors
// are computed, and it executes the plans chosen in the end-to-end
// experiment (Table 4).
package exec

import (
	"fmt"
	"sort"
	"strings"

	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// Bind resolves the string literals of every predicate in q against the
// dictionaries of the referenced columns, rewriting each predicate into an
// equivalent integer-code predicate. After a successful Bind, no predicate
// carries a Str literal.
//
// Literals absent from a dictionary are mapped to equivalent code
// predicates: equality becomes an unsatisfiable predicate, inequality a
// tautology, and range operators snap to the literal's insertion point in
// the sorted dictionary (dictionary codes preserve lexicographic order, see
// package table). LIKE 'p%' prefix predicates become the contiguous code
// range of the prefix (the Section 6 string extension).
func Bind(q *sqlparse.Query, db *table.DB) error {
	if q.Where == nil {
		return nil
	}
	bound, err := bindExpr(q.Where, db, q)
	if err != nil {
		return err
	}
	q.Where = bound
	return nil
}

// bindExpr rewrites string predicates bottom-up. LIKE leaves may expand
// into a conjunction of two range predicates, so the rewrite rebuilds the
// tree instead of mutating leaves.
func bindExpr(expr sqlparse.Expr, db *table.DB, q *sqlparse.Query) (sqlparse.Expr, error) {
	switch n := expr.(type) {
	case *sqlparse.Pred:
		if n.Str == nil {
			return n, nil
		}
		col, err := resolveColumn(db, q, n.Attr)
		if err != nil {
			return nil, err
		}
		if col.Dict == nil {
			return nil, fmt.Errorf("exec: string literal %q compared to non-string column %s", *n.Str, n.Attr)
		}
		if n.Like {
			return bindLikePred(n, col.Dict), nil
		}
		return bindStringPred(n, col.Dict), nil
	case *sqlparse.And:
		kids := make([]sqlparse.Expr, len(n.Kids))
		for i, k := range n.Kids {
			b, err := bindExpr(k, db, q)
			if err != nil {
				return nil, err
			}
			kids[i] = b
		}
		return sqlparse.NewAnd(kids...), nil
	case *sqlparse.Or:
		kids := make([]sqlparse.Expr, len(n.Kids))
		for i, k := range n.Kids {
			b, err := bindExpr(k, db, q)
			if err != nil {
				return nil, err
			}
			kids[i] = b
		}
		return sqlparse.NewOr(kids...), nil
	}
	return nil, fmt.Errorf("exec: unknown expr %T", expr)
}

// bindLikePred rewrites "attr LIKE 'p%'" into the code range covering all
// dictionary entries with prefix p — contiguous because the dictionary is
// sorted (Section 6). An unmatched prefix becomes an unsatisfiable
// predicate.
func bindLikePred(p *sqlparse.Pred, dict []string) sqlparse.Expr {
	prefix := *p.Str
	lo := sort.SearchStrings(dict, prefix)
	hi := lo
	for hi < len(dict) && strings.HasPrefix(dict[hi], prefix) {
		hi++
	}
	if lo == hi {
		return &sqlparse.Pred{Attr: p.Attr, Op: sqlparse.OpEq, Val: int64(len(dict))}
	}
	return sqlparse.NewAnd(
		&sqlparse.Pred{Attr: p.Attr, Op: sqlparse.OpGe, Val: int64(lo)},
		&sqlparse.Pred{Attr: p.Attr, Op: sqlparse.OpLe, Val: int64(hi - 1)},
	)
}

// bindStringPred rewrites p (whose Str is non-nil) into an equivalent
// integer-code predicate against the sorted dictionary dict. It returns a
// fresh leaf and never mutates p: a Pred node may be shared across queries
// (workload templates), and Bind runs concurrently with other queries'
// evaluation under parallel labeling.
func bindStringPred(p *sqlparse.Pred, dict []string) *sqlparse.Pred {
	s := *p.Str
	idx := sort.SearchStrings(dict, s)
	found := idx < len(dict) && dict[idx] == s
	bound := &sqlparse.Pred{Attr: p.Attr, Op: p.Op}
	if found {
		bound.Val = int64(idx)
		return bound
	}
	out := int64(len(dict)) // a code no row carries
	switch p.Op {
	case sqlparse.OpEq:
		bound.Val = out // matches nothing
	case sqlparse.OpNe:
		bound.Val = out // matches everything
	case sqlparse.OpLt, sqlparse.OpLe:
		// codes < idx are exactly the strings < s (and <= s, since s itself
		// is absent).
		bound.Op, bound.Val = sqlparse.OpLt, int64(idx)
	case sqlparse.OpGt, sqlparse.OpGe:
		bound.Op, bound.Val = sqlparse.OpGe, int64(idx)
	}
	return bound
}

// resolveColumn finds the column a (possibly qualified) attribute refers to.
func resolveColumn(db *table.DB, q *sqlparse.Query, attr string) (*table.Column, error) {
	tblName, colName := splitAttr(attr)
	if tblName == "" {
		if len(q.Tables) != 1 {
			return nil, fmt.Errorf("exec: unqualified attribute %q in multi-table query", attr)
		}
		tblName = q.Tables[0]
	}
	t := db.Table(tblName)
	if t == nil {
		return nil, fmt.Errorf("exec: unknown table %q", tblName)
	}
	col := t.Column(colName)
	if col == nil {
		return nil, fmt.Errorf("exec: table %q has no column %q", tblName, colName)
	}
	return col, nil
}

func splitAttr(attr string) (tbl, col string) {
	if i := strings.IndexByte(attr, '.'); i >= 0 {
		return attr[:i], attr[i+1:]
	}
	return "", attr
}

// EvalPred evaluates a single simple predicate over t and returns the
// qualifying-row bitmap. The predicate must already be bound (no string
// literal). Attribute qualification, if present, must match t's name.
func EvalPred(t *table.Table, p *sqlparse.Pred) (*table.Bitmap, error) {
	if p.Str != nil {
		return nil, fmt.Errorf("exec: unbound string predicate %s (call Bind first)", p)
	}
	tblName, colName := splitAttr(p.Attr)
	if tblName != "" && tblName != t.Name {
		return nil, fmt.Errorf("exec: predicate %s does not reference table %q", p, t.Name)
	}
	col := t.Column(colName)
	if col == nil {
		return nil, fmt.Errorf("exec: table %q has no column %q", t.Name, colName)
	}
	bm := table.NewBitmap(col.Len())
	vals, lit := col.Vals, p.Val
	switch p.Op {
	case sqlparse.OpEq:
		for i, v := range vals {
			if v == lit {
				bm.Set(i)
			}
		}
	case sqlparse.OpNe:
		for i, v := range vals {
			if v != lit {
				bm.Set(i)
			}
		}
	case sqlparse.OpLt:
		for i, v := range vals {
			if v < lit {
				bm.Set(i)
			}
		}
	case sqlparse.OpLe:
		for i, v := range vals {
			if v <= lit {
				bm.Set(i)
			}
		}
	case sqlparse.OpGt:
		for i, v := range vals {
			if v > lit {
				bm.Set(i)
			}
		}
	case sqlparse.OpGe:
		for i, v := range vals {
			if v >= lit {
				bm.Set(i)
			}
		}
	default:
		return nil, fmt.Errorf("exec: unknown operator in %s", p)
	}
	return bm, nil
}

// EvalExpr evaluates a boolean selection expression over t and returns the
// qualifying-row bitmap. A nil expression qualifies every row. The returned
// bitmap is freshly allocated and owned by the caller.
func EvalExpr(t *table.Table, expr sqlparse.Expr) (*table.Bitmap, error) {
	bm, _, err := evalExpr(t, expr, nil)
	return bm, err
}

// EvalExprCached is EvalExpr with leaf bitmaps served from cache (which may
// be nil for the uncached path). The returned bitmap may be shared with the
// cache and MUST be treated as read-only by the caller.
func EvalExprCached(t *table.Table, expr sqlparse.Expr, cache *PredCache) (*table.Bitmap, error) {
	bm, _, err := evalExpr(t, expr, cache)
	return bm, err
}

// evalExpr is the shared evaluator core. It reports via owned whether the
// returned bitmap is private to the caller (true) or shared with cache
// (false); And/Or combination clones shared accumulators before mutating,
// so cached bitmaps stay immutable.
func evalExpr(t *table.Table, expr sqlparse.Expr, cache *PredCache) (bm *table.Bitmap, owned bool, err error) {
	switch n := expr.(type) {
	case nil:
		return table.NewFullBitmap(t.NumRows()), true, nil
	case *sqlparse.Pred:
		if cache != nil {
			bm, err := cache.eval(t, n)
			return bm, false, err
		}
		bm, err := EvalPred(t, n)
		return bm, true, err
	case *sqlparse.And:
		acc, owned, err := evalExpr(t, n.Kids[0], cache)
		if err != nil {
			return nil, false, err
		}
		for _, k := range n.Kids[1:] {
			bm, _, err := evalExpr(t, k, cache)
			if err != nil {
				return nil, false, err
			}
			if !owned {
				acc, owned = acc.Clone(), true
			}
			acc.And(bm)
		}
		return acc, owned, nil
	case *sqlparse.Or:
		acc, owned, err := evalExpr(t, n.Kids[0], cache)
		if err != nil {
			return nil, false, err
		}
		for _, k := range n.Kids[1:] {
			bm, _, err := evalExpr(t, k, cache)
			if err != nil {
				return nil, false, err
			}
			if !owned {
				acc, owned = acc.Clone(), true
			}
			acc.Or(bm)
		}
		return acc, owned, nil
	}
	return nil, false, fmt.Errorf("exec: unknown expr %T", expr)
}

// Selectivity returns the fraction of t's rows qualifying expr.
func Selectivity(t *table.Table, expr sqlparse.Expr) (float64, error) {
	if t.NumRows() == 0 {
		return 0, nil
	}
	bm, err := EvalExpr(t, expr)
	if err != nil {
		return 0, err
	}
	return float64(bm.Count()) / float64(t.NumRows()), nil
}
