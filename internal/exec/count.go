package exec

import (
	"context"
	"fmt"

	"qfe/internal/parallel"
	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// Count executes the COUNT(*) query q exactly and returns the true result
// cardinality. Single-table queries reduce to bitmap evaluation; multi-table
// queries must join along an acyclic set of equi-join predicates (the
// key/foreign-key trees of the paper's workloads) and are counted by
// multiplicity message passing over the join tree, never materializing the
// join result.
//
// Queries with string literals must be Bind-ed first.
func Count(db *table.DB, q *sqlparse.Query) (int64, error) {
	return CountCtx(context.Background(), db, q)
}

// CountCtx is Count under a context: cancellation is checked before each
// per-table evaluation step, so a deadline bounds the work at table
// granularity rather than letting a large join run to completion.
func CountCtx(ctx context.Context, db *table.DB, q *sqlparse.Query) (int64, error) {
	return CountCached(ctx, db, q, nil)
}

// CountCached is CountCtx with simple-predicate bitmaps served from cache
// (nil disables caching). Workload generators and the batch labeler share
// one cache across thousands of queries: generated workloads reuse the same
// bound predicates on the same columns constantly, so memoized EvalPred
// bitmaps turn repeated column scans into word-wise AND/OR. Counting is
// exact either way — the cache changes cost, never results.
func CountCached(ctx context.Context, db *table.DB, q *sqlparse.Query, cache *PredCache) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if len(q.Tables) == 0 {
		return 0, fmt.Errorf("exec: query has no tables")
	}
	if len(q.Tables) == 1 {
		t := db.Table(q.Tables[0])
		if t == nil {
			return 0, fmt.Errorf("exec: unknown table %q", q.Tables[0])
		}
		bm, err := EvalExprCached(t, q.Where, cache)
		if err != nil {
			return 0, err
		}
		return int64(bm.Count()), nil
	}
	return countJoin(ctx, db, q, cache)
}

// perTableFilters splits the top-level conjunction of q.Where into
// per-table selection expressions. Every conjunct must reference attributes
// of exactly one table; disjunctions across tables are outside the paper's
// query class.
func perTableFilters(q *sqlparse.Query) (map[string]sqlparse.Expr, error) {
	byTable := make(map[string][]sqlparse.Expr)
	for _, kid := range sqlparse.Conjuncts(q.Where) {
		tbl := ""
		for _, p := range sqlparse.CollectPreds(kid) {
			pt, _ := splitAttr(p.Attr)
			if pt == "" {
				return nil, fmt.Errorf("exec: unqualified attribute %q in join query", p.Attr)
			}
			if tbl == "" {
				tbl = pt
			} else if tbl != pt {
				return nil, fmt.Errorf("exec: conjunct %q spans tables %q and %q", kid, tbl, pt)
			}
		}
		if tbl == "" {
			return nil, fmt.Errorf("exec: conjunct %q references no attribute", kid)
		}
		byTable[tbl] = append(byTable[tbl], kid)
	}
	out := make(map[string]sqlparse.Expr, len(byTable))
	for tbl, kids := range byTable {
		out[tbl] = sqlparse.NewAnd(kids...)
	}
	return out, nil
}

// joinTreeNode is one table in the join tree with the join edges to its
// children and, except for the root, the column connecting it to its parent.
type joinTreeNode struct {
	tbl       string
	parentCol string // column of this table equated with the parent
	children  []*joinTreeNode
	childCols []string // column of this table equated with each child
}

// buildJoinTree arranges q's tables into a tree rooted at q.Tables[0] using
// the equi-join predicates. It returns an error when the join graph is
// disconnected or cyclic — the message-passing counter is exact only for
// acyclic joins, which covers every workload in the paper.
func buildJoinTree(q *sqlparse.Query) (*joinTreeNode, error) {
	if len(q.Joins) != len(q.Tables)-1 {
		return nil, fmt.Errorf("exec: %d tables need exactly %d join predicates for an acyclic join, got %d",
			len(q.Tables), len(q.Tables)-1, len(q.Joins))
	}
	type edge struct {
		other           string
		myCol, otherCol string
	}
	adj := make(map[string][]edge, len(q.Tables))
	for _, j := range q.Joins {
		adj[j.LeftTable] = append(adj[j.LeftTable], edge{other: j.RightTable, myCol: j.LeftCol, otherCol: j.RightCol})
		adj[j.RightTable] = append(adj[j.RightTable], edge{other: j.LeftTable, myCol: j.RightCol, otherCol: j.LeftCol})
	}
	root := &joinTreeNode{tbl: q.Tables[0]}
	visited := map[string]bool{root.tbl: true}
	var build func(node *joinTreeNode) error
	build = func(node *joinTreeNode) error {
		for _, e := range adj[node.tbl] {
			if visited[e.other] {
				continue
			}
			visited[e.other] = true
			child := &joinTreeNode{tbl: e.other, parentCol: e.otherCol}
			node.children = append(node.children, child)
			node.childCols = append(node.childCols, e.myCol)
			if err := build(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(root); err != nil {
		return nil, err
	}
	if len(visited) != len(q.Tables) {
		return nil, fmt.Errorf("exec: join graph of %v is disconnected", q.Tables)
	}
	return root, nil
}

// countJoin counts an acyclic equi-join bottom-up: each node sends its
// parent a map from join-key value to the number of join-result tuples its
// subtree contributes for that key; the root sums the products over its
// qualifying rows.
func countJoin(ctx context.Context, db *table.DB, q *sqlparse.Query, cache *PredCache) (int64, error) {
	filters, err := perTableFilters(q)
	if err != nil {
		return 0, err
	}
	root, err := buildJoinTree(q)
	if err != nil {
		return 0, err
	}

	// upward computes the multiplicity message from node to its parent.
	var upward func(node *joinTreeNode) (map[int64]int64, error)

	// subtreeMults returns, per qualifying row of node's table, the product
	// of the children's multiplicities (0 rows are skipped via callback).
	rowMults := func(node *joinTreeNode, visit func(row int, mult int64)) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		t := db.Table(node.tbl)
		if t == nil {
			return fmt.Errorf("exec: unknown table %q", node.tbl)
		}
		bm, err := EvalExprCached(t, filters[node.tbl], cache)
		if err != nil {
			return err
		}
		childMsgs := make([]map[int64]int64, len(node.children))
		childVals := make([][]int64, len(node.children))
		for i, c := range node.children {
			msg, err := upward(c)
			if err != nil {
				return err
			}
			childMsgs[i] = msg
			col := t.Column(node.childCols[i])
			if col == nil {
				return fmt.Errorf("exec: table %q has no join column %q", node.tbl, node.childCols[i])
			}
			childVals[i] = col.Vals
		}
		bm.ForEach(func(r int) {
			mult := int64(1)
			for i := range node.children {
				m := childMsgs[i][childVals[i][r]]
				if m == 0 {
					mult = 0
					break
				}
				mult *= m
			}
			if mult != 0 {
				visit(r, mult)
			}
		})
		return nil
	}

	upward = func(node *joinTreeNode) (map[int64]int64, error) {
		t := db.Table(node.tbl)
		if t == nil {
			return nil, fmt.Errorf("exec: unknown table %q", node.tbl)
		}
		keyCol := t.Column(node.parentCol)
		if keyCol == nil {
			return nil, fmt.Errorf("exec: table %q has no join column %q", node.tbl, node.parentCol)
		}
		msg := make(map[int64]int64)
		err := rowMults(node, func(r int, mult int64) {
			msg[keyCol.Vals[r]] += mult
		})
		if err != nil {
			return nil, err
		}
		return msg, nil
	}

	var total int64
	err = rowMults(root, func(_ int, mult int64) { total += mult })
	if err != nil {
		return 0, err
	}
	return total, nil
}

// QueryError reports the failure of one query inside a labeling batch,
// carrying the query's index so callers can keep the labels that did
// compute and resume or skip precisely.
type QueryError struct {
	// Index is the position of the failing query in the batch.
	Index int
	// Query is the failing query's SQL rendering.
	Query string
	// Err is the underlying failure.
	Err error
}

func (e *QueryError) Error() string {
	return fmt.Sprintf("exec: query %d (%s): %v", e.Index, e.Query, e.Err)
}

func (e *QueryError) Unwrap() error { return e.Err }

// CountManyCtx labels a batch of queries with their true cardinalities
// across one worker per logical CPU, sharing a per-predicate bitmap cache
// between workers. It is the workhorse behind workload labeling — the step
// the paper spends 3.5 days on (Section 5.5.2); queries must already be
// bound.
//
// The returned slice always has len(qs): out[i] is query i's cardinality,
// or -1 where query i failed. A non-nil error is a *QueryError describing
// the failure with the smallest index — deterministic regardless of worker
// scheduling, because every query is attempted even after another fails
// (only context cancellation stops the batch early). Labels are
// bit-identical to sequential execution: each query's count is exact and
// independent, and parallelism never reorders per-query computation.
func CountManyCtx(ctx context.Context, db *table.DB, qs []*sqlparse.Query) ([]int64, error) {
	return CountManyWorkers(ctx, db, qs, 0)
}

// CountManyWorkers is CountManyCtx with an explicit worker count
// (workers < 1 means GOMAXPROCS).
func CountManyWorkers(ctx context.Context, db *table.DB, qs []*sqlparse.Query, workers int) ([]int64, error) {
	out := make([]int64, len(qs))
	errs := make([]error, len(qs))
	cache := NewPredCache(0)
	parallel.Do(len(qs), parallel.Workers(workers), func(i int) {
		out[i] = -1
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		c, err := CountCached(ctx, db, qs[i], cache)
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = c
	})
	for i, err := range errs {
		if err != nil {
			return out, &QueryError{Index: i, Query: qs[i].String(), Err: err}
		}
	}
	return out, nil
}

// CountManyResume is CountManyWorkers for interrupted labeling runs: prior
// holds the labels computed so far (-1 marks "not yet labeled", matching the
// failure sentinel of CountManyCtx), and only those entries are executed —
// completed labels are copied through untouched. cache may be shared across
// resume attempts (nil disables caching). The returned slice always has
// len(qs); error semantics match CountManyCtx (deterministic smallest-index
// *QueryError).
//
// A checkpointing labeler alternates CountManyResume over a slice of the
// batch with persisting the partial label vector: after a crash it reloads
// the vector and hands it straight back as prior, paying only for the
// queries whose labels were never made durable.
func CountManyResume(ctx context.Context, db *table.DB, qs []*sqlparse.Query, prior []int64, cache *PredCache, workers int) ([]int64, error) {
	if prior != nil && len(prior) != len(qs) {
		return nil, fmt.Errorf("exec: %d prior labels for %d queries", len(prior), len(qs))
	}
	out := make([]int64, len(qs))
	todo := make([]int, 0, len(qs))
	for i := range qs {
		if prior != nil && prior[i] >= 0 {
			out[i] = prior[i]
			continue
		}
		out[i] = -1
		todo = append(todo, i)
	}
	errs := make([]error, len(qs))
	parallel.Do(len(todo), parallel.Workers(workers), func(j int) {
		i := todo[j]
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		c, err := CountCached(ctx, db, qs[i], cache)
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = c
	})
	for i, err := range errs {
		if err != nil {
			return out, &QueryError{Index: i, Query: qs[i].String(), Err: err}
		}
	}
	return out, nil
}

// CountMany labels a batch of queries sequentially, preserving the original
// all-or-nothing contract: the first failure discards the batch. New code
// should prefer CountManyCtx, which parallelizes, keeps partial results,
// and supports cancellation.
func CountMany(db *table.DB, qs []*sqlparse.Query) ([]int64, error) {
	out, err := CountManyWorkers(context.Background(), db, qs, 1)
	if err != nil {
		return nil, err
	}
	return out, nil
}
