package exec

import (
	"context"
	"fmt"

	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// Count executes the COUNT(*) query q exactly and returns the true result
// cardinality. Single-table queries reduce to bitmap evaluation; multi-table
// queries must join along an acyclic set of equi-join predicates (the
// key/foreign-key trees of the paper's workloads) and are counted by
// multiplicity message passing over the join tree, never materializing the
// join result.
//
// Queries with string literals must be Bind-ed first.
func Count(db *table.DB, q *sqlparse.Query) (int64, error) {
	return CountCtx(context.Background(), db, q)
}

// CountCtx is Count under a context: cancellation is checked before each
// per-table evaluation step, so a deadline bounds the work at table
// granularity rather than letting a large join run to completion.
func CountCtx(ctx context.Context, db *table.DB, q *sqlparse.Query) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if len(q.Tables) == 0 {
		return 0, fmt.Errorf("exec: query has no tables")
	}
	if len(q.Tables) == 1 {
		t := db.Table(q.Tables[0])
		if t == nil {
			return 0, fmt.Errorf("exec: unknown table %q", q.Tables[0])
		}
		bm, err := EvalExpr(t, q.Where)
		if err != nil {
			return 0, err
		}
		return int64(bm.Count()), nil
	}
	return countJoin(ctx, db, q)
}

// perTableFilters splits the top-level conjunction of q.Where into
// per-table selection expressions. Every conjunct must reference attributes
// of exactly one table; disjunctions across tables are outside the paper's
// query class.
func perTableFilters(q *sqlparse.Query) (map[string]sqlparse.Expr, error) {
	byTable := make(map[string][]sqlparse.Expr)
	for _, kid := range sqlparse.Conjuncts(q.Where) {
		tbl := ""
		for _, p := range sqlparse.CollectPreds(kid) {
			pt, _ := splitAttr(p.Attr)
			if pt == "" {
				return nil, fmt.Errorf("exec: unqualified attribute %q in join query", p.Attr)
			}
			if tbl == "" {
				tbl = pt
			} else if tbl != pt {
				return nil, fmt.Errorf("exec: conjunct %q spans tables %q and %q", kid, tbl, pt)
			}
		}
		if tbl == "" {
			return nil, fmt.Errorf("exec: conjunct %q references no attribute", kid)
		}
		byTable[tbl] = append(byTable[tbl], kid)
	}
	out := make(map[string]sqlparse.Expr, len(byTable))
	for tbl, kids := range byTable {
		out[tbl] = sqlparse.NewAnd(kids...)
	}
	return out, nil
}

// joinTreeNode is one table in the join tree with the join edges to its
// children and, except for the root, the column connecting it to its parent.
type joinTreeNode struct {
	tbl       string
	parentCol string // column of this table equated with the parent
	children  []*joinTreeNode
	childCols []string // column of this table equated with each child
}

// buildJoinTree arranges q's tables into a tree rooted at q.Tables[0] using
// the equi-join predicates. It returns an error when the join graph is
// disconnected or cyclic — the message-passing counter is exact only for
// acyclic joins, which covers every workload in the paper.
func buildJoinTree(q *sqlparse.Query) (*joinTreeNode, error) {
	if len(q.Joins) != len(q.Tables)-1 {
		return nil, fmt.Errorf("exec: %d tables need exactly %d join predicates for an acyclic join, got %d",
			len(q.Tables), len(q.Tables)-1, len(q.Joins))
	}
	type edge struct {
		other           string
		myCol, otherCol string
	}
	adj := make(map[string][]edge, len(q.Tables))
	for _, j := range q.Joins {
		adj[j.LeftTable] = append(adj[j.LeftTable], edge{other: j.RightTable, myCol: j.LeftCol, otherCol: j.RightCol})
		adj[j.RightTable] = append(adj[j.RightTable], edge{other: j.LeftTable, myCol: j.RightCol, otherCol: j.LeftCol})
	}
	root := &joinTreeNode{tbl: q.Tables[0]}
	visited := map[string]bool{root.tbl: true}
	var build func(node *joinTreeNode) error
	build = func(node *joinTreeNode) error {
		for _, e := range adj[node.tbl] {
			if visited[e.other] {
				continue
			}
			visited[e.other] = true
			child := &joinTreeNode{tbl: e.other, parentCol: e.otherCol}
			node.children = append(node.children, child)
			node.childCols = append(node.childCols, e.myCol)
			if err := build(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(root); err != nil {
		return nil, err
	}
	if len(visited) != len(q.Tables) {
		return nil, fmt.Errorf("exec: join graph of %v is disconnected", q.Tables)
	}
	return root, nil
}

// countJoin counts an acyclic equi-join bottom-up: each node sends its
// parent a map from join-key value to the number of join-result tuples its
// subtree contributes for that key; the root sums the products over its
// qualifying rows.
func countJoin(ctx context.Context, db *table.DB, q *sqlparse.Query) (int64, error) {
	filters, err := perTableFilters(q)
	if err != nil {
		return 0, err
	}
	root, err := buildJoinTree(q)
	if err != nil {
		return 0, err
	}

	// upward computes the multiplicity message from node to its parent.
	var upward func(node *joinTreeNode) (map[int64]int64, error)

	// subtreeMults returns, per qualifying row of node's table, the product
	// of the children's multiplicities (0 rows are skipped via callback).
	rowMults := func(node *joinTreeNode, visit func(row int, mult int64)) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		t := db.Table(node.tbl)
		if t == nil {
			return fmt.Errorf("exec: unknown table %q", node.tbl)
		}
		bm, err := EvalExpr(t, filters[node.tbl])
		if err != nil {
			return err
		}
		childMsgs := make([]map[int64]int64, len(node.children))
		childVals := make([][]int64, len(node.children))
		for i, c := range node.children {
			msg, err := upward(c)
			if err != nil {
				return err
			}
			childMsgs[i] = msg
			col := t.Column(node.childCols[i])
			if col == nil {
				return fmt.Errorf("exec: table %q has no join column %q", node.tbl, node.childCols[i])
			}
			childVals[i] = col.Vals
		}
		bm.ForEach(func(r int) {
			mult := int64(1)
			for i := range node.children {
				m := childMsgs[i][childVals[i][r]]
				if m == 0 {
					mult = 0
					break
				}
				mult *= m
			}
			if mult != 0 {
				visit(r, mult)
			}
		})
		return nil
	}

	upward = func(node *joinTreeNode) (map[int64]int64, error) {
		t := db.Table(node.tbl)
		if t == nil {
			return nil, fmt.Errorf("exec: unknown table %q", node.tbl)
		}
		keyCol := t.Column(node.parentCol)
		if keyCol == nil {
			return nil, fmt.Errorf("exec: table %q has no join column %q", node.tbl, node.parentCol)
		}
		msg := make(map[int64]int64)
		err := rowMults(node, func(r int, mult int64) {
			msg[keyCol.Vals[r]] += mult
		})
		if err != nil {
			return nil, err
		}
		return msg, nil
	}

	var total int64
	err = rowMults(root, func(_ int, mult int64) { total += mult })
	if err != nil {
		return 0, err
	}
	return total, nil
}

// CountMany labels a batch of queries with their true cardinalities. It is
// the workhorse behind workload labeling; queries must already be bound.
func CountMany(db *table.DB, qs []*sqlparse.Query) ([]int64, error) {
	out := make([]int64, len(qs))
	for i, q := range qs {
		c, err := Count(db, q)
		if err != nil {
			return nil, fmt.Errorf("exec: query %d (%s): %w", i, q, err)
		}
		out[i] = c
	}
	return out, nil
}
