package exec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// benchTable builds a 100k-row two-column table for filter benchmarks.
func benchTable(b *testing.B) *table.Table {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	n := 100_000
	a := make([]int64, n)
	c := make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = int64(rng.Intn(10_000))
		c[i] = int64(rng.Intn(100))
	}
	t := table.New("t")
	t.MustAddColumn(table.NewColumn("a", a))
	t.MustAddColumn(table.NewColumn("c", c))
	return t
}

// BenchmarkEvalPredRange measures the vectorized filter throughput that
// workload labeling is built on.
func BenchmarkEvalPredRange(b *testing.B) {
	tbl := benchTable(b)
	p := &sqlparse.Pred{Attr: "a", Op: sqlparse.OpLe, Val: 5000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalPred(tbl, p); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tbl.NumRows() * 8))
}

// BenchmarkEvalExprConjunction measures a 4-predicate conjunctive filter.
func BenchmarkEvalExprConjunction(b *testing.B) {
	tbl := benchTable(b)
	q := sqlparse.MustParse("SELECT count(*) FROM t WHERE a >= 1000 AND a <= 8000 AND a <> 4000 AND c = 7")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalExpr(tbl, q.Where); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCountJoin measures the multiplicity message-passing join counter
// on a 3-table star.
func BenchmarkCountJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	db := table.NewDB()
	nd := 2_000
	hub := table.New("hub")
	ids := make([]int64, nd)
	x := make([]int64, nd)
	for i := range ids {
		ids[i] = int64(i)
		x[i] = int64(rng.Intn(50))
	}
	hub.MustAddColumn(table.NewColumn("id", ids))
	hub.MustAddColumn(table.NewColumn("x", x))
	db.MustAdd(hub)
	for _, name := range []string{"s1", "s2"} {
		n := 20_000
		fk := make([]int64, n)
		y := make([]int64, n)
		for i := range fk {
			fk[i] = int64(rng.Intn(nd))
			y[i] = int64(rng.Intn(20))
		}
		t := table.New(name)
		t.MustAddColumn(table.NewColumn("hub_id", fk))
		t.MustAddColumn(table.NewColumn("y", y))
		db.MustAdd(t)
	}
	q := sqlparse.MustParse(`SELECT count(*) FROM hub, s1, s2
		WHERE s1.hub_id = hub.id AND s2.hub_id = hub.id
		AND hub.x <= 25 AND s1.y = 3`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Count(db, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCountManyWorkers compares sequential labeling against the
// parallel batch path (shared predicate-bitmap cache, one goroutine per
// worker) on a 200-query workload. On multi-core hardware the parallel
// variants should show near-linear speedup with bit-identical labels.
func BenchmarkCountManyWorkers(b *testing.B) {
	tbl := genTable(1, 100_000)
	db := singleDB(tbl)
	qs := genQueries(2, 200)
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CountManyWorkers(ctx, db, qs, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
