package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// smallTable builds a deterministic single table for hand-checked cases.
func smallTable() *table.Table {
	t := table.New("t")
	t.MustAddColumn(table.NewColumn("a", []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}))
	t.MustAddColumn(table.NewColumn("b", []int64{5, 5, 5, 0, 0, 0, 9, 9, 9, 9}))
	return t
}

func singleDB(t *table.Table) *table.DB {
	db := table.NewDB()
	db.MustAdd(t)
	return db
}

func TestEvalPredOperators(t *testing.T) {
	tbl := smallTable()
	cases := []struct {
		src  string
		want int
	}{
		{"a = 5", 1},
		{"a <> 5", 9},
		{"a < 5", 4},
		{"a <= 5", 5},
		{"a > 5", 5},
		{"a >= 5", 6},
		{"b = 9", 4},
		{"a > 100", 0},
		{"a < -5", 0},
		{"a >= 1", 10},
	}
	for _, tc := range cases {
		q := sqlparse.MustParse("SELECT count(*) FROM t WHERE " + tc.src)
		bm, err := EvalExpr(tbl, q.Where)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got := bm.Count(); got != tc.want {
			t.Errorf("%s: count = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestEvalExprBoolean(t *testing.T) {
	tbl := smallTable()
	cases := []struct {
		src  string
		want int64
	}{
		{"a <= 3 AND b = 5", 3},
		{"a <= 3 OR b = 9", 7},
		{"(a = 1 OR a = 10) AND b = 9", 1},
		{"a >= 2 AND a <= 4 AND a <> 3", 2},
	}
	for _, tc := range cases {
		q := sqlparse.MustParse("SELECT count(*) FROM t WHERE " + tc.src)
		got, err := Count(singleDB(tbl), q)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got != tc.want {
			t.Errorf("%s: count = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestCountNoWhere(t *testing.T) {
	got, err := Count(singleDB(smallTable()), sqlparse.MustParse("SELECT count(*) FROM t"))
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("count = %d, want 10", got)
	}
}

func TestSelectivity(t *testing.T) {
	tbl := smallTable()
	q := sqlparse.MustParse("SELECT count(*) FROM t WHERE a <= 5")
	sel, err := Selectivity(tbl, q.Where)
	if err != nil {
		t.Fatal(err)
	}
	if sel != 0.5 {
		t.Errorf("selectivity = %v, want 0.5", sel)
	}
}

func TestEvalErrors(t *testing.T) {
	tbl := smallTable()
	if _, err := EvalPred(tbl, &sqlparse.Pred{Attr: "missing", Op: sqlparse.OpEq, Val: 1}); err == nil {
		t.Error("expected error for unknown column")
	}
	s := "x"
	if _, err := EvalPred(tbl, &sqlparse.Pred{Attr: "a", Op: sqlparse.OpEq, Str: &s}); err == nil {
		t.Error("expected error for unbound string predicate")
	}
	if _, err := EvalPred(tbl, &sqlparse.Pred{Attr: "other.a", Op: sqlparse.OpEq, Val: 1}); err == nil {
		t.Error("expected error for wrong table qualifier")
	}
}

// TestEvalAgainstBruteForce cross-checks vectorized evaluation against a
// row-at-a-time interpreter on random tables and random expressions.
func TestEvalAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ops := []sqlparse.CmpOp{sqlparse.OpEq, sqlparse.OpNe, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe}
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(500)
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i] = int64(rng.Intn(50))
			b[i] = int64(rng.Intn(20) - 10)
		}
		tbl := table.New("t")
		tbl.MustAddColumn(table.NewColumn("a", a))
		tbl.MustAddColumn(table.NewColumn("b", b))

		var build func(depth int) sqlparse.Expr
		build = func(depth int) sqlparse.Expr {
			if depth == 0 || rng.Intn(3) == 0 {
				attr := "a"
				lim := 50
				if rng.Intn(2) == 0 {
					attr, lim = "b", 20
				}
				return &sqlparse.Pred{Attr: attr, Op: ops[rng.Intn(len(ops))], Val: int64(rng.Intn(lim+10) - 5)}
			}
			kids := []sqlparse.Expr{build(depth - 1), build(depth - 1)}
			if rng.Intn(2) == 0 {
				return sqlparse.NewAnd(kids...)
			}
			return sqlparse.NewOr(kids...)
		}
		expr := build(3)

		bm, err := EvalExpr(tbl, expr)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for i := 0; i < n; i++ {
			if bruteEval(expr, map[string]int64{"a": a[i], "b": b[i]}) {
				want++
			}
		}
		if got := bm.Count(); got != want {
			t.Fatalf("trial %d: vectorized=%d brute=%d for %s", trial, got, want, expr)
		}
	}
}

func bruteEval(e sqlparse.Expr, row map[string]int64) bool {
	switch n := e.(type) {
	case *sqlparse.Pred:
		v := row[n.Attr]
		switch n.Op {
		case sqlparse.OpEq:
			return v == n.Val
		case sqlparse.OpNe:
			return v != n.Val
		case sqlparse.OpLt:
			return v < n.Val
		case sqlparse.OpLe:
			return v <= n.Val
		case sqlparse.OpGt:
			return v > n.Val
		case sqlparse.OpGe:
			return v >= n.Val
		}
	case *sqlparse.And:
		for _, k := range n.Kids {
			if !bruteEval(k, row) {
				return false
			}
		}
		return true
	case *sqlparse.Or:
		for _, k := range n.Kids {
			if bruteEval(k, row) {
				return true
			}
		}
		return false
	}
	return false
}

// starDB builds a small star schema: fact table f referencing dimensions
// d1 and d2, plus a second-level satellite s referencing d1 (a chain), to
// exercise non-star trees.
func starDB(rng *rand.Rand, nf, nd1, nd2, ns int) *table.DB {
	db := table.NewDB()

	d1 := table.New("d1")
	d1ids := make([]int64, nd1)
	d1attr := make([]int64, nd1)
	for i := range d1ids {
		d1ids[i] = int64(i)
		d1attr[i] = int64(rng.Intn(5))
	}
	d1.MustAddColumn(table.NewColumn("id", d1ids))
	d1.MustAddColumn(table.NewColumn("x", d1attr))
	db.MustAdd(d1)

	d2 := table.New("d2")
	d2ids := make([]int64, nd2)
	d2attr := make([]int64, nd2)
	for i := range d2ids {
		d2ids[i] = int64(i)
		d2attr[i] = int64(rng.Intn(5))
	}
	d2.MustAddColumn(table.NewColumn("id", d2ids))
	d2.MustAddColumn(table.NewColumn("y", d2attr))
	db.MustAdd(d2)

	f := table.New("f")
	fd1 := make([]int64, nf)
	fd2 := make([]int64, nf)
	fattr := make([]int64, nf)
	for i := range fd1 {
		fd1[i] = int64(rng.Intn(nd1))
		fd2[i] = int64(rng.Intn(nd2))
		fattr[i] = int64(rng.Intn(5))
	}
	f.MustAddColumn(table.NewColumn("d1_id", fd1))
	f.MustAddColumn(table.NewColumn("d2_id", fd2))
	f.MustAddColumn(table.NewColumn("z", fattr))
	db.MustAdd(f)

	s := table.New("s")
	sd1 := make([]int64, ns)
	sattr := make([]int64, ns)
	for i := range sd1 {
		sd1[i] = int64(rng.Intn(nd1))
		sattr[i] = int64(rng.Intn(5))
	}
	s.MustAddColumn(table.NewColumn("d1_id", sd1))
	s.MustAddColumn(table.NewColumn("w", sattr))
	db.MustAdd(s)

	return db
}

// bruteJoinCount materializes the join with nested loops — the reference
// semantics for the message-passing counter.
func bruteJoinCount(db *table.DB, q *sqlparse.Query) int64 {
	tables := q.Tables
	sizes := make([]int, len(tables))
	for i, tn := range tables {
		sizes[i] = db.Table(tn).NumRows()
	}
	idx := make([]int, len(tables))
	var count int64
	var recurse func(d int)
	recurse = func(d int) {
		if d == len(tables) {
			// Check join predicates.
			for _, j := range q.Joins {
				lt, rt := db.Table(j.LeftTable), db.Table(j.RightTable)
				li, ri := tablePos(tables, j.LeftTable), tablePos(tables, j.RightTable)
				if lt.Column(j.LeftCol).Vals[idx[li]] != rt.Column(j.RightCol).Vals[idx[ri]] {
					return
				}
			}
			// Check selections.
			for _, kid := range sqlparse.Conjuncts(q.Where) {
				row := map[string]int64{}
				for _, p := range sqlparse.CollectPreds(kid) {
					tn, cn := splitAttr(p.Attr)
					ti := tablePos(tables, tn)
					row[p.Attr] = db.Table(tn).Column(cn).Vals[idx[ti]]
				}
				if !bruteEval(kid, row) {
					return
				}
			}
			count++
			return
		}
		for i := 0; i < sizes[d]; i++ {
			idx[d] = i
			recurse(d + 1)
		}
	}
	recurse(0)
	return count
}

func tablePos(tables []string, name string) int {
	for i, t := range tables {
		if t == name {
			return i
		}
	}
	return -1
}

func TestCountJoinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := starDB(rng, 30, 8, 6, 12)
	queries := []string{
		"SELECT count(*) FROM f, d1 WHERE f.d1_id = d1.id",
		"SELECT count(*) FROM f, d1 WHERE f.d1_id = d1.id AND d1.x = 2",
		"SELECT count(*) FROM f, d1, d2 WHERE f.d1_id = d1.id AND f.d2_id = d2.id AND f.z > 1 AND d2.y <= 3",
		"SELECT count(*) FROM f, d1, s WHERE f.d1_id = d1.id AND s.d1_id = d1.id AND s.w = 0",
		"SELECT count(*) FROM f, d1, d2, s WHERE f.d1_id = d1.id AND f.d2_id = d2.id AND s.d1_id = d1.id AND d1.x >= 1 AND f.z <> 2",
		"SELECT count(*) FROM d1, s WHERE s.d1_id = d1.id AND (d1.x = 1 OR d1.x = 3)",
	}
	for _, src := range queries {
		q := sqlparse.MustParse(src)
		got, err := Count(db, q)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		want := bruteJoinCount(db, q)
		if got != want {
			t.Errorf("%s: message passing = %d, brute force = %d", src, got, want)
		}
	}
}

func TestCountJoinRandomized(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := starDB(rng, 20+rng.Intn(20), 5+rng.Intn(5), 4+rng.Intn(4), 10+rng.Intn(10))
		src := fmt.Sprintf(
			"SELECT count(*) FROM f, d1, d2 WHERE f.d1_id = d1.id AND f.d2_id = d2.id AND f.z <= %d AND d1.x > %d",
			rng.Intn(5), rng.Intn(4))
		q := sqlparse.MustParse(src)
		got, err := Count(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteJoinCount(db, q); got != want {
			t.Errorf("seed %d: got %d, want %d (%s)", seed, got, want, src)
		}
	}
}

func TestCountJoinErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := starDB(rng, 5, 3, 3, 3)
	// Missing join predicate: disconnected graph.
	q := sqlparse.MustParse("SELECT count(*) FROM f, d1, d2 WHERE f.d1_id = d1.id")
	if _, err := Count(db, q); err == nil {
		t.Error("expected error for disconnected join graph")
	}
	// Unknown table.
	q2 := sqlparse.MustParse("SELECT count(*) FROM nope")
	if _, err := Count(db, q2); err == nil {
		t.Error("expected error for unknown table")
	}
}

func TestBindStringPredicates(t *testing.T) {
	tbl := table.New("orders")
	tbl.MustAddColumn(table.NewStringColumn("status", []string{"F", "P", "F", "O", "P"}))
	db := singleDB(tbl)

	cases := []struct {
		src  string
		want int64
	}{
		{"status = 'P'", 2},
		{"status = 'F' OR status = 'P'", 4},
		{"status <> 'F'", 3},
		{"status = 'ZZZ'", 0},  // absent literal, equality: empty
		{"status <> 'ZZZ'", 5}, // absent literal, inequality: all
		{"status < 'P'", 3},    // F, F, O
		{"status >= 'P'", 2},
		{"status < 'G'", 2},  // absent literal between F and O
		{"status >= 'G'", 3}, // O, P, P
	}
	for _, tc := range cases {
		q := sqlparse.MustParse("SELECT count(*) FROM orders WHERE " + tc.src)
		if err := Bind(q, db); err != nil {
			t.Fatalf("%s: bind: %v", tc.src, err)
		}
		for _, p := range sqlparse.CollectPreds(q.Where) {
			if p.Str != nil {
				t.Fatalf("%s: predicate still unbound after Bind", tc.src)
			}
		}
		got, err := Count(db, q)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got != tc.want {
			t.Errorf("%s: count = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestBindErrors(t *testing.T) {
	tbl := smallTable()
	db := singleDB(tbl)
	q := sqlparse.MustParse("SELECT count(*) FROM t WHERE a = 'x'")
	if err := Bind(q, db); err == nil {
		t.Error("expected error binding string literal to integer column")
	}
	q2 := sqlparse.MustParse("SELECT count(*) FROM t WHERE nosuch = 'x'")
	if err := Bind(q2, db); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestCountMany(t *testing.T) {
	db := singleDB(smallTable())
	qs := []*sqlparse.Query{
		sqlparse.MustParse("SELECT count(*) FROM t WHERE a <= 3"),
		sqlparse.MustParse("SELECT count(*) FROM t WHERE b = 9"),
	}
	got, err := CountMany(db, qs)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 4 {
		t.Errorf("CountMany = %v", got)
	}
	qs = append(qs, sqlparse.MustParse("SELECT count(*) FROM nope"))
	if _, err := CountMany(db, qs); err == nil {
		t.Error("expected error propagation from bad query")
	}
}

func TestBindLikePrefix(t *testing.T) {
	tbl := table.New("movies")
	tbl.MustAddColumn(table.NewStringColumn("name", []string{
		"apollo", "apex", "banana", "apogee", "zebra", "apex",
	}))
	db := singleDB(tbl)

	cases := []struct {
		src  string
		want int64
	}{
		{"name LIKE 'ap%'", 4},
		{"name LIKE 'apex%'", 2},
		{"name LIKE 'q%'", 0},
		{"name LIKE '%'", 6}, // empty prefix matches everything
		{"name LIKE 'ap%' OR name = 'zebra'", 5},
	}
	for _, tc := range cases {
		q := sqlparse.MustParse("SELECT count(*) FROM movies WHERE " + tc.src)
		if err := Bind(q, db); err != nil {
			t.Fatalf("%s: bind: %v", tc.src, err)
		}
		got, err := Count(db, q)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got != tc.want {
			t.Errorf("%s: count = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestBindLikeErrors(t *testing.T) {
	db := singleDB(smallTable())
	q := sqlparse.MustParse("SELECT count(*) FROM t WHERE a LIKE 'x%'")
	if err := Bind(q, db); err == nil {
		t.Error("LIKE on integer column accepted")
	}
}

func TestCountGroups(t *testing.T) {
	tbl := table.New("t")
	tbl.MustAddColumn(table.NewColumn("a", []int64{1, 2, 3, 4, 5, 6}))
	tbl.MustAddColumn(table.NewColumn("g", []int64{1, 1, 2, 2, 3, 3}))
	tbl.MustAddColumn(table.NewColumn("h", []int64{0, 1, 0, 1, 0, 1}))
	db := singleDB(tbl)

	cases := []struct {
		src  string
		want int64
	}{
		{"SELECT count(*) FROM t GROUP BY g", 3},
		{"SELECT count(*) FROM t WHERE a <= 2 GROUP BY g", 1},
		{"SELECT count(*) FROM t WHERE a >= 3 GROUP BY g", 2},
		{"SELECT count(*) FROM t GROUP BY g, h", 6},
		{"SELECT count(*) FROM t WHERE a <= 3 GROUP BY g, h", 3},
		{"SELECT count(*) FROM t WHERE a > 100 GROUP BY g", 0},
		{"SELECT count(*) FROM t WHERE a <= 3", 1}, // no grouping: one group
		{"SELECT count(*) FROM t WHERE a > 100", 0},
	}
	for _, tc := range cases {
		q := sqlparse.MustParse(tc.src)
		got, err := CountGroups(db, q)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got != tc.want {
			t.Errorf("%s: groups = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestCountGroupsErrors(t *testing.T) {
	db := singleDB(smallTable())
	q := sqlparse.MustParse("SELECT count(*) FROM t GROUP BY nosuch")
	if _, err := CountGroups(db, q); err == nil {
		t.Error("unknown grouping column accepted")
	}
	q2 := sqlparse.MustParse("SELECT count(*) FROM a, b WHERE a.x = b.y")
	if _, err := CountGroups(db, q2); err == nil {
		t.Error("multi-table group counting accepted")
	}
}
