package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFSTornWritePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFS(nil, FSConfig{Seed: 7, Kind: FSTornWrite, Op: 1})
	path := filepath.Join(dir, "f")
	data := []byte("0123456789abcdef")
	err := ffs.WriteFile(path, data)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write returned %v, want ErrCrashed", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("torn write left no file: %v", rerr)
	}
	if len(got) >= len(data) {
		t.Fatalf("torn write persisted %d bytes of %d, want a strict prefix", len(got), len(data))
	}
	if string(got) != string(data[:len(got)]) {
		t.Fatalf("torn content %q is not a prefix of %q", got, data)
	}
	// The filesystem is dead from here on.
	if err := ffs.MkdirAll(filepath.Join(dir, "d")); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash MkdirAll = %v, want ErrCrashed", err)
	}
	if _, err := ffs.ReadFile(path); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash ReadFile = %v, want ErrCrashed", err)
	}
	if !ffs.Crashed() || ffs.Injected() != 1 {
		t.Errorf("Crashed=%v Injected=%d, want true/1", ffs.Crashed(), ffs.Injected())
	}
}

func TestFSENOSPCFiresOnce(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFS(nil, FSConfig{Seed: 3, Kind: FSENOSPC, Op: 1})
	path := filepath.Join(dir, "f")
	if err := ffs.WriteFile(path, []byte("doomed-write")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("first write = %v, want ErrNoSpace", err)
	}
	if ffs.Crashed() {
		t.Fatal("ENOSPC must not crash the filesystem")
	}
	if err := ffs.WriteFile(path, []byte("retry")); err != nil {
		t.Fatalf("retry after ENOSPC: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "retry" {
		t.Fatalf("file after retry = %q, %v", got, err)
	}
}

func TestFSReadFaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	data := []byte("the quick brown fox jumps over the lazy dog")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	short := NewFS(nil, FSConfig{Seed: 5, Kind: FSShortRead, Op: 2})
	if got, err := short.ReadFile(path); err != nil || string(got) != string(data) {
		t.Fatalf("read 1 (clean) = %q, %v", got, err)
	}
	got, err := short.ReadFile(path)
	if err != nil || len(got) >= len(data) {
		t.Fatalf("read 2 (short) returned %d bytes of %d, err %v", len(got), len(data), err)
	}
	if got, err := short.ReadFile(path); err != nil || string(got) != string(data) {
		t.Fatalf("read 3 (clean again) = %q, %v", got, err)
	}

	flip := NewFS(nil, FSConfig{Seed: 5, Kind: FSBitFlip, Op: 1})
	mut, err := flip.ReadFile(path)
	if err != nil || len(mut) != len(data) {
		t.Fatalf("bit-flip read: len %d err %v", len(mut), err)
	}
	diff := 0
	for i := range mut {
		if mut[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("bit-flip changed %d bytes, want exactly 1", diff)
	}
	if raw, _ := os.ReadFile(path); string(raw) != string(data) {
		t.Error("bit-flip mutated the file at rest; it must only corrupt the read")
	}
}
