package faultinject

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"qfe/internal/sqlparse"
)

var q = sqlparse.MustParse("SELECT count(*) FROM t WHERE a = 1")

type constEst struct{ v float64 }

func (c constEst) Name() string                              { return "const" }
func (c constEst) Estimate(*sqlparse.Query) (float64, error) { return c.v, nil }

// outcomes collects the observable result kind of n calls.
func outcomes(in *Injector, n int) []Kind {
	out := make([]Kind, n)
	for i := range out {
		out[i] = oneCall(in)
	}
	return out
}

func oneCall(in *Injector) (k Kind) {
	defer func() {
		if recover() != nil {
			k = Panicked
		}
	}()
	v, err := in.Estimate(q)
	switch {
	case errors.Is(err, ErrInjected):
		return Errored
	case err != nil:
		return Kind(-1)
	case math.IsNaN(v):
		return ReturnedNaN
	case math.IsInf(v, 1):
		return ReturnedInf
	case v < 0:
		return ReturnedNegative
	}
	return Clean
}

func TestSameSeedSameFaultSequence(t *testing.T) {
	cfg := Config{Seed: 11, PanicRate: 0.2, ErrorRate: 0.2, NaNRate: 0.2, InfRate: 0.1, NegativeRate: 0.1}
	a := outcomes(New(constEst{v: 10}, cfg), 500)
	b := outcomes(New(constEst{v: 10}, cfg), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: %v vs %v from identical seeds", i, a[i], b[i])
		}
	}
	c := outcomes(New(constEst{v: 10}, Config{Seed: 12, PanicRate: 0.2, ErrorRate: 0.2, NaNRate: 0.2, InfRate: 0.1, NegativeRate: 0.1}), 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical 500-call fault sequences")
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	in := New(constEst{v: 10}, Config{Seed: 42, PanicRate: 0.1, ErrorRate: 0.3, NaNRate: 0.1})
	const n = 10_000
	outcomes(in, n)
	c := in.Counts()
	if c.Calls != n {
		t.Fatalf("counted %d calls, want %d", c.Calls, n)
	}
	within := func(name string, got int, rate float64) {
		want := rate * n
		if math.Abs(float64(got)-want) > 0.02*n+3*math.Sqrt(want) {
			t.Errorf("%s: %d faults for rate %v over %d calls", name, got, rate, n)
		}
	}
	within("panic", c.Panics, 0.1)
	within("error", c.Errors, 0.3)
	within("nan", c.NaNs, 0.1)
	within("clean", c.Clean, 0.5)
}

func TestCleanCallsPassThrough(t *testing.T) {
	in := New(constEst{v: 123}, Config{Seed: 1})
	v, err := in.Estimate(q)
	if err != nil || v != 123 {
		t.Fatalf("clean injector disturbed the call: v=%v err=%v", v, err)
	}
	if c := in.Counts(); c.Clean != 1 || c.Calls != 1 {
		t.Fatalf("counts %+v", c)
	}
}

func TestLatencyRespectsContext(t *testing.T) {
	in := New(constEst{v: 5}, Config{Seed: 1, Latency: 5 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := in.EstimateCtx(ctx, q)
	if time.Since(start) > time.Second {
		t.Fatal("injected latency ignored the context deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if c := in.Counts(); c.LatencyTimeouts != 1 {
		t.Fatalf("latency timeout not counted: %+v", c)
	}
}

func TestLatencySleepsWithoutDeadline(t *testing.T) {
	in := New(constEst{v: 5}, Config{Seed: 1, Latency: 10 * time.Millisecond})
	start := time.Now()
	v, err := in.Estimate(q)
	if err != nil || v != 5 {
		t.Fatalf("v=%v err=%v", v, err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("latency was not injected")
	}
}
