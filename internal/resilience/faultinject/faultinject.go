// Package faultinject provides a seeded, deterministic fault-injecting
// estimator wrapper for testing the resilience layer. Every failure mode the
// serving stack must survive — errors, latency spikes, panics, NaN/Inf and
// negative results — can be injected with configured probabilities, and the
// whole fault sequence is a pure function of the seed, so tests that assert
// "the chain degraded exactly here" are reproducible.
package faultinject

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"qfe/internal/estimator"
	"qfe/internal/sqlparse"
)

// Config sets the per-call fault probabilities. The fault decision is a
// single uniform draw per call tested against the stacked rates, in the
// order panic, error, NaN, +Inf, negative — so PanicRate 0.1 and ErrorRate
// 0.1 mean 10% panics, 10% errors, 80% clean calls.
type Config struct {
	// Seed drives the deterministic fault stream.
	Seed int64
	// PanicRate is the probability a call panics.
	PanicRate float64
	// ErrorRate is the probability a call returns ErrInjected.
	ErrorRate float64
	// NaNRate is the probability a call returns NaN.
	NaNRate float64
	// InfRate is the probability a call returns +Inf.
	InfRate float64
	// NegativeRate is the probability a call returns -1.
	NegativeRate float64
	// Latency is added to every call. Context-aware paths abort the sleep
	// (and the call) when the context expires first.
	Latency time.Duration
}

// ErrInjected is the error returned by injected error faults.
var ErrInjected = fmt.Errorf("faultinject: injected error")

// Kind labels what a single call did.
type Kind int

const (
	// Clean: the call was passed through unharmed.
	Clean Kind = iota
	// Panicked: the call panicked.
	Panicked
	// Errored: the call returned ErrInjected.
	Errored
	// ReturnedNaN: the call returned math.NaN().
	ReturnedNaN
	// ReturnedInf: the call returned math.Inf(1).
	ReturnedInf
	// ReturnedNegative: the call returned -1.
	ReturnedNegative
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case Clean:
		return "clean"
	case Panicked:
		return "panic"
	case Errored:
		return "error"
	case ReturnedNaN:
		return "nan"
	case ReturnedInf:
		return "inf"
	case ReturnedNegative:
		return "negative"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Counts tallies calls by outcome.
type Counts struct {
	Calls           int
	Clean           int
	Panics          int
	Errors          int
	NaNs            int
	Infs            int
	Negatives       int
	LatencyTimeouts int // calls whose injected latency outlived the context
}

// Injector wraps an estimator with deterministic faults. It is safe for
// concurrent use; the fault stream is serialized under a mutex, so the
// sequence of fault kinds is seed-determined even under concurrency (which
// call gets which fault then depends on scheduling — single-goroutine tests
// get full determinism).
type Injector struct {
	inner estimator.Estimator
	cfg   Config

	mu     sync.Mutex
	rng    *rand.Rand
	counts Counts
}

// New wraps inner with the configured fault stream.
func New(inner estimator.Estimator, cfg Config) *Injector {
	return &Injector{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements Estimator.
func (in *Injector) Name() string { return "faulty(" + in.inner.Name() + ")" }

// SetConfig replaces the fault configuration (and reseeds the stream) at
// runtime. Chaos tests use it to make a healthy, already-published model
// start misbehaving — the scenario a serving supervisor must detect.
func (in *Injector) SetConfig(cfg Config) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.cfg = cfg
	in.rng = rand.New(rand.NewSource(cfg.Seed))
}

// draw picks the next fault kind from the seeded stream and updates counts.
func (in *Injector) draw() Kind {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts.Calls++
	u := in.rng.Float64()
	k := Clean
	switch {
	case u < in.cfg.PanicRate:
		k = Panicked
	case u < in.cfg.PanicRate+in.cfg.ErrorRate:
		k = Errored
	case u < in.cfg.PanicRate+in.cfg.ErrorRate+in.cfg.NaNRate:
		k = ReturnedNaN
	case u < in.cfg.PanicRate+in.cfg.ErrorRate+in.cfg.NaNRate+in.cfg.InfRate:
		k = ReturnedInf
	case u < in.cfg.PanicRate+in.cfg.ErrorRate+in.cfg.NaNRate+in.cfg.InfRate+in.cfg.NegativeRate:
		k = ReturnedNegative
	}
	switch k {
	case Clean:
		in.counts.Clean++
	case Panicked:
		in.counts.Panics++
	case Errored:
		in.counts.Errors++
	case ReturnedNaN:
		in.counts.NaNs++
	case ReturnedInf:
		in.counts.Infs++
	case ReturnedNegative:
		in.counts.Negatives++
	}
	return k
}

// Estimate implements Estimator (no deadline: injected latency sleeps in
// full).
func (in *Injector) Estimate(q *sqlparse.Query) (float64, error) {
	return in.EstimateCtx(context.Background(), q)
}

// EstimateCtx implements ContextEstimator: latency is injected first (bounded
// by the context), then the drawn fault fires, then — for clean calls — the
// wrapped estimator runs.
func (in *Injector) EstimateCtx(ctx context.Context, q *sqlparse.Query) (float64, error) {
	in.mu.Lock()
	latency := in.cfg.Latency
	in.mu.Unlock()
	if latency > 0 {
		t := time.NewTimer(latency)
		select {
		case <-ctx.Done():
			t.Stop()
			in.mu.Lock()
			in.counts.LatencyTimeouts++
			in.mu.Unlock()
			return 0, ctx.Err()
		case <-t.C:
		}
	}
	switch in.draw() {
	case Panicked:
		panic("faultinject: injected panic")
	case Errored:
		return 0, ErrInjected
	case ReturnedNaN:
		return math.NaN(), nil
	case ReturnedInf:
		return math.Inf(1), nil
	case ReturnedNegative:
		return -1, nil
	}
	return estimator.EstimateWithContext(ctx, in.inner, q)
}

// Counts snapshots the outcome tallies.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}
