package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"qfe/internal/store"
)

// This file extends the fault injector from estimator calls to the
// filesystem: FS wraps a store.FS and fires one configured fault at a
// deterministic operation ordinal. Together with the snapshot store's
// write protocol it drives the crash/chaos suite — sweeping the crash
// point across every mutating operation of a publish proves that recovery
// after *any* torn write yields a loadable generation, and read-side
// faults (short reads, bit-flips) prove the checksummed envelope rejects
// silently corrupted bytes instead of serving them.

// FSFaultKind selects the filesystem fault to inject.
type FSFaultKind int

const (
	// FSNone injects nothing; the wrapper only counts operations (used to
	// size crash sweeps).
	FSNone FSFaultKind = iota
	// FSCrash makes the Op-th mutating operation — and everything after it
	// — fail with ErrCrashed, applying no changes: a process death before
	// the operation reached the disk.
	FSCrash
	// FSTornWrite is FSCrash where the fatal operation, if it is a
	// WriteFile, first persists a seed-chosen strict prefix of the data: a
	// power loss mid-write.
	FSTornWrite
	// FSENOSPC makes the Op-th mutating operation fail with ErrNoSpace — a
	// WriteFile first persists a seed-chosen prefix of its data — and the
	// filesystem keeps working afterwards. A full disk, not a crash; unlike
	// the crash kinds it also hits metadata operations (MkdirAll, Rename,
	// RemoveAll, SyncDir), modeling fsync or rename failing on a full disk.
	FSENOSPC
	// FSShortRead makes the Op-th ReadFile return a strict prefix of the
	// file with no error.
	FSShortRead
	// FSBitFlip makes the Op-th ReadFile return the file with one
	// seed-chosen bit inverted.
	FSBitFlip
)

// String renders the fault kind.
func (k FSFaultKind) String() string {
	switch k {
	case FSNone:
		return "none"
	case FSCrash:
		return "crash"
	case FSTornWrite:
		return "torn-write"
	case FSENOSPC:
		return "enospc"
	case FSShortRead:
		return "short-read"
	case FSBitFlip:
		return "bit-flip"
	}
	return fmt.Sprintf("FSFaultKind(%d)", int(k))
}

// ErrCrashed is returned by every operation at and after the injected
// crash point: the process is "dead" as far as this FS handle goes.
var ErrCrashed = errors.New("faultinject: filesystem crashed")

// ErrNoSpace is the injected out-of-space error. It unwraps to ENOSPC-like
// behavior only in message; callers match on the error value.
var ErrNoSpace = errors.New("faultinject: no space left on device")

// FSConfig places one fault.
type FSConfig struct {
	// Seed drives the torn-prefix lengths and bit positions.
	Seed int64
	// Kind is the fault to inject; FSNone only counts operations.
	Kind FSFaultKind
	// Op is the 1-based ordinal of the operation the fault fires at —
	// mutating operations (MkdirAll, WriteFile, Rename, RemoveAll,
	// SyncDir) for the write-side kinds, ReadFile calls for the read-side
	// kinds. 0 never fires.
	Op int
}

// FS wraps a store.FS with one deterministic fault. It is safe for
// concurrent use, though crash sweeps are meaningful only for serialized
// operation sequences (which is what the store performs under its lock).
type FS struct {
	base store.FS
	cfg  FSConfig

	mu       sync.Mutex
	mutates  int
	reads    int
	crashed  bool
	injected int
	rng      *rand.Rand
}

// NewFS wraps base (nil means the real filesystem) with cfg's fault.
func NewFS(base store.FS, cfg FSConfig) *FS {
	if base == nil {
		base = store.OSFS()
	}
	return &FS{base: base, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// MutatingOps returns how many mutating operations have been attempted —
// run a clean pass (FSNone) first, then sweep Op over [1, MutatingOps()].
func (f *FS) MutatingOps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mutates
}

// Reads returns how many ReadFile calls have been attempted.
func (f *FS) Reads() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reads
}

// Injected returns how many faults actually fired.
func (f *FS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Crashed reports whether the crash point has been reached.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// mutate accounts one mutating operation and decides its fate:
// ok=false means the operation must fail with err without touching the
// disk; tearAt >= 0 means "persist exactly tearAt bytes, then fail" (only
// meaningful for writes; non-write operations treat it as a plain crash).
func (f *FS) mutate(dataLen int) (tearAt int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return -1, ErrCrashed
	}
	f.mutates++
	fire := f.cfg.Op > 0 && f.mutates == f.cfg.Op
	switch f.cfg.Kind {
	case FSCrash:
		if fire {
			f.crashed = true
			f.injected++
			return -1, ErrCrashed
		}
	case FSTornWrite:
		if fire {
			f.crashed = true
			f.injected++
			if dataLen > 0 {
				return f.rng.Intn(dataLen), ErrCrashed // strict prefix: [0, len)
			}
			return -1, ErrCrashed
		}
	case FSENOSPC:
		if fire {
			f.injected++
			if dataLen > 0 {
				return f.rng.Intn(dataLen), ErrNoSpace
			}
			return -1, ErrNoSpace
		}
	}
	return -1, nil
}

// MkdirAll implements store.FS.
func (f *FS) MkdirAll(dir string) error {
	if _, err := f.mutate(-1); err != nil {
		return err
	}
	return f.base.MkdirAll(dir)
}

// WriteFile implements store.FS with torn-write and ENOSPC semantics.
func (f *FS) WriteFile(path string, data []byte) error {
	tearAt, err := f.mutate(len(data))
	if err != nil {
		if tearAt >= 0 {
			// Persist the prefix that "made it to disk" before the failure.
			f.base.WriteFile(path, data[:tearAt]) //nolint:errcheck // the op already failed
		}
		return err
	}
	return f.base.WriteFile(path, data)
}

// AppendFile implements store.FS with torn-write and ENOSPC semantics: a
// fault firing on an append persists a seed-chosen strict prefix of the
// batch behind whatever the file already held — exactly the torn tail a
// power loss mid-append leaves in a journal segment.
func (f *FS) AppendFile(path string, data []byte) error {
	tearAt, err := f.mutate(len(data))
	if err != nil {
		if tearAt >= 0 {
			f.base.AppendFile(path, data[:tearAt]) //nolint:errcheck // the op already failed
		}
		return err
	}
	return f.base.AppendFile(path, data)
}

// Rename implements store.FS.
func (f *FS) Rename(oldPath, newPath string) error {
	if _, err := f.mutate(-1); err != nil {
		return err
	}
	return f.base.Rename(oldPath, newPath)
}

// RemoveAll implements store.FS.
func (f *FS) RemoveAll(path string) error {
	if _, err := f.mutate(-1); err != nil {
		return err
	}
	return f.base.RemoveAll(path)
}

// SyncDir implements store.FS.
func (f *FS) SyncDir(dir string) error {
	if _, err := f.mutate(-1); err != nil {
		return err
	}
	return f.base.SyncDir(dir)
}

// ReadFile implements store.FS with short-read and bit-flip semantics.
func (f *FS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, ErrCrashed
	}
	f.reads++
	fire := f.cfg.Op > 0 && f.reads == f.cfg.Op
	kind := f.cfg.Kind
	f.mu.Unlock()

	data, err := f.base.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !fire {
		return data, nil
	}
	switch kind {
	case FSShortRead:
		f.mu.Lock()
		f.injected++
		n := 0
		if len(data) > 0 {
			n = f.rng.Intn(len(data)) // strict prefix
		}
		f.mu.Unlock()
		return data[:n], nil
	case FSBitFlip:
		f.mu.Lock()
		f.injected++
		mut := append([]byte(nil), data...)
		if len(mut) > 0 {
			bit := f.rng.Intn(len(mut) * 8)
			mut[bit/8] ^= 1 << (bit % 8)
		}
		f.mu.Unlock()
		return mut, nil
	}
	return data, nil
}

// ReadDir implements store.FS (never faulted; directory listings are not
// part of the fault model).
func (f *FS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, ErrCrashed
	}
	f.mu.Unlock()
	return f.base.ReadDir(dir)
}

var _ store.FS = (*FS)(nil)
