package resilience

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"qfe/internal/resilience/faultinject"
)

// This file is the fault-injection acceptance suite: under injected
// error/latency/panic/NaN faults at every chain stage, Resilient must always
// return a finite estimate >= 1 within the deadline and never propagate a
// panic; the circuit breaker must open after the configured failure
// threshold and recover via half-open probes. Everything is driven from
// fixed seeds, so a failure here reproduces exactly.

// buildFaultyChain wires a three-stage chain (each stage a fault-injected
// constant estimator) with a row-count last resort and instant retry sleeps.
func buildFaultyChain(cfg faultinject.Config, chainCfg Config) (*Resilient, []*faultinject.Injector) {
	injectors := []*faultinject.Injector{
		faultinject.New(Constant{Value: 1000}, cfg),
		faultinject.New(Constant{Value: 500}, withSeed(cfg, cfg.Seed+1)),
		faultinject.New(Constant{Value: 250}, withSeed(cfg, cfg.Seed+2)),
	}
	if chainCfg.Sleep == nil {
		chainCfg.Sleep = noSleep
	}
	if chainCfg.LastResort == nil {
		chainCfg.LastResort = RowCount{}
	}
	r := NewResilient(chainCfg,
		Stage{Name: "learned", Est: injectors[0]},
		Stage{Name: "sampling", Est: injectors[1]},
		Stage{Name: "independence", Est: injectors[2]},
	)
	return r, injectors
}

func withSeed(cfg faultinject.Config, seed int64) faultinject.Config {
	cfg.Seed = seed
	return cfg
}

// TestChainSurvivesMixedFaultStorm hammers the chain with every fault kind
// at once at every stage and asserts the serving invariant on each call.
func TestChainSurvivesMixedFaultStorm(t *testing.T) {
	r, injectors := buildFaultyChain(faultinject.Config{
		Seed:         12345,
		PanicRate:    0.15,
		ErrorRate:    0.25,
		NaNRate:      0.10,
		InfRate:      0.05,
		NegativeRate: 0.05,
	}, Config{
		Retry:   RetryConfig{MaxAttempts: 2, JitterSeed: 9},
		Breaker: BreakerConfig{FailureThreshold: 4, Cooldown: time.Millisecond, HalfOpenProbes: 1},
	})
	const calls = 1000
	degraded := 0
	for i := 0; i < calls; i++ {
		res := r.EstimateDetailed(context.Background(), testQuery)
		if math.IsNaN(res.Estimate) || math.IsInf(res.Estimate, 0) || res.Estimate < 1 {
			t.Fatalf("call %d: unusable estimate %v (stage %s)", i, res.Estimate, res.Stage)
		}
		if res.Degraded {
			degraded++
		}
	}
	var faults int
	for i, in := range injectors {
		c := in.Counts()
		faults += c.Panics + c.Errors + c.NaNs + c.Infs + c.Negatives
		t.Logf("stage %d: %+v", i, c)
	}
	if faults == 0 {
		t.Fatal("fault storm injected nothing — rates or seed are wrong")
	}
	if degraded == 0 {
		t.Fatal("no call degraded under a 60 percent fault rate — chain is not actually degrading")
	}
	t.Logf("%d/%d calls degraded, %d faults injected", degraded, calls, faults)
}

// TestChainSurvivesEveryFaultKindAtFullRate pins each fault kind at rate 1.0
// on every stage: the chain must ride the last resort and still answer.
func TestChainSurvivesEveryFaultKindAtFullRate(t *testing.T) {
	kinds := []struct {
		name string
		cfg  faultinject.Config
	}{
		{"error", faultinject.Config{Seed: 1, ErrorRate: 1}},
		{"panic", faultinject.Config{Seed: 2, PanicRate: 1}},
		{"nan", faultinject.Config{Seed: 3, NaNRate: 1}},
		{"inf", faultinject.Config{Seed: 4, InfRate: 1}},
		{"negative", faultinject.Config{Seed: 5, NegativeRate: 1}},
	}
	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			r, _ := buildFaultyChain(k.cfg, Config{
				Breaker: BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour},
			})
			for i := 0; i < 50; i++ {
				res := r.EstimateDetailed(context.Background(), testQuery)
				if math.IsNaN(res.Estimate) || math.IsInf(res.Estimate, 0) || res.Estimate < 1 {
					t.Fatalf("call %d: unusable estimate %v", i, res.Estimate)
				}
				if res.Stage != "row-count heuristic" {
					t.Fatalf("call %d: fault kind %s at rate 1.0 was served by %q", i, k.name, res.Stage)
				}
			}
			// Every stage's breaker must have opened after the threshold
			// and stayed open (cooldown is an hour).
			for i, st := range r.Stats() {
				if st.State != StateOpen {
					t.Errorf("stage %d breaker state %v, want open", i, st.State)
				}
				if st.Failed != 3 {
					t.Errorf("stage %d failed %d times before opening, want 3", i, st.Failed)
				}
			}
		})
	}
}

// TestChainMeetsDeadlineUnderLatencyFault injects latency far beyond the
// deadline into every stage: the chain must come back quickly via the last
// resort rather than waiting the injected latency out.
func TestChainMeetsDeadlineUnderLatencyFault(t *testing.T) {
	r, _ := buildFaultyChain(
		faultinject.Config{Seed: 6, Latency: 5 * time.Second},
		Config{Timeout: 50 * time.Millisecond},
	)
	start := time.Now()
	res := r.EstimateDetailed(context.Background(), testQuery)
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("deadline blown: %v elapsed against a 50ms budget", elapsed)
	}
	if math.IsNaN(res.Estimate) || math.IsInf(res.Estimate, 0) || res.Estimate < 1 {
		t.Fatalf("unusable estimate %v", res.Estimate)
	}
	if res.Stage != "row-count heuristic" {
		t.Fatalf("expected the last resort under full-latency faults, got %q", res.Stage)
	}
}

// TestChainIsDeterministic runs the identical fault storm twice and demands
// bit-identical per-call outcomes: same estimates, same serving stages, same
// degradation pattern.
func TestChainIsDeterministic(t *testing.T) {
	type outcome struct {
		est   float64
		stage string
		errs  int
	}
	runOnce := func() []outcome {
		r, _ := buildFaultyChain(faultinject.Config{
			Seed:         777,
			PanicRate:    0.2,
			ErrorRate:    0.2,
			NaNRate:      0.1,
			NegativeRate: 0.1,
		}, Config{
			Retry:   RetryConfig{MaxAttempts: 2, JitterSeed: 3},
			Breaker: BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour},
		})
		out := make([]outcome, 300)
		for i := range out {
			res := r.EstimateDetailed(context.Background(), testQuery)
			out[i] = outcome{est: res.Estimate, stage: res.Stage, errs: len(res.Errors)}
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged across identical seeded runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestChainBreakerRecoversViaHalfOpenProbes scripts a stage outage and
// recovery end to end inside the chain, on a fake clock: threshold failures
// open the breaker, traffic is served degraded while it is open, and after
// the cooldown the configured number of half-open probes restores the stage.
func TestChainBreakerRecoversViaHalfOpenProbes(t *testing.T) {
	clock := newFakeClock()
	primary := failing(faultinject.ErrInjected)
	r := NewResilient(Config{
		Sleep: noSleep,
		Breaker: BreakerConfig{
			FailureThreshold: 2,
			Cooldown:         30 * time.Second,
			HalfOpenProbes:   2,
			Clock:            clock.now,
		},
		LastResort: RowCount{},
	},
		Stage{Name: "primary", Est: primary},
		Stage{Name: "backup", Est: healthy(40)},
	)

	// Outage: two failures open the breaker.
	for i := 0; i < 2; i++ {
		if res := r.EstimateDetailed(context.Background(), testQuery); res.Estimate != 40 {
			t.Fatalf("outage call %d: %+v", i, res)
		}
	}
	if st := r.Stats()[0]; st.State != StateOpen {
		t.Fatalf("breaker state %v after threshold failures, want open", st.State)
	}
	// While open, the primary is skipped entirely.
	before := primary.callCount()
	for i := 0; i < 5; i++ {
		if res := r.EstimateDetailed(context.Background(), testQuery); res.Estimate != 40 {
			t.Fatalf("open-state call %d: %+v", i, res)
		}
	}
	if primary.callCount() != before {
		t.Fatal("open breaker did not short-circuit the primary")
	}

	// Recovery: the stage heals; cooldown elapses; two probes must succeed
	// before the breaker closes.
	primary.mu.Lock()
	primary.fn = func(int) (float64, error) { return 80, nil }
	primary.mu.Unlock()
	clock.advance(31 * time.Second)

	if res := r.EstimateDetailed(context.Background(), testQuery); res.Estimate != 80 || res.Degraded {
		t.Fatalf("first probe: %+v", res)
	}
	if st := r.Stats()[0]; st.State != StateHalfOpen {
		t.Fatalf("breaker state %v after first probe, want half-open", st.State)
	}
	if res := r.EstimateDetailed(context.Background(), testQuery); res.Estimate != 80 {
		t.Fatalf("second probe: %+v", res)
	}
	if st := r.Stats()[0]; st.State != StateClosed {
		t.Fatalf("breaker state %v after %d successful probes, want closed", st.State, 2)
	}
}

// TestChainUnderConcurrentLoad drives the faulty chain from many goroutines
// with -race in mind: the invariant must hold on every call and the internal
// counters must stay consistent.
func TestChainUnderConcurrentLoad(t *testing.T) {
	r, _ := buildFaultyChain(faultinject.Config{
		Seed:      99,
		PanicRate: 0.2,
		ErrorRate: 0.2,
		NaNRate:   0.1,
	}, Config{
		Retry:   RetryConfig{MaxAttempts: 2, JitterSeed: 5},
		Breaker: BreakerConfig{FailureThreshold: 5, Cooldown: time.Millisecond},
	})
	const workers, perWorker = 8, 100
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < perWorker; i++ {
				v, err := r.EstimateCtx(context.Background(), testQuery)
				if err != nil {
					errs <- err
					return
				}
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 1 {
					errs <- &unusableErr{v}
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, st := range r.Stats() {
		total += st.Served
	}
	if total > workers*perWorker {
		t.Fatalf("stages served %d calls for %d requests", total, workers*perWorker)
	}
}

type unusableErr struct{ v float64 }

func (e *unusableErr) Error() string { return fmt.Sprintf("unusable estimate %v", e.v) }
