package resilience

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int

const (
	// StateClosed: calls flow normally; consecutive failures are counted.
	StateClosed BreakerState = iota
	// StateOpen: calls are rejected without invoking the protected stage.
	StateOpen
	// StateHalfOpen: after the cooldown, a limited number of probe calls
	// are let through to test whether the stage has recovered.
	StateHalfOpen
)

// String renders the state name.
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// BreakerConfig tunes a circuit breaker. The zero value is usable: defaults
// are filled in by NewBreaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that opens the
	// breaker. Default 5.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before transitioning to
	// half-open. Default 30s.
	Cooldown time.Duration
	// HalfOpenProbes is the number of consecutive probe successes required
	// to close a half-open breaker. Default 2.
	HalfOpenProbes int
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 2
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Breaker is a mutex-guarded circuit breaker. A stage wrapped by Resilient
// gets one; the hot path asks Allow before each call and reports the outcome
// with Success or Failure.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	failures    int // consecutive failures while closed
	successes   int // consecutive probe successes while half-open
	openedAt    time.Time
	probeInUse  bool // a half-open probe is in flight
	transitions int
}

// NewBreaker builds a breaker with cfg (zero fields take defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a call may proceed. In the open state it returns
// false until the cooldown has elapsed, at which point the breaker moves to
// half-open and admits a single in-flight probe at a time.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.cfg.Clock().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.setState(StateHalfOpen)
		b.successes = 0
		b.probeInUse = true
		return true
	case StateHalfOpen:
		if b.probeInUse {
			return false
		}
		b.probeInUse = true
		return true
	}
	return false
}

// Success reports a successful call.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.failures = 0
	case StateHalfOpen:
		b.probeInUse = false
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			b.setState(StateClosed)
			b.failures = 0
		}
	}
}

// Failure reports a failed call. A failure while half-open re-opens the
// breaker and restarts the cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.setState(StateOpen)
			b.openedAt = b.cfg.Clock()
		}
	case StateHalfOpen:
		b.probeInUse = false
		b.setState(StateOpen)
		b.openedAt = b.cfg.Clock()
	}
}

// State returns the current state (open breakers past their cooldown still
// report open until the next Allow promotes them to half-open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Transitions counts state changes; useful to assert breaker activity in
// tests without poking at internals.
func (b *Breaker) Transitions() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.transitions
}

func (b *Breaker) setState(s BreakerState) {
	if b.state != s {
		b.state = s
		b.transitions++
	}
}
