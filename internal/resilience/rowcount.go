package resilience

import (
	"context"

	"qfe/internal/sqlparse"
	"qfe/internal/table"
)

// RowCount is the terminal stage of the degradation chain: a System-R-style
// back-of-envelope estimate from table row counts alone. It is total — no
// statistics, no model, no error path — so it can always answer, however
// badly. Selectivities are the textbook magic constants: equality 0.005,
// inequality/range 1/3, and each equi-join divides by the larger side
// (the key/foreign-key assumption).
type RowCount struct {
	DB *table.DB
	// DefaultRows stands in for tables the catalog does not know.
	// Default 1000.
	DefaultRows float64
}

// Name implements Estimator.
func (rc RowCount) Name() string { return "row-count heuristic" }

// Estimate implements Estimator. It never returns an error.
func (rc RowCount) Estimate(q *sqlparse.Query) (float64, error) {
	defRows := rc.DefaultRows
	if defRows < 1 {
		defRows = 1000
	}
	rows := func(name string) float64 {
		if rc.DB != nil {
			if t := rc.DB.Table(name); t != nil && t.NumRows() > 0 {
				return float64(t.NumRows())
			}
		}
		return defRows
	}
	est := 1.0
	if q != nil {
		for _, tn := range q.Tables {
			est *= rows(tn)
		}
		for _, p := range sqlparse.CollectPreds(q.Where) {
			if p.Op == sqlparse.OpEq {
				est *= 0.005
			} else {
				est *= 1.0 / 3
			}
		}
		for _, j := range q.Joins {
			big := rows(j.LeftTable)
			if r := rows(j.RightTable); r > big {
				big = r
			}
			est /= big
		}
	}
	if est < 1 || !validEstimate(est) {
		est = 1
	}
	return est, nil
}

// EstimateCtx implements ContextEstimator trivially: the arithmetic is
// cheaper than the context check, but implementing it keeps the estimator
// usable anywhere a ContextEstimator is expected.
func (rc RowCount) EstimateCtx(_ context.Context, q *sqlparse.Query) (float64, error) {
	return rc.Estimate(q)
}

// Constant is an estimator that always answers Value — the degenerate last
// resort when not even a catalog is available, and a convenient test stub.
type Constant struct {
	Value float64
}

// Name implements Estimator.
func (c Constant) Name() string { return "constant" }

// Estimate implements Estimator.
func (c Constant) Estimate(*sqlparse.Query) (float64, error) {
	v := c.Value
	if v < 1 || !validEstimate(v) {
		v = 1
	}
	return v, nil
}
