package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// RetryConfig tunes per-stage retries for transient faults. The zero value
// means "no retries" (a single attempt); NewResilient fills sensible backoff
// defaults when MaxAttempts > 1.
type RetryConfig struct {
	// MaxAttempts is the total number of attempts per stage per call
	// (1 = no retry). Default 1.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each subsequent
	// retry doubles it. Default 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff. Default 100ms.
	MaxDelay time.Duration
	// JitterSeed seeds the deterministic jitter stream. The same seed and
	// call sequence always produce the same delays, so retry timing is
	// reproducible in tests.
	JitterSeed int64
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 100 * time.Millisecond
	}
	return c
}

// backoff produces capped-exponential delays with deterministic jitter: the
// delay before retry k (k >= 1) is min(Base*2^(k-1), Max) scaled by a factor
// in [0.5, 1.0] drawn from the seeded stream ("equal jitter"). Jitter
// decorrelates retry storms across concurrent callers while staying
// reproducible from the seed.
type backoff struct {
	cfg RetryConfig

	mu  sync.Mutex
	rng *rand.Rand
}

func newBackoff(cfg RetryConfig) *backoff {
	return &backoff{cfg: cfg.withDefaults(), rng: rand.New(rand.NewSource(cfg.JitterSeed))}
}

// delay returns the sleep before retry attempt k (1-based).
func (b *backoff) delay(k int) time.Duration {
	d := b.cfg.BaseDelay
	for i := 1; i < k; i++ {
		d *= 2
		if d >= b.cfg.MaxDelay {
			d = b.cfg.MaxDelay
			break
		}
	}
	if d > b.cfg.MaxDelay {
		d = b.cfg.MaxDelay
	}
	b.mu.Lock()
	f := 0.5 + 0.5*b.rng.Float64()
	b.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// sleepCtx sleeps for d or until ctx is done, returning ctx.Err() in the
// latter case. Resilient substitutes a fake in tests so fault-injection runs
// never block on real timers.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
