// Package resilience hardens the estimation pipeline for serving: it wraps
// any estimator.Estimator in deadlines, panic isolation, retries, a circuit
// breaker, and a graceful-degradation chain so that an estimate is *always*
// returned — a failing learned model degrades the answer's quality, never
// the system's availability.
//
// The degradation chain mirrors the paper's own framing of the learned
// estimator as one option among cheaper baselines: a typical serving stack is
//
//	learned model → Bernoulli sampling → independence assumption → row-count heuristic
//
// where each stage is tried in order and the first valid (finite, >= 1)
// estimate wins. Every stage is guarded by:
//
//   - a per-call deadline (context.Context), enforced even when the
//     underlying estimator ignores contexts;
//   - panic recovery, converting panics in model code into stage errors;
//   - retry with capped exponential backoff and deterministic jitter for
//     transient faults;
//   - a circuit breaker with half-open probing, so a persistently failing
//     stage stops being invoked on the hot path and is re-admitted only
//     after it proves healthy again.
//
// The sibling package faultinject provides a seeded, deterministic
// fault-injecting wrapper used by the test suite to prove the chain degrades
// — never errors, never returns NaN/Inf/negative — under every injected
// failure mode.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"qfe/internal/estimator"
	"qfe/internal/sqlparse"
)

// ErrBreakerOpen is recorded in Result.Errors when a stage was skipped
// because its circuit breaker was open.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// Stage is one link of the degradation chain.
type Stage struct {
	// Name identifies the stage in results and stats; empty means the
	// estimator's own Name().
	Name string
	// Est is the wrapped estimator.
	Est estimator.Estimator
}

// Config tunes a Resilient estimator. The zero value is usable.
type Config struct {
	// Timeout is the per-call estimation budget applied when the caller's
	// context carries no deadline of its own. Zero means no implicit
	// deadline.
	Timeout time.Duration
	// Breaker configures every stage's circuit breaker.
	Breaker BreakerConfig
	// Retry configures every stage's retry policy (default: no retries).
	Retry RetryConfig
	// LastResort produces the estimate when every stage fails or the
	// deadline is spent. It should be total (never error); RowCount is the
	// intended choice. Nil means a constant estimate of DefaultEstimate.
	LastResort estimator.Estimator
	// DefaultEstimate is returned if even LastResort fails. Default 1, the
	// paper's minimum cardinality.
	DefaultEstimate float64
	// Sleep overrides the retry-backoff sleep for tests. Default sleeps on
	// a real timer, honoring ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

// stageState is a Stage plus its runtime guards and counters.
type stageState struct {
	name    string
	est     estimator.Estimator
	breaker *Breaker
	backoff *backoff

	mu      sync.Mutex
	served  int // calls this stage answered
	failed  int // calls this stage failed (after retries)
	skipped int // calls skipped because the breaker was open
}

// StageStats is a snapshot of one stage's counters.
type StageStats struct {
	Name    string
	State   BreakerState
	Served  int
	Failed  int
	Skipped int
}

// Resilient chains estimators with graceful degradation. It implements
// estimator.ContextEstimator and never returns an error or a non-finite
// estimate: the worst case is the last-resort heuristic.
type Resilient struct {
	cfg        Config
	stages     []*stageState
	lastResort estimator.Estimator
	sleep      func(ctx context.Context, d time.Duration) error
}

// NewResilient builds the degradation chain over stages, tried in order.
func NewResilient(cfg Config, stages ...Stage) *Resilient {
	if cfg.DefaultEstimate < 1 || math.IsNaN(cfg.DefaultEstimate) || math.IsInf(cfg.DefaultEstimate, 0) {
		cfg.DefaultEstimate = 1
	}
	r := &Resilient{cfg: cfg, lastResort: cfg.LastResort, sleep: cfg.Sleep}
	if r.lastResort == nil {
		r.lastResort = Constant{Value: cfg.DefaultEstimate}
	}
	if r.sleep == nil {
		r.sleep = sleepCtx
	}
	for i, s := range stages {
		name := s.Name
		if name == "" {
			name = s.Est.Name()
		}
		// Each stage gets its own jitter stream so retry timing stays
		// deterministic per stage regardless of the others' call volume.
		rc := cfg.Retry
		rc.JitterSeed += int64(i)
		r.stages = append(r.stages, &stageState{
			name:    name,
			est:     s.Est,
			breaker: NewBreaker(cfg.Breaker),
			backoff: newBackoff(rc),
		})
	}
	return r
}

// Name implements Estimator.
func (r *Resilient) Name() string {
	if len(r.stages) == 0 {
		return "resilient(" + r.lastResort.Name() + ")"
	}
	return "resilient(" + r.stages[0].name + ")"
}

// StageError pairs a stage name with the error that made the chain move past
// it.
type StageError struct {
	Stage string
	Err   error
}

// Result is the full outcome of one resilient estimation.
type Result struct {
	// Estimate is always finite and >= 1.
	Estimate float64
	// Stage is the name of the stage (or last resort) that produced it.
	Stage string
	// Degraded is true when the first stage did not answer.
	Degraded bool
	// Errors lists, in chain order, the failures and skips encountered
	// before the answer.
	Errors []StageError
}

// Estimate implements Estimator (background context, so only the configured
// Timeout applies). The returned error is always nil.
func (r *Resilient) Estimate(q *sqlparse.Query) (float64, error) {
	return r.EstimateCtx(context.Background(), q)
}

// EstimateCtx implements ContextEstimator. The returned error is always nil:
// degradation replaces failure.
func (r *Resilient) EstimateCtx(ctx context.Context, q *sqlparse.Query) (float64, error) {
	res := r.EstimateDetailed(ctx, q)
	return res.Estimate, nil
}

// EstimateDetailed runs the chain and reports which stage answered and what
// failed along the way.
func (r *Resilient) EstimateDetailed(ctx context.Context, q *sqlparse.Query) Result {
	if r.cfg.Timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, r.cfg.Timeout)
			defer cancel()
		}
	}
	var res Result
	for i, s := range r.stages {
		if ctx.Err() != nil {
			// Deadline spent: no stage may run; fall through to the last
			// resort, which is synchronous and cheap.
			res.Errors = append(res.Errors, StageError{s.name, ctx.Err()})
			break
		}
		if !s.breaker.Allow() {
			s.mu.Lock()
			s.skipped++
			s.mu.Unlock()
			res.Errors = append(res.Errors, StageError{s.name, ErrBreakerOpen})
			continue
		}
		v, err := r.attempt(ctx, s, q)
		if err == nil {
			s.mu.Lock()
			s.served++
			s.mu.Unlock()
			res.Estimate = v
			res.Stage = s.name
			res.Degraded = i > 0
			return res
		}
		s.mu.Lock()
		s.failed++
		s.mu.Unlock()
		res.Errors = append(res.Errors, StageError{s.name, err})
	}
	res.Estimate = r.lastResortEstimate(q)
	res.Stage = r.lastResort.Name()
	res.Degraded = len(r.stages) > 0
	return res
}

// attempt runs one stage with retries. Exactly one breaker outcome is
// reported per call: Success on a valid estimate, Failure once every attempt
// is exhausted (pairing the Allow that admitted the call).
func (r *Resilient) attempt(ctx context.Context, s *stageState, q *sqlparse.Query) (float64, error) {
	var lastErr error
	for k := 0; k < s.backoff.cfg.MaxAttempts; k++ {
		if k > 0 {
			if err := r.sleep(ctx, s.backoff.delay(k)); err != nil {
				lastErr = err
				break
			}
		}
		v, err := callGuarded(ctx, s.name, s.est, q)
		if err == nil {
			if validEstimate(v) {
				s.breaker.Success()
				if v < 1 {
					v = 1
				}
				return v, nil
			}
			err = fmt.Errorf("resilience: stage %s returned invalid estimate %v", s.name, v)
		}
		lastErr = err
		if ctx.Err() != nil {
			break // the deadline is spent; retrying cannot help
		}
	}
	s.breaker.Failure()
	return 0, lastErr
}

// callGuarded runs one estimate attempt with panic isolation and deadline
// enforcement. The estimator runs in its own goroutine so a deadline is
// honored even when the estimator ignores contexts; on timeout the goroutine
// is abandoned (its eventual result goes to a buffered channel and is
// dropped).
func callGuarded(ctx context.Context, name string, est estimator.Estimator, q *sqlparse.Query) (float64, error) {
	type outcome struct {
		v   float64
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: fmt.Errorf("resilience: panic in stage %s: %v", name, p)}
			}
		}()
		v, err := estimator.EstimateWithContext(ctx, est, q)
		ch <- outcome{v: v, err: err}
	}()
	select {
	case <-ctx.Done():
		return 0, ctx.Err()
	case o := <-ch:
		return o.v, o.err
	}
}

// lastResortEstimate is total: panics and invalid values collapse to the
// configured default. It deliberately ignores the (possibly spent) deadline —
// the heuristic is synchronous table-statistics arithmetic.
func (r *Resilient) lastResortEstimate(q *sqlparse.Query) (v float64) {
	defer func() {
		if p := recover(); p != nil {
			v = r.cfg.DefaultEstimate
		}
	}()
	v, err := r.lastResort.Estimate(q)
	if err != nil || !validEstimate(v) {
		return r.cfg.DefaultEstimate
	}
	if v < 1 {
		v = 1
	}
	return v
}

// Stats snapshots every stage's counters and breaker state, in chain order.
func (r *Resilient) Stats() []StageStats {
	out := make([]StageStats, len(r.stages))
	for i, s := range r.stages {
		s.mu.Lock()
		out[i] = StageStats{
			Name:    s.name,
			State:   s.breaker.State(),
			Served:  s.served,
			Failed:  s.failed,
			Skipped: s.skipped,
		}
		s.mu.Unlock()
	}
	return out
}

// Breaker exposes stage i's circuit breaker (chain order) for tests and
// operational tooling.
func (r *Resilient) Breaker(i int) *Breaker { return r.stages[i].breaker }

// validEstimate reports whether v can be served: finite and non-negative.
// (Sub-1 values are clamped to 1 by the callers, matching the paper's
// minimum-cardinality convention.)
func validEstimate(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}
