package resilience

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"qfe/internal/sqlparse"
)

var testQuery = sqlparse.MustParse("SELECT count(*) FROM t WHERE a >= 1 AND b <= 9")

// stubEst is a scriptable estimator: fn receives the 1-based call number.
type stubEst struct {
	name string
	fn   func(call int) (float64, error)

	mu    sync.Mutex
	calls int
}

func (s *stubEst) Name() string { return s.name }

func (s *stubEst) Estimate(*sqlparse.Query) (float64, error) {
	s.mu.Lock()
	s.calls++
	c := s.calls
	fn := s.fn
	s.mu.Unlock()
	return fn(c)
}

func (s *stubEst) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func healthy(v float64) *stubEst {
	return &stubEst{name: "healthy", fn: func(int) (float64, error) { return v, nil }}
}

func failing(err error) *stubEst {
	return &stubEst{name: "failing", fn: func(int) (float64, error) { return 0, err }}
}

func panicking() *stubEst {
	return &stubEst{name: "panicking", fn: func(int) (float64, error) { panic("model exploded") }}
}

// noSleep replaces the backoff sleep so retry tests run instantly.
func noSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

// fakeClock drives breaker cooldowns without real time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestHealthyFirstStageServes(t *testing.T) {
	r := NewResilient(Config{}, Stage{Est: healthy(42)})
	res := r.EstimateDetailed(context.Background(), testQuery)
	if res.Estimate != 42 || res.Stage != "healthy" || res.Degraded {
		t.Fatalf("unexpected result %+v", res)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("healthy call recorded errors: %v", res.Errors)
	}
}

func TestDegradesPastFailingStage(t *testing.T) {
	boom := errors.New("boom")
	r := NewResilient(Config{Sleep: noSleep},
		Stage{Est: failing(boom)},
		Stage{Est: healthy(7)},
	)
	res := r.EstimateDetailed(context.Background(), testQuery)
	if res.Estimate != 7 || res.Stage != "healthy" {
		t.Fatalf("unexpected result %+v", res)
	}
	if !res.Degraded {
		t.Error("second-stage answer not flagged as degraded")
	}
	if len(res.Errors) != 1 || !errors.Is(res.Errors[0].Err, boom) {
		t.Fatalf("expected the failing stage's error, got %v", res.Errors)
	}
}

func TestPanicIsIsolated(t *testing.T) {
	r := NewResilient(Config{Sleep: noSleep},
		Stage{Est: panicking()},
		Stage{Est: healthy(9)},
	)
	res := r.EstimateDetailed(context.Background(), testQuery)
	if res.Estimate != 9 {
		t.Fatalf("panicking stage broke the chain: %+v", res)
	}
	if len(res.Errors) != 1 || !strings.Contains(res.Errors[0].Err.Error(), "panic") {
		t.Fatalf("panic not converted to a stage error: %v", res.Errors)
	}
}

func TestInvalidEstimatesAreRejected(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -3} {
		r := NewResilient(Config{Sleep: noSleep},
			Stage{Name: "bad", Est: healthy(bad)},
			Stage{Est: healthy(5)},
		)
		res := r.EstimateDetailed(context.Background(), testQuery)
		if res.Estimate != 5 || res.Stage != "healthy" {
			t.Errorf("invalid estimate %v served: %+v", bad, res)
		}
	}
	// Sub-1 but valid values are clamped, not rejected.
	r := NewResilient(Config{}, Stage{Name: "tiny", Est: healthy(0.25)})
	res := r.EstimateDetailed(context.Background(), testQuery)
	if res.Estimate != 1 || res.Stage != "tiny" {
		t.Errorf("sub-1 estimate not clamped in place: %+v", res)
	}
}

func TestLastResortAlwaysAnswers(t *testing.T) {
	r := NewResilient(Config{Sleep: noSleep, LastResort: RowCount{}},
		Stage{Est: failing(errors.New("a"))},
		Stage{Est: panicking()},
	)
	res := r.EstimateDetailed(context.Background(), testQuery)
	if math.IsNaN(res.Estimate) || math.IsInf(res.Estimate, 0) || res.Estimate < 1 {
		t.Fatalf("last resort returned unusable estimate %v", res.Estimate)
	}
	if res.Stage != "row-count heuristic" || !res.Degraded {
		t.Fatalf("unexpected result %+v", res)
	}
	if len(res.Errors) != 2 {
		t.Fatalf("expected both stage failures recorded, got %v", res.Errors)
	}
	// Even with no stages and no last resort configured, an estimate comes
	// back.
	empty := NewResilient(Config{})
	v, err := empty.EstimateCtx(context.Background(), testQuery)
	if err != nil || v < 1 {
		t.Fatalf("empty chain: v=%v err=%v", v, err)
	}
}

func TestDeadlineBoundsSlowStage(t *testing.T) {
	slow := &stubEst{name: "slow", fn: func(int) (float64, error) {
		time.Sleep(2 * time.Second)
		return 123, nil
	}}
	r := NewResilient(Config{Timeout: 30 * time.Millisecond, LastResort: Constant{Value: 17}},
		Stage{Est: slow},
	)
	start := time.Now()
	res := r.EstimateDetailed(context.Background(), testQuery)
	elapsed := time.Since(start)
	if elapsed > time.Second {
		t.Fatalf("deadline not enforced: call took %v", elapsed)
	}
	if res.Estimate != 17 {
		t.Fatalf("expected the last resort to answer, got %+v", res)
	}
	if len(res.Errors) == 0 || !errors.Is(res.Errors[0].Err, context.DeadlineExceeded) {
		t.Fatalf("expected a deadline error, got %v", res.Errors)
	}
}

func TestCallerDeadlineWins(t *testing.T) {
	// A caller context with its own (shorter) deadline is respected; the
	// configured Timeout only applies when the caller brought none.
	slow := &stubEst{name: "slow", fn: func(int) (float64, error) {
		time.Sleep(2 * time.Second)
		return 123, nil
	}}
	r := NewResilient(Config{Timeout: time.Hour, LastResort: Constant{Value: 3}}, Stage{Est: slow})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := r.EstimateDetailed(ctx, testQuery)
	if time.Since(start) > time.Second {
		t.Fatal("caller deadline ignored")
	}
	if res.Estimate != 3 {
		t.Fatalf("expected last resort, got %+v", res)
	}
}

func TestRetryRecoversTransientFault(t *testing.T) {
	transient := &stubEst{name: "flaky", fn: func(call int) (float64, error) {
		if call%3 != 0 {
			return 0, errors.New("transient")
		}
		return 50, nil
	}}
	r := NewResilient(Config{
		Sleep: noSleep,
		Retry: RetryConfig{MaxAttempts: 3, JitterSeed: 1},
	}, Stage{Est: transient})
	res := r.EstimateDetailed(context.Background(), testQuery)
	if res.Estimate != 50 || res.Stage != "flaky" {
		t.Fatalf("retry did not recover the transient fault: %+v", res)
	}
	if transient.callCount() != 3 {
		t.Fatalf("expected 3 attempts, saw %d", transient.callCount())
	}
	// The stage succeeded after retries, so the breaker must still be
	// closed and uncharged.
	if st := r.Stats()[0]; st.State != StateClosed || st.Failed != 0 || st.Served != 1 {
		t.Fatalf("unexpected stage stats %+v", st)
	}
}

func TestBackoffIsDeterministicAndCapped(t *testing.T) {
	a := newBackoff(RetryConfig{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, JitterSeed: 42})
	b := newBackoff(RetryConfig{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, JitterSeed: 42})
	for k := 1; k <= 8; k++ {
		da, db := a.delay(k), b.delay(k)
		if da != db {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", k, da, db)
		}
		if da > 10*time.Millisecond {
			t.Fatalf("attempt %d delay %v exceeds the cap", k, da)
		}
		if da < time.Millisecond/2 && k >= 1 {
			t.Fatalf("attempt %d delay %v below the half-base jitter floor", k, da)
		}
	}
	c := newBackoff(RetryConfig{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, JitterSeed: 43})
	diverged := false
	for k := 1; k <= 8; k++ {
		if c.delay(k) != a.delay(k) {
			diverged = true
		}
	}
	_ = diverged // different seeds usually differ, but equality is not an error
}

func TestBreakerLifecycle(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         10 * time.Second,
		HalfOpenProbes:   2,
		Clock:            clock.now,
	})
	if b.State() != StateClosed {
		t.Fatal("new breaker not closed")
	}
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Failure()
	}
	if b.State() != StateOpen {
		t.Fatalf("breaker not open after threshold, state %v", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	clock.advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not admit a probe after cooldown")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state %v after cooldown, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Success()
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the next probe after a success")
	}
	b.Success()
	if b.State() != StateClosed {
		t.Fatalf("breaker not closed after %d probe successes, state %v", 2, b.State())
	}

	// Re-open on a half-open failure.
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Failure()
	}
	clock.advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("no probe admitted")
	}
	b.Failure()
	if b.State() != StateOpen {
		t.Fatalf("half-open failure did not re-open, state %v", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call")
	}
}

func TestBreakerShortCircuitsHotPath(t *testing.T) {
	clock := newFakeClock()
	boom := errors.New("down")
	dead := failing(boom)
	backup := healthy(5)
	r := NewResilient(Config{
		Sleep:   noSleep,
		Breaker: BreakerConfig{FailureThreshold: 3, Cooldown: time.Minute, HalfOpenProbes: 1, Clock: clock.now},
	},
		Stage{Est: dead},
		Stage{Est: backup},
	)
	for i := 0; i < 10; i++ {
		v, err := r.EstimateCtx(context.Background(), testQuery)
		if err != nil || v != 5 {
			t.Fatalf("call %d: v=%v err=%v", i, v, err)
		}
	}
	// After 3 failures the breaker opened; the dead stage must not have
	// been invoked for the remaining 7 calls.
	if got := dead.callCount(); got != 3 {
		t.Fatalf("dead stage called %d times, want 3 (breaker should short-circuit)", got)
	}
	st := r.Stats()[0]
	if st.State != StateOpen || st.Skipped != 7 || st.Failed != 3 {
		t.Fatalf("unexpected first-stage stats %+v", st)
	}

	// Recovery: the stage comes back; after the cooldown one probe closes
	// the breaker and the stage serves again.
	dead.mu.Lock()
	dead.fn = func(int) (float64, error) { return 99, nil }
	dead.mu.Unlock()
	clock.advance(2 * time.Minute)
	v, err := r.EstimateCtx(context.Background(), testQuery)
	if err != nil || v != 99 {
		t.Fatalf("probe call: v=%v err=%v", v, err)
	}
	if st := r.Stats()[0]; st.State != StateClosed {
		t.Fatalf("breaker did not close after a successful probe: %+v", st)
	}
	v, _ = r.EstimateCtx(context.Background(), testQuery)
	if v != 99 {
		t.Fatalf("recovered stage not serving, got %v", v)
	}
}

func TestEstimateNeverErrors(t *testing.T) {
	r := NewResilient(Config{Sleep: noSleep},
		Stage{Est: failing(errors.New("x"))},
		Stage{Est: panicking()},
		Stage{Est: healthy(math.NaN())},
	)
	for i := 0; i < 20; i++ {
		v, err := r.Estimate(testQuery)
		if err != nil {
			t.Fatalf("Estimate returned error: %v", err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 1 {
			t.Fatalf("Estimate returned unusable value %v", v)
		}
	}
}

func TestRowCountHeuristicIsTotal(t *testing.T) {
	rc := RowCount{}
	for _, q := range []*sqlparse.Query{
		nil,
		testQuery,
		sqlparse.MustParse("SELECT count(*) FROM unknown WHERE z = 3"),
		sqlparse.MustParse("SELECT count(*) FROM a, b WHERE a.id = b.a_id AND a.x > 0"),
	} {
		v, err := rc.Estimate(q)
		if err != nil {
			t.Fatalf("RowCount errored: %v", err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 1 {
			t.Fatalf("RowCount returned %v for %v", v, q)
		}
	}
}
