// Package histogram implements the attribute-domain partitioning schemes
// behind Universal Conjunction Encoding's buckets. The paper's Algorithm 1
// partitions each domain uniformly (equi-width) and notes that "one could
// also apply sophisticated partitioning techniques from the field of
// histograms, like v-optimal [23] and q-optimal [18] partitioning"
// (Section 3.2). This package provides those alternatives:
//
//   - EquiWidth — uniform value ranges (the paper's default);
//   - EquiDepth — boundaries at frequency quantiles, so every partition
//     covers roughly the same number of rows;
//   - VOptimal — boundaries minimizing the total within-partition frequency
//     variance (Poosala et al. [23]), computed by dynamic programming over
//     a micro-bin pre-aggregation.
//
// All partitioners return the inclusive upper boundaries of every partition
// except the last (which is implied by the attribute maximum), the form
// core.AttrMeta consumes.
package histogram

import (
	"fmt"
	"sort"
)

// EquiWidth returns the boundaries of n uniform partitions of [min, max],
// matching the index formula of Algorithm 1: value v belongs to partition
// floor((v-min) / (max-min+1) * n).
func EquiWidth(min, max int64, n int) ([]int64, error) {
	if err := validate(min, max, n); err != nil {
		return nil, err
	}
	domain := max - min + 1
	if int64(n) > domain {
		// At most one partition per distinct value.
		n = int(domain)
	}
	bounds := make([]int64, 0, n-1)
	for k := 1; k < n; k++ {
		// Partition k-1 covers values with index < k, i.e. up to the
		// largest v with (v-min)*n/domain < k.
		hi := min + ceilDiv(int64(k)*domain, int64(n)) - 1
		bounds = append(bounds, hi)
	}
	return bounds, nil
}

// EquiDepth returns boundaries so each partition holds roughly len(vals)/n
// of the data. Repeated heavy values never split across partitions; when
// the data has fewer distinct values than n, every distinct value gets its
// own partition and the remaining boundary slots collapse.
func EquiDepth(vals []int64, n int) ([]int64, error) {
	if len(vals) == 0 {
		return nil, fmt.Errorf("histogram: no values")
	}
	min, max := minMax(vals)
	if err := validate(min, max, n); err != nil {
		return nil, err
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	bounds := make([]int64, 0, n-1)
	target := float64(len(sorted)) / float64(n)
	for k := 1; k < n; k++ {
		pos := int(float64(k) * target)
		if pos >= len(sorted) {
			pos = len(sorted) - 1
		}
		b := sorted[pos]
		// A boundary is the inclusive upper end of a partition; it must
		// advance past the previous boundary and stay below max.
		if len(bounds) > 0 && b <= bounds[len(bounds)-1] {
			continue
		}
		if b >= max {
			break
		}
		bounds = append(bounds, b)
	}
	return bounds, nil
}

// VOptimal returns boundaries minimizing the sum of within-partition
// frequency variances (the SSE of approximating each partition's
// frequencies by their mean). The domain is first compressed into at most
// microBins equal-width micro-bins (microBins <= 0 selects 256), then the
// classic O(microBins² · n) dynamic program runs over the compressed
// frequency vector.
func VOptimal(vals []int64, n, microBins int) ([]int64, error) {
	if len(vals) == 0 {
		return nil, fmt.Errorf("histogram: no values")
	}
	if microBins <= 0 {
		microBins = 256
	}
	min, max := minMax(vals)
	if err := validate(min, max, n); err != nil {
		return nil, err
	}
	domain := max - min + 1
	m := microBins
	if int64(m) > domain {
		m = int(domain)
	}
	if n >= m {
		// One partition per micro-bin: fall back to equi-width at m.
		return EquiWidth(min, max, n)
	}

	// Frequency per micro-bin.
	freq := make([]float64, m)
	for _, v := range vals {
		idx := (v - min) * int64(m) / domain
		freq[idx]++
	}
	// Prefix sums for O(1) segment SSE: sse(i..j) = sumsq - sum^2/len.
	prefix := make([]float64, m+1)
	prefixSq := make([]float64, m+1)
	for i, f := range freq {
		prefix[i+1] = prefix[i] + f
		prefixSq[i+1] = prefixSq[i] + f*f
	}
	sse := func(i, j int) float64 { // micro-bins [i, j] inclusive
		cnt := float64(j - i + 1)
		sum := prefix[j+1] - prefix[i]
		return prefixSq[j+1] - prefixSq[i] - sum*sum/cnt
	}

	// dp[k][j]: min SSE of splitting micro-bins [0, j] into k partitions.
	const inf = 1e300
	dp := make([][]float64, n+1)
	cut := make([][]int, n+1)
	for k := range dp {
		dp[k] = make([]float64, m)
		cut[k] = make([]int, m)
		for j := range dp[k] {
			dp[k][j] = inf
		}
	}
	for j := 0; j < m; j++ {
		dp[1][j] = sse(0, j)
	}
	for k := 2; k <= n; k++ {
		for j := k - 1; j < m; j++ {
			for i := k - 2; i < j; i++ {
				if c := dp[k-1][i] + sse(i+1, j); c < dp[k][j] {
					dp[k][j] = c
					cut[k][j] = i
				}
			}
		}
	}

	// Reconstruct the micro-bin cuts, then convert to value boundaries.
	cuts := make([]int, 0, n-1)
	j := m - 1
	for k := n; k > 1; k-- {
		i := cut[k][j]
		cuts = append(cuts, i)
		j = i
	}
	sort.Ints(cuts)
	bounds := make([]int64, 0, len(cuts))
	for _, c := range cuts {
		// Micro-bin c covers values up to this inclusive bound.
		hi := min + ceilDiv(int64(c+1)*domain, int64(m)) - 1
		if len(bounds) > 0 && hi <= bounds[len(bounds)-1] {
			continue
		}
		if hi >= max {
			break
		}
		bounds = append(bounds, hi)
	}
	return bounds, nil
}

func validate(min, max int64, n int) error {
	if max < min {
		return fmt.Errorf("histogram: max %d < min %d", max, min)
	}
	if n < 1 {
		return fmt.Errorf("histogram: n = %d, want >= 1", n)
	}
	return nil
}

func minMax(vals []int64) (mn, mx int64) {
	mn, mx = vals[0], vals[0]
	for _, v := range vals {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 {
		q++
	}
	return q
}
