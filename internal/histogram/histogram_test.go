package histogram

import (
	"math/rand"
	"testing"
)

func TestEquiWidthMatchesAlgorithmFormula(t *testing.T) {
	// The paper's example attribute: A in [-9, 50], n = 12. EquiWidth must
	// reproduce exactly the partitions of Algorithm 1's index formula.
	min, max, n := int64(-9), int64(50), 12
	bounds, err := EquiWidth(min, max, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != n-1 {
		t.Fatalf("got %d boundaries, want %d", len(bounds), n-1)
	}
	domain := max - min + 1
	idxOf := func(v int64) int { return int((v - min) * int64(n) / domain) }
	bucketOf := func(v int64) int {
		for i, b := range bounds {
			if v <= b {
				return i
			}
		}
		return len(bounds)
	}
	for v := min; v <= max; v++ {
		if idxOf(v) != bucketOf(v) {
			t.Fatalf("value %d: formula bucket %d, boundary bucket %d", v, idxOf(v), bucketOf(v))
		}
	}
}

func TestEquiDepthBalancesCounts(t *testing.T) {
	// Heavy skew: most values tiny, long tail.
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 10000)
	for i := range vals {
		v := int64(rng.ExpFloat64() * 100)
		if v > 999 {
			v = 999
		}
		vals[i] = v
	}
	n := 8
	bounds, err := EquiDepth(vals, n)
	if err != nil {
		t.Fatal(err)
	}
	// Count rows per partition; no partition may hold more than ~3x the
	// ideal share (equi-width would put ~63% in the first).
	counts := make([]int, len(bounds)+1)
	for _, v := range vals {
		k := len(bounds)
		for i, b := range bounds {
			if v <= b {
				k = i
				break
			}
		}
		counts[k]++
	}
	ideal := len(vals) / (len(bounds) + 1)
	for i, c := range counts {
		if c > 3*ideal {
			t.Errorf("partition %d holds %d rows (ideal %d): not balanced, bounds=%v", i, c, ideal, bounds)
		}
	}
}

func TestEquiDepthFewDistinct(t *testing.T) {
	vals := []int64{1, 1, 1, 5, 5, 9}
	bounds, err := EquiDepth(vals, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Boundaries must stay strictly ascending and below max.
	prev := int64(0)
	for _, b := range bounds {
		if b <= prev && prev != 0 {
			t.Fatalf("boundaries not ascending: %v", bounds)
		}
		if b >= 9 {
			t.Fatalf("boundary at or above max: %v", bounds)
		}
		prev = b
	}
}

func TestVOptimalIsolatesHeavyValues(t *testing.T) {
	// Frequencies: two spikes at 100 and 200 in an otherwise flat domain
	// [0, 299]. V-optimal partitioning should place boundaries isolating
	// the spikes so within-partition variance drops.
	var vals []int64
	for v := int64(0); v < 300; v++ {
		vals = append(vals, v)
	}
	for i := 0; i < 3000; i++ {
		vals = append(vals, 100)
	}
	for i := 0; i < 3000; i++ {
		vals = append(vals, 200)
	}
	bounds, err := VOptimal(vals, 6, 300)
	if err != nil {
		t.Fatal(err)
	}
	// The spikes must not share a partition with a long flat stretch:
	// expect a boundary within a few values of each spike on both sides.
	nearSpike := func(spike int64) bool {
		hits := 0
		for _, b := range bounds {
			if b >= spike-3 && b <= spike+3 {
				hits++
			}
		}
		return hits >= 1
	}
	if !nearSpike(100) || !nearSpike(200) {
		t.Errorf("v-optimal boundaries %v do not isolate the spikes at 100 and 200", bounds)
	}
}

func TestVOptimalBeatsEquiWidthOnSSE(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]int64, 20000)
	for i := range vals {
		// Mixture: two tight clusters plus noise.
		switch rng.Intn(3) {
		case 0:
			vals[i] = 50 + int64(rng.Intn(5))
		case 1:
			vals[i] = 700 + int64(rng.Intn(5))
		default:
			vals[i] = int64(rng.Intn(1000))
		}
	}
	n := 8
	vo, err := VOptimal(vals, n, 256)
	if err != nil {
		t.Fatal(err)
	}
	mn, mx := minMax(vals)
	ew, err := EquiWidth(mn, mx, n)
	if err != nil {
		t.Fatal(err)
	}
	if sseOf(vals, mn, mx, vo) > sseOf(vals, mn, mx, ew) {
		t.Errorf("v-optimal SSE %v exceeds equi-width SSE %v",
			sseOf(vals, mn, mx, vo), sseOf(vals, mn, mx, ew))
	}
}

// sseOf computes the within-partition frequency variance for boundaries.
func sseOf(vals []int64, mn, mx int64, bounds []int64) float64 {
	freq := make(map[int64]float64)
	for _, v := range vals {
		freq[v]++
	}
	var total float64
	lo := mn
	edges := append(append([]int64(nil), bounds...), mx)
	for _, hi := range edges {
		var sum, sumsq, cnt float64
		for v := lo; v <= hi; v++ {
			f := freq[v]
			sum += f
			sumsq += f * f
			cnt++
		}
		if cnt > 0 {
			total += sumsq - sum*sum/cnt
		}
		lo = hi + 1
	}
	return total
}

func TestValidation(t *testing.T) {
	if _, err := EquiWidth(10, 5, 4); err == nil {
		t.Error("inverted domain accepted")
	}
	if _, err := EquiWidth(0, 10, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := EquiDepth(nil, 4); err == nil {
		t.Error("empty values accepted")
	}
	if _, err := VOptimal(nil, 4, 64); err == nil {
		t.Error("empty values accepted")
	}
}

func TestVOptimalSmallDomainFallsBack(t *testing.T) {
	vals := []int64{1, 2, 3, 1, 2}
	bounds, err := VOptimal(vals, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Domain of 3 values, 8 partitions requested: at most 2 boundaries.
	if len(bounds) > 2 {
		t.Errorf("got %d boundaries for a 3-value domain", len(bounds))
	}
}

func TestBoundariesAscendingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		vals := make([]int64, 500+rng.Intn(2000))
		for i := range vals {
			vals[i] = int64(rng.Intn(1 + rng.Intn(5000)))
		}
		n := 2 + rng.Intn(30)
		for name, gen := range map[string]func() ([]int64, error){
			"equidepth": func() ([]int64, error) { return EquiDepth(vals, n) },
			"voptimal":  func() ([]int64, error) { return VOptimal(vals, n, 128) },
		} {
			bounds, err := gen()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			mn, mx := minMax(vals)
			if len(bounds) > n-1 {
				t.Fatalf("%s: %d boundaries for n=%d", name, len(bounds), n)
			}
			prev := mn - 1
			for _, b := range bounds {
				if b <= prev {
					t.Fatalf("%s: boundaries not strictly ascending: %v", name, bounds)
				}
				if b < mn || b >= mx {
					t.Fatalf("%s: boundary %d outside [%d, %d)", name, b, mn, mx)
				}
				prev = b
			}
		}
	}
}
