package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokStar
	tokSemi
	tokOp // comparison operator
)

// token is a lexed token with its source position for error messages.
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer splits a SQL string into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. It returns an error with a byte offset for any
// character it cannot handle.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == ',':
			l.emit(tokComma, ",")
		case c == '.' && !l.nextIsDigit():
			l.emit(tokDot, ".")
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == '*':
			l.emit(tokStar, "*")
		case c == ';':
			l.emit(tokSemi, ";")
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '=' || c == '<' || c == '>' || c == '!':
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		case c == '-' || c == '+' || isDigit(c) || c == '.':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case isIdentStart(c):
			l.lexIdent()
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: l.pos})
	l.pos += len(text)
}

func (l *lexer) nextIsDigit() bool {
	return l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' is an escaped quote inside a string literal.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparse: unterminated string literal at offset %d", start)
}

func (l *lexer) lexOp() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.toks = append(l.toks, token{kind: tokOp, text: two, pos: start})
		l.pos += 2
		return nil
	}
	one := l.src[l.pos : l.pos+1]
	switch one {
	case "=", "<", ">":
		l.toks = append(l.toks, token{kind: tokOp, text: one, pos: start})
		l.pos++
		return nil
	}
	return fmt.Errorf("sqlparse: bad operator starting with %q at offset %d", one, start)
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if c := l.src[l.pos]; c == '-' || c == '+' {
		l.pos++
	}
	digits := 0
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
		digits++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
			digits++
		}
	}
	if digits == 0 {
		return fmt.Errorf("sqlparse: malformed number at offset %d", start)
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || isDigit(c)
}
