package sqlparse

import (
	"strings"
	"testing"
)

func TestParseSingleTable(t *testing.T) {
	q, err := Parse("SELECT count(*) FROM forest WHERE A7 >= 160 AND A7 <= 225 AND A8 <> 220;")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 1 || q.Tables[0] != "forest" {
		t.Errorf("Tables = %v", q.Tables)
	}
	preds := CollectPreds(q.Where)
	if len(preds) != 3 {
		t.Fatalf("got %d predicates, want 3", len(preds))
	}
	if preds[0].Attr != "A7" || preds[0].Op != OpGe || preds[0].Val != 160 {
		t.Errorf("pred 0 = %v", preds[0])
	}
	if preds[2].Op != OpNe || preds[2].Val != 220 {
		t.Errorf("pred 2 = %v", preds[2])
	}
}

func TestParseNoWhere(t *testing.T) {
	q, err := Parse("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where != nil || len(q.Joins) != 0 {
		t.Errorf("expected empty where/joins, got %v / %v", q.Where, q.Joins)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("select COUNT ( * ) from T where a = 1 AND b > 2 or c < 3"); err != nil {
		t.Fatal(err)
	}
}

func TestParsePrecedenceAndOverOr(t *testing.T) {
	q := MustParse("SELECT count(*) FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := q.Where.(*Or)
	if !ok {
		t.Fatalf("top level = %T, want *Or", q.Where)
	}
	if len(or.Kids) != 2 {
		t.Fatalf("Or has %d kids", len(or.Kids))
	}
	if _, ok := or.Kids[1].(*And); !ok {
		t.Errorf("right OR child = %T, want *And (AND binds tighter)", or.Kids[1])
	}
}

func TestParseParentheses(t *testing.T) {
	q := MustParse("SELECT count(*) FROM t WHERE (a = 1 OR a = 2) AND b = 3")
	and, ok := q.Where.(*And)
	if !ok {
		t.Fatalf("top level = %T, want *And", q.Where)
	}
	if _, ok := and.Kids[0].(*Or); !ok {
		t.Errorf("first AND child = %T, want *Or", and.Kids[0])
	}
}

func TestParseMixedQueryFromPaper(t *testing.T) {
	// The TPC-H style example query below Definition 3.3, with dates as
	// encoded integers.
	src := `SELECT count(*) FROM Orders WHERE
		(o_orderdate >= 19940101 AND o_orderdate <= 19941231
		 AND o_orderdate <> 19940704
		 OR
		 o_orderdate >= 19960101 AND o_orderdate <= 19961231
		 AND o_orderdate <> 19960704) AND
		(o_orderstatus = 1 OR o_orderstatus = 2) AND
		(o_totalprice > 1000 AND o_totalprice < 2000);`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	comps, err := CompoundPredicates(q.Where)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("got %d compound predicates, want 3", len(comps))
	}
	wantAttrs := []string{"o_orderdate", "o_orderstatus", "o_totalprice"}
	for i, c := range comps {
		if c.Attr != wantAttrs[i] {
			t.Errorf("compound %d attr = %q, want %q", i, c.Attr, wantAttrs[i])
		}
	}
	if NumPredicates(q) != 10 {
		t.Errorf("NumPredicates = %d, want 10", NumPredicates(q))
	}
	if NumAttributes(q) != 3 {
		t.Errorf("NumAttributes = %d, want 3", NumAttributes(q))
	}
}

func TestParseJoins(t *testing.T) {
	q, err := Parse("SELECT count(*) FROM title, cast_info WHERE title.id = cast_info.movie_id AND title.production_year > 2000")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Joins) != 1 {
		t.Fatalf("got %d joins, want 1", len(q.Joins))
	}
	j := q.Joins[0]
	if j.LeftTable != "title" || j.LeftCol != "id" || j.RightTable != "cast_info" || j.RightCol != "movie_id" {
		t.Errorf("join = %+v", j)
	}
	preds := CollectPreds(q.Where)
	if len(preds) != 1 || preds[0].Attr != "title.production_year" {
		t.Errorf("selection preds = %v", preds)
	}
}

func TestParseOperandSwap(t *testing.T) {
	// "5 < a" must normalize to "a > 5".
	q := MustParse("SELECT count(*) FROM t WHERE 5 < a")
	p := CollectPreds(q.Where)[0]
	if p.Attr != "a" || p.Op != OpGt || p.Val != 5 {
		t.Errorf("swapped pred = %v", p)
	}
	q = MustParse("SELECT count(*) FROM t WHERE 7 = a")
	p = CollectPreds(q.Where)[0]
	if p.Attr != "a" || p.Op != OpEq || p.Val != 7 {
		t.Errorf("swapped eq pred = %v", p)
	}
}

func TestParseNegativeLiteral(t *testing.T) {
	q := MustParse("SELECT count(*) FROM t WHERE a > -2")
	p := CollectPreds(q.Where)[0]
	if p.Val != -2 {
		t.Errorf("Val = %d, want -2", p.Val)
	}
}

func TestParseStringLiteral(t *testing.T) {
	q := MustParse("SELECT count(*) FROM orders WHERE status = 'P' AND note <> 'it''s fine'")
	preds := CollectPreds(q.Where)
	if preds[0].Str == nil || *preds[0].Str != "P" {
		t.Errorf("pred 0 string = %v", preds[0].Str)
	}
	if preds[1].Str == nil || *preds[1].Str != "it's fine" {
		t.Errorf("escaped quote: got %v", preds[1].Str)
	}
}

func TestParseGroupBy(t *testing.T) {
	q := MustParse("SELECT count(*) FROM t WHERE a = 1 GROUP BY b, c")
	if len(q.GroupBy) != 2 || q.GroupBy[0] != "b" || q.GroupBy[1] != "c" {
		t.Errorf("GroupBy = %v", q.GroupBy)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"not a count query", "SELECT * FROM t", "COUNT"},
		{"missing from", "SELECT count(*) WHERE a = 1", "FROM"},
		{"decimal literal", "SELECT count(*) FROM t WHERE a < 4.9", "decimal"},
		{"trailing garbage", "SELECT count(*) FROM t WHERE a = 1 banana", "trailing"},
		{"unterminated string", "SELECT count(*) FROM t WHERE a = 'x", "unterminated"},
		{"bad operator", "SELECT count(*) FROM t WHERE a ! 1", "operator"},
		{"literal vs literal", "SELECT count(*) FROM t WHERE 1 = 2", "literal"},
		{"join under or", "SELECT count(*) FROM a, b WHERE a.x = b.y OR a.z = 1", "top-level"},
		{"join non-eq", "SELECT count(*) FROM a, b WHERE a.x < b.y", "="},
		{"join unknown table", "SELECT count(*) FROM a, b WHERE a.x = c.y", "FROM"},
		{"unqualified in join query", "SELECT count(*) FROM a, b WHERE a.x = b.y AND z = 1", "qualified"},
		{"empty input", "", "SELECT"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", tc.src)
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.wantSub)) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestStringRoundTrip(t *testing.T) {
	// Parsing a query's String() must reproduce the same structure.
	srcs := []string{
		"SELECT count(*) FROM t WHERE a = 1 AND b > 2;",
		"SELECT count(*) FROM t WHERE (a = 1 OR a = 2) AND b <= 3;",
		"SELECT count(*) FROM t;",
		"SELECT count(*) FROM title, cast_info WHERE title.id = cast_info.movie_id AND title.kind_id = 7;",
		"SELECT count(*) FROM t WHERE a = 1 GROUP BY b;",
	}
	for _, src := range srcs {
		q1 := MustParse(src)
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip changed query:\n  first  %s\n  second %s", q1, q2)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := MustParse("SELECT count(*) FROM t WHERE a = 1 OR b = 2")
	c := q.Clone()
	CollectPreds(c.Where)[0].Val = 99
	if CollectPreds(q.Where)[0].Val != 1 {
		t.Error("Clone shares predicate storage with the original")
	}
}

func TestCmpOpNegate(t *testing.T) {
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for _, op := range ops {
		if op.Negate().Negate() != op {
			t.Errorf("Negate not involutive for %v", op)
		}
	}
	if OpLt.Negate() != OpGe || OpEq.Negate() != OpNe {
		t.Error("Negate gives wrong complements")
	}
}

func TestNewAndOrFlattening(t *testing.T) {
	p := func(attr string) Expr { return &Pred{Attr: attr, Op: OpEq, Val: 1} }
	e := NewAnd(NewAnd(p("a"), p("b")), p("c"))
	and, ok := e.(*And)
	if !ok || len(and.Kids) != 3 {
		t.Errorf("nested NewAnd did not flatten: %v", e)
	}
	if NewAnd() != nil {
		t.Error("NewAnd() should be nil")
	}
	if got := NewOr(p("a")); got != p("a") && got.String() != p("a").String() {
		t.Errorf("NewOr with one child = %v", got)
	}
	// Or nested in And must not flatten.
	e = NewAnd(NewOr(p("a"), p("b")), p("c"))
	and = e.(*And)
	if len(and.Kids) != 2 {
		t.Errorf("And over Or flattened wrongly: %v", e)
	}
}

func TestParseLike(t *testing.T) {
	q := MustParse("SELECT count(*) FROM t WHERE name LIKE 'ab%' AND x = 1")
	preds := CollectPreds(q.Where)
	if len(preds) != 2 {
		t.Fatalf("got %d preds", len(preds))
	}
	p := preds[0]
	if !p.Like || p.Str == nil || *p.Str != "ab" {
		t.Errorf("LIKE pred = %+v", p)
	}
	// String round trip.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Errorf("round trip changed: %s vs %s", q, q2)
	}
}

func TestParseLikeErrors(t *testing.T) {
	cases := []string{
		"SELECT count(*) FROM t WHERE name LIKE 'ab'",   // no wildcard
		"SELECT count(*) FROM t WHERE name LIKE '%ab'",  // leading wildcard
		"SELECT count(*) FROM t WHERE name LIKE 'a%b%'", // infix wildcard
		"SELECT count(*) FROM t WHERE name LIKE 'a_b%'", // underscore
		"SELECT count(*) FROM t WHERE 'ab%' LIKE name",  // literal LHS
		"SELECT count(*) FROM t WHERE name LIKE 5",      // non-string pattern
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseDepthLimit(t *testing.T) {
	wrap := func(depth int) string {
		return "SELECT count(*) FROM t WHERE " +
			strings.Repeat("(", depth) + "a = 1" + strings.Repeat(")", depth)
	}
	// At the limit: accepted.
	if _, err := Parse(wrap(maxExprDepth)); err != nil {
		t.Fatalf("nesting at the limit rejected: %v", err)
	}
	// One past the limit: a clean error, not a stack overflow.
	_, err := Parse(wrap(maxExprDepth + 1))
	if err == nil || !strings.Contains(err.Error(), "nesting exceeds") {
		t.Fatalf("err = %v, want nesting-depth error", err)
	}
	// Deep nesting that would previously exhaust the stack.
	if _, err := Parse(wrap(200_000)); err == nil {
		t.Fatal("200k-deep nesting accepted")
	}
	// Sibling groups do not accumulate depth: the counter tracks nesting,
	// not total parenthesis count.
	var b strings.Builder
	b.WriteString("SELECT count(*) FROM t WHERE (a = 1)")
	for i := 0; i < maxExprDepth+10; i++ {
		b.WriteString(" AND (a = 1)")
	}
	if _, err := Parse(b.String()); err != nil {
		t.Fatalf("sibling parenthesized groups rejected: %v", err)
	}
}
