package sqlparse

import (
	"fmt"
	"sort"
)

// Conjuncts flattens the top-level conjunction of expr into its children. A
// nil expression yields nil; a non-And expression yields itself.
func Conjuncts(expr Expr) []Expr {
	if expr == nil {
		return nil
	}
	if a, ok := expr.(*And); ok {
		return a.Kids
	}
	return []Expr{expr}
}

// Disjuncts flattens the top-level disjunction of expr into its children.
func Disjuncts(expr Expr) []Expr {
	if expr == nil {
		return nil
	}
	if o, ok := expr.(*Or); ok {
		return o.Kids
	}
	return []Expr{expr}
}

// CollectPreds returns all simple-predicate leaves of expr in left-to-right
// order.
func CollectPreds(expr Expr) []*Pred {
	var out []*Pred
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case nil:
		case *Pred:
			out = append(out, n)
		case *And:
			for _, k := range n.Kids {
				walk(k)
			}
		case *Or:
			for _, k := range n.Kids {
				walk(k)
			}
		}
	}
	walk(expr)
	return out
}

// Attrs returns the sorted set of attribute names referenced by expr.
func Attrs(expr Expr) []string {
	seen := make(map[string]struct{})
	for _, p := range CollectPreds(expr) {
		seen[p.Attr] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// NumPredicates returns the number of simple predicates in the query's
// selection expression — the grouping key of Figure 3.
func NumPredicates(q *Query) int { return len(CollectPreds(q.Where)) }

// NumAttributes returns the number of distinct attributes mentioned in the
// query's selection expression — the grouping key of Figures 2, 4, and 5.
func NumAttributes(q *Query) int { return len(Attrs(q.Where)) }

// IsConjunctive reports whether expr contains no disjunction, i.e. the query
// belongs to the paper's conjunctive class handled by Singular Predicate
// Encoding, Range Predicate Encoding, and Universal Conjunction Encoding.
func IsConjunctive(expr Expr) bool {
	switch n := expr.(type) {
	case nil, *Pred:
		return true
	case *And:
		for _, k := range n.Kids {
			if !IsConjunctive(k) {
				return false
			}
		}
		return true
	case *Or:
		return false
	}
	return false
}

// Compound is one per-attribute compound predicate of a mixed query
// (Definition 3.3): an arbitrary AND/OR combination of simple predicates
// over a single attribute.
type Compound struct {
	Attr string
	Expr Expr
}

// CompoundPredicates decomposes expr into per-attribute compound predicates,
// validating that expr is a mixed query in the sense of Definition 3.3: the
// top-level structure must be a conjunction whose conjuncts each reference
// exactly one attribute. Conjuncts on the same attribute are merged into one
// compound predicate. The result is ordered by first appearance.
//
// A nil expr yields no compounds. A conjunct mixing attributes (e.g.
// "A > 1 OR B < 2") returns an error: such queries are outside the class
// Limited Disjunction Encoding supports.
func CompoundPredicates(expr Expr) ([]Compound, error) {
	if expr == nil {
		return nil, nil
	}
	byAttr := make(map[string][]Expr)
	var order []string
	for _, kid := range Conjuncts(expr) {
		attrs := Attrs(kid)
		switch len(attrs) {
		case 0:
			return nil, fmt.Errorf("sqlparse: conjunct %q has no predicates", kid)
		case 1:
			a := attrs[0]
			if _, seen := byAttr[a]; !seen {
				order = append(order, a)
			}
			byAttr[a] = append(byAttr[a], kid)
		default:
			return nil, fmt.Errorf("sqlparse: not a mixed query (Definition 3.3): conjunct %q mixes attributes %v", kid, attrs)
		}
	}
	out := make([]Compound, len(order))
	for i, a := range order {
		out[i] = Compound{Attr: a, Expr: NewAnd(byAttr[a]...)}
	}
	return out, nil
}

// IsMixed reports whether expr is a mixed query per Definition 3.3.
func IsMixed(expr Expr) bool {
	_, err := CompoundPredicates(expr)
	return err == nil
}

// maxDNFTerms bounds the disjunction blow-up of ToDNF. Compound predicates
// in the paper's workloads have at most a handful of OR branches; the bound
// exists to turn adversarial inputs into errors instead of memory blow-ups.
const maxDNFTerms = 4096

// ToDNF converts expr into disjunctive normal form: a disjunction
// (outer slice) of conjunctions (inner slices) of simple predicates. This is
// the decomposition Algorithm 2 consumes: each compound predicate is "a
// disjunction of multiple conjunctions", each of which is featurized with
// Algorithm 1 and merged by entry-wise max.
//
// The conversion distributes AND over OR and errs when the number of terms
// would exceed an internal bound.
func ToDNF(expr Expr) ([][]*Pred, error) {
	switch n := expr.(type) {
	case nil:
		return nil, nil
	case *Pred:
		return [][]*Pred{{n}}, nil
	case *Or:
		var out [][]*Pred
		for _, k := range n.Kids {
			sub, err := ToDNF(k)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
			if len(out) > maxDNFTerms {
				return nil, fmt.Errorf("sqlparse: DNF exceeds %d terms", maxDNFTerms)
			}
		}
		return out, nil
	case *And:
		out := [][]*Pred{{}}
		for _, k := range n.Kids {
			sub, err := ToDNF(k)
			if err != nil {
				return nil, err
			}
			next := make([][]*Pred, 0, len(out)*len(sub))
			for _, a := range out {
				for _, b := range sub {
					term := make([]*Pred, 0, len(a)+len(b))
					term = append(term, a...)
					term = append(term, b...)
					next = append(next, term)
				}
			}
			if len(next) > maxDNFTerms {
				return nil, fmt.Errorf("sqlparse: DNF exceeds %d terms", maxDNFTerms)
			}
			out = next
		}
		return out, nil
	}
	return nil, fmt.Errorf("sqlparse: unknown expr %T", expr)
}

// PredsPerAttr groups the simple predicates of expr by attribute, preserving
// per-attribute order of appearance. It ignores the boolean structure; use
// it only for conjunctive expressions, where structure is irrelevant.
func PredsPerAttr(expr Expr) map[string][]*Pred {
	out := make(map[string][]*Pred)
	for _, p := range CollectPreds(expr) {
		out[p.Attr] = append(out[p.Attr], p)
	}
	return out
}
