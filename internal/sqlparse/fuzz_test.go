package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary bytes to the parser: it must never panic, and
// whenever it accepts an input, the rendered SQL must re-parse to the same
// rendering (printer/parser agreement). Run the corpus as a normal test, or
// explore with `go test -fuzz=FuzzParse ./internal/sqlparse`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT count(*) FROM t",
		"SELECT count(*) FROM t WHERE a = 1;",
		"SELECT count(*) FROM t WHERE a >= -5 AND b <> 3 OR c < 100",
		"SELECT count(*) FROM forest WHERE (A1 = 1 OR A1 = 2) AND A2 <= 9",
		"SELECT count(*) FROM a, b WHERE a.id = b.a_id AND a.x > 0",
		"SELECT count(*) FROM t WHERE s = 'it''s' AND n LIKE 'ab%'",
		"SELECT count(*) FROM t WHERE a = 1 GROUP BY b, c",
		"select COUNT ( * ) from T where 5 < x",
		"SELECT count(*) FROM t WHERE",
		"SELECT count(*) FROM t WHERE a = ",
		"SELECT count(*) FROM t WHERE a = 'unterminated",
		"SELECT count(*) FROM t WHERE a ! b",
		"((((((((",
		"",
		"\x00\xff\xfe",
		// Regression: deep parenthesis nesting must hit the depth limit,
		// not the goroutine stack limit.
		"SELECT count(*) FROM t WHERE " + strings.Repeat("(", 10000) + "a = 1" + strings.Repeat(")", 10000),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendered form %q does not re-parse: %v", src, rendered, err)
		}
		if got := q2.String(); got != rendered {
			t.Fatalf("printer/parser disagreement:\n  first  %s\n  second %s", rendered, got)
		}
	})
}
