// Package sqlparse implements a lexer, parser, and analysis utilities for
// the query class the paper studies: COUNT(*) queries over one or more
// tables with key/foreign-key join predicates and WHERE clauses made of
// simple selection predicates (attribute {=,<,>,<=,>=,<>,!=} literal)
// combined with AND and OR.
//
// The analysis half of the package implements the structural notions from
// the paper: conjunctive queries, mixed queries (Definition 3.3: a
// conjunction of per-attribute compound predicates), compound-predicate
// extraction, and per-attribute DNF conversion — exactly the decomposition
// Algorithm 2 (Limited Disjunction Encoding) consumes.
package sqlparse

import (
	"fmt"
	"strings"
)

// CmpOp is a comparison operator of a simple predicate. The set matches the
// paper's Section 3: {=, >, <, >=, <=, <>}; != is normalized to <> at parse
// time.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota // =
	OpNe              // <> (and !=)
	OpLt              // <
	OpLe              // <=
	OpGt              // >
	OpGe              // >=
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return fmt.Sprintf("CmpOp(%d)", int(op))
}

// Negate returns the complementary operator (e.g. < becomes >=). Useful for
// rewriting and for tests.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	panic("sqlparse: unknown operator")
}

// Expr is a boolean selection expression: a Pred leaf or an And/Or node.
type Expr interface {
	isExpr()
	// String renders the expression as SQL.
	String() string
}

// Pred is a simple predicate comparing one attribute to one literal.
// Numeric literals are carried in Val. String literals are carried in Str
// until Resolve binds them to dictionary codes against a concrete table
// (Section 6, string predicates); after binding, Str is nil.
type Pred struct {
	Attr string // attribute name, possibly qualified as "table.column"
	Op   CmpOp
	Val  int64
	Str  *string // unresolved string literal, nil for numeric predicates
	// Like marks a string-prefix predicate (SQL "attr LIKE 'p%'"); Str
	// holds the prefix without the trailing %. Binding rewrites the
	// predicate into dictionary-code ranges (core.PrefixPreds), the
	// Section 6 extension.
	Like bool
}

func (*Pred) isExpr() {}

// String renders the predicate as SQL, escaping embedded quotes in string
// literals (” per the SQL convention).
func (p *Pred) String() string {
	if p.Like {
		return fmt.Sprintf("%s LIKE '%s%%'", p.Attr, escapeQuotes(*p.Str))
	}
	if p.Str != nil {
		return fmt.Sprintf("%s %s '%s'", p.Attr, p.Op, escapeQuotes(*p.Str))
	}
	return fmt.Sprintf("%s %s %d", p.Attr, p.Op, p.Val)
}

func escapeQuotes(s string) string { return strings.ReplaceAll(s, "'", "''") }

// And is a conjunction of two or more sub-expressions.
type And struct{ Kids []Expr }

func (*And) isExpr() {}

// String renders the conjunction with parenthesized OR children.
func (a *And) String() string {
	return joinKids(a.Kids, " AND ", func(e Expr) bool { _, or := e.(*Or); return or })
}

// Or is a disjunction of two or more sub-expressions.
type Or struct{ Kids []Expr }

func (*Or) isExpr() {}

// String renders the disjunction; AND binds tighter so children need no
// parentheses.
func (o *Or) String() string { return joinKids(o.Kids, " OR ", func(Expr) bool { return false }) }

func joinKids(kids []Expr, sep string, paren func(Expr) bool) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		s := k.String()
		if paren(k) {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, sep)
}

// JoinPred is an equi-join predicate between two columns, e.g.
// "t.id = ci.movie_id". The paper assumes tables are joined following their
// key/foreign-key relationships (Section 2.1.2).
type JoinPred struct {
	LeftTable, LeftCol   string
	RightTable, RightCol string
}

// String renders the join predicate as SQL.
func (j JoinPred) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", j.LeftTable, j.LeftCol, j.RightTable, j.RightCol)
}

// Query is a parsed COUNT(*) query.
type Query struct {
	// Tables lists the referenced tables in FROM order.
	Tables []string
	// Joins holds the equi-join predicates extracted from the WHERE clause.
	Joins []JoinPred
	// Where holds the selection expression (join predicates removed), or
	// nil when the query has no selection predicates.
	Where Expr
	// GroupBy lists grouping attributes (Section 6 extension); empty for
	// plain COUNT(*) queries.
	GroupBy []string
}

// String renders the query as SQL in the paper's style.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT count(*) FROM ")
	b.WriteString(strings.Join(q.Tables, ", "))
	conds := make([]string, 0, len(q.Joins)+1)
	for _, j := range q.Joins {
		conds = append(conds, j.String())
	}
	if q.Where != nil {
		conds = append(conds, q.Where.String())
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(q.GroupBy, ", "))
	}
	b.WriteString(";")
	return b.String()
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	c := &Query{
		Tables:  append([]string(nil), q.Tables...),
		Joins:   append([]JoinPred(nil), q.Joins...),
		GroupBy: append([]string(nil), q.GroupBy...),
	}
	if q.Where != nil {
		c.Where = CloneExpr(q.Where)
	}
	return c
}

// CloneExpr returns a deep copy of an expression tree.
func CloneExpr(e Expr) Expr {
	switch n := e.(type) {
	case *Pred:
		p := *n
		if n.Str != nil {
			s := *n.Str
			p.Str = &s
		}
		return &p
	case *And:
		kids := make([]Expr, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = CloneExpr(k)
		}
		return &And{Kids: kids}
	case *Or:
		kids := make([]Expr, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = CloneExpr(k)
		}
		return &Or{Kids: kids}
	}
	panic(fmt.Sprintf("sqlparse: unknown expr %T", e))
}

// NewAnd builds a conjunction, flattening nested Ands and eliding the node
// for zero or one child.
func NewAnd(kids ...Expr) Expr { return newNary(kids, true) }

// NewOr builds a disjunction, flattening nested Ors and eliding the node for
// zero or one child.
func NewOr(kids ...Expr) Expr { return newNary(kids, false) }

func newNary(kids []Expr, isAnd bool) Expr {
	flat := make([]Expr, 0, len(kids))
	for _, k := range kids {
		if k == nil {
			continue
		}
		switch n := k.(type) {
		case *And:
			if isAnd {
				flat = append(flat, n.Kids...)
				continue
			}
		case *Or:
			if !isAnd {
				flat = append(flat, n.Kids...)
				continue
			}
		}
		flat = append(flat, k)
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	}
	if isAnd {
		return &And{Kids: flat}
	}
	return &Or{Kids: flat}
}
