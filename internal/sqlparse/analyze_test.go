package sqlparse

import (
	"math/rand"
	"testing"
)

func pred(attr string, op CmpOp, val int64) *Pred {
	return &Pred{Attr: attr, Op: op, Val: val}
}

func TestIsConjunctive(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"SELECT count(*) FROM t WHERE a = 1", true},
		{"SELECT count(*) FROM t WHERE a = 1 AND b = 2 AND a < 5", true},
		{"SELECT count(*) FROM t WHERE a = 1 OR a = 2", false},
		{"SELECT count(*) FROM t WHERE a = 1 AND (b = 2 OR b = 3)", false},
		{"SELECT count(*) FROM t", true},
	}
	for _, tc := range cases {
		q := MustParse(tc.src)
		if got := IsConjunctive(q.Where); got != tc.want {
			t.Errorf("IsConjunctive(%s) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestCompoundPredicatesMergesSameAttr(t *testing.T) {
	// Two top-level conjuncts on the same attribute merge into one compound.
	q := MustParse("SELECT count(*) FROM t WHERE (a = 1 OR a = 2) AND b > 3 AND (a <> 2)")
	comps, err := CompoundPredicates(q.Where)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("got %d compounds, want 2", len(comps))
	}
	if comps[0].Attr != "a" || comps[1].Attr != "b" {
		t.Errorf("compound order = %v, %v", comps[0].Attr, comps[1].Attr)
	}
	if got := len(CollectPreds(comps[0].Expr)); got != 3 {
		t.Errorf("merged compound on a has %d preds, want 3", got)
	}
}

func TestCompoundPredicatesRejectsCrossAttrOr(t *testing.T) {
	q := MustParse("SELECT count(*) FROM t WHERE a = 1 OR b = 2")
	if _, err := CompoundPredicates(q.Where); err == nil {
		t.Error("cross-attribute OR must not be a mixed query")
	}
	if IsMixed(q.Where) {
		t.Error("IsMixed should be false for cross-attribute OR")
	}
	// But per-attribute ORs are fine.
	q2 := MustParse("SELECT count(*) FROM t WHERE (a = 1 OR a = 2) AND b = 3")
	if !IsMixed(q2.Where) {
		t.Error("IsMixed should be true for per-attribute OR")
	}
}

func TestCompoundPredicatesNil(t *testing.T) {
	comps, err := CompoundPredicates(nil)
	if err != nil || comps != nil {
		t.Errorf("nil expr: comps=%v err=%v", comps, err)
	}
}

// evalExpr interprets an expression over an assignment, the reference
// semantics for the DNF test.
func evalExpr(e Expr, row map[string]int64) bool {
	switch n := e.(type) {
	case *Pred:
		v := row[n.Attr]
		switch n.Op {
		case OpEq:
			return v == n.Val
		case OpNe:
			return v != n.Val
		case OpLt:
			return v < n.Val
		case OpLe:
			return v <= n.Val
		case OpGt:
			return v > n.Val
		case OpGe:
			return v >= n.Val
		}
	case *And:
		for _, k := range n.Kids {
			if !evalExpr(k, row) {
				return false
			}
		}
		return true
	case *Or:
		for _, k := range n.Kids {
			if evalExpr(k, row) {
				return true
			}
		}
		return false
	}
	return false
}

func evalDNF(dnf [][]*Pred, row map[string]int64) bool {
	for _, conj := range dnf {
		all := true
		for _, p := range conj {
			if !evalExpr(p, row) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// randomExpr builds a random AND/OR tree over attributes a and b.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		attrs := []string{"a", "b"}
		ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		return pred(attrs[rng.Intn(2)], ops[rng.Intn(6)], int64(rng.Intn(10)))
	}
	k := 2 + rng.Intn(2)
	kids := make([]Expr, k)
	for i := range kids {
		kids[i] = randomExpr(rng, depth-1)
	}
	if rng.Intn(2) == 0 {
		return NewAnd(kids...)
	}
	return NewOr(kids...)
}

// TestToDNFSemanticsPreserved verifies DNF conversion against brute-force
// evaluation over the full small domain.
func TestToDNFSemanticsPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		e := randomExpr(rng, 3)
		dnf, err := ToDNF(e)
		if err != nil {
			t.Fatalf("ToDNF(%s): %v", e, err)
		}
		for a := int64(0); a < 10; a++ {
			for b := int64(0); b < 10; b++ {
				row := map[string]int64{"a": a, "b": b}
				if evalExpr(e, row) != evalDNF(dnf, row) {
					t.Fatalf("DNF differs from source on a=%d b=%d: %s", a, b, e)
				}
			}
		}
	}
}

func TestToDNFShapes(t *testing.T) {
	// (p1 OR p2) AND (p3 OR p4) must yield 4 conjunctions of 2 predicates.
	e := NewAnd(
		NewOr(pred("a", OpEq, 1), pred("a", OpEq, 2)),
		NewOr(pred("b", OpEq, 3), pred("b", OpEq, 4)),
	)
	dnf, err := ToDNF(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(dnf) != 4 {
		t.Fatalf("got %d terms, want 4", len(dnf))
	}
	for _, term := range dnf {
		if len(term) != 2 {
			t.Errorf("term has %d preds, want 2", len(term))
		}
	}
}

func TestToDNFBlowupGuard(t *testing.T) {
	// AND of many ORs must hit the blow-up bound, not OOM.
	var kids []Expr
	for i := 0; i < 20; i++ {
		kids = append(kids, NewOr(pred("a", OpEq, int64(i)), pred("a", OpEq, int64(i+100))))
	}
	if _, err := ToDNF(NewAnd(kids...)); err == nil {
		t.Error("expected blow-up error for 2^20 DNF terms")
	}
}

func TestToDNFNil(t *testing.T) {
	dnf, err := ToDNF(nil)
	if err != nil || dnf != nil {
		t.Errorf("ToDNF(nil) = %v, %v", dnf, err)
	}
}

func TestAttrsSortedUnique(t *testing.T) {
	q := MustParse("SELECT count(*) FROM t WHERE b = 1 AND a = 2 AND b < 9")
	got := Attrs(q.Where)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Attrs = %v", got)
	}
}

func TestConjunctsAndDisjuncts(t *testing.T) {
	q := MustParse("SELECT count(*) FROM t WHERE a = 1 AND b = 2 AND c = 3")
	if got := len(Conjuncts(q.Where)); got != 3 {
		t.Errorf("Conjuncts = %d, want 3", got)
	}
	if got := len(Conjuncts(nil)); got != 0 {
		t.Errorf("Conjuncts(nil) = %d", got)
	}
	q2 := MustParse("SELECT count(*) FROM t WHERE a = 1 OR a = 2")
	if got := len(Disjuncts(q2.Where)); got != 2 {
		t.Errorf("Disjuncts = %d, want 2", got)
	}
	if got := len(Disjuncts(q.Where)); got != 1 {
		t.Errorf("Disjuncts of And = %d, want 1", got)
	}
}

func TestPredsPerAttr(t *testing.T) {
	q := MustParse("SELECT count(*) FROM t WHERE a > 1 AND b = 2 AND a < 5")
	per := PredsPerAttr(q.Where)
	if len(per["a"]) != 2 || len(per["b"]) != 1 {
		t.Errorf("PredsPerAttr = %v", per)
	}
	if per["a"][0].Op != OpGt || per["a"][1].Op != OpLt {
		t.Error("per-attribute order not preserved")
	}
}
