package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a COUNT(*) SQL query of the paper's query class.
//
// Supported grammar (keywords are case-insensitive):
//
//	SELECT count(*) FROM t1 [, t2 ...]
//	[WHERE <boolean expression over simple and join predicates>]
//	[GROUP BY a1 [, a2 ...]] [;]
//
// Join predicates (column = column) may appear only in the top-level
// conjunction of the WHERE clause, mirroring the paper's assumption that
// tables are joined along key/foreign-key relationships while selections
// carry the AND/OR structure.
//
// Literals must be integers or strings; decimal attributes are expected to
// be fixed-point scaled at load time (see package table).
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse but panics on error; intended for tests and static
// workload definitions.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// maxExprDepth bounds parenthesis nesting in WHERE expressions. The parser
// is recursive-descent, so unchecked nesting converts attacker-sized input
// into stack growth; real workload queries nest a handful of levels at most.
const maxExprDepth = 100

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks  []token
	pos   int
	depth int // current parenthesis nesting inside the WHERE expression
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// expectKeyword consumes an identifier token equal (case-insensitively) to kw.
func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("sqlparse: expected %s, got %s at offset %d", strings.ToUpper(kw), t, t.pos)
	}
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("sqlparse: expected %s, got %s at offset %d", what, t, t.pos)
	}
	return t, nil
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) parseQuery() (*Query, error) {
	for _, kw := range []string{"select", "count"} {
		if err := p.expectKeyword(kw); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokStar, "*"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}

	q := &Query{}
	for {
		t, err := p.expect(tokIdent, "table name")
		if err != nil {
			return nil, err
		}
		q.Tables = append(q.Tables, t.text)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}

	if p.peekKeyword("where") {
		p.next()
		expr, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		where, joins, err := splitJoins(expr)
		if err != nil {
			return nil, err
		}
		q.Where = where
		q.Joins = joins
	}

	if p.peekKeyword("group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			name, err := p.parseColumnName()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, name)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}

	if p.peek().kind == tokSemi {
		p.next()
	}
	if !p.atEOF() {
		t := p.peek()
		return nil, fmt.Errorf("sqlparse: trailing input starting with %s at offset %d", t, t.pos)
	}
	if err := validateJoins(q); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []Expr{left}
	for p.peekKeyword("or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	return NewOr(kids...), nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	kids := []Expr{left}
	for p.peekKeyword("and") {
		p.next()
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	return NewAnd(kids...), nil
}

func (p *parser) parsePrimary() (Expr, error) {
	if t := p.peek(); t.kind == tokLParen {
		p.depth++
		if p.depth > maxExprDepth {
			return nil, fmt.Errorf("sqlparse: expression nesting exceeds %d levels at offset %d", maxExprDepth, t.pos)
		}
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		p.depth--
		return e, nil
	}
	return p.parseComparison()
}

// operand is a comparison operand: either a column reference or a literal.
type operand struct {
	col   string // non-empty for column references
	val   int64
	str   *string
	isLit bool
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.peekKeyword("like") {
		return p.parseLike(left)
	}
	opTok, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return nil, err
	}
	op, err := parseOp(opTok.text)
	if err != nil {
		return nil, err
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}

	switch {
	case !left.isLit && right.isLit:
		return &Pred{Attr: left.col, Op: op, Val: right.val, Str: right.str}, nil
	case left.isLit && !right.isLit:
		// Normalize "5 < A" to "A > 5": swap operands and mirror the
		// operator. = and <> are symmetric.
		return &Pred{Attr: right.col, Op: mirror(op), Val: left.val, Str: left.str}, nil
	case !left.isLit && !right.isLit:
		if op != OpEq {
			return nil, fmt.Errorf("sqlparse: column-to-column comparison %s %s %s must use =", left.col, op, right.col)
		}
		// A join leaf, encoded as a Pred with a sentinel Str carrying the
		// right column; splitJoins lifts it out of the expression tree.
		rc := joinSentinel + right.col
		return &Pred{Attr: left.col, Op: OpEq, Str: &rc}, nil
	default:
		return nil, fmt.Errorf("sqlparse: literal-to-literal comparison near offset %d", opTok.pos)
	}
}

// parseLike parses "column LIKE 'prefix%'" — the string-prefix pattern of
// Section 6. Only a single trailing % wildcard is supported; anything wider
// (leading %, _, infix %) is outside the featurizable class and rejected.
func (p *parser) parseLike(left operand) (Expr, error) {
	likeTok := p.next() // the LIKE keyword
	if left.isLit {
		return nil, fmt.Errorf("sqlparse: LIKE requires a column on the left at offset %d", likeTok.pos)
	}
	t, err := p.expect(tokString, "string pattern after LIKE")
	if err != nil {
		return nil, err
	}
	pat := t.text
	if len(pat) == 0 || pat[len(pat)-1] != '%' {
		return nil, fmt.Errorf("sqlparse: LIKE pattern %q must end with %% (prefix patterns only)", pat)
	}
	prefix := pat[:len(pat)-1]
	for i := 0; i < len(prefix); i++ {
		if prefix[i] == '%' || prefix[i] == '_' {
			return nil, fmt.Errorf("sqlparse: LIKE pattern %q: only a single trailing %% wildcard is supported", pat)
		}
	}
	return &Pred{Attr: left.col, Op: OpGe, Str: &prefix, Like: true}, nil
}

func (p *parser) parseOperand() (operand, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			return operand{}, fmt.Errorf("sqlparse: decimal literal %q at offset %d: decimal attributes must be fixed-point scaled at load time", t.text, t.pos)
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return operand{}, fmt.Errorf("sqlparse: bad integer %q at offset %d: %w", t.text, t.pos, err)
		}
		return operand{val: v, isLit: true}, nil
	case tokString:
		p.next()
		s := t.text
		return operand{str: &s, isLit: true}, nil
	case tokIdent:
		name, err := p.parseColumnName()
		if err != nil {
			return operand{}, err
		}
		return operand{col: name}, nil
	}
	return operand{}, fmt.Errorf("sqlparse: expected operand, got %s at offset %d", t, t.pos)
}

// parseColumnName parses "col" or "table.col".
func (p *parser) parseColumnName() (string, error) {
	t, err := p.expect(tokIdent, "column name")
	if err != nil {
		return "", err
	}
	name := t.text
	if p.peek().kind == tokDot {
		p.next()
		t2, err := p.expect(tokIdent, "column name after '.'")
		if err != nil {
			return "", err
		}
		name = name + "." + t2.text
	}
	return name, nil
}

func parseOp(text string) (CmpOp, error) {
	switch text {
	case "=":
		return OpEq, nil
	case "<>", "!=":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	}
	return 0, fmt.Errorf("sqlparse: unknown operator %q", text)
}

// mirror flips an operator's direction for operand swapping.
func mirror(op CmpOp) CmpOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op // = and <> are symmetric
}

// joinSentinel marks a Pred whose Str field carries the right-hand column of
// a column = column comparison. Such leaves never escape this package.
const joinSentinel = "\x00join:"

// splitJoins removes join leaves from the top-level conjunction of expr and
// returns the remaining selection expression plus the join predicates. A
// join leaf anywhere else (under OR, or nested) is an error: the paper's
// query class joins along key/foreign-key edges unconditionally.
func splitJoins(expr Expr) (Expr, []JoinPred, error) {
	var joins []JoinPred
	var keep []Expr
	for _, kid := range Conjuncts(expr) {
		if jp, ok := asJoinLeaf(kid); ok {
			joins = append(joins, jp)
			continue
		}
		if err := rejectJoinLeaves(kid); err != nil {
			return nil, nil, err
		}
		keep = append(keep, kid)
	}
	return NewAnd(keep...), joins, nil
}

func asJoinLeaf(e Expr) (JoinPred, bool) {
	p, ok := e.(*Pred)
	if !ok || p.Str == nil || !strings.HasPrefix(*p.Str, joinSentinel) {
		return JoinPred{}, false
	}
	right := strings.TrimPrefix(*p.Str, joinSentinel)
	lt, lc := splitQualified(p.Attr)
	rt, rc := splitQualified(right)
	return JoinPred{LeftTable: lt, LeftCol: lc, RightTable: rt, RightCol: rc}, true
}

func rejectJoinLeaves(e Expr) error {
	switch n := e.(type) {
	case *Pred:
		if n.Str != nil && strings.HasPrefix(*n.Str, joinSentinel) {
			return fmt.Errorf("sqlparse: join predicate %s = %s may only appear in the top-level conjunction",
				n.Attr, strings.TrimPrefix(*n.Str, joinSentinel))
		}
	case *And:
		for _, k := range n.Kids {
			if err := rejectJoinLeaves(k); err != nil {
				return err
			}
		}
	case *Or:
		for _, k := range n.Kids {
			if err := rejectJoinLeaves(k); err != nil {
				return err
			}
		}
	}
	return nil
}

// splitQualified splits "table.col" into its parts; an unqualified name
// yields an empty table.
func splitQualified(name string) (tbl, col string) {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "", name
}

// validateJoins checks that every join predicate references tables in the
// FROM list (when qualified) and that multi-table queries qualify their
// selection attributes.
func validateJoins(q *Query) error {
	inFrom := make(map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		inFrom[t] = true
	}
	for _, j := range q.Joins {
		for _, t := range []string{j.LeftTable, j.RightTable} {
			if t == "" {
				return fmt.Errorf("sqlparse: join predicate %s must use qualified column names", j)
			}
			if !inFrom[t] {
				return fmt.Errorf("sqlparse: join predicate %s references table %q not in FROM", j, t)
			}
		}
	}
	if len(q.Tables) > 1 && q.Where != nil {
		for _, p := range CollectPreds(q.Where) {
			tbl, _ := splitQualified(p.Attr)
			if tbl == "" {
				return fmt.Errorf("sqlparse: attribute %q must be table-qualified in a multi-table query", p.Attr)
			}
			if !inFrom[tbl] {
				return fmt.Errorf("sqlparse: attribute %q references table not in FROM", p.Attr)
			}
		}
	}
	return nil
}
